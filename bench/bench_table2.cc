// Reproduces Table 2: analytical-model Ioff scaling across the roadmap
// (required Vth for Ion = 750 uA/um, resulting Ioff, metal-gate variant,
// ITRS projection), including the 50 nm Vdd = 0.6 vs 0.7 V comparison.
#include <iostream>

#include "core/experiments.h"
#include "core/report.h"
#include "util/csv.h"
#include "util/table.h"

int main() {
  using namespace nano;
  const core::Table2 table = core::computeTable2();
  core::printTable2(std::cout, table);

  std::cout << "\nObservations (paper Section 3.1):\n"
            << " 1. Electrical oxide thickness matters: the metal-gate "
               "column shows the Ioff cut from removing gate depletion.\n"
            << " 2. 50 nm at 0.6 V needs a near-zero Vth; 0.7 V cuts Ioff "
            << util::fmt(table.rows[4].ioffNaUm / table.row50At07.ioffNaUm, 1)
            << "x (paper: nearly 7x) for a 36 % dynamic power increase.\n"
            << " 3. Model Ioff growth across the roadmap is "
            << util::fmt(table.modelGrowth, 0)
            << "x, far above the ITRS projection of "
            << util::fmt(table.itrsGrowth, 0) << "x.\n";

  util::CsvWriter csv("table2.csv",
                      {"node_nm", "vdd", "coxe_norm", "vth_model", "vth_paper",
                       "ioff_model", "ioff_paper", "ioff_metal", "ioff_itrs"});
  for (const auto& r : table.rows) {
    csv.row(std::vector<double>{static_cast<double>(r.nodeNm), r.vdd,
                                r.coxeNorm, r.vthRequired, r.paperVth,
                                r.ioffNaUm, r.paperIoff, r.ioffMetalNaUm,
                                r.ioffItrsNaUm});
  }
  std::cout << "(series written to table2.csv)\n";
  return 0;
}
