// Ablations of the design choices DESIGN.md calls out:
//  1. CVS low-supply ratio sweep — the paper: "analysis indicates Vdd,l
//     should be around 0.6 to 0.7 times Vdd,h to maximize power savings".
//  2. Dual-Vth offset sweep — 100 mV is the paper's step; bigger steps cut
//     more per gate but strand timing-critical gates at low Vth.
//  3. Repeater de-tuning — the delay optimum is flat, so undersized
//     repeaters buy large power savings for a small speed cost (why the
//     paper's >50 W figure is pessimistic for power-aware insertion).
//  4. IR-drop budget sweep — rail width ~ 1/budget (Figure 5 sensitivity).
#include <iostream>

#include "circuit/generator.h"
#include "device/variation.h"
#include "interconnect/repeater.h"
#include "opt/cvs.h"
#include "opt/dual_vth.h"
#include "opt/sizing.h"
#include "powergrid/irdrop.h"
#include "util/table.h"

int main() {
  using namespace nano;
  using util::fmt;

  const auto& node = tech::nodeByFeature(100);

  // ------------------------------------------------ 1. Vdd,l ratio sweep
  std::cout << "1. CVS savings vs Vdd,l / Vdd,h (1000-gate pipelined"
               " design):\n";
  util::TextTable t1({"ratio", "gates at Vdd,l", "dynamic savings",
                      "conversion share"});
  double bestSaving = 0.0, bestRatio = 0.0;
  for (double ratio : {0.45, 0.55, 0.60, 0.65, 0.70, 0.80, 0.90}) {
    circuit::LibraryConfig cfg;
    cfg.vddLowRatio = ratio;
    const circuit::Library lib(node, cfg);
    util::Rng rng(4242);
    circuit::GeneratorConfig gcfg;
    gcfg.gates = 1000;
    gcfg.outputs = 64;
    const auto design = circuit::pipelinedLogic(lib, gcfg, rng, 8);
    const auto r = opt::runCvs(design, lib);
    t1.addRow({fmt(ratio, 2), fmt(100 * r.fractionLowVdd, 0) + " %",
               fmt(100 * r.dynamicSavings(), 1) + " %",
               fmt(100 * r.converterPowerFraction(), 0) + " %"});
    if (r.dynamicSavings() > bestSaving) {
      bestSaving = r.dynamicSavings();
      bestRatio = ratio;
    }
  }
  t1.print(std::cout);
  std::cout << "Best ratio: " << fmt(bestRatio, 2)
            << " (paper: 0.6-0.7; low ratios strand gates at Vdd,h, high"
               " ratios save little per gate)\n\n";

  // ------------------------------------------------ 2. Vth offset sweep
  std::cout << "2. Dual-Vth offset sweep (sized 1000-gate block at "
            << node.featureNm << " nm):\n";
  util::TextTable t2({"offset (mV)", "gates at high Vth", "leakage savings"});
  for (double offset : {0.05, 0.10, 0.15, 0.20, 0.30}) {
    circuit::LibraryConfig cfg;
    cfg.vthOffset = offset;
    const circuit::Library lib(node, cfg);
    util::Rng rng(512);
    circuit::GeneratorConfig gcfg;
    gcfg.gates = 1000;
    gcfg.outputs = 64;
    auto design = circuit::randomLogic(lib, gcfg, rng);
    opt::SizingOptions so;
    so.continuousSizes = true;
    design = opt::downsizeForPower(design, lib, so).netlist;
    const auto r = opt::runDualVth(design, lib);
    t2.addRow({fmt(1e3 * offset, 0), fmt(100 * r.fractionHighVth, 0) + " %",
               fmt(100 * r.leakageSavings(), 0) + " %"});
  }
  t2.print(std::cout);
  std::cout << "(the per-gate cut grows 10x per 85 mV, but steeper offsets"
               " leave more gates stranded at low Vth)\n\n";

  // ------------------------------------------------ 3. repeater de-tuning
  std::cout << "3. Repeater de-tuning at 50 nm (vs the delay-optimal"
               " design):\n";
  const auto& n50 = tech::nodeByFeature(50);
  const auto driver = interconnect::RepeaterDriver::fromNode(n50);
  const auto rc = interconnect::computeWireRc(interconnect::topLevelWire(n50));
  const auto opt = interconnect::optimalRepeatersNumeric(driver, rc);
  util::TextTable t3({"size x", "spacing x", "delay penalty",
                      "repeater power saving"});
  const auto optPower = interconnect::repeatedLinePower(
      driver, rc, opt, 10e-3, n50.clockGlobal, 0.15);
  for (auto [sizeF, lenF] : {std::pair{1.0, 1.0}, std::pair{0.7, 1.0},
                             std::pair{0.5, 1.0}, std::pair{0.7, 1.4},
                             std::pair{0.5, 1.7}}) {
    interconnect::RepeaterDesign d = opt;
    d.size *= sizeF;
    d.segmentLength *= lenF;
    const double delay =
        interconnect::repeatedLineDelay(driver, rc, d, 10e-3);
    const double delayOpt =
        interconnect::repeatedLineDelay(driver, rc, opt, 10e-3);
    const auto power = interconnect::repeatedLinePower(
        driver, rc, d, 10e-3, n50.clockGlobal, 0.15);
    t3.addRow({fmt(sizeF, 1), fmt(lenF, 1),
               fmt(100 * (delay / delayOpt - 1.0), 1) + " %",
               fmt(100 * (1.0 - (power.repeaterDyn + power.leakage) /
                                    (optPower.repeaterDyn + optPower.leakage)),
                   0) +
                   " %"});
  }
  t3.print(std::cout);
  std::cout << "(the classic flat-optimum result: half-size, 1.7x-spaced"
               " repeaters give back most of the repeater power for ~10 %"
               " delay)\n\n";

  // ------------------------------------------------ 4. IR budget sweep
  std::cout << "4. Rail width vs IR budget (35 nm, minimum bump pitch):\n";
  util::TextTable t4({"budget/polarity", "width / min width"});
  for (double budget : {0.025, 0.05, 0.10}) {
    powergrid::IrDropOptions o;
    o.budgetFraction = budget;
    const auto rep = powergrid::minPitchReport(tech::nodeByFeature(35), o);
    t4.addRow({fmt(100 * budget, 1) + " %", fmt(rep.widthOverMin, 1)});
  }
  t4.print(std::cout);
  std::cout << "(inverse-linear, as the closed form predicts)\n\n";

  // ------------------------------------------ 5. Vth variability impact
  std::cout << "5. Vth fluctuation impact on leakage (paper Section 1's"
               " variability challenge; Pelgrom mismatch on a minimum-width"
               " device):\n";
  util::TextTable t5({"node (nm)", "sigma Vth (mV)", "mean Ioff x",
                      "p95 Ioff x", "3-sigma margin (mV)"});
  for (int f : tech::roadmapFeatures()) {
    const auto& n = tech::nodeByFeature(f);
    const double vth = device::solveVthForIon(n, n.ionTarget);
    util::Rng rng(1337);
    const double wMin = 2.0 * n.featureNm * 1e-9;
    const auto spread = device::sampleLeakageSpread(n, vth, wMin, rng, 20000);
    t5.addRow({std::to_string(f), fmt(1e3 * spread.sigmaVth, 1),
               fmt(spread.meanAmplification, 2),
               fmt(spread.p95Amplification, 2),
               fmt(1e3 * device::vthMarginForSigma(spread.sigmaVth), 0)});
  }
  t5.print(std::cout);
  std::cout << "(Eq. 4 makes leakage lognormal in Vth: fluctuations raise"
               " the MEAN die leakage, not just the tail — the variability"
               " and static-power challenges compound)\n";
  return 0;
}
