// Reproduces Table 1: recent published NMOS device results compared with
// ITRS projections, plus the paper's two take-aways (no sub-1 V technology
// meets the Ion target; historical reports under-estimate production Ion).
#include <iostream>

#include "device/mosfet.h"
#include "tech/literature.h"
#include "util/table.h"

int main() {
  using namespace nano;
  using util::fmt;

  std::cout << "Table 1: recent NMOS device results vs ITRS projections\n";
  util::TextTable t({"reference", "node (nm)", "Tox (A)", "Tox kind",
                     "Vdd (V)", "Ion (uA/um)", "Ioff (nA/um)",
                     "meets 750 target"});
  for (const auto& d : tech::table1Devices()) {
    t.addRow({d.reference, d.itrsNode, fmt(d.toxAngstrom, 0),
              d.toxKind == tech::ToxKind::Physical ? "physical" : "electrical",
              fmt(d.vdd, 2), fmt(d.ionUaPerUm, 0), fmt(d.ioffNaPerUm, 0),
              d.ionUaPerUm >= 750.0 ? "yes" : "no"});
  }
  t.print(std::cout);

  std::cout << "\nKey observations (paper Section 3.1):\n";
  int sub1V = 0, sub1VMeeting = 0;
  for (const auto& d : tech::table1Devices()) {
    if (d.isItrsProjection || d.vdd >= 1.0) continue;
    ++sub1V;
    if (d.ionUaPerUm >= 750.0) ++sub1VMeeting;
  }
  std::cout << " * sub-1 V published devices meeting the 750 uA/um target: "
            << sub1VMeeting << " of " << sub1V
            << " (paper: none come close)\n";
  std::cout << " * historical pre-production reports under-estimate "
               "production Ion by ~"
            << fmt(100 * tech::historicalIonUnderestimate(), 0)
            << " % [30,31]\n";

  // Model cross-check: what Vdd does the compact model need for the 70 nm
  // node to reach 750 uA/um? (The published 70 nm parts needed 1.2 V.)
  const auto& n70 = tech::nodeByFeature(70);
  const double vthAt09 = device::solveVthForIon(n70, n70.ionTarget);
  const double vthAt12 =
      device::solveVthForIon(n70, n70.ionTarget, device::GateStack::Poly, 1.2);
  device::MosfetParams p12 = device::Mosfet::fromNode(n70, vthAt12).params();
  p12.vddReference = 1.2;
  std::cout << " * model: 70 nm meets 750 uA/um at 0.9 V only with Vth = "
            << fmt(vthAt09, 3) << " V (Ioff "
            << fmt(device::Mosfet::fromNode(n70, vthAt09).ioff() * 1e3, 0)
            << " nA/um); at 1.2 V a comfortable Vth = " << fmt(vthAt12, 3)
            << " V suffices (Ioff "
            << fmt(device::Mosfet(p12).ioff() * 1e3, 1)
            << " nA/um), matching the published 1.2 V parts\n";
  return 0;
}
