// Section 3.2.1 claims: standby-power techniques and their scaling.
//  * MTCMOS: near-total standby leakage elimination, with the delay/area
//    trade ("adds delay, which can be reduced by increasing its area")
//  * transistor stacks [38]: leakage control without sleep devices
//  * intra-cell mixed-Vth stacks (Section 3.3): substantial leakage
//    savings, minimal delay penalty
//  * reverse body bias [36]: a lever that shrinks with scaling — the
//    paper's reason the technique "does not scale well".
#include <iostream>

#include "circuit/generator.h"
#include "power/state_leakage.h"
#include "power/standby.h"
#include "util/table.h"

int main() {
  using namespace nano;
  using util::fmt;

  std::cout << "MTCMOS sleep-transistor sizing (1 mm block NMOS width, 2 %"
               " simultaneous switching, 5 % delay budget):\n";
  util::TextTable m({"node (nm)", "sleep width (um)", "area overhead",
                     "standby leakage cut", "virtual-rail drop (mV)"});
  for (int f : tech::roadmapFeatures()) {
    const auto& node = tech::nodeByFeature(f);
    const double vth = device::solveVthForIon(node, node.ionTarget);
    power::MtcmosBlock block;
    block.totalDeviceWidth = 1e-3;
    block.peakCurrent = 0.02 * block.totalDeviceWidth * node.ionTarget;
    block.vthLow = vth;
    const auto d = power::sizeSleepTransistor(node, block);
    m.addRow({std::to_string(f), fmt(d.width * 1e6, 0),
              fmt(100 * d.areaOverhead, 1) + " %",
              fmt(100 * d.standbyReduction(), 2) + " %",
              fmt(d.virtualRailDrop * 1e3, 0)});
  }
  m.print(std::cout);
  std::cout << "(paper: MTCMOS virtually eliminates idle leakage but costs"
               " area and gives no active-mode reduction)\n\n";

  std::cout << "Delay/area trade at 70 nm (tighter delay budget => bigger"
               " sleep device):\n";
  {
    const auto& node = tech::nodeByFeature(70);
    const double vth = device::solveVthForIon(node, node.ionTarget);
    power::MtcmosBlock block;
    block.totalDeviceWidth = 1e-3;
    block.peakCurrent = 0.02 * block.totalDeviceWidth * node.ionTarget;
    block.vthLow = vth;
    util::TextTable t({"delay budget", "sleep width (um)", "area overhead"});
    for (double penalty : {0.02, 0.05, 0.10, 0.20}) {
      const auto d = power::sizeSleepTransistor(node, block, penalty);
      t.addRow({fmt(100 * penalty, 0) + " %", fmt(d.width * 1e6, 0),
                fmt(100 * d.areaOverhead, 1) + " %"});
    }
    t.print(std::cout);
  }

  std::cout << "\nStack effect [38] and intra-cell mixed-Vth stacks"
               " (Section 3.3):\n";
  util::TextTable s({"node (nm)", "2-stack leakage", "3-stack leakage",
                     "stack node (mV)", "mixed-Vth leakage", "mixed delay"});
  for (int f : tech::roadmapFeatures()) {
    const auto& node = tech::nodeByFeature(f);
    const double vth = device::solveVthForIon(node, node.ionTarget);
    const auto dev = device::Mosfet::fromNode(node, vth);
    const auto mixed = power::mixedVthStack(node, vth, vth + 0.1);
    s.addRow({std::to_string(f),
              fmt(power::stackLeakageFactor(dev, 2), 2) + "x",
              fmt(power::stackLeakageFactor(dev, 3), 2) + "x",
              fmt(power::stackIntermediateVoltage(dev) * 1e3, 0),
              fmt(mixed.leakageVsAllLow, 3) + "x",
              fmt(mixed.delayVsAllLow, 2) + "x"});
  }
  s.print(std::cout);
  std::cout << "(a high-Vth device at the bottom of a stack cuts off-state"
               " leakage ~10x for a ~10-20 % pull-down penalty — no sleep"
               " signal, no area hit)\n\n";

  std::cout << "Input-vector control (state-dependent leakage, Section"
               " 3.3): standby leakage of a 500-gate block by input state:\n";
  {
    util::TextTable v({"node (nm)", "expected (uW)", "best vector (uW)",
                       "worst vector (uW)", "best-vs-worst"});
    for (int f : {100, 50, 35}) {
      const auto& node = tech::nodeByFeature(f);
      const circuit::Library lib(node);
      util::Rng rng(4);
      circuit::GeneratorConfig cfg;
      cfg.gates = 500;
      const auto nl = circuit::randomLogic(lib, cfg, rng);
      const auto act = power::propagateActivity(nl);
      const double expected = power::stateAwareLeakage(nl, node, act);
      const auto bounds = power::leakageStateBounds(nl, node);
      v.addRow({std::to_string(f), fmt(expected * 1e6, 2),
                fmt(bounds.minimum * 1e6, 2), fmt(bounds.maximum * 1e6, 2),
                fmt(bounds.maximum / bounds.minimum, 1) + "x"});
    }
    v.print(std::cout);
    std::cout << "(parking the logic in stack-friendly states buys a"
                 " multi-x standby cut with no sleep transistor — the [38]"
                 " single-threshold approach)\n\n";
  }

  std::cout << "Reverse body bias: leakage reduction from -1 V of Vbs"
               " (paper: the knob weakens in scaled devices):\n";
  util::TextTable b({"node (nm)", "body effect (V/V)", "dVth at -1 V (mV)",
                     "leakage reduction"});
  for (int f : tech::roadmapFeatures()) {
    const auto& node = tech::nodeByFeature(f);
    b.addRow({std::to_string(f), fmt(node.bodyEffect, 3),
              fmt(1e3 * node.bodyEffect, 0),
              fmt(power::bodyBiasLeakageReduction(node, 1.0), 1) + "x"});
  }
  b.print(std::cout);
  std::cout << "(387x at 180 nm collapsing to 5x at 35 nm — why the paper"
               " calls substrate-bias Vth control poorly scaling, and why"
               " dual-Vth insertion is \"the only technique used in current"
               " high-end MPUs\")\n";
  return 0;
}
