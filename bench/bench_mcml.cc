// Section 4 claims: MOS current-mode logic as a current-transient-free
// alternative to static CMOS — constant supply draw, delay-matched
// comparison, and the activity crossover that moves into realizable
// territory as CMOS leakage explodes at the end of the roadmap.
#include <iostream>

#include "signaling/mcml.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace nano;
  using namespace nano::units;
  using util::fmt;

  const double load = 10 * fF;
  std::cout << "Delay-matched MCML vs static CMOS (10 fF load):\n";
  util::TextTable t({"node (nm)", "delay (ps)", "MCML tail (uA)",
                     "CMOS peak I (uA)", "MCML transient (uA)",
                     "crossover activity"});
  for (int f : tech::roadmapFeatures()) {
    const auto& node = tech::nodeByFeature(f);
    const auto pair = signaling::buildMatchedPair(node, load);
    const double crossover = signaling::mcmlCrossoverActivity(node, load);
    t.addRow({std::to_string(f), fmt(pair.cmos.delayS * 1e12, 1),
              fmt(pair.mcml.tailCurrent * 1e6, 1),
              fmt(pair.cmos.peakSupplyCurrentA * 1e6, 0),
              fmt(pair.mcml.supplyCurrentRipple() * pair.mcml.tailCurrent * 1e6,
                  2),
              crossover > 1.0 ? (fmt(crossover, 2) + " (CMOS wins)")
                              : fmt(crossover, 2)});
  }
  t.print(std::cout);
  std::cout << "(paper: MCML burns static power but produces far smaller"
               " current transients; as static CMOS leakage becomes"
               " intractable at 50/35 nm, the total-power crossover falls"
               " below 1 for high-activity datapaths [42])\n\n";

  // Power vs activity at 50 nm: the crossover in detail.
  const auto& n50 = tech::nodeByFeature(50);
  const auto pair = signaling::buildMatchedPair(n50, load);
  std::cout << "50 nm total power vs activity (delay-matched, local clock):\n";
  util::TextTable p({"activity", "CMOS (uW)", "MCML (uW)", "winner"});
  for (double a : {0.05, 0.1, 0.25, 0.5, 0.9}) {
    const double cmos = pair.cmos.totalPower(n50.clockLocal, a);
    const double mcml = pair.mcml.totalPower(n50.vdd, n50.clockLocal, a);
    p.addRow({fmt(a, 2), fmt(cmos * 1e6, 2), fmt(mcml * 1e6, 2),
              mcml < cmos ? "MCML" : "CMOS"});
  }
  p.print(std::cout);
  return 0;
}
