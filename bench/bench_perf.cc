// Kernel timing benchmarks (google-benchmark): the computational cores a
// downstream user would stress — STA, the CVS optimizer, the power-grid CG
// solve, the transient simulator, and the device-model Vth solve.
#include <benchmark/benchmark.h>

#include <iostream>

#include "circuit/generator.h"
#include "circuit/netlist_soa.h"
#include "core/design_space.h"
#include "device/mosfet.h"
#include "exec/exec.h"
#include "interconnect/interconnect_batch.h"
#include "interconnect/wire.h"
#include "kernel/device_batch.h"
#include "kernel/dispatch.h"
#include "obs/obs.h"
#include "opt/dual_vth.h"
#include "opt/sizing.h"
#include "powergrid/grid_model.h"
#include "scenario/scenario.h"
#include "sim/circuit_sim.h"
#include "sta/incremental.h"
#include "sta/sta.h"
#include "svc/server.h"

namespace {

using namespace nano;

const circuit::Library& lib100() {
  static const circuit::Library lib(tech::nodeByFeature(100));
  return lib;
}

circuit::Netlist makeNetlist(int gates) {
  util::Rng rng(1);
  circuit::GeneratorConfig cfg;
  cfg.gates = gates;
  cfg.outputs = gates / 16;
  return circuit::pipelinedLogic(lib100(), cfg, rng, 8);
}

// Scale-profile netlist (sqrt I/O, log2 depth): the substrate for the
// 100k/1M benches, matching the scale smoke test's construction.
circuit::Netlist makeScaledNetlist(int gates) {
  util::Rng rng(1);
  return circuit::pipelinedLogic(lib100(), circuit::scaledConfig(gates), rng,
                                 8);
}

void BM_VthSolve(benchmark::State& state) {
  const auto& node = tech::nodeByFeature(35);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device::solveVthForIon(node, node.ionTarget));
  }
  state.SetItemsProcessed(state.iterations());  // Vth solves
}
BENCHMARK(BM_VthSolve);

void BM_Sta(benchmark::State& state) {
  const circuit::Netlist nl = makeNetlist(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sta::analyze(nl));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sta)->Arg(1000)->Arg(4000)->Arg(16000);

// The flat SoA timing core at scale: one full level-parallel STA pass per
// iteration over a prebuilt mirror (items = gates/s). bytes_per_gate is
// the arena footprint of the reusable engine — the memory-per-gate
// acceptance number for the million-gate core.
void BM_StaFull(benchmark::State& state) {
  const circuit::Netlist nl =
      makeScaledNetlist(static_cast<int>(state.range(0)));
  const circuit::NetlistSoA soa(nl, {.keepCells = false});
  sta::Sta engine(soa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.analyze().worstSlack);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["levels"] = static_cast<double>(soa.levelCount());
  state.counters["bytes_per_gate"] =
      static_cast<double>(engine.arenaBytes() + soa.arenaBytes()) /
      static_cast<double>(nl.gateCount());
  state.counters["threads"] = exec::threadCount();
}
BENCHMARK(BM_StaFull)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_DualVth(benchmark::State& state) {
  const circuit::Netlist nl = makeNetlist(static_cast<int>(state.range(0)));
  double fractionHigh = 0.0;
  for (auto _ : state) {
    const opt::DualVthResult r = opt::runDualVth(nl, lib100());
    fractionHigh = r.fractionHighVth;
    benchmark::DoNotOptimize(fractionHigh);
  }
  // gates examined per second; fraction converted for PR-over-PR sanity
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["fraction_high_vth"] = fractionHigh;
}
BENCHMARK(BM_DualVth)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_Sizing(benchmark::State& state) {
  const circuit::Netlist nl = makeNetlist(static_cast<int>(state.range(0)));
  int resized = 0;
  for (auto _ : state) {
    const opt::SizingResult r = opt::downsizeForPower(nl, lib100());
    resized = r.gatesResized;
    benchmark::DoNotOptimize(resized);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["gates_resized"] = resized;
}
BENCHMARK(BM_Sizing)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

// The incremental engine alone: one committed swap + one rolled-back swap
// per iteration on a large netlist (items = swaps/s). The repropagated
// counter exposes the O(cone) work that replaces O(gates) full passes.
void BM_IncrementalSta(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  // The 100k/1M points use the scale profile (same substrate as
  // BM_StaFull and the scale smoke); the small points keep the historical
  // fixed-depth netlist so numbers stay comparable across PRs.
  circuit::Netlist nl =
      size >= 100000 ? makeScaledNetlist(size) : makeNetlist(size);
  sta::IncrementalSta inc(nl);
  const auto gates = nl.gateIds();
  util::Rng rng(7);
  for (auto _ : state) {
    const int g = gates[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<int>(gates.size()) - 1))];
    const auto& cell = nl.node(g).cell;
    const circuit::Cell alt = lib100().recorner(
        cell,
        cell.vth == circuit::VthClass::Low ? circuit::VthClass::High
                                           : circuit::VthClass::Low,
        cell.vddDomain);
    inc.apply(g, alt);
    inc.trial(g, lib100().generateCustom(cell.function, cell.drive * 1.5,
                                         cell.vth, cell.vddDomain));
    inc.rollback();
    benchmark::DoNotOptimize(inc.worstSlack());
  }
  state.SetItemsProcessed(state.iterations() * 2);  // swaps
  state.counters["nodes_repropagated_per_swap"] =
      static_cast<double>(inc.nodesRepropagated()) /
      static_cast<double>(2 * state.iterations());
}
BENCHMARK(BM_IncrementalSta)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(100000)
    ->Arg(1000000);

// Design-space sweep on the nano::exec pool (items = grid points/s).
// Compare NANO_EXEC_THREADS=1 against the core count for the speedup.
void BM_Sweep(benchmark::State& state) {
  core::DesignSpaceOptions options;
  options.vddSteps = static_cast<int>(state.range(0));
  options.vthSteps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::exploreDesignSpace(options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
  state.counters["threads"] = exec::threadCount();
}
BENCHMARK(BM_Sweep)->Arg(15)->Arg(30)->Unit(benchmark::kMillisecond);

// Power-grid solve at paper scale: subdivisions 8/32/128 on a 10x10-tile
// waffle span ~25k to ~413k unknowns. The second argument selects the CG
// preconditioner (0 = Jacobi, 1 = multigrid V-cycle). Jacobi at 128 is
// omitted: it needs thousands of iterations and only re-demonstrates the
// scaling gap the 32-subdivision pair already quantifies.
void BM_GridSolve(benchmark::State& state) {
  powergrid::GridConfig cfg;
  cfg.railPitch = 160e-6;
  cfg.bumpPitch = 640e-6;
  cfg.railWidth = 2e-6;
  cfg.tilesX = cfg.tilesY = 10;
  cfg.subdivisions = static_cast<int>(state.range(0));
  cfg.hotspotFactor = 4.0;
  cfg.hotspotCellsRail = 1;
  powergrid::GridSolverOptions opt;
  opt.preconditioner = state.range(1) != 0
                           ? powergrid::PreconditionerKind::Multigrid
                           : powergrid::PreconditionerKind::Jacobi;
  // Warm the topology cache (and, for multigrid, the hierarchy) so the
  // timed region is the solve itself — the steady state the sweeps see.
  const powergrid::GridSolution warm = powergrid::solveGrid(cfg, opt);
  std::size_t unknowns = warm.unknowns;
  int cgIterations = warm.cgIterations;
  for (auto _ : state) {
    const powergrid::GridSolution sol = powergrid::solveGrid(cfg, opt);
    unknowns = sol.unknowns;
    cgIterations = sol.cgIterations;
    benchmark::DoNotOptimize(sol.maxDrop);
  }
  // unknowns solved per second; iteration count tracks solver health
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(unknowns));
  state.counters["unknowns"] = static_cast<double>(unknowns);
  state.counters["cg_iterations"] = static_cast<double>(cgIterations);
  state.counters["mg_levels"] = static_cast<double>(warm.mgLevels);
}
BENCHMARK(BM_GridSolve)
    ->ArgNames({"sub", "mg"})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({128, 1})
    ->Unit(benchmark::kMillisecond);

// ---- nano::kernel batch micro-benchmarks (items = elements/s) ----------
// Each pins the dispatch ISA via the second argument (0 = scalar
// reference, 1 = AVX2 when the CPU has it) so before/after JSON captures
// the specialization win per kernel, independent of thread count.

bool forceIsa(benchmark::State& state) {
  const auto want =
      state.range(1) != 0 ? kernel::Isa::Avx2 : kernel::Isa::Scalar;
  if (kernel::setActiveIsa(want) != want) {
    state.SkipWithError("CPU lacks AVX2");
    return false;
  }
  return true;
}

// Prepared device Ion over a (Vth, Vdd) sweep batch. The family is
// scalar-only by design (libm-bound); the win is the prepared constants
// and the Illinois solve, visible against BM_VthSolve/BM_Sweep history.
void BM_KernelIonBatch(benchmark::State& state) {
  const auto& node = tech::nodeByFeature(35);
  const kernel::DeviceKernel kern = kernel::DeviceKernel::fromNode(node, node.vdd);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> vth(n), bias(n), out(n);
  for (std::size_t i = 0; i < n; ++i) {
    vth[i] = -0.05 + 0.35 * static_cast<double>(i) / static_cast<double>(n);
    bias[i] = 0.2 + 0.4 * static_cast<double>(i) / static_cast<double>(n);
  }
  for (auto _ : state) {
    kern.ionBatch(vth, bias, bias, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelIonBatch)->ArgNames({"n", "isa"})->Args({4096, 0});

void BM_KernelIoffBatch(benchmark::State& state) {
  const auto& node = tech::nodeByFeature(35);
  const kernel::DeviceKernel kern = kernel::DeviceKernel::fromNode(node, node.vdd);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> vth(n), bias(n), out(n);
  for (std::size_t i = 0; i < n; ++i) {
    vth[i] = -0.05 + 0.35 * static_cast<double>(i) / static_cast<double>(n);
    bias[i] = 0.2 + 0.4 * static_cast<double>(i) / static_cast<double>(n);
  }
  for (auto _ : state) {
    kern.ioffBatch(vth, bias, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelIoffBatch)->ArgNames({"n", "isa"})->Args({4096, 0});

// Baseline for the two batches above: the sweep inner kernel as it stood
// before the batch layer, rebuilding a Mosfet per point for the delay leg
// and again for the leakage leg (exactly what core::evaluate() used to
// do). The ratio against BM_KernelIonBatch + BM_KernelIoffBatch is the
// prepared-evaluator win in isolation.
void BM_KernelSweepInnerLegacy(benchmark::State& state) {
  const auto& node = tech::nodeByFeature(35);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> vth(n), bias(n), ion(n), ioff(n);
  for (std::size_t i = 0; i < n; ++i) {
    vth[i] = -0.05 + 0.35 * static_cast<double>(i) / static_cast<double>(n);
    bias[i] = 0.2 + 0.4 * static_cast<double>(i) / static_cast<double>(n);
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      {
        device::MosfetParams p =
            device::Mosfet::fromNode(node, vth[i]).params();
        p.vddReference = node.vdd;
        ion[i] = device::Mosfet(p).ionSelfConsistent(bias[i], bias[i]);
      }
      {
        device::MosfetParams p =
            device::Mosfet::fromNode(node, vth[i]).params();
        p.vddReference = node.vdd;
        ioff[i] = device::Mosfet(p).ioff(bias[i]);
      }
    }
    benchmark::DoNotOptimize(ion.data());
    benchmark::DoNotOptimize(ioff.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelSweepInnerLegacy)->ArgNames({"n", "isa"})->Args({4096, 0});

// Elmore segment delay, the elementwise kernel with a true AVX2 variant.
void BM_KernelRepeaterBatch(benchmark::State& state) {
  const auto& node = tech::nodeByFeature(100);
  const interconnect::RepeaterDriver driver =
      interconnect::RepeaterDriver::fromNode(node);
  const interconnect::WireRc rc =
      interconnect::computeWireRc(interconnect::topLevelWire(node));
  if (!forceIsa(state)) return;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> size(n), length(n), out(n);
  for (std::size_t i = 0; i < n; ++i) {
    size[i] = 10.0 + 90.0 * static_cast<double>(i) / static_cast<double>(n);
    length[i] = 1e-4 + 1e-3 * static_cast<double>(i) / static_cast<double>(n);
  }
  for (auto _ : state) {
    interconnect::segmentDelayBatch(driver, rc, size, length, out);
    benchmark::DoNotOptimize(out.data());
  }
  kernel::setActiveIsa(kernel::detectIsa());
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelRepeaterBatch)
    ->ArgNames({"n", "isa"})
    ->Args({65536, 0})
    ->Args({65536, 1});

// SpMV on the power-grid Laplacian: scalar CSR reference vs the SELL-4
// gather variant, on the same matrix the CG solve iterates.
void BM_KernelSpmv(benchmark::State& state) {
  powergrid::GridConfig cfg;
  cfg.railPitch = 160e-6;
  cfg.bumpPitch = 640e-6;
  cfg.railWidth = 2e-6;
  cfg.tilesX = cfg.tilesY = 10;
  cfg.subdivisions = static_cast<int>(state.range(0));
  const auto model = powergrid::GridModel::forConfig(cfg);
  const powergrid::SparseSpd& a = model->unitLaplacian();
  const std::size_t n = a.size();
  std::vector<double> x(n, 1.0), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 1.0 + 0.001 * static_cast<double>(i % 97);
  }
  if (!forceIsa(state)) return;
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  kernel::setActiveIsa(kernel::detectIsa());
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.counters["nnz"] = static_cast<double>(a.nonZeros());
}
BENCHMARK(BM_KernelSpmv)
    ->ArgNames({"sub", "isa"})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Unit(benchmark::kMicrosecond);

// Service-layer throughput: a mixed query stream (8x repetition of a
// unique set, like a sweep client re-asking overlapping questions) pushed
// through the full stack — parse-free submit, scheduler batching, cache +
// in-flight dedup, evaluation on the exec pool. Items = requests/s; the
// hit_rate counter reports the fraction served from cache.
void BM_SvcThroughput(benchmark::State& state) {
  constexpr int kUnique = 64;
  constexpr int kRequests = 512;
  std::vector<svc::Request> mix;
  mix.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    const int u = i % kUnique;
    svc::Request r;
    if (u % 2 == 0) {
      r.kind = svc::RequestKind::DesignPoint;
      svc::DesignPointParams p;
      p.vdd = 0.45 + 0.002 * u;
      r.params = p;
    } else {
      r.kind = svc::RequestKind::Wire;
      svc::WireParams p;
      p.widthMultiple = 1.0 + 0.125 * u;
      r.params = p;
    }
    mix.push_back(std::move(r));
  }

  auto& registry = obs::MetricsRegistry::instance();
  const bool wasEnabled = obs::enabled();
  obs::setEnabled(true);
  const double hits0 = registry.counter("svc/cache_hits").value();
  const double joins0 = registry.counter("svc/dedup_joins").value();
  const double misses0 = registry.counter("svc/cache_misses").value();

  for (auto _ : state) {
    svc::ServiceOptions options;
    options.blockWhenFull = true;
    svc::Service service(options);
    std::vector<std::future<svc::Response>> futures;
    futures.reserve(mix.size());
    for (const svc::Request& r : mix) futures.push_back(service.submit(r));
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }

  const double hits = registry.counter("svc/cache_hits").value() - hits0;
  const double joins = registry.counter("svc/dedup_joins").value() - joins0;
  const double misses = registry.counter("svc/cache_misses").value() - misses0;
  obs::setEnabled(wasEnabled);
  state.SetItemsProcessed(state.iterations() * kRequests);
  state.counters["threads"] = exec::threadCount();
  state.counters["hit_rate"] = (hits + joins) / (hits + joins + misses);
}
BENCHMARK(BM_SvcThroughput)->Unit(benchmark::kMillisecond);

// Closed-loop scenario engine: one DTM run of Arg(0) steps over the
// cached canonical plant. Items = integration steps/s; the plant build
// (netlist + STA + grid solve) happens once outside the timed loop, so
// this times the per-step feedback arithmetic and check evaluation.
void BM_Scenario(benchmark::State& state) {
  scenario::ScenarioSpec spec;
  spec.steps = state.range(0);
  spec.traceStride = 1000;
  scenario::ScenarioSetup setup = scenario::makeScenario(spec);
  long checks = 0;
  for (auto _ : state) {
    const scenario::ScenarioResult r =
        scenario::runScenario(*setup.plant, *setup.policy, setup.config);
    checks = r.checksEvaluated;
    benchmark::DoNotOptimize(r.energyJ);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["checks_per_run"] = static_cast<double>(checks);
}
BENCHMARK(BM_Scenario)->Arg(2000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_TransientSim(benchmark::State& state) {
  const auto& node = tech::nodeByFeature(100);
  const double vth = device::solveVthForIon(node, node.ionTarget);
  auto model =
      std::make_shared<device::Mosfet>(device::Mosfet::fromNode(node, vth));
  device::InverterModel inv(node, vth, node.vdd);
  sim::Circuit ckt;
  const int vdd = ckt.node();
  ckt.add(sim::VoltageSource{vdd, 0, sim::Waveform::dc(node.vdd)});
  const int in = ckt.node();
  ckt.add(sim::VoltageSource{
      in, 0, sim::Waveform::pulse(0, node.vdd, 20e-12, 5e-12, 1, 5e-12)});
  int prev = in;
  for (int i = 0; i < 8; ++i) {
    const int out = ckt.node();
    ckt.addInverter(prev, out, vdd, model, inv.wn(), inv.wp());
    prev = out;
  }
  std::size_t timesteps = 0;
  for (auto _ : state) {
    sim::Simulator sim(ckt);
    const sim::TransientResult res = sim.transient(300e-12, 0.5e-12);
    timesteps = res.time.size() - 1;
    benchmark::DoNotOptimize(res.voltages);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(timesteps));  // timesteps/s
}
BENCHMARK(BM_TransientSim)->Unit(benchmark::kMillisecond);

}  // namespace

// Like BENCHMARK_MAIN(), plus the obs run report (NANO_OBS=1) so kernel
// timings come with solver convergence counters attached.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (nano::obs::enabled()) {
    std::cout << '\n';
    nano::obs::printRunReport(std::cout);
  }
  return 0;
}
