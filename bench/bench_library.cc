// Section 2.3 claims: library granularity and on-the-fly cell generation.
//  * smallest-inverter input capacitance of a rich library (paper: 1.5 fF
//    at 180 nm, refuting [15]'s "10x minimum size" claim)
//  * on-the-fly exact sizing on top of a coarse library recovers
//    double-digit power at fixed timing (paper: 15-22 %).
#include <iostream>

#include "circuit/generator.h"
#include "opt/sizing.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace nano;
  using namespace nano::units;
  using util::fmt;

  std::cout << "Library granularity (smallest inverter input cap):\n";
  util::TextTable g({"node (nm)", "rich library (fF)", "coarse {4,16,32} (fF)"});
  for (int f : {180, 100, 50}) {
    const circuit::Library rich(tech::nodeByFeature(f));
    circuit::LibraryConfig coarseCfg;
    coarseCfg.driveStrengths = {4, 16, 32};
    const circuit::Library coarse(tech::nodeByFeature(f), coarseCfg);
    g.addRow({std::to_string(f),
              fmt(rich.smallestInverterInputCap() / fF, 2),
              fmt(coarse.smallestInverterInputCap() / fF, 2)});
  }
  g.print(std::cout);
  std::cout << "(paper: the smallest 180 nm standard-cell inverter is just"
               " 1.5 fF — modern libraries are not 10x minimum size)\n\n";

  std::cout << "On-the-fly cell generation vs discrete libraries\n"
               "(1200-gate block mapped at drive 4, then re-sized to a"
               " target stage effort of 4, timing preserved):\n";
  util::TextTable t({"library", "sizing", "power saving", "area saving",
                     "timing met"});
  double powerAfterRichDiscrete = 0.0;
  double powerAfterRichCustom = 0.0;
  for (bool richLib : {false, true}) {
    circuit::LibraryConfig cfg;
    if (!richLib) cfg.driveStrengths = {1, 4, 16};
    const circuit::Library lib(tech::nodeByFeature(100), cfg);
    util::Rng rng(909);
    circuit::GeneratorConfig gcfg;
    gcfg.gates = 1200;
    circuit::Netlist nl = circuit::pipelinedLogic(lib, gcfg, rng, 6);
    for (int gate : nl.gateIds()) {
      const auto& cell = nl.node(gate).cell;
      nl.replaceCell(gate, lib.pick(cell.function, 4.0));
    }
    for (bool custom : {false, true}) {
      opt::SizingOptions so;
      so.continuousSizes = custom;
      const opt::SizingResult r = opt::sizeToLoad(nl, lib, 4.0, so);
      t.addRow({richLib ? "rich (11 sizes)" : "coarse {1,4,16}",
                custom ? "on-the-fly exact" : "discrete round-up",
                fmt(100 * r.powerSavings(), 1) + " %",
                fmt(100 * r.areaSavings(), 1) + " %",
                r.timingAfter.meetsTiming() ? "yes" : "NO"});
      if (richLib) {
        (custom ? powerAfterRichCustom : powerAfterRichDiscrete) =
            r.powerAfter.total();
      }
    }
  }
  t.print(std::cout);
  std::cout << "On-the-fly cells over the already-rich library save a"
               " further "
            << fmt(100 * (1.0 - powerAfterRichCustom / powerAfterRichDiscrete),
                   1)
            << " % (paper [17]: 15-22 % power reductions with fixed"
               " timing — the win comes from not overdriving small"
               " loads)\n";
  return 0;
}
