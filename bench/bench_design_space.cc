// Section 3.3's endgame, generalized: the full (Vdd, Vth) design-space
// exploration the paper says multi-Vdd + multi-Vth hand to EDA tools.
// Prints the total-power-optimal operating point per delay target, with
// and without the ITRS leakage cap (Pdyn >= 10 * Pstat) — the capped
// iso-delay optimum is the paper's "Vdd of about 0.44 V is attainable,
// providing 46 % dynamic power reduction".
#include <iostream>

#include "core/design_space.h"
#include "util/csv.h"
#include "util/table.h"

int main() {
  using namespace nano;
  using util::fmt;

  core::DesignSpaceOptions options;
  options.nodeNm = 35;
  options.activity = 0.1;

  std::cout << "Optimal (Vdd, Vth) per delay target at 35 nm, activity 0.1"
               " (normalized to the nominal 0.6 V / Table-2 Vth corner):\n\n";

  for (bool capped : {false, true}) {
    std::cout << (capped ? "With the ITRS cap (Pdyn >= 10 * Pstat):"
                         : "Unconstrained leakage:")
              << '\n';
    util::TextTable t({"delay target", "Vdd (V)", "Vth (V)", "total power",
                       "dynamic", "static share"});
    for (double target : {1.0, 1.2, 1.5, 2.0, 3.0}) {
      const auto pt =
          capped ? core::optimalPoint(options, target,
                                      core::kItrsStaticFractionCap)
                 : core::optimalPoint(options, target);
      t.addRow({fmt(target, 1) + "x", fmt(pt.vdd, 3), fmt(pt.vthDesign, 3),
                fmt(100 * pt.ptotalNorm, 1) + " %",
                fmt(100 * pt.pdynNorm, 1) + " %",
                fmt(100 * pt.staticFraction, 1) + " %"});
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  const auto itrsPoint =
      core::optimalPoint(options, 1.0, core::kItrsStaticFractionCap);
  std::cout << "Headline: at ISO-delay under the ITRS cap the optimum is"
               " Vdd = "
            << fmt(itrsPoint.vdd, 2) << " V with "
            << fmt(100 * (1.0 - itrsPoint.ptotalNorm), 0)
            << " % total power saved (paper: ~0.44 V, 46 %).\n"
               "Without the cap the model pins Vdd at the floor and buys"
               " the speed back with near-zero Vth — the leakage constraint,"
               " not delay, is what sets the practical supply floor.\n\n";

  // Dump the full surface for plotting.
  util::CsvWriter csv("design_space.csv",
                      {"vdd", "vth", "delay_norm", "pdyn_norm", "pstat_norm",
                       "ptotal_norm"});
  for (const auto& pt : core::exploreDesignSpace(options)) {
    csv.row(std::vector<double>{pt.vdd, pt.vthDesign, pt.delayNorm,
                                pt.pdynNorm, pt.pstatNorm, pt.ptotalNorm});
  }
  std::cout << "(full surface written to design_space.csv)\n";
  return 0;
}
