// Reproduces Figure 2: dual-Vth scalability — Ion gain of a 100 mV Vth
// reduction per node, the Ioff penalty of a +20 % Ion target, and the
// published 130 nm-class validation points.
#include <iostream>

#include "core/experiments.h"
#include "core/report.h"
#include "tech/literature.h"
#include "util/csv.h"
#include "util/table.h"

int main() {
  using namespace nano;
  const auto series = core::computeFigure2();
  core::printFigure2(std::cout, series);

  std::cout << "\nPublished validation points:\n";
  for (const auto& d : tech::figure2DataPoints()) {
    std::cout << " * " << d.reference << ": " << util::fmt(d.ionGainPercent, 0)
              << " % Ion gain at the " << d.nodeNm << " nm-class node\n";
  }
  std::cout << "Model at 130 nm: "
            << util::fmt(series[1].ionGainPercent, 1) << " %\n";

  std::cout << "\nScalability conclusion (paper): the Ioff price of a 20 % "
               "drive boost falls from "
            << util::fmt(series.front().ioffPenaltyFor20, 0) << "x at 180 nm to "
            << util::fmt(series.back().ioffPenaltyFor20, 1)
            << "x at 35 nm (paper: 54x -> 7x) — dual-Vth gets cheaper with "
               "scaling.\n";

  util::CsvWriter csv("fig2.csv", {"node_nm", "ion_gain_pct", "ioff_penalty"});
  for (const auto& p : series) {
    csv.row(std::vector<double>{static_cast<double>(p.nodeNm),
                                p.ionGainPercent, p.ioffPenaltyFor20});
  }
  std::cout << "(series written to fig2.csv)\n";
  return 0;
}
