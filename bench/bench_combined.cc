// Section 3.3 claims: the combined multi-Vdd + multi-Vth + re-sizing
// approach, including the ordering argument (re-sizing first consumes the
// slack multi-Vdd needs; the quadratic Vdd saving should come first).
#include <iostream>

#include "circuit/generator.h"
#include "opt/combined.h"
#include "opt/simultaneous.h"
#include "util/table.h"

namespace {

nano::circuit::Netlist makeDesign(const nano::circuit::Library& lib) {
  nano::util::Rng rng(2026);
  nano::circuit::GeneratorConfig cfg;
  cfg.gates = 1200;
  cfg.outputs = 80;
  nano::circuit::Netlist nl = nano::circuit::pipelinedLogic(lib, cfg, rng, 8);
  for (int g : nl.gateIds()) {
    const auto& cell = nl.node(g).cell;
    nl.replaceCell(g, lib.pick(cell.function, 2.0));
  }
  return nl;
}

}  // namespace

int main() {
  using namespace nano;
  using util::fmt;

  const auto& node = tech::nodeByFeature(70);
  const circuit::Library lib(node);
  const circuit::Netlist design = makeDesign(lib);

  auto report = [&](const char* title, const opt::FlowOptions& options) {
    const opt::FlowResult r = opt::runFlow(design, lib, options);
    std::cout << title << ":\n";
    util::TextTable t({"stage", "total power (uW)", "vs start", "low-Vdd",
                       "high-Vth", "timing"});
    t.addRow({"(start)", fmt(r.powerBefore.total() * 1e6, 1), "100 %", "0 %",
              "0 %", "met"});
    for (const auto& s : r.stages) {
      t.addRow({s.name, fmt(s.power.total() * 1e6, 1),
                fmt(100 * s.power.total() / r.powerBefore.total(), 0) + " %",
                fmt(100 * s.fractionLowVdd, 0) + " %",
                fmt(100 * s.fractionHighVth, 0) + " %",
                s.timing.meetsTiming() ? "met" : "VIOLATED"});
    }
    t.print(std::cout);
    return r;
  };

  opt::FlowOptions vddFirst;  // the paper's recommended order
  vddFirst.stages = {opt::FlowStage::MultiVdd, opt::FlowStage::DualVth,
                     opt::FlowStage::Downsize};
  const auto a = report("Paper's order: multi-Vdd -> dual-Vth -> re-sizing",
                        vddFirst);

  opt::FlowOptions sizeFirst;  // today's practice the paper criticizes
  sizeFirst.stages = {opt::FlowStage::Downsize, opt::FlowStage::DualVth,
                      opt::FlowStage::MultiVdd};
  const auto b = report("\nToday's practice: re-sizing first", sizeFirst);

  // The ref-[22] alternative: interleave sizing and Vth moves by marginal
  // benefit instead of staging them (on a 400-gate slice; the greedy
  // re-evaluates every gate per move, so it is the slow gold standard).
  util::Rng simRng(77);
  circuit::GeneratorConfig simCfg;
  simCfg.gates = 400;
  simCfg.outputs = 32;
  circuit::Netlist simDesign = circuit::pipelinedLogic(lib, simCfg, simRng, 5);
  for (int g : simDesign.gateIds()) {
    const auto& cell = simDesign.node(g).cell;
    simDesign.replaceCell(g, lib.pick(cell.function, 2.0));
  }
  const opt::SimultaneousResult sim = opt::runSimultaneous(simDesign, lib);
  std::cout << "\nSimultaneous sizing+Vth (ref [22] style): "
            << fmt(100 * (1.0 - sim.powerAfter.total() /
                                    sim.powerBefore.total()),
                   0)
            << " % of power removed with " << sim.sizeMoves
            << " sizing and " << sim.vthMoves
            << " Vth moves, timing "
            << (sim.timingAfter.meetsTiming() ? "met" : "VIOLATED")
            << " (no multi-Vdd; compare against the dual-Vth + re-sizing"
               " stages above).\n";

  std::cout << "\nOrdering result: Vdd-first ends at "
            << fmt(100 * (1.0 - a.totalSavings()), 0)
            << " % of starting power vs "
            << fmt(100 * (1.0 - b.totalSavings()), 0)
            << " % for sizing-first; sizing-first leaves only "
            << fmt(100 * b.stages.back().fractionLowVdd, 0)
            << " % of gates at Vdd,l vs "
            << fmt(100 * a.stages[0].fractionLowVdd, 0)
            << " % (the paper's sub-optimality argument: the sub-linear"
               " sizing return eats the slack the quadratic Vdd saving"
               " needed).\n";
  return 0;
}
