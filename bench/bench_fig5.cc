// Reproduces Figure 5: IR-drop scaling — required power-rail linewidth
// (normalized to the minimum top-level width) for <10 % IR drop at
// hot-spots, under (a) the minimum manufacturable bump pitch and (b) the
// ITRS-projected pad counts; plus routing-resource and bump-current
// checks, with a resistive-mesh cross-check of the closed form.
#include <iostream>

#include "core/experiments.h"
#include "core/report.h"
#include "util/csv.h"
#include "util/table.h"

int main() {
  using namespace nano;
  const auto rows = core::computeFigure5(/*withMeshCrossCheck=*/true);
  core::printFigure5(std::cout, rows);

  std::cout << "\nMesh cross-check (2-D waffle solver at the solved width;"
               " lateral sharing makes the mesh ~half the 1-D budget):\n";
  util::TextTable t({"node (nm)", "budget/polarity", "mesh drop (min pitch)",
                     "mesh drop (ITRS)"});
  for (const auto& r : rows) {
    t.addRow({std::to_string(r.nodeNm), "5.0 %",
              util::fmt(100 * r.minPitch.meshDropFraction, 2) + " %",
              util::fmt(100 * r.itrs.meshDropFraction, 2) + " %"});
  }
  t.print(std::cout);

  const auto& last = rows.back();
  std::cout << "\n35 nm summary: min-pitch rails need "
            << util::fmt(last.minPitch.widthOverMin, 1)
            << "x the minimum width (paper ~16x) vs "
            << util::fmt(last.itrs.widthOverMin, 0)
            << "x under ITRS pad counts (paper >2000x) — the ITRS pad "
               "projection, not the technology, is the bottleneck.\n"
            << "Hot-spot bump current at the ITRS pitch: "
            << util::fmt(last.itrs.bumpCurrent, 2) << " A vs the "
            << util::fmt(tech::nodeByFeature(35).bumpCurrentLimit, 2)
            << " A/bump capability (incompatible, as the paper notes for "
               "300 A on 1500 Vdd bumps).\n";

  util::CsvWriter csv("fig5.csv",
                      {"node_nm", "w_over_min_minpitch", "w_over_min_itrs",
                       "routing_frac_minpitch", "routing_frac_itrs"});
  for (const auto& r : rows) {
    csv.row(std::vector<double>{static_cast<double>(r.nodeNm),
                                r.minPitch.widthOverMin, r.itrs.widthOverMin,
                                r.minPitch.routingFraction,
                                r.itrs.routingFraction});
  }
  std::cout << "(series written to fig5.csv)\n";
  return 0;
}
