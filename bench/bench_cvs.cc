// Section 2.4 claims: clustered voltage scaling (multi-Vdd).
//  * path-slack profile ("over half of all paths use less than half the
//    clock cycle")
//  * fraction of gates assignable to Vdd,l = 0.65*Vdd,h (paper: ~75 %)
//  * dynamic power reduction (paper: 45-50 % incl. 8-10 % conversion)
#include <iostream>

#include "circuit/generator.h"
#include "opt/cvs.h"
#include "util/table.h"

int main() {
  using namespace nano;
  using util::fmt;

  const auto& node = tech::nodeByFeature(100);
  const circuit::Library lib(node);
  util::Rng rng(42);
  circuit::GeneratorConfig cfg;
  cfg.gates = 2000;
  cfg.outputs = 128;
  const circuit::Netlist design = circuit::pipelinedLogic(lib, cfg, rng, 10);

  const auto timing = sta::analyze(design);
  std::cout << "Design: " << design.gateCount() << " gates, "
            << design.outputs().size() << " endpoints, critical path "
            << fmt(timing.criticalPathDelay * 1e12, 0) << " ps\n";
  std::cout << "Path-delay profile: "
            << fmt(100 * sta::fractionOfPathsFasterThan(timing, design, 0.5), 0)
            << " % of paths use less than half the clock (paper: over"
               " half)\n";
  const auto hist = sta::pathDelayHistogram(timing, design, 10);
  std::cout << "Histogram (fraction of endpoints per 10 % of clock):\n  ";
  for (int b = 0; b < hist.bins(); ++b) {
    std::cout << fmt(100 * hist.fraction(b), 0) << "% ";
  }
  std::cout << "\n\n";

  const opt::CvsResult r = opt::runCvs(design, lib);
  util::TextTable t({"metric", "model", "paper"});
  t.addRow({"gates at Vdd,l", fmt(100 * r.fractionLowVdd, 0) + " %", "~75 %"});
  t.addRow({"level converters", std::to_string(r.convertersAdded), "-"});
  t.addRow({"dynamic power reduction", fmt(100 * r.dynamicSavings(), 0) + " %",
            "45-50 %"});
  t.addRow({"conversion share of dynamic power",
            fmt(100 * r.converterPowerFraction(), 0) + " %", "8-10 %"});
  t.addRow({"timing met", r.timingAfter.meetsTiming() ? "yes" : "NO", "yes"});
  t.print(std::cout);
  std::cout << "(Vdd,l = 0.65 * Vdd,h, the ratio the paper identifies as"
               " optimal; conversion happens in level-converting capture"
               " stages at block outputs)\n";
  return 0;
}
