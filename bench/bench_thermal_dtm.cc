// Section 2.1 claims: packaging limits and dynamic thermal management.
//  * required theta_ja across the roadmap (0.6->0.22 K/W)
//  * the 65 -> 75 W cooling-cost cliff (~3x)
//  * DTM: rating for the effective worst case (75 % of theoretical) allows
//    33 % higher theta_ja; closed-loop simulation shows the junction limit
//    still holds under a power virus.
#include <iostream>

#include "tech/itrs.h"
#include "thermal/cooling_cost.h"
#include "thermal/dtm.h"
#include "thermal/dvfs.h"
#include "thermal/thermal_grid.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace nano;
  using namespace nano::units;
  using util::fmt;

  std::cout << "Packaging requirement across the roadmap (Eq. 1):\n";
  util::TextTable t({"node (nm)", "power (W)", "Tj max (C)",
                     "required theta_ja (K/W)", "cheapest packaging",
                     "cost ($)"});
  for (int f : tech::roadmapFeatures()) {
    const auto& n = tech::nodeByFeature(f);
    const auto& sol =
        thermal::cheapestSolutionFor(n.maxPower, n.tjMax, n.tAmbient);
    t.addRow({std::to_string(f), fmt(n.maxPower, 0),
              fmt(toCelsius(n.tjMax), 0), fmt(n.requiredThetaJa(), 3),
              sol.name, fmt(sol.cost(n.maxPower), 0)});
  }
  t.print(std::cout);
  std::cout << "(paper: 0.6-1.0 K/W today, ITRS calls for 0.25 K/W within"
               " 3 years)\n\n";

  std::cout << "Cooling-cost cliff (paper's Intel anecdote):\n";
  for (double p : {55.0, 65.0, 75.0, 100.0, 130.0, 180.0}) {
    const auto& sol =
        thermal::cheapestSolutionFor(p, fromCelsius(85.0), fromCelsius(45.0));
    std::cout << "  " << fmt(p, 0) << " W -> " << sol.name << " ($"
              << fmt(sol.cost(p), 0) << ")\n";
  }
  const double c65 =
      thermal::coolingCostUsd(65.0, fromCelsius(85.0), fromCelsius(45.0));
  const double c75 =
      thermal::coolingCostUsd(75.0, fromCelsius(85.0), fromCelsius(45.0));
  std::cout << "65 -> 75 W multiplies cooling cost by " << fmt(c75 / c65, 1)
            << "x (paper: ~3x)\n\n";

  std::cout << "DTM: effective vs theoretical worst case (100 W design):\n";
  const auto savings =
      thermal::dtmCostSavings(100.0, fromCelsius(85.0), fromCelsius(45.0));
  std::cout << "  theta_ja allowed: " << fmt(savings.thetaJaTheoretical, 3)
            << " -> " << fmt(savings.thetaJaEffective, 3) << " K/W (+"
            << fmt(100 * (savings.thetaJaEffective /
                              savings.thetaJaTheoretical -
                          1.0),
                   0)
            << " %, paper: +33 %)\n"
            << "  packaging cost: $" << fmt(savings.costTheoreticalUsd, 0)
            << " -> $" << fmt(savings.costEffectiveUsd, 0) << " ("
            << fmt(savings.costRatio(), 1) << "x)\n\n";

  std::cout << "Closed-loop DTM simulation (package sized for 75 W"
               " effective):\n";
  const thermal::ThermalPackage pkg(savings.thetaJaEffective, 0.02);
  thermal::DtmPolicy policy;
  policy.tripTemperature = fromCelsius(83.0);
  util::TextTable d({"workload", "max Tj (C)", "throughput", "throttled"});
  util::Rng rng(1234);
  const auto app = thermal::typicalApplication(rng, 0.5);
  const auto appRes = thermal::simulateDtm(pkg, app, 100.0, fromCelsius(45.0),
                                           policy);
  d.addRow({"power-hungry application", fmt(toCelsius(appRes.maxTemperature), 1),
            fmt(100 * appRes.throughputFraction, 1) + " %",
            fmt(100 * appRes.throttledFraction, 1) + " %"});
  const auto virusRes = thermal::simulateDtm(
      pkg, thermal::powerVirus(0.5), 100.0, fromCelsius(45.0), policy);
  d.addRow({"power virus (theoretical worst)",
            fmt(toCelsius(virusRes.maxTemperature), 1),
            fmt(100 * virusRes.throughputFraction, 1) + " %",
            fmt(100 * virusRes.throttledFraction, 1) + " %"});
  thermal::DtmPolicy off = policy;
  off.enabled = false;
  const auto unprotected = thermal::simulateDtm(
      pkg, thermal::powerVirus(0.5), 100.0, fromCelsius(45.0), off);
  d.addRow({"power virus, DTM disabled",
            fmt(toCelsius(unprotected.maxTemperature), 1), "100.0 %", "0.0 %"});
  d.print(std::cout);
  std::cout << "(real applications run unthrottled; the virus is clamped at"
               " the trip point instead of cooking the die)\n\n";

  std::cout << "DVFS (the paper's Transmeta reference) vs race-to-idle on"
               " a variable load (100 W peak):\n";
  {
    const thermal::ThermalPackage pkg2(0.5, 0.02);
    thermal::PowerTrace loadTrace;
    for (double d : {0.2, 0.5, 0.9, 0.3, 0.6, 0.1}) {
      loadTrace.phases.push_back({2e-3, d});
    }
    const auto dvfs = thermal::simulateDvfs(pkg2, loadTrace, 100.0,
                                            fromCelsius(45.0));
    std::cout << "  energy: " << fmt(dvfs.energy, 3) << " J vs "
              << fmt(dvfs.energyFullSpeed, 3)
              << " J race-to-idle => " << fmt(100 * dvfs.energySavings(), 0)
              << " % saved at full throughput (max Tj "
              << fmt(toCelsius(dvfs.maxTemperature), 1)
              << " C)\n  (voltage hopping converts light load into V^2"
                 " energy savings instead of idle time — complementary to"
                 " the emergency clock throttle above)\n\n";
  }

  std::cout << "Die temperature maps (2-D solver; 4x hot-spot, 15 % of the"
               " die edge):\n";
  util::TextTable g({"node (nm)", "avg Tj (C)", "peak Tj (C)",
                     "hot-spot temp contrast (4x power)"});
  for (int f : {180, 100, 50, 35}) {
    thermal::ThermalGridConfig cfg =
        thermal::thermalGridForNode(tech::nodeByFeature(f));
    cfg.hotspotFactor = 4.0;
    cfg.hotspotFraction = 0.15;
    const auto map = thermal::solveThermalGrid(cfg);
    g.addRow({std::to_string(f), fmt(toCelsius(map.avgT), 1),
              fmt(toCelsius(map.maxT), 1),
              fmt(map.hotspotContrast, 2) + "x"});
  }
  g.print(std::cout);
  std::cout << "(silicon spreading turns the Section-4 4x power-density"
               " hot-spot into a much smaller temperature contrast — but"
               " the peak still decides the DTM trip point and the power"
               " grid still sees the full 4x current density)\n";
  return 0;
}
