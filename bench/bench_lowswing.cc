// Section 2.2 claims: low-swing / differential signaling vs full-swing
// repeated CMOS for cross-chip links (the Alpha 21264-style bus).
#include <cmath>
#include <iostream>

#include "signaling/comparison.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace nano;
  using namespace nano::units;
  using util::fmt;

  for (int f : {70, 50}) {
    const auto& node = tech::nodeByFeature(f);
    std::cout << "Die-crossing link at " << f << " nm ("
              << fmt(std::sqrt(node.dieArea) * 1e3, 1) << " mm):\n";
    util::TextTable t({"strategy", "delay (ps)", "energy/bit (fJ)",
                       "power @ global clk (mW)", "peak I (mA)", "tracks",
                       "noise margin (mV)"});
    for (const auto& s : signaling::compareStrategies(node)) {
      t.addRow({s.name, fmt(s.link.delay * 1e12, 0),
                fmt(s.link.energyPerTransition * 1e15, 0),
                fmt(s.powerAtGlobalClock * 1e3, 2),
                fmt(s.link.peakSupplyCurrent * 1e3, 1),
                fmt(s.link.routingTracks, 0),
                fmt(s.noise.noiseMargin * 1e3, 1)});
    }
    t.print(std::cout);
  }

  std::cout << "\n64-bit cross-chip bus at 70 nm (Alpha 21264 scenario,"
               " swing = 10 % of Vdd):\n";
  const auto cmp = signaling::compareBus(tech::nodeByFeature(70), 64, 15e-3);
  util::TextTable b({"metric", "full-swing repeated", "low-swing differential",
                     "ratio"});
  b.addRow({"bus power (W)", fmt(cmp.fullSwing.powerAtGlobalClock, 2),
            fmt(cmp.lowSwingDifferential.powerAtGlobalClock, 3),
            fmt(cmp.powerRatio, 1) + "x"});
  b.addRow({"peak supply current (A)",
            fmt(cmp.fullSwing.link.peakSupplyCurrent, 2),
            fmt(cmp.lowSwingDifferential.link.peakSupplyCurrent, 2),
            fmt(cmp.peakCurrentRatio, 1) + "x"});
  b.addRow({"routing tracks / bit", fmt(cmp.fullSwing.link.routingTracks, 0),
            fmt(cmp.lowSwingDifferential.link.routingTracks, 0),
            fmt(cmp.trackRatio, 2) + "x"});
  b.print(std::cout);
  std::cout << "(paper: worst-case bus power cut significantly by the 10 %"
               " swing; differential routing costs less than the naive 2x"
               " because long full-swing lines need shields anyway; smaller"
               " grid current transients are a bonus for power"
               " distribution)\n";
  return 0;
}
