// Section 2.2 claims: global signaling with repeater-inserted RC wires.
//  * repeater population grows from ~1e4 (180 nm) to ~1e6 (50 nm)
//  * the repeated-wire subsystem burns > 50 W in the nanometer regime
//  * unscaled (180 nm geometry) top-level wires can meet the ITRS global
//    clock, scaled ones cannot.
#include <iostream>

#include "interconnect/global_wiring.h"
#include "interconnect/wire_sizing.h"
#include "util/csv.h"
#include "util/table.h"

int main() {
  using namespace nano;
  using util::fmt;
  using util::fmtSci;

  std::cout << "Global-wiring rollup per node (scaled top-level wires):\n";
  util::TextTable t({"node (nm)", "global nets", "total wire (m)",
                     "repeater pitch (mm)", "repeater size (x)", "repeaters",
                     "power (W)", "die crossing (cycles)"});
  util::CsvWriter csv("repeaters.csv",
                      {"node_nm", "repeaters", "power_w", "cycles_scaled",
                       "cycles_unscaled"});
  for (int f : tech::roadmapFeatures()) {
    const auto& node = tech::nodeByFeature(f);
    const auto rep = interconnect::analyzeGlobalWiring(node);
    t.addRow({std::to_string(f), fmt(rep.globalNetCount, 0),
              fmt(rep.totalWireLength, 0),
              fmt(rep.design.segmentLength * 1e3, 2), fmt(rep.design.size, 0),
              fmtSci(rep.repeaterCount, 2), fmt(rep.power.total(), 1),
              fmt(rep.cyclesToCrossDie, 2)});
    interconnect::GlobalWiringOptions u;
    u.unscaledWires = true;
    const auto repU = interconnect::analyzeGlobalWiring(node, u);
    csv.row(std::vector<double>{static_cast<double>(f), rep.repeaterCount,
                                rep.power.total(), rep.cyclesToCrossDie,
                                repU.cyclesToCrossDie});
  }
  t.print(std::cout);
  std::cout << "(paper anchors: ~1e4 repeaters in a large 180 nm MPU [11],"
               " ~1e6 at 50 nm, > 50 W of global signaling power)\n\n";

  std::cout << "Unscaled top-level wiring (the [9] scenario):\n";
  util::TextTable u({"node (nm)", "delay/mm scaled (ps)",
                     "delay/mm unscaled (ps)", "crossing scaled (cyc)",
                     "crossing unscaled (cyc)"});
  for (int f : tech::roadmapFeatures()) {
    const auto& node = tech::nodeByFeature(f);
    const auto s = interconnect::analyzeGlobalWiring(node);
    interconnect::GlobalWiringOptions opt;
    opt.unscaledWires = true;
    const auto un = interconnect::analyzeGlobalWiring(node, opt);
    u.addRow({std::to_string(f), fmt(s.delayPerMeter * 1e9, 1),
              fmt(un.delayPerMeter * 1e9, 1), fmt(s.cyclesToCrossDie, 2),
              fmt(un.cyclesToCrossDie, 2)});
  }
  u.print(std::cout);
  std::cout << "(paper: ITRS global clock rates are reachable with unscaled"
               " top wires — about one global cycle per die crossing — while"
               " scaled wires need several cycles by 35 nm)\n\n";

  std::cout << "Wire-sizing Pareto at 50 nm (each point re-optimizes the"
               " repeaters):\n";
  util::TextTable w({"width x", "spacing x", "delay (ps/mm)",
                     "energy (fJ/mm/bit)", "tracks"});
  const auto& n50 = tech::nodeByFeature(50);
  for (const auto& p : interconnect::paretoFrontier(
           interconnect::sweepWireSizing(n50, {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0},
                                         {1.0, 2.0}))) {
    w.addRow({fmt(p.widthMultiple, 1), fmt(p.spacingMultiple, 1),
              fmt(p.delayPerMeter * 1e9, 1), fmt(p.energyPerMeterBit * 1e12, 1),
              fmt(p.tracksPerWire, 1)});
  }
  w.print(std::cout);
  const auto choice = interconnect::chooseWireSizing(n50, 0.10);
  std::cout << "Spending 10 % of delay: width " << fmt(choice.efficient.widthMultiple, 1)
            << "x / spacing " << fmt(choice.efficient.spacingMultiple, 1)
            << "x saves " << fmt(100 * choice.energySavedFraction, 0)
            << " % of per-bit energy vs the fastest geometry.\n"
            << "(series written to repeaters.csv)\n";
  return 0;
}
