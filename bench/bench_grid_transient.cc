// Section 4 claims: power-delivery transients.
//  * waking from standby ramps hundreds of amps in nanoseconds; the bump
//    array's inductance turns dI/dt into supply noise
//  * the minimum bump pitch provides a much lower-inductance path than the
//    ITRS pad-count projection
//  * required on-die decoupling, and a spice-lite simulation of the ramp
//    through the package inductance.
#include <iostream>

#include "powergrid/transient.h"
#include "sim/circuit_sim.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace nano;
  using namespace nano::units;
  using util::fmt;

  std::cout << "Wake-up transient per node (5 ns ramp from 5 % standby"
               " current):\n";
  util::TextTable t({"node (nm)", "delta I (A)", "dI/dt (A/ns)",
                     "noise, ITRS bumps (mV)", "noise, min pitch (mV)",
                     "decap needed (nF)"});
  for (int f : tech::roadmapFeatures()) {
    const auto& node = tech::nodeByFeature(f);
    const auto itrs = powergrid::wakeupTransient(node, node.itrsVddPads);
    const auto dense =
        powergrid::wakeupTransient(node, powergrid::minPitchVddBumps(node));
    t.addRow({std::to_string(f), fmt(itrs.deltaCurrent, 0),
              fmt(itrs.dIdt * 1e-9, 0), fmt(itrs.noiseVoltage * 1e3, 2),
              fmt(dense.noiseVoltage * 1e3, 2),
              fmt(itrs.decapNeeded * 1e9, 0)});
  }
  t.print(std::cout);
  std::cout << "(paper: awakening from standby places an extreme burden on"
               " the power network; the minimum bump pitch provides a low"
               " inductance path)\n\n";

  // Waveform-level check at 35 nm: the true L-C network (package/bump
  // inductance into the on-die decap) under the standby-exit current ramp.
  const auto& n35 = tech::nodeByFeature(35);
  const auto rep = powergrid::wakeupTransient(n35, n35.itrsVddPads);
  sim::Circuit ckt;
  const int supply = ckt.node();
  const int die = ckt.node();
  const double tRamp = 5e-9;
  ckt.add(sim::VoltageSource{supply, 0, sim::Waveform::dc(n35.vdd)});
  ckt.add(sim::Inductor{supply, die, rep.effectiveInductance});
  // Series loss of the bump array (damps the L-C resonance).
  ckt.add(sim::Resistor{supply, die, 50e-3});
  ckt.add(sim::Capacitor{die, 0, rep.decapNeeded});
  ckt.add(sim::CurrentSource{
      die, 0,
      sim::Waveform::pwl({{0.0, 0.05 * n35.supplyCurrent()},
                          {1e-9, 0.05 * n35.supplyCurrent()},
                          {1e-9 + tRamp, n35.supplyCurrent()}})});
  sim::Simulator sim(ckt);
  const auto tr = sim.transient(30e-9, 10e-12);
  double vmin = n35.vdd;
  for (const auto& step : tr.voltages) {
    vmin = std::min(vmin, step[static_cast<std::size_t>(die)]);
  }
  std::cout << "Waveform check (35 nm, ITRS bumps, decap as sized, true"
               " L-C deck): die supply droops to "
            << fmt(vmin, 3) << " V (" << fmt(100 * (n35.vdd - vmin) / n35.vdd, 1)
            << " % of Vdd; budget 5 %)\n";
  return 0;
}
