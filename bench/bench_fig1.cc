// Reproduces Figure 1: Pstatic/Pdynamic vs switching activity for an FO4
// inverter with average wiring load at 85 C, for 70 nm @ 0.9 V and 50 nm
// @ 0.7 / 0.6 V.
#include <iostream>

#include "core/experiments.h"
#include "core/report.h"
#include "util/csv.h"
#include "util/table.h"

int main() {
  using namespace nano;
  const auto series = core::computeFigure1(9);
  core::printFigure1(std::cout, series);

  // The paper's headline: for activities of 0.01-0.1 static power
  // approaches and exceeds 10 % of dynamic.
  double at001 = 0.0, at01 = 0.0;
  for (const auto& p : series) {
    if (p.activity <= 0.0101) at001 = p.ratio70nm09V;
    if (p.activity <= 0.101) at01 = p.ratio70nm09V;
  }
  std::cout << "\n70 nm @ 0.9 V: Pstat/Pdyn = " << util::fmt(at001, 2)
            << " at activity 0.01 and " << util::fmt(at01, 3)
            << " at 0.1 (paper: approaches/exceeds 0.1 over this range)\n";

  util::CsvWriter csv("fig1.csv",
                      {"activity", "r70nm_09V", "r50nm_07V", "r50nm_06V"});
  for (const auto& p : series) {
    csv.row(std::vector<double>{p.activity, p.ratio70nm09V, p.ratio50nm07V,
                                p.ratio50nm06V});
  }
  std::cout << "(series written to fig1.csv)\n";
  return 0;
}
