// Section 3.2.2 claims: dual-Vth assignment — 40-80 % leakage reduction
// with minimal critical-path penalty, across nodes (the technique's
// scalability is Figure 2's subject).
#include <iostream>

#include "circuit/generator.h"
#include "opt/dual_vth.h"
#include "opt/sizing.h"
#include "util/table.h"

int main() {
  using namespace nano;
  using util::fmt;

  std::cout << "Dual-Vth assignment (100 mV Vth step) on 1500-gate designs"
               " with three starting points:\n"
               "  raw    = one deep block, as generated (slack everywhere)\n"
               "  slack  = register-bounded multi-block profile\n"
               "  sized  = after power-driven downsizing consumed the slack\n"
               "           (the paper's [22] simultaneous-sizing setting)\n";
  util::TextTable t({"node (nm)", "profile", "gates at high Vth",
                     "leakage reduction", "critical-path penalty",
                     "timing met"});
  for (int f : {180, 100, 70, 50, 35}) {
    const auto& node = tech::nodeByFeature(f);
    const circuit::Library lib(node);
    for (int profile = 0; profile < 3; ++profile) {
      util::Rng rng(77);
      circuit::GeneratorConfig cfg;
      cfg.gates = 1500;
      cfg.outputs = 96;
      circuit::Netlist design = profile == 1
                                    ? circuit::pipelinedLogic(lib, cfg, rng, 8)
                                    : circuit::randomLogic(lib, cfg, rng);
      if (profile == 2) {
        opt::SizingOptions so;
        so.continuousSizes = true;
        design = opt::downsizeForPower(design, lib, so).netlist;
      }
      const opt::DualVthResult r = opt::runDualVth(design, lib);
      const char* names[3] = {"raw", "slack", "sized"};
      t.addRow({std::to_string(f), names[profile],
                fmt(100 * r.fractionHighVth, 0) + " %",
                fmt(100 * r.leakageSavings(), 0) + " %",
                fmt(100 * r.criticalPathPenalty(), 2) + " %",
                r.timingAfter.meetsTiming() ? "yes" : "NO"});
    }
  }
  t.print(std::cout);
  std::cout << "(paper [22,39]: typical results are 40-80 % leakage power"
               " reduction with minimal critical-path penalty; the approach"
               " stays effective down the roadmap because the Ioff price of"
               " low Vth falls with scaling — see bench_fig2)\n";
  return 0;
}
