// Reproduces Figure 4: Pdynamic/Pstatic vs Vdd at 35 nm (activity 0.1)
// for the three Vth policies, plus the Section 3.3 headline numbers
// (0.2 V operation, the Pdyn/Pstat = 10 supply point).
#include <iostream>

#include "core/experiments.h"
#include "core/report.h"
#include "util/csv.h"

int main() {
  using namespace nano;
  const auto series = core::computeFigure34(35, 9, 0.1);
  core::printFigure4(std::cout, series);

  std::cout << '\n';
  core::printSection33Claims(std::cout, core::computeSection33Claims());

  util::CsvWriter csv("fig4.csv",
                      {"vdd", "ratio_const", "ratio_scaled",
                       "ratio_conservative"});
  for (const auto& p : series) {
    csv.row(std::vector<double>{p.vdd, p.pdynOverPstat[0], p.pdynOverPstat[1],
                                p.pdynOverPstat[2]});
  }
  std::cout << "(series written to fig4.csv)\n";
  return 0;
}
