// Reproduces Figure 3: normalized delay vs Vdd at 35 nm under the three
// Vth-scaling policies (constant / constant-Pstatic / conservative).
#include <iostream>

#include "core/experiments.h"
#include "core/report.h"
#include "util/csv.h"
#include "util/table.h"

int main() {
  using namespace nano;
  const auto series = core::computeFigure34(35, 9, 0.1);
  core::printFigure3(std::cout, series);

  const auto& low = series.front();
  std::cout << "\nAt Vdd = 0.2 V: constant Vth "
            << util::fmt(low.delayNorm[0], 2) << "x (paper 3.7x), scaled Vth "
            << util::fmt(low.delayNorm[1], 2)
            << "x (paper < 1.3x) — lowering Vth as Vdd drops recovers most "
               "of the speed because sub-1 V drive current is very "
               "sensitive to Vth.\n";

  util::CsvWriter csv("fig3.csv", {"vdd", "delay_const", "delay_scaled",
                                   "delay_conservative", "vth_const",
                                   "vth_scaled", "vth_conservative"});
  for (const auto& p : series) {
    csv.row(std::vector<double>{p.vdd, p.delayNorm[0], p.delayNorm[1],
                                p.delayNorm[2], p.vthDesign[0], p.vthDesign[1],
                                p.vthDesign[2]});
  }
  std::cout << "(series written to fig3.csv)\n";
  return 0;
}
