#include "thermal/thermal_grid.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace nano::thermal {
namespace {

using namespace nano::units;

ThermalGridConfig base() {
  ThermalGridConfig cfg;
  cfg.thetaJa = 0.3;
  cfg.ambient = fromCelsius(45.0);
  cfg.totalPower = 100.0;
  cfg.hotspotFactor = 1.0;
  cfg.hotspotFraction = 0.0;
  cfg.cells = 20;
  return cfg;
}

TEST(ThermalGrid, UniformPowerReproducesEquationOne) {
  // With no hot-spot the map is flat at Ta + theta*P (Eq. 1).
  const ThermalMap map = solveThermalGrid(base());
  const double expected = fromCelsius(45.0) + 0.3 * 100.0;
  EXPECT_NEAR(map.avgT, expected, 0.01);
  EXPECT_NEAR(map.maxT, expected, 0.01);
  EXPECT_NEAR(map.hotspotContrast, 1.0, 0.001);
}

TEST(ThermalGrid, AverageRiseIndependentOfHotspot) {
  // Total power fixed: the average junction rise stays theta*P no matter
  // how the power is distributed.
  ThermalGridConfig cfg = base();
  const double flatAvg = solveThermalGrid(cfg).avgT;
  cfg.hotspotFactor = 4.0;
  cfg.hotspotFraction = 0.15;
  const ThermalMap hot = solveThermalGrid(cfg);
  EXPECT_NEAR(hot.avgT, flatAvg, 0.05);
  EXPECT_GT(hot.maxT, hot.avgT);
}

TEST(ThermalGrid, SpreadingFlattensTheFourXHotspot) {
  // The paper's Section 4 hot-spot carries 4x the power density, but the
  // temperature contrast is far below 4x thanks to lateral spreading —
  // while still being clearly above 1.
  ThermalGridConfig cfg = base();
  cfg.hotspotFactor = 4.0;
  cfg.hotspotFraction = 0.15;
  const ThermalMap map = solveThermalGrid(cfg);
  EXPECT_GT(map.hotspotContrast, 1.15);
  EXPECT_LT(map.hotspotContrast, 4.0);
}

TEST(ThermalGrid, WeakSpreadingApproachesDensityContrast) {
  ThermalGridConfig cfg = base();
  cfg.hotspotFactor = 4.0;
  cfg.hotspotFraction = 0.15;
  cfg.lateralConductance = 0.01;  // nearly no spreading
  const ThermalMap weak = solveThermalGrid(cfg);
  cfg.lateralConductance = 10.0;  // copper-spreader-class
  const ThermalMap strong = solveThermalGrid(cfg);
  EXPECT_GT(weak.hotspotContrast, 2.5);
  EXPECT_LT(strong.hotspotContrast, 1.5);
}

TEST(ThermalGrid, HotterPackageHotterDie) {
  ThermalGridConfig cfg = base();
  const ThermalMap good = solveThermalGrid(cfg);
  cfg.thetaJa = 0.6;
  const ThermalMap bad = solveThermalGrid(cfg);
  EXPECT_GT(bad.maxT, good.maxT);
  EXPECT_NEAR(bad.avgT - cfg.ambient, 2.0 * (good.avgT - cfg.ambient), 0.1);
}

TEST(ThermalGrid, MeshRefinementStable) {
  ThermalGridConfig cfg = base();
  cfg.hotspotFactor = 4.0;
  // 0.25 divides both meshes exactly (3/12 and 9/36 cells), so refinement
  // changes only the discretization, not the hot-spot geometry.
  cfg.hotspotFraction = 0.25;
  cfg.cells = 12;
  const double coarse = solveThermalGrid(cfg).maxT;
  cfg.cells = 36;
  const double fine = solveThermalGrid(cfg).maxT;
  EXPECT_NEAR(coarse, fine, 0.06 * (fine - cfg.ambient));
}

TEST(ThermalGrid, NodeConfigUsesRoadmap) {
  const auto& node = tech::nodeByFeature(35);
  const ThermalGridConfig cfg = thermalGridForNode(node);
  EXPECT_NEAR(cfg.totalPower, node.maxPower, 1e-9);
  EXPECT_NEAR(cfg.thetaJa, node.requiredThetaJa(), 1e-9);
  // Solving at the required theta_ja lands the average at the Tj limit.
  const ThermalMap map = solveThermalGrid(cfg);
  EXPECT_NEAR(map.avgT, node.tjMax, 0.1);
}

TEST(ThermalGrid, Rejections) {
  ThermalGridConfig cfg = base();
  cfg.cells = 1;
  EXPECT_THROW(solveThermalGrid(cfg), std::invalid_argument);
  cfg = base();
  cfg.thetaJa = 0.0;
  EXPECT_THROW(solveThermalGrid(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace nano::thermal
