#include "thermal/dtm.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace nano::thermal {
namespace {

using namespace nano::units;

struct Fixture {
  // Package sized for the effective worst case of a 100 W design:
  // theta = 40 K / 75 W = 0.533; a virus would push Tj to 98 C.
  ThermalPackage package{0.533, 0.02};
  double worstCase = 100.0;
  double tAmbient = fromCelsius(45.0);
  DtmPolicy policy = [] {
    DtmPolicy p;
    p.tripTemperature = fromCelsius(83.0);
    p.hysteresis = 3.0;
    p.throttleFactor = 0.5;
    p.sensorDelay = 50e-6;
    return p;
  }();
};

TEST(Dtm, VirusWithoutDtmOverheats) {
  Fixture f;
  DtmPolicy off = f.policy;
  off.enabled = false;
  const DtmResult r = simulateDtm(f.package, powerVirus(0.5), f.worstCase,
                                  f.tAmbient, off);
  EXPECT_GT(r.maxTemperature, fromCelsius(95.0));
  EXPECT_DOUBLE_EQ(r.throughputFraction, 1.0);
  EXPECT_DOUBLE_EQ(r.throttledFraction, 0.0);
}

TEST(Dtm, VirusWithDtmStaysNearTrip) {
  Fixture f;
  const DtmResult r = simulateDtm(f.package, powerVirus(0.5), f.worstCase,
                                  f.tAmbient, f.policy);
  EXPECT_LT(r.maxTemperature, f.policy.tripTemperature + 2.0);
  EXPECT_GT(r.throttledFraction, 0.1);
  EXPECT_LT(r.throughputFraction, 1.0);
}

TEST(Dtm, TypicalApplicationRunsUnthrottled) {
  // The whole point of rating for the effective worst case: real apps
  // (<= 75 % of virus power) never trip the sensor.
  Fixture f;
  util::Rng rng(99);
  const PowerTrace app = typicalApplication(rng, 0.5);
  const DtmResult r =
      simulateDtm(f.package, app, f.worstCase, f.tAmbient, f.policy);
  EXPECT_LT(r.throttledFraction, 0.02);
  EXPECT_GT(r.throughputFraction, 0.98);
  EXPECT_LT(r.maxTemperature, fromCelsius(85.0));
}

TEST(Dtm, VddScalingThrottleCutsPowerFaster) {
  Fixture f;
  DtmPolicy freqOnly = f.policy;
  DtmPolicy freqVdd = f.policy;
  freqVdd.kind = ThrottleKind::ClockAndVdd;
  const DtmResult a = simulateDtm(f.package, powerVirus(0.5), f.worstCase,
                                  f.tAmbient, freqOnly);
  const DtmResult b = simulateDtm(f.package, powerVirus(0.5), f.worstCase,
                                  f.tAmbient, freqVdd);
  // Cubic power cut -> cooler; time spent throttled is lower.
  EXPECT_LE(b.throttledFraction, a.throttledFraction + 1e-9);
  EXPECT_LE(b.avgTemperature, a.avgTemperature + 0.5);
}

TEST(Dtm, HysteresisPreventsChatter) {
  Fixture f;
  const DtmResult r = simulateDtm(f.package, powerVirus(0.2), f.worstCase,
                                  f.tAmbient, f.policy, 20e-6, 1);
  // Count throttle boundary crossings via the power trace: with 3 K of
  // hysteresis the controller cannot toggle every sample.
  int toggles = 0;
  for (std::size_t i = 1; i < r.powerW.size(); ++i) {
    if (r.powerW[i] != r.powerW[i - 1]) ++toggles;
  }
  EXPECT_LT(toggles, static_cast<int>(r.powerW.size()) / 10);
}

TEST(Dtm, ZeroHysteresisStillConverges) {
  // The degenerate hysteresis band: the sensor may chatter but the loop
  // must stay bounded near the trip point, not diverge or deadlock.
  Fixture f;
  DtmPolicy p = f.policy;
  p.hysteresis = 0.0;
  const DtmResult r = simulateDtm(f.package, powerVirus(0.3), f.worstCase,
                                  f.tAmbient, p, 20e-6, 1);
  EXPECT_LT(r.maxTemperature, p.tripTemperature + 2.0);
  EXPECT_GT(r.throttledFraction, 0.0);
}

TEST(Dtm, WiderHysteresisSlowsToggling) {
  Fixture f;
  auto toggles = [&](double hysteresis) {
    DtmPolicy p = f.policy;
    p.hysteresis = hysteresis;
    const DtmResult r = simulateDtm(f.package, powerVirus(0.3), f.worstCase,
                                    f.tAmbient, p, 20e-6, 1);
    int n = 0;
    for (std::size_t i = 1; i < r.powerW.size(); ++i) {
      if (r.powerW[i] != r.powerW[i - 1]) ++n;
    }
    return n;
  };
  EXPECT_LE(toggles(6.0), toggles(0.5));
}

TEST(Dtm, SensorDelayCausesOvershoot) {
  // Actuation lag lets the die coast past the trip point: a slower sensor
  // path must never read as cooler than an instant one.
  Fixture f;
  DtmPolicy instant = f.policy;
  instant.sensorDelay = 0.0;
  DtmPolicy slow = f.policy;
  slow.sensorDelay = 2e-3;
  const DtmResult a = simulateDtm(f.package, powerVirus(0.3), f.worstCase,
                                  f.tAmbient, instant, 20e-6, 1);
  const DtmResult b = simulateDtm(f.package, powerVirus(0.3), f.worstCase,
                                  f.tAmbient, slow, 20e-6, 1);
  EXPECT_GE(b.maxTemperature, a.maxTemperature - 1e-9);
  EXPECT_GT(b.maxTemperature, instant.tripTemperature);
}

TEST(Dtm, TraceIsRecorded) {
  Fixture f;
  const DtmResult r = simulateDtm(f.package, powerVirus(0.1), f.worstCase,
                                  f.tAmbient, f.policy);
  ASSERT_FALSE(r.timeS.empty());
  EXPECT_EQ(r.timeS.size(), r.temperatureK.size());
  EXPECT_EQ(r.timeS.size(), r.powerW.size());
}

TEST(Dtm, Rejections) {
  Fixture f;
  EXPECT_THROW(simulateDtm(f.package, powerVirus(0.1), 100.0, f.tAmbient,
                           f.policy, 0.0),
               std::invalid_argument);
  PowerTrace empty;
  EXPECT_THROW(
      simulateDtm(f.package, empty, 100.0, f.tAmbient, f.policy),
      std::invalid_argument);
}

TEST(DefaultPolicy, TripsBelowNodeLimit) {
  const auto& node = tech::nodeByFeature(70);
  const DtmPolicy p = defaultPolicyFor(node);
  EXPECT_LT(p.tripTemperature, node.tjMax);
  EXPECT_GT(p.tripTemperature, node.tjMax - 5.0);
  EXPECT_TRUE(p.enabled);
}

}  // namespace
}  // namespace nano::thermal
