#include "thermal/workload.h"

#include <gtest/gtest.h>

namespace nano::thermal {
namespace {

TEST(PowerTrace, AtAndDuration) {
  PowerTrace t;
  t.phases = {{1.0, 0.5}, {2.0, 0.8}};
  EXPECT_DOUBLE_EQ(t.totalDuration(), 3.0);
  EXPECT_DOUBLE_EQ(t.at(0.5), 0.5);
  EXPECT_DOUBLE_EQ(t.at(1.5), 0.8);
  EXPECT_DOUBLE_EQ(t.at(10.0), 0.8);  // clamps
}

TEST(PowerTrace, AverageAndPeak) {
  PowerTrace t;
  t.phases = {{1.0, 0.4}, {1.0, 0.6}};
  EXPECT_DOUBLE_EQ(t.average(), 0.5);
  EXPECT_DOUBLE_EQ(t.peak(), 0.6);
}

TEST(PowerTrace, AtOnEmptyThrows) {
  PowerTrace t;
  EXPECT_THROW(static_cast<void>(t.at(0.0)), std::logic_error);
}

TEST(PowerVirus, SustainedWorstCase) {
  const PowerTrace t = powerVirus(2.0);
  EXPECT_DOUBLE_EQ(t.average(), 1.0);
  EXPECT_DOUBLE_EQ(t.peak(), 1.0);
  EXPECT_DOUBLE_EQ(t.totalDuration(), 2.0);
}

TEST(TypicalApplication, PeaksAtEffectiveWorstCase) {
  util::Rng rng(123);
  const PowerTrace t = typicalApplication(rng, 0.1);
  EXPECT_LE(t.peak(), 0.751);
  EXPECT_GE(t.peak(), 0.5);
  EXPECT_LT(t.average(), 0.75);
  EXPECT_GT(t.average(), 0.3);
  EXPECT_NEAR(t.totalDuration(), 0.1, 1e-9);
}

TEST(TypicalApplication, Deterministic) {
  util::Rng a(7), b(7);
  const PowerTrace ta = typicalApplication(a, 0.05);
  const PowerTrace tb = typicalApplication(b, 0.05);
  ASSERT_EQ(ta.phases.size(), tb.phases.size());
  for (std::size_t i = 0; i < ta.phases.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta.phases[i].powerFraction, tb.phases[i].powerFraction);
  }
}

TEST(TypicalApplication, Rejections) {
  util::Rng rng(1);
  EXPECT_THROW(typicalApplication(rng, 0.0), std::invalid_argument);
}

TEST(IdleBurst, AlternatesActiveAndIdle) {
  const PowerTrace t = idleBurst(1.0, 0.2, 0.5, 0.05);
  EXPECT_DOUBLE_EQ(t.peak(), 1.0);
  EXPECT_NEAR(t.average(), 0.5 * 1.0 + 0.5 * 0.05, 0.01);
  EXPECT_DOUBLE_EQ(t.at(0.05), 1.0);
  EXPECT_DOUBLE_EQ(t.at(0.15), 0.05);
}

TEST(IdleBurst, Rejections) {
  EXPECT_THROW(idleBurst(1.0, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(idleBurst(1.0, 0.1, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace nano::thermal
