#include "thermal/dvfs.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace nano::thermal {
namespace {

using namespace nano::units;

PowerTrace demand(std::initializer_list<double> fractions, double phase = 1e-3) {
  PowerTrace t;
  for (double f : fractions) t.phases.push_back({phase, f});
  return t;
}

struct Fixture {
  ThermalPackage package{0.5, 0.02};
  double peak = 100.0;
  double tAmbient = fromCelsius(45.0);
};

TEST(Dvfs, FullDemandMatchesFullSpeedBaseline) {
  Fixture f;
  const DvfsResult r =
      simulateDvfs(f.package, demand({1.0, 1.0}), f.peak, f.tAmbient);
  EXPECT_NEAR(r.energy, r.energyFullSpeed, 1e-9 * r.energyFullSpeed);
  EXPECT_NEAR(r.throughputDelivered, 1.0, 1e-12);
  EXPECT_NEAR(r.energySavings(), 0.0, 1e-9);
}

TEST(Dvfs, LightLoadSavesQuadratically) {
  // At 40 % demand the governor drops to the (0.4, 0.7) level: active
  // energy scales by 0.7^2 ~ 0.49 vs running the same work at full V.
  Fixture f;
  const DvfsResult r =
      simulateDvfs(f.package, demand({0.4}), f.peak, f.tAmbient);
  EXPECT_GT(r.energySavings(), 0.3);
  EXPECT_NEAR(r.throughputDelivered, 1.0, 1e-12);
}

TEST(Dvfs, SavingsGrowAsLoadFalls) {
  Fixture f;
  double prev = -1.0;
  for (double d : {1.0, 0.8, 0.6, 0.4, 0.2}) {
    const DvfsResult r =
        simulateDvfs(f.package, demand({d}), f.peak, f.tAmbient);
    EXPECT_GE(r.energySavings(), prev - 1e-9) << d;
    prev = r.energySavings();
  }
}

TEST(Dvfs, ThroughputNeverSacrificed) {
  // The governor always covers the demand with an admissible level (the
  // fastest level reaches 1.0), so work is never dropped.
  Fixture f;
  const DvfsResult r = simulateDvfs(
      f.package, demand({0.1, 0.9, 0.5, 1.0, 0.3}), f.peak, f.tAmbient);
  EXPECT_NEAR(r.throughputDelivered, 1.0, 1e-12);
}

TEST(Dvfs, RunsCoolerThanRaceToIdle) {
  Fixture f;
  const DvfsResult scaled = simulateDvfs(
      f.package, demand({0.5, 0.5, 0.5, 0.5, 0.5}, 5e-3), f.peak, f.tAmbient);
  // Race-to-idle average power is energyFullSpeed / T; it corresponds to a
  // hotter steady state.
  const double raceAvg =
      scaled.energyFullSpeed / (5 * 5e-3);
  EXPECT_LT(scaled.avgPower, raceAvg);
  EXPECT_LT(scaled.maxTemperature,
            f.package.junctionTemperature(raceAvg, f.tAmbient) + 1.0);
}

TEST(Dvfs, SingleLevelDegeneratesToThrottleFree) {
  Fixture f;
  DvfsPolicy oneLevel;
  oneLevel.levels = {{1.0, 1.0}};
  const DvfsResult r =
      simulateDvfs(f.package, demand({0.3}), f.peak, f.tAmbient, oneLevel);
  EXPECT_NEAR(r.energySavings(), 0.0, 1e-9);
}

TEST(Dvfs, DemandAboveAllLevelsUsesFastest) {
  Fixture f;
  DvfsPolicy slowOnly;
  slowOnly.levels = {{0.5, 0.7}, {0.25, 0.6}};
  const DvfsResult r =
      simulateDvfs(f.package, demand({1.0}), f.peak, f.tAmbient, slowOnly);
  // Only half the demanded work can be delivered.
  EXPECT_NEAR(r.throughputDelivered, 0.5, 1e-9);
}

TEST(Dvfs, LevelOrderDoesNotMatter) {
  // The governor's contract is "lowest-power admissible level", not "first
  // admissible in table order": a shuffled table must behave identically.
  Fixture f;
  DvfsPolicy sorted;
  sorted.levels = {{1.0, 1.0}, {0.8, 0.9}, {0.6, 0.8}, {0.4, 0.7}};
  DvfsPolicy shuffled;
  shuffled.levels = {{0.4, 0.7}, {1.0, 1.0}, {0.6, 0.8}, {0.8, 0.9}};
  for (double d : {0.1, 0.4, 0.55, 0.8, 1.0}) {
    const DvfsResult a =
        simulateDvfs(f.package, demand({d}), f.peak, f.tAmbient, sorted);
    const DvfsResult b =
        simulateDvfs(f.package, demand({d}), f.peak, f.tAmbient, shuffled);
    EXPECT_DOUBLE_EQ(a.energy, b.energy) << d;
    EXPECT_DOUBLE_EQ(a.throughputDelivered, b.throughputDelivered) << d;
  }
}

TEST(Dvfs, PicksLowestPowerAmongAdmissible) {
  // Two levels cover a 0.5 demand; the slower one wins on f * V^2 even
  // though the faster one is listed first.
  Fixture f;
  DvfsPolicy p;
  p.levels = {{1.0, 1.0}, {0.5, 0.7}};
  p.idleFraction = 0.0;
  const DvfsResult r =
      simulateDvfs(f.package, demand({0.5}), f.peak, f.tAmbient, p);
  // Full-speed active energy for the same work would be d * P * T; at the
  // (0.5, 0.7) level the whole phase runs busy at 0.5 * 0.49 * P.
  EXPECT_NEAR(r.energy / r.energyFullSpeed, 0.49, 1e-9);
}

TEST(Dvfs, Rejections) {
  Fixture f;
  DvfsPolicy empty;
  empty.levels.clear();
  EXPECT_THROW(simulateDvfs(f.package, demand({0.5}), f.peak, f.tAmbient, empty),
               std::invalid_argument);
  PowerTrace none;
  EXPECT_THROW(simulateDvfs(f.package, none, f.peak, f.tAmbient),
               std::invalid_argument);
}

}  // namespace
}  // namespace nano::thermal
