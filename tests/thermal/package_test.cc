#include "thermal/package.h"

#include <gtest/gtest.h>

#include <cmath>

#include "thermal/cooling_cost.h"
#include "util/units.h"

namespace nano::thermal {
namespace {

using namespace nano::units;

TEST(ThermalPackage, SteadyStateEquation1) {
  // Eq. (1): theta_ja = (Tchip - Tambient) / Pchip.
  ThermalPackage pkg(0.6);
  const double tj = pkg.junctionTemperature(90.0, fromCelsius(45.0));
  EXPECT_NEAR(toCelsius(tj), 45.0 + 0.6 * 90.0, 1e-9);
}

TEST(ThermalPackage, MaxPowerInverse) {
  ThermalPackage pkg(0.5);
  EXPECT_NEAR(pkg.maxPower(fromCelsius(85.0), fromCelsius(45.0)), 80.0, 1e-9);
}

TEST(ThermalPackage, StepConvergesToSteadyState) {
  ThermalPackage pkg(0.5, 10.0);
  double t = fromCelsius(45.0);
  for (int i = 0; i < 200; ++i) t = pkg.step(t, 100.0, fromCelsius(45.0), 1.0);
  EXPECT_NEAR(t, pkg.junctionTemperature(100.0, fromCelsius(45.0)), 0.01);
}

TEST(ThermalPackage, StepIsExactExponential) {
  ThermalPackage pkg(0.5, 10.0);  // tau = 5 s
  const double ta = fromCelsius(45.0);
  const double t1 = pkg.step(ta, 100.0, ta, 5.0);  // one time constant
  const double tFinal = pkg.junctionTemperature(100.0, ta);
  EXPECT_NEAR((t1 - ta) / (tFinal - ta), 1.0 - std::exp(-1.0), 1e-9);
}

TEST(ThermalPackage, StepStableForHugeDt) {
  ThermalPackage pkg(0.5, 10.0);
  const double ta = fromCelsius(45.0);
  const double t = pkg.step(ta, 100.0, ta, 1e6);
  EXPECT_NEAR(t, pkg.junctionTemperature(100.0, ta), 1e-6);
}

TEST(ThermalPackage, RejectsBadParams) {
  EXPECT_THROW(ThermalPackage(0.0), std::invalid_argument);
  EXPECT_THROW(ThermalPackage(0.5, -1.0), std::invalid_argument);
}

TEST(RequiredThetaJa, PaperNumbers) {
  // 180 nm class: 90 W, Tj 100 C, Ta 45 C -> ~0.61 K/W (in the paper's
  // quoted 0.6-1.0 range).
  EXPECT_NEAR(requiredThetaJa(90.0, fromCelsius(100.0), fromCelsius(45.0)),
              0.61, 0.01);
  EXPECT_THROW(requiredThetaJa(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(Catalog, OrderedWeakToStrong) {
  const auto& cat = packagingCatalog();
  ASSERT_GE(cat.size(), 4u);
  for (std::size_t i = 1; i < cat.size(); ++i) {
    EXPECT_LT(cat[i].thetaJa, cat[i - 1].thetaJa);
    EXPECT_GT(cat[i].cost(100.0), cat[i - 1].cost(100.0));
  }
}

TEST(Catalog, RefrigerationCostsAboutOneDollarPerWatt) {
  const auto& fridge = packagingCatalog().back();
  EXPECT_DOUBLE_EQ(fridge.costPerWattUsd, 1.0);
  EXPECT_GT(fridge.cost(100.0) - fridge.cost(0.0), 99.0);
}

TEST(CheapestSolution, PicksWeakestSufficient) {
  const auto& sol =
      cheapestSolutionFor(40.0, fromCelsius(85.0), fromCelsius(45.0));
  // 40 W needs theta <= 1.0: the passive heatsink suffices.
  EXPECT_EQ(sol.name, "passive heatsink");
}

TEST(CheapestSolution, ThrowsWhenNothingHolds) {
  EXPECT_THROW(cheapestSolutionFor(1000.0, fromCelsius(85.0), fromCelsius(45.0)),
               std::runtime_error);
}

TEST(CoolingCost, The65To75WattCliff) {
  // Paper anecdote: 65 -> 75 W roughly triples cooling cost (heat pipes).
  const double c65 = coolingCostUsd(65.0, fromCelsius(85.0), fromCelsius(45.0));
  const double c75 = coolingCostUsd(75.0, fromCelsius(85.0), fromCelsius(45.0));
  EXPECT_NEAR(c75 / c65, 3.0, 0.25);
}

TEST(ThetaJaRelief, TwentyFivePercentGivesThirtyThree) {
  // Paper: a 25 % effective power reduction allows 33 % higher theta_ja.
  EXPECT_NEAR(thetaJaRelief(0.75), 4.0 / 3.0, 1e-12);
  EXPECT_THROW(thetaJaRelief(0.0), std::invalid_argument);
  EXPECT_THROW(thetaJaRelief(1.5), std::invalid_argument);
}

TEST(DtmCostSavings, EffectiveRatingCheaper) {
  const auto s =
      dtmCostSavings(100.0, fromCelsius(85.0), fromCelsius(45.0));
  EXPECT_NEAR(s.effectivePower, 75.0, 1e-9);
  EXPECT_NEAR(s.thetaJaEffective / s.thetaJaTheoretical, 4.0 / 3.0, 1e-9);
  EXPECT_GT(s.costRatio(), 1.0);
}

}  // namespace
}  // namespace nano::thermal
