#include "thermal/validate.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace nano::thermal {
namespace {

using namespace nano::units;

PowerTrace demand(std::initializer_list<double> fractions,
                  double phase = 1e-3) {
  PowerTrace t;
  for (double f : fractions) t.phases.push_back({phase, f});
  return t;
}

struct Fixture {
  ThermalPackage package{0.533, 0.02};
  double worstCase = 100.0;
  double tAmbient = fromCelsius(45.0);
  DtmPolicy policy = [] {
    DtmPolicy p;
    p.tripTemperature = fromCelsius(83.0);
    p.hysteresis = 3.0;
    p.throttleFactor = 0.5;
    p.sensorDelay = 50e-6;
    return p;
  }();
};

TEST(ThermalValidate, StatusNamesAreStable) {
  EXPECT_STREQ(thermalInputStatusName(ThermalInputStatus::Ok), "ok");
  EXPECT_STREQ(thermalInputStatusName(ThermalInputStatus::BadTimeStep),
               "bad-time-step");
  EXPECT_STREQ(thermalInputStatusName(ThermalInputStatus::EmptyTrace),
               "empty-trace");
  EXPECT_STREQ(thermalInputStatusName(ThermalInputStatus::BadPolicy),
               "bad-policy");
  EXPECT_STREQ(thermalInputStatusName(ThermalInputStatus::BadPackage),
               "bad-package");
}

TEST(ThermalValidate, AdmissibleDtmInputsPass) {
  Fixture f;
  const ThermalInputCheck c = validateDtmInputs(
      f.package, powerVirus(0.01), f.worstCase, f.tAmbient, f.policy, 20e-6, 50);
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.describe(), "ok");
  EXPECT_TRUE(c.message.empty());
}

TEST(ThermalValidate, RejectsNonPositiveTimeStep) {
  Fixture f;
  for (double dt : {0.0, -1e-6}) {
    const ThermalInputCheck c = validateDtmInputs(
        f.package, powerVirus(0.01), f.worstCase, f.tAmbient, f.policy, dt, 50);
    EXPECT_EQ(c.status, ThermalInputStatus::BadTimeStep) << dt;
    EXPECT_FALSE(c.message.empty());
  }
}

TEST(ThermalValidate, RejectsEmptyTrace) {
  Fixture f;
  PowerTrace empty;
  const ThermalInputCheck c = validateDtmInputs(
      f.package, empty, f.worstCase, f.tAmbient, f.policy, 20e-6, 50);
  EXPECT_EQ(c.status, ThermalInputStatus::EmptyTrace);
}

TEST(ThermalValidate, RejectsTripAtOrBelowAmbient) {
  // An enabled sensor tripping at ambient would latch throttled forever.
  Fixture f;
  DtmPolicy bad = f.policy;
  bad.tripTemperature = f.tAmbient;
  const ThermalInputCheck c = validateDtmInputs(
      f.package, powerVirus(0.01), f.worstCase, f.tAmbient, bad, 20e-6, 50);
  EXPECT_EQ(c.status, ThermalInputStatus::BadPolicy);
  EXPECT_NE(c.describe().find("bad-policy"), std::string::npos);
}

TEST(ThermalValidate, DisabledPolicySkipsPolicyChecks) {
  // With the controller off the trip point is never consulted, so a
  // nonsensical one must not reject the run.
  Fixture f;
  DtmPolicy off = f.policy;
  off.tripTemperature = 0.0;
  off.enabled = false;
  const ThermalInputCheck c = validateDtmInputs(
      f.package, powerVirus(0.01), f.worstCase, f.tAmbient, off, 20e-6, 50);
  EXPECT_TRUE(c.ok());
}

TEST(ThermalValidate, RejectsBadPolicyRanges) {
  Fixture f;
  DtmPolicy negHyst = f.policy;
  negHyst.hysteresis = -1.0;
  DtmPolicy zeroThrottle = f.policy;
  zeroThrottle.throttleFactor = 0.0;
  DtmPolicy bigThrottle = f.policy;
  bigThrottle.throttleFactor = 1.5;
  DtmPolicy negDelay = f.policy;
  negDelay.sensorDelay = -1e-6;
  for (const DtmPolicy* p :
       {&negHyst, &zeroThrottle, &bigThrottle, &negDelay}) {
    const ThermalInputCheck c = validateDtmInputs(
        f.package, powerVirus(0.01), f.worstCase, f.tAmbient, *p, 20e-6, 50);
    EXPECT_EQ(c.status, ThermalInputStatus::BadPolicy);
  }
}

TEST(ThermalValidate, RejectsBadPackageAndPower) {
  Fixture f;
  const ThermalInputCheck badPower = validateDtmInputs(
      f.package, powerVirus(0.01), 0.0, f.tAmbient, f.policy, 20e-6, 50);
  EXPECT_EQ(badPower.status, ThermalInputStatus::BadPackage);
  const ThermalInputCheck badAmbient = validateDtmInputs(
      f.package, powerVirus(0.01), f.worstCase, -5.0, f.policy, 20e-6, 50);
  EXPECT_EQ(badAmbient.status, ThermalInputStatus::BadPackage);
}

TEST(ThermalValidate, DvfsRejectsEmptyLevelsAndBadRanges) {
  Fixture f;
  DvfsPolicy empty;
  empty.levels.clear();
  EXPECT_EQ(validateDvfsInputs(f.package, demand({0.5}), f.worstCase,
                               f.tAmbient, empty)
                .status,
            ThermalInputStatus::BadPolicy);
  DvfsPolicy badLevel;
  badLevel.levels = {{0.5, -0.1}};
  EXPECT_EQ(validateDvfsInputs(f.package, demand({0.5}), f.worstCase,
                               f.tAmbient, badLevel)
                .status,
            ThermalInputStatus::BadPolicy);
  DvfsPolicy badIdle;
  badIdle.idleFraction = 1.5;
  EXPECT_EQ(validateDvfsInputs(f.package, demand({0.5}), f.worstCase,
                               f.tAmbient, badIdle)
                .status,
            ThermalInputStatus::BadPolicy);
  EXPECT_TRUE(validateDvfsInputs(f.package, demand({0.5}), f.worstCase,
                                 f.tAmbient, DvfsPolicy{})
                  .ok());
}

TEST(ThermalValidate, TrySimulateDtmReportsInsteadOfThrowing) {
  Fixture f;
  DtmResult result;
  const ThermalInputCheck bad = trySimulateDtm(
      f.package, powerVirus(0.01), f.worstCase, f.tAmbient, f.policy, result,
      0.0);
  EXPECT_EQ(bad.status, ThermalInputStatus::BadTimeStep);
  EXPECT_EQ(result.maxTemperature, 0.0);  // untouched on rejection

  const ThermalInputCheck good = trySimulateDtm(
      f.package, powerVirus(0.01), f.worstCase, f.tAmbient, f.policy, result);
  EXPECT_TRUE(good.ok());
  const DtmResult direct = simulateDtm(f.package, powerVirus(0.01),
                                       f.worstCase, f.tAmbient, f.policy);
  EXPECT_DOUBLE_EQ(result.maxTemperature, direct.maxTemperature);
  EXPECT_DOUBLE_EQ(result.throughputFraction, direct.throughputFraction);
}

TEST(ThermalValidate, TrySimulateDvfsReportsInsteadOfThrowing) {
  Fixture f;
  DvfsResult result;
  DvfsPolicy empty;
  empty.levels.clear();
  const ThermalInputCheck bad = trySimulateDvfs(
      f.package, demand({0.5}), f.worstCase, f.tAmbient, empty, result);
  EXPECT_EQ(bad.status, ThermalInputStatus::BadPolicy);
  EXPECT_EQ(result.energy, 0.0);

  const ThermalInputCheck good = trySimulateDvfs(
      f.package, demand({0.5}), f.worstCase, f.tAmbient, DvfsPolicy{}, result);
  EXPECT_TRUE(good.ok());
  const DvfsResult direct =
      simulateDvfs(f.package, demand({0.5}), f.worstCase, f.tAmbient);
  EXPECT_DOUBLE_EQ(result.energy, direct.energy);
}

TEST(ThermalValidate, ThrowingWrapperCarriesStructuredMessage) {
  Fixture f;
  DtmPolicy bad = f.policy;
  bad.tripTemperature = f.tAmbient - 1.0;
  try {
    simulateDtm(f.package, powerVirus(0.01), f.worstCase, f.tAmbient, bad);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bad-policy"), std::string::npos);
  }
}

}  // namespace
}  // namespace nano::thermal
