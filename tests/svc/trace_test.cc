// End-to-end tracing and exposition through the svc pipeline: the golden
// replay must stay byte-identical with tracing on, its Chrome trace must
// validate with every request's queue_wait + work + emit accounting for
// its wall time exactly, exec worker spans must pair across lanes, the
// `stats` request kind must answer from the live registry (bypassing the
// cache), and the slow-request log must decompose each offender.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/exec.h"
#include "obs/obs.h"
#include "svc/json.h"
#include "svc/server.h"
#include "svc/tracecheck.h"

namespace nano::svc {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wasEnabled_ = obs::enabled();
    obs::setEnabled(true);
    obs::setTracingEnabled(true);
    obs::MetricsRegistry::instance().reset();
    obs::journalReset();
  }
  void TearDown() override {
    obs::setTracingEnabled(false);
    obs::setJournalCapacity(1 << 16);
    obs::journalReset();
    obs::setEnabled(wasEnabled_);
    obs::MetricsRegistry::instance().reset();
    exec::setGlobalThreadCount(exec::defaultThreadCount());
  }
  bool wasEnabled_ = false;
};

ServiceOptions replayOptions() {
  ServiceOptions options;
  options.blockWhenFull = true;
  return options;
}

std::string readFileOrFail(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string exportedTrace() {
  std::ostringstream os;
  obs::exportChromeTrace(os, obs::journalSnapshot());
  return os.str();
}

TEST_F(TraceTest, GoldenReplayWithTracingIsByteIdenticalAndFullyAccounted) {
  const std::string trace =
      readFileOrFail(std::string(NANO_GOLDEN_DIR) + "/nanod_trace.jsonl");
  const std::string golden =
      readFileOrFail(std::string(NANO_GOLDEN_DIR) + "/nanod_replay.jsonl");
  ASSERT_FALSE(trace.empty());
  ASSERT_FALSE(golden.empty());

  std::istringstream in(trace);
  std::ostringstream out;
  ServerStats stats;
  {
    // Destroy the service before snapshotting the journal: the scheduler
    // stop is what guarantees the last batch's exec spans have closed.
    Service service(replayOptions());
    stats = runServer(in, out, service);
  }

  // Tracing must never leak into the response stream.
  EXPECT_EQ(out.str(), golden)
      << "tracing changed the replay output; responses must stay "
         "content-determined";

  const TraceCheckResult result = validateChromeTrace(exportedTrace());
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.events, 0u);
  EXPECT_GT(result.syncPairs, 0u);   // eval + exec spans
  EXPECT_GT(result.asyncPairs, 0u);  // request/queue_wait/work/emit spans

  // Every parsed line gets a trace; invalid lines never enter the
  // scheduler, so they are the only ones without spans.
  EXPECT_EQ(result.requests.size(), stats.lines - stats.invalid);
  // Ids are session-unique now: all of this run's requests carry the same
  // session ordinal, with the 1-based input line number in the low bits.
  ASSERT_FALSE(result.requests.empty());
  const std::uint64_t session =
      traceSessionOf(result.requests.begin()->first);
  EXPECT_GE(session, 1u);
  for (const auto& [traceId, phases] : result.requests) {
    EXPECT_EQ(traceSessionOf(traceId), session);
    EXPECT_EQ(traceId & kDirectTraceBit, 0u);  // came through a Session
    EXPECT_GE(traceSeqOf(traceId), 1u);
    EXPECT_LE(traceSeqOf(traceId), stats.lines);
    EXPECT_TRUE(phases.accounted())
        << "trace=" << traceId << " request=" << phases.requestNs
        << " queue_wait=" << phases.queueWaitNs << " work=" << phases.workNs
        << " emit=" << phases.emitNs;
  }
}

TEST_F(TraceTest, ExecWorkerSpansPairAcrossLanes) {
  exec::setGlobalThreadCount(4);
  const obs::TraceContextScope scope(obs::TraceContext{99});
  std::vector<double> sink(10000, 0.0);
  exec::parallelFor(sink.size(),
                    [&sink](std::size_t i) { sink[i] = static_cast<double>(i); });

  const TraceCheckResult result = validateChromeTrace(exportedTrace());
  EXPECT_TRUE(result.ok) << result.error;
  // The forking thread records "region"; lanes that stole chunks record
  // "region.worker". All of them must have closed.
  EXPECT_GE(result.syncPairs, 1u);
  const std::string json = exportedTrace();
  EXPECT_NE(json.find("\"name\":\"region\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"trace\":99}"), std::string::npos);
}

TEST_F(TraceTest, StatsKindAnswersFromTheLiveRegistryAndBypassesTheCache) {
  Service service(replayOptions());

  Request warmup;
  warmup.id = "w";
  warmup.kind = RequestKind::Wire;
  warmup.params = WireParams{};
  ASSERT_EQ(service.call(warmup).status, ResponseStatus::Ok);

  Request stats;
  stats.id = "s1";
  stats.kind = RequestKind::Stats;
  stats.params = StatsParams{};
  const Response first = service.call(stats);
  ASSERT_EQ(first.status, ResponseStatus::Ok);

  const JsonValue doc = parseJson(first.data);
  ASSERT_TRUE(doc.isObject());
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* requests = counters->find("svc/requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->asNumber(), 2.0);  // the wire call plus this one
  EXPECT_NE(doc.find("timers"), nullptr);
  EXPECT_NE(doc.find("gauges"), nullptr);

  // Identical stats requests must not be cache hits: the payload is live
  // process state. Before: 1 miss (wire). After two identical stats calls:
  // still 1 miss, 0 hits.
  auto& registry = obs::MetricsRegistry::instance();
  const std::int64_t missesBefore = registry.counter("svc/cache_misses").value();
  stats.id = "s2";
  const Response second = service.call(stats);
  ASSERT_EQ(second.status, ResponseStatus::Ok);
  EXPECT_EQ(registry.counter("svc/cache_misses").value(), missesBefore);
  EXPECT_EQ(registry.counter("svc/cache_hits").value(), 0);

  // Delta mode: the second delta snapshot reports only the increase.
  Request delta;
  delta.id = "d1";
  delta.kind = RequestKind::Stats;
  delta.params = StatsParams{true};
  ASSERT_EQ(service.call(delta).status, ResponseStatus::Ok);  // baseline
  delta.id = "d2";
  const Response d2 = service.call(delta);
  ASSERT_EQ(d2.status, ResponseStatus::Ok);
  const JsonValue deltaDoc = parseJson(d2.data);
  const JsonValue* deltaFlag = deltaDoc.find("delta");
  ASSERT_NE(deltaFlag, nullptr);
  EXPECT_TRUE(deltaFlag->asBool());
  const JsonValue* deltaRequests = deltaDoc.find("counters")->find("svc/requests");
  ASSERT_NE(deltaRequests, nullptr);
  // Exactly one request (d2 itself) was admitted since the d1 baseline.
  EXPECT_EQ(deltaRequests->asNumber(), 1.0);
}

TEST_F(TraceTest, StatsKindParsesFromTheWire) {
  std::istringstream in(
      R"({"id":"w","kind":"wire"})"
      "\n"
      R"({"id":"s","kind":"stats"})"
      "\n"
      R"({"id":"sd","kind":"stats","params":{"delta":true}})"
      "\n");
  std::ostringstream out;
  Service service(replayOptions());
  const ServerStats stats = runServer(in, out, service);
  EXPECT_EQ(stats.ok, 3u);
  std::istringstream lines(out.str());
  std::string line;
  std::getline(lines, line);  // wire
  std::getline(lines, line);  // stats
  EXPECT_NE(line.find(R"("id":"s")"), std::string::npos);
  const JsonValue response = parseJson(line);
  const JsonValue* data = response.find("data");
  ASSERT_NE(data, nullptr);
  EXPECT_NE(data->find("counters"), nullptr);
}

TEST_F(TraceTest, SlowLogDecomposesEveryRequestAtZeroThreshold) {
  std::istringstream in(
      R"({"id":"a","kind":"wire"})"
      "\n"
      R"({"id":"b","kind":"design_point"})"
      "\n"
      R"({"id":"c","kind":"wire"})"
      "\n");
  std::ostringstream out;
  std::ostringstream slowLog;
  ServerOptions options;
  options.slowLog = &slowLog;
  options.slowThresholdMs = 0.0;  // everything is "slow"

  Service service(replayOptions());
  const ServerStats stats = runServer(in, out, service, options);
  EXPECT_EQ(stats.ok, 3u);
  EXPECT_EQ(stats.slow, 3u);
  EXPECT_EQ(
      obs::MetricsRegistry::instance().counter("svc/slow_requests").value(), 3);

  std::istringstream records(slowLog.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(records, line)) {
    const JsonValue record = parseJson(line);
    ASSERT_TRUE(record.isObject()) << line;
    ASSERT_NE(record.find("id"), nullptr);
    ASSERT_NE(record.find("trace"), nullptr);
    const JsonValue* wall = record.find("wall_ms");
    const JsonValue* queueWait = record.find("queue_wait_ms");
    const JsonValue* eval = record.find("eval_ms");
    const JsonValue* emit = record.find("emit_ms");
    ASSERT_NE(wall, nullptr);
    ASSERT_NE(queueWait, nullptr);
    ASSERT_NE(eval, nullptr);
    ASSERT_NE(emit, nullptr);
    EXPECT_GE(wall->asNumber(), 0.0);
    // The decomposition can never exceed the wall time it partitions
    // (eval nests inside work; rounding is 1e-3 ms per field).
    EXPECT_LE(queueWait->asNumber() + eval->asNumber() + emit->asNumber(),
              wall->asNumber() + 0.01);
    ++parsed;
  }
  EXPECT_EQ(parsed, 3u);
}

TEST_F(TraceTest, UntracedReplayCapturesNoTimestampsOrEvents) {
  obs::setTracingEnabled(false);
  obs::setEnabled(false);
  const std::size_t before = obs::journalSnapshot().size();

  std::istringstream in(
      R"({"id":"a","kind":"wire"})"
      "\n");
  std::ostringstream out;
  Service service(replayOptions());
  const ServerStats stats = runServer(in, out, service);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.slow, 0u);  // untimed responses are never "slow"
  EXPECT_EQ(obs::journalSnapshot().size(), before);
}

}  // namespace
}  // namespace nano::svc
