// Multi-producer stress for the service stack (run under TSan in CI):
// several threads hammer one Service with overlapping request mixes and we
// assert the three properties the design promises — each unique query
// computes exactly once (dedup), the admission queue stays bounded, and
// the payload for a given key is identical no matter which producer asked
// or how many exec lanes evaluated it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/exec.h"
#include "obs/obs.h"
#include "svc/server.h"

namespace nano::svc {
namespace {

constexpr int kUnique = 20;
constexpr int kProducers = 4;
constexpr int kPerProducer = 150;
constexpr std::size_t kMaxQueue = 64;

/// A small pool of cheap distinct queries that every producer draws from,
/// so the same keys are in flight from several threads at once.
std::vector<Request> uniquePool() {
  std::vector<Request> pool;
  for (int u = 0; u < kUnique; ++u) {
    Request r;
    if (u % 2 == 0) {
      r.kind = RequestKind::DesignPoint;
      DesignPointParams p;
      p.vdd = 0.45 + 0.01 * u;
      r.params = p;
    } else {
      r.kind = RequestKind::Wire;
      WireParams p;
      p.widthMultiple = 1.0 + 0.25 * u;
      r.params = p;
    }
    pool.push_back(std::move(r));
  }
  return pool;
}

/// Runs the full stress at a given lane count and returns key -> payload.
std::map<std::string, std::string> runStress(int lanes) {
  exec::setGlobalThreadCount(lanes);
  ServiceOptions options;
  options.blockWhenFull = true;  // producers back off instead of losing work
  options.scheduler.maxQueue = kMaxQueue;
  options.scheduler.maxBatch = 8;
  Service service(options);

  const std::vector<Request> pool = uniquePool();
  std::mutex resultsMutex;
  std::map<std::string, std::set<std::string>> payloadsByKey;
  std::atomic<std::size_t> peakDepth{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Stride differently per producer so mixes overlap but interleave.
        Request r = pool[static_cast<std::size_t>(t * 7 + i) % kUnique];
        r.id = std::to_string(t) + "-" + std::to_string(i);
        const std::string key = r.canonicalKey();
        auto future = service.submit(std::move(r));
        const std::size_t depth = service.queueDepth();
        std::size_t seen = peakDepth.load();
        while (depth > seen && !peakDepth.compare_exchange_weak(seen, depth)) {
        }
        const Response response = future.get();
        if (response.status != ResponseStatus::Ok) {
          failures.fetch_add(1);
          continue;
        }
        std::lock_guard<std::mutex> lock(resultsMutex);
        payloadsByKey[key].insert(response.data);
      }
    });
  }
  for (auto& p : producers) p.join();
  service.drain();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(peakDepth.load(), kMaxQueue) << "admission queue must be bounded";
  EXPECT_EQ(payloadsByKey.size(), static_cast<std::size_t>(kUnique));

  std::map<std::string, std::string> payloads;
  for (const auto& [key, variants] : payloadsByKey) {
    EXPECT_EQ(variants.size(), 1u)
        << "key " << key << " produced " << variants.size()
        << " distinct payloads";
    if (!variants.empty()) payloads.emplace(key, *variants.begin());
  }
  return payloads;
}

TEST(SvcStress, OverlappingProducersDedupBoundAndStayDeterministic) {
  auto& registry = obs::MetricsRegistry::instance();
  const bool wasEnabled = obs::enabled();
  registry.reset();
  obs::setEnabled(true);

  const std::map<std::string, std::string> serial = runStress(1);
  const double serialMisses = registry.counter("svc/cache_misses").value();
  // With the cache far larger than the pool, every unique query computes
  // exactly once — concurrent duplicates either hit or join in flight.
  EXPECT_EQ(serialMisses, kUnique);

  const std::map<std::string, std::string> wide = runStress(8);
  EXPECT_EQ(registry.counter("svc/cache_misses").value() - serialMisses,
            kUnique);

  obs::setEnabled(wasEnabled);
  registry.reset();
  exec::setGlobalThreadCount(exec::defaultThreadCount());

  EXPECT_EQ(serial, wide)
      << "payloads must be identical at 1 and 8 exec lanes";
}

}  // namespace
}  // namespace nano::svc
