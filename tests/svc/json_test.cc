#include "svc/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace nano::svc {
namespace {

TEST(JsonFormat, IntegralValuesPrintWithoutExponent) {
  EXPECT_EQ(formatJsonDouble(0.0), "0");
  EXPECT_EQ(formatJsonDouble(9.0), "9");
  EXPECT_EQ(formatJsonDouble(-35.0), "-35");
  EXPECT_EQ(formatJsonDouble(1e6), "1000000");
}

TEST(JsonFormat, RoundTripsArbitraryDoubles) {
  for (double v : {0.1, 1.0 / 3.0, 6.02214076e23, 1.6e-19, -2.5e-8,
                   3.141592653589793, 1e-300}) {
    const std::string s = formatJsonDouble(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

TEST(JsonFormat, NonFiniteBecomesNull) {
  EXPECT_EQ(formatJsonDouble(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(formatJsonDouble(std::nan("")), "null");
}

TEST(JsonParse, ScalarsAndContainers) {
  const JsonValue v = parseJson(
      R"({"a":1.5,"b":"text","c":[true,false,null],"d":{"nested":-2e3}})");
  ASSERT_TRUE(v.isObject());
  EXPECT_DOUBLE_EQ(v.find("a")->asNumber(), 1.5);
  EXPECT_EQ(v.find("b")->asString(), "text");
  ASSERT_TRUE(v.find("c")->isArray());
  EXPECT_EQ(v.find("c")->items().size(), 3u);
  EXPECT_TRUE(v.find("c")->items()[0].asBool());
  EXPECT_TRUE(v.find("c")->items()[2].isNull());
  EXPECT_DOUBLE_EQ(v.find("d")->find("nested")->asNumber(), -2000.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  const JsonValue v = parseJson(R"("a\"b\\c\n\tAé")");
  EXPECT_EQ(v.asString(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonParse, SurrogatePairDecodesToUtf8) {
  EXPECT_EQ(parseJson(R"("😀")").asString(), "\xf0\x9f\x98\x80");
  EXPECT_THROW(parseJson(R"("\ud83d")"), std::invalid_argument);
  EXPECT_THROW(parseJson(R"("\ude00")"), std::invalid_argument);
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\":1,}", "01", "1.", "1e", "tru",
        "\"unterminated", "{\"a\":1}x", "{\"a\":1,\"a\":2}", "nan",
        "\"raw\ncontrol\""}) {
    EXPECT_THROW(parseJson(bad), std::invalid_argument) << bad;
  }
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(parseJson(deep), std::invalid_argument);
}

TEST(JsonWrite, CompactDeterministicInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("z", 1);
  obj.set("a", true);
  JsonValue arr = JsonValue::array();
  arr.push(JsonValue::number(0.5));
  arr.push(JsonValue::string("x\"y"));
  obj.set("list", std::move(arr));
  EXPECT_EQ(obj.write(), R"({"z":1,"a":true,"list":[0.5,"x\"y"]})");
}

TEST(JsonWrite, SetReplacesInPlace) {
  JsonValue obj = JsonValue::object();
  obj.set("a", 1);
  obj.set("b", 2);
  obj.set("a", 3);
  EXPECT_EQ(obj.write(), R"({"a":3,"b":2})");
}

TEST(JsonRoundTrip, ParseOfWriteIsIdentity) {
  const char* doc =
      R"({"id":"r1","kind":"design_point","params":{"vdd":0.55,"vth":0.17}})";
  EXPECT_EQ(parseJson(doc).write(), doc);
}

TEST(JsonValue, KindMismatchThrows) {
  const JsonValue num = JsonValue::number(1.0);
  EXPECT_THROW((void)num.asString(), std::logic_error);
  EXPECT_THROW((void)num.items(), std::logic_error);
  JsonValue arr = JsonValue::array();
  EXPECT_THROW(arr.set("k", 1), std::logic_error);
}

}  // namespace
}  // namespace nano::svc
