#include "svc/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace nano::svc {
namespace {

Request requestNamed(const std::string& id,
                     Priority priority = Priority::Normal) {
  Request r;
  r.id = id;
  r.kind = RequestKind::Figure2;
  r.priority = priority;
  r.params = Fig2Params{};
  return r;
}

TEST(Scheduler, EvaluatesSubmittedRequests) {
  Scheduler scheduler(
      [](const Request& r) {
        Outcome o;
        o.data = "{}";
        return makeResponse(r, o);
      },
      {});
  auto f = scheduler.submit(requestNamed("r1"));
  const Response resp = f.get();
  EXPECT_EQ(resp.status, ResponseStatus::Ok);
  EXPECT_EQ(resp.id, "r1");
}

/// A handler that blocks until released, so tests can hold the batcher
/// busy and fill the queue deterministically.
class GatedHandler {
 public:
  Response operator()(const Request& request) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entered_;
      enteredCv_.notify_all();
      releaseCv_.wait(lock, [this] { return released_; });
    }
    order_.push_back(request.id);
    Outcome o;
    o.data = "{}";
    return makeResponse(request, o);
  }

  void waitUntilEntered(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    enteredCv_.wait(lock, [&] { return entered_ >= n; });
  }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    releaseCv_.notify_all();
  }

  /// Completion order (only safe to read after all futures resolved AND
  /// batches are serial, i.e. exec at 1 lane).
  const std::vector<std::string>& order() const { return order_; }

 private:
  std::mutex mutex_;
  std::condition_variable enteredCv_, releaseCv_;
  int entered_ = 0;
  bool released_ = false;
  std::vector<std::string> order_;
};

TEST(Scheduler, ShedsWithStructuredStatusWhenQueueFull) {
  SchedulerOptions options;
  options.maxQueue = 3;
  options.maxBatch = 1;
  GatedHandler gate;
  Scheduler scheduler([&gate](const Request& r) { return gate(r); }, options);

  // First request enters the batcher and parks in the handler; the queue
  // itself is now empty, so three more fit, and everything past that must
  // shed immediately (without blocking this thread).
  auto parked = scheduler.submit(requestNamed("parked"));
  gate.waitUntilEntered(1);
  std::vector<std::future<Response>> queued;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(scheduler.submit(requestNamed("q" + std::to_string(i))));
  }
  const auto before = std::chrono::steady_clock::now();
  auto shedF = scheduler.submit(requestNamed("overflow"));
  const Response shed = shedF.get();
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_EQ(shed.status, ResponseStatus::Shed);
  EXPECT_NE(shed.error.find("queue full"), std::string::npos);
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 1.0)
      << "shedding must not block";

  gate.release();
  EXPECT_EQ(parked.get().status, ResponseStatus::Ok);
  for (auto& f : queued) EXPECT_EQ(f.get().status, ResponseStatus::Ok);
}

TEST(Scheduler, PriorityLanesDrainHighBeforeNormalBeforeLow) {
  SchedulerOptions options;
  options.maxQueue = 16;
  options.maxBatch = 1;  // serial dispatch => completion order == drain order
  GatedHandler gate;
  Scheduler scheduler([&gate](const Request& r) { return gate(r); }, options);

  auto parked = scheduler.submit(requestNamed("parked"));
  gate.waitUntilEntered(1);
  std::vector<std::future<Response>> futures;
  futures.push_back(scheduler.submit(requestNamed("low1", Priority::Low)));
  futures.push_back(scheduler.submit(requestNamed("norm1", Priority::Normal)));
  futures.push_back(scheduler.submit(requestNamed("high1", Priority::High)));
  futures.push_back(scheduler.submit(requestNamed("norm2", Priority::Normal)));
  futures.push_back(scheduler.submit(requestNamed("high2", Priority::High)));
  gate.release();
  for (auto& f : futures) f.get();
  scheduler.drain();

  const std::vector<std::string> expected = {"parked", "high1", "high2",
                                             "norm1", "norm2", "low1"};
  EXPECT_EQ(gate.order(), expected);
}

TEST(Scheduler, ZeroDeadlineTimesOutDeterministically) {
  std::atomic<int> evaluated{0};
  Scheduler scheduler(
      [&](const Request& r) {
        evaluated.fetch_add(1);
        Outcome o;
        o.data = "{}";
        return makeResponse(r, o);
      },
      {});
  Request r = requestNamed("late");
  r.deadlineMs = 0.0;
  const Response resp = scheduler.submit(std::move(r)).get();
  EXPECT_EQ(resp.status, ResponseStatus::Timeout);
  EXPECT_EQ(evaluated.load(), 0);

  // A generous deadline is not triggered.
  Request ok = requestNamed("on-time");
  ok.deadlineMs = 60000.0;
  EXPECT_EQ(scheduler.submit(std::move(ok)).get().status, ResponseStatus::Ok);
  EXPECT_EQ(evaluated.load(), 1);
}

TEST(Scheduler, SubmitAfterStopSheds) {
  Scheduler scheduler(
      [](const Request& r) {
        Outcome o;
        o.data = "{}";
        return makeResponse(r, o);
      },
      {});
  scheduler.stop();
  const Response resp = scheduler.submit(requestNamed("too-late")).get();
  EXPECT_EQ(resp.status, ResponseStatus::Shed);
  EXPECT_NE(resp.error.find("stopped"), std::string::npos);
}

TEST(Scheduler, DrainWaitsForAllAdmittedWork) {
  std::atomic<int> completed{0};
  Scheduler scheduler(
      [&](const Request& r) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
        Outcome o;
        o.data = "{}";
        return makeResponse(r, o);
      },
      {});
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(scheduler.submit(requestNamed(std::to_string(i))));
  }
  scheduler.drain();
  EXPECT_EQ(completed.load(), 50);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
}

TEST(Scheduler, DestructorCompletesQueuedPromises) {
  std::vector<std::future<Response>> futures;
  {
    Scheduler scheduler(
        [](const Request& r) {
          Outcome o;
          o.data = "{}";
          return makeResponse(r, o);
        },
        {});
    for (int i = 0; i < 20; ++i) {
      futures.push_back(scheduler.submit(requestNamed(std::to_string(i))));
    }
  }  // ~Scheduler drains
  for (auto& f : futures) EXPECT_EQ(f.get().status, ResponseStatus::Ok);
}

TEST(Scheduler, SubmitBlockingWaitsInsteadOfShedding) {
  SchedulerOptions options;
  options.maxQueue = 2;
  options.maxBatch = 1;
  GatedHandler gate;
  Scheduler scheduler([&gate](const Request& r) { return gate(r); }, options);
  auto parked = scheduler.submit(requestNamed("parked"));
  gate.waitUntilEntered(1);
  auto q0 = scheduler.submit(requestNamed("q0"));
  auto q1 = scheduler.submit(requestNamed("q1"));

  // Queue is full; a blocking submit must wait, then succeed once the
  // batcher frees a slot.
  std::atomic<bool> admitted{false};
  std::thread blocker([&] {
    auto f = scheduler.submitBlocking(requestNamed("patient"));
    admitted.store(true);
    EXPECT_EQ(f.get().status, ResponseStatus::Ok);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  gate.release();
  blocker.join();
  EXPECT_TRUE(admitted.load());
  for (auto* f : {&parked, &q0, &q1}) {
    EXPECT_EQ(f->get().status, ResponseStatus::Ok);
  }
}

TEST(Scheduler, StopIsIdempotentAndSafeFromManyThreads) {
  // Regression: stop() used to join the batcher unconditionally, so a
  // second caller (destructor racing a signal-driven shutdown) crashed
  // with std::system_error. Now exactly one caller joins and the rest
  // block until the join completes — hammer it from many threads while
  // submitters are still feeding the queue. Run under TSan in CI.
  for (int round = 0; round < 8; ++round) {
    Scheduler scheduler(
        [](const Request& r) {
          Outcome o;
          o.data = "{}";
          return makeResponse(r, o);
        },
        {});
    std::vector<std::thread> threads;
    std::atomic<int> submitted{0};
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&scheduler, &submitted, t] {
        for (int i = 0; i < 50; ++i) {
          // Sheds (post-stop) are fine; crashing or hanging is not.
          auto f = scheduler.submit(
              requestNamed(std::to_string(t) + "/" + std::to_string(i)));
          submitted.fetch_add(1);
          f.wait();
        }
      });
    }
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&scheduler] { scheduler.stop(); });
    }
    threads.emplace_back([&scheduler] { scheduler.drain(); });
    for (auto& thread : threads) thread.join();
    scheduler.stop();  // idempotent after the race too
    EXPECT_EQ(submitted.load(), 200);
  }
}

TEST(Scheduler, AbsurdDeadlineIsClampedNotUndefined) {
  // duration_cast<nanoseconds>(duration<double,milli>(1e300)) is UB on
  // overflow; the scheduler clamps at kMaxDeadlineMs before converting.
  Scheduler scheduler(
      [](const Request& r) {
        Outcome o;
        o.data = "{}";
        return makeResponse(r, o);
      },
      {});
  Request r = requestNamed("huge");
  r.deadlineMs = 1e300;
  const Response resp = scheduler.submit(std::move(r)).get();
  // A clamped deadline is ~an hour away: the request must evaluate
  // normally, not time out (and certainly not overflow into "already
  // expired").
  EXPECT_EQ(resp.status, ResponseStatus::Ok);

  Request negative = requestNamed("zero");
  negative.deadlineMs = 0.0;
  EXPECT_EQ(scheduler.submit(std::move(negative)).get().status,
            ResponseStatus::Timeout);
}

}  // namespace
}  // namespace nano::svc
