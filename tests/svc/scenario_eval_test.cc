// The scenario request kinds through the evaluation layer: payloads must
// be byte-identical at any exec lane count (they are cached and replayed
// by the golden traces), and a sweep must evaluate every per-step check
// in every variant.
#include <gtest/gtest.h>

#include "exec/exec.h"
#include "svc/eval.h"
#include "svc/json.h"
#include "svc/request.h"

namespace nano::svc {
namespace {

Request mustParse(const std::string& line) {
  Request r;
  std::string error;
  EXPECT_TRUE(parseRequest(line, r, error)) << error;
  return r;
}

std::string evalAtLanes(const Request& r, int lanes) {
  const int before = exec::threadCount();
  exec::setGlobalThreadCount(lanes);
  const Outcome outcome = evaluate(r);
  exec::setGlobalThreadCount(before);
  EXPECT_EQ(outcome.status, ResponseStatus::Ok) << outcome.error;
  return outcome.data;
}

TEST(ScenarioEval, SingleRunPayloadIsLaneInvariant) {
  const Request r = mustParse(
      R"({"kind":"scenario","params":{"steps":300,"trace_stride":50,)"
      R"("include_trace":true}})");
  const std::string one = evalAtLanes(r, 1);
  EXPECT_EQ(evalAtLanes(r, 8), one);
  const JsonValue doc = parseJson(one);
  const JsonValue* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_DOUBLE_EQ(summary->find("checks_evaluated")->asNumber(), 3.0 * 300);
  EXPECT_TRUE(summary->find("ok")->asBool());
  ASSERT_NE(doc.find("trace"), nullptr);
  EXPECT_FALSE(doc.find("trace")->items().empty());
}

TEST(ScenarioEval, SweepOf64VariantsIsDeterministicAndFullyChecked) {
  // The acceptance-criterion sweep: 8 x 8 = 64 policy variants through the
  // service evaluator, identical payload bytes at 1 and 8 lanes, and the
  // three per-step assertions evaluated on every step of every variant.
  const Request r = mustParse(
      R"({"kind":"scenario_sweep","params":{"steps":250,"axis_a":8,)"
      R"("axis_b":8}})");
  const std::string serial = evalAtLanes(r, 1);
  EXPECT_EQ(evalAtLanes(r, 8), serial);
  EXPECT_EQ(evalAtLanes(r, 2), serial);

  const JsonValue doc = parseJson(serial);
  EXPECT_DOUBLE_EQ(doc.find("variants")->asNumber(), 64.0);
  const auto& rows = doc.find("rows")->items();
  ASSERT_EQ(rows.size(), 64u);
  for (const JsonValue& row : rows) {
    const JsonValue* summary = row.find("summary");
    ASSERT_NE(summary, nullptr);
    EXPECT_DOUBLE_EQ(summary->find("checks_evaluated")->asNumber(),
                     3.0 * 250);
    // Interior knob sampling never collides with the "policy default"
    // sentinel at exactly 0.
    EXPECT_NE(row.find("knob_a")->asNumber(), 0.0);
    EXPECT_NE(row.find("knob_b")->asNumber(), 0.0);
  }
  // The best index, when present, points at an ok row.
  const int best = static_cast<int>(doc.find("best_index")->asNumber());
  if (best >= 0) {
    EXPECT_TRUE(rows[static_cast<std::size_t>(best)]
                    .find("summary")
                    ->find("ok")
                    ->asBool());
  }
}

TEST(ScenarioEval, SweepRunsEveryPolicyKind) {
  for (const char* policy : {"dtm", "dvfs", "explore"}) {
    const Request r = mustParse(
        std::string(
            R"({"kind":"scenario_sweep","params":{"steps":120,"axis_a":2,)") +
        R"("axis_b":2,"policy":")" + policy + R"("}})");
    const Outcome outcome = evaluate(r);
    ASSERT_EQ(outcome.status, ResponseStatus::Ok) << outcome.error;
    const JsonValue doc = parseJson(outcome.data);
    EXPECT_EQ(doc.find("policy")->asString(), policy);
    EXPECT_EQ(doc.find("rows")->items().size(), 4u);
  }
}

}  // namespace
}  // namespace nano::svc
