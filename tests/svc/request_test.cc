#include "svc/request.h"

#include <gtest/gtest.h>

#include "svc/json.h"

namespace nano::svc {
namespace {

Request mustParse(const std::string& line) {
  Request r;
  std::string error;
  EXPECT_TRUE(parseRequest(line, r, error)) << error;
  return r;
}

std::string mustFail(const std::string& line) {
  Request r;
  std::string error;
  EXPECT_FALSE(parseRequest(line, r, error)) << line;
  return error;
}

TEST(RequestParse, MinimalRequestFillsDefaults) {
  const Request r = mustParse(R"({"kind":"design_point"})");
  EXPECT_EQ(r.kind, RequestKind::DesignPoint);
  EXPECT_EQ(r.id, "");
  EXPECT_EQ(r.priority, Priority::Normal);
  EXPECT_LT(r.deadlineMs, 0.0);
  const auto& p = std::get<DesignPointParams>(r.params);
  EXPECT_EQ(p.nodeNm, 35);
  EXPECT_DOUBLE_EQ(p.activity, 0.1);
}

TEST(RequestParse, AllFieldsRead) {
  const Request r = mustParse(
      R"({"id":"q7","kind":"grid_solve","priority":"high","deadline_ms":250,)"
      R"("params":{"node_nm":50,"width_multiple":8,"subdivisions":16,)"
      R"("hotspot":false,"preconditioner":"multigrid"}})");
  EXPECT_EQ(r.id, "q7");
  EXPECT_EQ(r.priority, Priority::High);
  EXPECT_DOUBLE_EQ(r.deadlineMs, 250.0);
  const auto& p = std::get<GridSolveParams>(r.params);
  EXPECT_EQ(p.nodeNm, 50);
  EXPECT_DOUBLE_EQ(p.widthMultiple, 8.0);
  EXPECT_EQ(p.subdivisions, 16);
  EXPECT_FALSE(p.hotspot);
  EXPECT_EQ(p.preconditioner, "multigrid");
}

TEST(RequestParse, EveryKindNameRoundTrips) {
  for (int i = 0; i < kRequestKindCount; ++i) {
    const auto kind = static_cast<RequestKind>(i);
    RequestKind parsed;
    ASSERT_TRUE(kindFromName(kindName(kind), parsed)) << kindName(kind);
    EXPECT_EQ(parsed, kind);
    const Request r = mustParse(std::string(R"({"kind":")") + kindName(kind) +
                                R"("})");
    EXPECT_EQ(r.kind, kind);
  }
}

TEST(RequestParse, EveryKindParamsRoundTripByteIdentically) {
  // Generated from the registered kind list, not a hand-kept table: for
  // every kind, render the default params to their wire form, parse that
  // back, and demand the same canonical key and the same wire bytes. A
  // kind whose fields() declaration drifts from its parse path fails here
  // automatically.
  for (int i = 0; i < kRequestKindCount; ++i) {
    const auto kind = static_cast<RequestKind>(i);
    const Params defaults = defaultParams(kind);
    const std::string wire = paramsJson(defaults).write();
    const Request parsed = mustParse(std::string(R"({"kind":")") +
                                     kindName(kind) + R"(","params":)" + wire +
                                     "}");
    Request plain;
    plain.kind = kind;
    plain.params = defaults;
    EXPECT_EQ(parsed.canonicalKey(), plain.canonicalKey()) << kindName(kind);
    EXPECT_EQ(paramsJson(parsed.params).write(), wire) << kindName(kind);
    // And an empty params object means exactly the defaults.
    const Request empty = mustParse(std::string(R"({"kind":")") +
                                    kindName(kind) + R"(","params":{}})");
    EXPECT_EQ(empty.canonicalKey(), plain.canonicalKey()) << kindName(kind);
  }
}

TEST(RequestParse, ScenarioParamsRoundTripWithNonDefaults) {
  const Request r = mustParse(
      R"({"kind":"scenario","params":{"scenario":"dvfs","policy":"explore",)"
      R"("steps":512,"dt_us":25.5,"knob_a":0.75,"knob_b":0.1,)"
      R"("include_trace":true}})");
  const auto& p = std::get<ScenarioParams>(r.params);
  EXPECT_EQ(p.scenario, "dvfs");
  EXPECT_EQ(p.policy, "explore");
  EXPECT_EQ(p.steps, 512);
  EXPECT_DOUBLE_EQ(p.dtUs, 25.5);
  EXPECT_TRUE(p.includeTrace);
  const std::string wire = paramsJson(r.params).write();
  const Request again = mustParse(std::string(R"({"kind":"scenario","params":)") +
                                  wire + "}");
  EXPECT_EQ(again.canonicalKey(), r.canonicalKey());
  EXPECT_EQ(paramsJson(again.params).write(), wire);
}

TEST(RequestParse, ScenarioValidationRejectsBadValues) {
  EXPECT_NE(mustFail(R"({"kind":"scenario","params":{"scenario":"meltdown"}})")
                .find("scenario"),
            std::string::npos);
  EXPECT_NE(mustFail(R"({"kind":"scenario","params":{"policy":"chaos"}})")
                .find("policy"),
            std::string::npos);
  EXPECT_NE(mustFail(R"({"kind":"scenario","params":{"steps":0}})")
                .find("steps"),
            std::string::npos);
  EXPECT_NE(mustFail(R"({"kind":"scenario","params":{"dt_us":0}})")
                .find("dt_us"),
            std::string::npos);
  EXPECT_NE(mustFail(R"({"kind":"scenario","params":{"trace_stride":0}})")
                .find("trace_stride"),
            std::string::npos);
  EXPECT_NE(mustFail(R"({"kind":"scenario_sweep","params":{"axis_a":0}})")
                .find("axis_a"),
            std::string::npos);
  EXPECT_NE(mustFail(R"({"kind":"scenario_sweep","params":{"axis_b":65}})")
                .find("axis_b"),
            std::string::npos);
  // Sweep inherits the base scenario validation.
  EXPECT_NE(
      mustFail(R"({"kind":"scenario_sweep","params":{"scenario":"meltdown"}})")
          .find("scenario"),
      std::string::npos);
}

TEST(RequestParse, RejectsBadInput) {
  EXPECT_NE(mustFail("not json").find("parseJson"), std::string::npos);
  EXPECT_NE(mustFail("[1]").find("object"), std::string::npos);
  EXPECT_NE(mustFail(R"({"id":"x"})").find("missing \"kind\""),
            std::string::npos);
  EXPECT_NE(mustFail(R"({"kind":"warp_drive"})").find("unknown kind"),
            std::string::npos);
  EXPECT_NE(mustFail(R"({"kind":"figure1","params":{"pints":9}})")
                .find("unknown parameter"),
            std::string::npos);
  EXPECT_NE(mustFail(R"({"kind":"figure1","params":{"points":"nine"}})")
                .find("must be a number"),
            std::string::npos);
  EXPECT_NE(mustFail(R"({"kind":"figure1","params":{"points":2.5}})")
                .find("integer"),
            std::string::npos);
  EXPECT_NE(mustFail(R"({"kind":"figure1","deadline_ms":-5})")
                .find("deadline_ms"),
            std::string::npos);
  EXPECT_NE(mustFail(R"({"kind":"figure1","priority":"urgent"})")
                .find("priority"),
            std::string::npos);
  EXPECT_NE(mustFail(R"({"kind":"figure1","extra":1})")
                .find("unknown request field"),
            std::string::npos);
  EXPECT_NE(
      mustFail(R"({"kind":"grid_solve","params":{"preconditioner":"lu"}})")
          .find("preconditioner"),
      std::string::npos);
}

TEST(RequestParse, IdSurvivesParseFailure) {
  Request r;
  std::string error;
  EXPECT_FALSE(parseRequest(R"({"id":"keep-me","kind":"warp"})", r, error));
  EXPECT_EQ(r.id, "keep-me");
}

TEST(CanonicalKey, DefaultsAndExplicitDefaultsCollide) {
  const Request implicit = mustParse(R"({"kind":"figure1"})");
  const Request explicitDefaults =
      mustParse(R"({"id":"other","kind":"figure1","params":{"points":9}})");
  EXPECT_EQ(implicit.canonicalKey(), explicitDefaults.canonicalKey());
  EXPECT_EQ(implicit.contentHash(), explicitDefaults.contentHash());
}

TEST(RequestParse, AbsurdDeadlineClampsOnTheWayIn) {
  // {"deadline_ms":1e300} used to survive parsing intact and overflow the
  // duration_cast at enqueue (UB). The parser clamps to kMaxDeadlineMs,
  // and the round trip through the whole pipeline still answers ok.
  const Request r = mustParse(R"({"kind":"figure2","deadline_ms":1e300})");
  EXPECT_DOUBLE_EQ(r.deadlineMs, kMaxDeadlineMs);
}

TEST(CanonicalKey, AdmissionFieldsDoNotAffectKey) {
  const Request plain = mustParse(R"({"kind":"table2"})");
  const Request dressed = mustParse(
      R"({"id":"x","kind":"table2","priority":"low","deadline_ms":9000})");
  EXPECT_EQ(plain.canonicalKey(), dressed.canonicalKey());
}

TEST(CanonicalKey, ParameterChangesChangeKey) {
  const Request a =
      mustParse(R"({"kind":"design_point","params":{"vdd":0.5}})");
  const Request b =
      mustParse(R"({"kind":"design_point","params":{"vdd":0.51}})");
  EXPECT_NE(a.canonicalKey(), b.canonicalKey());
  EXPECT_NE(a.contentHash(), b.contentHash());
}

TEST(CanonicalKey, IsReadableAndKindPrefixed) {
  const Request r =
      mustParse(R"({"kind":"design_point","params":{"vdd":0.5,"vth":0.15}})");
  EXPECT_EQ(r.canonicalKey(),
            "design_point(node_nm=35,activity=0.1,vdd=0.5,vth=0.15)");
}

TEST(Fnv1a, MatchesReferenceVectors) {
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 12638187200555641996ull);
  EXPECT_EQ(fnv1a64("foobar"), 9625390261332436968ull);
}

TEST(ResponseLine, OkCarriesDataAndKind) {
  const Request r = mustParse(R"({"id":"r9","kind":"wire"})");
  Outcome outcome;
  outcome.status = ResponseStatus::Ok;
  outcome.data = R"({"x":1})";
  const Response resp = makeResponse(r, outcome);
  EXPECT_EQ(resp.toJsonLine(),
            R"({"id":"r9","kind":"wire","status":"ok","data":{"x":1}})");
  // The line itself must be valid JSON.
  EXPECT_NO_THROW(parseJson(resp.toJsonLine()));
}

TEST(ResponseLine, FailureCarriesErrorNotData) {
  const Request r = mustParse(R"({"id":"r1","kind":"figure2"})");
  const Response shed =
      makeFailure(r, ResponseStatus::Shed, "queue full (4 requests)");
  EXPECT_EQ(
      shed.toJsonLine(),
      R"x({"id":"r1","kind":"figure2","status":"shed","error":"queue full (4 requests)"})x");
  Request unparsed;
  unparsed.id = "mystery";
  const Response invalid =
      makeFailure(unparsed, ResponseStatus::Invalid, "bad \"kind\"");
  EXPECT_EQ(invalid.toJsonLine(),
            R"({"id":"mystery","status":"invalid","error":"bad \"kind\""})");
}

}  // namespace
}  // namespace nano::svc
