#include "svc/cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace nano::svc {
namespace {

Outcome okOutcome(const std::string& payload) {
  Outcome o;
  o.status = ResponseStatus::Ok;
  o.data = payload;
  return o;
}

TEST(ResultCache, MissComputesThenHitsServeCached) {
  ResultCache cache(16, 1);
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return okOutcome("payload");
  };
  EXPECT_EQ(cache.getOrCompute("k", compute).data, "payload");
  EXPECT_EQ(cache.getOrCompute("k", compute).data, "payload");
  EXPECT_EQ(cache.getOrCompute("k", compute).data, "payload");
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, DistinctKeysComputeSeparately) {
  ResultCache cache(16, 4);
  int computes = 0;
  for (const char* key : {"a", "b", "c", "a", "b"}) {
    cache.getOrCompute(key, [&] {
      ++computes;
      return okOutcome(key);
    });
  }
  EXPECT_EQ(computes, 3);
  EXPECT_EQ(cache.getOrCompute("c", [] { return okOutcome("wrong"); }).data,
            "c");
}

TEST(ResultCache, LruEvictsColdestWithinShard) {
  ResultCache cache(2, 1);  // one shard, two entries
  int computes = 0;
  auto computeNamed = [&](const std::string& key) {
    return cache.getOrCompute(key, [&] {
      ++computes;
      return okOutcome(key);
    });
  };
  computeNamed("a");
  computeNamed("b");
  computeNamed("a");  // touch a: b is now coldest
  computeNamed("c");  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(computes, 3);
  computeNamed("a");  // still cached
  EXPECT_EQ(computes, 3);
  computeNamed("b");  // recomputes
  EXPECT_EQ(computes, 4);
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return okOutcome("x");
  };
  cache.getOrCompute("k", compute);
  cache.getOrCompute("k", compute);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, ClearForgetsEverything) {
  ResultCache cache(16);
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return okOutcome("x");
  };
  cache.getOrCompute("k", compute);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.getOrCompute("k", compute);
  EXPECT_EQ(computes, 2);
}

TEST(ResultCache, ErrorOutcomesAreCachedToo) {
  ResultCache cache(16);
  int computes = 0;
  auto compute = [&] {
    ++computes;
    Outcome o;
    o.status = ResponseStatus::Error;
    o.error = "deterministically bad";
    return o;
  };
  EXPECT_EQ(cache.getOrCompute("bad", compute).status, ResponseStatus::Error);
  EXPECT_EQ(cache.getOrCompute("bad", compute).error, "deterministically bad");
  EXPECT_EQ(computes, 1);
}

TEST(ResultCache, ConcurrentSameKeyComputesOnce) {
  ResultCache cache(64, 8);
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> results(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t] = cache
                       .getOrCompute("shared",
                                     [&] {
                                       // Widen the race window so joiners
                                       // actually wait on the in-flight slot.
                                       std::this_thread::sleep_for(
                                           std::chrono::milliseconds(20));
                                       computes.fetch_add(1);
                                       return okOutcome("one-true-payload");
                                     })
                       .data;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(computes.load(), 1);
  for (const std::string& r : results) EXPECT_EQ(r, "one-true-payload");
}

TEST(ResultCache, ObsCountersTrackHitsMissesDedup) {
  obs::MetricsRegistry::instance().reset();
  const bool was = obs::enabled();
  obs::setEnabled(true);
  {
    ResultCache cache(16, 2);
    auto compute = [] { return okOutcome("x"); };
    cache.getOrCompute("a", compute);
    cache.getOrCompute("a", compute);
    cache.getOrCompute("b", compute);
  }
  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("svc/cache_misses").value(), 2);
  EXPECT_EQ(reg.counter("svc/cache_hits").value(), 1);
  obs::setEnabled(was);
  obs::MetricsRegistry::instance().reset();
}

}  // namespace
}  // namespace nano::svc
