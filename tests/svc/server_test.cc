// End-to-end tests for the JSON-lines front end: response ordering,
// malformed-input handling, the committed golden replay trace, and the
// PR acceptance criterion (a 10k-request mixed trace with a >=90% cache
// hit rate whose output is byte-identical at 1 and 8 exec lanes).
#include "svc/server.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/exec.h"
#include "obs/obs.h"

namespace nano::svc {
namespace {

/// A service configured like `nanod --block`: replay clients prefer
/// backpressure over sheds so traces replay without loss.
ServiceOptions replayOptions() {
  ServiceOptions options;
  options.blockWhenFull = true;
  return options;
}

std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(RunServer, EmitsResponsesInInputOrder) {
  std::istringstream in(
      R"({"id":"r0","kind":"wire"})"
      "\n"
      R"({"id":"r1","kind":"design_point"})"
      "\n"
      R"({"id":"r2","kind":"repeater"})"
      "\n"
      R"({"id":"r3","kind":"wire"})"
      "\n");
  std::ostringstream out;
  Service service(replayOptions());
  const ServerStats stats = runServer(in, out, service);
  EXPECT_EQ(stats.lines, 4u);
  EXPECT_EQ(stats.ok, 4u);
  const std::vector<std::string> lines = splitLines(out.str());
  ASSERT_EQ(lines.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const std::string prefix =
        std::string(R"({"id":"r)") + std::to_string(i) + R"(",)";
    EXPECT_EQ(lines[i].compare(0, prefix.size(), prefix), 0) << lines[i];
  }
}

TEST(RunServer, SkipsBlanksTalliesInvalidAndKeepsServing) {
  std::istringstream in(
      "\n"
      R"({"id":"good1","kind":"wire"})"
      "\n"
      "this is not json\n"
      "\r\n"                              // CRLF blank
      R"({"id":"good2","kind":"wire"})"
      "\r\n"                              // CRLF-terminated request
      R"({"id":"late","kind":"wire","deadline_ms":0})"
      "\n");
  std::ostringstream out;
  Service service(replayOptions());
  const ServerStats stats = runServer(in, out, service);
  EXPECT_EQ(stats.lines, 4u);  // blank lines are not consumed as requests
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.invalid, 1u);
  EXPECT_EQ(stats.timeouts, 1u);
  const std::vector<std::string> lines = splitLines(out.str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[1].find(R"("status":"invalid")"), std::string::npos);
  EXPECT_NE(lines[3].find(R"("status":"timeout")"), std::string::npos);
}

TEST(RunServer, DeterministicErrorsAreStructuredNotFatal) {
  // 90 nm is not a roadmap node: evaluation throws, the service answers
  // with status:"error", and later requests still succeed.
  std::istringstream in(
      R"({"id":"bad","kind":"node_summary","params":{"node_nm":90}})"
      "\n"
      R"({"id":"after","kind":"wire"})"
      "\n");
  std::ostringstream out;
  Service service(replayOptions());
  const ServerStats stats = runServer(in, out, service);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.ok, 1u);
  const std::vector<std::string> lines = splitLines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find(R"("status":"error")"), std::string::npos);
  EXPECT_NE(lines[0].find("90"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("status":"ok")"), std::string::npos);
}

TEST(RunServer, TinyEmitQueueLimitBlocksTheReaderButLosesNothing) {
  // The emit bound used to be a hardcoded 8192 inside the server loop;
  // now it is ServerOptions::emitQueueLimit. At the smallest useful limit
  // the reader stalls instead of buffering, and the output is still
  // complete and ordered.
  std::ostringstream trace;
  for (int i = 0; i < 64; ++i) {
    trace << R"({"id":"q)" << i << R"(","kind":"wire","params":{)"
          << R"("width_multiple":)" << 1.0 + 0.01 * i << "}}\n";
  }
  std::istringstream in(trace.str());
  std::ostringstream out;
  ServerOptions options;
  options.emitQueueLimit = 1;
  Service service(replayOptions());
  const ServerStats stats = runServer(in, out, service, options);
  EXPECT_EQ(stats.lines, 64u);
  EXPECT_EQ(stats.ok, 64u);
  const std::vector<std::string> lines = splitLines(out.str());
  ASSERT_EQ(lines.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    const std::string prefix =
        std::string(R"({"id":"q)") + std::to_string(i) + R"(",)";
    EXPECT_EQ(lines[static_cast<std::size_t>(i)].compare(0, prefix.size(),
                                                         prefix),
              0)
        << lines[static_cast<std::size_t>(i)];
  }
}

std::string readFileOrFail(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path
                         << " (run scripts/refresh_goldens.sh)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(GoldenReplay, CommittedTraceReproducesGoldenResponsesByteForByte) {
  const std::string trace =
      readFileOrFail(std::string(NANO_GOLDEN_DIR) + "/nanod_trace.jsonl");
  const std::string golden =
      readFileOrFail(std::string(NANO_GOLDEN_DIR) + "/nanod_replay.jsonl");
  ASSERT_FALSE(trace.empty());
  ASSERT_FALSE(golden.empty());

  std::istringstream in(trace);
  std::ostringstream out;
  Service service(replayOptions());
  const ServerStats stats = runServer(in, out, service);
  EXPECT_GT(stats.lines, 0u);
  EXPECT_EQ(out.str(), golden)
      << "nanod replay drifted from golden/nanod_replay.jsonl; if the model "
         "change is intentional, regenerate with scripts/refresh_goldens.sh";
}

/// The acceptance-criterion trace: kUnique distinct cheap queries repeated
/// kRepeats times (10k lines total), so every line after the first block
/// should be served from cache.
constexpr int kUnique = 250;
constexpr int kRepeats = 40;

std::string mixedTrace() {
  std::ostringstream trace;
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (int u = 0; u < kUnique; ++u) {
      const int id = rep * kUnique + u;
      switch (u % 3) {
        case 0:
          trace << R"({"id":"t)" << id
                << R"(","kind":"design_point","params":{"vdd":)"
                << 0.4 + 0.002 * u << R"(,"vth":0.17}})"
                << "\n";
          break;
        case 1:
          trace << R"({"id":"t)" << id
                << R"(","kind":"wire","params":{"width_multiple":)"
                << 1.0 + 0.05 * u << "}}\n";
          break;
        default:
          trace << R"({"id":"t)" << id
                << R"(","kind":"repeater","params":{"width_multiple":)"
                << 1.0 + 0.05 * u << "}}\n";
          break;
      }
    }
  }
  return trace.str();
}

std::string replayMixedTrace(const std::string& trace) {
  std::istringstream in(trace);
  std::ostringstream out;
  Service service(replayOptions());
  const ServerStats stats = runServer(in, out, service);
  EXPECT_EQ(stats.lines, static_cast<std::size_t>(kUnique * kRepeats));
  EXPECT_EQ(stats.ok, static_cast<std::size_t>(kUnique * kRepeats));
  return out.str();
}

TEST(MixedTrace, TenThousandRequestsHitCacheAndMatchAcrossLaneCounts) {
  const std::string trace = mixedTrace();

  auto& registry = obs::MetricsRegistry::instance();
  const bool wasEnabled = obs::enabled();
  registry.reset();
  obs::setEnabled(true);

  exec::setGlobalThreadCount(1);
  const std::string serial = replayMixedTrace(trace);

  const double hits = registry.counter("svc/cache_hits").value();
  const double joins = registry.counter("svc/dedup_joins").value();
  const double misses = registry.counter("svc/cache_misses").value();
  const double total = static_cast<double>(kUnique * kRepeats);
  // Every unique query computes exactly once; all repeats are served from
  // cache (at 1 lane nothing can dedup in flight, so they are plain hits).
  EXPECT_EQ(misses, kUnique);
  EXPECT_GE((hits + joins) / total, 0.9)
      << "hits=" << hits << " joins=" << joins << " misses=" << misses;

  exec::setGlobalThreadCount(8);
  const std::string wide = replayMixedTrace(trace);
  const double missesWide =
      registry.counter("svc/cache_misses").value() - misses;
  EXPECT_EQ(missesWide, kUnique);

  obs::setEnabled(wasEnabled);
  registry.reset();
  exec::setGlobalThreadCount(exec::defaultThreadCount());

  ASSERT_EQ(splitLines(serial).size(), static_cast<std::size_t>(kUnique * kRepeats));
  EXPECT_EQ(serial, wide)
      << "responses must be byte-identical regardless of lane count";
}

}  // namespace
}  // namespace nano::svc
