// Property tests: invariants that must hold for ANY generated design,
// swept over seeds with parameterized gtest. These are the guard rails of
// the optimizer stack — timing legality, electrical legality, conservation
// of structure — independent of the particular netlist drawn.
#include <gtest/gtest.h>

#include <sstream>

#include "circuit/generator.h"
#include "circuit/netlist_io.h"
#include "opt/combined.h"
#include "power/power_model.h"
#include "sta/sta.h"

namespace nano {
namespace {

using circuit::Library;
using circuit::Netlist;

const Library& lib() {
  static const Library instance(tech::nodeByFeature(70));
  return instance;
}

Netlist designForSeed(std::uint64_t seed) {
  util::Rng rng(seed);
  circuit::GeneratorConfig cfg;
  cfg.gates = 400;
  cfg.outputs = 32;
  return circuit::pipelinedLogic(lib(), cfg, rng, 5);
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, GeneratedDesignIsStructurallySound) {
  const Netlist nl = designForSeed(GetParam());
  EXPECT_NO_THROW(nl.validate());
  EXPECT_TRUE(nl.vddViolations().empty());
  for (int g : nl.gateIds()) {
    EXPECT_TRUE(!nl.node(g).fanouts.empty() || nl.node(g).isOutput);
  }
}

TEST_P(SeedSweep, StaSlacksConsistent) {
  const Netlist nl = designForSeed(GetParam());
  const auto t = sta::analyze(nl);
  EXPECT_GT(t.criticalPathDelay, 0.0);
  EXPECT_NEAR(t.worstSlack, 0.0, 1e-15);  // self-clocked
  for (int i = 0; i < nl.nodeCount(); ++i) {
    EXPECT_GE(t.slack[static_cast<std::size_t>(i)], -1e-15);
  }
}

TEST_P(SeedSweep, CvsPreservesTimingAndLegality) {
  const Netlist nl = designForSeed(GetParam());
  const auto r = opt::runCvs(nl, lib());
  EXPECT_TRUE(r.timingAfter.meetsTiming());
  EXPECT_TRUE(r.netlist.vddViolations().empty());
  EXPECT_GE(r.dynamicSavings(), -1e-9);
  EXPECT_GE(r.fractionLowVdd, 0.0);
  EXPECT_LE(r.fractionLowVdd, 1.0);
}

TEST_P(SeedSweep, DualVthNeverHurtsTimingOrDynamicPower) {
  const Netlist nl = designForSeed(GetParam());
  const auto r = opt::runDualVth(nl, lib());
  EXPECT_TRUE(r.timingAfter.meetsTiming());
  EXPECT_LE(r.powerAfter.leakage, r.powerBefore.leakage * (1.0 + 1e-9));
  EXPECT_NEAR(r.powerAfter.dynamic, r.powerBefore.dynamic,
              0.001 * r.powerBefore.dynamic);
}

TEST_P(SeedSweep, DownsizeNeverIncreasesPowerOrArea) {
  const Netlist nl = designForSeed(GetParam());
  const auto r = opt::downsizeForPower(nl, lib());
  EXPECT_TRUE(r.timingAfter.meetsTiming());
  EXPECT_LE(r.powerAfter.total(), r.powerBefore.total() * (1.0 + 1e-9));
  EXPECT_LE(r.areaAfter, r.areaBefore * (1.0 + 1e-9));
}

TEST_P(SeedSweep, FullFlowMonotoneAndLegal) {
  const Netlist nl = designForSeed(GetParam());
  const auto r = opt::runFlow(nl, lib());
  double prev = r.powerBefore.total();
  for (const auto& stage : r.stages) {
    EXPECT_LE(stage.power.total(), prev * 1.001) << stage.name;
    EXPECT_TRUE(stage.timing.meetsTiming()) << stage.name;
    prev = stage.power.total();
  }
  EXPECT_TRUE(r.netlist.vddViolations().empty());
}

TEST_P(SeedSweep, NetlistIoRoundTripExact) {
  const Netlist nl = designForSeed(GetParam());
  std::ostringstream os;
  circuit::writeNetlist(os, nl);
  std::istringstream is(os.str());
  const Netlist copy = circuit::readNetlist(is, lib());
  const auto t1 = sta::analyze(nl);
  const auto t2 = sta::analyze(copy);
  EXPECT_NEAR(t2.criticalPathDelay, t1.criticalPathDelay,
              1e-12 * t1.criticalPathDelay);
}

TEST_P(SeedSweep, ActivityBoundsHold) {
  const Netlist nl = designForSeed(GetParam());
  const auto act = power::propagateActivity(nl, 0.5, 0.2);
  for (int i = 0; i < nl.nodeCount(); ++i) {
    EXPECT_GE(act.probability[static_cast<std::size_t>(i)], 0.0);
    EXPECT_LE(act.probability[static_cast<std::size_t>(i)], 1.0);
    EXPECT_GE(act.activity[static_cast<std::size_t>(i)], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 17u, 123u, 9001u, 424242u));

}  // namespace
}  // namespace nano
