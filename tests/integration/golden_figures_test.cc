// Golden-figure regression suite: regenerates every figure/table series
// in-process and compares it against the CSVs committed under golden/
// (reference copies of the files the bench binaries write to the working
// directory). A drift in any model constant or experiment driver shows up
// here as a column-level diff instead of a silent change in the published
// numbers. Refresh the goldens with scripts/refresh_goldens.sh after an
// intentional model change.
//
// The goldens are written with util::formatCsvDouble (%.9g), so the
// comparison uses a small relative tolerance with a per-column override
// hook for columns that are legitimately noisier.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "core/experiments.h"
#include "interconnect/global_wiring.h"
#include "tech/itrs.h"
#include "util/csv.h"

#ifndef NANO_GOLDEN_DIR
#error "NANO_GOLDEN_DIR must point at the repo root holding the golden CSVs"
#endif

namespace nano {
namespace {

struct Series {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

struct Tolerance {
  double rtol = 1e-6;
  double atol = 5e-7;
};

/// Compare a freshly computed series against the committed golden CSV,
/// column by column. `overrides` maps header names to looser tolerances.
void expectMatchesGolden(const Series& fresh, const std::string& file,
                         const std::map<std::string, Tolerance>& overrides = {}) {
  const std::string path = std::string(NANO_GOLDEN_DIR) + "/" + file;
  util::CsvTable golden;
  ASSERT_NO_THROW(golden = util::readCsvFile(path)) << path;
  ASSERT_EQ(golden.header, fresh.header) << file << ": header drift";
  ASSERT_EQ(golden.rows.size(), fresh.rows.size()) << file << ": row count";
  for (std::size_t r = 0; r < fresh.rows.size(); ++r) {
    ASSERT_EQ(fresh.rows[r].size(), fresh.header.size());
    for (std::size_t c = 0; c < fresh.rows[r].size(); ++c) {
      const double want = golden.number(r, c);
      const double got = fresh.rows[r][c];
      if (std::isnan(want) && std::isnan(got)) continue;
      Tolerance tol;
      if (auto it = overrides.find(fresh.header[c]); it != overrides.end()) {
        tol = it->second;
      }
      const double bound = tol.atol + tol.rtol * std::abs(want);
      EXPECT_NEAR(got, want, bound)
          << file << " row " << r << " column " << fresh.header[c];
    }
  }
}

// Each builder mirrors the CSV block of the corresponding bench binary
// (bench/bench_fig*.cc, bench_table2.cc, bench_repeaters.cc) exactly:
// same driver call, same columns, same order.

Series figure1Series() {
  Series s{{"activity", "r70nm_09V", "r50nm_07V", "r50nm_06V"}, {}};
  for (const auto& p : core::computeFigure1(9)) {
    s.rows.push_back({p.activity, p.ratio70nm09V, p.ratio50nm07V,
                      p.ratio50nm06V});
  }
  return s;
}

Series figure2Series() {
  Series s{{"node_nm", "ion_gain_pct", "ioff_penalty"}, {}};
  for (const auto& p : core::computeFigure2()) {
    s.rows.push_back({static_cast<double>(p.nodeNm), p.ionGainPercent,
                      p.ioffPenaltyFor20});
  }
  return s;
}

Series figure3Series() {
  Series s{{"vdd", "delay_const", "delay_scaled", "delay_conservative",
            "vth_const", "vth_scaled", "vth_conservative"},
           {}};
  for (const auto& p : core::computeFigure34(35, 9, 0.1)) {
    s.rows.push_back({p.vdd, p.delayNorm[0], p.delayNorm[1], p.delayNorm[2],
                      p.vthDesign[0], p.vthDesign[1], p.vthDesign[2]});
  }
  return s;
}

Series figure4Series() {
  Series s{{"vdd", "ratio_const", "ratio_scaled", "ratio_conservative"}, {}};
  for (const auto& p : core::computeFigure34(35, 9, 0.1)) {
    s.rows.push_back({p.vdd, p.pdynOverPstat[0], p.pdynOverPstat[1],
                      p.pdynOverPstat[2]});
  }
  return s;
}

Series figure5Series(const powergrid::GridSolverOptions& solver = {}) {
  Series s{{"node_nm", "w_over_min_minpitch", "w_over_min_itrs",
            "routing_frac_minpitch", "routing_frac_itrs"},
           {}};
  for (const auto& r : core::computeFigure5(false, solver)) {
    s.rows.push_back({static_cast<double>(r.nodeNm), r.minPitch.widthOverMin,
                      r.itrs.widthOverMin, r.minPitch.routingFraction,
                      r.itrs.routingFraction});
  }
  return s;
}

Series table2Series() {
  Series s{{"node_nm", "vdd", "coxe_norm", "vth_model", "vth_paper",
            "ioff_model", "ioff_paper", "ioff_metal", "ioff_itrs"},
           {}};
  for (const auto& r : core::computeTable2().rows) {
    s.rows.push_back({static_cast<double>(r.nodeNm), r.vdd, r.coxeNorm,
                      r.vthRequired, r.paperVth, r.ioffNaUm, r.paperIoff,
                      r.ioffMetalNaUm, r.ioffItrsNaUm});
  }
  return s;
}

Series repeatersSeries() {
  Series s{{"node_nm", "repeaters", "power_w", "cycles_scaled",
            "cycles_unscaled"},
           {}};
  for (int f : tech::roadmapFeatures()) {
    const auto& node = tech::nodeByFeature(f);
    const auto rep = interconnect::analyzeGlobalWiring(node);
    interconnect::GlobalWiringOptions u;
    u.unscaledWires = true;
    const auto repU = interconnect::analyzeGlobalWiring(node, u);
    s.rows.push_back({static_cast<double>(f), rep.repeaterCount,
                      rep.power.total(), rep.cyclesToCrossDie,
                      repU.cyclesToCrossDie});
  }
  return s;
}

TEST(GoldenFigures, Figure1) { expectMatchesGolden(figure1Series(), "fig1.csv"); }

TEST(GoldenFigures, Figure2) { expectMatchesGolden(figure2Series(), "fig2.csv"); }

TEST(GoldenFigures, Figure3) { expectMatchesGolden(figure3Series(), "fig3.csv"); }

TEST(GoldenFigures, Figure4) { expectMatchesGolden(figure4Series(), "fig4.csv"); }

TEST(GoldenFigures, Figure5) { expectMatchesGolden(figure5Series(), "fig5.csv"); }

TEST(GoldenFigures, Table2) { expectMatchesGolden(table2Series(), "table2.csv"); }

TEST(GoldenFigures, Repeaters) {
  // Repeater counts are ~1e4-1e6; the absolute floor is irrelevant there
  // but keep the shared relative bound.
  expectMatchesGolden(repeatersSeries(), "repeaters.csv");
}

// Figure 5's rail widths are found by a closed-form solve, but the mesh
// cross-check re-solves every width on the waffle grid. The multigrid and
// Jacobi preconditioners must agree on those solves to well below the
// golden tolerance — this pins the acceptance bound of 1e-8 relative.
TEST(GoldenFigures, Figure5SolverChoiceIsInvisible) {
  powergrid::GridSolverOptions jacobi;
  jacobi.preconditioner = powergrid::PreconditionerKind::Jacobi;
  powergrid::GridSolverOptions multigrid;
  multigrid.preconditioner = powergrid::PreconditionerKind::Multigrid;
  const auto a = core::computeFigure5(true, jacobi);
  const auto b = core::computeFigure5(true, multigrid);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::vector<std::pair<double, double>> drops = {
        {a[i].minPitch.meshDropFraction, b[i].minPitch.meshDropFraction},
        {a[i].itrs.meshDropFraction, b[i].itrs.meshDropFraction}};
    for (const auto& [jacobiDrop, multigridDrop] : drops) {
      ASSERT_GT(jacobiDrop, 0.0);
      EXPECT_NEAR(multigridDrop, jacobiDrop, 1e-8 * jacobiDrop)
          << "node " << a[i].nodeNm;
    }
  }
}

}  // namespace
}  // namespace nano
