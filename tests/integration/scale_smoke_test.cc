// Scale smoke: the million-gate acceptance run of the SoA timing core.
// The 100k-gate variant runs in every CI tier; the full 1M-gate variant is
// heavyweight and only runs when NANO_SCALE=1 (the nightly scale job sets
// it). Both assert the three scale invariants:
//   - generation + mirror + full STA complete under a wall-clock ceiling,
//   - a second analyze() performs zero heap growth (arena steady state),
//   - results match the paper's slack-rich profile (over half of all
//     endpoints use less than half the cycle).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>

#include "circuit/generator.h"
#include "circuit/library.h"
#include "circuit/netlist.h"
#include "circuit/netlist_soa.h"
#include "obs/obs.h"
#include "sta/sta.h"
#include "tech/itrs.h"
#include "util/rng.h"

namespace nano {
namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void runScaleSmoke(int gates, double buildCeilingS, double staCeilingS) {
  const bool obsWasEnabled = obs::enabled();
  obs::setEnabled(true);  // the arena_bytes gauge check below needs obs on
  const circuit::Library library(tech::nodeByFeature(35));
  util::Rng rng(0x5CA1Eu);

  const auto buildStart = Clock::now();
  const circuit::Netlist netlist = circuit::pipelinedLogic(
      library, circuit::scaledConfig(gates), rng, 8);
  const circuit::NetlistSoA soa(netlist, {.keepCells = false});
  const double buildS = secondsSince(buildStart);

  ASSERT_GE(netlist.gateCount(), gates * 9 / 10);
  EXPECT_LT(buildS, buildCeilingS)
      << "generation + SoA mirror too slow at " << gates << " gates";

  sta::Sta engine(soa);
  const auto staStart = Clock::now();
  const sta::TimingResult& first = engine.analyze();
  const double staS = secondsSince(staStart);
  EXPECT_LT(staS, staCeilingS)
      << "full STA too slow at " << gates << " gates";
  EXPECT_GT(first.criticalPathDelay, 0.0);
  EXPECT_EQ(first.worstSlack, 0.0);  // timed against its own critical path

  // Steady state: re-analysis reuses every buffer — the growth counter is
  // the allocation proof (satellite acceptance criterion).
  const std::int64_t growthAfterFirst = engine.arenaGrowthCount();
  const double worstBefore = first.worstSlack;
  (void)engine.analyze();
  (void)engine.analyze();
  EXPECT_EQ(engine.arenaGrowthCount(), growthAfterFirst)
      << "steady-state analyze() grew the heap";
  EXPECT_EQ(engine.result().worstSlack, worstBefore);

  // The paper's slack profile survives the scale-up.
  const double fastHalf =
      sta::fractionOfPathsFasterThan(engine.result(), netlist, 0.5);
  EXPECT_GT(fastHalf, 0.5)
      << "generated profile lost its slack-rich shape at scale";

  // Memory accounting: the flat core reports its footprint via the
  // sta/arena_bytes gauge; at a million gates it must stay in the
  // hundreds-of-MB range (~flat arrays + CSR), not balloon.
  EXPECT_EQ(obs::MetricsRegistry::instance().gauge("sta/arena_bytes").value(),
            static_cast<double>(engine.arenaBytes()));
  const double bytesPerGate =
      static_cast<double>(engine.arenaBytes()) / netlist.gateCount();
  EXPECT_LT(bytesPerGate, 200.0) << "SoA footprint per gate regressed";
  obs::setEnabled(obsWasEnabled);
}

TEST(ScaleSmokeTest, HundredThousandGates) {
  runScaleSmoke(100000, /*buildCeilingS=*/30.0, /*staCeilingS=*/5.0);
}

TEST(ScaleSmokeTest, OneMillionGates) {
  if (const char* scale = std::getenv("NANO_SCALE");
      scale == nullptr || scale[0] != '1') {
    GTEST_SKIP() << "set NANO_SCALE=1 to run the million-gate smoke";
  }
  runScaleSmoke(1000000, /*buildCeilingS=*/240.0, /*staCeilingS=*/10.0);
}

}  // namespace
}  // namespace nano
