// Integration: the optimizer stack on structured arithmetic circuits
// (adders, multiplier) — realistic topologies with known critical
// structure, exercised end to end.
#include <gtest/gtest.h>

#include <sstream>

#include "circuit/generator.h"
#include "circuit/netlist_io.h"
#include "opt/combined.h"
#include "opt/simultaneous.h"
#include "power/state_leakage.h"
#include "sta/ssta.h"

namespace nano {
namespace {

using circuit::Library;
using circuit::Netlist;

const tech::TechNode& node70() { return tech::nodeByFeature(70); }

const Library& lib() {
  static const Library instance(node70());
  return instance;
}

TEST(StructuredCircuits, KoggeStoneAbsorbsFullFlowAtRippleClock) {
  const Netlist ripple = circuit::rippleCarryAdder(lib(), 16);
  const Netlist kogge = circuit::koggeStoneAdder(lib(), 16);
  opt::FlowOptions options;
  options.clockPeriod = sta::analyze(ripple).criticalPathDelay;
  const opt::FlowResult flow = opt::runFlow(kogge, lib(), options);
  EXPECT_TRUE(flow.stages.back().timing.meetsTiming());
  // Massive architectural slack: nearly everything moves to Vdd,l/HVT.
  EXPECT_GT(flow.stages.back().fractionLowVdd, 0.9);
  EXPECT_GT(flow.stages.back().fractionHighVth, 0.9);
  EXPECT_GT(flow.totalSavings(), 0.5);
}

TEST(StructuredCircuits, MultiplierSurvivesDualVth) {
  const Netlist mult = circuit::arrayMultiplier(lib(), 6);
  const opt::DualVthResult r = opt::runDualVth(mult, lib());
  EXPECT_TRUE(r.timingAfter.meetsTiming());
  EXPECT_GT(r.leakageSavings(), 0.2);
  // The multiplier's diagonal carries the critical path; off-diagonal
  // partial products have slack.
  EXPECT_GT(r.fractionHighVth, 0.2);
  EXPECT_LT(r.fractionHighVth, 1.0);
}

TEST(StructuredCircuits, AdderRoundTripsThroughVerilogAndText) {
  const Netlist adder = circuit::koggeStoneAdder(lib(), 8);
  std::ostringstream text;
  circuit::writeNetlist(text, adder);
  std::istringstream in(text.str());
  const Netlist copy = circuit::readNetlist(in, lib());
  EXPECT_EQ(copy.gateCount(), adder.gateCount());
  const auto t1 = sta::analyze(adder);
  const auto t2 = sta::analyze(copy);
  EXPECT_NEAR(t2.criticalPathDelay, t1.criticalPathDelay,
              1e-12 * t1.criticalPathDelay);
}

TEST(StructuredCircuits, SimultaneousOptimizerOnAdder) {
  const Netlist adder = circuit::rippleCarryAdder(lib(), 8);
  opt::SimultaneousOptions options;
  options.clockPeriod = 1.3 * sta::analyze(adder).criticalPathDelay;
  const opt::SimultaneousResult r =
      opt::runSimultaneous(adder, lib(), options);
  EXPECT_TRUE(r.timingAfter.meetsTiming());
  EXPECT_GT(r.powerSavings(), 0.1);
}

TEST(StructuredCircuits, StateLeakageOnAdder) {
  // NAND-only decomposition: strong state dependence, so input-vector
  // bounds must show real headroom.
  const Netlist adder = circuit::rippleCarryAdder(lib(), 8);
  const auto bounds = power::leakageStateBounds(adder, node70());
  EXPECT_GT(bounds.maximum / bounds.minimum, 2.0);
  const auto act = power::propagateActivity(adder);
  const double aware = power::stateAwareLeakage(adder, node70(), act);
  EXPECT_GT(aware, bounds.minimum);
  EXPECT_LT(aware, bounds.maximum);
}

TEST(StructuredCircuits, SstaOnCarryChain) {
  // The ripple carry chain is one long path: sigma should behave like a
  // chain (grow with bit count).
  const Netlist small = circuit::rippleCarryAdder(lib(), 4);
  const Netlist big = circuit::rippleCarryAdder(lib(), 16);
  const auto s1 = sta::analyzeStatistical(small, node70());
  const auto s2 = sta::analyzeStatistical(big, node70());
  EXPECT_GT(s2.criticalSigma, 1.5 * s1.criticalSigma);
  EXPECT_GT(s2.criticalMean, 3.0 * s1.criticalMean);
}

}  // namespace
}  // namespace nano
