// Integration tests across modules: full low-power flows on structured
// circuits, thermal budgets driven by real power rollups, and consistency
// between the system-level estimates and the underlying models.
#include <gtest/gtest.h>

#include "circuit/generator.h"
#include "core/analysis.h"
#include "opt/combined.h"
#include "power/power_model.h"
#include "sta/sta.h"
#include "thermal/cooling_cost.h"
#include "thermal/dtm.h"
#include "util/units.h"

namespace nano {
namespace {

using namespace nano::units;

TEST(EndToEnd, AdderFlowKeepsFunctionalStructure) {
  // Run the full multi-Vdd + dual-Vth + sizing flow on a ripple-carry
  // adder and verify structure, timing and a real power win.
  circuit::Library lib(tech::nodeByFeature(70));
  const circuit::Netlist adder = circuit::rippleCarryAdder(lib, 12);
  // Relax the clock 40 % over the carry-chain-limited critical path so the
  // optimizers have slack to spend (registers would pipeline a real one).
  opt::FlowOptions options;
  options.clockPeriod = 1.4 * sta::analyze(adder).criticalPathDelay;
  const opt::FlowResult flow = opt::runFlow(adder, lib, options);
  EXPECT_TRUE(flow.stages.back().timing.meetsTiming());
  EXPECT_GT(flow.totalSavings(), 0.2);
  EXPECT_TRUE(flow.netlist.vddViolations().empty());
  // Sums and carry still present.
  EXPECT_GE(flow.netlist.outputs().size(), 13u);
}

TEST(EndToEnd, NetlistPowerDensityFeedsThermalModel) {
  // Build a block, compute its power, scale to a die of such blocks, and
  // check the packaging story end to end.
  const auto& node = tech::nodeByFeature(70);
  circuit::Library lib(node);
  util::Rng rng(7);
  circuit::GeneratorConfig cfg;
  cfg.gates = 1000;
  const circuit::Netlist block = circuit::pipelinedLogic(lib, cfg, rng, 4);
  const auto power = power::computePower(block, node.clockLocal, 0.15);

  // Blocks needed to fill the die's logic transistor budget.
  const double blocksPerDie =
      static_cast<double>(node.logicTransistors) / (4.0 * cfg.gates);
  const double chipPower = power.total() * blocksPerDie;
  // Same order as the roadmap's power projection (model is per-gate
  // average, so allow a wide band).
  EXPECT_GT(chipPower, 0.1 * node.maxPower);
  EXPECT_LT(chipPower, 10.0 * node.maxPower);

  // That chip power needs serious packaging at Tj 85 C.
  const double theta =
      thermal::requiredThetaJa(std::min(chipPower, 250.0), node.tjMax,
                               node.tAmbient);
  EXPECT_LT(theta, 1.0);
}

TEST(EndToEnd, DtmEnablesCheaperPackageForNetlistWorkload) {
  // Package for the effective worst case of a synthetic workload, then
  // verify with the closed-loop DTM simulation that the junction limit
  // holds even under a virus.
  const double worstCase = 100.0;
  const auto savings =
      thermal::dtmCostSavings(worstCase, units::fromCelsius(85.0),
                              units::fromCelsius(45.0));
  const thermal::ThermalPackage pkg(savings.thetaJaEffective, 0.02);
  thermal::DtmPolicy policy;
  policy.tripTemperature = units::fromCelsius(83.0);
  const auto result = thermal::simulateDtm(
      pkg, thermal::powerVirus(0.3), worstCase, units::fromCelsius(45.0),
      policy);
  EXPECT_LT(result.maxTemperature, units::fromCelsius(86.0));
  EXPECT_LT(savings.costEffectiveUsd, savings.costTheoreticalUsd);
}

TEST(EndToEnd, NodeSummariesCoverEveryRoadmapNode) {
  for (int f : tech::roadmapFeatures()) {
    const core::NodeSummary s = core::summarizeNode(f);
    EXPECT_NEAR(s.ionUaUm, 750.0, 1.0) << f;
    EXPECT_GT(s.fo4DelayPs, 0.0) << f;
    EXPECT_GT(s.wiring.repeaterCount, 0.0) << f;
    EXPECT_GT(s.gridItrs.widthOverMin, s.gridMinPitch.widthOverMin) << f;
  }
}

TEST(EndToEnd, LeakageBudgetStoryAt35nm) {
  // ITRS caps static power at 10 % of total: with the Table-2 Vth the
  // 35 nm budget implies huge standby current, motivating dual-Vth. Check
  // the chain: Ioff/um * total device width vs the 30 A budget.
  const core::NodeSummary s = core::summarizeNode(35);
  // Total NMOS width on die: transistors/2 * ~3 squares average width.
  const double totalWidth = static_cast<double>(s.node->logicTransistors) /
                            2.0 * 3.0 * 35e-9;
  const double standbyCurrent = s.ioffNaUm * nA_per_um * totalWidth;
  // Unchecked single-Vth leakage blows the 30 A budget.
  EXPECT_GT(standbyCurrent, s.standbyCurrentBudgetA);
  // A 15x dual-Vth reduction on 80 % of width brings it within ~an order.
  const double afterDualVth = standbyCurrent * (0.2 + 0.8 / 15.0);
  EXPECT_LT(afterDualVth, 10.0 * s.standbyCurrentBudgetA);
}

}  // namespace
}  // namespace nano
