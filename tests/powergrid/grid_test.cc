#include "powergrid/grid_model.h"

#include <gtest/gtest.h>

#include "powergrid/irdrop.h"

namespace nano::powergrid {
namespace {

GridConfig baseConfig() {
  GridConfig cfg;
  cfg.railPitch = 160e-6;
  cfg.bumpPitch = 160e-6;
  cfg.railWidth = 2e-6;
  cfg.railSheetResistance = 0.05;
  cfg.supplyVoltage = 1.0;
  cfg.powerDensity = 5e5;
  cfg.hotspotFactor = 1.0;
  cfg.hotspotCellsRail = 0;
  cfg.tilesX = 2;
  cfg.tilesY = 2;
  cfg.subdivisions = 8;
  return cfg;
}

TEST(Grid, SolvesAndDropPositive) {
  const GridSolution sol = solveGrid(baseConfig());
  EXPECT_GT(sol.maxDrop, 0.0);
  EXPECT_LT(sol.maxDropFraction, 1.0);
  EXPECT_GT(sol.unknowns, 0u);
}

TEST(Grid, WiderRailsLowerDrop) {
  GridConfig cfg = baseConfig();
  const GridSolution narrow = solveGrid(cfg);
  cfg.railWidth *= 4.0;
  const GridSolution wide = solveGrid(cfg);
  EXPECT_NEAR(narrow.maxDrop / wide.maxDrop, 4.0, 0.05);
}

TEST(Grid, DropQuadraticInBumpPitch) {
  // The closed-form scaling law the mesh must reproduce: doubling both
  // rail and bump pitch doubles lambda and quadruples the span, so the
  // drop grows ~8x at fixed width... but since rails also serve a 2x
  // strip, the mesh sees lambda*p^2 ~ p^3.
  GridConfig cfg = baseConfig();
  const GridSolution base = solveGrid(cfg);
  cfg.railPitch *= 2.0;
  cfg.bumpPitch *= 2.0;
  const GridSolution coarse = solveGrid(cfg);
  EXPECT_NEAR(coarse.maxDrop / base.maxDrop, 8.0, 1.5);
}

TEST(Grid, HotspotRaisesDrop) {
  GridConfig cfg = baseConfig();
  cfg.tilesX = cfg.tilesY = 3;
  const GridSolution uniform = solveGrid(cfg);
  cfg.hotspotFactor = 4.0;
  cfg.hotspotCellsRail = 1;
  const GridSolution hot = solveGrid(cfg);
  EXPECT_GT(hot.maxDrop, 1.5 * uniform.maxDrop);
  EXPECT_LT(hot.maxDrop, 4.5 * uniform.maxDrop);
}

TEST(Grid, FinerMeshConverges) {
  GridConfig cfg = baseConfig();
  cfg.subdivisions = 4;
  const GridSolution coarse = solveGrid(cfg);
  cfg.subdivisions = 16;
  const GridSolution fine = solveGrid(cfg);
  EXPECT_NEAR(coarse.maxDrop, fine.maxDrop, 0.1 * fine.maxDrop);
}

TEST(Grid, MatchesClosedFormWithLateralSharing) {
  // The 2-D waffle shares each cell's current between the X and Y rails,
  // so the mesh drop is ~half the 1-D closed-form rail drop.
  GridConfig cfg = baseConfig();
  const GridSolution sol = solveGrid(cfg);
  const double closed =
      railMaxDrop(cfg.railWidth, cfg.railPitch, cfg.bumpPitch,
                  cfg.railSheetResistance, cfg.powerDensity, 1.0,
                  cfg.supplyVoltage);
  EXPECT_NEAR(sol.maxDrop / closed, 0.5, 0.08);
}

TEST(Grid, Rejections) {
  GridConfig cfg = baseConfig();
  cfg.railWidth = 0.0;
  EXPECT_THROW(solveGrid(cfg), std::invalid_argument);
  cfg = baseConfig();
  cfg.subdivisions = 1;
  EXPECT_THROW(solveGrid(cfg), std::invalid_argument);
  cfg = baseConfig();
  cfg.bumpPitch = 0.5 * cfg.railPitch;
  EXPECT_THROW(solveGrid(cfg), std::invalid_argument);
}

TEST(GridConfigForNode, EncodesInterleavingConvention) {
  const auto& node = tech::nodeByFeature(35);
  const GridConfig cfg = gridConfigForNode(node, 4.0, 80e-6);
  EXPECT_DOUBLE_EQ(cfg.railPitch, 160e-6);
  EXPECT_DOUBLE_EQ(cfg.railWidth, 4.0 * node.minGlobalWireWidth());
  EXPECT_DOUBLE_EQ(cfg.supplyVoltage, node.vdd);
}

}  // namespace
}  // namespace nano::powergrid
