#include "powergrid/irdrop.h"

#include <gtest/gtest.h>

namespace nano::powergrid {
namespace {

TEST(RailMaxDrop, ClosedFormArithmetic) {
  // lambda = q*P*p/V; drop = lambda * (Rs/W) * p^2 / 8.
  const double drop = railMaxDrop(1e-6, 100e-6, 200e-6, 0.05, 1e6, 2.0, 1.0);
  const double lambda = 2.0 * 1e6 * 100e-6 / 1.0;
  EXPECT_NEAR(drop, lambda * (0.05 / 1e-6) * 200e-6 * 200e-6 / 8.0, 1e-12);
}

TEST(RailMaxDrop, InverseInWidth) {
  const double d1 = railMaxDrop(1e-6, 1e-4, 1e-4, 0.05, 1e6, 4.0, 1.0);
  const double d2 = railMaxDrop(2e-6, 1e-4, 1e-4, 0.05, 1e6, 4.0, 1.0);
  EXPECT_NEAR(d1 / d2, 2.0, 1e-9);
  EXPECT_THROW(railMaxDrop(0.0, 1e-4, 1e-4, 0.05, 1e6, 4.0, 1.0),
               std::invalid_argument);
}

TEST(RequiredLinewidth, DropEqualsBudgetAtSolvedWidth) {
  const auto& node = tech::nodeByFeature(50);
  IrDropOptions opt;
  const IrDropReport rep = requiredLinewidth(node, node.minBumpPitch, opt);
  const double sheet = node.metalResistivity / node.globalWireThickness();
  const double drop =
      railMaxDrop(rep.requiredWidth, rep.railPitch, rep.railPitch, sheet,
                  node.powerDensity(), opt.hotspotFactor, node.vdd);
  EXPECT_NEAR(drop, opt.budgetFraction * node.vdd, 1e-9);
}

TEST(RequiredLinewidth, CubicInPitch) {
  const auto& node = tech::nodeByFeature(35);
  const IrDropReport a = requiredLinewidth(node, 100e-6);
  const IrDropReport b = requiredLinewidth(node, 200e-6);
  EXPECT_NEAR(b.requiredWidth / a.requiredWidth, 8.0, 1e-6);
}

TEST(Figure5, MinPitchStaysManageable) {
  // Paper: even at 35 nm the min-pitch rails are ~16x minimum width and a
  // few percent of routing. Our model: ~10x and < 5 %.
  for (int f : tech::roadmapFeatures()) {
    const IrDropReport rep = minPitchReport(tech::nodeByFeature(f));
    EXPECT_LT(rep.widthOverMin, 25.0) << f;
    EXPECT_LT(rep.routingFraction, 0.06) << f;
  }
}

TEST(Figure5, ItrsPadCountsExplode) {
  // Paper: with ITRS pad counts the required width explodes (>2000x in the
  // paper; our calibration lands in the hundreds) and becomes a large
  // fraction of all routing.
  const IrDropReport rep = itrsPitchReport(tech::nodeByFeature(35));
  EXPECT_GT(rep.widthOverMin, 400.0);
  EXPECT_GT(rep.routingFraction, 0.3);
  EXPECT_GT(rep.widthOverMin /
                minPitchReport(tech::nodeByFeature(35)).widthOverMin,
            50.0);
}

TEST(Figure5, MinPitchTrendRoughlyQuadraticThen35Relaxes) {
  // Paper: "35 nm is less restricted than 50 nm due to a reduction in
  // power density at 35 nm" (the area jumps 15 % while power is flat).
  const double w50 = minPitchReport(tech::nodeByFeature(50)).widthOverMin;
  const double w35 = minPitchReport(tech::nodeByFeature(35)).widthOverMin;
  EXPECT_LE(w35, w50 * 1.05);
  // And the overall trend rises steeply from 180 nm.
  const double w180 = minPitchReport(tech::nodeByFeature(180)).widthOverMin;
  EXPECT_GT(w50 / w180, 2.0);
}

TEST(Figure5, BumpCurrentExceedsItrsCapability) {
  // Paper: ITRS bump current capability is incompatible with a 300 A part
  // on 1500 Vdd bumps.
  const IrDropReport rep = itrsPitchReport(tech::nodeByFeature(35));
  EXPECT_FALSE(rep.bumpCurrentOk);
  EXPECT_GT(rep.bumpCurrent, tech::nodeByFeature(35).bumpCurrentLimit);
}

TEST(Figure5, MeshCrossCheckWithinFactorTwo) {
  // The mesh (with lateral sharing) must land within ~2x of the 1-D
  // closed-form budget at the solved width.
  IrDropOptions opt;
  opt.runMesh = true;
  const IrDropReport rep =
      requiredLinewidth(tech::nodeByFeature(70), 110e-6, opt);
  EXPECT_GT(rep.meshDropFraction, 0.3 * opt.budgetFraction);
  EXPECT_LT(rep.meshDropFraction, 1.2 * opt.budgetFraction);
}

TEST(Figure5, VddBumpCountConsistentWithPitch) {
  const auto& node = tech::nodeByFeature(35);
  const IrDropReport rep = itrsPitchReport(node);
  EXPECT_NEAR(rep.vddBumpCount,
              node.dieArea / (rep.railPitch * rep.railPitch), 1.0);
  // About the paper's 1500 Vdd bumps (we derive ~1100 from the pad pitch).
  EXPECT_GT(rep.vddBumpCount, 700);
  EXPECT_LT(rep.vddBumpCount, 2000);
}

TEST(RequiredLinewidth, RejectsBadPitch) {
  EXPECT_THROW(requiredLinewidth(tech::nodeByFeature(50), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace nano::powergrid
