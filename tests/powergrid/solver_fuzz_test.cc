// Fuzz-style property tests for the CG solver and the grid/thermal meshes:
// random SPD systems solved against a dense reference, and conservation
// properties that must hold for any random configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "powergrid/grid_model.h"
#include "powergrid/solver.h"
#include "util/rng.h"

namespace nano::powergrid {
namespace {

/// Dense Gaussian elimination reference for small systems.
std::vector<double> denseSolve(std::vector<std::vector<double>> a,
                               std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a[i][c] * x[c];
    x[i] = sum / a[i][i];
  }
  return x;
}

class CgFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CgFuzz, MatchesDenseReferenceOnRandomLaplacians) {
  util::Rng rng(GetParam());
  const std::size_t n = 20;
  // Random connected resistive network: ring + random chords, random
  // grounding conductances (makes it strictly SPD).
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
  SparseSpd sparse(n);
  auto stamp = [&](std::size_t i, std::size_t j, double g) {
    dense[i][i] += g;
    dense[j][j] += g;
    dense[i][j] -= g;
    dense[j][i] -= g;
    sparse.addDiagonal(i, g);
    sparse.addDiagonal(j, g);
    sparse.addOffDiagonal(i, j, -g);
  };
  for (std::size_t i = 0; i < n; ++i) {
    stamp(i, (i + 1) % n, rng.uniform(0.5, 5.0));
    const double gGround = rng.uniform(0.01, 0.5);
    dense[i][i] += gGround;
    sparse.addDiagonal(i, gGround);
  }
  for (int k = 0; k < 10; ++k) {
    const auto i = static_cast<std::size_t>(rng.uniformInt(0, n - 1));
    const auto j = static_cast<std::size_t>(rng.uniformInt(0, n - 1));
    if (i != j) stamp(std::min(i, j), std::max(i, j), rng.uniform(0.1, 2.0));
  }
  sparse.finalize();

  std::vector<double> b(n);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);

  const CgResult cg = solveCg(sparse, b, 1e-12);
  ASSERT_TRUE(cg.converged);
  const std::vector<double> ref = denseSolve(dense, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(cg.x[i], ref[i], 1e-6 * (1.0 + std::abs(ref[i]))) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgFuzz,
                         ::testing::Values(3u, 33u, 333u, 3333u));

class GridFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridFuzz, CurrentConservation) {
  // For any random grid configuration, the total current delivered by the
  // bumps equals the total load: check via the drop-weighted conductance
  // sum identity P_dissipated = sum_i I_i * V_i (Tellegen).
  util::Rng rng(GetParam());
  GridConfig cfg;
  cfg.railPitch = rng.uniform(50e-6, 200e-6);
  cfg.bumpPitch = cfg.railPitch * rng.uniformInt(1, 3);
  cfg.railWidth = rng.uniform(0.5e-6, 5e-6);
  cfg.railSheetResistance = rng.uniform(0.02, 0.1);
  cfg.supplyVoltage = rng.uniform(0.6, 1.8);
  cfg.powerDensity = rng.uniform(1e5, 1e6);
  cfg.hotspotFactor = rng.uniform(1.0, 5.0);
  cfg.hotspotCellsRail = rng.uniformInt(0, 1);
  cfg.tilesX = cfg.tilesY = 2;
  cfg.subdivisions = 6;
  const GridSolution sol = solveGrid(cfg);
  EXPECT_GT(sol.maxDrop, 0.0);
  EXPECT_LT(sol.maxDropFraction, 1.0);
  // Drops scale linearly with power density: re-solve at 2x.
  GridConfig doubled = cfg;
  doubled.powerDensity *= 2.0;
  const GridSolution sol2 = solveGrid(doubled);
  EXPECT_NEAR(sol2.maxDrop / sol.maxDrop, 2.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridFuzz,
                         ::testing::Values(7u, 77u, 777u, 7777u));

}  // namespace
}  // namespace nano::powergrid
