// Multigrid hierarchy: topology coarsening, the compact mesh index,
// transfer-operator properties (R = c * P^T), V-cycle preconditioned CG
// vs the Jacobi baseline, mesh-independent convergence, and the
// GridModel assembly cache.
#include "powergrid/multigrid.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "obs/obs.h"
#include "powergrid/grid_model.h"
#include "util/rng.h"

namespace {

using nano::powergrid::GridConfig;
using nano::powergrid::GridModel;
using nano::powergrid::GridSolution;
using nano::powergrid::GridSolverOptions;
using nano::powergrid::GridTopology;
using nano::powergrid::MeshIndex;
using nano::powergrid::MultigridHierarchy;
using nano::powergrid::MultigridOptions;
using nano::powergrid::PreconditionerKind;
using nano::powergrid::SmootherKind;
using nano::powergrid::solveGrid;

GridConfig mediumConfig(int subdivisions, int tilesX = 2, int tilesY = 2) {
  GridConfig cfg;
  cfg.railPitch = 160e-6;
  cfg.bumpPitch = 320e-6;  // two rails per bump span
  cfg.tilesX = tilesX;
  cfg.tilesY = tilesY;
  cfg.subdivisions = subdivisions;
  cfg.hotspotCellsRail = 1;
  return cfg;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

TEST(GridTopology, CoarseningHalvesSubdivisionThenRails) {
  GridTopology t{3, 3, 8, 1};
  ASSERT_TRUE(t.canCoarsen());
  t = t.coarsened();
  EXPECT_EQ(t.subdivisions, 4);
  ASSERT_TRUE(t.canCoarsen());
  t = t.coarsened();
  EXPECT_EQ(t.subdivisions, 2);
  // One more halving would make every node a bump (bump step 1).
  EXPECT_FALSE(t.canCoarsen());

  GridTopology full{2, 2, 1, 4};
  ASSERT_TRUE(full.canCoarsen());
  full = full.coarsened();
  EXPECT_EQ(full.railsPerBump, 2);
  EXPECT_EQ(full.subdivisions, 1);
  EXPECT_FALSE(full.canCoarsen());
}

TEST(GridTopology, OddSubdivisionCannotCoarsen) {
  EXPECT_FALSE((GridTopology{2, 2, 3, 2}).canCoarsen());
  EXPECT_THROW(static_cast<void>((GridTopology{2, 2, 3, 2}).coarsened()),
               std::logic_error);
}

TEST(MeshIndex, MatchesBruteForceEnumeration) {
  for (const GridTopology topo :
       {GridTopology{2, 2, 4, 2}, GridTopology{1, 3, 8, 1},
        GridTopology{3, 2, 2, 4}, GridTopology{2, 2, 1, 4}}) {
    const MeshIndex index(topo);
    const int nx = topo.nx();
    const int ny = topo.ny();
    const int sub = topo.subdivisions;
    const int bs = topo.bumpStep();
    long next = 0;
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const bool onRail = (y % sub == 0) || (x % sub == 0);
        const bool bump = (x % bs == 0) && (y % bs == 0);
        const long expected = (onRail && !bump) ? next++ : -1;
        EXPECT_EQ(index.unknownAt(x, y), expected)
            << "topo sub=" << sub << " rpb=" << topo.railsPerBump << " at ("
            << x << ", " << y << ")";
      }
    }
    EXPECT_EQ(index.unknownCount(), static_cast<std::size_t>(next));
  }
}

TEST(MeshIndex, OutOfRangeIsNotAnUnknown) {
  const MeshIndex index(GridTopology{2, 2, 4, 1});
  EXPECT_EQ(index.unknownAt(-1, 0), -1);
  EXPECT_EQ(index.unknownAt(0, -1), -1);
  EXPECT_EQ(index.unknownAt(index.topology().nx(), 0), -1);
}

// Deep hierarchy reaching both transfer flavors: rail-subdivision levels
// (scale 0.5) down to subdivisions == 1, then a bilinear rail-halving
// level (scale 0.25).
TEST(MultigridHierarchy, RestrictionIsScaledProlongationTranspose) {
  const GridConfig cfg = mediumConfig(16, 2, 2);
  GridConfig wide = cfg;
  wide.bumpPitch = 4 * wide.railPitch;  // four rails per bump
  const auto model = GridModel::forConfig(wide);
  MultigridOptions opt;
  opt.coarseTarget = 8;  // coarsen as deep as the topology allows
  const MultigridHierarchy mg(model->unitLaplacian(), model->topology(), opt);

  ASSERT_GE(mg.levelCount(), 5);
  // Rail levels use c = 0.5; the final full-lattice level uses 0.25.
  for (int l = 0; l + 1 < mg.levelCount(); ++l) {
    const double c = mg.restrictionScale(l);
    if (mg.levelTopology(l).subdivisions > 1) {
      EXPECT_DOUBLE_EQ(c, 0.5) << "level " << l;
    } else {
      EXPECT_DOUBLE_EQ(c, 0.25) << "level " << l;
    }
  }
  EXPECT_EQ(mg.levelTopology(mg.levelCount() - 1).subdivisions, 1);
  EXPECT_EQ(mg.levelTopology(mg.levelCount() - 1).railsPerBump, 2);

  nano::util::Rng rng(7);
  for (int l = 0; l + 1 < mg.levelCount(); ++l) {
    const std::size_t nf = mg.levelUnknowns(l);
    const std::size_t nc = mg.levelUnknowns(l + 1);
    ASSERT_LT(nc, nf) << "level " << l;
    std::vector<double> v(nf), w(nc);
    for (double& x : v) x = rng.uniform(-1.0, 1.0);
    for (double& x : w) x = rng.uniform(-1.0, 1.0);
    std::vector<double> rv, pw;
    mg.applyRestriction(l, v, rv);
    mg.applyProlongation(l, w, pw);
    ASSERT_EQ(rv.size(), nc);
    ASSERT_EQ(pw.size(), nf);
    // <R v, w> = c <v, P w> with R = c * P^T.
    const double lhs = dot(rv, w);
    const double rhs = mg.restrictionScale(l) * dot(v, pw);
    EXPECT_NEAR(lhs, rhs, 1e-12 * (1.0 + std::abs(lhs)))
        << "adjoint identity broken at level " << l;
  }
}

TEST(MultigridHierarchy, RedBlackColoringVerifiedOnEveryLevel) {
  GridConfig cfg = mediumConfig(16);
  cfg.bumpPitch = 4 * cfg.railPitch;
  const auto model = GridModel::forConfig(cfg);
  MultigridOptions opt;
  opt.coarseTarget = 8;
  const MultigridHierarchy mg(model->unitLaplacian(), model->topology(), opt);
  // The rail stencils are bipartite and the bilinear Galerkin levels
  // 4-colorable, so the requested Gauss-Seidel smoother must never have
  // degraded to Jacobi.
  for (int l = 0; l < mg.levelCount(); ++l) {
    EXPECT_EQ(mg.levelSmoother(l), SmootherKind::RedBlackGaussSeidel)
        << "level " << l;
  }
}

TEST(MultigridHierarchy, RejectsMismatchedMatrix) {
  const auto model = GridModel::forConfig(mediumConfig(8));
  const GridTopology wrong{model->topology().tilesX, model->topology().tilesY,
                           model->topology().subdivisions * 2,
                           model->topology().railsPerBump};
  EXPECT_THROW(MultigridHierarchy(model->unitLaplacian(), wrong),
               std::invalid_argument);
}

TEST(MultigridSolve, MatchesJacobiSolution) {
  const GridConfig cfg = mediumConfig(32);
  GridSolverOptions jacobi;
  jacobi.preconditioner = PreconditionerKind::Jacobi;
  GridSolverOptions multigrid;
  multigrid.preconditioner = PreconditionerKind::Multigrid;

  const GridSolution a = solveGrid(cfg, jacobi);
  const GridSolution b = solveGrid(cfg, multigrid);
  ASSERT_TRUE(a.cgConverged);
  ASSERT_TRUE(b.cgConverged);
  EXPECT_EQ(a.preconditioner, "jacobi");
  EXPECT_EQ(b.preconditioner, "multigrid");
  EXPECT_FALSE(b.mgFellBack);
  EXPECT_GE(b.mgLevels, 2);
  EXPECT_NEAR(a.maxDrop, b.maxDrop, 1e-8 * a.maxDrop);
  ASSERT_EQ(a.dropV.size(), b.dropV.size());
  for (std::size_t i = 0; i < a.dropV.size(); ++i) {
    ASSERT_NEAR(a.dropV[i], b.dropV[i], 1e-8 * a.maxDrop) << "node " << i;
  }
}

TEST(MultigridSolve, MatchesJacobiOnAsymmetricWindow) {
  const GridConfig cfg = mediumConfig(16, 3, 2);
  GridSolverOptions jacobi;
  jacobi.preconditioner = PreconditionerKind::Jacobi;
  GridSolverOptions multigrid;
  multigrid.preconditioner = PreconditionerKind::Multigrid;
  const GridSolution a = solveGrid(cfg, jacobi);
  const GridSolution b = solveGrid(cfg, multigrid);
  ASSERT_TRUE(a.cgConverged);
  ASSERT_TRUE(b.cgConverged);
  EXPECT_NEAR(a.maxDrop, b.maxDrop, 1e-8 * a.maxDrop);
}

TEST(MultigridSolve, WeightedJacobiSmootherAlsoConverges) {
  const GridConfig cfg = mediumConfig(32);
  GridSolverOptions baseline;
  baseline.preconditioner = PreconditionerKind::Jacobi;
  GridSolverOptions mg;
  mg.preconditioner = PreconditionerKind::Multigrid;
  mg.multigrid.smoother = SmootherKind::WeightedJacobi;
  const GridSolution a = solveGrid(cfg, baseline);
  const GridSolution b = solveGrid(cfg, mg);
  ASSERT_TRUE(b.cgConverged);
  EXPECT_FALSE(b.mgFellBack);
  EXPECT_NEAR(a.maxDrop, b.maxDrop, 1e-8 * a.maxDrop);
}

TEST(MultigridSolve, IterationCountIsMeshIndependent) {
  GridSolverOptions mgOpt;
  mgOpt.preconditioner = PreconditionerKind::Multigrid;
  GridSolverOptions jacobiOpt;
  jacobiOpt.preconditioner = PreconditionerKind::Jacobi;

  int minIters = 1 << 30;
  int maxIters = 0;
  int jacobiAtLargest = 0;
  int mgAtLargest = 0;
  for (const int sub : {16, 32, 64}) {
    const GridConfig cfg = mediumConfig(sub);
    const GridSolution mg = solveGrid(cfg, mgOpt);
    ASSERT_TRUE(mg.cgConverged) << "sub " << sub;
    minIters = std::min(minIters, mg.cgIterations);
    maxIters = std::max(maxIters, mg.cgIterations);
    mgAtLargest = mg.cgIterations;
    if (sub == 64) {
      jacobiAtLargest = solveGrid(cfg, jacobiOpt).cgIterations;
    }
  }
  // Quadrupling the mesh should leave the preconditioned iteration count
  // essentially flat; Jacobi's grows with the mesh diameter.
  EXPECT_LE(maxIters, 30);
  EXPECT_LE(maxIters, 2 * minIters);
  EXPECT_GT(jacobiAtLargest, 5 * mgAtLargest);
}

TEST(MultigridSolve, TinyGridUsesDirectCoarseSolve) {
  // Below the coarse target the "hierarchy" is a single level solved by
  // the dense factorization, so CG needs only a couple of iterations.
  const GridConfig cfg = mediumConfig(8);
  GridSolverOptions opt;
  opt.preconditioner = PreconditionerKind::Multigrid;
  const GridSolution sol = solveGrid(cfg, opt);
  ASSERT_TRUE(sol.cgConverged);
  EXPECT_EQ(sol.mgLevels, 1);
  EXPECT_LE(sol.cgIterations, 3);
}

TEST(MultigridSolve, AutoPicksJacobiForSmallGrids) {
  const GridSolution sol = solveGrid(mediumConfig(8));
  ASSERT_TRUE(sol.cgConverged);
  EXPECT_EQ(sol.preconditioner, "jacobi");
  EXPECT_EQ(sol.mgLevels, 0);
}

TEST(GridModelCache, AssemblesOncePerTopology) {
  const bool wasEnabled = nano::obs::enabled();
  nano::obs::setEnabled(true);
  auto& registry = nano::obs::MetricsRegistry::instance();
  registry.reset();
  GridModel::clearCache();

  const GridConfig cfg = mediumConfig(8);
  (void)solveGrid(cfg);
  GridConfig electrical = cfg;
  electrical.railWidth *= 3.0;       // only the scalar conductance changes
  electrical.powerDensity *= 0.5;    // only the load vector changes
  (void)solveGrid(electrical);
  (void)solveGrid(cfg);

  EXPECT_EQ(registry.counter("powergrid/grid_assemblies").value(), 1);
  EXPECT_EQ(registry.counter("powergrid/grid_assembly_reuses").value(), 2);

  GridConfig finer = cfg;
  finer.subdivisions = 16;           // new topology: one more assembly
  (void)solveGrid(finer);
  EXPECT_EQ(registry.counter("powergrid/grid_assemblies").value(), 2);

  registry.reset();
  GridModel::clearCache();
  nano::obs::setEnabled(wasEnabled);
}

TEST(GridModelCache, ScalingRailWidthScalesDropExactly) {
  // With the matrix cached as a unit Laplacian, conductance enters only
  // through the rhs scale — doubling the rail width must exactly halve
  // the drop (same discrete solution, scaled).
  const GridConfig cfg = mediumConfig(8);
  GridConfig doubled = cfg;
  doubled.railWidth *= 2.0;
  const GridSolution a = solveGrid(cfg);
  const GridSolution b = solveGrid(doubled);
  ASSERT_TRUE(a.cgConverged);
  ASSERT_TRUE(b.cgConverged);
  EXPECT_NEAR(b.maxDrop, 0.5 * a.maxDrop, 1e-9 * a.maxDrop);
}

TEST(MultigridObs, VcycleCounterAdvances) {
  const bool wasEnabled = nano::obs::enabled();
  nano::obs::setEnabled(true);
  auto& registry = nano::obs::MetricsRegistry::instance();
  registry.reset();
  GridModel::clearCache();

  GridSolverOptions opt;
  opt.preconditioner = PreconditionerKind::Multigrid;
  const GridSolution sol = solveGrid(mediumConfig(32), opt);
  ASSERT_TRUE(sol.cgConverged);
  // One V-cycle per CG iteration plus the seed application.
  EXPECT_GE(registry.counter("powergrid/mg_vcycles").value(),
            sol.cgIterations);
  EXPECT_EQ(registry.counter("powergrid/mg_fallback").value(), 0);
  EXPECT_GE(registry.gauge("powergrid/mg_levels").value(), 2.0);

  registry.reset();
  GridModel::clearCache();
  nano::obs::setEnabled(wasEnabled);
}

}  // namespace
