#include "powergrid/transient.h"

#include <gtest/gtest.h>

namespace nano::powergrid {
namespace {

TEST(Wakeup, NoiseScalesWithBumpInductanceShare) {
  const auto& node = tech::nodeByFeature(35);
  TransientConfig cfg;
  cfg.planeInductance = 0.0;  // isolate the bump term
  const TransientReport few = wakeupTransient(node, 100, cfg);
  const TransientReport many = wakeupTransient(node, 1000, cfg);
  EXPECT_NEAR(few.noiseVoltage / many.noiseVoltage, 10.0, 1e-6);
}

TEST(Wakeup, DeltaCurrentFromIdleFraction) {
  const auto& node = tech::nodeByFeature(35);
  TransientConfig cfg;
  cfg.idleFraction = 0.05;
  const TransientReport rep = wakeupTransient(node, 1500, cfg);
  EXPECT_NEAR(rep.deltaCurrent, 0.95 * node.supplyCurrent(), 1.0);
  EXPECT_NEAR(rep.dIdt, rep.deltaCurrent / cfg.wakeTime, 1e-3);
}

TEST(Wakeup, MinPitchBeatsItrsPadCount) {
  // Paper Section 4: "using the minimum bump pitch will help here as well,
  // providing a low inductance path".
  const auto& node = tech::nodeByFeature(35);
  const TransientReport itrs = wakeupTransient(node, node.itrsVddPads);
  const TransientReport dense =
      wakeupTransient(node, minPitchVddBumps(node));
  EXPECT_LT(dense.noiseVoltage, 0.6 * itrs.noiseVoltage);
}

TEST(Wakeup, SlowerRampIsQuieter) {
  const auto& node = tech::nodeByFeature(35);
  TransientConfig fast, slow;
  fast.wakeTime = 2e-9;
  slow.wakeTime = 20e-9;
  EXPECT_GT(wakeupTransient(node, 1500, fast).noiseVoltage,
            5.0 * wakeupTransient(node, 1500, slow).noiseVoltage);
}

TEST(Wakeup, DecapSizedToBudget) {
  const auto& node = tech::nodeByFeature(35);
  TransientConfig cfg;
  const TransientReport rep = wakeupTransient(node, 1500, cfg);
  EXPECT_NEAR(rep.decapNeeded,
              rep.deltaCurrent * cfg.wakeTime /
                  (2.0 * cfg.noiseBudgetFraction * node.vdd),
              1e-12);
  EXPECT_GT(rep.decapNeeded, 1e-9);  // hundreds of nF of on-die decap
}

TEST(Wakeup, MinPitchBumpCountLarge) {
  // ~20k+ Vdd bumps available at the 80 um minimum pitch on a 560 mm^2 die.
  EXPECT_GT(minPitchVddBumps(tech::nodeByFeature(35)), 10000);
}

TEST(Wakeup, Rejections) {
  const auto& node = tech::nodeByFeature(35);
  EXPECT_THROW(wakeupTransient(node, 0), std::invalid_argument);
  TransientConfig cfg;
  cfg.wakeTime = 0.0;
  EXPECT_THROW(wakeupTransient(node, 100, cfg), std::invalid_argument);
}

TEST(Wakeup, CurrentTransientsGrowDownRoadmap) {
  // Rising supply currents make the wake-up event harder each node.
  double prev = 0.0;
  for (int f : tech::roadmapFeatures()) {
    const auto& node = tech::nodeByFeature(f);
    const TransientReport rep = wakeupTransient(node, node.itrsVddPads);
    EXPECT_GT(rep.deltaCurrent, prev) << f;
    prev = rep.deltaCurrent;
  }
}

}  // namespace
}  // namespace nano::powergrid
