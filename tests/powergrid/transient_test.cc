#include "powergrid/transient.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "obs/metrics.h"

namespace nano::powergrid {
namespace {

TEST(Wakeup, NoiseScalesWithBumpInductanceShare) {
  const auto& node = tech::nodeByFeature(35);
  TransientConfig cfg;
  cfg.planeInductance = 0.0;  // isolate the bump term
  const TransientReport few = wakeupTransient(node, 100, cfg);
  const TransientReport many = wakeupTransient(node, 1000, cfg);
  EXPECT_NEAR(few.noiseVoltage / many.noiseVoltage, 10.0, 1e-6);
}

TEST(Wakeup, DeltaCurrentFromIdleFraction) {
  const auto& node = tech::nodeByFeature(35);
  TransientConfig cfg;
  cfg.idleFraction = 0.05;
  const TransientReport rep = wakeupTransient(node, 1500, cfg);
  EXPECT_NEAR(rep.deltaCurrent, 0.95 * node.supplyCurrent(), 1.0);
  EXPECT_NEAR(rep.dIdt, rep.deltaCurrent / cfg.wakeTime, 1e-3);
}

TEST(Wakeup, MinPitchBeatsItrsPadCount) {
  // Paper Section 4: "using the minimum bump pitch will help here as well,
  // providing a low inductance path".
  const auto& node = tech::nodeByFeature(35);
  const TransientReport itrs = wakeupTransient(node, node.itrsVddPads);
  const TransientReport dense =
      wakeupTransient(node, minPitchVddBumps(node));
  EXPECT_LT(dense.noiseVoltage, 0.6 * itrs.noiseVoltage);
}

TEST(Wakeup, SlowerRampIsQuieter) {
  const auto& node = tech::nodeByFeature(35);
  TransientConfig fast, slow;
  fast.wakeTime = 2e-9;
  slow.wakeTime = 20e-9;
  EXPECT_GT(wakeupTransient(node, 1500, fast).noiseVoltage,
            5.0 * wakeupTransient(node, 1500, slow).noiseVoltage);
}

TEST(Wakeup, DecapSizedToBudget) {
  const auto& node = tech::nodeByFeature(35);
  TransientConfig cfg;
  const TransientReport rep = wakeupTransient(node, 1500, cfg);
  EXPECT_NEAR(rep.decapNeeded,
              rep.deltaCurrent * cfg.wakeTime /
                  (2.0 * cfg.noiseBudgetFraction * node.vdd),
              1e-12);
  EXPECT_GT(rep.decapNeeded, 1e-9);  // hundreds of nF of on-die decap
}

TEST(Wakeup, MinPitchBumpCountLarge) {
  // ~20k+ Vdd bumps available at the 80 um minimum pitch on a 560 mm^2 die.
  EXPECT_GT(minPitchVddBumps(tech::nodeByFeature(35)), 10000);
}

TEST(Wakeup, Rejections) {
  const auto& node = tech::nodeByFeature(35);
  EXPECT_THROW(wakeupTransient(node, 0), std::invalid_argument);
  TransientConfig cfg;
  cfg.wakeTime = 0.0;
  EXPECT_THROW(wakeupTransient(node, 100, cfg), std::invalid_argument);
}

TEST(Wakeup, CurrentTransientsGrowDownRoadmap) {
  // Rising supply currents make the wake-up event harder each node.
  double prev = 0.0;
  for (int f : tech::roadmapFeatures()) {
    const auto& node = tech::nodeByFeature(f);
    const TransientReport rep = wakeupTransient(node, node.itrsVddPads);
    EXPECT_GT(rep.deltaCurrent, prev) << f;
    prev = rep.deltaCurrent;
  }
}

TEST(MeshTransient, RampSamplesAreMonotoneAndPeakAtFullPower) {
  const auto& node = tech::nodeByFeature(50);
  TransientConfig cfg;
  cfg.idleFraction = 0.1;
  const int steps = 6;
  const MeshTransientReport rep = wakeupMeshTransient(node, cfg, steps);
  ASSERT_EQ(rep.times.size(), static_cast<std::size_t>(steps) + 1);
  ASSERT_EQ(rep.dropFraction.size(), rep.times.size());
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(rep.unknowns, 0u);
  // The load vector scales linearly with the ramp while the conductances
  // are fixed, so the worst drop must grow monotonically from the idle
  // level to the full-power peak.
  for (std::size_t i = 1; i < rep.dropFraction.size(); ++i) {
    EXPECT_GE(rep.dropFraction[i], rep.dropFraction[i - 1]) << i;
    EXPECT_GT(rep.times[i], rep.times[i - 1]) << i;
  }
  EXPECT_DOUBLE_EQ(rep.peakDropFraction, rep.dropFraction.back());
  EXPECT_NEAR(rep.dropFraction.front(),
              cfg.idleFraction * rep.peakDropFraction,
              1e-9 * rep.peakDropFraction);
}

TEST(MeshTransient, RampReusesOneAssemblyAcrossAllSamples) {
  const bool wasEnabled = obs::enabled();
  obs::setEnabled(true);
  obs::MetricsRegistry::instance().reset();
  GridModel::clearCache();
  const auto& node = tech::nodeByFeature(35);
  const MeshTransientReport rep = wakeupMeshTransient(node, {}, 8);
  EXPECT_TRUE(rep.converged);
  auto& registry = obs::MetricsRegistry::instance();
  EXPECT_EQ(registry.counter("powergrid/grid_assemblies").value(), 1);
  EXPECT_GE(registry.counter("powergrid/grid_assembly_reuses").value(), 8);
  obs::setEnabled(wasEnabled);
}

TEST(MeshTransient, SolverChoiceDoesNotChangeTheRamp) {
  const auto& node = tech::nodeByFeature(70);
  GridSolverOptions jacobi;
  jacobi.preconditioner = PreconditionerKind::Jacobi;
  GridSolverOptions multigrid;
  multigrid.preconditioner = PreconditionerKind::Multigrid;
  const auto a = wakeupMeshTransient(node, {}, 4, jacobi);
  const auto b = wakeupMeshTransient(node, {}, 4, multigrid);
  ASSERT_EQ(a.dropFraction.size(), b.dropFraction.size());
  // The default mesh is small enough that the hierarchy may stop at the
  // direct-solve level; it must still be the multigrid path that ran.
  EXPECT_GE(b.mgLevels, 1);
  for (std::size_t i = 0; i < a.dropFraction.size(); ++i) {
    EXPECT_NEAR(b.dropFraction[i], a.dropFraction[i],
                1e-8 * std::max(a.dropFraction[i], 1e-12))
        << i;
  }
}

}  // namespace
}  // namespace nano::powergrid
