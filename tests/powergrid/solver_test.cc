#include "powergrid/solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "powergrid/grid_model.h"
#include "powergrid/multigrid.h"
#include "util/rng.h"

namespace nano::powergrid {
namespace {

double dotProduct(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

SparseSpd identity2() {
  SparseSpd a(2);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(1, 1.0);
  a.finalize();
  return a;
}

TEST(CgStatus, ConvergedSolveReportsStatus) {
  const CgResult r = solveCg(identity2(), {1.0, 2.0});
  EXPECT_EQ(r.status, util::SolverStatus::Converged);
  const util::Diagnostics d = r.diagnostics();
  EXPECT_TRUE(d.ok());
  EXPECT_STREQ(d.kernel, "powergrid/cg");
  EXPECT_EQ(d.iterations, r.iterations);
}

TEST(CgStatus, NanRhsReturnsZerosNotPoison) {
  const CgResult r = solveCg(identity2(), {std::nan(""), 1.0});
  EXPECT_EQ(r.status, util::SolverStatus::NanDetected);
  EXPECT_FALSE(r.converged);
  ASSERT_EQ(r.x.size(), 2u);
  // Per-point recovery: the last finite iterate (the zero start vector),
  // never the poisoned values.
  EXPECT_DOUBLE_EQ(r.x[0], 0.0);
  EXPECT_DOUBLE_EQ(r.x[1], 0.0);
}

TEST(CgStatus, IterationBudgetExhaustionReportsMaxIterations) {
  // A 2x2 SPD system needs 2 CG iterations; 1 cannot meet 1e-12.
  SparseSpd a(2);
  a.addDiagonal(0, 2.0);
  a.addDiagonal(1, 1.0);
  a.addOffDiagonal(0, 1, -1.0);
  a.finalize();
  const CgResult r = solveCg(a, {0.0, 1.0}, 1e-12, 1);
  EXPECT_EQ(r.status, util::SolverStatus::MaxIterations);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 1);
  EXPECT_TRUE(std::isfinite(r.x[0]));
  EXPECT_TRUE(std::isfinite(r.x[1]));
}

TEST(SparseSpd, SolvesDiagonalSystem) {
  SparseSpd a(3);
  a.addDiagonal(0, 2.0);
  a.addDiagonal(1, 4.0);
  a.addDiagonal(2, 8.0);
  a.finalize();
  const CgResult r = solveCg(a, {2.0, 4.0, 8.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
  EXPECT_NEAR(r.x[2], 1.0, 1e-9);
}

TEST(SparseSpd, SolvesResistorDivider) {
  // Two unit resistors in series from a 1 A source to ground:
  // G = [[2, -1], [-1, 1]] (node 0 mid, node 1 top with injection).
  SparseSpd a(2);
  a.addDiagonal(0, 2.0);
  a.addDiagonal(1, 1.0);
  a.addOffDiagonal(0, 1, -1.0);
  a.finalize();
  const CgResult r = solveCg(a, {0.0, 1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], 2.0, 1e-8);
}

TEST(SparseSpd, DuplicateStampsAccumulate) {
  SparseSpd a(2);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(1, 2.0);
  a.finalize();
  EXPECT_DOUBLE_EQ(a.diagonal(0), 2.0);
}

TEST(SparseSpd, MultiplyMatchesStamps) {
  SparseSpd a(2);
  a.addDiagonal(0, 3.0);
  a.addDiagonal(1, 5.0);
  a.addOffDiagonal(0, 1, -2.0);
  a.finalize();
  std::vector<double> y;
  a.multiply({1.0, 1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(SparseSpd, StampAfterFinalizeThrows) {
  SparseSpd a(2);
  a.addDiagonal(0, 1.0);
  a.finalize();
  EXPECT_THROW(a.addDiagonal(1, 1.0), std::logic_error);
}

TEST(SparseSpd, Rejections) {
  EXPECT_THROW(SparseSpd(0), std::invalid_argument);
  SparseSpd a(2);
  EXPECT_THROW(a.addOffDiagonal(0, 0, 1.0), std::out_of_range);
  EXPECT_THROW(a.addDiagonal(5, 1.0), std::out_of_range);
}

TEST(SolveCg, ZeroRhsIsZeroSolution) {
  SparseSpd a(2);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(1, 1.0);
  a.finalize();
  const CgResult r = solveCg(a, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x[0], 0.0);
}

TEST(SolveCg, LargeLaplacianChain) {
  // 1-D resistor chain with unit conductances, grounded at one end,
  // 1 A injected at the far end: v[i] = i + 1.
  const std::size_t n = 200;
  SparseSpd a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.addDiagonal(i, i + 1 < n ? 2.0 : 1.0);
    if (i + 1 < n) a.addOffDiagonal(i, i + 1, -1.0);
  }
  a.finalize();
  std::vector<double> b(n, 0.0);
  b[n - 1] = 1.0;
  const CgResult r = solveCg(a, b, 1e-11);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
  EXPECT_NEAR(r.x[n - 1], static_cast<double>(n), 1e-4);
}

TEST(SolveCg, ZeroRhsBookkeepingIsUniform) {
  SparseSpd a(2);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(1, 1.0);
  a.finalize();
  const CgResult r = solveCg(a, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_DOUBLE_EQ(r.residualNorm, 0.0);
}

TEST(SolveCg, IterationCapReportsResidualAndFlag) {
  // The 200-node chain needs ~n iterations; cap at 3 and check the
  // truncated solve reports the same bookkeeping as a converged one.
  const std::size_t n = 200;
  SparseSpd a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.addDiagonal(i, i + 1 < n ? 2.0 : 1.0);
    if (i + 1 < n) a.addOffDiagonal(i, i + 1, -1.0);
  }
  a.finalize();
  std::vector<double> b(n, 0.0);
  b[n - 1] = 1.0;
  const CgResult r = solveCg(a, b, 1e-11, 3);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
  EXPECT_GT(r.residualNorm, 0.0);
}

TEST(SolveCg, SizeMismatchThrows) {
  SparseSpd a(2);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(1, 1.0);
  a.finalize();
  EXPECT_THROW(solveCg(a, {1.0}), std::invalid_argument);
}

TEST(SolveCg, UnfinalizedThrows) {
  SparseSpd a(2);
  EXPECT_THROW(solveCg(a, {1.0, 1.0}), std::logic_error);
}

TEST(SparseSpd, DuplicateOffDiagonalsMergeInCsr) {
  // Stamping (0,1) three times and (0,0) twice must collapse to single
  // CSR entries whose values are the sums — checked through multiply,
  // which walks the compressed structure directly.
  SparseSpd a(3);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(0, 2.5);
  a.addOffDiagonal(0, 1, -0.5);
  a.addOffDiagonal(0, 1, -0.25);
  a.addOffDiagonal(1, 0, -0.25);
  a.addDiagonal(1, 4.0);
  a.addDiagonal(2, 1.0);
  a.finalize();
  EXPECT_DOUBLE_EQ(a.diagonal(0), 3.5);
  std::vector<double> y;
  a.multiply({1.0, 1.0, 1.0}, y);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 3.5 - 1.0);   // 3.5 * 1 + (-1.0) * 1
  EXPECT_DOUBLE_EQ(y[1], 4.0 - 1.0);   // symmetric entry
  EXPECT_DOUBLE_EQ(y[2], 1.0);
}

TEST(SparseSpd, CsrAccessorsThrowBeforeFinalize) {
  SparseSpd a(2);
  a.addDiagonal(0, 1.0);
  EXPECT_THROW(static_cast<void>(a.rowPtr()), std::logic_error);
  EXPECT_THROW(static_cast<void>(a.cols()), std::logic_error);
  EXPECT_THROW(static_cast<void>(a.values()), std::logic_error);
  EXPECT_THROW(static_cast<void>(a.nonZeros()), std::logic_error);
  a.addDiagonal(1, 1.0);
  a.addOffDiagonal(0, 1, -0.5);
  a.finalize();
  EXPECT_EQ(a.nonZeros(), 4u);  // two diagonals + the mirrored off-diagonal
  EXPECT_EQ(a.rowPtr().size(), 3u);
  EXPECT_EQ(a.cols().size(), 4u);
  EXPECT_EQ(a.values().size(), 4u);
}

// Randomized grid topologies drive the property checks below: the
// assembled operator must be exactly symmetric, match a dense reference
// under multiply, and be positive definite (CG converges on any rhs).
TEST(SparseSpdProperties, RandomGridsAreSymmetricPositiveDefinite) {
  util::Rng rng(20260806);
  for (int trial = 0; trial < 8; ++trial) {
    GridConfig cfg;
    cfg.railPitch = 160e-6;
    cfg.bumpPitch = cfg.railPitch * rng.uniformInt(1, 3);
    cfg.tilesX = rng.uniformInt(1, 3);
    cfg.tilesY = rng.uniformInt(1, 3);
    cfg.subdivisions = 2 * rng.uniformInt(1, 4);
    cfg.hotspotCellsRail = rng.uniformInt(0, 1);
    const auto model = GridModel::forConfig(cfg);
    const SparseSpd& a = model->unitLaplacian();
    const std::size_t n = a.size();
    const auto& rp = a.rowPtr();
    const auto& cols = a.cols();
    const auto& vals = a.values();

    // Exact symmetry: every stored (i, j) has a stored (j, i) with the
    // identical bit pattern.
    std::vector<std::vector<std::pair<std::size_t, double>>> rows(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
        rows[i].emplace_back(cols[k], vals[k]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (const auto& [j, v] : rows[i]) {
        bool found = false;
        for (const auto& [jj, vv] : rows[j]) {
          if (jj == i) {
            found = true;
            EXPECT_EQ(v, vv) << "asymmetric at (" << i << ", " << j << ")";
          }
        }
        EXPECT_TRUE(found) << "missing transpose entry (" << j << ", " << i
                           << ")";
      }
    }

    // multiply vs a dense reference on a random vector.
    if (n <= 2048) {
      std::vector<double> x(n), yDense(n, 0.0), ySparse;
      for (double& v : x) v = rng.uniform(-1.0, 1.0);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
          yDense[i] += vals[k] * x[cols[k]];
        }
      }
      a.multiply(x, ySparse);
      ASSERT_EQ(ySparse.size(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(ySparse[i], yDense[i], 1e-12 * (1.0 + std::abs(yDense[i])));
      }
    }

    // Positive definiteness, observed through CG converging on a random
    // rhs and producing a positive quadratic form.
    std::vector<double> b(n);
    for (double& v : b) v = rng.uniform(-1.0, 1.0);
    const CgResult r = solveCg(a, b, 1e-9, 8 * static_cast<int>(n) + 100);
    ASSERT_TRUE(r.converged)
        << "trial " << trial << ": CG stalled on a supposedly SPD operator";
    EXPECT_GT(dotProduct(r.x, b), -1e-9);
  }
}

TEST(Preconditioners, ExplicitJacobiMatchesDefaultBitwise) {
  // The classic overload must stay bit-identical when spelled as the
  // preconditioned overload with a JacobiPreconditioner.
  const std::size_t n = 64;
  SparseSpd a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.addDiagonal(i, i + 1 < n ? 2.0 : 1.0);
    if (i + 1 < n) a.addOffDiagonal(i, i + 1, -1.0);
  }
  a.finalize();
  std::vector<double> b(n, 0.0);
  b[n - 1] = 1.0;
  const CgResult classic = solveCg(a, b, 1e-11);
  const JacobiPreconditioner jacobi(a);
  EXPECT_STREQ(jacobi.name(), "jacobi");
  const CgResult explicitPc = solveCg(a, b, jacobi, 1e-11);
  ASSERT_TRUE(classic.converged);
  EXPECT_EQ(classic.iterations, explicitPc.iterations);
  EXPECT_EQ(classic.residualNorm, explicitPc.residualNorm);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(classic.x[i], explicitPc.x[i]) << "drift at " << i;
  }
}

TEST(Preconditioners, PoisonedPreconditionerStopsAtLastFiniteIterate) {
  struct PoisonAfterFirst final : Preconditioner {
    mutable int calls = 0;
    void apply(const std::vector<double>& r,
               std::vector<double>& z) const override {
      z.assign(r.size(), ++calls > 1 ? std::nan("") : 1.0);
    }
    const char* name() const override { return "poison"; }
  };
  SparseSpd a(2);
  a.addDiagonal(0, 2.0);
  a.addDiagonal(1, 1.0);
  a.addOffDiagonal(0, 1, -1.0);
  a.finalize();
  const PoisonAfterFirst poison;
  const CgResult r = solveCg(a, {0.0, 1.0}, poison, 1e-14, 50);
  EXPECT_EQ(r.status, util::SolverStatus::NanDetected);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(std::isfinite(r.x[0]));
  EXPECT_TRUE(std::isfinite(r.x[1]));
}

TEST(SparseSpd, MultiplyReusesCallerBuffer) {
  SparseSpd a(2);
  a.addDiagonal(0, 2.0);
  a.addDiagonal(1, 3.0);
  a.finalize();
  // Right-sized garbage is overwritten in place, no realloc.
  std::vector<double> y{99.0, -99.0};
  const double* data = y.data();
  a.multiply({1.0, 1.0}, y);
  EXPECT_EQ(y.data(), data);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  // Wrong-sized buffers are resized to n.
  std::vector<double> z(7, 0.0);
  a.multiply({2.0, 2.0}, z);
  ASSERT_EQ(z.size(), 2u);
  EXPECT_DOUBLE_EQ(z[0], 4.0);
  EXPECT_DOUBLE_EQ(z[1], 6.0);
}

}  // namespace
}  // namespace nano::powergrid
