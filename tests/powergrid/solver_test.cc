#include "powergrid/solver.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nano::powergrid {
namespace {

SparseSpd identity2() {
  SparseSpd a(2);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(1, 1.0);
  a.finalize();
  return a;
}

TEST(CgStatus, ConvergedSolveReportsStatus) {
  const CgResult r = solveCg(identity2(), {1.0, 2.0});
  EXPECT_EQ(r.status, util::SolverStatus::Converged);
  const util::Diagnostics d = r.diagnostics();
  EXPECT_TRUE(d.ok());
  EXPECT_STREQ(d.kernel, "powergrid/cg");
  EXPECT_EQ(d.iterations, r.iterations);
}

TEST(CgStatus, NanRhsReturnsZerosNotPoison) {
  const CgResult r = solveCg(identity2(), {std::nan(""), 1.0});
  EXPECT_EQ(r.status, util::SolverStatus::NanDetected);
  EXPECT_FALSE(r.converged);
  ASSERT_EQ(r.x.size(), 2u);
  // Per-point recovery: the last finite iterate (the zero start vector),
  // never the poisoned values.
  EXPECT_DOUBLE_EQ(r.x[0], 0.0);
  EXPECT_DOUBLE_EQ(r.x[1], 0.0);
}

TEST(CgStatus, IterationBudgetExhaustionReportsMaxIterations) {
  // A 2x2 SPD system needs 2 CG iterations; 1 cannot meet 1e-12.
  SparseSpd a(2);
  a.addDiagonal(0, 2.0);
  a.addDiagonal(1, 1.0);
  a.addOffDiagonal(0, 1, -1.0);
  a.finalize();
  const CgResult r = solveCg(a, {0.0, 1.0}, 1e-12, 1);
  EXPECT_EQ(r.status, util::SolverStatus::MaxIterations);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 1);
  EXPECT_TRUE(std::isfinite(r.x[0]));
  EXPECT_TRUE(std::isfinite(r.x[1]));
}

TEST(SparseSpd, SolvesDiagonalSystem) {
  SparseSpd a(3);
  a.addDiagonal(0, 2.0);
  a.addDiagonal(1, 4.0);
  a.addDiagonal(2, 8.0);
  a.finalize();
  const CgResult r = solveCg(a, {2.0, 4.0, 8.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
  EXPECT_NEAR(r.x[2], 1.0, 1e-9);
}

TEST(SparseSpd, SolvesResistorDivider) {
  // Two unit resistors in series from a 1 A source to ground:
  // G = [[2, -1], [-1, 1]] (node 0 mid, node 1 top with injection).
  SparseSpd a(2);
  a.addDiagonal(0, 2.0);
  a.addDiagonal(1, 1.0);
  a.addOffDiagonal(0, 1, -1.0);
  a.finalize();
  const CgResult r = solveCg(a, {0.0, 1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], 2.0, 1e-8);
}

TEST(SparseSpd, DuplicateStampsAccumulate) {
  SparseSpd a(2);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(1, 2.0);
  a.finalize();
  EXPECT_DOUBLE_EQ(a.diagonal(0), 2.0);
}

TEST(SparseSpd, MultiplyMatchesStamps) {
  SparseSpd a(2);
  a.addDiagonal(0, 3.0);
  a.addDiagonal(1, 5.0);
  a.addOffDiagonal(0, 1, -2.0);
  a.finalize();
  std::vector<double> y;
  a.multiply({1.0, 1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(SparseSpd, StampAfterFinalizeThrows) {
  SparseSpd a(2);
  a.addDiagonal(0, 1.0);
  a.finalize();
  EXPECT_THROW(a.addDiagonal(1, 1.0), std::logic_error);
}

TEST(SparseSpd, Rejections) {
  EXPECT_THROW(SparseSpd(0), std::invalid_argument);
  SparseSpd a(2);
  EXPECT_THROW(a.addOffDiagonal(0, 0, 1.0), std::out_of_range);
  EXPECT_THROW(a.addDiagonal(5, 1.0), std::out_of_range);
}

TEST(SolveCg, ZeroRhsIsZeroSolution) {
  SparseSpd a(2);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(1, 1.0);
  a.finalize();
  const CgResult r = solveCg(a, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x[0], 0.0);
}

TEST(SolveCg, LargeLaplacianChain) {
  // 1-D resistor chain with unit conductances, grounded at one end,
  // 1 A injected at the far end: v[i] = i + 1.
  const std::size_t n = 200;
  SparseSpd a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.addDiagonal(i, i + 1 < n ? 2.0 : 1.0);
    if (i + 1 < n) a.addOffDiagonal(i, i + 1, -1.0);
  }
  a.finalize();
  std::vector<double> b(n, 0.0);
  b[n - 1] = 1.0;
  const CgResult r = solveCg(a, b, 1e-11);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
  EXPECT_NEAR(r.x[n - 1], static_cast<double>(n), 1e-4);
}

TEST(SolveCg, ZeroRhsBookkeepingIsUniform) {
  SparseSpd a(2);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(1, 1.0);
  a.finalize();
  const CgResult r = solveCg(a, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_DOUBLE_EQ(r.residualNorm, 0.0);
}

TEST(SolveCg, IterationCapReportsResidualAndFlag) {
  // The 200-node chain needs ~n iterations; cap at 3 and check the
  // truncated solve reports the same bookkeeping as a converged one.
  const std::size_t n = 200;
  SparseSpd a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.addDiagonal(i, i + 1 < n ? 2.0 : 1.0);
    if (i + 1 < n) a.addOffDiagonal(i, i + 1, -1.0);
  }
  a.finalize();
  std::vector<double> b(n, 0.0);
  b[n - 1] = 1.0;
  const CgResult r = solveCg(a, b, 1e-11, 3);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
  EXPECT_GT(r.residualNorm, 0.0);
}

TEST(SolveCg, SizeMismatchThrows) {
  SparseSpd a(2);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(1, 1.0);
  a.finalize();
  EXPECT_THROW(solveCg(a, {1.0}), std::invalid_argument);
}

TEST(SolveCg, UnfinalizedThrows) {
  SparseSpd a(2);
  EXPECT_THROW(solveCg(a, {1.0, 1.0}), std::logic_error);
}

TEST(SparseSpd, DuplicateOffDiagonalsMergeInCsr) {
  // Stamping (0,1) three times and (0,0) twice must collapse to single
  // CSR entries whose values are the sums — checked through multiply,
  // which walks the compressed structure directly.
  SparseSpd a(3);
  a.addDiagonal(0, 1.0);
  a.addDiagonal(0, 2.5);
  a.addOffDiagonal(0, 1, -0.5);
  a.addOffDiagonal(0, 1, -0.25);
  a.addOffDiagonal(1, 0, -0.25);
  a.addDiagonal(1, 4.0);
  a.addDiagonal(2, 1.0);
  a.finalize();
  EXPECT_DOUBLE_EQ(a.diagonal(0), 3.5);
  std::vector<double> y;
  a.multiply({1.0, 1.0, 1.0}, y);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 3.5 - 1.0);   // 3.5 * 1 + (-1.0) * 1
  EXPECT_DOUBLE_EQ(y[1], 4.0 - 1.0);   // symmetric entry
  EXPECT_DOUBLE_EQ(y[2], 1.0);
}

TEST(SparseSpd, MultiplyReusesCallerBuffer) {
  SparseSpd a(2);
  a.addDiagonal(0, 2.0);
  a.addDiagonal(1, 3.0);
  a.finalize();
  // Right-sized garbage is overwritten in place, no realloc.
  std::vector<double> y{99.0, -99.0};
  const double* data = y.data();
  a.multiply({1.0, 1.0}, y);
  EXPECT_EQ(y.data(), data);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  // Wrong-sized buffers are resized to n.
  std::vector<double> z(7, 0.0);
  a.multiply({2.0, 2.0}, z);
  ASSERT_EQ(z.size(), 2u);
  EXPECT_DOUBLE_EQ(z[0], 4.0);
  EXPECT_DOUBLE_EQ(z[1], 6.0);
}

}  // namespace
}  // namespace nano::powergrid
