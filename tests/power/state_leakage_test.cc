#include "power/state_leakage.h"

#include <gtest/gtest.h>

#include "circuit/generator.h"
#include "power/power_model.h"
#include "power/standby.h"

namespace nano::power {
namespace {

using circuit::CellFunction;
using circuit::Library;
using circuit::VddDomain;
using circuit::VthClass;

const tech::TechNode& node70() { return tech::nodeByFeature(70); }

const Library& lib() {
  static const Library instance(node70());
  return instance;
}

TEST(CellStateLeakage, InverterStatesDiffer) {
  const auto inv = lib().pick(CellFunction::Inv, 1.0);
  const double low = cellStateLeakage(inv, node70(), 0u);   // NMOS leaks
  const double high = cellStateLeakage(inv, node70(), 1u);  // PMOS leaks
  EXPECT_GT(low, 0.0);
  EXPECT_GT(high, 0.0);
  // PMOS: wider but per-width weaker; with Wp = 2Wn and factor 0.45 the
  // two states are within 2x of each other.
  EXPECT_LT(std::max(low, high) / std::min(low, high), 2.0);
}

TEST(CellStateLeakage, NandAllLowIsBestState) {
  // Both NMOS off in series: the stack effect makes (0,0) the
  // minimum-leakage state of a NAND2.
  const auto nand = lib().pick(CellFunction::Nand2, 1.0);
  const double s00 = cellStateLeakage(nand, node70(), 0b00u);
  const double s01 = cellStateLeakage(nand, node70(), 0b01u);
  const double s10 = cellStateLeakage(nand, node70(), 0b10u);
  const double s11 = cellStateLeakage(nand, node70(), 0b11u);
  EXPECT_LT(s00, s01);
  EXPECT_LT(s00, s10);
  EXPECT_LT(s00, s11);
  EXPECT_DOUBLE_EQ(s01, s10);  // symmetric single-off states
}

TEST(CellStateLeakage, NandStackFactorMatchesStandbyModel) {
  const auto nand = lib().pick(CellFunction::Nand2, 1.0);
  const double s00 = cellStateLeakage(nand, node70(), 0b00u);
  const double s01 = cellStateLeakage(nand, node70(), 0b01u);
  const double vth = device::solveVthForIon(node70(), node70().ionTarget);
  const auto dev = device::Mosfet::fromNode(node70(), vth);
  EXPECT_NEAR(s00 / s01, stackLeakageFactor(dev, 2), 1e-9);
}

TEST(CellStateLeakage, Nand3DeepStackLeaksLeast) {
  const auto nand3 = lib().pick(CellFunction::Nand3, 1.0);
  const double allLow = cellStateLeakage(nand3, node70(), 0b000u);
  const double oneLow = cellStateLeakage(nand3, node70(), 0b011u);
  const double none = cellStateLeakage(nand3, node70(), 0b111u);
  EXPECT_LT(allLow, oneLow);
  EXPECT_GT(none, 0.0);
}

TEST(CellStateLeakage, NorDualToNand) {
  // NOR2 with both inputs high: series PMOS stack off -> best state.
  const auto nor = lib().pick(CellFunction::Nor2, 1.0);
  const double bothHigh = cellStateLeakage(nor, node70(), 0b11u);
  const double bothLow = cellStateLeakage(nor, node70(), 0b00u);
  EXPECT_LT(bothHigh, bothLow);
}

TEST(CellStateLeakage, HighVthFlavorsLeakFarLess) {
  const auto lvt = lib().pick(CellFunction::Nand2, 1.0);
  const auto hvt =
      lib().pick(CellFunction::Nand2, 1.0, VthClass::High, VddDomain::High);
  for (unsigned s : {0b00u, 0b01u, 0b11u}) {
    EXPECT_LT(cellStateLeakage(hvt, node70(), s),
              0.2 * cellStateLeakage(lvt, node70(), s))
        << s;
  }
}

TEST(StateAwareLeakage, WithinStateBounds) {
  util::Rng rng(44);
  circuit::GeneratorConfig cfg;
  cfg.gates = 300;
  const auto nl = circuit::randomLogic(lib(), cfg, rng);
  const auto act = propagateActivity(nl);
  const double aware = stateAwareLeakage(nl, node70(), act);
  const LeakageBounds bounds = leakageStateBounds(nl, node70());
  EXPECT_GE(aware, bounds.minimum);
  EXPECT_LE(aware, bounds.maximum);
  EXPECT_GT(bounds.maximum, bounds.minimum);
}

TEST(StateAwareLeakage, SameOrderAsCharacterizedEstimate) {
  // The state-aware number should land within ~3x of the state-averaged
  // cell characterization (they are two views of the same physics).
  util::Rng rng(45);
  circuit::GeneratorConfig cfg;
  cfg.gates = 300;
  const auto nl = circuit::randomLogic(lib(), cfg, rng);
  const auto act = propagateActivity(nl);
  const double aware = stateAwareLeakage(nl, node70(), act);
  const auto avg = computePower(nl, act, 1e9);
  EXPECT_GT(aware, avg.leakage / 3.0);
  EXPECT_LT(aware, avg.leakage * 3.0);
}

TEST(StateAwareLeakage, InputVectorControlHeadroom) {
  // The paper's Section 3.3 point: parking the circuit in good states cuts
  // standby leakage substantially without sleep devices. Best-vs-worst
  // state bound should show >= 2x headroom on NAND/NOR-rich logic.
  util::Rng rng(46);
  circuit::GeneratorConfig cfg;
  cfg.gates = 300;
  const auto nl = circuit::randomLogic(lib(), cfg, rng);
  const LeakageBounds bounds = leakageStateBounds(nl, node70());
  EXPECT_GT(bounds.maximum / bounds.minimum, 2.0);
}

}  // namespace
}  // namespace nano::power
