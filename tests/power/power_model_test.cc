#include "power/power_model.h"

#include <gtest/gtest.h>

#include "circuit/generator.h"
#include "util/units.h"

namespace nano::power {
namespace {

using namespace nano::units;
using circuit::CellFunction;
using circuit::VddDomain;
using circuit::VthClass;

struct Fixture {
  circuit::Library lib{tech::nodeByFeature(100)};
};

TEST(PowerModel, ChainPowerMatchesHandRollup) {
  Fixture f;
  const auto nl = circuit::inverterChain(f.lib, 3);
  const ActivityResult act = propagateActivity(nl, 0.5, 0.2);
  const double freq = 1 * GHz;
  const PowerBreakdown p = computePower(nl, act, freq);

  double dyn = 0.0, leak = 0.0;
  for (int g : nl.gateIds()) {
    const auto& cell = nl.node(g).cell;
    dyn += act.activity[static_cast<std::size_t>(g)] *
           cell.switchingEnergy(nl.loadCap(g)) * freq;
    leak += cell.leakage;
  }
  EXPECT_NEAR(p.dynamic, dyn, 1e-12 * dyn);
  EXPECT_NEAR(p.leakage, leak, 1e-12 * leak);
  EXPECT_DOUBLE_EQ(p.levelConverter, 0.0);
}

TEST(PowerModel, LinearInFrequency) {
  Fixture f;
  const auto nl = circuit::inverterChain(f.lib, 5);
  const PowerBreakdown p1 = computePower(nl, 1 * GHz);
  const PowerBreakdown p2 = computePower(nl, 2 * GHz);
  EXPECT_NEAR(p2.dynamic, 2.0 * p1.dynamic, 1e-9 * p1.dynamic);
  EXPECT_NEAR(p2.leakage, p1.leakage, 1e-15);
}

TEST(PowerModel, LevelConvertersBucketedSeparately) {
  Fixture f;
  circuit::Netlist nl;
  const int a = nl.addInput();
  const auto low =
      f.lib.pick(CellFunction::Inv, 1.0, VthClass::Low, VddDomain::Low);
  const auto lc = f.lib.pick(CellFunction::LevelConverter, 1.0, VthClass::Low,
                             VddDomain::High);
  const int g = nl.addGate(low, {a});
  const int c = nl.addGate(lc, {g});
  nl.markOutput(c);
  const PowerBreakdown p = computePower(nl, 1 * GHz);
  EXPECT_GT(p.levelConverter, 0.0);
  EXPECT_GT(p.dynamic, 0.0);
  EXPECT_NEAR(p.total(), p.dynamic + p.leakage + p.levelConverter, 1e-18);
}

TEST(PowerModel, LowVddGatesBurnLess) {
  Fixture f;
  auto build = [&](VddDomain dom) {
    circuit::Netlist nl;
    const int a = nl.addInput();
    const auto inv = f.lib.pick(CellFunction::Inv, 1.0, VthClass::Low, dom);
    int prev = a;
    for (int i = 0; i < 4; ++i) prev = nl.addGate(inv, {prev});
    nl.markOutput(prev);
    return computePower(nl, 1 * GHz);
  };
  const PowerBreakdown hi = build(VddDomain::High);
  const PowerBreakdown lo = build(VddDomain::Low);
  // Dynamic scales ~ Vdd^2 = 0.42x (plus slight cap differences).
  EXPECT_LT(lo.dynamic, 0.5 * hi.dynamic);
  EXPECT_LT(lo.leakage, hi.leakage);
}

TEST(PowerModel, HighVthCutsLeakageOnly) {
  Fixture f;
  auto build = [&](VthClass vth) {
    circuit::Netlist nl;
    const int a = nl.addInput();
    const auto inv = f.lib.pick(CellFunction::Inv, 1.0, vth, VddDomain::High);
    int prev = a;
    for (int i = 0; i < 4; ++i) prev = nl.addGate(inv, {prev});
    nl.markOutput(prev);
    return computePower(nl, 1 * GHz);
  };
  const PowerBreakdown lvt = build(VthClass::Low);
  const PowerBreakdown hvt = build(VthClass::High);
  EXPECT_LT(hvt.leakage, 0.2 * lvt.leakage);
  EXPECT_NEAR(hvt.dynamic, lvt.dynamic, 0.05 * lvt.dynamic);
}

TEST(PowerModel, GateDynamicPowerConsistent) {
  Fixture f;
  util::Rng rng(31);
  circuit::GeneratorConfig cfg;
  cfg.gates = 200;
  const auto nl = circuit::randomLogic(f.lib, cfg, rng);
  const ActivityResult act = propagateActivity(nl);
  const double freq = 2 * GHz;
  double sum = 0.0;
  for (int g : nl.gateIds()) sum += gateDynamicPower(nl, act, g, freq);
  const PowerBreakdown p = computePower(nl, act, freq);
  EXPECT_NEAR(sum, p.dynamic + p.levelConverter, 1e-9 * sum);
}

TEST(PowerModel, LeakageShareGrowsAtLeakyNodes) {
  // The Figure 1 story at netlist level: leakage fraction at 50 nm far
  // exceeds that at 180 nm for the same circuit shape.
  auto leakFraction = [](int feature) {
    circuit::Library lib(tech::nodeByFeature(feature));
    util::Rng rng(77);
    circuit::GeneratorConfig cfg;
    cfg.gates = 300;
    const auto nl = circuit::randomLogic(lib, cfg, rng);
    const auto p =
        computePower(nl, tech::nodeByFeature(feature).clockLocal, 0.1);
    return p.leakage / p.total();
  };
  EXPECT_GT(leakFraction(50), 10.0 * leakFraction(180));
}

}  // namespace
}  // namespace nano::power
