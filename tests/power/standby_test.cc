#include "power/standby.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nano::power {
namespace {

device::Mosfet solvedDevice(int feature) {
  const auto& node = tech::nodeByFeature(feature);
  return device::Mosfet::fromNode(
      node, device::solveVthForIon(node, node.ionTarget));
}

TEST(SubthresholdCurrent, MatchesIoffAtZeroGate) {
  const auto dev = solvedDevice(100);
  const double vdd = dev.params().vddReference;
  // At vgs = 0 and full vds the drain factor is ~1 and we recover Eq. (4).
  EXPECT_NEAR(subthresholdCurrent(dev, 0.0, vdd), dev.ioff(vdd),
              1e-6 * dev.ioff(vdd));
}

TEST(SubthresholdCurrent, OneDecadePerSwing) {
  const auto dev = solvedDevice(100);
  const double s = dev.subthresholdSwing();
  const double vdd = dev.params().vddReference;
  EXPECT_NEAR(subthresholdCurrent(dev, 0.0, vdd) /
                  subthresholdCurrent(dev, -s, vdd),
              10.0, 1e-6);
}

TEST(SubthresholdCurrent, VanishesAtZeroVds) {
  const auto dev = solvedDevice(100);
  EXPECT_NEAR(subthresholdCurrent(dev, 0.0, 0.0), 0.0, 1e-12);
}

TEST(StackEffect, IntermediateNodeSelfBiases) {
  // The stack node floats a few tens of mV above ground — enough source
  // degeneration to choke the top device.
  const auto dev = solvedDevice(100);
  const double vx = stackIntermediateVoltage(dev);
  EXPECT_GT(vx, 0.01);
  EXPECT_LT(vx, 0.15);
}

TEST(StackEffect, CurrentsBalanceAtSolution) {
  const auto dev = solvedDevice(70);
  const double vdd = dev.params().vddReference;
  const double vx = stackIntermediateVoltage(dev);
  EXPECT_NEAR(subthresholdCurrent(dev, -vx, vdd - vx),
              subthresholdCurrent(dev, 0.0, vx),
              1e-6 * subthresholdCurrent(dev, 0.0, vx));
}

TEST(StackEffect, TwoStackLeaksSeveralTimesLess) {
  // Paper [38]: stacks cut leakage without sleep transistors. Literature
  // puts the 2-stack factor at ~3-10x.
  for (int f : {180, 100, 50, 35}) {
    const double factor = stackLeakageFactor(solvedDevice(f), 2);
    EXPECT_GT(factor, 0.1) << f;
    EXPECT_LT(factor, 0.45) << f;
  }
}

TEST(StackEffect, DeeperStacksLeakMonotonicallyLess) {
  const auto dev = solvedDevice(100);
  const double s1 = stackLeakageFactor(dev, 1);
  const double s2 = stackLeakageFactor(dev, 2);
  const double s3 = stackLeakageFactor(dev, 3);
  EXPECT_DOUBLE_EQ(s1, 1.0);
  EXPECT_LT(s2, s1);
  EXPECT_LT(s3, s2);
  EXPECT_GT(s3, 0.0);
}

TEST(StackEffect, RejectsBadDepth) {
  EXPECT_THROW(stackLeakageFactor(solvedDevice(100), 0),
               std::invalid_argument);
}

TEST(MixedVthStack, SubstantialLeakageCutMinimalDelay) {
  // Paper Section 3.3: different thresholds inside a cell's stack give
  // "fairly substantial leakage savings with minimal delay penalties".
  const auto& node = tech::nodeByFeature(35);
  const double vth = device::solveVthForIon(node, node.ionTarget);
  const MixedStackReport rep = mixedVthStack(node, vth, vth + 0.1);
  EXPECT_LT(rep.leakageVsAllLow, 0.2);   // > 5x leakage cut
  EXPECT_LT(rep.delayVsAllLow, 1.30);    // < 30 % pull-down penalty
  EXPECT_GT(rep.delayVsAllLow, 1.0);
}

TEST(MixedVthStack, LargerOffsetMoreSavingMoreDelay) {
  const auto& node = tech::nodeByFeature(70);
  const double vth = device::solveVthForIon(node, node.ionTarget);
  const MixedStackReport small = mixedVthStack(node, vth, vth + 0.05);
  const MixedStackReport big = mixedVthStack(node, vth, vth + 0.15);
  EXPECT_LT(big.leakageVsAllLow, small.leakageVsAllLow);
  EXPECT_GT(big.delayVsAllLow, small.delayVsAllLow);
}

MtcmosBlock referenceBlock(const tech::TechNode& node, double vth) {
  MtcmosBlock block;
  block.totalDeviceWidth = 1e-3;  // 1 mm of NMOS width
  // ~2 % of the block switching simultaneously at full drive.
  block.peakCurrent = 0.02 * block.totalDeviceWidth * node.ionTarget;
  block.vthLow = vth;
  return block;
}

TEST(Mtcmos, VirtuallyEliminatesStandbyLeakage) {
  // Paper Section 3.2.1: MTCMOS "virtually eliminates leakage current in
  // idle states".
  const auto& node = tech::nodeByFeature(50);
  const double vth = device::solveVthForIon(node, node.ionTarget);
  const auto d = sizeSleepTransistor(node, referenceBlock(node, vth));
  EXPECT_GT(d.standbyReduction(), 0.99);
}

TEST(Mtcmos, DelayPenaltyTradesAgainstArea) {
  // "As it is in series, it adds delay, which can be reduced by
  // increasing its area."
  const auto& node = tech::nodeByFeature(70);
  const double vth = device::solveVthForIon(node, node.ionTarget);
  const MtcmosBlock block = referenceBlock(node, vth);
  const auto tight = sizeSleepTransistor(node, block, 0.02);
  const auto loose = sizeSleepTransistor(node, block, 0.10);
  EXPECT_GT(tight.width, loose.width);
  EXPECT_GT(tight.areaOverhead, loose.areaOverhead);
  EXPECT_NEAR(tight.width / loose.width, 5.0, 0.1);  // ~1/penalty
}

TEST(Mtcmos, NoActiveLeakageReduction) {
  // The technique only helps in standby: active leakage is the block's.
  const auto& node = tech::nodeByFeature(50);
  const double vth = device::solveVthForIon(node, node.ionTarget);
  const auto d = sizeSleepTransistor(node, referenceBlock(node, vth));
  const auto dev = device::Mosfet::fromNode(node, vth);
  EXPECT_NEAR(d.activeLeakage, dev.ioff() * 1e-3, 1e-9);
}

TEST(Mtcmos, AreaOverheadModest) {
  const auto& node = tech::nodeByFeature(70);
  const double vth = device::solveVthForIon(node, node.ionTarget);
  const auto d = sizeSleepTransistor(node, referenceBlock(node, vth));
  EXPECT_LT(d.areaOverhead, 0.35);
  EXPECT_GT(d.areaOverhead, 0.005);
}

TEST(Mtcmos, Rejections) {
  const auto& node = tech::nodeByFeature(70);
  MtcmosBlock block;
  EXPECT_THROW(sizeSleepTransistor(node, block, 0.0), std::invalid_argument);
  EXPECT_THROW(sizeSleepTransistor(node, block, 1.0), std::invalid_argument);
}

TEST(BodyBias, ReductionFollowsEq4) {
  const auto& node = tech::nodeByFeature(180);
  const double expected =
      std::pow(10.0, node.bodyEffect * 1.0 / node.subthresholdSwing);
  EXPECT_NEAR(bodyBiasLeakageReduction(node, 1.0), expected, 1e-9);
}

TEST(BodyBias, LeverShrinksWithScaling) {
  // The paper's objection: "body bias is less effective at controlling
  // Vth in scaled devices".
  double prev = 1e9;
  for (int f : tech::roadmapFeatures()) {
    const double r = bodyBiasLeakageReduction(tech::nodeByFeature(f), 1.0);
    EXPECT_LT(r, prev) << f;
    prev = r;
  }
  EXPECT_GT(bodyBiasLeakageReduction(tech::nodeByFeature(180), 1.0), 100.0);
  EXPECT_LT(bodyBiasLeakageReduction(tech::nodeByFeature(35), 1.0), 10.0);
}

TEST(BodyBias, RejectsNegativeBias) {
  EXPECT_THROW(bodyBiasLeakageReduction(tech::nodeByFeature(100), -0.5),
               std::invalid_argument);
}

TEST(StackSolveChecked, ConvergedDiagnosticsMatchThrowingSolve) {
  const auto dev = solvedDevice(100);
  const StackSolveResult r = stackIntermediateVoltageChecked(dev, dev);
  EXPECT_TRUE(r.diag.ok());
  EXPECT_GT(r.diag.iterations, 0);
  EXPECT_STREQ(r.diag.kernel, "power/stack_vx");
  EXPECT_DOUBLE_EQ(r.vx, stackIntermediateVoltage(dev, dev));
  // The intermediate node sits strictly inside the rail.
  EXPECT_GT(r.vx, 0.0);
  EXPECT_LT(r.vx, dev.params().vddReference);
}

TEST(LinearConductance, PositiveAndIncreasingInVgs) {
  const auto dev = solvedDevice(100);
  const double g1 = dev.linearConductance(0.8);
  const double g2 = dev.linearConductance(1.2);
  EXPECT_GT(g1, 0.0);
  EXPECT_GT(g2, g1);
}

}  // namespace
}  // namespace nano::power
