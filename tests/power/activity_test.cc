#include "power/activity.h"

#include <gtest/gtest.h>

#include "circuit/generator.h"

namespace nano::power {
namespace {

using circuit::CellFunction;

TEST(OutputProbability, TruthTables) {
  EXPECT_DOUBLE_EQ(outputProbability(CellFunction::Inv, {0.3}), 0.7);
  EXPECT_DOUBLE_EQ(outputProbability(CellFunction::Buf, {0.3}), 0.3);
  EXPECT_DOUBLE_EQ(outputProbability(CellFunction::Nand2, {0.5, 0.5}), 0.75);
  EXPECT_DOUBLE_EQ(outputProbability(CellFunction::Nor2, {0.5, 0.5}), 0.25);
  EXPECT_DOUBLE_EQ(outputProbability(CellFunction::Xor2, {0.5, 0.5}), 0.5);
  EXPECT_NEAR(outputProbability(CellFunction::Nand3, {0.5, 0.5, 0.5}), 0.875,
              1e-12);
  EXPECT_NEAR(outputProbability(CellFunction::Nor3, {0.5, 0.5, 0.5}), 0.125,
              1e-12);
}

TEST(OutputProbability, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(outputProbability(CellFunction::Nand2, {1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(outputProbability(CellFunction::Nand2, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(outputProbability(CellFunction::Xor2, {1.0, 1.0}), 0.0);
}

TEST(OutputProbability, RejectsArityMismatch) {
  EXPECT_THROW(outputProbability(CellFunction::Nand2, {0.5}),
               std::invalid_argument);
  EXPECT_THROW(outputProbability(CellFunction::Inv, {0.5, 0.5}),
               std::invalid_argument);
}

struct Fixture {
  circuit::Library lib{tech::nodeByFeature(100)};
};

TEST(Propagate, InputsGetRequestedStats) {
  Fixture f;
  const auto nl = circuit::inverterChain(f.lib, 3);
  const ActivityResult r = propagateActivity(nl, 0.5, 0.3);
  EXPECT_DOUBLE_EQ(r.probability[0], 0.5);
  EXPECT_DOUBLE_EQ(r.activity[0], 0.3);
}

TEST(Propagate, InverterPreservesActivity) {
  // p -> 1-p has the same 2p(1-p), so a chain keeps the input activity.
  Fixture f;
  const auto nl = circuit::inverterChain(f.lib, 4);
  const ActivityResult r = propagateActivity(nl, 0.5, 0.3);
  for (int g : nl.gateIds()) {
    EXPECT_NEAR(r.activity[static_cast<std::size_t>(g)], 0.3, 1e-12);
  }
}

TEST(Propagate, NandOutputLessActiveThanInputsAtHalf) {
  // p_out = 0.75: activity factor 2*0.75*0.25 = 0.375 < 0.5.
  Fixture f;
  circuit::Netlist nl;
  const int a = nl.addInput();
  const int b = nl.addInput();
  const int g = nl.addGate(f.lib.pick(CellFunction::Nand2, 1.0), {a, b});
  nl.markOutput(g);
  const ActivityResult r = propagateActivity(nl, 0.5, 0.5);
  EXPECT_NEAR(r.activity[static_cast<std::size_t>(g)], 0.375, 1e-12);
}

TEST(Propagate, TemporalFactorScalesInternalNodes) {
  Fixture f;
  const auto nl = circuit::inverterChain(f.lib, 2);
  const ActivityResult lo = propagateActivity(nl, 0.5, 0.1);
  const ActivityResult hi = propagateActivity(nl, 0.5, 0.2);
  for (int g : nl.gateIds()) {
    EXPECT_NEAR(hi.activity[static_cast<std::size_t>(g)] /
                    lo.activity[static_cast<std::size_t>(g)],
                2.0, 1e-9);
  }
}

TEST(Propagate, ProbabilitiesStayInUnitInterval) {
  Fixture f;
  util::Rng rng(5);
  circuit::GeneratorConfig cfg;
  cfg.gates = 800;
  const auto nl = circuit::randomLogic(f.lib, cfg, rng);
  const ActivityResult r = propagateActivity(nl, 0.5, 0.2);
  for (int i = 0; i < nl.nodeCount(); ++i) {
    EXPECT_GE(r.probability[static_cast<std::size_t>(i)], 0.0);
    EXPECT_LE(r.probability[static_cast<std::size_t>(i)], 1.0);
    EXPECT_GE(r.activity[static_cast<std::size_t>(i)], 0.0);
    EXPECT_LE(r.activity[static_cast<std::size_t>(i)], 0.5001);
  }
}

TEST(Propagate, RejectsDegenerateProbability) {
  Fixture f;
  const auto nl = circuit::inverterChain(f.lib, 2);
  EXPECT_THROW(propagateActivity(nl, 0.0, 0.2), std::invalid_argument);
  EXPECT_THROW(propagateActivity(nl, 1.0, 0.2), std::invalid_argument);
}

}  // namespace
}  // namespace nano::power
