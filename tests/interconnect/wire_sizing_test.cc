#include "interconnect/wire_sizing.h"

#include <gtest/gtest.h>

namespace nano::interconnect {
namespace {

const tech::TechNode& node50() { return tech::nodeByFeature(50); }

TEST(WireSizing, WideningSpeedsUpRepeatedLines) {
  // Wider wires cut R linearly and raise C sub-linearly: delay/m of the
  // optimally repeated line falls monotonically with width.
  const auto sweep = sweepWireSizing(node50(), {1.0, 2.0, 4.0, 8.0});
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LT(sweep[i].delayPerMeter, sweep[i - 1].delayPerMeter);
  }
}

TEST(WireSizing, WideningCostsEnergy) {
  const auto sweep = sweepWireSizing(node50(), {1.0, 4.0, 8.0});
  EXPECT_GT(sweep.back().energyPerMeterBit, sweep.front().energyPerMeterBit);
}

TEST(WireSizing, SpacingCutsCouplingEnergy) {
  const auto sweep = sweepWireSizing(node50(), {2.0}, {1.0, 3.0});
  EXPECT_LT(sweep[1].energyPerMeterBit, sweep[0].energyPerMeterBit);
  EXPECT_GT(sweep[1].tracksPerWire, sweep[0].tracksPerWire);
}

TEST(WireSizing, TrackAccounting) {
  const auto sweep = sweepWireSizing(node50(), {3.0}, {2.0});
  EXPECT_NEAR(sweep[0].tracksPerWire, (3.0 + 2.0) / 2.0, 1e-9);
}

TEST(WireSizing, ParetoFrontierIsNonDominatedAndSorted) {
  const auto sweep =
      sweepWireSizing(node50(), {1.0, 2.0, 4.0, 8.0}, {1.0, 2.0});
  const auto frontier = paretoFrontier(sweep);
  ASSERT_GE(frontier.size(), 2u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].delayPerMeter, frontier[i - 1].delayPerMeter);
    EXPECT_LE(frontier[i].energyPerMeterBit, frontier[i - 1].energyPerMeterBit);
  }
  EXPECT_LE(frontier.size(), sweep.size());
}

TEST(WireSizing, ChoiceSpendsSlackForEnergy) {
  const WireSizingChoice choice = chooseWireSizing(node50(), 0.10);
  EXPECT_LE(choice.delayPaidFraction, 0.10 + 1e-9);
  EXPECT_GE(choice.energySavedFraction, 0.0);
  // The fastest geometry is the widest/densest: spending 10 % delay should
  // recover real energy on a resistive top-level stack.
  EXPECT_GT(choice.energySavedFraction, 0.05);
}

TEST(WireSizing, ZeroSlackDegeneratesToFastest) {
  const WireSizingChoice choice = chooseWireSizing(node50(), 0.0);
  EXPECT_NEAR(choice.delayPaidFraction, 0.0, 1e-9);
  EXPECT_NEAR(choice.energySavedFraction, 0.0, 0.05);
}

TEST(WireSizing, Rejections) {
  EXPECT_THROW(sweepWireSizing(node50(), {}), std::invalid_argument);
  EXPECT_THROW(sweepWireSizing(node50(), {0.0}), std::invalid_argument);
  EXPECT_THROW(chooseWireSizing(node50(), -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace nano::interconnect
