#include "interconnect/rlc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/units.h"

namespace nano::interconnect {
namespace {

using namespace nano::units;

WireGeometry globalWire() {
  return topLevelWire(tech::nodeByFeature(50));
}

TEST(WireL, InductanceInTextbookRange) {
  // On-chip wires run a few hundred pH/mm of loop inductance.
  const WireL l = computeWireL(globalWire(), 100 * um);
  EXPECT_GT(l.loopInductancePerM, 0.1e-6);  // > 0.1 uH/m = 100 pH/mm
  EXPECT_LT(l.loopInductancePerM, 3e-6);
  EXPECT_GT(l.selfInductancePerM, 0.0);
}

TEST(WireL, FartherReturnMoreLoopInductance) {
  const WireL near = computeWireL(globalWire(), 20 * um);
  const WireL far = computeWireL(globalWire(), 200 * um);
  EXPECT_GT(far.loopInductancePerM, near.loopInductancePerM);
}

TEST(WireL, MutualBelowSelf) {
  const WireL l = computeWireL(globalWire(), 100 * um);
  EXPECT_LT(l.mutualToNeighborPerM, l.selfInductancePerM);
  EXPECT_GE(l.mutualToNeighborPerM, 0.0);
}

TEST(WireL, RejectsBadReturn) {
  EXPECT_THROW(computeWireL(globalWire(), 0.0), std::invalid_argument);
}

TEST(RlcLine, TimeOfFlightBelowSpeedOfLightLimit) {
  const WireGeometry g = globalWire();
  const WireRc rc = computeWireRc(g);
  const WireL l = computeWireL(g, 100 * um);
  const double length = 1 * mm;
  const RlcReport rep = analyzeRlcLine(rc, l, length, 100.0, 10 * fF);
  // Signal velocity <= c/sqrt(er): flight time >= length * sqrt(er)/c.
  const double cLight = 3e8;
  EXPECT_GT(rep.timeOfFlight, length * std::sqrt(2.1) / cLight * 0.5);
  EXPECT_LT(rep.timeOfFlight, 60e-12);  // ~6.6 ps/mm at most here
}

TEST(RlcLine, LongResistiveLinesAreRcDominated) {
  const WireGeometry g = globalWire();
  const WireRc rc = computeWireRc(g);
  const WireL l = computeWireL(g, 100 * um);
  const RlcReport rep = analyzeRlcLine(rc, l, 10 * mm, 500.0, 10 * fF);
  EXPECT_GT(rep.attenuation, 1.0);
  EXPECT_FALSE(rep.inductanceMatters);
  EXPECT_DOUBLE_EQ(rep.delayEstimate, rep.rcDelay);
}

TEST(RlcLine, ShortFatLinesWithStrongDriversAreInductive) {
  // A wide unscaled wire driven hard over a short span: LC regime.
  WireGeometry g = unscaledGlobalWire(tech::nodeByFeature(50));
  g.width *= 4.0;
  const WireRc rc = computeWireRc(g);
  const WireL l = computeWireL(g, 100 * um);
  const RlcReport rep = analyzeRlcLine(rc, l, 0.5 * mm, 20.0, 5 * fF);
  EXPECT_LT(rep.attenuation, 1.0);
  EXPECT_TRUE(rep.inductanceMatters);
}

TEST(RlcLine, CharacteristicImpedanceReasonable) {
  // On-chip Z0 sits in the tens-to-few-hundred ohm range.
  const WireGeometry g = globalWire();
  const WireRc rc = computeWireRc(g);
  const WireL l = computeWireL(g, 100 * um);
  const RlcReport rep = analyzeRlcLine(rc, l, 1 * mm, 100.0, 1 * fF);
  EXPECT_GT(rep.characteristicImpedance, 20.0);
  EXPECT_LT(rep.characteristicImpedance, 500.0);
}

TEST(RlcLine, RejectsBadLength) {
  const WireGeometry g = globalWire();
  EXPECT_THROW(analyzeRlcLine(computeWireRc(g), computeWireL(g, 1e-4), 0.0,
                              100.0, 1e-15),
               std::invalid_argument);
}

TEST(RepeaterSegment, OptimalSegmentsSitAtRcRlcBoundary) {
  // A known result the model reproduces: delay-optimal repeater segments
  // are just at the edge of the inductive regime (attenuation ~ 0.3, time
  // of flight comparable to the RC delay) at EVERY node — which is why
  // the paper lists full-chip inductance extraction among the nanometer
  // signal-integrity challenges.
  for (int f : tech::roadmapFeatures()) {
    const RlcReport rep = repeaterSegmentRlc(tech::nodeByFeature(f));
    EXPECT_GT(rep.attenuation, 0.15) << f;
    EXPECT_LT(rep.attenuation, 0.8) << f;
    EXPECT_NEAR(rep.timeOfFlight / rep.rcDelay, 1.1, 0.4) << f;
    EXPECT_TRUE(rep.inductanceMatters) << f;
  }
}

}  // namespace
}  // namespace nano::interconnect
