#include "interconnect/elmore.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace nano::interconnect {
namespace {

using namespace nano::units;

TEST(RcTree, SingleRcStage) {
  RcTree t;
  const std::size_t n = t.addNode(0, 1000.0, 1 * pF);
  EXPECT_DOUBLE_EQ(t.elmoreDelay(n), 1000.0 * 1e-12);
}

TEST(RcTree, SourceResistanceSeesAllCap) {
  RcTree t(1 * pF);
  const std::size_t n = t.addNode(0, 1000.0, 1 * pF);
  // rsource * (2 pF) + 1k * 1 pF.
  EXPECT_DOUBLE_EQ(t.elmoreDelay(n, 500.0), 500.0 * 2e-12 + 1000.0 * 1e-12);
}

TEST(RcTree, LadderElmore) {
  // Two-stage ladder: R1=1k C1=1p, R2=2k C2=3p.
  RcTree t;
  const std::size_t a = t.addNode(0, 1000.0, 1 * pF);
  const std::size_t b = t.addNode(a, 2000.0, 3 * pF);
  // Elmore(b) = R1*(C1+C2) + R2*C2 = 1k*4p + 2k*3p = 10 ns.
  EXPECT_DOUBLE_EQ(t.elmoreDelay(b), 10e-9);
  // Elmore(a) = R1*(C1+C2) = 4 ns.
  EXPECT_DOUBLE_EQ(t.elmoreDelay(a), 4e-9);
}

TEST(RcTree, BranchCapCountsOnSharedPath) {
  RcTree t;
  const std::size_t stem = t.addNode(0, 1000.0, 0.0);
  const std::size_t left = t.addNode(stem, 500.0, 1 * pF);
  t.addNode(stem, 500.0, 2 * pF);  // right branch loads the stem
  // Elmore(left) = 1k*(1p+2p) + 500*1p.
  EXPECT_DOUBLE_EQ(t.elmoreDelay(left), 1000.0 * 3e-12 + 500.0 * 1e-12);
}

TEST(RcTree, AddCapAccumulates) {
  RcTree t;
  const std::size_t n = t.addNode(0, 1000.0, 1 * pF);
  t.addCap(n, 1 * pF);
  EXPECT_DOUBLE_EQ(t.elmoreDelay(n), 2e-9);
}

TEST(RcTree, Delay50IsScaledElmore) {
  RcTree t;
  const std::size_t n = t.addNode(0, 1000.0, 1 * pF);
  EXPECT_NEAR(t.delay50(n), 0.693e-9, 1e-15);
}

TEST(RcTree, Rejections) {
  RcTree t;
  EXPECT_THROW(t.addNode(5, 1.0, 1.0), std::out_of_range);
  EXPECT_THROW(t.addNode(0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(t.elmoreDelay(99)), std::out_of_range);
}

TEST(BuildLine, TotalCapConserved) {
  WireRc rc;
  rc.resistancePerM = 1e5;
  rc.groundCapPerM = 2e-10;
  rc.couplingCapPerM = 0.0;
  const LineTree lt = buildLine(rc, 1e-3, 10, 5 * fF);
  EXPECT_NEAR(lt.tree.totalCap(), 2e-10 * 1e-3 + 5 * fF, 1e-20);
}

TEST(BuildLine, ElmoreConvergesToHalfRC) {
  // Distributed line Elmore to the far end -> R*C/2 as segments -> inf.
  WireRc rc;
  rc.resistancePerM = 1e5;
  rc.groundCapPerM = 2e-10;
  rc.couplingCapPerM = 0.0;
  const double length = 2e-3;
  const double rTot = rc.resistancePerM * length;
  const double cTot = rc.groundCapPerM * length;
  const LineTree fine = buildLine(rc, length, 200);
  EXPECT_NEAR(fine.tree.elmoreDelay(fine.farEnd), 0.5 * rTot * cTot,
              0.01 * rTot * cTot);
}

TEST(BuildLine, MoreSegmentsMonotonicallyRefine) {
  WireRc rc;
  rc.resistancePerM = 1e5;
  rc.groundCapPerM = 2e-10;
  const LineTree coarse = buildLine(rc, 1e-3, 2);
  const LineTree fine = buildLine(rc, 1e-3, 64);
  // Both near R*C/2; coarse within 10 %.
  EXPECT_NEAR(coarse.tree.elmoreDelay(coarse.farEnd),
              fine.tree.elmoreDelay(fine.farEnd),
              0.1 * fine.tree.elmoreDelay(fine.farEnd));
}

TEST(BuildLine, Rejections) {
  WireRc rc;
  EXPECT_THROW(buildLine(rc, 1e-3, 0), std::invalid_argument);
  EXPECT_THROW(buildLine(rc, 0.0, 4), std::invalid_argument);
}

TEST(DistributedLineDelay, MatchesSakuraiForm) {
  WireRc rc;
  rc.resistancePerM = 1e5;
  rc.groundCapPerM = 2e-10;
  const double d = distributedLineDelay(rc, 1e-3, 1000.0, 10 * fF);
  const double r = 100.0, c = 2e-13;
  EXPECT_NEAR(d, 0.377 * r * c + 0.693 * (1000 * c + 1000 * 10e-15 + r * 10e-15),
              1e-18);
}

TEST(DistributedLineDelay, QuadraticInLength) {
  WireRc rc;
  rc.resistancePerM = 1e5;
  rc.groundCapPerM = 2e-10;
  // With no driver/load the wire term dominates and scales as L^2.
  const double d1 = distributedLineDelay(rc, 1e-3, 0.0, 0.0);
  const double d2 = distributedLineDelay(rc, 2e-3, 0.0, 0.0);
  EXPECT_NEAR(d2 / d1, 4.0, 1e-9);
}


TEST(Moments, SingleLumpExact) {
  // Single R-C: m1 = RC, m2 = (RC)^2, D2M = 0.693*RC exactly.
  RcTree t;
  const std::size_t n = t.addNode(0, 1000.0, 1 * pF);
  EXPECT_DOUBLE_EQ(t.secondMoment(n), 1e-9 * 1e-9);
  EXPECT_NEAR(t.delayD2M(n), 0.693e-9, 1e-15);
  EXPECT_NEAR(t.delayD2M(n), t.delay50(n), 1e-15);
}

TEST(Moments, SourceResistanceIncluded) {
  RcTree t;
  const std::size_t n = t.addNode(0, 0.0, 1 * pF);
  // All the resistance in the source: again a single pole.
  EXPECT_NEAR(t.delayD2M(n, 2000.0), 0.693 * 2e-9, 1e-15);
}

TEST(Moments, D2mCorrectsElmoreAtFarEndOfLine) {
  // Far end of a bare distributed line: m1 = RC/2, m2 = (5/24)(RC)^2, so
  // 0.693*Elmore = 0.347*RC UNDER-estimates the true ~0.377*RC 50 % point
  // while D2M = 0.3796*RC nails it. D2M must sit above delay50 here.
  WireRc rc;
  rc.resistancePerM = 1e5;
  rc.groundCapPerM = 2e-10;
  const LineTree lt = buildLine(rc, 2e-3, 50);
  EXPECT_GT(lt.tree.delayD2M(lt.farEnd), lt.tree.delay50(lt.farEnd));
}

TEST(Moments, D2mMatchesSakuraiWithinOnePercent) {
  // The analytic far-end D2M of a distributed line is 0.3796*RC vs
  // Sakurai's fitted 0.377*RC: agreement within ~1 %.
  WireRc rc;
  rc.resistancePerM = 2e5;
  rc.groundCapPerM = 2e-10;
  const double length = 3e-3;
  const LineTree lt = buildLine(rc, length, 200);
  const double rTot = rc.resistancePerM * length;
  const double cTot = rc.groundCapPerM * length;
  EXPECT_NEAR(lt.tree.delayD2M(lt.farEnd), 0.377 * rTot * cTot,
              0.015 * 0.377 * rTot * cTot);
}

TEST(Moments, DriverDominatedLineDegeneratesToSinglePole) {
  // A big driver resistance swamps the wire: the response is one pole and
  // D2M converges to 0.693*Elmore from below.
  WireRc rc;
  rc.resistancePerM = 1e5;
  rc.groundCapPerM = 2e-10;
  const LineTree lt = buildLine(rc, 1e-3, 50);
  const double rdrv = 50.0 * rc.resistancePerM * 1e-3;  // 50x wire R
  EXPECT_NEAR(lt.tree.delayD2M(lt.farEnd, rdrv),
              lt.tree.delay50(lt.farEnd, rdrv),
              0.02 * lt.tree.delay50(lt.farEnd, rdrv));
}

TEST(Moments, SecondMomentRejectsBadNode) {
  RcTree t;
  EXPECT_THROW(static_cast<void>(t.secondMoment(5)), std::out_of_range);
}

}  // namespace
}  // namespace nano::interconnect
