#include "interconnect/wire.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/units.h"

namespace nano::interconnect {
namespace {

using namespace nano::units;

WireGeometry referenceWire() {
  WireGeometry g;
  g.width = 0.5 * um;
  g.spacing = 0.5 * um;
  g.thickness = 1.0 * um;
  g.ildThickness = 0.8 * um;
  g.resistivity = 2.2e-8;
  g.permittivity = 3.5;
  return g;
}

TEST(WireRc, ResistanceFromGeometry) {
  const WireRc rc = computeWireRc(referenceWire());
  EXPECT_NEAR(rc.resistancePerM, 2.2e-8 / (0.5e-6 * 1.0e-6), 1.0);
}

TEST(WireRc, CapacitanceInRealisticRange) {
  // Global wires run ~0.15-0.35 fF/um total.
  const WireRc rc = computeWireRc(referenceWire());
  EXPECT_GT(rc.totalCapPerM(), 0.10 * fF_per_um);
  EXPECT_LT(rc.totalCapPerM(), 0.50 * fF_per_um);
}

TEST(WireRc, WideningCutsResistanceRaisesGroundCap) {
  WireGeometry g = referenceWire();
  const WireRc base = computeWireRc(g);
  g.width *= 2.0;
  const WireRc wide = computeWireRc(g);
  EXPECT_NEAR(wide.resistancePerM, base.resistancePerM / 2.0, 1.0);
  EXPECT_GT(wide.groundCapPerM, base.groundCapPerM);
}

TEST(WireRc, SpacingControlsCoupling) {
  WireGeometry g = referenceWire();
  const WireRc tight = computeWireRc(g);
  g.spacing *= 3.0;
  const WireRc loose = computeWireRc(g);
  EXPECT_LT(loose.couplingCapPerM, tight.couplingCapPerM);
  // Power ~ s^-1.34: tripling spacing cuts coupling ~4.4x.
  EXPECT_NEAR(tight.couplingCapPerM / loose.couplingCapPerM,
              std::pow(3.0, 1.34), 0.3);
}

TEST(WireRc, LowKDielectricCutsCap) {
  WireGeometry g = referenceWire();
  const WireRc hiK = computeWireRc(g);
  g.permittivity = 2.0;
  const WireRc loK = computeWireRc(g);
  EXPECT_NEAR(loK.totalCapPerM() / hiK.totalCapPerM(), 2.0 / 3.5, 1e-9);
}

TEST(WireRc, WorstCaseMillerDoublesCoupling) {
  const WireRc rc = computeWireRc(referenceWire());
  EXPECT_NEAR(rc.worstCaseCapPerM() - rc.totalCapPerM(),
              2.0 * rc.couplingCapPerM, 1e-18);
}

TEST(WireRc, RejectsBadGeometry) {
  WireGeometry g = referenceWire();
  g.width = 0.0;
  EXPECT_THROW(computeWireRc(g), std::invalid_argument);
  g = referenceWire();
  g.spacing = -1.0;
  EXPECT_THROW(computeWireRc(g), std::invalid_argument);
}

TEST(TopLevelWire, FollowsNodePitch) {
  const auto& node = tech::nodeByFeature(50);
  const WireGeometry g = topLevelWire(node);
  EXPECT_DOUBLE_EQ(g.width, node.minGlobalWireWidth());
  EXPECT_DOUBLE_EQ(g.thickness, node.globalWireThickness());
  EXPECT_DOUBLE_EQ(g.permittivity, node.ildPermittivity);
}

TEST(TopLevelWire, WidthMultipleScales) {
  const auto& node = tech::nodeByFeature(50);
  const WireGeometry g = topLevelWire(node, 4.0);
  EXPECT_DOUBLE_EQ(g.width, 4.0 * node.minGlobalWireWidth());
}

TEST(UnscaledGlobalWire, Is180nmGeometryEverywhere) {
  for (int f : {180, 35}) {
    const WireGeometry g = unscaledGlobalWire(tech::nodeByFeature(f));
    EXPECT_DOUBLE_EQ(g.width, 0.6 * um);
    EXPECT_DOUBLE_EQ(g.thickness, 1.2 * um);
  }
}

TEST(UnscaledGlobalWire, MuchLowerResistanceAtSmallNodes) {
  const auto& node = tech::nodeByFeature(35);
  const WireRc scaled = computeWireRc(topLevelWire(node));
  const WireRc unscaled = computeWireRc(unscaledGlobalWire(node));
  EXPECT_LT(unscaled.resistancePerM, scaled.resistancePerM / 5.0);
}

}  // namespace
}  // namespace nano::interconnect
