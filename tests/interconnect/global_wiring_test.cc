#include "interconnect/global_wiring.h"

#include <gtest/gtest.h>

namespace nano::interconnect {
namespace {

TEST(GlobalWiring, RepeaterCountMatchesPaperAnchors) {
  // Paper Section 2.2 / [11]: ~10^4 repeaters in a large 180 nm design,
  // nearly 10^6 at 50 nm.
  const auto at180 = analyzeGlobalWiring(tech::nodeByFeature(180));
  const auto at50 = analyzeGlobalWiring(tech::nodeByFeature(50));
  EXPECT_GT(at180.repeaterCount, 3e3);
  EXPECT_LT(at180.repeaterCount, 5e4);
  EXPECT_GT(at50.repeaterCount, 2e5);
  EXPECT_LT(at50.repeaterCount, 2e6);
}

TEST(GlobalWiring, PowerExceeds50WInNanometerRegime) {
  // Paper: "this requires over 50 W of power in the nanometer regime".
  const auto at35 = analyzeGlobalWiring(tech::nodeByFeature(35));
  EXPECT_GT(at35.power.total(), 40.0);
  EXPECT_LT(at35.power.total(), 120.0);
}

TEST(GlobalWiring, PowerGrowsDownTheRoadmap) {
  double prev = 0.0;
  for (int f : tech::roadmapFeatures()) {
    const auto rep = analyzeGlobalWiring(tech::nodeByFeature(f));
    EXPECT_GT(rep.power.total(), prev);
    prev = rep.power.total();
  }
}

TEST(GlobalWiring, UnscaledWiresMeetGlobalClock) {
  // Paper / [9]: with unscaled top-level wiring the ITRS global clock can
  // be met: a die crossing takes ~1 global cycle even at the end of the
  // roadmap (vs several cycles on scaled wires).
  GlobalWiringOptions unscaled;
  unscaled.unscaledWires = true;
  for (int f : tech::roadmapFeatures()) {
    const auto& node = tech::nodeByFeature(f);
    const auto repU = analyzeGlobalWiring(node, unscaled);
    EXPECT_LT(repU.cyclesToCrossDie, 1.6) << f;
    const auto repS = analyzeGlobalWiring(node);
    EXPECT_GE(repS.cyclesToCrossDie, repU.cyclesToCrossDie * 0.99) << f;
  }
}

TEST(GlobalWiring, ScaledWiresNeedMultipleCyclesAtEndOfRoadmap) {
  const auto rep = analyzeGlobalWiring(tech::nodeByFeature(35));
  EXPECT_GT(rep.cyclesToCrossDie, 2.0);
}

TEST(GlobalWiring, NetCountGrowsWithIntegration) {
  double prev = 0.0;
  for (int f : tech::roadmapFeatures()) {
    const auto rep = analyzeGlobalWiring(tech::nodeByFeature(f));
    EXPECT_GT(rep.globalNetCount, prev);
    prev = rep.globalNetCount;
  }
}

TEST(GlobalWiring, RepeaterAreaFractionSmallButGrowing) {
  const auto at180 = analyzeGlobalWiring(tech::nodeByFeature(180));
  const auto at35 = analyzeGlobalWiring(tech::nodeByFeature(35));
  EXPECT_LT(at180.repeaterAreaFraction, 0.05);
  EXPECT_GT(at35.repeaterAreaFraction, at180.repeaterAreaFraction);
}

TEST(GlobalWiring, ActivityScalesSwitchingPowerOnly) {
  GlobalWiringOptions lo, hi;
  lo.activity = 0.1;
  hi.activity = 0.2;
  const auto& node = tech::nodeByFeature(70);
  const auto repLo = analyzeGlobalWiring(node, lo);
  const auto repHi = analyzeGlobalWiring(node, hi);
  EXPECT_NEAR(repHi.power.wire, 2.0 * repLo.power.wire, 1e-9);
  EXPECT_NEAR(repHi.power.leakage, repLo.power.leakage, 1e-12);
}

TEST(GlobalWiring, TotalWireLengthConsistent) {
  const auto rep = analyzeGlobalWiring(tech::nodeByFeature(100));
  EXPECT_NEAR(rep.totalWireLength, rep.globalNetCount * rep.avgNetLength,
              1e-9 * rep.totalWireLength);
}

}  // namespace
}  // namespace nano::interconnect
