#include "interconnect/repeater.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/units.h"

namespace nano::interconnect {
namespace {

using namespace nano::units;

struct Fixture {
  const tech::TechNode& node = tech::nodeByFeature(100);
  RepeaterDriver driver = RepeaterDriver::fromNode(node);
  WireRc rc = computeWireRc(topLevelWire(node));
};

TEST(RepeaterDriver, SaneUnitValues) {
  Fixture f;
  EXPECT_GT(f.driver.unitResistance, 1 * kohm);
  EXPECT_LT(f.driver.unitResistance, 50 * kohm);
  EXPECT_GT(f.driver.unitInputCap, 0.05 * fF);
  EXPECT_LT(f.driver.unitInputCap, 5 * fF);
  EXPECT_LT(f.driver.unitOutputCap, f.driver.unitInputCap);
  EXPECT_GT(f.driver.unitArea, 0.0);
}

TEST(ClosedForm, OptimalSizeAndLengthInKnownRange) {
  Fixture f;
  const RepeaterDesign d = optimalRepeatersClosedForm(f.driver, f.rc);
  // Optimal repeaters are O(100x) minimum size spaced O(mm) apart.
  EXPECT_GT(d.size, 20.0);
  EXPECT_LT(d.size, 1000.0);
  EXPECT_GT(d.segmentLength, 0.1 * mm);
  EXPECT_LT(d.segmentLength, 10.0 * mm);
}

TEST(ClosedForm, MatchesBakogluFormulas) {
  Fixture f;
  const RepeaterDesign d = optimalRepeatersClosedForm(f.driver, f.rc);
  const double r = f.rc.resistancePerM, c = f.rc.totalCapPerM();
  EXPECT_NEAR(d.size,
              std::sqrt(f.driver.unitResistance * c /
                        (r * f.driver.unitInputCap)),
              1e-9);
  EXPECT_NEAR(d.segmentLength,
              std::sqrt(2.0 * f.driver.unitResistance *
                        (f.driver.unitInputCap + f.driver.unitOutputCap) /
                        (r * c)),
              1e-12);
}

TEST(NumericOptimum, AgreesWithClosedFormWithinFivePercent) {
  Fixture f;
  const RepeaterDesign cf = optimalRepeatersClosedForm(f.driver, f.rc);
  const RepeaterDesign num = optimalRepeatersNumeric(f.driver, f.rc);
  EXPECT_NEAR(num.delayPerMeter, cf.delayPerMeter, 0.05 * cf.delayPerMeter);
  // The numeric optimum can only be at least as good.
  EXPECT_LE(num.delayPerMeter, cf.delayPerMeter * 1.0001);
}

TEST(NumericOptimum, IsALocalMinimum) {
  Fixture f;
  const RepeaterDesign d = optimalRepeatersNumeric(f.driver, f.rc);
  auto perM = [&](double size, double len) {
    return repeaterSegmentDelay(f.driver, f.rc, size, len) / len;
  };
  const double best = perM(d.size, d.segmentLength);
  EXPECT_LE(best, perM(d.size * 1.2, d.segmentLength));
  EXPECT_LE(best, perM(d.size / 1.2, d.segmentLength));
  EXPECT_LE(best, perM(d.size, d.segmentLength * 1.2));
  EXPECT_LE(best, perM(d.size, d.segmentLength / 1.2));
}

TEST(SegmentDelay, MonotoneInLengthBeyondOptimum) {
  Fixture f;
  const RepeaterDesign d = optimalRepeatersNumeric(f.driver, f.rc);
  EXPECT_GT(repeaterSegmentDelay(f.driver, f.rc, d.size, 4 * d.segmentLength),
            repeaterSegmentDelay(f.driver, f.rc, d.size, d.segmentLength));
}

TEST(SegmentDelay, Rejections) {
  Fixture f;
  EXPECT_THROW(repeaterSegmentDelay(f.driver, f.rc, 0.0, 1e-3),
               std::invalid_argument);
  EXPECT_THROW(repeaterSegmentDelay(f.driver, f.rc, 10.0, 0.0),
               std::invalid_argument);
}

TEST(RepeatedLine, DelayLinearInLength) {
  Fixture f;
  const RepeaterDesign d = optimalRepeatersNumeric(f.driver, f.rc);
  const double d10 = repeatedLineDelay(f.driver, f.rc, d, 10 * mm);
  const double d20 = repeatedLineDelay(f.driver, f.rc, d, 20 * mm);
  EXPECT_NEAR(d20 / d10, 2.0, 0.1);
}

TEST(RepeatedLine, BeatsUnrepeatedForLongWires) {
  Fixture f;
  const RepeaterDesign d = optimalRepeatersNumeric(f.driver, f.rc);
  const double length = 10 * mm;
  const double repeated = repeatedLineDelay(f.driver, f.rc, d, length);
  // Unrepeated: one min-size driver into the whole line.
  const double unrepeated =
      repeaterSegmentDelay(f.driver, f.rc, 1.0, length);
  EXPECT_LT(repeated, unrepeated / 5.0);
}

TEST(RepeaterCount, RoundsToSegments) {
  Fixture f;
  RepeaterDesign d;
  d.segmentLength = 1 * mm;
  EXPECT_DOUBLE_EQ(repeaterCountForLength(d, 10 * mm), 10.0);
  EXPECT_DOUBLE_EQ(repeaterCountForLength(d, 0.2 * mm), 1.0);
}

TEST(LinePower, ComponentsPositiveAndWireDominatesAtOptimum) {
  Fixture f;
  const RepeaterDesign d = optimalRepeatersNumeric(f.driver, f.rc);
  const LinePower p =
      repeatedLinePower(f.driver, f.rc, d, 10 * mm, 1 * GHz, 0.15);
  EXPECT_GT(p.wire, 0.0);
  EXPECT_GT(p.repeaterDyn, 0.0);
  EXPECT_GE(p.leakage, 0.0);
  EXPECT_NEAR(p.total(), p.wire + p.repeaterDyn + p.leakage, 1e-15);
  // At the delay-optimal point repeater cap is comparable to wire cap.
  EXPECT_GT(p.repeaterDyn / p.wire, 0.3);
  EXPECT_LT(p.repeaterDyn / p.wire, 3.0);
}

TEST(LinePower, LinearInActivityAndFrequency) {
  Fixture f;
  const RepeaterDesign d = optimalRepeatersNumeric(f.driver, f.rc);
  const LinePower a =
      repeatedLinePower(f.driver, f.rc, d, 10 * mm, 1 * GHz, 0.1);
  const LinePower b =
      repeatedLinePower(f.driver, f.rc, d, 10 * mm, 2 * GHz, 0.1);
  EXPECT_NEAR(b.wire, 2.0 * a.wire, 1e-12);
  EXPECT_NEAR(b.repeaterDyn, 2.0 * a.repeaterDyn, 1e-12);
  EXPECT_NEAR(b.leakage, a.leakage, 1e-12);  // leakage freq-independent
}

// Scaling sweep: optimal segment length shrinks with the node (wires get
// more resistive faster than gates improve).
class RepeaterScaling : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RepeaterScaling, SegmentLengthShrinks) {
  const auto [bigNode, smallNode] = GetParam();
  const auto& big = tech::nodeByFeature(bigNode);
  const auto& small = tech::nodeByFeature(smallNode);
  const RepeaterDesign dBig = optimalRepeatersNumeric(
      RepeaterDriver::fromNode(big), computeWireRc(topLevelWire(big)));
  const RepeaterDesign dSmall = optimalRepeatersNumeric(
      RepeaterDriver::fromNode(small), computeWireRc(topLevelWire(small)));
  EXPECT_LT(dSmall.segmentLength, dBig.segmentLength);
}

INSTANTIATE_TEST_SUITE_P(Pairs, RepeaterScaling,
                         ::testing::Values(std::pair{180, 130},
                                           std::pair{130, 100},
                                           std::pair{100, 70},
                                           std::pair{70, 50},
                                           std::pair{50, 35}));

}  // namespace
}  // namespace nano::interconnect
