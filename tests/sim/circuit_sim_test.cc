#include "sim/circuit_sim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/obs.h"
#include "util/units.h"

namespace nano::sim {
namespace {

using namespace nano::units;

TEST(Waveform, DcConstant) {
  const Waveform w = Waveform::dc(1.5);
  EXPECT_DOUBLE_EQ(w.at(0.0), 1.5);
  EXPECT_DOUBLE_EQ(w.at(1e9), 1.5);
}

TEST(Waveform, PulseShape) {
  const Waveform w = Waveform::pulse(0.0, 1.0, 1e-9, 1e-9, 2e-9, 1e-9);
  EXPECT_DOUBLE_EQ(w.at(0.5e-9), 0.0);
  EXPECT_NEAR(w.at(1.5e-9), 0.5, 1e-9);  // mid-rise
  EXPECT_DOUBLE_EQ(w.at(3e-9), 1.0);     // plateau
  EXPECT_NEAR(w.at(4.5e-9), 0.5, 1e-9);  // mid-fall
  EXPECT_DOUBLE_EQ(w.at(6e-9), 0.0);
}

TEST(Waveform, PulsePeriodic) {
  const Waveform w = Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-9, 1e-12, 2e-9);
  EXPECT_DOUBLE_EQ(w.at(0.5e-9), 1.0);
  EXPECT_DOUBLE_EQ(w.at(1.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(w.at(2.5e-9), 1.0);
}

TEST(Waveform, PwlInterpolates) {
  const Waveform w = Waveform::pwl({{0.0, 0.0}, {1e-9, 1.0}, {2e-9, 0.5}});
  EXPECT_DOUBLE_EQ(w.at(-1.0), 0.0);
  EXPECT_NEAR(w.at(0.5e-9), 0.5, 1e-9);
  EXPECT_NEAR(w.at(1.5e-9), 0.75, 1e-9);
  EXPECT_DOUBLE_EQ(w.at(5e-9), 0.5);
  EXPECT_THROW(Waveform::pwl({}), std::invalid_argument);
}

TEST(Simulator, ResistorDividerDc) {
  Circuit ckt;
  const int top = ckt.node();
  const int mid = ckt.node();
  ckt.add(VoltageSource{top, 0, Waveform::dc(2.0)});
  ckt.add(Resistor{top, mid, 1000.0});
  ckt.add(Resistor{mid, 0, 1000.0});
  Simulator sim(ckt);
  const auto v = sim.dcOperatingPoint();
  EXPECT_NEAR(v[static_cast<std::size_t>(mid)], 1.0, 1e-6);
}

TEST(Simulator, RcStepResponse) {
  Circuit ckt;
  const int in = ckt.node();
  const int out = ckt.node();
  ckt.add(VoltageSource{in, 0, Waveform::pulse(0, 1.0, 0.1e-9, 1e-12, 1.0, 1e-12)});
  ckt.add(Resistor{in, out, 1000.0});
  ckt.add(Capacitor{out, 0, 1 * pF});
  Simulator sim(ckt);
  const TransientResult tr = sim.transient(5 * ns, 5 * ps);
  // 50 % at delay + 0.693*tau = 0.1 + 0.693 ns.
  EXPECT_NEAR(tr.crossingTime(out, 0.5, true), 0.793e-9, 0.01e-9);
  // 90 % at delay + 2.303*tau.
  EXPECT_NEAR(tr.crossingTime(out, 0.9, true), 0.1e-9 + 2.303e-9, 0.03e-9);
}

TEST(Simulator, CurrentSourceIntoCapIntegrates) {
  Circuit ckt;
  const int n = ckt.node();
  ckt.add(CurrentSource{0, n, Waveform::dc(1 * uA)});
  ckt.add(Capacitor{n, 0, 1 * pF});
  // Needs a DC path for the operating point: large bleed resistor.
  ckt.add(Resistor{n, 0, 1e12});
  Simulator sim(ckt);
  const TransientResult tr = sim.transient(1 * ns, 1 * ps);
  // dV/dt = I/C = 1e6 V/s -> 1 mV at 1 ns... wait: 1 uA / 1 pF = 1e6 V/s,
  // so 1 mV/ns... the initial DC point already sits at I*R; use the delta.
  const double v0 = tr.voltages.front()[static_cast<std::size_t>(n)];
  const double v1 = tr.voltages.back()[static_cast<std::size_t>(n)];
  EXPECT_NEAR(v1 - v0, 1e-3, 2e-4);
}

TEST(Simulator, InverterDcTransfersLogicLevels) {
  const auto& node = tech::nodeByFeature(100);
  const double vth = device::solveVthForIon(node, node.ionTarget);
  auto model = std::make_shared<device::Mosfet>(
      device::Mosfet::fromNode(node, vth));
  Circuit ckt;
  const int vdd = ckt.node();
  const int in = ckt.node();
  const int out = ckt.node();
  ckt.add(VoltageSource{vdd, 0, Waveform::dc(node.vdd)});
  ckt.add(VoltageSource{in, 0, Waveform::dc(0.0)});
  ckt.addInverter(in, out, vdd, model, 0.4e-6, 0.8e-6);
  Simulator sim(ckt);
  const auto lo = sim.dcOperatingPoint();
  EXPECT_NEAR(lo[static_cast<std::size_t>(out)], node.vdd, 0.02);

  Circuit ckt2;
  const int vdd2 = ckt2.node();
  const int in2 = ckt2.node();
  const int out2 = ckt2.node();
  ckt2.add(VoltageSource{vdd2, 0, Waveform::dc(node.vdd)});
  ckt2.add(VoltageSource{in2, 0, Waveform::dc(node.vdd)});
  ckt2.addInverter(in2, out2, vdd2, model, 0.4e-6, 0.8e-6);
  Simulator sim2(ckt2);
  const auto hi = sim2.dcOperatingPoint();
  EXPECT_NEAR(hi[static_cast<std::size_t>(out2)], 0.0, 0.02);
}

TEST(Simulator, TransientRejectsBadArgs) {
  Circuit ckt;
  const int n = ckt.node();
  ckt.add(Resistor{n, 0, 1.0});
  Simulator sim(ckt);
  EXPECT_THROW(sim.transient(0.0, 1e-12), std::invalid_argument);
  EXPECT_THROW(sim.transient(1e-9, 0.0), std::invalid_argument);
}

TEST(Circuit, AddMosfetWithoutModelThrows) {
  Circuit ckt;
  MosfetElement m;
  m.model = nullptr;
  EXPECT_THROW(ckt.add(m), std::invalid_argument);
}

Circuit midRailInverter(const tech::TechNode& node) {
  const double vth = device::solveVthForIon(node, node.ionTarget);
  auto model = std::make_shared<device::Mosfet>(
      device::Mosfet::fromNode(node, vth));
  Circuit ckt;
  const int vdd = ckt.node();
  const int in = ckt.node();
  const int out = ckt.node();
  ckt.add(VoltageSource{vdd, 0, Waveform::dc(node.vdd)});
  ckt.add(VoltageSource{in, 0, Waveform::dc(0.5 * node.vdd)});
  ckt.addInverter(in, out, vdd, model, 0.4e-6, 0.8e-6);
  return ckt;
}

TEST(Simulator, NewtonExhaustionReportsDiagnostics) {
  // One Newton iteration on a nonlinear circuit: the damped update (0.3 V
  // clamp) cannot reach the 1e-7 V tolerance, so the solve must exit with
  // a MaxIterations diagnostic instead of a silent bad answer.
  SimOptions opt;
  opt.maxNewton = 1;
  // The simulator keeps a pointer to the circuit: it must outlive the sim.
  const Circuit ckt = midRailInverter(tech::nodeByFeature(100));
  Simulator sim(ckt, opt);

  obs::MetricsRegistry::instance().reset();
  const bool wasEnabled = obs::enabled();
  obs::setEnabled(true);
  sim.dcOperatingPoint();
  obs::setEnabled(wasEnabled);

  const util::Diagnostics& d = sim.lastSolveDiagnostics();
  EXPECT_EQ(d.status, util::SolverStatus::MaxIterations);
  EXPECT_EQ(d.iterations, 1);
  EXPECT_GE(d.residual, opt.vTolerance);
  EXPECT_STREQ(d.kernel, "sim/newton");
  EXPECT_EQ(obs::MetricsRegistry::instance()
                .counter("sim/newton_nonconverged")
                .value(),
            1);
}

TEST(Simulator, TransientCountsNonconvergedSteps) {
  SimOptions opt;
  opt.maxNewton = 1;
  const Circuit ckt = midRailInverter(tech::nodeByFeature(100));
  Simulator sim(ckt, opt);
  const TransientResult tr = sim.transient(10 * ps, 1 * ps);
  EXPECT_GT(tr.nonconvergedSteps, 0);
  EXPECT_EQ(tr.worstStep.status, util::SolverStatus::MaxIterations);
  EXPECT_STREQ(tr.worstStep.kernel, "sim/newton");
  // Every recorded waveform sample stays finite: the best iterate is kept,
  // never a poisoned one.
  for (const auto& step : tr.voltages) {
    for (double v : step) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Simulator, NanSourceRecoversPreviousState) {
  Circuit ckt;
  const int n = ckt.node();
  ckt.add(VoltageSource{n, 0, Waveform::dc(std::nan(""))});
  ckt.add(Resistor{n, 0, 1000.0});
  Simulator sim(ckt);
  const auto v = sim.dcOperatingPoint();
  EXPECT_EQ(sim.lastSolveDiagnostics().status,
            util::SolverStatus::NanDetected);
  // Per-point recovery: the previous (zero) state survives, the NaN does
  // not leak into the reported voltages.
  EXPECT_TRUE(std::isfinite(v[static_cast<std::size_t>(n)]));
}

TEST(Simulator, ConvergedSolveReportsCleanDiagnostics) {
  Circuit ckt;
  const int top = ckt.node();
  const int mid = ckt.node();
  ckt.add(VoltageSource{top, 0, Waveform::dc(2.0)});
  ckt.add(Resistor{top, mid, 1000.0});
  ckt.add(Resistor{mid, 0, 1000.0});
  Simulator sim(ckt);
  sim.dcOperatingPoint();
  const util::Diagnostics& d = sim.lastSolveDiagnostics();
  EXPECT_TRUE(d.ok());
  EXPECT_GT(d.iterations, 0);
  EXPECT_LT(d.residual, 1e-7);
}

TEST(TransientResult, CrossingDetectsDirection) {
  TransientResult tr;
  tr.time = {0.0, 1.0, 2.0, 3.0};
  tr.voltages = {{0.0, 0.0}, {0.0, 1.0}, {0.0, 0.5}, {0.0, 0.0}};
  EXPECT_NEAR(tr.crossingTime(1, 0.5, true), 0.5, 1e-12);
  EXPECT_NEAR(tr.crossingTime(1, 0.4, false, 1.0), 2.2, 1e-12);
  EXPECT_DOUBLE_EQ(tr.crossingTime(1, 2.0, true), -1.0);
}

TEST(TransientResult, AtInterpolates) {
  TransientResult tr;
  tr.time = {0.0, 1.0};
  tr.voltages = {{0.0, 0.0}, {0.0, 2.0}};
  EXPECT_NEAR(tr.at(1, 0.5), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(tr.at(1, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(tr.at(1, 5.0), 2.0);
}

}  // namespace
}  // namespace nano::sim
