// Cross-validation: the waveform-level simulator against the analytic
// models used everywhere else (gate delay, Elmore wire delay, low-swing
// sensing). This is the evidence that the closed-form models the paper's
// analysis rests on are consistent with circuit-level behavior.
#include <gtest/gtest.h>

#include "device/gate_model.h"
#include "interconnect/elmore.h"
#include "sim/circuit_sim.h"
#include "util/units.h"

namespace nano {
namespace {

using namespace nano::units;

struct InverterChainFixture {
  const tech::TechNode& node = tech::nodeByFeature(100);
  double vth = device::solveVthForIon(node, node.ionTarget);
  std::shared_ptr<device::Mosfet> model =
      std::make_shared<device::Mosfet>(device::Mosfet::fromNode(node, vth));
  device::InverterModel inv{node, vth, node.vdd};
};

TEST(Validation, InverterChainDelayWithinTwoXOfAnalyticModel) {
  InverterChainFixture f;
  sim::Circuit ckt;
  const int vdd = ckt.node();
  ckt.add(sim::VoltageSource{vdd, 0, sim::Waveform::dc(f.node.vdd)});
  const int in = ckt.node();
  ckt.add(sim::VoltageSource{
      in, 0, sim::Waveform::pulse(0, f.node.vdd, 20 * ps, 5 * ps, 1.0, 5 * ps)});
  std::vector<int> outs;
  int prev = in;
  for (int i = 0; i < 6; ++i) {
    const int out = ckt.node();
    ckt.addInverter(prev, out, vdd, f.model, f.inv.wn(), f.inv.wp());
    outs.push_back(out);
    prev = out;
  }
  sim::Simulator sim(ckt);
  const auto tr = sim.transient(400 * ps, 0.25 * ps);
  const double mid = 0.5 * f.node.vdd;
  // Average stage-pair delay between stages 2 and 4 (same edge polarity).
  const double t2 = tr.crossingTime(outs[2], mid, false);
  const double t4 = tr.crossingTime(outs[4], mid, false);
  ASSERT_GT(t2, 0.0);
  ASSERT_GT(t4, 0.0);
  const double simStage = (t4 - t2) / 2.0;
  const double modelStage = f.inv.delay(f.inv.inputCap());
  EXPECT_GT(simStage, 0.4 * modelStage);
  EXPECT_LT(simStage, 2.0 * modelStage);
}

TEST(Validation, SimulatedRcLineMatchesElmoreEstimate) {
  interconnect::WireRc rc;
  rc.resistancePerM = 1e5;
  rc.groundCapPerM = 2e-10;
  rc.couplingCapPerM = 0.0;
  const double length = 2 * mm;
  const int segments = 20;

  sim::Circuit ckt;
  const int in = ckt.node();
  ckt.add(sim::VoltageSource{
      in, 0, sim::Waveform::pulse(0, 1.0, 10 * ps, 1 * ps, 1.0, 1 * ps)});
  const double rSeg = rc.resistancePerM * length / segments;
  const double cSeg = rc.totalCapPerM() * length / segments;
  int prev = in;
  int far = in;
  for (int i = 0; i < segments; ++i) {
    const int next = ckt.node();
    ckt.add(sim::Resistor{prev, next, rSeg});
    ckt.add(sim::Capacitor{next, 0, cSeg});
    prev = next;
    far = next;
  }
  sim::Simulator sim(ckt);
  const auto tr = sim.transient(200 * ps, 0.2 * ps);
  const double t50 = tr.crossingTime(far, 0.5, true) - 10 * ps;

  const interconnect::LineTree lt =
      interconnect::buildLine(rc, length, segments);
  const double elmore50 = lt.tree.delay50(lt.farEnd);
  // The 0.693*Elmore fit is a first-order estimate; distributed lines come
  // in somewhat faster. Expect agreement within ~40 %.
  EXPECT_GT(t50, 0.5 * elmore50);
  EXPECT_LT(t50, 1.4 * elmore50);
}

TEST(Validation, LowSwingReceiverThresholdReachedEarly) {
  // The low-swing premise: the far end of a long RC line reaches 10 % of
  // the final value much earlier than 50 % (so a low-swing receiver fires
  // long before full-swing settling).
  interconnect::WireRc rc;
  rc.resistancePerM = 2e5;
  rc.groundCapPerM = 2e-10;
  const double length = 5 * mm;
  const int segments = 25;

  sim::Circuit ckt;
  const int in = ckt.node();
  ckt.add(sim::VoltageSource{
      in, 0, sim::Waveform::pulse(0, 1.0, 10 * ps, 1 * ps, 1.0, 1 * ps)});
  const double rSeg = rc.resistancePerM * length / segments;
  const double cSeg = rc.totalCapPerM() * length / segments;
  int prev = in, far = in;
  for (int i = 0; i < segments; ++i) {
    const int next = ckt.node();
    ckt.add(sim::Resistor{prev, next, rSeg});
    ckt.add(sim::Capacitor{next, 0, cSeg});
    prev = next;
    far = next;
  }
  sim::Simulator sim(ckt);
  const auto tr = sim.transient(2 * ns, 1 * ps);
  const double t10 = tr.crossingTime(far, 0.1, true);
  const double t50 = tr.crossingTime(far, 0.5, true);
  ASSERT_GT(t10, 0.0);
  ASSERT_GT(t50, 0.0);
  EXPECT_LT(t10 - 10 * ps, 0.45 * (t50 - 10 * ps));
}

TEST(Validation, MosfetIonMatchesCompactModelInSimulator) {
  // A MOSFET biased at Vgs = Vds = Vdd through the simulator's DC solve
  // conducts the compact model's Ion.
  InverterChainFixture f;
  sim::Circuit ckt;
  const int vdd = ckt.node();
  const int drain = ckt.node();
  ckt.add(sim::VoltageSource{vdd, 0, sim::Waveform::dc(f.node.vdd)});
  const double rSense = 1.0;  // tiny sense resistor
  ckt.add(sim::Resistor{vdd, drain, rSense});
  sim::MosfetElement m;
  m.drain = drain;
  m.gate = vdd;
  m.source = 0;
  m.width = 1 * um;
  m.model = f.model;
  ckt.add(m);
  sim::Simulator sim(ckt);
  const auto v = sim.dcOperatingPoint();
  const double current =
      (v[static_cast<std::size_t>(vdd)] - v[static_cast<std::size_t>(drain)]) /
      rSense;
  // The simulator's I-V (without Rs degeneration at this ideal bias but
  // with the tanh saturation blend) should sit near idsat0.
  const double expected = f.model->idsat0(f.node.vdd) * 1 * um;
  EXPECT_GT(current, 0.7 * expected);
  EXPECT_LT(current, 1.1 * expected);
}

}  // namespace
}  // namespace nano
