// Inductor element tests: DC short behavior, LR time constant, LC
// oscillation, L*di/dt supply bounce — the physics behind the Section 4
// wake-up analysis, at waveform level.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/circuit_sim.h"
#include "util/units.h"

namespace nano::sim {
namespace {

using namespace nano::units;

TEST(Inductor, DcActsAsShort) {
  Circuit ckt;
  const int a = ckt.node();
  const int b = ckt.node();
  ckt.add(VoltageSource{a, 0, Waveform::dc(1.0)});
  ckt.add(Inductor{a, b, 10 * nH});
  ckt.add(Resistor{b, 0, 100.0});
  Simulator sim(ckt);
  const auto v = sim.dcOperatingPoint();
  EXPECT_NEAR(v[static_cast<std::size_t>(b)], 1.0, 1e-6);
}

TEST(Inductor, LrRiseTimeConstant) {
  // Series R-L to ground: i(t) = (V/R)(1 - exp(-t R/L)); the resistor
  // node voltage tracks i*R.
  Circuit ckt;
  const int in = ckt.node();
  const int mid = ckt.node();
  ckt.add(VoltageSource{
      in, 0, Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1.0, 1e-12)});
  ckt.add(Inductor{in, mid, 100 * nH});
  ckt.add(Resistor{mid, 0, 100.0});  // tau = L/R = 1 ns
  Simulator sim(ckt);
  const auto tr = sim.transient(5 * ns, 2 * ps);
  // At one tau the response reaches 63.2 %.
  EXPECT_NEAR(tr.at(mid, 1 * ns), 1.0 - std::exp(-1.0), 0.02);
  EXPECT_NEAR(tr.at(mid, 4 * ns), 1.0, 0.02);
}

TEST(Inductor, BranchCurrentRecorded) {
  Circuit ckt;
  const int in = ckt.node();
  const int mid = ckt.node();
  ckt.add(VoltageSource{in, 0, Waveform::dc(1.0)});
  ckt.add(Inductor{in, mid, 10 * nH});
  ckt.add(Resistor{mid, 0, 100.0});
  Simulator sim(ckt);
  const auto tr = sim.transient(2 * ns, 2 * ps);
  ASSERT_EQ(tr.branchCurrents.back().size(), 2u);  // 1 vsource + 1 inductor
  // Steady state: 10 mA through both; source current is -10 mA (flows out
  // of + terminal through the external circuit).
  EXPECT_NEAR(tr.branchCurrents.back()[1], 0.01, 5e-4);
  EXPECT_NEAR(tr.branchCurrents.back()[0], -0.01, 5e-4);
}

TEST(Inductor, LcOscillationFrequency) {
  // LC tank excited by an initial step: period 2*pi*sqrt(LC) = 2 ns for
  // L = 101.3 nH, C = 1 pF.
  const double l = 101.32118 * nH;
  const double c = 1 * pF;
  Circuit ckt;
  const int in = ckt.node();
  const int tank = ckt.node();
  ckt.add(VoltageSource{
      in, 0, Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1.0, 1e-12)});
  ckt.add(Inductor{in, tank, l});
  ckt.add(Capacitor{tank, 0, c});
  // Light damping so crossings stay detectable.
  ckt.add(Resistor{tank, 0, 100 * kohm});
  Simulator sim(ckt);
  const auto tr = sim.transient(6 * ns, 1 * ps);
  // The tank rings around 1 V: find two successive upward crossings.
  const double t1 = tr.crossingTime(tank, 1.0, true, 0.1 * ns);
  const double t2 = tr.crossingTime(tank, 1.0, true, t1 + 0.5 * ns);
  ASSERT_GT(t1, 0.0);
  ASSERT_GT(t2, 0.0);
  EXPECT_NEAR(t2 - t1, 2 * ns, 0.1 * ns);
}

TEST(Inductor, SupplyBounceLDiDt) {
  // The Section 4 scenario in miniature: a current ramp drawn through a
  // package inductance droops the die-side supply by ~ L * dI/dt.
  const double lPkg = 50 * pH;
  const double iStep = 1.0;     // A
  const double tRamp = 1 * ns;  // dI/dt = 1e9 A/s -> 50 mV
  Circuit ckt;
  const int supply = ckt.node();
  const int die = ckt.node();
  ckt.add(VoltageSource{supply, 0, Waveform::dc(1.0)});
  ckt.add(Inductor{supply, die, lPkg});
  ckt.add(Resistor{die, 0, 1e6});  // DC path
  ckt.add(CurrentSource{
      die, 0, Waveform::pwl({{0.0, 0.0}, {1 * ns, 0.0},
                             {1 * ns + tRamp, iStep}, {10 * ns, iStep}})});
  Simulator sim(ckt);
  const auto tr = sim.transient(4 * ns, 1 * ps);
  // The undamped corner makes trapezoidal integration ring around the true
  // droop, so compare the mid-ramp average (the ringing is zero-mean).
  double sum = 0.0;
  int count = 0;
  for (std::size_t i = 0; i < tr.time.size(); ++i) {
    if (tr.time[i] > 1.2 * ns && tr.time[i] < 1.8 * ns) {
      sum += tr.voltages[i][static_cast<std::size_t>(die)];
      ++count;
    }
  }
  ASSERT_GT(count, 10);
  EXPECT_NEAR(1.0 - sum / count, lPkg * iStep / tRamp, 0.01);
}

TEST(Inductor, RejectsNonPositive) {
  Circuit ckt;
  EXPECT_THROW(ckt.add(Inductor{1, 0, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace nano::sim
