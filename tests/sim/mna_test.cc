#include "sim/mna.h"

#include <gtest/gtest.h>

namespace nano::sim {
namespace {

TEST(MnaSystem, SolvesTwoByTwo) {
  MnaSystem sys(2);
  sys.addA(0, 0, 2.0);
  sys.addA(0, 1, 1.0);
  sys.addA(1, 0, 1.0);
  sys.addA(1, 1, 3.0);
  sys.addB(0, 5.0);
  sys.addB(1, 10.0);
  const auto x = sys.solve();
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(MnaSystem, PivotingHandlesZeroDiagonal) {
  // [[0, 1], [1, 0]] x = [2, 3] -> x = [3, 2].
  MnaSystem sys(2);
  sys.addA(0, 1, 1.0);
  sys.addA(1, 0, 1.0);
  sys.addB(0, 2.0);
  sys.addB(1, 3.0);
  const auto x = sys.solve();
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(MnaSystem, SingularThrows) {
  MnaSystem sys(2);
  sys.addA(0, 0, 1.0);
  sys.addA(0, 1, 1.0);
  sys.addA(1, 0, 1.0);
  sys.addA(1, 1, 1.0);
  EXPECT_THROW(sys.solve(), std::runtime_error);
}

TEST(MnaSystem, StampConductanceDivider) {
  // 1 V across two series conductances g1 = 1, g2 = 1 via a Norton source:
  // node1 -- g1 -- node2 -- g2 -- gnd, 1 A into node1.
  MnaSystem sys(2);
  sys.stampConductance(1, 2, 1.0);
  sys.stampConductance(2, 0, 1.0);
  sys.stampCurrent(0, 1, 1.0);
  const auto x = sys.solve();
  EXPECT_NEAR(x[0], 2.0, 1e-12);  // node 1
  EXPECT_NEAR(x[1], 1.0, 1e-12);  // node 2
}

TEST(MnaSystem, GroundStampsIgnored) {
  MnaSystem sys(1);
  sys.stampConductance(1, 0, 2.0);
  sys.stampCurrent(0, 1, 4.0);
  const auto x = sys.solve();
  EXPECT_NEAR(x[0], 2.0, 1e-12);
}

TEST(MnaSystem, ClearResets) {
  MnaSystem sys(1);
  sys.addA(0, 0, 1.0);
  sys.addB(0, 1.0);
  sys.clear();
  sys.addA(0, 0, 2.0);
  sys.addB(0, 4.0);
  EXPECT_NEAR(sys.solve()[0], 2.0, 1e-12);
}

TEST(MnaSystem, RejectsEmpty) {
  EXPECT_THROW(MnaSystem(0), std::invalid_argument);
}

}  // namespace
}  // namespace nano::sim
