#include "signaling/noise.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace nano::signaling {
namespace {

using namespace nano::units;

interconnect::WireRc referenceRc() {
  return interconnect::computeWireRc(
      interconnect::topLevelWire(tech::nodeByFeature(70)));
}

NoiseScenario base() {
  NoiseScenario s;
  s.aggressorSwing = 0.9;
  s.victimSwing = 0.9;
  s.length = 1 * mm;
  return s;
}

TEST(Noise, CapacitiveNoiseIsChargeDivider) {
  const auto rc = referenceRc();
  NoiseScenario s = base();
  const NoiseReport rep = estimateNoise(rc, s);
  const double expected =
      2.0 * rc.couplingCapPerM / rc.totalCapPerM() * s.aggressorSwing;
  EXPECT_NEAR(rep.capacitiveNoise, expected, expected * 1e-9);
}

TEST(Noise, ShieldingCutsCapacitiveNoiseFiveX) {
  const auto rc = referenceRc();
  NoiseScenario s = base();
  const NoiseReport open = estimateNoise(rc, s);
  s.shielded = true;
  const NoiseReport shielded = estimateNoise(rc, s);
  EXPECT_NEAR(open.capacitiveNoise / shielded.capacitiveNoise, 5.0, 1e-6);
}

TEST(Noise, ShieldingHelpsInductiveLess) {
  // Paper: "shielding may be insufficient to limit inductively coupled
  // noise" — the model gives shields 5x on capacitive but only 2x on
  // inductive coupling.
  const auto rc = referenceRc();
  NoiseScenario s = base();
  const NoiseReport open = estimateNoise(rc, s);
  s.shielded = true;
  const NoiseReport shielded = estimateNoise(rc, s);
  EXPECT_NEAR(open.inductiveNoise / shielded.inductiveNoise, 2.0, 1e-6);
}

TEST(Noise, DifferentialRejectsCommonMode) {
  const auto rc = referenceRc();
  NoiseScenario s = base();
  s.commonModeRejection = 0.1;
  const NoiseReport diff = estimateNoise(rc, s);
  s.commonModeRejection = 1.0;
  const NoiseReport single = estimateNoise(rc, s);
  EXPECT_NEAR(single.totalNoise / diff.totalNoise, 10.0, 1e-6);
}

TEST(Noise, DifferentialLowSwingStillPassesWhereSingleEndedFails) {
  // The paper's argument for differential low-swing: a 10 % swing with a
  // single-ended receiver drowns in full-swing aggressor noise, while the
  // differential receiver survives.
  const auto rc = referenceRc();
  NoiseScenario s = base();
  s.victimSwing = 0.09;  // 10 % of 0.9 V
  s.shielded = true;
  s.commonModeRejection = 1.0;
  EXPECT_FALSE(estimateNoise(rc, s).passes());
  s.commonModeRejection = 0.1;
  EXPECT_TRUE(estimateNoise(rc, s).passes());
}

TEST(Noise, LongerCoupledRunIsWorse) {
  const auto rc = referenceRc();
  NoiseScenario s = base();
  const NoiseReport shortRun = estimateNoise(rc, s);
  s.length = 4 * mm;
  const NoiseReport longRun = estimateNoise(rc, s);
  EXPECT_GT(longRun.totalNoise, shortRun.totalNoise);
}

TEST(Noise, FasterEdgesIncreaseInductiveNoise) {
  const auto rc = referenceRc();
  NoiseScenario s = base();
  const NoiseReport slow = estimateNoise(rc, s);
  s.aggressorEdgeRate *= 4.0;
  const NoiseReport fast = estimateNoise(rc, s);
  EXPECT_GT(fast.inductiveNoise, slow.inductiveNoise);
  EXPECT_NEAR(fast.capacitiveNoise, slow.capacitiveNoise, 1e-12);
}

TEST(Noise, RejectsZeroLength) {
  NoiseScenario s = base();
  s.length = 0.0;
  EXPECT_THROW(estimateNoise(referenceRc(), s), std::invalid_argument);
}

}  // namespace
}  // namespace nano::signaling
