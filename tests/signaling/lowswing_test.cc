#include "signaling/lowswing.h"

#include <gtest/gtest.h>

#include "signaling/comparison.h"
#include "util/units.h"

namespace nano::signaling {
namespace {

using namespace nano::units;

struct Fixture {
  const tech::TechNode& node = tech::nodeByFeature(70);
  interconnect::WireRc rc =
      interconnect::computeWireRc(interconnect::topLevelWire(node));
  double length = 10 * mm;
};

TEST(LowSwing, EnergySavingTracksSwingFraction) {
  Fixture f;
  LowSwingConfig cfg;
  cfg.swingFraction = 0.10;
  const LinkReport low = analyzeLowSwingLink(f.node, f.rc, f.length, cfg);
  const LinkReport full = analyzeFullSwingLink(f.node, f.rc, f.length);
  // ~10x on the wire component; receiver overhead keeps total above 5x.
  EXPECT_GT(full.energyPerTransition / low.energyPerTransition, 5.0);
  EXPECT_LT(full.energyPerTransition / low.energyPerTransition, 20.0);
}

TEST(LowSwing, SmallerSwingCheaper) {
  Fixture f;
  LowSwingConfig a, b;
  a.swingFraction = 0.10;
  b.swingFraction = 0.30;
  EXPECT_LT(analyzeLowSwingLink(f.node, f.rc, f.length, a).energyPerTransition,
            analyzeLowSwingLink(f.node, f.rc, f.length, b).energyPerTransition);
}

TEST(LowSwing, PeakCurrentFarBelowRepeatedLine) {
  Fixture f;
  const LinkReport low = analyzeLowSwingLink(f.node, f.rc, f.length);
  const LinkReport full = analyzeFullSwingLink(f.node, f.rc, f.length);
  EXPECT_LT(low.peakSupplyCurrent, 0.5 * full.peakSupplyCurrent);
}

TEST(LowSwing, RoutingTracks) {
  Fixture f;
  LowSwingConfig cfg;
  cfg.differential = true;
  cfg.shielded = true;
  EXPECT_DOUBLE_EQ(analyzeLowSwingLink(f.node, f.rc, f.length, cfg).routingTracks,
                   3.0);
  cfg.differential = false;
  EXPECT_DOUBLE_EQ(analyzeLowSwingLink(f.node, f.rc, f.length, cfg).routingTracks,
                   2.0);
  EXPECT_DOUBLE_EQ(analyzeFullSwingLink(f.node, f.rc, f.length).routingTracks,
                   2.0);
}

TEST(LowSwing, TrackOverheadBelowTwoX) {
  // Paper: differential "increase may be less than the expected factor of 2"
  // because full-swing long lines need shields too.
  Fixture f;
  const LinkReport low = analyzeLowSwingLink(f.node, f.rc, f.length);
  const LinkReport full = analyzeFullSwingLink(f.node, f.rc, f.length);
  EXPECT_LT(low.routingTracks / full.routingTracks, 2.0);
}

TEST(LowSwing, BiggerDriverFaster) {
  Fixture f;
  LowSwingConfig small, big;
  small.driverSize = 16.0;
  big.driverSize = 128.0;
  EXPECT_GT(analyzeLowSwingLink(f.node, f.rc, f.length, small).delay,
            analyzeLowSwingLink(f.node, f.rc, f.length, big).delay);
}

TEST(LowSwing, AveragePowerComposition) {
  Fixture f;
  const LinkReport link = analyzeLowSwingLink(f.node, f.rc, f.length);
  const double p = link.averagePower(1 * GHz, 0.2);
  EXPECT_NEAR(p, 0.2 * link.energyPerTransition * 1e9 + link.staticPower,
              1e-12);
}

TEST(LowSwing, Rejections) {
  Fixture f;
  EXPECT_THROW(analyzeLowSwingLink(f.node, f.rc, 0.0), std::invalid_argument);
  LowSwingConfig cfg;
  cfg.swingFraction = 0.0;
  EXPECT_THROW(analyzeLowSwingLink(f.node, f.rc, f.length, cfg),
               std::invalid_argument);
  EXPECT_THROW(analyzeFullSwingLink(f.node, f.rc, -1.0), std::invalid_argument);
}

TEST(Comparison, ThreeStrategiesReported) {
  const auto scores = compareStrategies(tech::nodeByFeature(50));
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_EQ(scores[0].name, "full-swing repeated");
  EXPECT_EQ(scores[2].name, "low-swing differential");
}

TEST(Comparison, DifferentialHasBestNoiseMargin) {
  const auto scores = compareStrategies(tech::nodeByFeature(50));
  // Low-swing single-ended is the most fragile; differential recovers the
  // margin through common-mode rejection (paper Section 2.2).
  EXPECT_GT(scores[2].noise.noiseMargin, scores[1].noise.noiseMargin);
}

TEST(Comparison, LowSwingWinsPower) {
  const auto scores = compareStrategies(tech::nodeByFeature(50));
  EXPECT_LT(scores[2].powerAtGlobalClock, scores[0].powerAtGlobalClock);
}

TEST(BusComparison, AlphaStyleBusSavesPowerAndDidt) {
  // A 64-bit cross-chip bus like the Alpha 21264's differential low-swing
  // buses: large power and peak-current reduction.
  const auto cmp = compareBus(tech::nodeByFeature(70), 64, 15 * mm);
  EXPECT_GT(cmp.powerRatio, 3.0);
  EXPECT_GT(cmp.peakCurrentRatio, 2.0);
  EXPECT_LT(cmp.trackRatio, 2.0);
}

}  // namespace
}  // namespace nano::signaling
