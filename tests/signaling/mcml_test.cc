#include "signaling/mcml.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace nano::signaling {
namespace {

using namespace nano::units;

TEST(McmlGate, DelayFromTailCurrent) {
  McmlGate g;
  g.tailCurrent = 100 * uA;
  g.swing = 0.3;
  g.loadCap = 5 * fF;
  EXPECT_NEAR(g.delay(), 0.69 * (0.3 / 100e-6) * 5e-15, 1e-18);
}

TEST(McmlGate, MoreTailCurrentIsFaster) {
  McmlGate a, b;
  a.tailCurrent = 50 * uA;
  b.tailCurrent = 200 * uA;
  EXPECT_GT(a.delay(), b.delay());
}

TEST(McmlGate, StaticPowerIndependentOfActivity) {
  McmlGate g;
  const double p1 = g.totalPower(1.0, 1 * GHz, 0.01);
  const double p2 = g.totalPower(1.0, 1 * GHz, 0.5);
  // Switching energy is tiny (swing^2); totals nearly equal.
  EXPECT_NEAR(p1, p2, 0.05 * p1);
}

TEST(McmlGate, RippleIsSmall) {
  EXPECT_LT(McmlGate{}.supplyCurrentRipple(), 0.1);
}

TEST(MatchedPair, DelaysMatchByConstruction) {
  const auto pair = buildMatchedPair(tech::nodeByFeature(70), 10 * fF);
  EXPECT_NEAR(pair.mcml.delay(), pair.cmos.delayS,
              1e-6 * pair.cmos.delayS);
}

TEST(MatchedPair, McmlCurrentTransientFarLower) {
  // The paper's Section 4 point: current-steering logic has much smaller
  // current *transients* than CMOS at comparable performance — MCML draws
  // a near-constant tail current while CMOS spikes to its full drive.
  const auto pair = buildMatchedPair(tech::nodeByFeature(70), 10 * fF);
  const double mcmlTransient =
      pair.mcml.supplyCurrentRipple() * pair.mcml.tailCurrent;
  EXPECT_LT(mcmlTransient, 0.05 * pair.cmos.peakSupplyCurrentA);
  // The steady draw itself also stays below the CMOS peak.
  EXPECT_LT(pair.mcml.tailCurrent, 0.6 * pair.cmos.peakSupplyCurrentA);
}

TEST(MatchedPair, RejectsBadLoad) {
  EXPECT_THROW(buildMatchedPair(tech::nodeByFeature(70), 0.0),
               std::invalid_argument);
}

TEST(Crossover, McmlOnlyViableInNanometerRegime) {
  // At 180-70 nm CMOS wins at any realizable activity (crossover > 1);
  // once leakage explodes (50 and 35 nm) MCML wins for high-activity
  // datapaths — the paper's "if static CMOS leakage becomes intractable,
  // current steering families may provide solutions".
  for (int f : {180, 130, 100, 70}) {
    EXPECT_GT(mcmlCrossoverActivity(tech::nodeByFeature(f), 10 * fF), 1.0)
        << f;
  }
  for (int f : {50, 35}) {
    const double a = mcmlCrossoverActivity(tech::nodeByFeature(f), 10 * fF);
    EXPECT_GT(a, 0.0) << f;
    EXPECT_LT(a, 1.0) << f;
  }
}

TEST(Crossover, AboveCrossoverMcmlWins) {
  const auto& node = tech::nodeByFeature(70);
  const double load = 10 * fF;
  const double a = mcmlCrossoverActivity(node, load);
  const auto pair = buildMatchedPair(node, load);
  const double f = node.clockLocal;
  EXPECT_LT(pair.mcml.totalPower(node.vdd, f, a * 1.5),
            pair.cmos.totalPower(f, a * 1.5));
  EXPECT_GT(pair.mcml.totalPower(node.vdd, f, a * 0.5),
            pair.cmos.totalPower(f, a * 0.5));
}

TEST(Crossover, LeakierNodeLowersCrossover) {
  // As CMOS leakage explodes (50 nm @ 0.6 V), MCML's static burn is less
  // of a disadvantage: the crossover activity drops.
  const double at100 = mcmlCrossoverActivity(tech::nodeByFeature(100), 10 * fF);
  const double at50 = mcmlCrossoverActivity(tech::nodeByFeature(50), 10 * fF);
  EXPECT_LT(at50, at100);
}

}  // namespace
}  // namespace nano::signaling
