// Cross-node / cross-length sweeps of the signaling strategy comparison:
// where low-swing wins and by how much, as functions of the knobs the
// paper discusses.
#include <gtest/gtest.h>

#include "signaling/comparison.h"
#include "util/units.h"

namespace nano::signaling {
namespace {

using namespace nano::units;

class NodeLengthSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(NodeLengthSweep, LowSwingAlwaysWinsEnergy) {
  const auto [feature, lengthMm] = GetParam();
  const auto scores =
      compareStrategies(tech::nodeByFeature(feature), lengthMm * mm);
  EXPECT_LT(scores[2].link.energyPerTransition,
            scores[0].link.energyPerTransition)
      << feature << " nm, " << lengthMm << " mm";
}

TEST_P(NodeLengthSweep, LowSwingAlwaysWinsPeakCurrent) {
  const auto [feature, lengthMm] = GetParam();
  const auto scores =
      compareStrategies(tech::nodeByFeature(feature), lengthMm * mm);
  EXPECT_LT(scores[2].link.peakSupplyCurrent,
            scores[0].link.peakSupplyCurrent);
}

TEST_P(NodeLengthSweep, DifferentialBeatsSingleEndedOnNoise) {
  const auto [feature, lengthMm] = GetParam();
  const auto scores =
      compareStrategies(tech::nodeByFeature(feature), lengthMm * mm);
  EXPECT_GT(scores[2].noise.noiseMargin, scores[1].noise.noiseMargin);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NodeLengthSweep,
    ::testing::Combine(::testing::Values(180, 100, 70, 50, 35),
                       ::testing::Values(5.0, 10.0, 20.0)));

TEST(ComparisonSweep, EnergyAdvantageRoughlySwingRatio) {
  // The core low-swing arithmetic: wire energy ratio ~ Vswing/Vdd = 10x,
  // degraded by the receiver overhead.
  const auto& node = tech::nodeByFeature(70);
  for (double lengthMm : {10.0, 20.0}) {
    const auto scores = compareStrategies(node, lengthMm * mm);
    const double ratio = scores[0].link.energyPerTransition /
                         scores[2].link.energyPerTransition;
    EXPECT_GT(ratio, 4.0) << lengthMm;
    EXPECT_LT(ratio, 20.0) << lengthMm;  // repeater caps push it past 10x
  }
}

TEST(ComparisonSweep, FullSwingDelayCompetitiveOnLongLines) {
  // Repeated full-swing lines are delay-optimal; low-swing single-driver
  // links give up speed as length grows quadratically. Check the ordering
  // holds on a die-crossing run.
  const auto& node = tech::nodeByFeature(50);
  const auto scores = compareStrategies(node, 20 * mm);
  EXPECT_LT(scores[0].link.delay, scores[2].link.delay * 1.5);
}

TEST(ComparisonSweep, BusPowerRatioStableAcrossWidths) {
  const auto& node = tech::nodeByFeature(70);
  const auto narrow = compareBus(node, 16, 10 * mm);
  const auto wide = compareBus(node, 128, 10 * mm);
  EXPECT_NEAR(narrow.powerRatio, wide.powerRatio, 0.05 * narrow.powerRatio);
  // Totals scale with width.
  EXPECT_NEAR(wide.fullSwing.powerAtGlobalClock /
                  narrow.fullSwing.powerAtGlobalClock,
              8.0, 0.1);
}

TEST(ComparisonSweep, EnergyDelayProductFavorsLowSwing) {
  for (int f : {70, 50, 35}) {
    const auto scores = compareStrategies(tech::nodeByFeature(f));
    EXPECT_LT(scores[2].energyDelayProduct, scores[0].energyDelayProduct)
        << f;
  }
}

}  // namespace
}  // namespace nano::signaling
