#include "circuit/cell.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/units.h"

namespace nano::circuit {
namespace {

using namespace nano::units;

CellCharacterizer charzr() {
  return CellCharacterizer::forNode(tech::nodeByFeature(100));
}

TEST(CellFunctions, FaninTable) {
  EXPECT_EQ(faninOf(CellFunction::Inv), 1);
  EXPECT_EQ(faninOf(CellFunction::Nand2), 2);
  EXPECT_EQ(faninOf(CellFunction::Nor3), 3);
  EXPECT_EQ(faninOf(CellFunction::LevelConverter), 1);
}

TEST(CellFunctions, LogicalEffortOrdering) {
  // NOR is worse than NAND (weak PMOS stacks); inverter is the unit.
  EXPECT_DOUBLE_EQ(logicalEffortOf(CellFunction::Inv), 1.0);
  EXPECT_GT(logicalEffortOf(CellFunction::Nor2),
            logicalEffortOf(CellFunction::Nand2));
  EXPECT_GT(logicalEffortOf(CellFunction::Nand3),
            logicalEffortOf(CellFunction::Nand2));
}

TEST(CellFunctions, StacksLeakLess) {
  EXPECT_LT(leakageFactorOf(CellFunction::Nand3),
            leakageFactorOf(CellFunction::Nand2));
  EXPECT_LT(leakageFactorOf(CellFunction::Nand2),
            leakageFactorOf(CellFunction::Inv));
}

TEST(Characterize, DriveScalesResistanceAndCap) {
  const auto cz = charzr();
  const Cell x1 = cz.characterize(CellFunction::Inv, 1.0, VthClass::Low,
                                  VddDomain::High);
  const Cell x4 = cz.characterize(CellFunction::Inv, 4.0, VthClass::Low,
                                  VddDomain::High);
  EXPECT_NEAR(x4.driveResistance, x1.driveResistance / 4.0, 1e-9);
  EXPECT_NEAR(x4.inputCap, 4.0 * x1.inputCap, 1e-20);
  EXPECT_NEAR(x4.area, 4.0 * x1.area, 1e-18);
}

TEST(Characterize, HighVthSlowerButLeaksFarLess) {
  const auto cz = charzr();
  const Cell lvt = cz.characterize(CellFunction::Inv, 2.0, VthClass::Low,
                                   VddDomain::High);
  const Cell hvt = cz.characterize(CellFunction::Inv, 2.0, VthClass::High,
                                   VddDomain::High);
  EXPECT_GT(hvt.driveResistance, lvt.driveResistance);
  // One 100 mV step at 85 mV/dec: ~15x leakage difference.
  EXPECT_NEAR(lvt.leakage / hvt.leakage, std::pow(10.0, 0.1 / 0.085), 2.0);
  // Same footprint and input load.
  EXPECT_DOUBLE_EQ(hvt.inputCap, lvt.inputCap);
  EXPECT_DOUBLE_EQ(hvt.area, lvt.area);
}

TEST(Characterize, LowVddSlowerAndCheaper) {
  const auto cz = charzr();
  const Cell hi = cz.characterize(CellFunction::Inv, 2.0, VthClass::Low,
                                  VddDomain::High);
  const Cell lo = cz.characterize(CellFunction::Inv, 2.0, VthClass::Low,
                                  VddDomain::Low);
  EXPECT_GT(lo.driveResistance, hi.driveResistance);
  // Energy per transition ~ V^2: 0.65^2 = 0.4225.
  const double load = 5 * fF;
  EXPECT_NEAR(lo.switchingEnergy(load) / hi.switchingEnergy(load),
              kCvsVddLowRatio * kCvsVddLowRatio,
              0.02);
}

TEST(Characterize, LowVddLeaksLess) {
  // DIBL: lower drain bias raises the effective threshold.
  const auto cz = charzr();
  const Cell hi = cz.characterize(CellFunction::Inv, 1.0, VthClass::Low,
                                  VddDomain::High);
  const Cell lo = cz.characterize(CellFunction::Inv, 1.0, VthClass::Low,
                                  VddDomain::Low);
  EXPECT_LT(lo.leakage, hi.leakage);
}

TEST(Characterize, DelayModel) {
  const auto cz = charzr();
  const Cell c = cz.characterize(CellFunction::Nand2, 2.0, VthClass::Low,
                                 VddDomain::High);
  const double load = 10 * fF;
  EXPECT_NEAR(c.delay(load), 0.69 * c.driveResistance * (load + c.selfCap),
              1e-18);
  EXPECT_GT(c.delay(load), c.delay(load / 2));
}

TEST(Characterize, LevelConverterHasBigParasitic) {
  const auto cz = charzr();
  const Cell lc = cz.characterize(CellFunction::LevelConverter, 1.0,
                                  VthClass::Low, VddDomain::High);
  const Cell inv =
      cz.characterize(CellFunction::Inv, 1.0, VthClass::Low, VddDomain::High);
  EXPECT_GT(lc.delay(0.0), 2.0 * inv.delay(0.0));
}

TEST(Characterize, NamesEncodeCorner) {
  const auto cz = charzr();
  const Cell c = cz.characterize(CellFunction::Nand2, 4.0, VthClass::High,
                                 VddDomain::Low);
  EXPECT_NE(c.name.find("NAND2"), std::string::npos);
  EXPECT_NE(c.name.find("HVT"), std::string::npos);
  EXPECT_NE(c.name.find("VL"), std::string::npos);
}

TEST(Characterize, RejectsBadDrive) {
  const auto cz = charzr();
  EXPECT_THROW(
      cz.characterize(CellFunction::Inv, 0.0, VthClass::Low, VddDomain::High),
      std::invalid_argument);
}

TEST(CellCharacterizer, ForNodeUsesPaperRatios) {
  const auto& node = tech::nodeByFeature(70);
  const auto cz = CellCharacterizer::forNode(node);
  EXPECT_NEAR(cz.vddOf(VddDomain::Low), kCvsVddLowRatio * node.vdd, 1e-12);
  EXPECT_NEAR(cz.vthOf(VthClass::High) - cz.vthOf(VthClass::Low),
              kDualVthOffset, 1e-12);
}

TEST(CellCharacterizer, RejectsBadSupplies) {
  const auto& node = tech::nodeByFeature(70);
  EXPECT_THROW(CellCharacterizer(node, 0.1, 0.2, 0.5, 0.9, 300.0),
               std::invalid_argument);
  EXPECT_THROW(CellCharacterizer(node, 0.2, 0.1, 0.9, 0.5, 300.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace nano::circuit
