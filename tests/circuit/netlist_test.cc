#include "circuit/netlist.h"

#include <gtest/gtest.h>

#include "circuit/library.h"
#include "util/units.h"

namespace nano::circuit {
namespace {

using namespace nano::units;

struct Fixture {
  Library lib{tech::nodeByFeature(100)};
  Cell inv = lib.pick(CellFunction::Inv, 1.0);
  Cell nand = lib.pick(CellFunction::Nand2, 1.0);
};

TEST(Netlist, BuildAndCounts) {
  Fixture f;
  Netlist nl(0.0, 0.0);
  const int a = nl.addInput();
  const int b = nl.addInput();
  const int g = nl.addGate(f.nand, {a, b});
  nl.markOutput(g);
  EXPECT_EQ(nl.inputCount(), 2);
  EXPECT_EQ(nl.gateCount(), 1);
  EXPECT_EQ(nl.nodeCount(), 3);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, FanoutsMaintained) {
  Fixture f;
  Netlist nl;
  const int a = nl.addInput();
  const int g1 = nl.addGate(f.inv, {a});
  const int g2 = nl.addGate(f.inv, {g1});
  const int g3 = nl.addGate(f.inv, {g1});
  nl.markOutput(g2);
  nl.markOutput(g3);
  ASSERT_EQ(nl.node(g1).fanouts.size(), 2u);
  EXPECT_EQ(nl.node(g1).fanouts[0], g2);
  EXPECT_EQ(nl.node(g1).fanouts[1], g3);
}

TEST(Netlist, LoadCapSumsFanoutsWireAndOutput) {
  Fixture f;
  const double wirePerFo = 1 * fF;
  const double outLoad = 7 * fF;
  Netlist nl(wirePerFo, outLoad);
  const int a = nl.addInput();
  const int g1 = nl.addGate(f.inv, {a});
  const int g2 = nl.addGate(f.nand, {g1, a});
  const int g3 = nl.addGate(f.inv, {g1});
  nl.markOutput(g2);
  nl.markOutput(g3);
  nl.markOutput(g1);
  const double expected = f.nand.inputCap + f.inv.inputCap + 2 * wirePerFo +
                          outLoad;
  EXPECT_NEAR(nl.loadCap(g1), expected, 1e-21);
  (void)g2;
}

TEST(Netlist, MarkOutputIdempotent) {
  Fixture f;
  Netlist nl;
  const int a = nl.addInput();
  const int g = nl.addGate(f.inv, {a});
  nl.markOutput(g);
  nl.markOutput(g);
  EXPECT_EQ(nl.outputs().size(), 1u);
}

TEST(Netlist, ReplaceCellKeepsTopology) {
  Fixture f;
  Netlist nl;
  const int a = nl.addInput();
  const int g = nl.addGate(f.inv, {a});
  nl.markOutput(g);
  const Cell big = f.lib.pick(CellFunction::Inv, 8.0);
  nl.replaceCell(g, big);
  EXPECT_DOUBLE_EQ(nl.node(g).cell.drive, 8.0);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, ReplaceCellRejectsFunctionChange) {
  Fixture f;
  Netlist nl;
  const int a = nl.addInput();
  const int g = nl.addGate(f.inv, {a});
  EXPECT_THROW(nl.replaceCell(g, f.nand), std::invalid_argument);
  EXPECT_THROW(nl.replaceCell(a, f.inv), std::invalid_argument);
}

TEST(Netlist, AddGateRejections) {
  Fixture f;
  Netlist nl;
  const int a = nl.addInput();
  EXPECT_THROW(nl.addGate(f.nand, {a}), std::invalid_argument);  // arity
  EXPECT_THROW(nl.addGate(f.inv, {5}), std::invalid_argument);   // bad id
  EXPECT_THROW(nl.addGate(f.inv, {-1}), std::invalid_argument);
}

TEST(Netlist, ValidateRequiresOutputs) {
  Fixture f;
  Netlist nl;
  const int a = nl.addInput();
  nl.addGate(f.inv, {a});
  EXPECT_THROW(nl.validate(), std::logic_error);
}

TEST(Netlist, TotalAreaSumsGates) {
  Fixture f;
  Netlist nl;
  const int a = nl.addInput();
  const int g1 = nl.addGate(f.inv, {a});
  nl.addGate(f.inv, {g1});
  EXPECT_NEAR(nl.totalArea(), 2.0 * f.inv.area, 1e-18);
}

TEST(Netlist, GateIdsSkipInputs) {
  Fixture f;
  Netlist nl;
  nl.addInput();
  const int a2 = nl.addInput();
  const int g = nl.addGate(f.inv, {a2});
  const auto ids = nl.gateIds();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], g);
}

TEST(VddViolations, LowDrivingHighFlagged) {
  Fixture f;
  Netlist nl;
  const int a = nl.addInput();
  const Cell low = f.lib.pick(CellFunction::Inv, 1.0, VthClass::Low,
                              VddDomain::Low);
  const int gLow = nl.addGate(low, {a});
  const int gHigh = nl.addGate(f.inv, {gLow});
  nl.markOutput(gHigh);
  const auto bad = nl.vddViolations();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], gLow);
}

TEST(VddViolations, ConverterCuresCrossing) {
  Fixture f;
  Netlist nl;
  const int a = nl.addInput();
  const Cell low =
      f.lib.pick(CellFunction::Inv, 1.0, VthClass::Low, VddDomain::Low);
  const Cell lc = f.lib.pick(CellFunction::LevelConverter, 1.0, VthClass::Low,
                             VddDomain::High);
  const int gLow = nl.addGate(low, {a});
  const int conv = nl.addGate(lc, {gLow});
  const int gHigh = nl.addGate(f.inv, {conv});
  nl.markOutput(gHigh);
  EXPECT_TRUE(nl.vddViolations().empty());
}

TEST(VddViolations, LowDrivingLowIsFine) {
  Fixture f;
  Netlist nl;
  const int a = nl.addInput();
  const Cell low =
      f.lib.pick(CellFunction::Inv, 1.0, VthClass::Low, VddDomain::Low);
  const int g1 = nl.addGate(low, {a});
  const int g2 = nl.addGate(low, {g1});
  nl.markOutput(g2);
  EXPECT_TRUE(nl.vddViolations().empty());
}

TEST(DefaultWireCap, HalfAvgWirePerFanout) {
  const auto& node = tech::nodeByFeature(100);
  EXPECT_NEAR(defaultWireCapPerFanout(node),
              0.5 * node.localWireCapPerM * node.avgLocalWireLength, 1e-21);
}

// loadCap is served from a cache the mutators keep valid; every mutation
// path must leave it equal to the from-scratch sum.
TEST(LoadCapCache, ReplaceCellRefreshesFaninLoads) {
  Fixture f;
  Netlist nl(1e-15, 0.0);
  const int a = nl.addInput();
  const int g1 = nl.addGate(f.inv, {a});
  const int g2 = nl.addGate(f.inv, {g1});
  nl.markOutput(g2);
  const double before = nl.loadCap(g1);

  // Doubling g2's drive doubles its input cap; g1's cached load follows.
  Cell big = f.lib.generateCustom(CellFunction::Inv, 2.0);
  nl.replaceCell(g2, big);
  EXPECT_DOUBLE_EQ(nl.loadCap(g1), before - f.inv.inputCap + big.inputCap);
  // The swapped gate's own load is untouched by its cell swap.
  EXPECT_DOUBLE_EQ(nl.loadCap(g2), 1e-15 * 0 + nl.outputLoadCap());
}

TEST(LoadCapCache, AddGateAndMarkOutputRefreshDrivers) {
  Fixture f;
  Netlist nl(1e-15, 3e-15);
  const int a = nl.addInput();
  const int g1 = nl.addGate(f.inv, {a});
  EXPECT_DOUBLE_EQ(nl.loadCap(g1), 0.0);  // drives nothing yet

  const int g2 = nl.addGate(f.inv, {g1});  // new fanout: cap + wire
  EXPECT_DOUBLE_EQ(nl.loadCap(g1), f.inv.inputCap + 1e-15);
  EXPECT_DOUBLE_EQ(nl.loadCap(a), f.inv.inputCap + 1e-15);

  nl.markOutput(g2);  // external load lands on the flagged node only
  EXPECT_DOUBLE_EQ(nl.loadCap(g2), 3e-15);
  EXPECT_DOUBLE_EQ(nl.loadCap(g1), f.inv.inputCap + 1e-15);
}

}  // namespace
}  // namespace nano::circuit
