// Functional verification through bit-parallel simulation: the generated
// arithmetic circuits compute, the optimizers preserve logic, and the
// measured activity cross-checks the probabilistic propagation.
#include "circuit/simulate.h"

#include <gtest/gtest.h>

#include <sstream>

#include "circuit/generator.h"
#include "circuit/netlist_io.h"
#include "opt/combined.h"
#include "power/activity.h"

namespace nano::circuit {
namespace {

const Library& lib() {
  static const Library instance(tech::nodeByFeature(100));
  return instance;
}

/// Drive an adder with scalar operands replicated across the word.
std::vector<Word> adderInputs(int bits, std::uint64_t a, std::uint64_t b,
                              bool cin) {
  std::vector<Word> in;
  for (int i = 0; i < bits; ++i) in.push_back((a >> i) & 1 ? ~Word{0} : 0);
  for (int i = 0; i < bits; ++i) in.push_back((b >> i) & 1 ? ~Word{0} : 0);
  in.push_back(cin ? ~Word{0} : 0);
  return in;
}

std::uint64_t decodeScalar(const std::vector<Word>& outs) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < outs.size(); ++i) {
    EXPECT_TRUE(outs[i] == 0 || outs[i] == ~Word{0}) << i;  // replicated
    if (outs[i] & 1u) v |= std::uint64_t{1} << i;
  }
  return v;
}

TEST(Simulate, RippleCarryAdderActuallyAdds) {
  const int bits = 8;
  const Netlist adder = rippleCarryAdder(lib(), bits);
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = static_cast<std::uint64_t>(rng.uniformInt(0, 255));
    const auto b = static_cast<std::uint64_t>(rng.uniformInt(0, 255));
    const bool cin = rng.bernoulli(0.5);
    const auto outs =
        evaluateOutputs(adder, adderInputs(bits, a, b, cin));
    // Outputs: sum bits 0..7 then carry out => a 9-bit result.
    EXPECT_EQ(decodeScalar(outs), a + b + (cin ? 1 : 0))
        << a << "+" << b << "+" << cin;
  }
}

TEST(Simulate, KoggeStoneEquivalentToRipple) {
  for (int bits : {4, 8, 16}) {
    const Netlist ripple = rippleCarryAdder(lib(), bits);
    const Netlist kogge = koggeStoneAdder(lib(), bits);
    util::Rng rng(2);
    EXPECT_TRUE(randomlyEquivalent(ripple, kogge, rng, 32)) << bits;
  }
}

TEST(Simulate, ArrayMultiplierActuallyMultiplies) {
  const int bits = 6;
  const Netlist mult = arrayMultiplier(lib(), bits);
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = static_cast<std::uint64_t>(rng.uniformInt(0, 63));
    const auto b = static_cast<std::uint64_t>(rng.uniformInt(0, 63));
    std::vector<Word> in;
    for (int i = 0; i < bits; ++i) in.push_back((a >> i) & 1 ? ~Word{0} : 0);
    for (int i = 0; i < bits; ++i) in.push_back((b >> i) & 1 ? ~Word{0} : 0);
    const auto outs = evaluateOutputs(mult, in);
    EXPECT_EQ(decodeScalar(outs), a * b) << a << "*" << b;
  }
}

TEST(Simulate, OptimizersPreserveLogic) {
  // The whole flow (CVS + dual-Vth + sizing) swaps cells and inserts
  // buffering level converters — the boolean function must not change.
  util::Rng genRng(4);
  GeneratorConfig cfg;
  cfg.gates = 300;
  cfg.outputs = 24;
  const Netlist before = pipelinedLogic(lib(), cfg, genRng, 4);
  const opt::FlowResult flow = opt::runFlow(before, lib());
  util::Rng eqRng(5);
  EXPECT_TRUE(randomlyEquivalent(before, flow.netlist, eqRng, 32));
}

TEST(Simulate, TextRoundTripPreservesLogic) {
  util::Rng genRng(6);
  GeneratorConfig cfg;
  cfg.gates = 200;
  const Netlist before = randomLogic(lib(), cfg, genRng);
  std::ostringstream os;
  writeNetlist(os, before);
  std::istringstream is(os.str());
  const Netlist after = readNetlist(is, lib());
  util::Rng eqRng(7);
  EXPECT_TRUE(randomlyEquivalent(before, after, eqRng, 32));
}

TEST(Simulate, MismatchedShapesNotEquivalent) {
  const Netlist a = rippleCarryAdder(lib(), 4);
  const Netlist b = rippleCarryAdder(lib(), 8);
  util::Rng rng(8);
  EXPECT_FALSE(randomlyEquivalent(a, b, rng, 4));
}

TEST(Simulate, DifferentLogicDetected) {
  // An inverter chain of odd vs even length computes different functions.
  const Netlist odd = inverterChain(lib(), 3);
  const Netlist even = inverterChain(lib(), 4);
  util::Rng rng(9);
  EXPECT_FALSE(randomlyEquivalent(odd, even, rng, 4));
}

TEST(Simulate, InputCountEnforced) {
  const Netlist adder = rippleCarryAdder(lib(), 4);
  EXPECT_THROW(evaluate(adder, {0, 1}), std::invalid_argument);
}

TEST(Simulate, MeasuredActivityBracketsPropagatedActivity) {
  // The probabilistic propagation (2p(1-p) with a temporal-correlation
  // scale) is a known-approximate estimate: it misses transition-density
  // mixing, so measurement runs somewhat hotter. Require the same scale —
  // the design-average ratio within [1.0, 2.0] — which pins both the sign
  // of the bias and its magnitude.
  util::Rng genRng(10);
  GeneratorConfig cfg;
  cfg.gates = 400;
  const Netlist nl = randomLogic(lib(), cfg, genRng);
  util::Rng simRng(11);
  const auto measured = measureActivity(nl, simRng, 0.2, 128);
  const auto predicted = power::propagateActivity(nl, 0.5, 0.2);
  double measSum = 0.0, predSum = 0.0;
  for (int g : nl.gateIds()) {
    measSum += measured[static_cast<std::size_t>(g)];
    predSum += predicted.activity[static_cast<std::size_t>(g)];
  }
  const double ratio = measSum / predSum;
  EXPECT_GE(ratio, 1.0);
  EXPECT_LE(ratio, 2.0);
}

TEST(Simulate, ActivityOfInputsMatchesRequest) {
  const Netlist chain = inverterChain(lib(), 2);
  util::Rng rng(12);
  const auto measured = measureActivity(chain, rng, 0.3, 256);
  EXPECT_NEAR(measured[0], 0.3, 0.02);  // node 0 is the primary input
}

}  // namespace
}  // namespace nano::circuit
