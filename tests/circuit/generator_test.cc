#include "circuit/generator.h"

#include "sta/sta.h"

#include <gtest/gtest.h>

namespace nano::circuit {
namespace {

const Library& lib() {
  static const Library instance(tech::nodeByFeature(100));
  return instance;
}

TEST(RandomLogic, GeneratesRequestedShape) {
  util::Rng rng(42);
  GeneratorConfig cfg;
  cfg.inputs = 32;
  cfg.gates = 500;
  cfg.outputs = 16;
  const Netlist nl = randomLogic(lib(), cfg, rng);
  EXPECT_EQ(nl.inputCount(), 32);
  EXPECT_EQ(nl.gateCount(), 500);
  EXPECT_GE(static_cast<int>(nl.outputs().size()), 16);
  EXPECT_NO_THROW(nl.validate());
}

TEST(RandomLogic, DeterministicFromSeed) {
  GeneratorConfig cfg;
  cfg.gates = 200;
  util::Rng r1(7), r2(7);
  const Netlist a = randomLogic(lib(), cfg, r1);
  const Netlist b = randomLogic(lib(), cfg, r2);
  ASSERT_EQ(a.nodeCount(), b.nodeCount());
  for (int i = 0; i < a.nodeCount(); ++i) {
    EXPECT_EQ(a.node(i).fanins, b.node(i).fanins);
  }
}

TEST(RandomLogic, NoDanglingGates) {
  util::Rng rng(3);
  GeneratorConfig cfg;
  cfg.gates = 300;
  const Netlist nl = randomLogic(lib(), cfg, rng);
  for (int g : nl.gateIds()) {
    EXPECT_TRUE(!nl.node(g).fanouts.empty() || nl.node(g).isOutput);
  }
}

TEST(RandomLogic, AllGatesStartHighVddLowVth) {
  util::Rng rng(3);
  GeneratorConfig cfg;
  cfg.gates = 100;
  const Netlist nl = randomLogic(lib(), cfg, rng);
  for (int g : nl.gateIds()) {
    EXPECT_EQ(nl.node(g).cell.vddDomain, VddDomain::High);
    EXPECT_EQ(nl.node(g).cell.vth, VthClass::Low);
  }
}

TEST(RandomLogic, RejectsBadConfig) {
  util::Rng rng(1);
  GeneratorConfig cfg;
  cfg.gates = 5;
  cfg.depth = 10;  // fewer gates than levels
  EXPECT_THROW(randomLogic(lib(), cfg, rng), std::invalid_argument);
}

TEST(RippleCarryAdder, StructureIsNineNandPerBit) {
  const Netlist nl = rippleCarryAdder(lib(), 8);
  EXPECT_EQ(nl.inputCount(), 2 * 8 + 1);
  EXPECT_EQ(nl.gateCount(), 9 * 8);
  EXPECT_EQ(nl.outputs().size(), 8u + 1u);  // sums + carry out
  EXPECT_NO_THROW(nl.validate());
}

TEST(RippleCarryAdder, DepthGrowsWithWidth) {
  // The carry chain makes critical depth linear in bit count; check via a
  // rough proxy: node count of the longest fanin chain grows.
  const Netlist small = rippleCarryAdder(lib(), 4);
  const Netlist big = rippleCarryAdder(lib(), 16);
  EXPECT_GT(big.gateCount(), 3 * small.gateCount());
}

TEST(RippleCarryAdder, RejectsZeroBits) {
  EXPECT_THROW(rippleCarryAdder(lib(), 0), std::invalid_argument);
}

TEST(InverterChain, LinearTopology) {
  const Netlist nl = inverterChain(lib(), 10);
  EXPECT_EQ(nl.gateCount(), 10);
  EXPECT_EQ(nl.inputCount(), 1);
  for (int g : nl.gateIds()) {
    EXPECT_LE(nl.node(g).fanouts.size(), 1u);
  }
}

TEST(InverterChain, UsesRequestedDrive) {
  const Netlist nl = inverterChain(lib(), 3, 4.0);
  for (int g : nl.gateIds()) {
    EXPECT_DOUBLE_EQ(nl.node(g).cell.drive, 4.0);
  }
}

TEST(BufferTree, CoversLeaves) {
  const Netlist nl = bufferTree(lib(), 16, 4);
  EXPECT_EQ(nl.outputs().size(), 16u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(BufferTree, Rejections) {
  EXPECT_THROW(bufferTree(lib(), 0), std::invalid_argument);
  EXPECT_THROW(bufferTree(lib(), 8, 1), std::invalid_argument);
}


TEST(KoggeStoneAdder, StructureAndOutputs) {
  const Netlist nl = koggeStoneAdder(lib(), 8);
  EXPECT_EQ(nl.inputCount(), 2 * 8 + 1);
  EXPECT_EQ(nl.outputs().size(), 9u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(KoggeStoneAdder, LogDepthBeatsRippleForWideWords) {
  // O(log N) vs O(N): the prefix adder is decisively faster at 16+ bits
  // and the gap widens with width.
  for (int bits : {16, 32}) {
    const Netlist ripple = rippleCarryAdder(lib(), bits);
    const Netlist kogge = koggeStoneAdder(lib(), bits);
    const double dr = sta::analyze(ripple).criticalPathDelay;
    const double dk = sta::analyze(kogge).criticalPathDelay;
    EXPECT_LT(dk, 0.6 * dr) << bits;
    EXPECT_GT(kogge.gateCount(), ripple.gateCount()) << bits;  // area price
  }
}

TEST(KoggeStoneAdder, DepthGrowsLogarithmically) {
  const double d8 = sta::analyze(koggeStoneAdder(lib(), 8)).criticalPathDelay;
  const double d32 =
      sta::analyze(koggeStoneAdder(lib(), 32)).criticalPathDelay;
  // Two doublings of width: well under 2x the delay (ripple would be 4x).
  EXPECT_LT(d32, 2.0 * d8);
}

TEST(KoggeStoneAdder, RejectsZeroBits) {
  EXPECT_THROW(koggeStoneAdder(lib(), 0), std::invalid_argument);
}

TEST(ArrayMultiplier, StructureAndOutputs) {
  const Netlist nl = arrayMultiplier(lib(), 8);
  EXPECT_EQ(nl.inputCount(), 16);
  EXPECT_EQ(nl.outputs().size(), 16u);  // 2N product bits
  EXPECT_NO_THROW(nl.validate());
  // N^2 partial products plus adder rows: hundreds of gates at 8 bits.
  EXPECT_GT(nl.gateCount(), 400);
}

TEST(ArrayMultiplier, QuadraticGateGrowth) {
  const int g4 = arrayMultiplier(lib(), 4).gateCount();
  const int g8 = arrayMultiplier(lib(), 8).gateCount();
  EXPECT_NEAR(static_cast<double>(g8) / g4, 4.0, 1.0);
}

TEST(ArrayMultiplier, RejectsTooNarrow) {
  EXPECT_THROW(arrayMultiplier(lib(), 1), std::invalid_argument);
}

}  // namespace
}  // namespace nano::circuit
