// Property tests for the NetlistSoA mirror: seeded random netlists at
// 100 / 1k / 10k / 100k gates round-trip object -> SoA -> object with
// byte-identical netlist_io serialization, and the flat adjacency +
// timing-operand arrays agree with the object netlist exactly.
#include "circuit/netlist_soa.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "circuit/generator.h"
#include "circuit/library.h"
#include "circuit/netlist.h"
#include "circuit/netlist_io.h"
#include "tech/itrs.h"
#include "util/rng.h"

namespace nano::circuit {
namespace {

const Library& lib() {
  static const Library instance(tech::nodeByFeature(35));
  return instance;
}

Netlist makeRandom(int gates, std::uint64_t seed) {
  util::Rng rng(seed);
  return pipelinedLogic(lib(), scaledConfig(gates), rng, 4);
}

std::string serialize(const Netlist& nl) {
  std::ostringstream os;
  writeNetlist(os, nl);
  return os.str();
}

class SoaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SoaPropertyTest, MirrorsCountsFlagsAndAdjacency) {
  const Netlist nl = makeRandom(GetParam(), 11u * GetParam());
  const NetlistSoA soa(nl);

  ASSERT_EQ(soa.nodeCount(), static_cast<std::uint32_t>(nl.nodeCount()));
  EXPECT_EQ(soa.gateCount(), static_cast<std::uint32_t>(nl.gateCount()));
  EXPECT_EQ(soa.inputCount(), static_cast<std::uint32_t>(nl.inputCount()));
  EXPECT_EQ(soa.wireCapPerFanout(), nl.wireCapPerFanout());
  EXPECT_EQ(soa.outputLoadCap(), nl.outputLoadCap());

  // Endpoint list in insertion order.
  ASSERT_EQ(soa.outputs().size(), nl.outputs().size());
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    EXPECT_EQ(static_cast<int>(soa.outputs()[i]), nl.outputs()[i]);
  }

  for (int id = 0; id < nl.nodeCount(); ++id) {
    const auto u = static_cast<std::uint32_t>(id);
    const auto& node = nl.node(id);
    ASSERT_EQ(soa.isGate(u), node.kind == Netlist::NodeKind::Gate);
    ASSERT_EQ(soa.isOutput(u), node.isOutput);

    // Edge lists preserve object order exactly (stronger than the multiset
    // equality the round-trip needs — and it implies it).
    const auto fi = soa.fanins(u);
    ASSERT_EQ(fi.size(), node.fanins.size());
    for (std::size_t k = 0; k < fi.size(); ++k) {
      ASSERT_EQ(static_cast<int>(fi[k]), node.fanins[k]);
    }
    const auto fo = soa.fanouts(u);
    ASSERT_EQ(fo.size(), node.fanouts.size());
    for (std::size_t k = 0; k < fo.size(); ++k) {
      ASSERT_EQ(static_cast<int>(fo[k]), node.fanouts[k]);
    }

    // Timing operands are bit-identical, so gateDelay matches Cell::delay.
    ASSERT_EQ(soa.loadCap(u), nl.loadCap(id));
    if (node.kind == Netlist::NodeKind::Gate) {
      ASSERT_EQ(soa.gateDelay(u), node.cell.delay(nl.loadCap(id)));
      ASSERT_EQ(soa.inputCap(u), node.cell.inputCap);
    } else {
      ASSERT_EQ(soa.gateDelay(u), 0.0);
    }
  }
}

TEST_P(SoaPropertyTest, RoundTripSerializationIsByteIdentical) {
  const Netlist nl = makeRandom(GetParam(), 97u * GetParam() + 3);
  const NetlistSoA soa(nl);  // keepCells defaults on
  ASSERT_TRUE(soa.hasCells());
  const Netlist back = soa.toNetlist();
  EXPECT_EQ(serialize(back), serialize(nl));
}

TEST_P(SoaPropertyTest, LevelScheduleCoversAndRespectsTopology) {
  const Netlist nl = makeRandom(GetParam(), 5u * GetParam() + 1);
  const NetlistSoA soa(nl, {.keepCells = false});
  ASSERT_GT(soa.levelCount(), 0u);
  const auto order = soa.order();
  ASSERT_EQ(order.size(), soa.nodeCount());
  std::vector<bool> seen(soa.nodeCount(), false);
  for (const std::uint32_t id : order) {
    ASSERT_LT(id, soa.nodeCount());
    ASSERT_FALSE(seen[id]);
    seen[id] = true;
  }
  for (std::uint32_t id = 0; id < soa.nodeCount(); ++id) {
    for (const std::uint32_t f : soa.fanins(id)) {
      ASSERT_GT(soa.levelOf(id), soa.levelOf(f));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SoaPropertyTest,
                         ::testing::Values(100, 1000, 10000, 100000));

TEST(NetlistSoATest, SetCellTracksReplaceCellBitForBit) {
  Netlist nl = makeRandom(2000, 42);
  NetlistSoA soa(nl);
  util::Rng rng(7);
  const auto gates = nl.gateIds();
  for (int trial = 0; trial < 200; ++trial) {
    const int g = gates[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<int>(gates.size()) - 1))];
    const auto& node = nl.node(g);
    const Cell swapped = lib().generateCustom(
        node.cell.function, node.cell.drive * rng.uniform(0.5, 2.0),
        node.cell.vth, node.cell.vddDomain);
    nl.replaceCell(g, swapped);
    soa.setCell(static_cast<std::uint32_t>(g), swapped);
    const auto u = static_cast<std::uint32_t>(g);
    ASSERT_EQ(soa.gateDelay(u), nl.node(g).cell.delay(nl.loadCap(g)));
    for (int f : nl.node(g).fanins) {
      ASSERT_EQ(soa.loadCap(static_cast<std::uint32_t>(f)), nl.loadCap(f));
    }
  }
}

TEST(NetlistSoATest, RebuildReusesArenaAtSteadyState) {
  const Netlist nl = makeRandom(5000, 9);
  NetlistSoA soa(nl, {.keepCells = false});
  const std::int64_t growth = soa.arenaGrowthCount();
  ASSERT_GT(soa.arenaBytes(), 0u);
  for (int i = 0; i < 5; ++i) soa.rebuild(nl, {.keepCells = false});
  EXPECT_EQ(soa.arenaGrowthCount(), growth);
}

TEST(NetlistSoATest, ToNetlistWithoutCellsThrows) {
  const Netlist nl = makeRandom(100, 1);
  const NetlistSoA soa(nl, {.keepCells = false});
  EXPECT_FALSE(soa.hasCells());
  EXPECT_THROW((void)soa.toNetlist(), std::logic_error);
}

}  // namespace
}  // namespace nano::circuit
