#include "circuit/verilog_out.h"

#include <gtest/gtest.h>

#include <sstream>

#include "circuit/generator.h"

namespace nano::circuit {
namespace {

const Library& lib() {
  static const Library instance(tech::nodeByFeature(100));
  return instance;
}

std::string emit(const Netlist& nl) {
  std::ostringstream os;
  writeVerilog(os, nl, "dut");
  return os.str();
}

TEST(VerilogOut, ModuleHeaderAndPorts) {
  Netlist nl;
  const int a = nl.addInput();
  const int g = nl.addGate(lib().pick(CellFunction::Inv, 1.0), {a});
  nl.markOutput(g);
  const std::string v = emit(nl);
  EXPECT_NE(v.find("module dut (in0, out0);"), std::string::npos);
  EXPECT_NE(v.find("input in0;"), std::string::npos);
  EXPECT_NE(v.find("output out0;"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(VerilogOut, InstancesNamedAfterCells) {
  Netlist nl;
  const int a = nl.addInput();
  const int b = nl.addInput();
  const int g = nl.addGate(lib().pick(CellFunction::Nand2, 2.0), {a, b});
  nl.markOutput(g);
  const std::string v = emit(nl);
  const std::string prim = verilogCellName(nl.node(g).cell);
  EXPECT_NE(v.find(prim + " g2 (.y(n2), .a(in0), .b(in1));"),
            std::string::npos);
  // The primitive stub exists with matching arity.
  EXPECT_NE(v.find("module " + prim + " (y, a, b);"), std::string::npos);
}

TEST(VerilogOut, CellNamesSanitized) {
  const Cell c = lib().generateCustom(CellFunction::Inv, 2.5);
  const std::string name = verilogCellName(c);
  for (char ch : name) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_')
        << name;
  }
  EXPECT_FALSE(std::isdigit(static_cast<unsigned char>(name[0])));
}

TEST(VerilogOut, OutputAliasesEmitted) {
  const Netlist nl = rippleCarryAdder(lib(), 2);
  const std::string v = emit(nl);
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    EXPECT_NE(v.find("assign out" + std::to_string(i) + " = "),
              std::string::npos);
  }
}

TEST(VerilogOut, InstanceCountMatchesGates) {
  util::Rng rng(55);
  GeneratorConfig cfg;
  cfg.gates = 120;
  const Netlist nl = randomLogic(lib(), cfg, rng);
  const std::string v = emit(nl);
  // Count instance lines "  <prim> g<id> (".
  int instances = 0;
  std::istringstream is(v);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find(" g") != std::string::npos &&
        line.find("(.y(") != std::string::npos) {
      ++instances;
    }
  }
  EXPECT_EQ(instances, nl.gateCount());
}

TEST(VerilogOut, BalancedModuleEndmodule) {
  const Netlist nl = koggeStoneAdder(lib(), 4);
  const std::string v = emit(nl);
  std::size_t modules = 0, ends = 0;
  for (std::size_t pos = v.find("module"); pos != std::string::npos;
       pos = v.find("module", pos + 1)) {
    if (pos == 0 || v[pos - 1] != 'd') ++modules;  // not "endmodule"
  }
  for (std::size_t pos = v.find("endmodule"); pos != std::string::npos;
       pos = v.find("endmodule", pos + 1)) {
    ++ends;
  }
  EXPECT_EQ(modules, ends);
  EXPECT_GT(modules, 1u);  // design + primitive stubs
}

}  // namespace
}  // namespace nano::circuit
