// Robustness (fuzz-shaped) tests for the one-shot levelizer: hostile
// graphs — cycles, self-loops, out-of-range indices, malformed CSR shapes,
// disconnected and zero-fanout nodes — must come back as structured error
// results, never exceptions or UB. Runs under ASan/UBSan in CI.
#include "circuit/levelize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace nano::circuit {
namespace {

using U32 = std::uint32_t;

LevelSchedule run(U32 n, const std::vector<U32>& off,
                  const std::vector<U32>& idx) {
  return levelize(n, off, idx);
}

TEST(LevelizeTest, EmptyGraphIsOk) {
  const LevelSchedule s = run(0, {0}, {});
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.levelCount, 0u);
  EXPECT_TRUE(s.order.empty());
}

TEST(LevelizeTest, ChainLevelsAreSequential) {
  // 0 -> 1 -> 2 -> 3
  const LevelSchedule s = run(4, {0, 0, 1, 2, 3}, {0, 1, 2});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.levelCount, 4u);
  for (U32 i = 0; i < 4; ++i) EXPECT_EQ(s.levelOf[i], i);
  EXPECT_EQ(s.order, (std::vector<U32>{0, 1, 2, 3}));
}

TEST(LevelizeTest, DiamondAndOrderSortedWithinLevel) {
  // 0 feeds 1 and 2; both feed 3.
  const LevelSchedule s = run(4, {0, 0, 1, 2, 4}, {0, 0, 1, 2});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.levelCount, 3u);
  EXPECT_EQ(s.levelOf[1], 1u);
  EXPECT_EQ(s.levelOf[2], 1u);
  EXPECT_EQ(s.levelOf[3], 2u);
  // Within-level ids ascend (the STA sweeps rely on this for determinism).
  EXPECT_EQ(s.order, (std::vector<U32>{0, 1, 2, 3}));
}

TEST(LevelizeTest, DisconnectedAndZeroFanoutNodesAreOrdinary) {
  // 0 -> 1; 2 isolated (level 0, nothing consumes it); 3 -> nothing.
  const LevelSchedule s = run(4, {0, 0, 1, 1, 1}, {0});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.levelOf[2], 0u);
  EXPECT_EQ(s.levelOf[3], 0u);
  EXPECT_EQ(s.order.size(), 4u);
}

TEST(LevelizeTest, SelfLoopIsStructuredError) {
  const LevelSchedule s = run(2, {0, 0, 2}, {0, 1});  // node 1 lists itself
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status, LevelizeStatus::SelfLoop);
  EXPECT_EQ(s.offender, 1);
  EXPECT_FALSE(s.message.empty());
}

TEST(LevelizeTest, TwoNodeCycleIsDetected) {
  // 0 <- 1 and 1 <- 0.
  const LevelSchedule s = run(2, {0, 1, 2}, {1, 0});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status, LevelizeStatus::Cycle);
  EXPECT_EQ(s.offender, 0);  // smallest unreleased id
}

TEST(LevelizeTest, LongCycleWithTailIsDetected) {
  // 0 -> 1 -> 2 -> 3 -> 1 (cycle 1-2-3), plus source 0.
  const LevelSchedule s = run(4, {0, 0, 2, 3, 4}, {0, 3, 1, 2});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status, LevelizeStatus::Cycle);
  EXPECT_EQ(s.offender, 1);
}

TEST(LevelizeTest, OutOfRangeFaninIsStructuredError) {
  const LevelSchedule s = run(2, {0, 0, 1}, {7});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status, LevelizeStatus::BadIndex);
  EXPECT_EQ(s.offender, 1);  // the node holding the bad edge
}

TEST(LevelizeTest, MalformedOffsetsAreStructuredErrors) {
  // Wrong offsets length.
  EXPECT_EQ(run(3, {0, 0, 0}, {}).status, LevelizeStatus::BadShape);
  // Non-monotone offsets.
  EXPECT_EQ(run(2, {0, 2, 1}, {0, 0}).status, LevelizeStatus::BadShape);
  // Final offset disagrees with the fanin array size.
  EXPECT_EQ(run(2, {0, 0, 1}, {}).status, LevelizeStatus::BadShape);
  // Empty offsets entirely.
  EXPECT_EQ(run(1, {}, {}).status, LevelizeStatus::BadShape);
}

TEST(LevelizeTest, StatusNamesAreStable) {
  EXPECT_STREQ(levelizeStatusName(LevelizeStatus::Ok), "ok");
  EXPECT_STREQ(levelizeStatusName(LevelizeStatus::SelfLoop), "self_loop");
  EXPECT_STREQ(levelizeStatusName(LevelizeStatus::Cycle), "cycle");
  EXPECT_STREQ(levelizeStatusName(LevelizeStatus::BadIndex), "bad_index");
  EXPECT_STREQ(levelizeStatusName(LevelizeStatus::BadShape), "bad_shape");
}

// Randomized DAGs: levelize must accept every valid topologically-ordered
// graph and return a schedule that (a) covers every node exactly once and
// (b) puts every node strictly above all its fanins.
TEST(LevelizeTest, RandomDagsProduceConsistentSchedules) {
  util::Rng rng(20260808);
  for (int trial = 0; trial < 50; ++trial) {
    const U32 n = static_cast<U32>(rng.uniformInt(1, 200));
    std::vector<U32> off = {0};
    std::vector<U32> idx;
    for (U32 i = 0; i < n; ++i) {
      const int fanins = i == 0 ? 0 : rng.uniformInt(0, 3);
      for (int k = 0; k < fanins; ++k) {
        idx.push_back(static_cast<U32>(rng.uniformInt(0, static_cast<int>(i) - 1)));
      }
      off.push_back(static_cast<U32>(idx.size()));
    }
    const LevelSchedule s = levelize(n, off, idx);
    ASSERT_TRUE(s.ok()) << "trial " << trial;
    ASSERT_EQ(s.order.size(), n);
    std::vector<bool> seen(n, false);
    for (const U32 id : s.order) {
      ASSERT_LT(id, n);
      ASSERT_FALSE(seen[id]);
      seen[id] = true;
    }
    for (U32 i = 0; i < n; ++i) {
      for (U32 e = off[i]; e < off[i + 1]; ++e) {
        ASSERT_GT(s.levelOf[i], s.levelOf[idx[e]]);
      }
    }
    // levelOffsets buckets agree with levelOf.
    ASSERT_EQ(s.levelOffsets.size(), static_cast<std::size_t>(s.levelCount) + 1);
    for (U32 l = 0; l < s.levelCount; ++l) {
      for (U32 k = s.levelOffsets[l]; k < s.levelOffsets[l + 1]; ++k) {
        ASSERT_EQ(s.levelOf[s.order[k]], l);
      }
    }
  }
}

// Hostile fuzz: random (often invalid) CSR bytes must never crash or
// throw — every outcome is a structured status. ASan/UBSan patrols UB.
TEST(LevelizeTest, RandomGarbageNeverThrows) {
  util::Rng rng(0xFEED);
  for (int trial = 0; trial < 300; ++trial) {
    const U32 n = static_cast<U32>(rng.uniformInt(0, 24));
    const int offLen = rng.uniformInt(0, static_cast<int>(n) + 3);
    std::vector<U32> off;
    off.reserve(static_cast<std::size_t>(offLen));
    for (int i = 0; i < offLen; ++i) {
      off.push_back(static_cast<U32>(rng.uniformInt(0, 40)));
    }
    const int idxLen = rng.uniformInt(0, 32);
    std::vector<U32> idx;
    idx.reserve(static_cast<std::size_t>(idxLen));
    for (int i = 0; i < idxLen; ++i) {
      idx.push_back(static_cast<U32>(rng.uniformInt(0, 40)));
    }
    LevelSchedule s;
    ASSERT_NO_THROW(s = levelize(n, off, idx));
    if (!s.ok()) {
      EXPECT_FALSE(s.message.empty());
    } else {
      EXPECT_EQ(s.order.size(), n);
    }
  }
}

}  // namespace
}  // namespace nano::circuit
