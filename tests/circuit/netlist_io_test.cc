#include "circuit/netlist_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "circuit/generator.h"
#include "circuit/verilog_out.h"
#include "power/power_model.h"
#include "sta/sta.h"

namespace nano::circuit {
namespace {

const Library& lib() {
  static const Library instance(tech::nodeByFeature(100));
  return instance;
}

Netlist roundTrip(const Netlist& nl) {
  std::ostringstream os;
  writeNetlist(os, nl);
  std::istringstream is(os.str());
  return readNetlist(is, lib());
}

TEST(NetlistIo, RoundTripPreservesStructure) {
  util::Rng rng(99);
  GeneratorConfig cfg;
  cfg.gates = 300;
  const Netlist original = randomLogic(lib(), cfg, rng);
  const Netlist copy = roundTrip(original);
  ASSERT_EQ(copy.nodeCount(), original.nodeCount());
  ASSERT_EQ(copy.gateCount(), original.gateCount());
  ASSERT_EQ(copy.outputs().size(), original.outputs().size());
  for (int i = 0; i < original.nodeCount(); ++i) {
    EXPECT_EQ(copy.node(i).kind, original.node(i).kind);
    EXPECT_EQ(copy.node(i).fanins, original.node(i).fanins);
    EXPECT_EQ(copy.node(i).isOutput, original.node(i).isOutput);
  }
}

TEST(NetlistIo, RoundTripPreservesCells) {
  util::Rng rng(98);
  GeneratorConfig cfg;
  cfg.gates = 150;
  Netlist original = randomLogic(lib(), cfg, rng);
  // Mix in custom drives and corners so the corner encoding is exercised.
  const auto gates = original.gateIds();
  original.replaceCell(gates[0],
                       lib().generateCustom(original.node(gates[0]).cell.function,
                                            2.718, VthClass::High,
                                            VddDomain::Low));
  const Netlist copy = roundTrip(original);
  for (int g : original.gateIds()) {
    const Cell& a = original.node(g).cell;
    const Cell& b = copy.node(g).cell;
    EXPECT_EQ(a.function, b.function);
    EXPECT_EQ(a.vth, b.vth);
    EXPECT_EQ(a.vddDomain, b.vddDomain);
    EXPECT_NEAR(a.drive, b.drive, 1e-9);
    EXPECT_NEAR(a.inputCap, b.inputCap, 1e-12 * a.inputCap);
  }
}

TEST(NetlistIo, RoundTripPreservesTimingAndPower) {
  util::Rng rng(97);
  GeneratorConfig cfg;
  cfg.gates = 200;
  const Netlist original = randomLogic(lib(), cfg, rng);
  const Netlist copy = roundTrip(original);
  const auto t1 = sta::analyze(original);
  const auto t2 = sta::analyze(copy);
  EXPECT_NEAR(t2.criticalPathDelay, t1.criticalPathDelay,
              1e-9 * t1.criticalPathDelay);
  const auto p1 = power::computePower(original, 1e9);
  const auto p2 = power::computePower(copy, 1e9);
  EXPECT_NEAR(p2.total(), p1.total(), 1e-9 * p1.total());
}

TEST(NetlistIo, CommentsAndBlankLinesIgnored) {
  std::istringstream is(
      "# header comment\n"
      "\n"
      "netlist wirecap 1e-15 outload 2e-15\n"
      "input 0\n"
      "# mid comment\n"
      "gate 1 INV drive 1 vth low vdd high fanins 0\n"
      "output 1\n");
  const Netlist nl = readNetlist(is, lib());
  EXPECT_EQ(nl.gateCount(), 1);
  EXPECT_DOUBLE_EQ(nl.wireCapPerFanout(), 1e-15);
}

TEST(NetlistIo, NonContiguousFileIdsAccepted) {
  std::istringstream is(
      "netlist wirecap 0 outload 0\n"
      "input 10\n"
      "gate 20 INV drive 1 vth low vdd high fanins 10\n"
      "output 20\n");
  const Netlist nl = readNetlist(is, lib());
  EXPECT_EQ(nl.gateCount(), 1);
  EXPECT_EQ(nl.inputCount(), 1);
}

TEST(NetlistIo, ParseErrors) {
  const Library& l = lib();
  {
    std::istringstream is("input 0\n");
    EXPECT_THROW(readNetlist(is, l), std::runtime_error);  // before header
  }
  {
    std::istringstream is(
        "netlist wirecap 0 outload 0\n"
        "gate 1 BOGUS drive 1 vth low vdd high fanins 0\n");
    EXPECT_THROW(readNetlist(is, l), std::runtime_error);
  }
  {
    std::istringstream is(
        "netlist wirecap 0 outload 0\n"
        "input 0\n"
        "gate 1 INV drive 1 vth low vdd high fanins 7\n");
    EXPECT_THROW(readNetlist(is, l), std::runtime_error);  // unknown fanin
  }
  {
    std::istringstream is("");
    EXPECT_THROW(readNetlist(is, l), std::runtime_error);  // empty
  }
  {
    std::istringstream is(
        "netlist wirecap 0 outload 0\n"
        "frobnicate 1\n");
    EXPECT_THROW(readNetlist(is, l), std::runtime_error);  // keyword
  }
}

// write -> parse -> write must be byte-identical: the writer emits doubles
// at precision 17 (round-trip exact) and nodes in topological id order, so
// any second-generation diff means the parser dropped or renumbered
// something. Exercised at three sizes to cover fanin-list growth and
// multi-chunk stream buffering.
class NetlistIoIdentity : public ::testing::TestWithParam<int> {};

TEST_P(NetlistIoIdentity, SecondGenerationTextIsIdentical) {
  util::Rng rng(2026 + GetParam());
  GeneratorConfig cfg;
  cfg.gates = GetParam();
  const Netlist original = randomLogic(lib(), cfg, rng);
  std::ostringstream firstText;
  writeNetlist(firstText, original);
  std::istringstream is(firstText.str());
  const Netlist reread = readNetlist(is, lib());
  std::ostringstream secondText;
  writeNetlist(secondText, reread);
  EXPECT_EQ(secondText.str(), firstText.str())
      << "round-trip altered the serialized form at " << GetParam()
      << " gates";
}

INSTANTIATE_TEST_SUITE_P(Sizes, NetlistIoIdentity,
                         ::testing::Values(100, 1000, 10000));

TEST(NetlistIo, VerilogExportIsStableAcrossRoundTrip) {
  util::Rng rng(4242);
  GeneratorConfig cfg;
  cfg.gates = 500;
  const Netlist original = randomLogic(lib(), cfg, rng);
  std::ostringstream beforeV, afterV;
  writeVerilog(beforeV, original, "dut");
  writeVerilog(afterV, roundTrip(original), "dut");
  EXPECT_EQ(afterV.str(), beforeV.str());
  EXPECT_NE(beforeV.str().find("module dut"), std::string::npos);
}

TEST(NetlistIo, AdderRoundTripsThroughText) {
  const Netlist adder = rippleCarryAdder(lib(), 6);
  const Netlist copy = roundTrip(adder);
  EXPECT_EQ(copy.gateCount(), 9 * 6);
  EXPECT_EQ(copy.outputs().size(), 7u);
}

}  // namespace
}  // namespace nano::circuit
