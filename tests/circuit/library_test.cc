#include "circuit/library.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace nano::circuit {
namespace {

using namespace nano::units;

const Library& lib100() {
  static const Library lib(tech::nodeByFeature(100));
  return lib;
}

TEST(Library, CellCountMatchesConfig) {
  const auto& lib = lib100();
  const auto& cfg = lib.config();
  const std::size_t expected = cfg.functions.size() *
                               cfg.driveStrengths.size() * 2 /*vth*/ *
                               2 /*vdd*/;
  EXPECT_EQ(lib.cells().size(), expected);
}

TEST(Library, PickReturnsSmallestSufficient) {
  const Cell& c = lib100().pick(CellFunction::Inv, 3.5);
  EXPECT_DOUBLE_EQ(c.drive, 4.0);
  EXPECT_EQ(c.function, CellFunction::Inv);
}

TEST(Library, PickExactMatch) {
  EXPECT_DOUBLE_EQ(lib100().pick(CellFunction::Nand2, 8.0).drive, 8.0);
}

TEST(Library, PickSaturatesAtLargest) {
  EXPECT_DOUBLE_EQ(lib100().pick(CellFunction::Inv, 1e9).drive, 32.0);
}

TEST(Library, PickRespectsCorner) {
  const Cell& c =
      lib100().pick(CellFunction::Nor2, 2.0, VthClass::High, VddDomain::Low);
  EXPECT_EQ(c.vth, VthClass::High);
  EXPECT_EQ(c.vddDomain, VddDomain::Low);
}

TEST(Library, RecornerPreservesFunctionAndDrive) {
  const auto& lib = lib100();
  const Cell& base = lib.pick(CellFunction::Nand3, 4.0);
  const Cell re = lib.recorner(base, VthClass::High, VddDomain::Low);
  EXPECT_EQ(re.function, CellFunction::Nand3);
  EXPECT_DOUBLE_EQ(re.drive, 4.0);
  EXPECT_EQ(re.vth, VthClass::High);
  EXPECT_EQ(re.vddDomain, VddDomain::Low);
}

TEST(Library, GenerateCustomHitsExactDrive) {
  // Paper Section 2.3: on-the-fly cells match load conditions exactly.
  const Cell c = lib100().generateCustom(CellFunction::Inv, 2.718);
  EXPECT_DOUBLE_EQ(c.drive, 2.718);
}

TEST(Library, CustomCellInterpolatesDiscreteNeighbors) {
  const auto& lib = lib100();
  const Cell lo = lib.pick(CellFunction::Inv, 2.0);
  const Cell hi = lib.pick(CellFunction::Inv, 3.0);
  const Cell mid = lib.generateCustom(CellFunction::Inv, 2.5);
  EXPECT_GT(mid.inputCap, lo.inputCap);
  EXPECT_LT(mid.inputCap, hi.inputCap);
  EXPECT_LT(mid.driveResistance, lo.driveResistance);
  EXPECT_GT(mid.driveResistance, hi.driveResistance);
}

TEST(Library, SmallestInverterCapComparableToPaper) {
  // The paper cites 1.5 fF for the smallest 180 nm library inverter; ours
  // at 180 nm (drive 0.5 unit) should be the same order.
  const Library lib(tech::nodeByFeature(180));
  const double cap = lib.smallestInverterInputCap();
  EXPECT_GT(cap, 0.2 * fF);
  EXPECT_LT(cap, 3.0 * fF);
}

TEST(Library, SingleVthConfig) {
  LibraryConfig cfg;
  cfg.dualVth = false;
  cfg.dualVdd = false;
  const Library lib(tech::nodeByFeature(100), cfg);
  for (const Cell& c : lib.cells()) {
    EXPECT_EQ(c.vth, VthClass::Low);
    EXPECT_EQ(c.vddDomain, VddDomain::High);
  }
}

TEST(Library, PoorLibraryHasCoarseGranularity) {
  // The paper's Section 2.3 complaint: sparse drive sets force overdrive.
  LibraryConfig poor;
  poor.driveStrengths = {4, 16, 32};
  const Library lib(tech::nodeByFeature(100), poor);
  // Asking for a tiny cell returns a 4x: heavy input-load overdesign.
  EXPECT_DOUBLE_EQ(lib.pick(CellFunction::Inv, 0.6).drive, 4.0);
}

TEST(Library, RejectsEmptyConfig) {
  LibraryConfig cfg;
  cfg.driveStrengths.clear();
  EXPECT_THROW(Library(tech::nodeByFeature(100), cfg), std::invalid_argument);
}

TEST(Library, PickThrowsForMissingFunction) {
  LibraryConfig cfg;
  cfg.functions = {CellFunction::Inv};
  const Library lib(tech::nodeByFeature(100), cfg);
  EXPECT_THROW(static_cast<void>(lib.pick(CellFunction::Xor2, 1.0)),
               std::out_of_range);
}

}  // namespace
}  // namespace nano::circuit
