// Full-corner sweep of the cell characterizer: every node x function x
// Vth x Vdd corner must produce physically ordered numbers. Guards the
// library against regressions anywhere on the roadmap.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/library.h"
#include "util/units.h"

namespace nano::circuit {
namespace {

using namespace nano::units;

class CornerSweep
    : public ::testing::TestWithParam<std::tuple<int, CellFunction>> {};

TEST_P(CornerSweep, AllCornersPhysicallyOrdered) {
  const auto [feature, function] = GetParam();
  const auto cz = CellCharacterizer::forNode(tech::nodeByFeature(feature));

  const Cell lvtHi = cz.characterize(function, 2.0, VthClass::Low, VddDomain::High);
  const Cell hvtHi = cz.characterize(function, 2.0, VthClass::High, VddDomain::High);
  const Cell lvtLo = cz.characterize(function, 2.0, VthClass::Low, VddDomain::Low);
  const Cell hvtLo = cz.characterize(function, 2.0, VthClass::High, VddDomain::Low);

  // All positive.
  for (const Cell* c : {&lvtHi, &hvtHi, &lvtLo, &hvtLo}) {
    EXPECT_GT(c->inputCap, 0.0);
    EXPECT_GT(c->driveResistance, 0.0);
    EXPECT_GT(c->selfCap, 0.0);
    EXPECT_GT(c->leakage, 0.0);
    EXPECT_GT(c->area, 0.0);
  }
  // Speed: LVT faster than HVT at both supplies; high Vdd faster than low.
  EXPECT_LT(lvtHi.driveResistance, hvtHi.driveResistance);
  EXPECT_LT(lvtLo.driveResistance, hvtLo.driveResistance);
  EXPECT_LT(lvtHi.driveResistance, lvtLo.driveResistance);
  // Leakage: HVT << LVT; low Vdd <= high Vdd (DIBL).
  EXPECT_LT(hvtHi.leakage, 0.3 * lvtHi.leakage);
  EXPECT_LE(lvtLo.leakage, lvtHi.leakage);
  // Energy per transition: low domain cheaper for the same load.
  const double load = 5 * fF;
  EXPECT_LT(lvtLo.switchingEnergy(load), lvtHi.switchingEnergy(load));
  // Vth flavor does not change footprint or input load.
  EXPECT_DOUBLE_EQ(lvtHi.area, hvtHi.area);
  EXPECT_DOUBLE_EQ(lvtHi.inputCap, hvtHi.inputCap);
}

TEST_P(CornerSweep, DriveScalingExact) {
  const auto [feature, function] = GetParam();
  const auto cz = CellCharacterizer::forNode(tech::nodeByFeature(feature));
  const Cell x1 = cz.characterize(function, 1.0, VthClass::Low, VddDomain::High);
  const Cell x3 = cz.characterize(function, 3.0, VthClass::Low, VddDomain::High);
  EXPECT_NEAR(x3.inputCap / x1.inputCap, 3.0, 1e-9);
  EXPECT_NEAR(x1.driveResistance / x3.driveResistance, 3.0, 1e-9);
  EXPECT_NEAR(x3.selfCap / x1.selfCap, 3.0, 1e-9);
  EXPECT_NEAR(x3.leakage / x1.leakage, 3.0, 1e-9);
  // Equal-drive delay at equal load per unit of drive: the intrinsic
  // (parasitic) delay is drive-independent.
  EXPECT_NEAR(x1.delay(0.0), x3.delay(0.0), 1e-9 * x1.delay(0.0));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CornerSweep,
    ::testing::Combine(::testing::Values(180, 100, 50, 35),
                       ::testing::Values(CellFunction::Inv,
                                         CellFunction::Nand2,
                                         CellFunction::Nor3,
                                         CellFunction::Xor2)));

TEST(CornerSweepExtra, Fo4ConsistencyWithGateModel) {
  // The library's unit inverter must agree with the standalone gate model
  // it is built from: an FO4-style delay computed through Cell matches the
  // InverterModel-based estimate within the parasitic-accounting slack.
  for (int f : {100, 35}) {
    const auto& node = tech::nodeByFeature(f);
    const auto cz = CellCharacterizer::forNode(node);
    const Cell inv = cz.characterize(CellFunction::Inv, 1.0, VthClass::Low,
                                     VddDomain::High);
    const double cellFo4 = inv.delay(4.0 * inv.inputCap);
    const double vth = device::solveVthForIon(node, node.ionTarget);
    const device::InverterModel model(node, vth, node.vdd,
                                      device::GateGeometry{2.0, 4.0});
    const double modelFo4 = model.fo4Delay();
    EXPECT_NEAR(cellFo4, modelFo4, 0.35 * modelFo4) << f;
  }
}

TEST(CornerSweepExtra, LeakagePerCellTracksEq4AcrossNodes) {
  // The inverter cell's leakage must scale across nodes like Vdd * Ioff *
  // width from the device model (same physics, two code paths).
  double prevRatio = -1.0;
  for (int f : {100, 50}) {
    const auto& node = tech::nodeByFeature(f);
    const auto cz = CellCharacterizer::forNode(node);
    const Cell inv = cz.characterize(CellFunction::Inv, 1.0, VthClass::Low,
                                     VddDomain::High);
    const double vth = device::solveVthForIon(node, node.ionTarget);
    const device::InverterModel model(node, vth, node.vdd,
                                      device::GateGeometry{2.0, 4.0});
    const double ratio = inv.leakage / model.leakagePower();
    EXPECT_NEAR(ratio, 1.0, 0.01) << f;  // INV leakage factor is 1.0
    if (prevRatio > 0) {
      EXPECT_NEAR(ratio, prevRatio, 0.01);
    }
    prevRatio = ratio;
  }
}

}  // namespace
}  // namespace nano::circuit
