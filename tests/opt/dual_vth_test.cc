#include "opt/dual_vth.h"

#include <gtest/gtest.h>

#include "circuit/generator.h"

namespace nano::opt {
namespace {

using circuit::Library;
using circuit::Netlist;
using circuit::VthClass;

struct Fixture {
  Library lib{tech::nodeByFeature(70)};
  Netlist design = [this] {
    util::Rng rng(202);
    circuit::GeneratorConfig cfg;
    cfg.gates = 600;
    cfg.outputs = 48;
    return circuit::randomLogic(lib, cfg, rng);
  }();
};

TEST(DualVth, LeakageSavingsInPaperBand) {
  // Paper Section 3.2.2: 40-80 % leakage reduction.
  Fixture f;
  const DualVthResult r = runDualVth(f.design, f.lib);
  EXPECT_GT(r.leakageSavings(), 0.40);
  EXPECT_LT(r.leakageSavings(), 0.95);
}

TEST(DualVth, MinimalCriticalPathPenalty) {
  // "with minimal penalty in critical path delay".
  Fixture f;
  const DualVthResult r = runDualVth(f.design, f.lib);
  EXPECT_LE(r.criticalPathPenalty(), 0.001);
  EXPECT_TRUE(r.timingAfter.meetsTiming());
}

TEST(DualVth, LargeFractionMovesToHighVth) {
  Fixture f;
  const DualVthResult r = runDualVth(f.design, f.lib);
  EXPECT_GT(r.fractionHighVth, 0.4);
}

TEST(DualVth, DynamicPowerUntouched) {
  Fixture f;
  const DualVthResult r = runDualVth(f.design, f.lib);
  EXPECT_NEAR(r.powerAfter.dynamic, r.powerBefore.dynamic,
              0.02 * r.powerBefore.dynamic);
}

TEST(DualVth, ZeroSlackChainStaysLowVth) {
  Fixture f;
  const Netlist chain = circuit::inverterChain(f.lib, 12);
  const DualVthResult r = runDualVth(chain, f.lib);
  EXPECT_LT(r.fractionHighVth, 0.05);
}

TEST(DualVth, RelaxedClockMovesEverything) {
  Fixture f;
  const Netlist chain = circuit::inverterChain(f.lib, 12);
  DualVthOptions opt;
  opt.clockPeriod = 5.0 * sta::analyze(chain).criticalPathDelay;
  const DualVthResult r = runDualVth(chain, f.lib, opt);
  EXPECT_GT(r.fractionHighVth, 0.9);
  EXPECT_GT(r.leakageSavings(), 0.85);
}

TEST(DualVth, GuardbandReducesAssignment) {
  Fixture f;
  DualVthOptions none;
  DualVthOptions guarded;
  guarded.guardband = 0.15;
  const DualVthResult a = runDualVth(f.design, f.lib, none);
  const DualVthResult b = runDualVth(f.design, f.lib, guarded);
  EXPECT_LE(b.fractionHighVth, a.fractionHighVth + 1e-12);
}

TEST(DualVth, CriticalPathStaysLowVth) {
  // Gates on the post-assignment critical path should be the fast flavor
  // (a high-Vth gate there would have violated timing).
  Fixture f;
  const DualVthResult r = runDualVth(f.design, f.lib);
  int lowOnPath = 0, highOnPath = 0;
  for (int id : r.timingAfter.criticalPath) {
    const auto& n = r.netlist.node(id);
    if (n.kind != Netlist::NodeKind::Gate) continue;
    (n.cell.vth == VthClass::Low ? lowOnPath : highOnPath)++;
  }
  EXPECT_GT(lowOnPath, highOnPath);
}

}  // namespace
}  // namespace nano::opt
