#include "opt/sizing.h"

#include <gtest/gtest.h>

#include "circuit/generator.h"

namespace nano::opt {
namespace {

using circuit::CellFunction;
using circuit::Library;
using circuit::Netlist;

struct Fixture {
  Library lib{tech::nodeByFeature(100)};
  Netlist oversized = [this] {
    // Everything at drive 4: plenty of downsizing headroom off-critical.
    util::Rng rng(303);
    circuit::GeneratorConfig cfg;
    cfg.gates = 400;
    cfg.outputs = 32;
    Netlist nl = circuit::randomLogic(lib, cfg, rng);
    for (int g : nl.gateIds()) {
      const auto& cell = nl.node(g).cell;
      nl.replaceCell(g, lib.pick(cell.function, 4.0, cell.vth, cell.vddDomain));
    }
    return nl;
  }();
};

TEST(Downsize, SavesPowerAndArea) {
  Fixture f;
  const SizingResult r = downsizeForPower(f.oversized, f.lib);
  EXPECT_GT(r.powerSavings(), 0.1);
  EXPECT_GT(r.areaSavings(), 0.2);
  EXPECT_GT(r.gatesResized, 0);
}

TEST(Downsize, TimingPreserved) {
  Fixture f;
  const SizingResult r = downsizeForPower(f.oversized, f.lib);
  EXPECT_TRUE(r.timingAfter.meetsTiming());
}

TEST(Downsize, SubLinearPowerReturn) {
  // The paper's Section 3.3 point: downsizing gives a sub-linear power
  // return because wire capacitance does not shrink with the gates.
  Fixture f;
  const SizingResult r = downsizeForPower(f.oversized, f.lib);
  EXPECT_LT(r.powerSavings(), r.areaSavings());
}

TEST(Downsize, ContinuousBeatsDiscreteSlightly) {
  Fixture f;
  SizingOptions discrete;
  SizingOptions continuous;
  continuous.continuousSizes = true;
  const SizingResult d = downsizeForPower(f.oversized, f.lib, discrete);
  const SizingResult c = downsizeForPower(f.oversized, f.lib, continuous);
  // The greedy downsize is a cascade of slack-threshold accept/reject
  // decisions, so ulp-level model changes (the exact ion fixed-point
  // solve) can flip a borderline move and shift either result by a few
  // percent. The claim under test is only that continuous sizing is
  // competitive with the discrete library, not a tight ordering.
  EXPECT_GE(c.powerSavings(), d.powerSavings() - 0.05);
}

TEST(Downsize, RespectsMinDrive) {
  Fixture f;
  SizingOptions opt;
  opt.minDrive = 2.0;
  const SizingResult r = downsizeForPower(f.oversized, f.lib, opt);
  for (int g : r.netlist.gateIds()) {
    EXPECT_GE(r.netlist.node(g).cell.drive, 2.0 - 1e-9);
  }
}

TEST(Upsize, RecoversAggressiveClock) {
  Fixture f;
  const Netlist chain = circuit::inverterChain(f.lib, 16, 1.0);
  const double self = sta::analyze(chain).criticalPathDelay;
  // Ask for 25 % faster than the unit-size chain.
  const SizingResult r = upsizeForTiming(chain, f.lib, 0.75 * self);
  EXPECT_TRUE(r.timingAfter.meetsTiming());
  EXPECT_GT(r.gatesResized, 0);
  EXPECT_GT(r.areaAfter, r.areaBefore);
}

TEST(Upsize, NoOpWhenAlreadyMet) {
  Fixture f;
  const Netlist chain = circuit::inverterChain(f.lib, 8);
  const double self = sta::analyze(chain).criticalPathDelay;
  const SizingResult r = upsizeForTiming(chain, f.lib, 2.0 * self);
  EXPECT_EQ(r.gatesResized, 0);
}

TEST(SizeToLoad, ContinuousSizesCutPowerVsCoarseLibrary) {
  // Paper Section 2.3: on-the-fly cell generation on top of a coarse
  // library yields double-digit power reductions at fixed timing.
  circuit::LibraryConfig coarseCfg;
  coarseCfg.driveStrengths = {1, 4, 16};
  Library coarse(tech::nodeByFeature(100), coarseCfg);
  util::Rng rng(404);
  circuit::GeneratorConfig gcfg;
  gcfg.gates = 400;
  Netlist nl = circuit::randomLogic(coarse, gcfg, rng);
  // Map everything to drive 4 as a realistic synthesis starting point.
  for (int g : nl.gateIds()) {
    const auto& cell = nl.node(g).cell;
    nl.replaceCell(g, coarse.pick(cell.function, 4.0));
  }

  SizingOptions discrete;
  SizingOptions custom;
  custom.continuousSizes = true;
  const SizingResult d = sizeToLoad(nl, coarse, 4.0, discrete);
  const SizingResult c = sizeToLoad(nl, coarse, 4.0, custom);
  EXPECT_TRUE(c.timingAfter.meetsTiming());
  EXPECT_GT(c.powerSavings(), d.powerSavings());
}

TEST(SizeToLoad, MeetsTiming) {
  Fixture f;
  SizingOptions opt;
  opt.continuousSizes = true;
  const SizingResult r = sizeToLoad(f.oversized, f.lib, 4.0, opt);
  EXPECT_TRUE(r.timingAfter.meetsTiming());
}

}  // namespace
}  // namespace nano::opt
