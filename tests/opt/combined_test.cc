#include "opt/combined.h"

#include <gtest/gtest.h>

#include "circuit/generator.h"

namespace nano::opt {
namespace {

using circuit::Library;
using circuit::Netlist;

struct Fixture {
  Library lib{tech::nodeByFeature(70)};
  Netlist design = [this] {
    util::Rng rng(505);
    circuit::GeneratorConfig cfg;
    cfg.gates = 500;
    cfg.outputs = 40;
    Netlist nl = circuit::pipelinedLogic(lib, cfg, rng, 6);
    // Start from a uniformly drive-2 implementation so the sizing stage
    // has material to work with.
    for (int g : nl.gateIds()) {
      const auto& cell = nl.node(g).cell;
      nl.replaceCell(g, lib.pick(cell.function, 2.0));
    }
    return nl;
  }();
};

TEST(Flow, FullFlowSavesSubstantialPower) {
  Fixture f;
  const FlowResult r = runFlow(f.design, f.lib);
  ASSERT_EQ(r.stages.size(), 3u);
  EXPECT_GT(r.totalSavings(), 0.4);
  EXPECT_TRUE(r.stages.back().timing.meetsTiming());
}

TEST(Flow, EveryStageMonotonicallyImproves) {
  Fixture f;
  const FlowResult r = runFlow(f.design, f.lib);
  double prev = r.powerBefore.total();
  for (const auto& s : r.stages) {
    EXPECT_LE(s.power.total(), prev * 1.001) << s.name;
    prev = s.power.total();
  }
}

TEST(Flow, StageBookkeeping) {
  Fixture f;
  const FlowResult r = runFlow(f.design, f.lib);
  EXPECT_EQ(r.stages[0].name, "multi-Vdd (CVS)");
  EXPECT_GT(r.stages[0].fractionLowVdd, 0.3);
  EXPECT_GT(r.stages[1].fractionHighVth, 0.3);
  EXPECT_GT(r.stages[2].gatesResized, 0);
}

TEST(Flow, VddFirstBeatsSizingFirst) {
  // The paper's Section 3.3 argument: downsizing first consumes the slack
  // multi-Vdd needs; lowering Vdd first exploits the quadratic saving, so
  // the Vdd-first order ends at lower (or equal) total power.
  Fixture f;
  FlowOptions vddFirst;
  vddFirst.stages = {FlowStage::MultiVdd, FlowStage::DualVth,
                     FlowStage::Downsize};
  FlowOptions sizeFirst;
  sizeFirst.stages = {FlowStage::Downsize, FlowStage::DualVth,
                      FlowStage::MultiVdd};
  const FlowResult a = runFlow(f.design, f.lib, vddFirst);
  const FlowResult b = runFlow(f.design, f.lib, sizeFirst);
  EXPECT_LE(a.stages.back().power.total(),
            b.stages.back().power.total() * 1.02);
}

TEST(Flow, SizingFirstShrinksLowVddFraction) {
  // The mechanism behind the ordering claim: after downsizing, fewer gates
  // can move to Vdd,l.
  Fixture f;
  FlowOptions vddFirst;
  vddFirst.stages = {FlowStage::MultiVdd};
  FlowOptions sizeFirst;
  sizeFirst.stages = {FlowStage::Downsize, FlowStage::MultiVdd};
  const FlowResult a = runFlow(f.design, f.lib, vddFirst);
  const FlowResult b = runFlow(f.design, f.lib, sizeFirst);
  EXPECT_GT(a.stages.back().fractionLowVdd,
            b.stages.back().fractionLowVdd);
}

TEST(Flow, SingleStageFlowsWork) {
  Fixture f;
  for (FlowStage s :
       {FlowStage::MultiVdd, FlowStage::DualVth, FlowStage::Downsize}) {
    FlowOptions opt;
    opt.stages = {s};
    const FlowResult r = runFlow(f.design, f.lib, opt);
    ASSERT_EQ(r.stages.size(), 1u);
    EXPECT_TRUE(r.stages[0].timing.meetsTiming());
    EXPECT_GT(r.totalSavings(), -0.01);
  }
}

}  // namespace
}  // namespace nano::opt
