#include "opt/cvs.h"

#include <gtest/gtest.h>

#include "circuit/generator.h"
#include "opt/level_converter.h"

namespace nano::opt {
namespace {

using circuit::CellFunction;
using circuit::Library;
using circuit::Netlist;
using circuit::VddDomain;

struct Fixture {
  Library lib{tech::nodeByFeature(100)};
  // Register-bounded multi-block design: the substrate whose path-delay
  // histogram matches the MPU profile the paper's CVS numbers assume.
  Netlist slackRich = [this] {
    util::Rng rng(101);
    circuit::GeneratorConfig cfg;
    cfg.gates = 800;
    cfg.outputs = 64;
    return circuit::pipelinedLogic(lib, cfg, rng, 8);
  }();
};

TEST(LevelConverter, InsertsOnCrossingsOnly) {
  Fixture f;
  Netlist nl;
  const int a = nl.addInput();
  const auto low =
      f.lib.pick(CellFunction::Inv, 1.0, circuit::VthClass::Low, VddDomain::Low);
  const auto high = f.lib.pick(CellFunction::Inv, 1.0);
  const int g1 = nl.addGate(low, {a});
  const int g2 = nl.addGate(high, {g1});  // crossing!
  nl.markOutput(g2);
  const ConversionReport rep = insertLevelConverters(nl, f.lib);
  EXPECT_EQ(rep.convertersAdded, 1);
  EXPECT_TRUE(rep.netlist.vddViolations().empty());
  EXPECT_EQ(rep.netlist.gateCount(), 3);
}

TEST(LevelConverter, SharedAcrossSinks) {
  Fixture f;
  Netlist nl;
  const int a = nl.addInput();
  const auto low =
      f.lib.pick(CellFunction::Inv, 1.0, circuit::VthClass::Low, VddDomain::Low);
  const auto high = f.lib.pick(CellFunction::Inv, 1.0);
  const int g1 = nl.addGate(low, {a});
  const int g2 = nl.addGate(high, {g1});
  const int g3 = nl.addGate(high, {g1});
  nl.markOutput(g2);
  nl.markOutput(g3);
  const ConversionReport rep = insertLevelConverters(nl, f.lib);
  EXPECT_EQ(rep.convertersAdded, 1);  // one converter serves both sinks
}

TEST(LevelConverter, OutputBoundaryConversion) {
  Fixture f;
  Netlist nl;
  const int a = nl.addInput();
  const auto low =
      f.lib.pick(CellFunction::Inv, 1.0, circuit::VthClass::Low, VddDomain::Low);
  const int g1 = nl.addGate(low, {a});
  nl.markOutput(g1);
  EXPECT_EQ(insertLevelConverters(nl, f.lib, true).convertersAdded, 1);
  EXPECT_EQ(insertLevelConverters(nl, f.lib, false).convertersAdded, 0);
}

TEST(LevelConverter, NoOpOnSingleVddDesign) {
  Fixture f;
  const ConversionReport rep = insertLevelConverters(f.slackRich, f.lib);
  EXPECT_EQ(rep.convertersAdded, 0);
  EXPECT_EQ(rep.netlist.gateCount(), f.slackRich.gateCount());
}

TEST(Cvs, AssignsLargeFractionToLowVdd) {
  // Paper Section 2.4: media-processor CVS results put ~75 % of gates at
  // Vdd,l; our register-bounded profile lands in the same regime.
  Fixture f;
  const CvsResult r = runCvs(f.slackRich, f.lib);
  EXPECT_GT(r.fractionLowVdd, 0.6);
  EXPECT_LE(r.fractionLowVdd, 1.0);
}

TEST(Cvs, TimingStillMet) {
  Fixture f;
  const CvsResult r = runCvs(f.slackRich, f.lib);
  EXPECT_TRUE(r.timingAfter.meetsTiming());
}

TEST(Cvs, NoVddViolations) {
  Fixture f;
  const CvsResult r = runCvs(f.slackRich, f.lib);
  EXPECT_TRUE(r.netlist.vddViolations().empty());
}

TEST(Cvs, DynamicPowerSavingsInPaperBand) {
  // Paper: 45-50 % dynamic reduction including 8-10 % converter power. Our
  // blocks are smaller than MPU pipeline stages, so conversion overhead
  // bites harder; accept a generous band around the paper's figure.
  Fixture f;
  const CvsResult r = runCvs(f.slackRich, f.lib);
  EXPECT_GT(r.dynamicSavings(), 0.25);
  EXPECT_LT(r.dynamicSavings(), 0.60);
}

TEST(Cvs, ConverterPowerFractionBounded) {
  Fixture f;
  const CvsResult r = runCvs(f.slackRich, f.lib);
  EXPECT_LT(r.converterPowerFraction(), 0.20);
}

TEST(Cvs, TightClockLimitsAssignment) {
  // With zero slack everywhere (clock == critical path of a chain),
  // nothing can move to Vdd,l.
  Fixture f;
  const Netlist chain = circuit::inverterChain(f.lib, 12);
  const CvsResult r = runCvs(chain, f.lib);
  EXPECT_LT(r.fractionLowVdd, 0.05);
}

TEST(Cvs, RelaxedClockAllowsEverything) {
  Fixture f;
  const Netlist chain = circuit::inverterChain(f.lib, 12);
  CvsOptions opt;
  opt.clockPeriod = 10.0 * sta::analyze(chain).criticalPathDelay;
  const CvsResult r = runCvs(chain, f.lib, opt);
  EXPECT_GT(r.fractionLowVdd, 0.9);
}

TEST(Cvs, ClusersAreContiguousTowardOutputs) {
  // CVS invariant: every fanout of a low gate is low (before converter
  // insertion this is the structural rule; after insertion violations are
  // cured, so re-check on the result ignoring converters).
  Fixture f;
  const CvsResult r = runCvs(f.slackRich, f.lib);
  const Netlist& nl = r.netlist;
  for (int g : nl.gateIds()) {
    const auto& n = nl.node(g);
    if (n.cell.vddDomain != VddDomain::Low) continue;
    for (int fo : n.fanouts) {
      const auto& sink = nl.node(fo);
      EXPECT_TRUE(sink.cell.vddDomain == VddDomain::Low ||
                  sink.cell.function == CellFunction::LevelConverter);
    }
  }
}

}  // namespace
}  // namespace nano::opt
