#include "opt/simultaneous.h"

#include <gtest/gtest.h>

#include "circuit/generator.h"
#include "opt/dual_vth.h"
#include "opt/sizing.h"

namespace nano::opt {
namespace {

using circuit::Library;
using circuit::Netlist;

struct Fixture {
  Library lib{tech::nodeByFeature(70)};
  Netlist design = [this] {
    util::Rng rng(606);
    circuit::GeneratorConfig cfg;
    cfg.gates = 350;
    cfg.outputs = 32;
    Netlist nl = circuit::pipelinedLogic(lib, cfg, rng, 5);
    for (int g : nl.gateIds()) {
      const auto& cell = nl.node(g).cell;
      nl.replaceCell(g, lib.pick(cell.function, 2.0));
    }
    return nl;
  }();
};

TEST(Simultaneous, SavesPowerAndMeetsTiming) {
  Fixture f;
  const SimultaneousResult r = runSimultaneous(f.design, f.lib);
  EXPECT_TRUE(r.timingAfter.meetsTiming());
  EXPECT_GT(r.powerSavings(), 0.2);
  EXPECT_GT(r.sizeMoves, 0);
  EXPECT_GT(r.vthMoves, 0);
}

TEST(Simultaneous, BeatsOrMatchesSequentialOrder) {
  // The point of ref [22]: interleaving sizing and Vth moves by marginal
  // benefit is at least as good as running them in sequence.
  Fixture f;
  const SimultaneousResult sim = runSimultaneous(f.design, f.lib);

  SizingOptions so;
  so.continuousSizes = true;
  const SizingResult sized = downsizeForPower(f.design, f.lib, so);
  const DualVthResult sequential = runDualVth(sized.netlist, f.lib);
  const double seqPower = sequential.powerAfter.total();
  EXPECT_LE(sim.powerAfter.total(), seqPower * 1.05);
}

TEST(Simultaneous, NoMovesOnZeroSlackChain) {
  Fixture f;
  const Netlist chain = circuit::inverterChain(f.lib, 10);
  const SimultaneousResult r = runSimultaneous(chain, f.lib);
  // The chain is self-clocked: every gate is critical, nothing may move.
  EXPECT_EQ(r.sizeMoves + r.vthMoves, 0);
  EXPECT_NEAR(r.powerSavings(), 0.0, 1e-9);
}

TEST(Simultaneous, RelaxedClockUnlocksEverything) {
  Fixture f;
  const Netlist chain = circuit::inverterChain(f.lib, 10, 4.0);
  SimultaneousOptions opt;
  opt.clockPeriod = 5.0 * sta::analyze(chain).criticalPathDelay;
  const SimultaneousResult r = runSimultaneous(chain, f.lib, opt);
  EXPECT_GT(r.powerSavings(), 0.5);
  EXPECT_TRUE(r.timingAfter.meetsTiming());
}

TEST(Simultaneous, LeakageAndDynamicBothDrop) {
  Fixture f;
  const SimultaneousResult r = runSimultaneous(f.design, f.lib);
  EXPECT_LT(r.powerAfter.leakage, r.powerBefore.leakage);
  EXPECT_LT(r.powerAfter.dynamic, r.powerBefore.dynamic);
}

TEST(Simultaneous, MoveCapRespected) {
  Fixture f;
  SimultaneousOptions opt;
  opt.maxMoves = 5;
  const SimultaneousResult r = runSimultaneous(f.design, f.lib, opt);
  EXPECT_LE(r.sizeMoves + r.vthMoves, 5);
}

}  // namespace
}  // namespace nano::opt
