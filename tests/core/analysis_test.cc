#include "core/analysis.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.h"

namespace nano::core {
namespace {

TEST(NodeSummary, Summarizes35nm) {
  const NodeSummary s = summarizeNode(35);
  ASSERT_NE(s.node, nullptr);
  EXPECT_EQ(s.node->featureNm, 35);
  EXPECT_NEAR(s.ionUaUm, 750.0, 1.0);
  EXPECT_GT(s.ioffHotNaUm, s.ioffNaUm);
  EXPECT_NEAR(s.supplyCurrentA, 300.0, 1.0);
  EXPECT_NEAR(s.standbyCurrentBudgetA, 30.0, 0.5);
  EXPECT_GT(s.fo4PerCycle, 5.0);   // a real pipeline has >> 1 FO4/cycle
  EXPECT_LT(s.fo4PerCycle, 60.0);
  ASSERT_NE(s.packaging, nullptr);
  EXPECT_LE(s.packaging->thetaJa, s.thetaJaRequired);
}

TEST(NodeSummary, PackagingEscalatesDownRoadmap) {
  const NodeSummary early = summarizeNode(180);
  const NodeSummary late = summarizeNode(35);
  EXPECT_LT(late.thetaJaRequired, early.thetaJaRequired);
  EXPECT_GE(late.coolingCostUsd, early.coolingCostUsd);
}

TEST(NodeSummary, ThrowsOffRoadmap) {
  EXPECT_THROW(summarizeNode(90), std::out_of_range);
}

TEST(Report, NodeSummaryPrints) {
  const NodeSummary s = summarizeNode(70);
  std::ostringstream os;
  printNodeSummary(os, s);
  const std::string out = os.str();
  EXPECT_NE(out.find("70 nm node"), std::string::npos);
  EXPECT_NE(out.find("FO4 delay"), std::string::npos);
  EXPECT_NE(out.find("theta_ja"), std::string::npos);
}

TEST(Report, AllExperimentPrintersProduceOutput) {
  std::ostringstream os;
  printTable2(os, computeTable2());
  printFigure1(os, computeFigure1(5));
  printFigure2(os, computeFigure2());
  const auto f34 = computeFigure34(35, 5);
  printFigure3(os, f34);
  printFigure4(os, f34);
  printFigure5(os, computeFigure5());
  printSection33Claims(os, computeSection33Claims());
  EXPECT_GT(os.str().size(), 2000u);
  EXPECT_NE(os.str().find("Table 2"), std::string::npos);
  EXPECT_NE(os.str().find("Figure 5"), std::string::npos);
}


TEST(Report, RoadmapComparisonCoversAllNodes) {
  std::ostringstream os;
  printRoadmapComparison(os);
  const std::string out = os.str();
  for (int f : tech::roadmapFeatures()) {
    EXPECT_NE(out.find("| " + std::to_string(f)), std::string::npos) << f;
  }
  EXPECT_NE(out.find("repeaters"), std::string::npos);
  EXPECT_NE(out.find("wake noise"), std::string::npos);
}

}  // namespace
}  // namespace nano::core
