#include "core/design_space.h"

#include <gtest/gtest.h>

#include "device/mosfet.h"

namespace nano::core {
namespace {

DesignSpaceOptions opts35() {
  DesignSpaceOptions o;
  o.nodeNm = 35;
  o.activity = 0.1;
  return o;
}

TEST(DesignSpace, NominalCornerNormalizesToOne) {
  const auto o = opts35();
  const auto& node = tech::nodeByFeature(35);
  const double vth0 = device::solveVthForIon(node, node.ionTarget);
  const OperatingPoint pt = evaluatePoint(o, node.vdd, vth0);
  EXPECT_NEAR(pt.delayNorm, 1.0, 1e-9);
  EXPECT_NEAR(pt.pdynNorm, 1.0, 1e-9);
  EXPECT_NEAR(pt.pstatNorm, 1.0, 1e-9);
  EXPECT_NEAR(pt.ptotalNorm, 1.0, 1e-9);
}

TEST(DesignSpace, GridShapeAndMonotonicities) {
  auto o = opts35();
  o.vddSteps = 5;
  o.vthSteps = 5;
  const auto grid = exploreDesignSpace(o);
  ASSERT_EQ(grid.size(), 25u);
  // Along constant Vdd: higher Vth => slower, leakier... less leaky.
  for (int v = 0; v < 5; ++v) {
    for (int k = 1; k < 5; ++k) {
      const auto& lo = grid[static_cast<std::size_t>(v * 5 + k - 1)];
      const auto& hi = grid[static_cast<std::size_t>(v * 5 + k)];
      EXPECT_GT(hi.delayNorm, lo.delayNorm);
      EXPECT_LT(hi.pstatNorm, lo.pstatNorm);
      EXPECT_DOUBLE_EQ(hi.pdynNorm, lo.pdynNorm);  // Vth-independent
    }
  }
  // Along constant Vth: higher Vdd => faster and more dynamic power.
  for (int k = 0; k < 5; ++k) {
    for (int v = 1; v < 5; ++v) {
      const auto& lo = grid[static_cast<std::size_t>((v - 1) * 5 + k)];
      const auto& hi = grid[static_cast<std::size_t>(v * 5 + k)];
      EXPECT_LT(hi.delayNorm, lo.delayNorm);
      EXPECT_GT(hi.pdynNorm, lo.pdynNorm);
    }
  }
}

TEST(DesignSpace, OptimumRespectsDelayTarget) {
  const auto o = opts35();
  for (double target : {1.0, 1.3, 2.0}) {
    const OperatingPoint pt = optimalPoint(o, target);
    EXPECT_LE(pt.delayNorm, target + 1e-6) << target;
  }
}

TEST(DesignSpace, RelaxedTargetsSaveMorePower) {
  const auto o = opts35();
  double prev = 10.0;
  for (double target : {1.0, 1.2, 1.5, 2.0, 3.0}) {
    const OperatingPoint pt = optimalPoint(o, target);
    EXPECT_LE(pt.ptotalNorm, prev * (1.0 + 1e-9)) << target;
    prev = pt.ptotalNorm;
  }
}

TEST(DesignSpace, UnconstrainedOptimumPinsVddFloor) {
  // Without a leakage cap the model's honest low-activity answer is the
  // lowest supply with a near-zero Vth: the quadratic dynamic saving
  // always beats the leakage it buys at activity 0.1.
  const auto o = opts35();
  const OperatingPoint pt = optimalPoint(o, 1.0);
  EXPECT_NEAR(pt.vdd, o.vddMin, 1e-6);
  EXPECT_LT(pt.ptotalNorm, 0.25);  // > 4x total power saving at iso-delay
}

TEST(DesignSpace, ItrsCapMovesOptimumUpTheSupplyAxis) {
  // With the paper's Pdyn >= 10*Pstat constraint, slack is spent walking
  // down the supply axis from a higher floor: the capped optimum sits at
  // a clearly higher Vdd than the unconstrained one, and relaxing the
  // delay target lowers it.
  const auto o = opts35();
  const OperatingPoint uncapped = optimalPoint(o, 1.2);
  const OperatingPoint capped =
      optimalPoint(o, 1.2, kItrsStaticFractionCap);
  EXPECT_GT(capped.vdd, uncapped.vdd + 0.05);
  EXPECT_LE(capped.staticFraction, kItrsStaticFractionCap + 1e-9);

  const OperatingPoint cappedLoose =
      optimalPoint(o, 2.0, kItrsStaticFractionCap);
  EXPECT_LT(cappedLoose.vdd, capped.vdd + 1e-9);
}

TEST(DesignSpace, ItrsCapReproducesFigure4OperatingPoint) {
  // Paper Figure 4 / Section 3.3: under the 10x constraint "a Vdd of
  // about 0.44 V is attainable, providing 46 % dynamic power reduction".
  // The capped iso-delay optimum lands within a few tens of mV and a few
  // points of power of that.
  const auto o = opts35();
  const OperatingPoint pt = optimalPoint(o, 1.0, kItrsStaticFractionCap);
  EXPECT_NEAR(pt.vdd, 0.44, 0.06);
  EXPECT_NEAR(1.0 - pt.ptotalNorm, 0.46, 0.10);
}

TEST(DesignSpace, OptimumBeatsNaiveVddOnlyScaling) {
  // At the same delay target, co-tuning (Vdd, Vth) must beat scaling Vdd
  // alone at fixed nominal Vth.
  const auto o = opts35();
  const double target = 1.5;
  const OperatingPoint best = optimalPoint(o, target);
  // Naive: keep Vth0, find the Vdd meeting the target.
  const auto& node = tech::nodeByFeature(35);
  const double vth0 = device::solveVthForIon(node, node.ionTarget);
  double lo = o.vddMin, hi = node.vdd;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    (evaluatePoint(o, mid, vth0).delayNorm > target ? lo : hi) = mid;
  }
  const OperatingPoint naive = evaluatePoint(o, hi, vth0);
  EXPECT_LE(best.ptotalNorm, naive.ptotalNorm * (1.0 + 1e-6));
}

TEST(DesignSpace, EnergyOptimumBalancesStaticAndDynamic) {
  // At a relaxed delay target the unconstrained-ish optimum runs with a
  // substantial static share (the classic ~10-50 % result), not ~0.
  const auto o = opts35();
  const OperatingPoint pt = optimalPoint(o, 2.5);
  EXPECT_GT(pt.staticFraction, 0.02);
  EXPECT_LT(pt.staticFraction, 0.6);
}

TEST(DesignSpace, Rejections) {
  const auto o = opts35();
  EXPECT_THROW(evaluatePoint(o, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(optimalPoint(o, 0.0), std::invalid_argument);
  DesignSpaceOptions bad = o;
  bad.vddSteps = 1;
  EXPECT_THROW(exploreDesignSpace(bad), std::invalid_argument);
  // An impossible target (faster than nominal allows anywhere).
  EXPECT_THROW(optimalPoint(o, 0.2), std::runtime_error);
}

}  // namespace
}  // namespace nano::core
