#include "core/experiments.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "powergrid/grid_model.h"

namespace nano::core {
namespace {

// ---------------------------------------------------------------- Table 2

TEST(Table2, RowsCoverRoadmap) {
  const Table2 t = computeTable2();
  ASSERT_EQ(t.rows.size(), 6u);
  EXPECT_EQ(t.rows.front().nodeNm, 180);
  EXPECT_EQ(t.rows.back().nodeNm, 35);
  EXPECT_EQ(t.row50At07.nodeNm, 50);
  EXPECT_DOUBLE_EQ(t.row50At07.vdd, 0.7);
}

TEST(Table2, CoxColumnsMatchPaper) {
  // Paper row: Coxe normalized 1, 1.23, 1.45, 1.68, 2.13, 2.46 and
  // physical Cox 1, 1.32, 1.67, 2.08, 3.13, 4.17.
  const Table2 t = computeTable2();
  const double paperCoxe[6] = {1.0, 1.23, 1.45, 1.68, 2.13, 2.46};
  const double paperCoxPhys[6] = {1.0, 1.32, 1.67, 2.08, 3.13, 4.17};
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(t.rows[static_cast<std::size_t>(i)].coxeNorm, paperCoxe[i],
                0.03)
        << i;
    EXPECT_NEAR(t.rows[static_cast<std::size_t>(i)].coxPhysNorm,
                paperCoxPhys[i], 0.05)
        << i;
  }
}

TEST(Table2, VthWithinCalibrationBand) {
  const Table2 t = computeTable2();
  for (const auto& r : t.rows) {
    EXPECT_NEAR(r.vthRequired, r.paperVth, 0.035) << r.nodeNm;
  }
  EXPECT_NEAR(t.row50At07.vthRequired, t.row50At07.paperVth, 0.035);
}

TEST(Table2, IoffWithinFactorThreeOfPaper) {
  const Table2 t = computeTable2();
  for (const auto& r : t.rows) {
    EXPECT_GT(r.ioffNaUm, r.paperIoff / 3.0) << r.nodeNm;
    EXPECT_LT(r.ioffNaUm, r.paperIoff * 3.0) << r.nodeNm;
  }
}

TEST(Table2, ModelGrowthFarExceedsItrs) {
  // Paper: 152x model growth vs 23x ITRS projection across the roadmap.
  const Table2 t = computeTable2();
  EXPECT_GT(t.modelGrowth, 60.0);
  EXPECT_LT(t.modelGrowth, 400.0);
  EXPECT_NEAR(t.itrsGrowth, 160.0 / 7.0, 0.5);
  EXPECT_GT(t.modelGrowth, 3.0 * t.itrsGrowth);
}

TEST(Table2, MetalGateCutsIoffEverywhere) {
  const Table2 t = computeTable2();
  for (const auto& r : t.rows) {
    EXPECT_LT(r.ioffMetalNaUm, r.ioffNaUm) << r.nodeNm;
    EXPECT_GT(r.vthMetal, r.vthRequired) << r.nodeNm;
  }
  // At 35 nm the paper reports a 78 % cut; ours is at least 40 %.
  const auto& last = t.rows.back();
  EXPECT_LT(last.ioffMetalNaUm / last.ioffNaUm, 0.6);
}

TEST(Table2, Vdd07CaseFarLessLeaky) {
  const Table2 t = computeTable2();
  const auto& at06 = t.rows[4];
  EXPECT_GT(at06.ioffNaUm / t.row50At07.ioffNaUm, 4.0);  // paper: ~7x
}

// --------------------------------------------------------------- Figure 1

TEST(Figure1, SeriesOrderingAndInverseActivity) {
  const auto series = computeFigure1(7);
  ASSERT_EQ(series.size(), 7u);
  for (const auto& p : series) {
    EXPECT_GT(p.ratio50nm06V, p.ratio50nm07V);
    EXPECT_GT(p.ratio50nm07V, p.ratio70nm09V);
  }
  // ratio ~ 1/activity.
  EXPECT_NEAR(series.front().ratio70nm09V / series.back().ratio70nm09V,
              series.back().activity / series.front().activity,
              0.01 * series.front().ratio70nm09V /
                  series.back().ratio70nm09V);
}

TEST(Figure1, StaticExceedsTenPercentAtLowActivity) {
  const auto series = computeFigure1(9);
  // At the lowest activity (0.01) every corner exceeds 10 %.
  EXPECT_GT(series.front().ratio70nm09V, 0.1);
  EXPECT_GT(series.front().ratio50nm07V, 0.1);
  EXPECT_GT(series.front().ratio50nm06V, 1.0);
}

// --------------------------------------------------------------- Figure 2

TEST(Figure2, IonGainGrowsWithScaling) {
  const auto series = computeFigure2();
  ASSERT_EQ(series.size(), 6u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].ionGainPercent, series[i - 1].ionGainPercent);
  }
  // Paper plot: a few percent at 180 nm up to ~25 % at 35 nm.
  EXPECT_LT(series.front().ionGainPercent, 15.0);
  EXPECT_GT(series.back().ionGainPercent, 18.0);
}

TEST(Figure2, IoffPenaltyShrinksWithScaling) {
  // Paper: ~54x at 180 nm down to ~7x at 35 nm.
  const auto series = computeFigure2();
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LT(series[i].ioffPenaltyFor20, series[i - 1].ioffPenaltyFor20);
  }
  EXPECT_GT(series.front().ioffPenaltyFor20, 20.0);
  EXPECT_LT(series.back().ioffPenaltyFor20, 15.0);
}

TEST(Figure2, PublishedDataPointsBracketed) {
  // [21]/[40]: 12-14 % Ion gain at the 130 nm-class node; our model at
  // 130 nm should be within a few points of that.
  const auto series = computeFigure2();
  const auto& at130 = series[1];
  EXPECT_GT(at130.ionGainPercent, 7.0);
  EXPECT_LT(at130.ionGainPercent, 20.0);
}

// ----------------------------------------------------------- Figures 3, 4

TEST(Figure34, NominalPointIsUnity) {
  const auto series = computeFigure34(35, 9, 0.1);
  const auto& nominal = series.back();
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(nominal.delayNorm[static_cast<std::size_t>(k)], 1.0, 1e-6);
  }
}

TEST(Figure34, PolicyOrderingAtLowVdd) {
  // Constant Vth suffers most; constant-Pstatic least (Figure 3's fan).
  const auto series = computeFigure34(35, 9, 0.1);
  const auto& low = series.front();  // Vdd = 0.2 V
  EXPECT_GT(low.delayNorm[0], low.delayNorm[2]);
  EXPECT_GT(low.delayNorm[2], low.delayNorm[1]);
}

TEST(Figure34, VthPoliciesOrderedByAggressiveness) {
  const auto series = computeFigure34(35, 9, 0.1);
  const auto& low = series.front();
  // Design Vth: constant > conservative > constant-Pstatic at 0.2 V.
  EXPECT_GT(low.vthDesign[0], low.vthDesign[2]);
  EXPECT_GT(low.vthDesign[2], low.vthDesign[1]);
}

TEST(Figure34, ScaledVthRatioApproachesOneAtLowVdd) {
  // Figure 4: the constant-Pstatic curve falls towards ~1 at 0.2 V while
  // the constant-Vth curve stays orders of magnitude higher.
  const auto series = computeFigure34(35, 9, 0.1);
  const auto& low = series.front();
  EXPECT_LT(low.pdynOverPstat[1], 5.0);
  EXPECT_GT(low.pdynOverPstat[0], 5.0 * low.pdynOverPstat[1]);
}

TEST(Figure34, PstaticConstraintsHold) {
  // The policy definitions as invariants: constant-Pstatic keeps Vdd*Ioff
  // fixed; conservative keeps Ioff fixed (Pstat ~ Vdd).
  const auto series = computeFigure34(35, 5, 0.1);
  const auto& nominal = series.back();
  for (const auto& p : series) {
    // Pdyn/Pstat * Pstat = Pdyn known ~ V^2: check policy 1's Pstat ratio
    // via (Pdyn ratio) / (pdynOverPstat ratio).
    const double pdynRatio = (p.vdd * p.vdd) / (nominal.vdd * nominal.vdd);
    const double pstatRatio1 = pdynRatio * nominal.pdynOverPstat[1] /
                               p.pdynOverPstat[1];
    EXPECT_NEAR(pstatRatio1, 1.0, 0.02) << p.vdd;  // constant Pstatic
    const double pstatRatio2 = pdynRatio * nominal.pdynOverPstat[2] /
                               p.pdynOverPstat[2];
    EXPECT_NEAR(pstatRatio2, p.vdd / nominal.vdd, 0.02) << p.vdd;
  }
}

TEST(Section33, HeadlineClaims) {
  const Section33Claims c = computeSection33Claims();
  // Paper: 3.7x at constant Vth. Our model: same regime (2.5-5x).
  EXPECT_GT(c.delayRatioConstVthAt02, 2.5);
  EXPECT_LT(c.delayRatioConstVthAt02, 5.5);
  // Paper: < 1.3x with scaled Vth; ours lands well under half the
  // constant-Vth penalty.
  EXPECT_LT(c.delayRatioScaledAt02, 0.55 * c.delayRatioConstVthAt02);
  EXPECT_GT(c.delayRatioScaledAt02, 1.0);
  // 89 % dynamic reduction at 0.2 V is exact arithmetic.
  EXPECT_NEAR(c.dynReductionAt02, 1.0 - 1.0 / 9.0, 1e-9);
  // Vdd for Pdyn/Pstat = 10: paper ~0.44 V.
  EXPECT_GT(c.vddAtRatio10, 0.30);
  EXPECT_LT(c.vddAtRatio10, 0.55);
  EXPECT_GT(c.dynReductionAtRatio10, 0.15);
  EXPECT_LT(c.dynReductionAtRatio10, 0.75);
}

// --------------------------------------------------------------- Figure 5

TEST(Figure5, SeriesShapes) {
  const auto rows = computeFigure5();
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    EXPECT_GT(r.itrs.widthOverMin, r.minPitch.widthOverMin) << r.nodeNm;
  }
  // Explosion at the end of the roadmap under ITRS pad counts.
  EXPECT_GT(rows.back().itrs.widthOverMin, 400.0);
  EXPECT_LT(rows.back().minPitch.widthOverMin, 25.0);
}

TEST(Figure5, RoutingFractionStory) {
  // Paper: rails at min pitch cost a few % (plus 16 % landing pads ->
  // 17-20 % total); under ITRS pad counts they blow past practicality.
  const auto rows = computeFigure5();
  const auto& last = rows.back();
  const double totalMinPitch =
      last.minPitch.routingFraction + powergrid::kLandingPadFraction;
  EXPECT_GT(totalMinPitch, 0.16);
  EXPECT_LT(totalMinPitch, 0.25);
  EXPECT_GT(last.itrs.routingFraction, 0.3);
}

TEST(Figure5, MeshSweepAssemblesConductanceMatrixOnce) {
  // Regression for the per-sweep-point re-assembly: all 12 mesh
  // cross-check solves (6 roadmap nodes x {min-pitch, ITRS}) share one
  // waffle topology, so the sweep must build the conductance matrix once
  // and reuse the cached unit Laplacian everywhere else — even with the
  // solves running under exec::parallelMap.
  const bool wasEnabled = obs::enabled();
  obs::setEnabled(true);
  obs::MetricsRegistry::instance().reset();
  powergrid::GridModel::clearCache();
  const auto rows = computeFigure5(/*withMeshCrossCheck=*/true);
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    EXPECT_GT(r.minPitch.meshDropFraction, 0.0) << r.nodeNm;
    EXPECT_GT(r.itrs.meshDropFraction, 0.0) << r.nodeNm;
  }
  auto& registry = obs::MetricsRegistry::instance();
  EXPECT_EQ(registry.counter("powergrid/grid_assemblies").value(), 1);
  EXPECT_EQ(registry.counter("powergrid/grid_assembly_reuses").value(), 11);
  obs::setEnabled(wasEnabled);
}

}  // namespace
}  // namespace nano::core
