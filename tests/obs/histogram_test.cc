// Determinism and exactness of the log2-bucket histogram that backs
// TimerStat: percentiles must be bit-identical regardless of insertion
// order or recording-thread interleaving, bucket bounds must bracket
// their values, snapshots must merge associatively, and the TimerStat
// wrapper must report the same numbers as the raw histogram.
#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace nano::obs {
namespace {

TEST(Log2Histogram, BucketBoundsBracketTheValue) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> exponent(-25.0, 12.0);
  for (int i = 0; i < 10000; ++i) {
    const double v = std::exp2(exponent(rng));
    const int bucket = Log2Histogram::bucketIndex(v);
    ASSERT_GT(bucket, 0) << v;
    ASSERT_LT(bucket, Log2Histogram::kBucketCount - 1) << v;
    EXPECT_LE(Log2Histogram::bucketLowerBound(bucket), v) << v;
    EXPECT_GT(Log2Histogram::bucketUpperBound(bucket), v) << v;
  }
}

TEST(Log2Histogram, PowersOfTwoAreBucketLowerBounds) {
  for (int e = -20; e <= 10; ++e) {
    const double v = std::exp2(e);
    const int bucket = Log2Histogram::bucketIndex(v);
    EXPECT_EQ(Log2Histogram::bucketLowerBound(bucket), v);
  }
}

TEST(Log2Histogram, ZeroNegativeAndNanLandInBucketZero) {
  EXPECT_EQ(Log2Histogram::bucketIndex(0.0), 0);
  EXPECT_EQ(Log2Histogram::bucketIndex(-3.5), 0);
  EXPECT_EQ(Log2Histogram::bucketIndex(std::nan("")), 0);
  EXPECT_EQ(Log2Histogram::bucketLowerBound(0), 0.0);
}

TEST(Log2Histogram, HugeValuesOverflowToTheLastBucket) {
  EXPECT_EQ(Log2Histogram::bucketIndex(1e30), Log2Histogram::kBucketCount - 1);
  Log2Histogram h;
  h.record(1e30);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.max, 1e30);  // min/max stay exact even for overflow samples
}

TEST(Log2Histogram, PercentilesAreExactForDistinctBuckets) {
  Log2Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.total, 5050.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  // ceil-rank lower-bound percentiles: p50 is the 50th smallest sample's
  // bucket floor. 32 sub-buckets resolve 1..100 to within ~3%.
  EXPECT_NEAR(s.percentile(0.50), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.99), 99.0, 1.5);
  EXPECT_EQ(s.percentile(0.0), s.percentile(1e-9));  // rank clamps to 1
}

TEST(Log2Histogram, PercentilesAreBitIdenticalAcrossInsertionOrders) {
  std::vector<double> samples;
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(-6.0, 2.0);
  for (int i = 0; i < 50000; ++i) samples.push_back(dist(rng));

  Log2Histogram forward;
  for (double v : samples) forward.record(v);

  std::shuffle(samples.begin(), samples.end(), rng);
  Log2Histogram shuffled;
  for (double v : samples) shuffled.record(v);

  const auto a = forward.snapshot();
  const auto b = shuffled.snapshot();
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    // Bit-identical, not approximately equal: the percentile is a pure
    // function of the sample multiset.
    EXPECT_EQ(a.percentile(q), b.percentile(q)) << q;
  }
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(Log2Histogram, PercentilesAreBitIdenticalAcrossThreadCounts) {
  std::vector<double> samples;
  std::mt19937_64 rng(11);
  std::lognormal_distribution<double> dist(-8.0, 1.5);
  for (int i = 0; i < 40000; ++i) samples.push_back(dist(rng));

  Log2Histogram serial;
  for (double v : samples) serial.record(v);

  for (int threads : {2, 8}) {
    Log2Histogram parallel;
    std::vector<std::thread> workers;
    const std::size_t chunk = samples.size() / static_cast<std::size_t>(threads);
    for (int t = 0; t < threads; ++t) {
      const std::size_t begin = static_cast<std::size_t>(t) * chunk;
      const std::size_t end =
          t == threads - 1 ? samples.size() : begin + chunk;
      workers.emplace_back([&parallel, &samples, begin, end] {
        for (std::size_t i = begin; i < end; ++i) parallel.record(samples[i]);
      });
    }
    for (auto& w : workers) w.join();

    const auto a = serial.snapshot();
    const auto b = parallel.snapshot();
    EXPECT_EQ(a.buckets, b.buckets) << threads << " threads";
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_EQ(a.percentile(q), b.percentile(q))
          << threads << " threads, q=" << q;
    }
  }
}

TEST(Log2Histogram, SnapshotsMerge) {
  Log2Histogram a;
  Log2Histogram b;
  for (int i = 0; i < 100; ++i) a.record(0.001);
  for (int i = 0; i < 300; ++i) b.record(0.004);

  auto merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 400);
  EXPECT_DOUBLE_EQ(merged.total, 100 * 0.001 + 300 * 0.004);
  EXPECT_EQ(merged.min, 0.001);
  EXPECT_EQ(merged.max, 0.004);
  // Percentiles report bucket floors, so compare against those.
  EXPECT_EQ(merged.percentile(0.10),
            Log2Histogram::bucketLowerBound(Log2Histogram::bucketIndex(0.001)));
  EXPECT_EQ(merged.percentile(0.90),
            Log2Histogram::bucketLowerBound(Log2Histogram::bucketIndex(0.004)));

  // Merge into an empty (default) snapshot works too.
  Log2Histogram::Snapshot fromEmpty;
  fromEmpty.merge(a.snapshot());
  EXPECT_EQ(fromEmpty.count, 100);
  EXPECT_EQ(fromEmpty.min, 0.001);
}

TEST(Log2Histogram, EmptySnapshotIsAllZeros) {
  Log2Histogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.total, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.percentile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(TimerStatWrapper, ReportsTheHistogramNumbers) {
  TimerStat t;
  for (int i = 0; i < 1000; ++i) t.record(1.0);
  const TimerStat::Snapshot s = t.snapshot();
  EXPECT_EQ(s.count, 1000);
  EXPECT_DOUBLE_EQ(s.total, 1000.0);
  // 1.0 is a power of two: its bucket lower bound is exactly itself, so
  // every percentile is exactly 1.0 (the determinism fix for the old
  // reservoir TimerStat).
  EXPECT_DOUBLE_EQ(s.p50, 1.0);
  EXPECT_DOUBLE_EQ(s.p90, 1.0);
  EXPECT_DOUBLE_EQ(s.p99, 1.0);
  EXPECT_DOUBLE_EQ(s.p999, 1.0);

  const Log2Histogram::Snapshot h = t.histogramSnapshot();
  EXPECT_EQ(h.count, s.count);
  EXPECT_EQ(h.percentile(0.5), s.p50);
}

}  // namespace
}  // namespace nano::obs
