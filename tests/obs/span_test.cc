#include "obs/span.h"

#include <gtest/gtest.h>

namespace nano::obs {
namespace {

class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wasEnabled_ = enabled();
    setEnabled(true);
    MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    MetricsRegistry::instance().reset();
    setEnabled(wasEnabled_);
  }
  bool wasEnabled_ = false;
};

TEST_F(SpanTest, TopLevelSpanRecordsUnderItsName) {
  { NANO_OBS_SPAN("sta/analyze"); }
  const auto spans = MetricsRegistry::instance().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "sta/analyze");
  EXPECT_EQ(spans[0].stat.count, 1);
  EXPECT_GE(spans[0].stat.total, 0.0);
}

TEST_F(SpanTest, NestedSpansBuildHierarchicalPaths) {
  {
    NANO_OBS_SPAN("outer");
    EXPECT_EQ(Span::currentPath(), "outer");
    {
      NANO_OBS_SPAN("opt/dual_vth");
      EXPECT_EQ(Span::currentPath(), "outer;opt/dual_vth");
      { NANO_OBS_SPAN("sta/analyze"); }
    }
    EXPECT_EQ(Span::currentPath(), "outer");
  }
  EXPECT_EQ(Span::currentPath(), "");

  const auto spans = MetricsRegistry::instance().spans();
  ASSERT_EQ(spans.size(), 3u);  // sorted by path
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "outer;opt/dual_vth");
  EXPECT_EQ(spans[2].name, "outer;opt/dual_vth;sta/analyze");
}

TEST_F(SpanTest, RepeatedSpansAccumulateUnderOnePath) {
  for (int i = 0; i < 5; ++i) {
    NANO_OBS_SPAN("loop");
  }
  const auto spans = MetricsRegistry::instance().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].stat.count, 5);
}

TEST_F(SpanTest, SiblingSpansGetSeparatePaths) {
  {
    NANO_OBS_SPAN("parent");
    { NANO_OBS_SPAN("first"); }
    { NANO_OBS_SPAN("second"); }
  }
  const auto spans = MetricsRegistry::instance().spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].name, "parent;first");
  EXPECT_EQ(spans[2].name, "parent;second");
}

TEST_F(SpanTest, DisabledSpanIsInert) {
  setEnabled(false);
  {
    NANO_OBS_SPAN("ghost");
    EXPECT_EQ(Span::currentPath(), "");
  }
  EXPECT_TRUE(MetricsRegistry::instance().spans().empty());
}

TEST_F(SpanTest, DisableMidSpanDoesNotCorruptTheStack) {
  {
    NANO_OBS_SPAN("outer");
    setEnabled(false);
    { NANO_OBS_SPAN("inert-child"); }
    setEnabled(true);
  }
  EXPECT_EQ(Span::currentPath(), "");
  const auto spans = MetricsRegistry::instance().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "outer");
}

TEST_F(SpanTest, SplitSpanPath) {
  const auto parts = splitSpanPath("a;b/c;d");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b/c");
  EXPECT_EQ(parts[2], "d");
  EXPECT_EQ(splitSpanPath("solo").size(), 1u);
}

}  // namespace
}  // namespace nano::obs
