// The metrics exposition surface: Prometheus name mangling and text
// format, and the one-line JSON stats snapshot with delta-since-baseline
// counters.
#include "obs/exposition.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/span.h"

namespace nano::obs {
namespace {

class ExpositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wasEnabled_ = enabled();
    setEnabled(true);
    MetricsRegistry::instance().reset();
    resetStatsBaseline();
  }
  void TearDown() override {
    MetricsRegistry::instance().reset();
    resetStatsBaseline();
    setEnabled(wasEnabled_);
  }
  bool wasEnabled_ = false;
};

TEST_F(ExpositionTest, PrometheusNamesArePrefixedAndSanitized) {
  EXPECT_EQ(prometheusName("svc/requests"), "nano_svc_requests");
  EXPECT_EQ(prometheusName("svc/phase/queue_wait"),
            "nano_svc_phase_queue_wait");
  EXPECT_EQ(prometheusName("weird-name.with:chars"),
            "nano_weird_name_with_chars");
  EXPECT_EQ(prometheusName("ok_already_09"), "nano_ok_already_09");
}

TEST_F(ExpositionTest, PrometheusExportsAllFamilies) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("svc/requests").add(42);
  reg.gauge("svc/queue_depth").set(3.0);
  reg.timer("svc/phase/eval").record(0.5);
  reg.timer("svc/phase/eval").record(0.5);
  { NANO_OBS_SPAN("svc/session"); }

  std::ostringstream os;
  exportPrometheus(os);
  const std::string text = os.str();

  // Counters: _total suffix, counter type, exact integer value.
  EXPECT_NE(text.find("# TYPE nano_svc_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("nano_svc_requests_total 42"), std::string::npos);

  EXPECT_NE(text.find("# TYPE nano_svc_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("nano_svc_queue_depth 3"), std::string::npos);

  // Timers render as summaries: quantile series plus _sum/_count.
  EXPECT_NE(text.find("# TYPE nano_svc_phase_eval summary"), std::string::npos);
  EXPECT_NE(text.find("nano_svc_phase_eval{quantile=\"0.5\"} 0.5"),
            std::string::npos);
  EXPECT_NE(text.find("nano_svc_phase_eval{quantile=\"0.999\"} 0.5"),
            std::string::npos);
  EXPECT_NE(text.find("nano_svc_phase_eval_sum 1"), std::string::npos);
  EXPECT_NE(text.find("nano_svc_phase_eval_count 2"), std::string::npos);

  EXPECT_NE(text.find("nano_svc_session_count 1"), std::string::npos);

  // The format ends with a newline (required by the text exposition spec).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST_F(ExpositionTest, StatsJsonReportsAbsoluteValues) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("svc/requests").add(7);
  reg.gauge("svc/cache_size").set(12.0);
  reg.timer("svc/latency/total").record(0.25);

  std::ostringstream os;
  exportStatsJson(os, /*delta=*/false);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"delta\":false"), std::string::npos);
  EXPECT_NE(json.find("\"svc/requests\":7"), std::string::npos);
  EXPECT_NE(json.find("\"svc/cache_size\":12"), std::string::npos);
  EXPECT_NE(json.find("\"svc/latency/total\":{\"count\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"p50_s\":0.25"), std::string::npos);
  // One line: the snapshot embeds no newlines (the caller terminates it).
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST_F(ExpositionTest, DeltaCountersAdvanceTheBaseline) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("svc/requests").add(5);

  std::ostringstream first;
  exportStatsJson(first, /*delta=*/true);
  // First delta snapshot after a fresh baseline: the full 5.
  EXPECT_NE(first.str().find("\"svc/requests\":5"), std::string::npos);

  reg.counter("svc/requests").add(3);
  std::ostringstream second;
  exportStatsJson(second, /*delta=*/true);
  EXPECT_NE(second.str().find("\"svc/requests\":3"), std::string::npos);

  // No increments since: the delta is zero, not the absolute value.
  std::ostringstream third;
  exportStatsJson(third, /*delta=*/true);
  EXPECT_NE(third.str().find("\"svc/requests\":0"), std::string::npos);

  // Absolute snapshots are unaffected by the baseline.
  std::ostringstream absolute;
  exportStatsJson(absolute, /*delta=*/false);
  EXPECT_NE(absolute.str().find("\"svc/requests\":8"), std::string::npos);
}

}  // namespace
}  // namespace nano::obs
