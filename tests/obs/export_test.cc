#include "obs/export.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/span.h"

namespace nano::obs {
namespace {

/// Minimal JSON field extraction: the numeric token following `"key":`
/// after position `from`. Good enough to verify our own flat exporter.
double jsonNumberAfter(const std::string& json, const std::string& key,
                       std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle, from);
  EXPECT_NE(pos, std::string::npos) << key;
  if (pos == std::string::npos) return 0.0;
  return std::stod(json.substr(pos + needle.size()));
}

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wasEnabled_ = enabled();
    setEnabled(true);
    MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    MetricsRegistry::instance().reset();
    setEnabled(wasEnabled_);
  }
  bool wasEnabled_ = false;
};

TEST_F(ExportTest, JsonRoundTripsValues) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("powergrid/cg_iterations").add(1234);
  reg.gauge("powergrid/cg_residual").set(5.4321e-17);
  reg.timer("sta/analyze").record(0.25);
  reg.timer("sta/analyze").record(0.75);
  { NANO_OBS_SPAN("run"); }

  std::ostringstream os;
  exportJson(os);
  const std::string json = os.str();

  EXPECT_EQ(jsonNumberAfter(json, "powergrid/cg_iterations"), 1234.0);
  EXPECT_DOUBLE_EQ(jsonNumberAfter(json, "powergrid/cg_residual"), 5.4321e-17);

  const std::size_t timerPos = json.find("\"sta/analyze\":");
  ASSERT_NE(timerPos, std::string::npos);
  EXPECT_EQ(jsonNumberAfter(json, "count", timerPos), 2.0);
  EXPECT_DOUBLE_EQ(jsonNumberAfter(json, "total_s", timerPos), 1.0);
  EXPECT_DOUBLE_EQ(jsonNumberAfter(json, "mean_s", timerPos), 0.5);
  EXPECT_DOUBLE_EQ(jsonNumberAfter(json, "min_s", timerPos), 0.25);
  EXPECT_DOUBLE_EQ(jsonNumberAfter(json, "max_s", timerPos), 0.75);

  EXPECT_NE(json.find("\"spans\":{\"run\":"), std::string::npos);
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
}

TEST_F(ExportTest, JsonEscapesNames) {
  MetricsRegistry::instance().counter("weird\"name\\with\nstuff").add(1);
  std::ostringstream os;
  exportJson(os);
  EXPECT_NE(os.str().find("weird\\\"name\\\\with\\nstuff"), std::string::npos);
}

TEST_F(ExportTest, CsvHasHeaderAndOneRowPerMetric) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("c1").add(7);
  reg.gauge("g1").set(3.25);
  reg.timer("t1").record(1.0);
  { NANO_OBS_SPAN("s1"); }

  std::ostringstream os;
  exportCsv(os);
  std::istringstream in(os.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "kind,name,count,total_s,min_s,max_s,mean_s,p50_s,p90_s,p99_s,"
            "p999_s,value");
  int rows = 0;
  bool sawCounter = false;
  while (std::getline(in, line)) {
    ++rows;
    if (line.rfind("counter,c1,", 0) == 0) {
      sawCounter = true;
      EXPECT_NE(line.find(",7"), std::string::npos);
    }
  }
  EXPECT_EQ(rows, 4);
  EXPECT_TRUE(sawCounter);
}

TEST_F(ExportTest, RunReportShowsAllSections) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("sim/newton_iterations").add(308);
  reg.gauge("powergrid/cg_residual").set(1e-16);
  reg.timer("device/solve_vth").record(1e-5);
  {
    NANO_OBS_SPAN("opt/dual_vth");
    { NANO_OBS_SPAN("sta/analyze"); }
  }

  std::ostringstream os;
  printRunReport(os);
  const std::string report = os.str();
  EXPECT_NE(report.find("nanodesign run report"), std::string::npos);
  EXPECT_NE(report.find("Phase breakdown"), std::string::npos);
  EXPECT_NE(report.find("opt/dual_vth"), std::string::npos);
  // Nested span is indented under its parent, shown by leaf name only.
  EXPECT_NE(report.find("  sta/analyze"), std::string::npos);
  EXPECT_NE(report.find("sim/newton_iterations"), std::string::npos);
  EXPECT_NE(report.find("308"), std::string::npos);
  EXPECT_NE(report.find("device/solve_vth"), std::string::npos);
  EXPECT_NE(report.find("powergrid/cg_residual"), std::string::npos);
}

TEST_F(ExportTest, EmptyRegistryReportSaysSo) {
  std::ostringstream os;
  printRunReport(os);
  EXPECT_NE(os.str().find("no metrics recorded"), std::string::npos);
}

TEST_F(ExportTest, DisabledReportPointsAtTheSwitch) {
  setEnabled(false);
  std::ostringstream os;
  printRunReport(os);
  EXPECT_NE(os.str().find("NANO_OBS=1"), std::string::npos);
}

}  // namespace
}  // namespace nano::obs
