#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace nano::obs {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wasEnabled_ = enabled();
    setEnabled(true);
    MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    MetricsRegistry::instance().reset();
    setEnabled(wasEnabled_);
  }
  bool wasEnabled_ = false;
};

TEST_F(RegistryTest, CounterAccumulates) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("x").add();
  reg.counter("x").add(41);
  EXPECT_EQ(reg.counter("x").value(), 42);
  EXPECT_EQ(reg.counter("y").value(), 0);  // lookup creates at zero
}

TEST_F(RegistryTest, CounterReferenceIsStableAcrossInserts) {
  auto& reg = MetricsRegistry::instance();
  Counter& a = reg.counter("a");
  for (int i = 0; i < 100; ++i) reg.counter("other" + std::to_string(i));
  a.add(7);
  EXPECT_EQ(reg.counter("a").value(), 7);
}

TEST_F(RegistryTest, GaugeKeepsLastValue) {
  auto& reg = MetricsRegistry::instance();
  reg.gauge("residual").set(1e-3);
  reg.gauge("residual").set(1e-9);
  EXPECT_DOUBLE_EQ(reg.gauge("residual").value(), 1e-9);
}

TEST_F(RegistryTest, TimerStatistics) {
  TimerStat t;
  for (int i = 1; i <= 100; ++i) t.record(static_cast<double>(i));
  const auto s = t.snapshot();
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.total, 5050.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.5, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.5);
}

TEST_F(RegistryTest, TimerEmptySnapshotIsZero) {
  TimerStat t;
  const auto s = t.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.total, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST_F(RegistryTest, TimerReservoirBoundsMemoryButKeepsExactAggregates) {
  TimerStat t;
  const int n = 20000;  // well past the 4096-sample reservoir
  for (int i = 0; i < n; ++i) t.record(1.0);
  const auto s = t.snapshot();
  EXPECT_EQ(s.count, n);
  EXPECT_DOUBLE_EQ(s.total, static_cast<double>(n));
  EXPECT_DOUBLE_EQ(s.p50, 1.0);
}

TEST_F(RegistryTest, ScopedTimerRecordsOnce) {
  auto& reg = MetricsRegistry::instance();
  { ScopedTimer timer(&reg.timer("scope")); }
  const auto s = reg.timer("scope").snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_GE(s.total, 0.0);
}

TEST_F(RegistryTest, NullScopedTimerIsNoop) {
  ScopedTimer timer(nullptr);  // must not crash or record anything
  EXPECT_TRUE(MetricsRegistry::instance().timers().empty());
}

TEST_F(RegistryTest, MacrosNoopWhenDisabled) {
  setEnabled(false);
  NANO_OBS_COUNT("disabled/counter", 5);
  NANO_OBS_GAUGE("disabled/gauge", 1.0);
  { NANO_OBS_TIMER("disabled/timer"); }
  auto& reg = MetricsRegistry::instance();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.gauges().empty());
  EXPECT_TRUE(reg.timers().empty());
}

TEST_F(RegistryTest, MacrosRecordWhenEnabled) {
  NANO_OBS_COUNT("on/counter", 5);
  NANO_OBS_GAUGE("on/gauge", 2.5);
  { NANO_OBS_TIMER("on/timer"); }
  auto& reg = MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("on/counter").value(), 5);
  EXPECT_DOUBLE_EQ(reg.gauge("on/gauge").value(), 2.5);
  EXPECT_EQ(reg.timer("on/timer").snapshot().count, 1);
}

TEST_F(RegistryTest, ResetClearsEverything) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("a").add(1);
  reg.gauge("b").set(1.0);
  reg.timer("c").record(1.0);
  reg.reset();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.gauges().empty());
  EXPECT_TRUE(reg.timers().empty());
  EXPECT_TRUE(reg.spans().empty());
}

TEST_F(RegistryTest, ExportRowsAreSortedByName) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("zebra").add(1);
  reg.counter("alpha").add(2);
  const auto rows = reg.counters();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "alpha");
  EXPECT_EQ(rows[1].name, "zebra");
}

TEST_F(RegistryTest, ConcurrentCountersAreExact) {
  auto& reg = MetricsRegistry::instance();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.counter("concurrent").add();
        reg.timer("concurrent_t").record(1e-9);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("concurrent").value(), kThreads * kPerThread);
  EXPECT_EQ(reg.timer("concurrent_t").snapshot().count, kThreads * kPerThread);
}

}  // namespace
}  // namespace nano::obs
