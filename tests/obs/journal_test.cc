// Trace journal behavior: event pairing and ordering, explicit context
// propagation, bounded buffers that drop (never wrap) when full, the
// Chrome trace-event serialization, and — the TSan target — concurrent
// recording from many threads while a reader exports.
#include "obs/journal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace nano::obs {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wasEnabled_ = enabled();
    setEnabled(false);
    setTracingEnabled(true);
    journalReset();
  }
  void TearDown() override {
    setTracingEnabled(false);
    setJournalCapacity(1 << 16);
    journalReset();
    setEnabled(wasEnabled_);
    MetricsRegistry::instance().reset();
  }
  bool wasEnabled_ = false;
};

/// Events recorded by this test run only (the journal is process-global,
/// and a plain `./obs_test` run shares it across TEST_Fs).
std::vector<TraceEvent> eventsSince(std::size_t before) {
  std::vector<TraceEvent> all = journalSnapshot();
  return {all.begin() + static_cast<std::ptrdiff_t>(before), all.end()};
}

TEST_F(JournalTest, SyncSpansPairLifoOnOneThread) {
  const std::size_t before = journalSnapshot().size();
  const TraceContext ctx{42};
  {
    TraceSpan outer("test", "outer", ctx);
    { TraceSpan inner("test", "inner", ctx); }
  }
  const auto events = eventsSince(before);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[3].phase, 'E');
  EXPECT_STREQ(events[3].name, "outer");
  for (const auto& e : events) {
    EXPECT_EQ(e.id, 42u);
    EXPECT_EQ(e.tid, events[0].tid);  // all on this thread
    EXPECT_GT(e.tsNs, 0);
  }
  EXPECT_LE(events[0].tsNs, events[3].tsNs);  // monotone per thread
}

TEST_F(JournalTest, AsyncCompleteAndInstantCarryTheirPayloads) {
  const std::size_t before = journalSnapshot().size();
  const TraceContext ctx{7};
  traceAsyncSpan("svc", "request", ctx, 1000, 5000);
  traceComplete("svc", "eval", ctx, 2000, 1500);
  traceInstant("svc", "cache.hit", ctx);
  const auto events = eventsSince(before);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, 'b');
  EXPECT_EQ(events[0].tsNs, 1000);
  EXPECT_EQ(events[1].phase, 'e');
  EXPECT_EQ(events[1].tsNs, 5000);
  EXPECT_EQ(events[2].phase, 'X');
  EXPECT_EQ(events[2].tsNs, 2000);
  EXPECT_EQ(events[2].durNs, 1500);
  EXPECT_EQ(events[3].phase, 'i');
}

TEST_F(JournalTest, DisabledTracingRecordsNothingAndTimingReadsNoClock) {
  setTracingEnabled(false);
  const std::size_t before = journalSnapshot().size();
  traceBegin("test", "ignored", {});
  traceEnd("test", "ignored", {});
  { TraceSpan span("test", "ignored", {}); }
  EXPECT_EQ(journalSnapshot().size(), before);
  // Neither obs nor tracing enabled: the hot-path clock is gated off.
  EXPECT_EQ(timingNowNs(), 0);
  setTracingEnabled(true);
  EXPECT_GT(timingNowNs(), 0);
}

TEST_F(JournalTest, ContextScopeInstallsAndRestores) {
  EXPECT_EQ(currentTraceContext().id, 0u);
  {
    TraceContextScope outer(TraceContext{5});
    EXPECT_EQ(currentTraceContext().id, 5u);
    {
      TraceContextScope inner(TraceContext{9});
      EXPECT_EQ(currentTraceContext().id, 9u);
    }
    EXPECT_EQ(currentTraceContext().id, 5u);
  }
  EXPECT_EQ(currentTraceContext().id, 0u);
}

TEST_F(JournalTest, FullBufferDropsNewestAndCounts) {
  setJournalCapacity(4);
  journalReset();
  const std::uint64_t droppedBefore = journalDropped();
  for (int i = 0; i < 10; ++i) traceInstant("test", "spam", {});
  // This thread's buffer holds 4; six instants were dropped, not wrapped
  // (write-once slots are what make concurrent export race-free).
  EXPECT_EQ(journalSnapshot().size(), 4u);
  EXPECT_EQ(journalDropped() - droppedBefore, 6u);

  setJournalCapacity(1 << 16);
  journalReset();
  EXPECT_EQ(journalSnapshot().size(), 0u);
  traceInstant("test", "alive", {});
  EXPECT_EQ(journalSnapshot().size(), 1u);  // reset restores the capacity
}

TEST_F(JournalTest, ChromeExportRendersMicrosecondsAndIds) {
  setJournalCapacity(64);
  journalReset();
  const TraceContext ctx{3};
  traceAsyncSpan("svc", "request", ctx, 1234567, 7654321);
  traceComplete("svc", "eval", ctx, 2000000, 500000);
  std::ostringstream os;
  exportChromeTrace(os, journalSnapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1234.567"), std::string::npos);   // ns -> us
  EXPECT_NE(json.find("\"dur\":500.000"), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0x3\""), std::string::npos);    // async id
  EXPECT_NE(json.find("\"args\":{\"trace\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// The TSan target: 8 writer threads hammer counters, a histogram-backed
// timer, and the journal while the main thread concurrently snapshots and
// exports everything. Any missing synchronization in the lock-free paths
// shows up as a TSan report; the assertions just keep the work honest.
TEST_F(JournalTest, ConcurrentMutationWhileExportingIsRaceFree) {
  setEnabled(true);
  setJournalCapacity(1 << 12);
  journalReset();
  auto& registry = MetricsRegistry::instance();
  registry.reset();

  constexpr int kThreads = 8;
  constexpr int kOps = 5000;
  std::atomic<int> running{kThreads};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, &running, t] {
      const TraceContext ctx{static_cast<std::uint64_t>(t + 1)};
      for (int i = 0; i < kOps; ++i) {
        registry.counter("journal_test/ops").add(1);
        registry.timer("journal_test/latency")
            .record(1e-6 * static_cast<double>(i % 97 + 1));
        TraceSpan span("test", "work", ctx);
        traceInstant("test", "tick", ctx);
      }
      running.fetch_sub(1, std::memory_order_release);
    });
  }

  std::size_t snapshots = 0;
  while (running.load(std::memory_order_acquire) > 0) {
    const std::vector<TraceEvent> events = journalSnapshot();
    for (const TraceEvent& e : events) {
      // Every published record is fully written: no torn reads.
      ASSERT_NE(e.name, nullptr);
      ASSERT_NE(e.cat, nullptr);
      ASSERT_GT(e.tsNs, 0);
    }
    std::ostringstream sink;
    for (const auto& row : registry.timers()) {
      sink << row.name << row.stat.count << row.stat.p99;
    }
    (void)journalDropped();
    ++snapshots;
  }
  for (auto& w : writers) w.join();

  EXPECT_GT(snapshots, 0u);
  EXPECT_EQ(registry.counter("journal_test/ops").value(),
            static_cast<std::int64_t>(kThreads) * kOps);
  const auto latency = registry.timer("journal_test/latency").snapshot();
  EXPECT_EQ(latency.count, static_cast<std::int64_t>(kThreads) * kOps);
}

}  // namespace
}  // namespace nano::obs
