#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace nano::util {
namespace {

TEST(ArenaTest, StartsEmpty) {
  Arena a;
  EXPECT_EQ(a.bytesUsed(), 0u);
  EXPECT_EQ(a.bytesReserved(), 0u);
  EXPECT_EQ(a.growthCount(), 0);
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena a;
  auto* d = a.allocateArray<double>(13);
  auto* u8 = a.allocateArray<std::uint8_t>(3);
  auto* u32 = a.allocateArray<std::uint32_t>(7);
  ASSERT_NE(d, nullptr);
  ASSERT_NE(u8, nullptr);
  ASSERT_NE(u32, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u32) % alignof(std::uint32_t), 0u);
  // Write patterns; no overlap means they all read back intact.
  for (int i = 0; i < 13; ++i) d[i] = 1.5 * i;
  for (int i = 0; i < 3; ++i) u8[i] = static_cast<std::uint8_t>(0xA0 + i);
  for (int i = 0; i < 7; ++i) u32[i] = 0xDEAD0000u + static_cast<std::uint32_t>(i);
  for (int i = 0; i < 13; ++i) EXPECT_EQ(d[i], 1.5 * i);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(u8[i], 0xA0 + i);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(u32[i], 0xDEAD0000u + static_cast<std::uint32_t>(i));
  }
}

TEST(ArenaTest, ZeroedArrayIsZero) {
  Arena a;
  auto* z = a.allocateZeroedArray<std::uint64_t>(257);
  for (int i = 0; i < 257; ++i) ASSERT_EQ(z[i], 0u);
}

TEST(ArenaTest, ResetRewindsWithoutReleasing) {
  Arena a;
  (void)a.allocateArray<double>(10000);
  const std::size_t reserved = a.bytesReserved();
  const std::int64_t growth = a.growthCount();
  EXPECT_GT(reserved, 0u);
  EXPECT_GT(growth, 0);

  a.reset();
  EXPECT_EQ(a.bytesUsed(), 0u);
  EXPECT_EQ(a.bytesReserved(), reserved);  // blocks kept

  // Same-shaped reallocation reuses the kept blocks: zero heap growth.
  (void)a.allocateArray<double>(10000);
  EXPECT_EQ(a.growthCount(), growth);
}

TEST(ArenaTest, SteadyStateLoopNeverGrows) {
  Arena a;
  std::int64_t growthAfterFirst = -1;
  for (int round = 0; round < 50; ++round) {
    a.reset();
    (void)a.allocateArray<std::uint32_t>(1000);
    (void)a.allocateArray<double>(500);
    (void)a.allocateArray<std::uint8_t>(1237);
    if (round == 0) growthAfterFirst = a.growthCount();
  }
  EXPECT_EQ(a.growthCount(), growthAfterFirst);
}

TEST(ArenaTest, GrowsGeometrically) {
  Arena a;
  // ~16 MiB in 4 KiB chunks: block doubling keeps growth events
  // logarithmic, far below the 4096 appends a fixed block size would need.
  for (int i = 0; i < 4096; ++i) (void)a.allocateArray<std::uint8_t>(4096);
  EXPECT_LE(a.growthCount(), 20);
  EXPECT_GE(a.bytesReserved(), a.bytesUsed());
}

TEST(ArenaTest, ZeroCountAllocationIsValid) {
  Arena a;
  auto* p = a.allocateArray<double>(0);
  EXPECT_NE(p, nullptr);
}

}  // namespace
}  // namespace nano::util
