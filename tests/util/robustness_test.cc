// Fault-injection coverage of the numeric kernels: every failure path
// (NaN-detected, bracket-failure, max-iterations) of every solver must
// produce a structured status instead of an uncaught exception or a
// silently-wrong root.
#include <gtest/gtest.h>

#include <cmath>

#include "fault_injection.h"
#include "util/numeric.h"

namespace nano::util {
namespace {

using nano::testing::FaultyFn;

// ------------------------------------------------------------ statuses

TEST(SolverStatusName, CoversAllStates) {
  EXPECT_STREQ(solverStatusName(SolverStatus::Converged), "converged");
  EXPECT_STREQ(solverStatusName(SolverStatus::MaxIterations),
               "max-iterations");
  EXPECT_STREQ(solverStatusName(SolverStatus::BracketFailure),
               "bracket-failure");
  EXPECT_STREQ(solverStatusName(SolverStatus::NanDetected), "nan-detected");
}

TEST(Diagnostics, DescribeNamesKernelAndStatus) {
  auto r = tryBrent([](double x) { return x - 0.5; }, 0.0, 1.0);
  const Diagnostics d = r.diagnostics();
  EXPECT_TRUE(d.ok());
  const std::string s = d.describe();
  EXPECT_NE(s.find("brent"), std::string::npos);
  EXPECT_NE(s.find("converged"), std::string::npos);
}

// ------------------------------------------------------------ tryBisect

TEST(TryBisect, NanInputEndpoints) {
  auto r = tryBisect([](double x) { return x; }, nano::testing::nan(), 1.0);
  EXPECT_EQ(r.status, SolverStatus::NanDetected);
  EXPECT_FALSE(r.converged);
}

TEST(TryBisect, PoisonedFirstEvaluation) {
  FaultyFn f = FaultyFn::nanAfter([](double x) { return x - 0.25; }, 0);
  auto r = tryBisect(f.fn(), 0.0, 1.0);
  EXPECT_EQ(r.status, SolverStatus::NanDetected);
}

TEST(TryBisect, PoisonedMidSolve) {
  FaultyFn f = FaultyFn::nanAfter([](double x) { return x - 0.3; }, 4);
  auto r = tryBisect(f.fn(), 0.0, 1.0);
  EXPECT_EQ(r.status, SolverStatus::NanDetected);
  EXPECT_GT(r.iterations, 0);
  EXPECT_GE(f.calls(), 5);
}

TEST(TryBisect, BracketFailureStatusInsteadOfThrow) {
  auto r = tryBisect([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  EXPECT_EQ(r.status, SolverStatus::BracketFailure);
  EXPECT_FALSE(r.converged);
}

TEST(TryBisect, MaxIterationsReported) {
  auto r = tryBisect([](double x) { return x - 0.123456789; }, 0.0, 1.0,
                     1e-15, 3);
  EXPECT_EQ(r.status, SolverStatus::MaxIterations);
  EXPECT_EQ(r.iterations, 3);
  EXPECT_FALSE(r.converged);
  // The best iterate is still inside the original bracket.
  EXPECT_GE(r.x, 0.0);
  EXPECT_LE(r.x, 1.0);
}

TEST(TryBisect, ConvergedMatchesThrowingVersion) {
  auto a = tryBisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  auto b = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_EQ(a.status, SolverStatus::Converged);
  EXPECT_DOUBLE_EQ(a.x, b.x);
}

// ------------------------------------------------------------- tryBrent

TEST(TryBrent, PoisonedEvaluationKeepsBestIterate) {
  FaultyFn f = FaultyFn::nanAfter([](double x) { return std::cos(x) - x; }, 4);
  auto r = tryBrent(f.fn(), 0.0, 1.0);
  EXPECT_EQ(r.status, SolverStatus::NanDetected);
  // The reported iterate is the best bracketed point, not the NaN probe.
  EXPECT_TRUE(std::isfinite(r.x));
  EXPECT_TRUE(std::isfinite(r.fx));
}

TEST(TryBrent, BracketFailureStatus) {
  auto r = tryBrent([](double x) { return x * x + 0.5; }, -1.0, 1.0);
  EXPECT_EQ(r.status, SolverStatus::BracketFailure);
}

TEST(TryBrent, SignFlipStillBrackets) {
  // Sign-flipped function has the same root with mirrored bracket values.
  FaultyFn f = FaultyFn::signFlip([](double x) { return x - 0.5; });
  auto r = tryBrent(f.fn(), 0.0, 1.0);
  EXPECT_EQ(r.status, SolverStatus::Converged);
  EXPECT_NEAR(r.x, 0.5, 1e-9);
}

TEST(TryBrent, MaxIterStatus) {
  auto r = tryBrent([](double x) { return std::cos(x) - x; }, 0.0, 1.0,
                    1e-15, 2);
  EXPECT_EQ(r.status, SolverStatus::MaxIterations);
  EXPECT_EQ(r.iterations, 2);
}

// ---------------------------------------------------- tryBracketAndSolve

TEST(TryBracketAndSolve, ExpansionLandsExactlyOnRoot) {
  // Root at exactly 2.0: the expansion [0,1] -> [0,2] evaluates f(2) == 0.
  // sameSign(0, negative) used to classify the zero as negative and keep
  // expanding (or throw); now it must return the root immediately.
  FaultyFn f = FaultyFn::passthrough([](double x) { return x - 2.0; });
  auto r = tryBracketAndSolve(f.fn(), 0.0, 1.0);
  EXPECT_EQ(r.status, SolverStatus::Converged);
  EXPECT_DOUBLE_EQ(r.x, 2.0);
  EXPECT_DOUBLE_EQ(r.fx, 0.0);
}

TEST(TryBracketAndSolve, ExactZeroAtInitialEndpoint) {
  auto r = tryBracketAndSolve([](double x) { return x; }, 0.0, 1.0);
  EXPECT_EQ(r.status, SolverStatus::Converged);
  EXPECT_DOUBLE_EQ(r.x, 0.0);
}

TEST(TryBracketAndSolve, ExactZeroDownwardExpansion) {
  // Root at exactly -1.0 with f > 0 on [0, 1]: downward expansion lands on
  // it exactly after [0,1] -> [-1,1].
  auto r = tryBracketAndSolve([](double x) { return x + 1.0; }, 0.0, 1.0);
  EXPECT_EQ(r.status, SolverStatus::Converged);
  EXPECT_DOUBLE_EQ(r.x, -1.0);
}

TEST(TryBracketAndSolve, DegenerateBracketRecovers) {
  const auto [lo, hi] = nano::testing::degenerateBracket(0.0);
  auto r = tryBracketAndSolve([](double x) { return x - 1.0; }, lo, hi);
  EXPECT_EQ(r.status, SolverStatus::Converged);
  EXPECT_NEAR(r.x, 1.0, 1e-9);
}

TEST(TryBracketAndSolve, ReversedBracketRecovers) {
  auto r = tryBracketAndSolve([](double x) { return x - 0.5; }, 1.0, 0.0);
  EXPECT_EQ(r.status, SolverStatus::Converged);
  EXPECT_NEAR(r.x, 0.5, 1e-9);
}

TEST(TryBracketAndSolve, RootlessReportsBracketFailure) {
  FaultyFn f = FaultyFn::constant(1.0);
  auto r = tryBracketAndSolve(f.fn(), 0.0, 1.0, 8);
  EXPECT_EQ(r.status, SolverStatus::BracketFailure);
  EXPECT_EQ(r.iterations, 8);  // consumed the whole expansion budget
}

TEST(TryBracketAndSolve, NanDuringExpansion) {
  // f is finite near the start but poisoned beyond x = 4: the expansion
  // walks into the poisoned region and must report NanDetected.
  FaultyFn f = FaultyFn::nanInRange([](double x) { return -1.0 / (x + 0.1); },
                                    4.0, 1e18);
  auto r = tryBracketAndSolve(f.fn(), 0.0, 1.0, 20);
  EXPECT_EQ(r.status, SolverStatus::NanDetected);
}

TEST(TryBracketAndSolve, BisectionFallbackFromStalledBrent) {
  // maxIter 1 starves Brent; the ladder hands the still-valid bracket to
  // bisection, which must converge on its larger budget.
  auto r = tryBracketAndSolve([](double x) { return std::cos(x) - x; }, 0.0,
                              1.0, 0, 1e-10, 1);
  EXPECT_EQ(r.status, SolverStatus::Converged);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-8);
}

TEST(TryBracketAndSolve, NanInputs) {
  auto r = tryBracketAndSolve([](double x) { return x; },
                              nano::testing::nan(), 1.0);
  EXPECT_EQ(r.status, SolverStatus::NanDetected);
}

// ------------------------------------------------------ tryMinimizeGolden

TEST(TryMinimizeGolden, ConvergesWithStatus) {
  auto r = tryMinimizeGolden([](double x) { return (x - 1.5) * (x - 1.5); },
                             0.0, 4.0);
  EXPECT_EQ(r.status, SolverStatus::Converged);
  EXPECT_NEAR(r.x, 1.5, 1e-6);
}

TEST(TryMinimizeGolden, PoisonedEvaluation) {
  FaultyFn f =
      FaultyFn::nanAfter([](double x) { return (x - 1.5) * (x - 1.5); }, 6);
  auto r = tryMinimizeGolden(f.fn(), 0.0, 4.0);
  EXPECT_EQ(r.status, SolverStatus::NanDetected);
  EXPECT_TRUE(std::isfinite(r.x));
}

TEST(TryMinimizeGolden, MaxIterStatus) {
  auto r = tryMinimizeGolden([](double x) { return x * x; }, -8.0, 8.0,
                             1e-14, 3);
  EXPECT_EQ(r.status, SolverStatus::MaxIterations);
  EXPECT_EQ(r.iterations, 3);
}

TEST(TryMinimizeGolden, NanInputs) {
  auto r = tryMinimizeGolden([](double x) { return x * x; }, 0.0,
                             nano::testing::nan());
  EXPECT_EQ(r.status, SolverStatus::NanDetected);
}

// ----------------------------------------- throwing wrappers still throw

TEST(ThrowingWrappers, TranslateStatusesToExceptions) {
  EXPECT_THROW(bisect([](double) { return 1.0; }, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(brent([](double) { return 1.0; }, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(
      bracketAndSolve([](double x) { return x * x + 1.0; }, 0.0, 1.0, 4),
      std::invalid_argument);
  FaultyFn nan = FaultyFn::nanAfter([](double x) { return x - 0.5; }, 0);
  EXPECT_THROW(bisect(nan.fn(), 0.0, 1.0), std::invalid_argument);
}

TEST(ThrowingWrappers, MaxIterationsIsNotAnException) {
  // Historical contract: exhausting the budget returns converged=false,
  // it does not throw.
  auto r = brent([](double x) { return std::cos(x) - x; }, 0.0, 1.0, 1e-15, 2);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status, SolverStatus::MaxIterations);
}

// --------------------------------------------------- harness self-checks

TEST(FaultyFn, CountsCallsAcrossCopies) {
  FaultyFn f = FaultyFn::passthrough([](double x) { return 2.0 * x; });
  auto g = f.fn();
  EXPECT_DOUBLE_EQ(g(3.0), 6.0);
  EXPECT_DOUBLE_EQ(g(1.0), 2.0);
  EXPECT_EQ(f.calls(), 2);
}

TEST(FaultyFn, JitterForcesFallbackButKeepsRoot) {
  FaultyFn f = FaultyFn::jitter([](double x) { return x - 0.5; }, 1e-6);
  auto r = tryBracketAndSolve(f.fn(), 0.0, 1.0, 0, 1e-12, 100);
  // The oscillation bounds the achievable accuracy but must not escape as
  // an exception or a wild iterate.
  EXPECT_TRUE(r.status == SolverStatus::Converged ||
              r.status == SolverStatus::MaxIterations);
  EXPECT_NEAR(r.x, 0.5, 1e-4);
}

}  // namespace
}  // namespace nano::util
