#include "util/numeric.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nano::util {
namespace {

TEST(Bisect, FindsSimpleRoot) {
  auto r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, ExactEndpointRoot) {
  auto r = bisect([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x, 0.0);
}

TEST(Bisect, ThrowsWithoutBracket) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(Bisect, DecreasingFunction) {
  auto r = bisect([](double x) { return 1.0 - x; }, 0.0, 3.0);
  EXPECT_NEAR(r.x, 1.0, 1e-9);
}

TEST(Brent, FindsRootFasterThanBisect) {
  int evalBrent = 0;
  auto f = [&](double x) {
    ++evalBrent;
    return std::cos(x) - x;
  };
  auto r = brent(f, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-9);
  EXPECT_LT(r.iterations, 20);
}

TEST(Brent, HandlesSteepExponential) {
  // Like the Vth solve: exponential in x.
  auto r = brent([](double x) { return std::pow(10.0, -x / 0.085) - 1e-3; },
                 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.085 * 3.0, 1e-6);
}

TEST(Brent, ThrowsWithoutBracket) {
  EXPECT_THROW(brent([](double x) { return x * x + 0.5; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(BracketAndSolve, ExpandsToFindRoot) {
  // Root at 5, initial interval [0, 1] does not bracket it.
  auto r = bracketAndSolve([](double x) { return x - 5.0; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 5.0, 1e-9);
}

TEST(BracketAndSolve, ExpandsDownward) {
  auto r = bracketAndSolve([](double x) { return x + 7.0; }, 0.0, 1.0);
  EXPECT_NEAR(r.x, -7.0, 1e-9);
}

TEST(BracketAndSolve, ExactZeroDuringExpansion) {
  // Root at exactly 2.0: the first expansion evaluates f(2) == 0.
  // sameSign(0.0, f(lo)) classified the zero as negative, so the solver
  // used to keep expanding past the root; it must return it immediately.
  auto r = bracketAndSolve([](double x) { return x - 2.0; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.status, SolverStatus::Converged);
  EXPECT_DOUBLE_EQ(r.x, 2.0);
  EXPECT_DOUBLE_EQ(r.fx, 0.0);
}

TEST(BracketAndSolve, ReportsStatusOnSuccess) {
  auto r = bracketAndSolve([](double x) { return x - 5.0; }, 0.0, 1.0);
  EXPECT_EQ(r.status, SolverStatus::Converged);
  EXPECT_STREQ(r.diagnostics().kernel, "bracketAndSolve");
}

TEST(BracketAndSolve, ThrowsWhenNoRoot) {
  EXPECT_THROW(
      bracketAndSolve([](double x) { return x * x + 1.0; }, 0.0, 1.0, 8),
      std::invalid_argument);
}

TEST(MinimizeGolden, FindsParabolaMinimum) {
  auto r = minimizeGolden([](double x) { return (x - 1.5) * (x - 1.5); }, 0.0,
                          4.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.5, 1e-6);
}

TEST(MinimizeGolden, FindsAsymmetricMinimum) {
  auto f = [](double x) { return x + 1.0 / x; };  // min at x = 1
  auto r = minimizeGolden(f, 0.1, 10.0);
  EXPECT_NEAR(r.x, 1.0, 1e-5);
  EXPECT_NEAR(r.fx, 2.0, 1e-9);
}

TEST(LinearInterpolator, InterpolatesInside) {
  LinearInterpolator li({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(li(0.5), 5.0);
  EXPECT_DOUBLE_EQ(li(1.5), 25.0);
  EXPECT_DOUBLE_EQ(li(1.0), 10.0);
}

TEST(LinearInterpolator, ClampsBelowTable) {
  LinearInterpolator li({0.0, 1.0}, {0.0, 2.0});
  EXPECT_DOUBLE_EQ(li(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(li(-1e9), 0.0);
  EXPECT_DOUBLE_EQ(li(0.0), 0.0);  // boundary itself is exact
}

TEST(LinearInterpolator, ClampsAboveTable) {
  LinearInterpolator li({0.0, 1.0}, {0.0, 2.0});
  EXPECT_DOUBLE_EQ(li(2.0), 2.0);
  EXPECT_DOUBLE_EQ(li(1e9), 2.0);
  EXPECT_DOUBLE_EQ(li(1.0), 2.0);
}

TEST(LinearInterpolator, RejectsBadInput) {
  EXPECT_THROW(LinearInterpolator({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(LinearInterpolator({1.0, 1.0}, {0.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(LinearInterpolator({1.0, 2.0}, {0.0}), std::invalid_argument);
}

TEST(Linspace, EndpointsAndSpacing) {
  auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Linspace, RejectsTooFewPoints) {
  EXPECT_THROW(linspace(0.0, 1.0, 1), std::invalid_argument);
}

TEST(Logspace, GeometricSpacing) {
  auto v = logspace(1.0, 100.0, 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-12);
}

TEST(Logspace, RejectsNonPositive) {
  EXPECT_THROW(logspace(0.0, 1.0, 3), std::invalid_argument);
}

TEST(Trapz, IntegratesLine) {
  // Integral of y = x over [0, 1] = 0.5, exact for trapezoid.
  auto xs = linspace(0.0, 1.0, 11);
  std::vector<double> ys = xs;
  EXPECT_NEAR(trapz(xs, ys), 0.5, 1e-12);
}

TEST(Trapz, IntegratesParabolaApproximately)
{
  auto xs = linspace(0.0, 1.0, 201);
  std::vector<double> ys;
  for (double x : xs) ys.push_back(x * x);
  EXPECT_NEAR(trapz(xs, ys), 1.0 / 3.0, 1e-4);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(approxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approxEqual(1.0, 1.1));
  EXPECT_TRUE(approxEqual(0.0, 1e-12, 1e-9, 1e-9));
}

// Property sweep: brent and bisect agree on a family of shifted cubics.
class RootAgreement : public ::testing::TestWithParam<double> {};

TEST_P(RootAgreement, BrentMatchesBisect) {
  const double shift = GetParam();
  auto f = [shift](double x) { return x * x * x - shift; };
  const double hi = std::max(2.0, std::cbrt(shift) + 1.0);
  auto rb = bisect(f, -hi, hi, 1e-13, 400);
  auto rr = brent(f, -hi, hi, 1e-13);
  EXPECT_NEAR(rb.x, rr.x, 1e-9);
  EXPECT_NEAR(rr.x, std::cbrt(shift), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shifts, RootAgreement,
                         ::testing::Values(0.125, 1.0, 8.0, 27.0, 1000.0));

}  // namespace
}  // namespace nano::util
