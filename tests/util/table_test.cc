#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nano::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"a", "bb"});
  t.addRow({"1", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| 1 "), std::string::npos);
  EXPECT_NE(out.find("+---"), std::string::npos);
}

TEST(TextTable, ColumnsWidenToContent) {
  TextTable t({"x"});
  t.addRow({"very-long-cell"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("very-long-cell"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RuleInsertsSeparator) {
  TextTable t({"a"});
  t.addRow({"1"});
  t.addRule();
  t.addRow({"2"});
  std::ostringstream os;
  t.print(os);
  // 5 horizontal rules: top, under header, mid, bottom... count '+' lines.
  int rules = 0;
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(-1.0, 0), "-1");
}

TEST(FmtSci, SignificantDigits) {
  EXPECT_EQ(fmtSci(12345.0, 3), "1.23e+04");
}

TEST(FmtEng, PicksPrefix) {
  EXPECT_EQ(fmtEng(1.5e-9, "A", 3), "1.5 nA");
  EXPECT_EQ(fmtEng(2.2e6, "Hz", 3), "2.2 MHz");
  EXPECT_EQ(fmtEng(0.0, "V", 3), "0 V");
  EXPECT_EQ(fmtEng(-3.3e-3, "V", 2), "-3.3 mV");
}

}  // namespace
}  // namespace nano::util
