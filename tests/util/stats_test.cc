#include "util/stats.h"

#include <gtest/gtest.h>

namespace nano::util {
namespace {

TEST(Summarize, BasicMoments) {
  Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.2909944487358056, 1e-12);
}

TEST(Summarize, EmptyInput) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValue) {
  Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Percentile, MedianAndQuartiles) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 1.0}, 50.0), 0.5);
}

TEST(Percentile, Rejections) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Histogram, CountsAndFractions) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (int b = 0; b < 10; ++b) {
    EXPECT_EQ(h.count(b), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(b), 0.1);
  }
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.binHi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.binLo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.binHi(4), 10.0);
}

TEST(Histogram, CumulativeBelow) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.add((i + 0.5) / 100.0);
  EXPECT_NEAR(h.cumulativeBelow(0.5), 0.5, 0.01);
  EXPECT_DOUBLE_EQ(h.cumulativeBelow(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.cumulativeBelow(2.0), 1.0);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace nano::util
