#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace nano::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "nanodesign_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, HeaderAndNumericRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.row(std::vector<double>{1.5, 2.0});
  }
  const std::string text = slurp(path_);
  EXPECT_NE(text.find("a,b\n"), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
}

TEST_F(CsvTest, StringRows) {
  {
    CsvWriter w(path_, {"x", "y"});
    w.row(std::vector<std::string>{"hello", "world"});
  }
  EXPECT_NE(slurp(path_).find("hello,world\n"), std::string::npos);
}

TEST_F(CsvTest, RowWidthEnforced) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(w.row(std::vector<std::string>{"1", "2", "3"}),
               std::invalid_argument);
}

TEST_F(CsvTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST_F(CsvTest, SmallMagnitudesSurviveFormatting) {
  // Regression: std::to_string's fixed 6 decimals flattened nA/uA-scale
  // values (e.g. Ioff in A/m) to "0.000000". %.9g must round-trip them.
  const double ioff = 3.7e-9;
  const double leakage = 1.234567e-6;
  {
    CsvWriter w(path_, {"ioff", "leakage"});
    w.row(std::vector<double>{ioff, leakage});
  }
  std::ifstream in(path_);
  std::string header, line;
  std::getline(in, header);
  std::getline(in, line);
  const auto comma = line.find(',');
  ASSERT_NE(comma, std::string::npos);
  EXPECT_DOUBLE_EQ(std::stod(line.substr(0, comma)), ioff);
  EXPECT_DOUBLE_EQ(std::stod(line.substr(comma + 1)), leakage);
  EXPECT_EQ(line.find("0.000000,"), std::string::npos);
}

TEST_F(CsvTest, FormatCsvDoubleRoundTrips) {
  for (double v : {0.0, 1.0, -2.5, 1e-12, 6.02214076e23, 3.3333333e-9}) {
    EXPECT_DOUBLE_EQ(std::stod(formatCsvDouble(v)), v) << v;
  }
}

TEST_F(CsvTest, EscapeCsvCellQuotesSpecials) {
  EXPECT_EQ(escapeCsvCell("plain"), "plain");
  EXPECT_EQ(escapeCsvCell("3.14"), "3.14");
  EXPECT_EQ(escapeCsvCell("a,b"), "\"a,b\"");
  EXPECT_EQ(escapeCsvCell("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(escapeCsvCell("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(escapeCsvCell("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(escapeCsvCell(""), "");
}

// Minimal RFC-4180 parser (quotes, doubled quotes, embedded newlines) used
// only to prove the writer's output round-trips; the repo has no reader.
std::vector<std::vector<std::string>> parseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"' && cell.empty()) {
      quoted = true;
    } else if (c == ',') {
      row.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\n') {
      row.push_back(std::move(cell));
      cell.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else {
      cell.push_back(c);
    }
  }
  return rows;
}

TEST_F(CsvTest, Rfc4180RoundTrip) {
  const std::vector<std::string> header = {"name", "note"};
  const std::vector<std::vector<std::string>> payload = {
      {"plain", "no specials"},
      {"comma, separated", "a,b,c"},
      {"quote \"inner\"", "\"leading and trailing\""},
      {"multi\nline", "cr\rcell"},
      {"", ",\"\n mixed \"\" everything"},
  };
  {
    CsvWriter w(path_, header);
    for (const auto& row : payload) w.row(row);
  }
  const auto rows = parseCsv(slurp(path_));
  ASSERT_EQ(rows.size(), payload.size() + 1);
  EXPECT_EQ(rows[0], header);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(rows[i + 1], payload[i]) << "row " << i;
  }
}

TEST_F(CsvTest, QuotedHeaderCells) {
  {
    CsvWriter w(path_, {"vdd (V)", "delay, ps"});
    w.row(std::vector<double>{1.2, 42.0});
  }
  const std::string text = slurp(path_);
  EXPECT_NE(text.find("vdd (V),\"delay, ps\"\n"), std::string::npos);
}

TEST_F(CsvTest, ReaderRoundTripsWriterOutput) {
  {
    CsvWriter w(path_, {"node_nm", "note"});
    w.row(std::vector<double>{180, 3.7e-9});
    w.row(std::vector<std::string>{"50", "comma, and \"quote\""});
  }
  const CsvTable table = readCsvFile(path_);
  ASSERT_EQ(table.header, (std::vector<std::string>{"node_nm", "note"}));
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.number(0, 0), 180.0);
  EXPECT_DOUBLE_EQ(table.number(0, 1), 3.7e-9);
  EXPECT_EQ(table.rows[1][1], "comma, and \"quote\"");
  EXPECT_EQ(table.columnIndex("note"), 1);
  EXPECT_EQ(table.columnIndex("missing"), -1);
}

TEST_F(CsvTest, ReaderHandlesCrlfAndMissingFinalNewline) {
  const CsvTable table = parseCsvText("a,b\r\n1,2\r\n3,4");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.number(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(table.number(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(table.number(1, 1), 4.0);
}

TEST_F(CsvTest, CrlfRewriteWithLostFinalNewlineRoundTrips) {
  // A Windows checkout (LF -> CRLF) whose final newline was also lost —
  // e.g. a truncated transfer — must parse to the same table as the
  // writer's pristine output.
  {
    CsvWriter w(path_, {"node_nm", "note"});
    w.row(std::vector<std::string>{"180", "plain"});
    w.row(std::vector<std::string>{"35", "comma, inside"});
  }
  const std::string pristine = slurp(path_);
  std::string mangled;
  for (char c : pristine) {
    if (c == '\n') mangled += "\r\n";
    else mangled += c;
  }
  while (!mangled.empty() && (mangled.back() == '\n' || mangled.back() == '\r')) {
    mangled.pop_back();
  }
  const CsvTable original = parseCsvText(pristine);
  const CsvTable rewritten = parseCsvText(mangled);
  EXPECT_EQ(rewritten.header, original.header);
  EXPECT_EQ(rewritten.rows, original.rows);
}

TEST_F(CsvTest, QuotedCellsKeepCarriageReturns) {
  // CR only terminates records outside quotes; a quoted cell that
  // legitimately contains CRLF keeps it verbatim.
  const CsvTable table = parseCsvText("a,b\r\n\"x\r\ny\",2");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "x\r\ny");
  EXPECT_DOUBLE_EQ(table.number(0, 1), 2.0);
}

TEST_F(CsvTest, ReaderRejectsMalformedInput) {
  EXPECT_THROW(parseCsvText("a,b\n1\n"), std::invalid_argument);
  EXPECT_THROW(parseCsvText("a\n\"unterminated\n"), std::invalid_argument);
  EXPECT_THROW(readCsvFile("/nonexistent-dir-xyz/in.csv"), std::runtime_error);
  const CsvTable table = parseCsvText("a,b\n1,x\n");
  EXPECT_THROW(table.number(0, 1), std::invalid_argument);
  EXPECT_THROW(table.number(1, 0), std::out_of_range);
}

TEST_F(CsvTest, LineCountMatchesRows) {
  {
    CsvWriter w(path_, {"v"});
    for (int i = 0; i < 10; ++i) w.row(std::vector<double>{1.0 * i});
  }
  std::ifstream in(path_);
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 11);  // header + 10 rows
}

}  // namespace
}  // namespace nano::util
