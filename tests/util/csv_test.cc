#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace nano::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "nanodesign_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, HeaderAndNumericRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.row(std::vector<double>{1.5, 2.0});
  }
  const std::string text = slurp(path_);
  EXPECT_NE(text.find("a,b\n"), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
}

TEST_F(CsvTest, StringRows) {
  {
    CsvWriter w(path_, {"x", "y"});
    w.row(std::vector<std::string>{"hello", "world"});
  }
  EXPECT_NE(slurp(path_).find("hello,world\n"), std::string::npos);
}

TEST_F(CsvTest, RowWidthEnforced) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(w.row(std::vector<std::string>{"1", "2", "3"}),
               std::invalid_argument);
}

TEST_F(CsvTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST_F(CsvTest, LineCountMatchesRows) {
  {
    CsvWriter w(path_, {"v"});
    for (int i = 0; i < 10; ++i) w.row(std::vector<double>{1.0 * i});
  }
  std::ifstream in(path_);
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 11);  // header + 10 rows
}

}  // namespace
}  // namespace nano::util
