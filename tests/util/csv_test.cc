#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace nano::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "nanodesign_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, HeaderAndNumericRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.row(std::vector<double>{1.5, 2.0});
  }
  const std::string text = slurp(path_);
  EXPECT_NE(text.find("a,b\n"), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
}

TEST_F(CsvTest, StringRows) {
  {
    CsvWriter w(path_, {"x", "y"});
    w.row(std::vector<std::string>{"hello", "world"});
  }
  EXPECT_NE(slurp(path_).find("hello,world\n"), std::string::npos);
}

TEST_F(CsvTest, RowWidthEnforced) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(w.row(std::vector<std::string>{"1", "2", "3"}),
               std::invalid_argument);
}

TEST_F(CsvTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST_F(CsvTest, SmallMagnitudesSurviveFormatting) {
  // Regression: std::to_string's fixed 6 decimals flattened nA/uA-scale
  // values (e.g. Ioff in A/m) to "0.000000". %.9g must round-trip them.
  const double ioff = 3.7e-9;
  const double leakage = 1.234567e-6;
  {
    CsvWriter w(path_, {"ioff", "leakage"});
    w.row(std::vector<double>{ioff, leakage});
  }
  std::ifstream in(path_);
  std::string header, line;
  std::getline(in, header);
  std::getline(in, line);
  const auto comma = line.find(',');
  ASSERT_NE(comma, std::string::npos);
  EXPECT_DOUBLE_EQ(std::stod(line.substr(0, comma)), ioff);
  EXPECT_DOUBLE_EQ(std::stod(line.substr(comma + 1)), leakage);
  EXPECT_EQ(line.find("0.000000,"), std::string::npos);
}

TEST_F(CsvTest, FormatCsvDoubleRoundTrips) {
  for (double v : {0.0, 1.0, -2.5, 1e-12, 6.02214076e23, 3.3333333e-9}) {
    EXPECT_DOUBLE_EQ(std::stod(formatCsvDouble(v)), v) << v;
  }
}

TEST_F(CsvTest, LineCountMatchesRows) {
  {
    CsvWriter w(path_, {"v"});
    for (int i = 0; i < 10; ++i) w.row(std::vector<double>{1.0 * i});
  }
  std::ifstream in(path_);
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 11);  // header + 10 rows
}

}  // namespace
}  // namespace nano::util
