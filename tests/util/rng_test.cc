#include "util/rng.h"

#include <gtest/gtest.h>

namespace nano::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    sawLo |= (v == 0);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.03);
}

}  // namespace
}  // namespace nano::util
