// Fault-injection harness for the iterative kernels: wraps a scalar
// function and perturbs or poisons what the solver sees, so every failure
// path (NaN-detected, bracket-failure, forced max-iter) is exercised by
// tests instead of waiting for a pathological tech node.
//
//   FaultyFn f = FaultyFn::nanAfter([](double x) { return x - 2.0; }, 3);
//   auto r = util::tryBracketAndSolve(f.fn(), 0.0, 1.0);
//   EXPECT_EQ(r.status, util::SolverStatus::NanDetected);
//   EXPECT_GE(f.calls(), 4);
//
// The harness is header-only and test-only; production code never sees it.
#pragma once

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <utility>

namespace nano::testing {

/// A scalar function with an injected fault. Copyable; copies share the
/// call counter so a wrapped lambda can be handed to a solver by value.
class FaultyFn {
 public:
  /// No fault: pass-through with call counting (baseline for tests).
  static FaultyFn passthrough(std::function<double(double)> inner) {
    FaultyFn f(std::move(inner));
    return f;
  }

  /// Returns NaN on every evaluation after the first `calls` (0 poisons
  /// the very first call): models a device model blowing up mid-solve.
  static FaultyFn nanAfter(std::function<double(double)> inner, int calls) {
    FaultyFn f(std::move(inner));
    auto state = f.state_;
    auto fn = f.inner_;
    f.apply_ = [state, fn, calls](double x) {
      return state->calls > calls ? std::nan("") : fn(x);
    };
    return f;
  }

  /// Returns NaN whenever x lands inside [lo, hi]: models a poisoned
  /// region of the input domain (log of a negative number, 0/0, ...).
  static FaultyFn nanInRange(std::function<double(double)> inner, double lo,
                             double hi) {
    FaultyFn f(std::move(inner));
    auto fn = f.inner_;
    f.apply_ = [fn, lo, hi](double x) {
      return (x >= lo && x <= hi) ? std::nan("") : fn(x);
    };
    return f;
  }

  /// Flips the sign of every value: breaks monotonicity assumptions and
  /// turns a good bracket into a mirror-image one.
  static FaultyFn signFlip(std::function<double(double)> inner) {
    FaultyFn f(std::move(inner));
    auto fn = f.inner_;
    f.apply_ = [fn](double x) { return -fn(x); };
    return f;
  }

  /// Ignores the input and always returns `value`: with value != 0 no
  /// bracket can ever form (degenerate / rootless function).
  static FaultyFn constant(double value) {
    FaultyFn f([](double) { return 0.0; });
    f.apply_ = [value](double) { return value; };
    return f;
  }

  /// Adds a tiny deterministic oscillation scaled by `amplitude`: the root
  /// stays put to ~amplitude but smooth-convergence steps (secant/IQI)
  /// keep being contradicted, forcing solvers onto their fallback paths.
  static FaultyFn jitter(std::function<double(double)> inner,
                         double amplitude) {
    FaultyFn f(std::move(inner));
    auto state = f.state_;
    auto fn = f.inner_;
    f.apply_ = [state, fn, amplitude](double x) {
      const double wiggle = (state->calls % 2 == 0) ? amplitude : -amplitude;
      return fn(x) + wiggle;
    };
    return f;
  }

  double operator()(double x) const {
    ++state_->calls;
    return apply_(x);
  }

  /// Adapter for APIs taking std::function (shares the call counter).
  [[nodiscard]] std::function<double(double)> fn() const {
    return [*this](double x) { return (*this)(x); };
  }

  /// Total evaluations across all copies.
  [[nodiscard]] int calls() const { return state_->calls; }

 private:
  struct State {
    int calls = 0;
  };

  explicit FaultyFn(std::function<double(double)> inner)
      : inner_(std::move(inner)), apply_(inner_) {}

  std::function<double(double)> inner_;
  std::function<double(double)> apply_;
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

/// Degenerate bracket endpoints for bracketing-solver tests: lo == hi.
inline std::pair<double, double> degenerateBracket(double at) {
  return {at, at};
}

/// Quiet NaN shorthand.
inline double nan() { return std::numeric_limits<double>::quiet_NaN(); }

}  // namespace nano::testing
