#include "tech/literature.h"

#include <gtest/gtest.h>

namespace nano::tech {
namespace {

TEST(Table1, HasSixPublishedAndThreeItrsRows) {
  const auto& rows = table1Devices();
  int published = 0, itrs = 0;
  for (const auto& r : rows) {
    (r.isItrsProjection ? itrs : published)++;
  }
  EXPECT_EQ(published, 6);
  EXPECT_EQ(itrs, 3);
}

TEST(Table1, NoSub1VPublishedDeviceMeetsItrsIon) {
  // The paper's key reading of Table 1: no published sub-1 V technology
  // reaches the 750 uA/um target.
  for (const auto& r : table1Devices()) {
    if (r.isItrsProjection) continue;
    if (r.vdd < 1.0) {
      EXPECT_LT(r.ionUaPerUm, 750.0) << r.reference;
    }
  }
}

TEST(Table1, PublishedHighIonDevicesNeed12V) {
  // Devices at/above the Ion target all run at 1.2 V.
  for (const auto& r : table1Devices()) {
    if (r.isItrsProjection) continue;
    if (r.ionUaPerUm >= 750.0) {
      EXPECT_GE(r.vdd, 1.2) << r.reference;
    }
  }
}

TEST(Table1, ChauRowValues) {
  const auto& r = table1Devices().front();
  EXPECT_NE(r.reference.find("[24]"), std::string::npos);
  EXPECT_EQ(r.toxAngstrom, 18.0);
  EXPECT_EQ(r.vdd, 0.85);
  EXPECT_EQ(r.ionUaPerUm, 514.0);
  EXPECT_EQ(r.ioffNaPerUm, 100.0);
  EXPECT_EQ(r.toxKind, ToxKind::Electrical);
}

TEST(Table1, ItrsRowsUsePhysicalTox) {
  for (const auto& r : table1Devices()) {
    if (r.isItrsProjection) {
      EXPECT_EQ(r.toxKind, ToxKind::Physical) << r.itrsNode;
      EXPECT_EQ(r.ionUaPerUm, 750.0);
    }
  }
}

TEST(Figure2Data, PointsInPlausibleRange) {
  const auto& pts = figure2DataPoints();
  ASSERT_GE(pts.size(), 2u);
  for (const auto& p : pts) {
    EXPECT_GE(p.ionGainPercent, 5.0);
    EXPECT_LE(p.ionGainPercent, 30.0);
    EXPECT_EQ(p.nodeNm, 130);
  }
}

TEST(Historical, IonUnderestimateIs20Percent) {
  EXPECT_DOUBLE_EQ(historicalIonUnderestimate(), 0.20);
}

}  // namespace
}  // namespace nano::tech
