#include "tech/itrs.h"

#include <gtest/gtest.h>

#include "obs/obs.h"
#include "util/units.h"

namespace nano::tech {
namespace {

using namespace nano::units;

TEST(Roadmap, HasSixNodesInScalingOrder) {
  const auto& nodes = roadmap();
  ASSERT_EQ(nodes.size(), 6u);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i].featureNm, nodes[i - 1].featureNm);
    EXPECT_GT(nodes[i].year, nodes[i - 1].year);
  }
}

TEST(Roadmap, LookupByFeature) {
  EXPECT_EQ(nodeByFeature(100).featureNm, 100);
  EXPECT_EQ(nodeByFeature(35).year, 2014);
  EXPECT_THROW(nodeByFeature(90), std::out_of_range);
}

TEST(Roadmap, SupplyVoltageMonotonicallyFalls) {
  const auto& nodes = roadmap();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LE(nodes[i].vdd, nodes[i - 1].vdd);
  }
}

TEST(Roadmap, OxideAndGateLengthShrink) {
  const auto& nodes = roadmap();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i].toxPhysical, nodes[i - 1].toxPhysical);
    EXPECT_LT(nodes[i].leff, nodes[i - 1].leff);
  }
}

TEST(Roadmap, IoffProjectionDoublesPerGeneration) {
  // The ITRS predicts ~2x Ioff per generation (paper Section 3.1);
  // our encoded values follow within a factor band.
  const auto& nodes = roadmap();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const double ratio = nodes[i].ioffItrs / nodes[i - 1].ioffItrs;
    EXPECT_GE(ratio, 1.2);
    EXPECT_LE(ratio, 3.0);
  }
}

TEST(Roadmap, IonTargetConstant750) {
  for (const auto& n : roadmap()) {
    EXPECT_DOUBLE_EQ(n.ionTarget, 750.0 * uA_per_um);
  }
}

TEST(Roadmap, PaperAnchors35nm) {
  // Section 4: the 35 nm MPU draws 300 A peak and may burn 30 A in standby
  // at the 10 % static cap; 4416 pads imply a 356 um effective pitch.
  const auto& n = nodeByFeature(35);
  EXPECT_NEAR(n.supplyCurrent(), 300.0, 1.0);
  EXPECT_NEAR(0.1 * n.maxPower / n.vdd, 30.0, 0.5);
  EXPECT_NEAR(n.itrsEffectiveBumpPitch() / um, 356.0, 4.0);
  EXPECT_EQ(n.itrsVddPads, 1500);
}

TEST(Roadmap, ThetaJaRequirementTightens) {
  // 180 nm: ~0.6 K/W (paper: 0.6-1.0 today); by 100 nm ~0.25 K/W (the
  // "theta_ja of 0.25 in 3 years" ITRS call-out).
  EXPECT_NEAR(nodeByFeature(180).requiredThetaJa(), 0.61, 0.03);
  EXPECT_NEAR(nodeByFeature(100).requiredThetaJa(), 0.25, 0.03);
  const auto& nodes = roadmap();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LE(nodes[i].requiredThetaJa(), nodes[i - 1].requiredThetaJa());
  }
}

TEST(Roadmap, JunctionTempDropsTo85C) {
  EXPECT_NEAR(toCelsius(nodeByFeature(180).tjMax), 100.0, 0.1);
  for (int f : {130, 100, 70, 50, 35}) {
    EXPECT_NEAR(toCelsius(nodeByFeature(f).tjMax), 85.0, 0.1);
  }
}

TEST(Roadmap, PowerDensityRises) {
  EXPECT_GT(nodeByFeature(35).powerDensity(),
            nodeByFeature(180).powerDensity());
}

TEST(Roadmap, Footnote9AreaJump50To35) {
  // "Total power at 50 nm increases only slightly while the area jumps 15%".
  const auto& n50 = nodeByFeature(50);
  const auto& n35 = nodeByFeature(35);
  EXPECT_NEAR(n35.dieArea / n50.dieArea, 1.15, 0.01);
  EXPECT_LT((n35.maxPower - n50.maxPower) / n50.maxPower, 0.05);
}

TEST(Roadmap, DerivedWireGeometry) {
  const auto& n = nodeByFeature(180);
  EXPECT_DOUBLE_EQ(n.minGlobalWireWidth(), 0.5 * n.globalWirePitch);
  EXPECT_DOUBLE_EQ(n.globalWireThickness(), 2.0 * n.minGlobalWireWidth());
}

TEST(Roadmap, FeatureListMatchesDatabase) {
  for (int f : roadmapFeatures()) {
    EXPECT_NO_THROW(nodeByFeature(f));
  }
}

TEST(Roadmap, IndexedLookupCountsReuses) {
  // nodeByFeature is indexed (no linear roadmap scan per call); each
  // successful lookup bumps the reuse counter, misses do not.
  auto& registry = nano::obs::MetricsRegistry::instance();
  const bool wasEnabled = nano::obs::enabled();
  registry.reset();
  nano::obs::setEnabled(true);
  nodeByFeature(35);
  nodeByFeature(35);
  nodeByFeature(180);
  EXPECT_THROW(nodeByFeature(90), std::out_of_range);
  EXPECT_EQ(registry.counter("tech/node_lookup_reuses").value(), 3);
  nano::obs::setEnabled(wasEnabled);
  registry.reset();
}

TEST(Roadmap, BumpPitchShrinksButPadCountLags) {
  const auto& nodes = roadmap();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i].minBumpPitch, nodes[i - 1].minBumpPitch);
    EXPECT_GT(nodes[i].itrsPadCount, nodes[i - 1].itrsPadCount);
    // The ITRS effective pitch stays far above the minimum pitch.
    EXPECT_GT(nodes[i].itrsEffectiveBumpPitch(), 2.0 * nodes[i].minBumpPitch);
  }
}

}  // namespace
}  // namespace nano::tech
