// Batch-vs-scalar equivalence for the interconnect kernels: the AVX2
// segment-delay variant must be bit-identical to repeaterSegmentDelay()
// at every lane position (including remainder tails), and line power must
// reproduce repeatedLinePower().total() exactly.
#include "interconnect/interconnect_batch.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "interconnect/wire.h"
#include "tech/itrs.h"

namespace nano::interconnect {
namespace {

using kernel::Isa;

struct IsaGuard {
  Isa saved = kernel::activeIsa();
  ~IsaGuard() { kernel::setActiveIsa(saved); }
};

struct Fixture {
  const tech::TechNode& node = tech::nodeByFeature(100);
  RepeaterDriver driver = RepeaterDriver::fromNode(node);
  WireRc rc = computeWireRc(topLevelWire(node));
};

TEST(SegmentDelayBatch, MatchesScalarBitExactAtAnyLengthAndIsa) {
  Fixture f;
  // Every n from 1 to 17 exercises each AVX2 remainder-tail length.
  for (std::size_t n = 1; n <= 17; ++n) {
    std::vector<double> size(n), length(n), ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      size[i] = 10.0 + 13.0 * static_cast<double>(i);
      length[i] = 0.2e-3 * static_cast<double>(i + 1);
      ref[i] = repeaterSegmentDelay(f.driver, f.rc, size[i], length[i]);
    }
    IsaGuard guard;
    for (const Isa isa : {Isa::Scalar, Isa::Avx2}) {
      if (kernel::setActiveIsa(isa) != isa) continue;
      std::vector<double> out(n);
      segmentDelayBatch(f.driver, f.rc, size, length, out);
      EXPECT_EQ(out, ref) << "n=" << n << " isa=" << kernel::isaName(isa);
    }
  }
}

TEST(SegmentDelayBatch, PicksAvx2VariantWhenAvailable) {
  IsaGuard guard;
  const kernel::BatchShape shape{64, true, 0, 0};
  kernel::setActiveIsa(Isa::Scalar);
  EXPECT_EQ(segmentDelayFamily().pickedName(shape), "segment_delay_scalar");
  if (kernel::setActiveIsa(Isa::Avx2) == Isa::Avx2) {
    EXPECT_EQ(segmentDelayFamily().pickedName(shape), "segment_delay_avx2");
  }
}

TEST(SegmentDelayBatch, RejectsNonPositiveInputsBeforeWriting) {
  Fixture f;
  const std::vector<double> size{20.0, 0.0, 30.0};
  const std::vector<double> length{1e-3, 1e-3, 1e-3};
  std::vector<double> out(3, -7.0);
  EXPECT_THROW(segmentDelayBatch(f.driver, f.rc, size, length, out),
               std::invalid_argument);
  EXPECT_EQ(out, (std::vector<double>(3, -7.0)));  // checked up front
}

TEST(LinePowerBatch, MatchesScalarTotalsExactly) {
  Fixture f;
  const RepeaterDesign design = optimalRepeatersClosedForm(f.driver, f.rc);
  const double freq = 2.0e9;
  const double activity = 0.15;
  const std::size_t n = 9;
  std::vector<double> length(n), ref(n), out(n);
  for (std::size_t i = 0; i < n; ++i) {
    length[i] = 0.5e-3 * static_cast<double>(i + 1);
    ref[i] =
        repeatedLinePower(f.driver, f.rc, design, length[i], freq, activity)
            .total();
  }
  linePowerBatch(f.driver, f.rc, design, length, freq, activity, out);
  EXPECT_EQ(out, ref);
}

}  // namespace
}  // namespace nano::interconnect
