// SELL-4 repacking and the sparse kernel families: the AVX2 SpMV,
// Gauss-Seidel and Jacobi variants must be bit-identical to the scalar CSR
// references for any matrix shape, any row blocking, and any slice
// remainder, because the multigrid smoother's convergence history is part
// of the repo's byte-reproducibility contract.
#include "kernel/sell.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace nano::kernel {
namespace {

struct IsaGuard {
  Isa saved = activeIsa();
  ~IsaGuard() { setActiveIsa(saved); }
};

/// Owning CSR used to build test views.
struct Csr {
  std::size_t n = 0;
  std::vector<std::size_t> rowPtr;
  std::vector<std::size_t> col;
  std::vector<double> val;

  [[nodiscard]] CsrView view() const { return {n, rowPtr.data(), col.data(), val.data()}; }
};

/// Random sparse matrix with strongly varying row lengths (including empty
/// rows) so slices mix common-width and overflow entries.
Csr randomCsr(std::size_t n, util::Rng& rng, int maxRowLen = 9) {
  Csr a;
  a.n = n;
  a.rowPtr.push_back(0);
  for (std::size_t r = 0; r < n; ++r) {
    const int len = rng.uniformInt(0, maxRowLen);
    std::size_t c = 0;
    for (int k = 0; k < len && c < n; ++k) {
      c += static_cast<std::size_t>(rng.uniformInt(1, 3));
      if (c > n) break;
      a.col.push_back(c - 1);
      a.val.push_back(rng.uniform(-2.0, 2.0));
    }
    a.rowPtr.push_back(a.col.size());
  }
  return a;
}

std::vector<double> randomVector(std::size_t n, util::Rng& rng) {
  std::vector<double> x(n);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

TEST(SellSpmv, Avx2MatchesScalarCsrForAnyShapeAndBlocking) {
  util::Rng rng(1234);
  IsaGuard guard;
  for (const std::size_t n : {1u, 3u, 4u, 7u, 16u, 33u, 257u}) {
    const Csr a = randomCsr(n, rng);
    const SellMatrix sell = SellMatrix::fromCsr(a.view());
    const std::vector<double> x = randomVector(n, rng);

    setActiveIsa(Isa::Scalar);
    const BatchShape shape{n, true, 0, SellMatrix::kSlice};
    std::vector<double> ref(n);
    spmvFamily().pick(shape)(a.view(), &sell, x.data(), ref.data(), 0, n);
    EXPECT_EQ(spmvFamily().pickedName(shape), "spmv_csr_scalar");

    if (setActiveIsa(Isa::Avx2) != Isa::Avx2) continue;
    EXPECT_EQ(spmvFamily().pickedName(shape), "spmv_sell_avx2");
    const SpmvFn fn = spmvFamily().pick(shape);
    // Whole range plus deliberately unaligned blockings: the variant must
    // give the same bytes however parallelForBlocked splits the rows.
    for (const std::size_t block : {n, std::size_t{1}, std::size_t{5}}) {
      std::vector<double> y(n);
      for (std::size_t begin = 0; begin < n; begin += block) {
        fn(a.view(), &sell, x.data(), y.data(), begin,
           std::min(begin + block, n));
      }
      EXPECT_EQ(y, ref) << "n=" << n << " block=" << block;
    }
  }
}

TEST(SellGs, Avx2SweepMatchesScalarForAnyBucketAndBlocking) {
  // A color bucket is an independent set by construction (the smoother
  // colors the graph before packing), so build a bipartite matrix: even
  // rows couple only to odd columns and vice versa, plus a diagonal.
  // Without that property a sequential in-color sweep would legitimately
  // differ from a vector one.
  util::Rng rng(5678);
  IsaGuard guard;
  for (const std::size_t n : {2u, 5u, 12u, 64u, 129u}) {
    Csr a;
    a.n = n;
    a.rowPtr.push_back(0);
    std::vector<double> invDiag(n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        const bool opposite = (c % 2) != (r % 2);
        if (c == r) {
          a.col.push_back(c);
          a.val.push_back(10.0 + rng.uniform());
        } else if (opposite && rng.uniform() < 0.3) {
          a.col.push_back(c);
          a.val.push_back(rng.uniform(-2.0, 2.0));
        }
      }
      a.rowPtr.push_back(a.col.size());
      invDiag[r] = 1.0 / (10.0 + rng.uniform());
    }
    // Red-black bucket: the even rows form an independent set here.
    std::vector<std::size_t> bucket;
    for (std::size_t r = 0; r < n; r += 2) bucket.push_back(r);
    const GsColorPack pack = GsColorPack::fromBucket(a.view(), bucket, invDiag);
    ASSERT_EQ(pack.count, bucket.size());

    const std::vector<double> b = randomVector(n, rng);
    const std::vector<double> x0 = randomVector(n, rng);

    setActiveIsa(Isa::Scalar);
    const BatchShape shape{pack.count, true, 2, 0};
    std::vector<double> ref = x0;
    gsFamily().pick(shape)(pack, b.data(), ref.data(), 0, pack.count);

    if (setActiveIsa(Isa::Avx2) != Isa::Avx2) continue;
    EXPECT_EQ(gsFamily().pickedName(shape), "gs_sell_avx2");
    const GsFn fn = gsFamily().pick(shape);
    for (const std::size_t block : {pack.count, std::size_t{1}, std::size_t{3}}) {
      std::vector<double> x = x0;
      for (std::size_t begin = 0; begin < pack.count; begin += block) {
        fn(pack, b.data(), x.data(), begin,
           std::min(begin + block, pack.count));
      }
      EXPECT_EQ(x, ref) << "n=" << n << " block=" << block;
    }
  }
}

TEST(SellJacobi, Avx2MatchesScalar) {
  util::Rng rng(91);
  IsaGuard guard;
  for (const std::size_t n : {1u, 4u, 11u, 130u}) {
    const std::vector<double> invDiag = randomVector(n, rng);
    const std::vector<double> b = randomVector(n, rng);
    const std::vector<double> t = randomVector(n, rng);
    const std::vector<double> x0 = randomVector(n, rng);
    const double w = 0.8;

    setActiveIsa(Isa::Scalar);
    const BatchShape shape{n, true, 0, 0};
    std::vector<double> ref = x0;
    jacobiFamily().pick(shape)(w, invDiag.data(), b.data(), t.data(),
                               ref.data(), 0, n);

    if (setActiveIsa(Isa::Avx2) != Isa::Avx2) continue;
    EXPECT_EQ(jacobiFamily().pickedName(shape), "jacobi_avx2");
    std::vector<double> x = x0;
    jacobiFamily().pick(shape)(w, invDiag.data(), b.data(), t.data(),
                               x.data(), 0, n);
    EXPECT_EQ(x, ref);
  }
}

TEST(SellMatrixPack, PreservesEveryEntryOnce) {
  // SpMV through the pack on the all-ones vector equals the row sums of
  // the CSR, entry for entry, for shapes around the slice boundary.
  util::Rng rng(7);
  for (const std::size_t n : {1u, 4u, 5u, 8u, 9u}) {
    const Csr a = randomCsr(n, rng);
    const SellMatrix sell = SellMatrix::fromCsr(a.view());
    EXPECT_EQ(sell.n, n);
    std::vector<double> ones(n, 1.0);
    std::vector<double> y(n);
    IsaGuard guard;
    setActiveIsa(Isa::Scalar);
    // The scalar CSR variant ignores the pack; use it as ground truth.
    spmvFamily().pick({n, true, 0, 0})(a.view(), &sell, ones.data(), y.data(),
                                       0, n);
    for (std::size_t r = 0; r < n; ++r) {
      double sum = 0.0;
      for (std::size_t k = a.rowPtr[r]; k < a.rowPtr[r + 1]; ++k) {
        sum += a.val[k];
      }
      EXPECT_EQ(y[r], sum);
    }
  }
}

}  // namespace
}  // namespace nano::kernel
