// Batch-vs-scalar equivalence for the prepared device kernel: every
// evaluator must be bit-identical to constructing a device::Mosfet per
// point, and the batch entry points must be bit-identical to the scalar
// prepared calls for any batch split and either dispatch ISA.
#include "kernel/device_batch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "device/mosfet.h"
#include "tech/itrs.h"
#include "util/numeric.h"

namespace nano::kernel {
namespace {

struct IsaGuard {
  Isa saved = activeIsa();
  ~IsaGuard() { setActiveIsa(saved); }
};

/// The Mosfet path the kernel replaces: a device rebuilt per point with
/// the DIBL reference pinned to the batch supply (design-space idiom).
device::Mosfet mosfetAt(const tech::TechNode& node, double vddRef,
                        double vth) {
  device::MosfetParams p = device::Mosfet::fromNode(node, vth).params();
  p.vddReference = vddRef;
  return device::Mosfet(p);
}

TEST(DeviceKernel, PreparedEvaluatorsMatchMosfetBitExact) {
  for (const int feature : {180, 100, 50, 35}) {
    const auto& node = tech::nodeByFeature(feature);
    const DeviceKernel kern = DeviceKernel::fromNode(node, node.vdd);
    const std::vector<double> vths = util::linspace(-0.05, 0.45, 11);
    const std::vector<double> vdds = util::linspace(0.2, node.vdd, 7);
    for (const double vth : vths) {
      const device::Mosfet dev = mosfetAt(node, node.vdd, vth);
      for (const double vdd : vdds) {
        // EXPECT_EQ on doubles: the contract is bitwise, not approximate.
        EXPECT_EQ(kern.vthEffective(vth, vdd), dev.vthEffective(vdd));
        EXPECT_EQ(kern.idsat0(vth, vdd, vdd), dev.idsat0(vdd, vdd));
        EXPECT_EQ(kern.ion(vth, vdd, vdd), dev.ionSelfConsistent(vdd, vdd));
        EXPECT_EQ(kern.ioff(vth, vdd), dev.ioff(vdd));
      }
    }
  }
}

TEST(DeviceKernel, PowSquareEqualsMulPin) {
  // The prepared mobility takes the r*r fast path when the degradation
  // exponent is exactly 2; the per-call path calls pow(r, 2.0). This pins
  // the libm identity both rely on for bit-equality.
  for (const double r : {1e-3, 0.17, 0.5, 1.0, 1.9, 3.141592653589793, 42.0}) {
    EXPECT_EQ(std::pow(r, 2.0), r * r);
  }
}

TEST(DeviceKernel, BatchMatchesScalarForAnySplitAndIsa) {
  const auto& node = tech::nodeByFeature(50);
  const DeviceKernel kern = DeviceKernel::fromNode(node, node.vdd);

  const std::size_t n = 37;  // deliberately not a lane multiple
  std::vector<double> vth(n), vgs(n), vds(n);
  for (std::size_t i = 0; i < n; ++i) {
    vth[i] = -0.05 + 0.01 * static_cast<double>(i);
    vgs[i] = 0.25 + 0.008 * static_cast<double>(i);
    vds[i] = 0.20 + 0.009 * static_cast<double>(i);
  }
  std::vector<double> refIon(n), refIoff(n), refIdsat(n);
  for (std::size_t i = 0; i < n; ++i) {
    refIon[i] = kern.ion(vth[i], vgs[i], vds[i]);
    refIoff[i] = kern.ioff(vth[i], vds[i]);
    refIdsat[i] = kern.idsat0(vth[i], vgs[i], vds[i]);
  }

  IsaGuard guard;
  for (const Isa isa : {Isa::Scalar, Isa::Avx2}) {
    if (setActiveIsa(isa) != isa) continue;  // no AVX2 on this CPU
    // Whole batch, batch-of-one, and an uneven split: all bit-identical.
    for (const std::size_t split : {n, std::size_t{1}, std::size_t{13}}) {
      std::vector<double> ion(n), ioff(n), idsat(n);
      for (std::size_t begin = 0; begin < n; begin += split) {
        const std::size_t len = std::min(split, n - begin);
        kern.ionBatch({vth.data() + begin, len}, {vgs.data() + begin, len},
                      {vds.data() + begin, len}, {ion.data() + begin, len});
        kern.ioffBatch({vth.data() + begin, len}, {vds.data() + begin, len},
                       {ioff.data() + begin, len});
        kern.idsat0Batch({vth.data() + begin, len}, {vgs.data() + begin, len},
                         {vds.data() + begin, len},
                         {idsat.data() + begin, len});
      }
      EXPECT_EQ(ion, refIon);
      EXPECT_EQ(ioff, refIoff);
      EXPECT_EQ(idsat, refIdsat);
    }
  }
}

TEST(DeviceKernel, ThrowsLikeMosfetOnBadGeometry) {
  device::MosfetParams p =
      device::Mosfet::fromNode(tech::nodeByFeature(100), 0.2).params();
  p.leff = 0.0;
  EXPECT_THROW(DeviceKernel{p}, std::invalid_argument);
}

}  // namespace
}  // namespace nano::kernel
