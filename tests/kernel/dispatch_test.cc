// KernelFamily dispatch mechanics: ISA detection/forcing, latest-fitting
// variant selection, and the per-pick observability counters.
#include "kernel/dispatch.h"

#include <gtest/gtest.h>

#include "obs/obs.h"

namespace nano::kernel {
namespace {

/// Restores the dispatch ISA a test forced.
struct IsaGuard {
  Isa saved = activeIsa();
  ~IsaGuard() { setActiveIsa(saved); }
};

TEST(Isa, NamesAreStable) {
  EXPECT_STREQ(isaName(Isa::Scalar), "scalar");
  EXPECT_STREQ(isaName(Isa::Avx2), "avx2");
}

TEST(Isa, ActiveNeverExceedsDetected) {
  EXPECT_LE(activeIsa(), detectIsa());
}

TEST(Isa, SetActiveClampsToDetected) {
  IsaGuard guard;
  EXPECT_EQ(setActiveIsa(Isa::Scalar), Isa::Scalar);
  EXPECT_EQ(activeIsa(), Isa::Scalar);
  const Isa got = setActiveIsa(Isa::Avx2);
  EXPECT_EQ(got, detectIsa());  // clamped when the CPU lacks AVX2
  EXPECT_EQ(activeIsa(), got);
}

using TagFn = int (*)();
int scalarTag() { return 1; }
int avx2Tag() { return 2; }
int coloredTag() { return 3; }
bool fitsColored(const BatchShape& s) { return s.colorCount > 0; }

KernelFamily<TagFn>& tagFamily() {
  static auto* family = [] {
    auto* f = new KernelFamily<TagFn>("test_tags");
    f->add("tag_scalar", Isa::Scalar, fitsAnyShape, &scalarTag);
    f->add("tag_avx2", Isa::Avx2, fitsAnyShape, &avx2Tag);
    f->add("tag_colored", Isa::Avx2, fitsColored, &coloredTag);
    return f;
  }();
  return *family;
}

TEST(KernelFamily, PicksLatestVariantThatFits) {
  IsaGuard guard;
  const BatchShape plain{64, true, 0, 0};
  const BatchShape colored{64, true, 2, 0};

  setActiveIsa(Isa::Scalar);
  EXPECT_EQ(tagFamily().pick(plain)(), 1);
  EXPECT_EQ(tagFamily().pick(colored)(), 1);
  EXPECT_EQ(tagFamily().pickedName(plain), "tag_scalar");

  if (setActiveIsa(Isa::Avx2) == Isa::Avx2) {
    EXPECT_EQ(tagFamily().pick(plain)(), 2);
    EXPECT_EQ(tagFamily().pick(colored)(), 3);  // most specialized wins
    EXPECT_EQ(tagFamily().pickedName(colored), "tag_colored");
  }
}

TEST(KernelFamily, PickBumpsFamilyAndVariantCounters) {
  IsaGuard guard;
  setActiveIsa(Isa::Scalar);
  auto& reg = obs::MetricsRegistry::instance();
  const bool wasEnabled = obs::enabled();
  obs::setEnabled(true);
  const std::int64_t batches = reg.counter("kernel/batch/test_tags").value();
  const std::int64_t picks = reg.counter("kernel/variant/tag_scalar").value();
  (void)tagFamily().pick(BatchShape{8, true, 0, 0});
  EXPECT_EQ(reg.counter("kernel/batch/test_tags").value(), batches + 1);
  EXPECT_EQ(reg.counter("kernel/variant/tag_scalar").value(), picks + 1);
  obs::setEnabled(wasEnabled);
}

TEST(KernelFamily, ThrowsWithoutAnyFittingVariant) {
  const KernelFamily<TagFn> empty("test_empty");
  EXPECT_THROW((void)empty.pick(BatchShape{1, true, 0, 0}), std::logic_error);
}

}  // namespace
}  // namespace nano::kernel
