// End-to-end dispatch invariance: forcing the kernel ISA to scalar or
// AVX2, and varying the exec thread count, must not change a single byte
// of the figure sweeps or the power-grid solve. This is the test-suite
// half of the golden-figure invariance contract (the CI scalar leg replays
// the committed goldens under NANO_KERNEL_ISA=scalar).
#include <gtest/gtest.h>

#include <vector>

#include "core/design_space.h"
#include "core/experiments.h"
#include "exec/exec.h"
#include "kernel/dispatch.h"
#include "powergrid/grid_model.h"

namespace nano {
namespace {

using kernel::Isa;

struct IsaGuard {
  Isa saved = kernel::activeIsa();
  ~IsaGuard() { kernel::setActiveIsa(saved); }
};

struct ThreadGuard {
  int saved = exec::threadCount();
  ~ThreadGuard() { exec::setGlobalThreadCount(saved); }
};

powergrid::GridConfig gridConfig() {
  powergrid::GridConfig cfg;
  cfg.railPitch = 160e-6;
  cfg.bumpPitch = 320e-6;
  cfg.tilesX = 2;
  cfg.tilesY = 2;
  cfg.subdivisions = 16;
  cfg.hotspotCellsRail = 1;
  return cfg;
}

TEST(IsaInvariance, DesignSpaceSweepIsByteIdenticalScalarVsAvx2) {
  IsaGuard guard;
  kernel::setActiveIsa(Isa::Scalar);
  const auto scalar = core::exploreDesignSpace({});
  if (kernel::setActiveIsa(Isa::Avx2) != Isa::Avx2) {
    GTEST_SKIP() << "CPU lacks AVX2";
  }
  const auto avx2 = core::exploreDesignSpace({});
  ASSERT_EQ(scalar.size(), avx2.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].delayNorm, avx2[i].delayNorm);
    EXPECT_EQ(scalar[i].ptotalNorm, avx2[i].ptotalNorm);
    EXPECT_EQ(scalar[i].staticFraction, avx2[i].staticFraction);
  }
}

TEST(IsaInvariance, Figure34SweepIsByteIdenticalScalarVsAvx2) {
  IsaGuard guard;
  kernel::setActiveIsa(Isa::Scalar);
  const auto scalar = core::computeFigure34(35, 9, 0.1, 0.3);
  if (kernel::setActiveIsa(Isa::Avx2) != Isa::Avx2) {
    GTEST_SKIP() << "CPU lacks AVX2";
  }
  const auto avx2 = core::computeFigure34(35, 9, 0.1, 0.3);
  ASSERT_EQ(scalar.size(), avx2.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    for (std::size_t k = 0; k < core::kVthPolicies.size(); ++k) {
      EXPECT_EQ(scalar[i].delayNorm[k], avx2[i].delayNorm[k]);
      EXPECT_EQ(scalar[i].pdynOverPstat[k], avx2[i].pdynOverPstat[k]);
    }
  }
}

TEST(IsaInvariance, GridSolveIsByteIdenticalAcrossIsaAndThreads) {
  // Both smoothers, both ISAs, 1 vs 8 exec lanes: identical solve bytes
  // and identical iteration history.
  for (const auto smoother : {powergrid::SmootherKind::RedBlackGaussSeidel,
                              powergrid::SmootherKind::WeightedJacobi}) {
    powergrid::GridSolverOptions opt;
    opt.preconditioner = powergrid::PreconditionerKind::Multigrid;
    opt.multigrid.smoother = smoother;

    IsaGuard isaGuard;
    ThreadGuard threadGuard;
    exec::setGlobalThreadCount(1);
    kernel::setActiveIsa(Isa::Scalar);
    const powergrid::GridSolution ref = powergrid::solveGrid(gridConfig(), opt);
    ASSERT_TRUE(ref.cgConverged);

    exec::setGlobalThreadCount(8);
    const powergrid::GridSolution threaded =
        powergrid::solveGrid(gridConfig(), opt);
    EXPECT_EQ(threaded.cgIterations, ref.cgIterations);
    EXPECT_EQ(threaded.dropV, ref.dropV);

    if (kernel::setActiveIsa(Isa::Avx2) == Isa::Avx2) {
      const powergrid::GridSolution vec = powergrid::solveGrid(gridConfig(), opt);
      EXPECT_EQ(vec.cgIterations, ref.cgIterations);
      EXPECT_EQ(vec.cgResidualNorm, ref.cgResidualNorm);
      EXPECT_EQ(vec.dropV, ref.dropV);
    }
  }
}

}  // namespace
}  // namespace nano
