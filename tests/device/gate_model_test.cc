#include "device/gate_model.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace nano::device {
namespace {

using namespace nano::units;
using tech::nodeByFeature;

InverterModel makeInverter(int feature) {
  const auto& node = nodeByFeature(feature);
  const double vth = solveVthForIon(node, node.ionTarget);
  return InverterModel(node, vth, node.vdd);
}

TEST(InverterModel, GeometryFollowsFeatureSize) {
  const InverterModel inv = makeInverter(100);
  EXPECT_DOUBLE_EQ(inv.wn(), 4.0 * 100 * nm);
  EXPECT_DOUBLE_EQ(inv.wp(), 8.0 * 100 * nm);
}

TEST(InverterModel, InputCapScalesWithArea) {
  const InverterModel big = makeInverter(180);
  const InverterModel small = makeInverter(35);
  EXPECT_GT(big.inputCap(), small.inputCap());
  // Sane absolute range: a 4x/8x 180 nm inverter is a few fF.
  EXPECT_GT(big.inputCap(), 1.0 * fF);
  EXPECT_LT(big.inputCap(), 20.0 * fF);
}

TEST(InverterModel, OutputCapSmallerThanInput) {
  const InverterModel inv = makeInverter(70);
  EXPECT_LT(inv.outputCap(), inv.inputCap());
  EXPECT_GT(inv.outputCap(), 0.0);
}

TEST(InverterModel, PullUpWeakerPerWidthButWiderDevice) {
  const InverterModel inv = makeInverter(100);
  // Wp = 2 Wn and PMOS factor 0.45: currents are nearly balanced.
  EXPECT_NEAR(inv.driveCurrentP() / inv.driveCurrentN(), 0.9, 0.01);
}

TEST(InverterModel, DelayIncreasesWithLoad) {
  const InverterModel inv = makeInverter(100);
  EXPECT_GT(inv.delay(20 * fF), inv.delay(5 * fF));
}

TEST(InverterModel, DelayPositiveEvenUnloaded) {
  const InverterModel inv = makeInverter(100);
  EXPECT_GT(inv.delay(0.0), 0.0);  // self-loading
}

TEST(InverterModel, Fo4TracksTechnology) {
  // FO4 improves monotonically with scaling and lands in the right decade
  // (tens of ps at 180 nm, below 10 ps at 35 nm).
  double prev = 1.0;
  for (int f : {180, 130, 100, 70, 50, 35}) {
    const double fo4 = makeInverter(f).fo4Delay();
    EXPECT_LT(fo4, prev);
    prev = fo4;
  }
  EXPECT_GT(makeInverter(180).fo4Delay(), 20 * ps);
  EXPECT_LT(makeInverter(180).fo4Delay(), 120 * ps);
  EXPECT_LT(makeInverter(35).fo4Delay(), 10 * ps);
}

TEST(InverterModel, SwitchingEnergyQuadraticInVdd) {
  const auto& node = nodeByFeature(35);
  const double vth = solveVthForIon(node, node.ionTarget);
  const InverterModel hi(node, vth, 0.6);
  const InverterModel lo(node, vth, 0.3);
  const double load = 5 * fF;
  // Same C (load passed explicitly; self-cap identical geometry).
  EXPECT_NEAR(hi.switchingEnergy(load) / lo.switchingEnergy(load), 4.0, 1e-6);
}

TEST(InverterModel, DynamicPowerLinearInActivityAndFreq) {
  const InverterModel inv = makeInverter(70);
  const double load = 5 * fF;
  EXPECT_NEAR(inv.dynamicPower(load, 2 * GHz, 0.2),
              2.0 * inv.dynamicPower(load, 1 * GHz, 0.2), 1e-18);
  EXPECT_NEAR(inv.dynamicPower(load, 1 * GHz, 0.4),
              2.0 * inv.dynamicPower(load, 1 * GHz, 0.2), 1e-18);
}

TEST(InverterModel, LeakagePowerGrowsDownTheRoadmap) {
  EXPECT_GT(makeInverter(50).leakagePower(), makeInverter(180).leakagePower());
}

TEST(InverterModel, RejectsBadVdd) {
  const auto& node = nodeByFeature(100);
  EXPECT_THROW(InverterModel(node, 0.2, 0.0), std::invalid_argument);
}

TEST(ReferenceInverter, MeetsIonTarget) {
  const auto& node = nodeByFeature(70);
  const InverterModel inv = referenceInverter(node);
  EXPECT_NEAR(inv.nmos().ion(), node.ionTarget, node.ionTarget * 1e-6);
}

TEST(StaticToDynamicRatio, InverseInActivity) {
  const auto& node = nodeByFeature(70);
  const double hot = fromCelsius(85.0);
  const double r1 = staticToDynamicRatio(node, 0.1, hot);
  const double r2 = staticToDynamicRatio(node, 0.2, hot);
  EXPECT_NEAR(r1 / r2, 2.0, 1e-9);
}

TEST(StaticToDynamicRatio, Figure1Ordering) {
  // At any activity: 50 nm @ 0.6 V >> 50 nm @ 0.7 V, and 70 nm in between
  // or below (the paper's curve ordering).
  const double hot = fromCelsius(85.0);
  const auto& n50 = tech::nodeByFeature(50);
  const auto& n70 = tech::nodeByFeature(70);
  for (double a : {0.01, 0.1, 0.5}) {
    const double r06 = staticToDynamicRatio(n50, a, hot);
    const double r07 = staticToDynamicRatio(n50, a, hot, 0.7);
    const double r70 = staticToDynamicRatio(n70, a, hot);
    EXPECT_GT(r06, r07);
    EXPECT_GT(r07, r70);
  }
}

TEST(StaticToDynamicRatio, ExceedsTenPercentAtLowActivity) {
  // The paper's headline for Figure 1.
  const double hot = fromCelsius(85.0);
  for (int f : {70, 50}) {
    EXPECT_GT(staticToDynamicRatio(tech::nodeByFeature(f), 0.01, hot), 0.1);
  }
}

TEST(StaticToDynamicRatio, RejectsZeroActivity) {
  EXPECT_THROW(staticToDynamicRatio(nodeByFeature(70), 0.0, 300.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace nano::device
