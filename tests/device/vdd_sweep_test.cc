// Operating-supply sweeps of the device model: the properties Figures 3-4
// depend on, checked as invariants across nodes and supplies rather than
// at single points.
#include <gtest/gtest.h>

#include <cmath>

#include "device/mosfet.h"
#include "util/numeric.h"

namespace nano::device {
namespace {

Mosfet referenceDevice(int feature) {
  const auto& node = tech::nodeByFeature(feature);
  return Mosfet::fromNode(node,
                          solveVthForIon(node, node.ionTarget));
}

class VddSweep : public ::testing::TestWithParam<int> {};

TEST_P(VddSweep, IonMonotoneInOperatingSupply) {
  const Mosfet dev = referenceDevice(GetParam());
  const double vdd0 = dev.params().vddReference;
  double prev = 0.0;
  for (double v : util::linspace(0.3 * vdd0, vdd0, 8)) {
    const double i = dev.ionSelfConsistent(v, v);
    EXPECT_GT(i, prev) << v;
    prev = i;
  }
}

TEST_P(VddSweep, DelayCurveMonotoneAndConvex) {
  // delay ~ C*V/I(V): falls as V rises, with diminishing returns (the
  // convex fan of Figure 3).
  const Mosfet dev = referenceDevice(GetParam());
  const double vdd0 = dev.params().vddReference;
  const auto vs = util::linspace(0.4 * vdd0, vdd0, 6);
  std::vector<double> delay;
  for (double v : vs) delay.push_back(v / dev.ionSelfConsistent(v, v));
  for (std::size_t i = 1; i < delay.size(); ++i) {
    EXPECT_GT(delay[i - 1], delay[i]) << vs[i];
  }
  // Convexity: successive improvements shrink.
  for (std::size_t i = 2; i < delay.size(); ++i) {
    EXPECT_GT(delay[i - 2] - delay[i - 1], delay[i - 1] - delay[i]) << vs[i];
  }
}

TEST_P(VddSweep, IoffFallsWithSupplyAtFixedVth) {
  // DIBL: the Figure-4 "static power decays roughly quadratically with
  // Vdd" mechanism — Ioff itself drops as Vds drops.
  const Mosfet dev = referenceDevice(GetParam());
  const double vdd0 = dev.params().vddReference;
  double prev = 1e9;
  for (double v : util::linspace(vdd0, 0.3 * vdd0, 6)) {
    const double ioff = dev.ioff(v);
    EXPECT_LT(ioff, prev) << v;
    prev = ioff;
  }
}

TEST_P(VddSweep, PstatExponentBetweenOneAndThree) {
  // Pstat = V * Ioff(V): with DIBL the paper calls the decay "roughly
  // quadratic" — the fitted exponent must land between linear and cubic.
  const Mosfet dev = referenceDevice(GetParam());
  const double vdd0 = dev.params().vddReference;
  const double vLo = 0.4 * vdd0;
  const double pHi = vdd0 * dev.ioff(vdd0);
  const double pLo = vLo * dev.ioff(vLo);
  const double exponent = std::log(pHi / pLo) / std::log(vdd0 / vLo);
  EXPECT_GT(exponent, 1.0) << exponent;
  EXPECT_LT(exponent, 3.0) << exponent;
}

TEST_P(VddSweep, SelfConsistentIonNeverExceedsUndegenerated) {
  const Mosfet dev = referenceDevice(GetParam());
  const double vdd0 = dev.params().vddReference;
  for (double v : util::linspace(0.4 * vdd0, vdd0, 5)) {
    EXPECT_LE(dev.ionSelfConsistent(v, v), dev.idsat0(v, v) * (1 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(AllNodes, VddSweep,
                         ::testing::Values(180, 130, 100, 70, 50, 35));

TEST(VddSweepExtra, LoweringVthRestoresLowVddDrive) {
  // The Figure 3 lever at every node: at 1/2 the nominal supply, a 100 mV
  // Vth cut recovers a large drive fraction.
  for (int f : {70, 50, 35}) {
    const auto& node = tech::nodeByFeature(f);
    const double vth = solveVthForIon(node, node.ionTarget);
    const Mosfet nominal = Mosfet::fromNode(node, vth);
    const Mosfet lowered = Mosfet::fromNode(node, vth - 0.1);
    const double v = 0.5 * node.vdd;
    EXPECT_GT(lowered.ionSelfConsistent(v, v),
              1.3 * nominal.ionSelfConsistent(v, v))
        << f;
  }
}

}  // namespace
}  // namespace nano::device
