// Temperature sweeps of the device and gate models: monotonicity and
// magnitude properties across the roadmap (Figure 1 runs at 85 C; burn-in
// and DTM reasoning need the model to behave over a wide range).
#include <gtest/gtest.h>

#include <cmath>

#include "device/gate_model.h"
#include "device/mosfet.h"
#include "util/units.h"

namespace nano::device {
namespace {

using namespace nano::units;

class TempSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(TempSweep, SwingScalesLinearlyInT) {
  const auto [feature, tC] = GetParam();
  const auto& node = tech::nodeByFeature(feature);
  const double vth = solveVthForIon(node, node.ionTarget);
  const Mosfet dev =
      Mosfet::fromNode(node, vth, GateStack::Poly, fromCelsius(tC));
  EXPECT_NEAR(dev.subthresholdSwing(),
              node.subthresholdSwing * fromCelsius(tC) / 300.0, 1e-9);
}

TEST_P(TempSweep, HotterMeansLeakier) {
  const auto [feature, tC] = GetParam();
  if (tC <= 30.0) GTEST_SKIP() << "needs a hot corner";
  const auto& node = tech::nodeByFeature(feature);
  const double vth = solveVthForIon(node, node.ionTarget);
  const Mosfet cold = Mosfet::fromNode(node, vth);
  const Mosfet hot =
      Mosfet::fromNode(node, vth, GateStack::Poly, fromCelsius(tC));
  EXPECT_GT(hot.ioff(), cold.ioff());
}

TEST_P(TempSweep, TemperatureInversionAtLowVdd) {
  // At high supplies (180-70 nm) mobility loss dominates: hot is slower.
  // At the 0.6 V nodes (50/35 nm) the Vth temperature shift wins and hot
  // devices get FASTER — the temperature-inversion effect of low-voltage
  // design, which the model reproduces.
  const auto [feature, tC] = GetParam();
  if (tC <= 30.0) GTEST_SKIP() << "needs a hot corner";
  const auto& node = tech::nodeByFeature(feature);
  const double vth = solveVthForIon(node, node.ionTarget);
  const InverterModel cold(node, vth, node.vdd);
  const InverterModel hot(node, vth, node.vdd, GateGeometry{},
                          fromCelsius(tC));
  if (node.vdd >= 0.9) {
    EXPECT_GT(hot.fo4Delay(), cold.fo4Delay());
  } else {
    EXPECT_LT(hot.fo4Delay(), cold.fo4Delay());
  }
}

INSTANTIATE_TEST_SUITE_P(
    NodesAndTemps, TempSweep,
    ::testing::Combine(::testing::Values(180, 100, 50, 35),
                       ::testing::Values(25.0, 85.0, 110.0)));

TEST(TempSweep, LeakageMonotoneAcrossWholeRange) {
  const auto& node = tech::nodeByFeature(70);
  const double vth = solveVthForIon(node, node.ionTarget);
  double prev = 0.0;
  for (double tC : {-40.0, 0.0, 25.0, 55.0, 85.0, 110.0, 125.0}) {
    const Mosfet dev =
        Mosfet::fromNode(node, vth, GateStack::Poly, fromCelsius(tC));
    EXPECT_GT(dev.ioff(), prev) << tC;
    prev = dev.ioff();
  }
}

TEST(TempSweep, CoolingRecoversLeakageBudget) {
  // The paper's Section 2.1 note: sub-ambient operation improves leakage
  // (and speed). From 85 C to 0 C the model recovers >5x of Ioff.
  const auto& node = tech::nodeByFeature(50);
  const double vth = solveVthForIon(node, node.ionTarget);
  const Mosfet hot =
      Mosfet::fromNode(node, vth, GateStack::Poly, fromCelsius(85.0));
  const Mosfet cool =
      Mosfet::fromNode(node, vth, GateStack::Poly, fromCelsius(0.0));
  EXPECT_GT(hot.ioff() / cool.ioff(), 5.0);
}

TEST(TempSweep, Figure1RatioGrowsWithTemperature) {
  const auto& node = tech::nodeByFeature(70);
  const double r25 = staticToDynamicRatio(node, 0.1, fromCelsius(25.0));
  const double r85 = staticToDynamicRatio(node, 0.1, fromCelsius(85.0));
  const double r110 = staticToDynamicRatio(node, 0.1, fromCelsius(110.0));
  EXPECT_GT(r85, 2.0 * r25);
  EXPECT_GT(r110, r85);
}

}  // namespace
}  // namespace nano::device
