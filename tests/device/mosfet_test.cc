#include "device/mosfet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/obs.h"
#include "util/units.h"

namespace nano::device {
namespace {

using namespace nano::units;
using tech::nodeByFeature;

Mosfet deviceFor(int node, double vth) {
  return Mosfet::fromNode(nodeByFeature(node), vth);
}

TEST(ElectricalOxide, PolyAddsSevenAngstrom) {
  const Mosfet m = deviceFor(100, 0.22);
  EXPECT_NEAR(m.toxElectrical() - m.params().toxPhysical, 7.0 * angstrom,
              1e-13);
}

TEST(ElectricalOxide, MetalGateAddsLess) {
  const Mosfet poly = deviceFor(35, 0.11);
  const Mosfet metal =
      Mosfet::fromNode(nodeByFeature(35), 0.11, GateStack::Metal);
  EXPECT_LT(metal.toxElectrical(), poly.toxElectrical());
  EXPECT_GT(metal.coxElectrical(), poly.coxElectrical());
}

TEST(ElectricalOxide, CoxOrdering) {
  const Mosfet m = deviceFor(70, 0.15);
  EXPECT_LT(m.coxElectrical(), m.coxPhysical());
}

TEST(Ioff, MatchesEquation4Exactly) {
  // Eq. (4): Ioff = 10 uA/um * 10^(-Vth/85mV) at the reference bias.
  const Mosfet m = deviceFor(100, 0.22);
  const double expected = 10.0 * std::pow(10.0, -0.22 / 0.085);
  EXPECT_NEAR(m.ioff() / uA_per_um, expected, expected * 1e-9);
}

TEST(Ioff, ExponentialInVth) {
  // One 85 mV step of Vth = exactly one decade of Ioff.
  const Mosfet a = deviceFor(100, 0.20);
  const Mosfet b = deviceFor(100, 0.285);
  EXPECT_NEAR(a.ioff() / b.ioff(), 10.0, 1e-6);
}

TEST(Ioff, DiblRaisesLeakageAtHigherVds) {
  const Mosfet m = deviceFor(35, 0.11);
  EXPECT_GT(m.ioff(0.6), m.ioff(0.3));
}

TEST(Ioff, DiblSlopeMatchesCoefficient) {
  const Mosfet m = deviceFor(35, 0.11);
  const double eta = m.params().dibl;
  const double swing = m.subthresholdSwing();
  // Ioff(vdd) / Ioff(vdd - dv) = 10^(eta*dv/S).
  const double ratio = m.ioff(0.6) / m.ioff(0.4);
  EXPECT_NEAR(ratio, std::pow(10.0, eta * 0.2 / swing), ratio * 1e-6);
}

TEST(Temperature, SwingScalesWithT) {
  MosfetParams p = deviceFor(70, 0.15).params();
  p.temperature = 358.15;  // 85 C
  const Mosfet hot(p);
  EXPECT_NEAR(hot.subthresholdSwing(), 0.085 * 358.15 / 300.0, 1e-6);
}

TEST(Temperature, LeakageGrowsStronglyWithT) {
  MosfetParams p = deviceFor(70, 0.15).params();
  const Mosfet cold(p);
  p.temperature = 358.15;
  const Mosfet hot(p);
  EXPECT_GT(hot.ioff() / cold.ioff(), 2.0);
  EXPECT_LT(hot.ioff() / cold.ioff(), 50.0);
}

TEST(Temperature, DriveDegradesWithT) {
  MosfetParams p = deviceFor(70, 0.15).params();
  const Mosfet cold(p);
  p.temperature = 358.15;
  const Mosfet hot(p);
  // Mobility loss dominates the Vth reduction at high overdrive.
  EXPECT_LT(hot.ion(), cold.ion());
}

TEST(SmoothedOverdrive, MatchesLinearFarAboveThreshold) {
  const Mosfet m = deviceFor(100, 0.22);
  EXPECT_NEAR(m.smoothedOverdrive(1.2, 0.22), 1.2 - 0.22, 1e-4);
}

TEST(SmoothedOverdrive, PositiveBelowThreshold) {
  const Mosfet m = deviceFor(100, 0.22);
  const double v = m.smoothedOverdrive(0.1, 0.22);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 0.05);
}

TEST(SmoothedOverdrive, SubthresholdSlopeIsOneDecadePerSwing) {
  // idsat0 ~ vgt_eff^2 ~ exp(vgt/nvt): deep below threshold, one swing S of
  // Vgs changes the current by ~10x (the smoothing converges to the
  // exponential asymptote from below, so allow ~10 %).
  const Mosfet m = deviceFor(100, 0.30);
  const double s = m.subthresholdSwing();
  const double i1 = m.idsat0(0.30 - 3.0 * s);
  const double i2 = m.idsat0(0.30 - 4.0 * s);
  EXPECT_NEAR(i1 / i2, 10.0, 1.0);
}

TEST(Mobility, DegradesWithGateBias) {
  const Mosfet m = deviceFor(100, 0.22);
  EXPECT_LT(m.mobility(1.2), m.mobility(0.6));
}

TEST(Mobility, ThinnerOxideMeansMoreDegradation) {
  const Mosfet thick = deviceFor(180, 0.28);
  const Mosfet thin = deviceFor(35, 0.10);
  // At the same bias the thin oxide has the higher effective field.
  EXPECT_LT(thin.mobility(0.6), thick.mobility(0.6));
}

TEST(Ion, FirstOrderAgreesWithSelfConsistentWhenRsSmall) {
  MosfetParams p = deviceFor(180, 0.28).params();
  p.rsOhmM = 10.0 * ohm_um;  // tiny degeneration
  const Mosfet m(p);
  EXPECT_NEAR(m.ionFirstOrder(1.8), m.ionSelfConsistent(1.8),
              0.02 * m.ionSelfConsistent(1.8));
}

TEST(Ion, SourceResistanceReducesCurrent) {
  MosfetParams p = deviceFor(100, 0.22).params();
  const Mosfet withRs(p);
  p.rsOhmM = 0.0;
  const Mosfet noRs(p);
  EXPECT_LT(withRs.ion(), noRs.ion());
}

TEST(Ion, SelfConsistentIsFixedPoint) {
  const Mosfet m = deviceFor(70, 0.15);
  const double i = m.ionSelfConsistent(0.9);
  EXPECT_NEAR(m.idsat0(0.9 - i * m.params().rsOhmM), i, i * 1e-6);
}

TEST(Ion, MonotonicInVgs) {
  const Mosfet m = deviceFor(70, 0.15);
  double prev = 0.0;
  for (double vgs = 0.2; vgs <= 0.9; vgs += 0.1) {
    const double i = m.ionSelfConsistent(vgs);
    EXPECT_GT(i, prev);
    prev = i;
  }
}

TEST(Ion, MonotonicDecreasingInVth) {
  double prev = 1e9;
  for (double vth : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    const double i = deviceFor(70, vth).ion();
    EXPECT_LT(i, prev);
    prev = i;
  }
}

TEST(VthSolver, HitsIonTarget) {
  const auto& node = nodeByFeature(100);
  const double vth = solveVthForIon(node, node.ionTarget);
  const Mosfet m = Mosfet::fromNode(node, vth);
  EXPECT_NEAR(m.ion(), node.ionTarget, node.ionTarget * 1e-6);
}

TEST(VthSolver, MetalGateAllowsHigherVth) {
  // Paper Section 3.1 observation 1: the thinner electrical oxide of a
  // metal gate lets Vth rise while holding Ion, cutting Ioff sharply.
  const auto& node = nodeByFeature(35);
  const double poly = solveVthForIon(node, node.ionTarget);
  const double metal =
      solveVthForIon(node, node.ionTarget, GateStack::Metal);
  EXPECT_GT(metal, poly + 0.02);
  const double ioffPoly = Mosfet::fromNode(node, poly).ioff();
  const double ioffMetal =
      Mosfet::fromNode(node, metal, GateStack::Metal).ioff();
  EXPECT_LT(ioffMetal / ioffPoly, 0.55);  // >= 45 % reduction
}

TEST(VthSolver, HigherVddAllowsHigherVth) {
  // Paper Section 3.1 observation 2 (the 50 nm 0.6 vs 0.7 V case).
  const auto& node = nodeByFeature(50);
  const double at06 = solveVthForIon(node, node.ionTarget);
  const double at07 =
      solveVthForIon(node, node.ionTarget, GateStack::Poly, 0.7);
  EXPECT_GT(at07, at06 + 0.04);
}

TEST(VthSolver, Vdd07CutsIoffNearly7x) {
  const auto& node = nodeByFeature(50);
  const double at06 = solveVthForIon(node, node.ionTarget);
  const double at07 =
      solveVthForIon(node, node.ionTarget, GateStack::Poly, 0.7);
  const double ratio = Mosfet::fromNode(node, at06).ioff() /
                       Mosfet::fromNode(node, at07).ioff();
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 10.0);  // paper: "nearly 7x"
}

TEST(VthSolverChecked, ConvergedDiagnosticsMatchThrowingSolve) {
  const auto& node = nodeByFeature(100);
  const VthSolveResult r = solveVthForIonChecked(node, node.ionTarget);
  EXPECT_TRUE(r.diag.ok());
  EXPECT_GT(r.diag.iterations, 0);
  EXPECT_STREQ(r.diag.kernel, "device/solve_vth");
  EXPECT_DOUBLE_EQ(r.vth, solveVthForIon(node, node.ionTarget));
}

TEST(VthSolverChecked, NanTargetReportsNanDetected) {
  const auto& node = nodeByFeature(100);
  obs::MetricsRegistry::instance().reset();
  const bool wasEnabled = obs::enabled();
  obs::setEnabled(true);
  const VthSolveResult r =
      solveVthForIonChecked(node, std::nan(""));
  obs::setEnabled(wasEnabled);
  EXPECT_EQ(r.diag.status, util::SolverStatus::NanDetected);
  EXPECT_TRUE(std::isnan(r.vth));
  EXPECT_EQ(obs::MetricsRegistry::instance()
                .counter("device/vth_solve_nonconverged")
                .value(),
            1);
  // The throwing wrapper surfaces the same failure as the historical
  // exception type instead of returning the NaN.
  EXPECT_THROW(solveVthForIon(node, std::nan("")), std::invalid_argument);
}

TEST(VthSolverChecked, NonFiniteVddReportsNanDetected) {
  const auto& node = nodeByFeature(100);
  const VthSolveResult r = solveVthForIonChecked(
      node, node.ionTarget, GateStack::Poly,
      std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.diag.status, util::SolverStatus::NanDetected);
}

TEST(VthSolverChecked, ForcedMaxIterStillReportsUsableResult) {
  const auto& node = nodeByFeature(100);
  VthSolveOptions opt;
  opt.xtol = 0.0;   // only an exact zero can count as converged
  opt.maxIter = 1;  // starve Brent; only the bisection fallback remains
  const VthSolveResult r = solveVthForIonChecked(
      node, node.ionTarget, GateStack::Poly, -1.0, 300.0, opt);
  // Historically this starved solve reported MaxIterations. Since the ion
  // fixed point is solved exactly (kernel/ion_solve.h), ionSelfConsistent
  // is a locally flat monotone map of Vth and the >= 200-step bisection
  // fallback typically lands on a bit-exact root, i.e. Converged with
  // residual 0. Either way the contract under test holds: no throw, an
  // honest status, a reported iteration count, and a usable best iterate.
  EXPECT_TRUE(r.diag.status == util::SolverStatus::Converged ||
              r.diag.status == util::SolverStatus::MaxIterations);
  EXPECT_GT(r.diag.iterations, 0);
  EXPECT_TRUE(std::isfinite(r.vth));
  EXPECT_NEAR(r.vth, solveVthForIon(node, node.ionTarget), 0.05);
}

TEST(VthSolverChecked, UnreachableTargetReportsBracketFailure) {
  // Ion is non-negative at every Vth, so a negative target can never
  // bracket — not even after the wide-bracket retry.
  const auto& node = nodeByFeature(100);
  const VthSolveResult r = solveVthForIonChecked(node, -1.0);
  EXPECT_EQ(r.diag.status, util::SolverStatus::BracketFailure);
  EXPECT_THROW(solveVthForIon(node, -1.0), std::invalid_argument);
}

TEST(Validation, RejectsBadParams) {
  MosfetParams p;
  p.toxPhysical = -1.0;
  EXPECT_THROW(Mosfet{p}, std::invalid_argument);
  p = MosfetParams{};
  p.leff = 0.0;
  EXPECT_THROW(Mosfet{p}, std::invalid_argument);
  p = MosfetParams{};
  p.temperature = 0.0;
  EXPECT_THROW(Mosfet{p}, std::invalid_argument);
}

// ---------------------------------------------------------------- sweeps

/// The calibration property: the solved Vth tracks the paper's Table 2 row
/// within 35 mV at every node.
class Table2VthSweep
    : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(Table2VthSweep, VthWithin35mVOfPaper) {
  const auto [feature, paperVth] = GetParam();
  const auto& node = nodeByFeature(feature);
  const double vth = solveVthForIon(node, node.ionTarget);
  EXPECT_NEAR(vth, paperVth, 0.035) << feature << " nm";
}

INSTANTIATE_TEST_SUITE_P(
    AllNodes, Table2VthSweep,
    ::testing::Values(std::pair{180, 0.30}, std::pair{130, 0.29},
                      std::pair{100, 0.22}, std::pair{70, 0.14},
                      std::pair{50, 0.04}, std::pair{35, 0.11}));

/// Ion target is achievable at every node (solver converges, Vth sane).
class NodeSweep : public ::testing::TestWithParam<int> {};

TEST_P(NodeSweep, SolverConvergesWithSaneVth) {
  const auto& node = nodeByFeature(GetParam());
  const double vth = solveVthForIon(node, node.ionTarget);
  EXPECT_GT(vth, -0.1);
  EXPECT_LT(vth, 0.5);
}

TEST_P(NodeSweep, IoffPositiveAndFinite) {
  const auto& node = nodeByFeature(GetParam());
  const double vth = solveVthForIon(node, node.ionTarget);
  const double ioff = Mosfet::fromNode(node, vth).ioff();
  EXPECT_GT(ioff, 0.0);
  EXPECT_TRUE(std::isfinite(ioff));
}

TEST_P(NodeSweep, FirstOrderRsCorrectionBracketsSelfConsistent) {
  // The first-order expansion always under-predicts relative to the
  // self-consistent solve (second-order term is positive) but stays within
  // 25 % at roadmap conditions.
  const auto& node = nodeByFeature(GetParam());
  const double vth = solveVthForIon(node, node.ionTarget);
  const Mosfet m = Mosfet::fromNode(node, vth);
  const double first = m.ionFirstOrder(node.vdd);
  const double self = m.ionSelfConsistent(node.vdd);
  EXPECT_LE(first, self * 1.001);
  EXPECT_GT(first, 0.6 * self);
}

INSTANTIATE_TEST_SUITE_P(AllNodes, NodeSweep,
                         ::testing::Values(180, 130, 100, 70, 50, 35));

}  // namespace
}  // namespace nano::device
