#include "device/variation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nano::device {
namespace {

TEST(VthSigma, PelgromScaling) {
  const auto& node = tech::nodeByFeature(100);
  const double s1 = vthSigma(node, 1e-6);
  const double s2 = vthSigma(node, 4e-6);
  EXPECT_NEAR(s1 / s2, 2.0, 1e-9);  // sigma ~ 1/sqrt(W)
  EXPECT_THROW(vthSigma(node, 0.0), std::invalid_argument);
}

TEST(VthSigma, GrowsDownTheRoadmap) {
  // Smaller devices at fixed W/L multiples: a minimum-width device's
  // sigma grows as area shrinks — the paper's variability worry.
  double prev = 0.0;
  for (int f : tech::roadmapFeatures()) {
    const auto& node = tech::nodeByFeature(f);
    const double wMin = 2.0 * node.featureNm * 1e-9;
    const double s = vthSigma(node, wMin);
    EXPECT_GT(s, prev) << f;
    prev = s;
  }
  // A minimum 35 nm device: tens of mV of sigma.
  EXPECT_GT(prev, 0.02);
  EXPECT_LT(prev, 0.2);
}

TEST(MeanAmplification, ClosedFormLimits) {
  EXPECT_DOUBLE_EQ(meanLeakageAmplification(0.0, 0.085), 1.0);
  // sigma = one swing: exp(0.5*ln10^2) ~ 14.2x.
  EXPECT_NEAR(meanLeakageAmplification(0.085, 0.085),
              std::exp(0.5 * std::log(10.0) * std::log(10.0)), 1e-9);
  EXPECT_THROW(meanLeakageAmplification(0.01, 0.0), std::invalid_argument);
}

TEST(MonteCarlo, MatchesClosedFormMean) {
  const auto& node = tech::nodeByFeature(70);
  const double vth = solveVthForIon(node, node.ionTarget);
  util::Rng rng(2024);
  const double width = 4.0 * node.featureNm * 1e-9;
  const LeakageSpread spread =
      sampleLeakageSpread(node, vth, width, rng, 40000);
  const Mosfet dev = Mosfet::fromNode(node, vth);
  const double expected =
      meanLeakageAmplification(spread.sigmaVth, dev.subthresholdSwing());
  EXPECT_NEAR(spread.meanAmplification, expected, 0.1 * expected);
}

TEST(MonteCarlo, MeanAboveMedianLognormal) {
  // The headline: variability multiplies MEAN leakage (p95 far above 1,
  // mean > 1 even though the median draw is ~nominal).
  const auto& node = tech::nodeByFeature(35);
  const double vth = solveVthForIon(node, node.ionTarget);
  util::Rng rng(7);
  const double width = 2.0 * node.featureNm * 1e-9;  // minimum device
  const LeakageSpread spread = sampleLeakageSpread(node, vth, width, rng);
  EXPECT_GT(spread.meanAmplification, 1.3);
  EXPECT_GT(spread.p95Amplification, spread.meanAmplification);
}

TEST(MonteCarlo, WiderDevicesTighter) {
  const auto& node = tech::nodeByFeature(50);
  const double vth = solveVthForIon(node, node.ionTarget);
  util::Rng rngA(5), rngB(5);
  const LeakageSpread narrow =
      sampleLeakageSpread(node, vth, 1e-7, rngA, 20000);
  const LeakageSpread wide =
      sampleLeakageSpread(node, vth, 1.6e-6, rngB, 20000);
  EXPECT_GT(narrow.meanAmplification, wide.meanAmplification);
}

TEST(MonteCarlo, Deterministic) {
  const auto& node = tech::nodeByFeature(50);
  const double vth = solveVthForIon(node, node.ionTarget);
  util::Rng a(11), b(11);
  const auto ra = sampleLeakageSpread(node, vth, 2e-7, a, 5000);
  const auto rb = sampleLeakageSpread(node, vth, 2e-7, b, 5000);
  EXPECT_DOUBLE_EQ(ra.meanAmplification, rb.meanAmplification);
}

TEST(VthMargin, ThreeSigmaDefault) {
  EXPECT_DOUBLE_EQ(vthMarginForSigma(0.02), 0.06);
  EXPECT_THROW(vthMarginForSigma(-0.01), std::invalid_argument);
}

}  // namespace
}  // namespace nano::device
