#include "exec/exec.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/design_space.h"
#include "core/experiments.h"
#include "obs/obs.h"

namespace nano::exec {
namespace {

TEST(ThreadPoolTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool p(4);
  constexpr std::size_t kN = 10007;
  std::vector<std::atomic<int>> hits(kN);
  p.parallelFor(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, BlockedRangesCoverWithoutOverlap) {
  ThreadPool p(4);
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  p.parallelForBlocked(
      kN,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      64);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleLanePoolSpawnsNoWorkers) {
  ThreadPool p(1);
  EXPECT_EQ(p.threadCount(), 1);
  int sum = 0;  // no synchronization needed: everything runs inline
  p.parallelFor(100, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, ZeroItemsIsANoop) {
  ThreadPool p(4);
  bool called = false;
  p.parallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, FirstExceptionPropagatesToCaller) {
  ThreadPool p(4);
  EXPECT_THROW(
      p.parallelFor(1000,
                    [&](std::size_t i) {
                      if (i == 123) throw std::runtime_error("boom");
                    }),
      std::runtime_error);
  // The pool survives a throwing region and runs the next one normally.
  std::atomic<int> count{0};
  p.parallelFor(100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, NestedRegionsRunInlineWithoutDeadlock) {
  ThreadPool p(4);
  std::atomic<long> total{0};
  p.parallelFor(8, [&](std::size_t) {
    // A nested region on the same pool must not wait for the outer
    // region's job slot — it runs inline on this lane.
    long local = 0;
    p.parallelFor(100, [&](std::size_t j) { local += static_cast<long>(j); });
    total += local;
  });
  EXPECT_EQ(total.load(), 8 * 4950);
}

TEST(ExecTest, ParallelMapKeepsItemOrder) {
  const std::vector<int> out =
      parallelMap<int>(1000, [](std::size_t i) { return static_cast<int>(i) * 3; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(ExecTest, DefaultThreadCountHonorsEnvOverride) {
  ::setenv("NANO_EXEC_THREADS", "3", 1);
  EXPECT_EQ(defaultThreadCount(), 3);
  ::setenv("NANO_EXEC_THREADS", "0", 1);  // invalid: below 1 -> fallback
  EXPECT_GE(defaultThreadCount(), 1);
  ::setenv("NANO_EXEC_THREADS", "9999", 1);  // clamped
  EXPECT_EQ(defaultThreadCount(), 256);
  ::unsetenv("NANO_EXEC_THREADS");
  EXPECT_GE(defaultThreadCount(), 1);
}

TEST(ExecTest, ObsCountsParallelRegions) {
  obs::setEnabled(true);
  auto& counter = obs::MetricsRegistry::instance().counter("exec/parallel_regions");
  const std::int64_t before = counter.value();
  setGlobalThreadCount(4);
  parallelFor(10000, [](std::size_t) {}, 64);
  EXPECT_GT(counter.value(), before);
  obs::setEnabled(false);
  setGlobalThreadCount(defaultThreadCount());
}

/// The ISSUE-level determinism guarantee: a full design-space sweep and a
/// roadmap figure produce bit-identical results at 1 lane and at 8 lanes.
TEST(ExecTest, SweepsAreBitIdenticalAcrossThreadCounts) {
  core::DesignSpaceOptions options;

  setGlobalThreadCount(1);
  const auto grid1 = core::exploreDesignSpace(options);
  const auto fig1a = core::computeFigure1(40);
  const auto best1 = core::optimalPoint(options, 1.5);

  setGlobalThreadCount(8);
  const auto grid8 = core::exploreDesignSpace(options);
  const auto fig1b = core::computeFigure1(40);
  const auto best8 = core::optimalPoint(options, 1.5);

  setGlobalThreadCount(defaultThreadCount());

  ASSERT_EQ(grid1.size(), grid8.size());
  for (std::size_t i = 0; i < grid1.size(); ++i) {
    ASSERT_EQ(grid1[i].vdd, grid8[i].vdd);
    ASSERT_EQ(grid1[i].vthDesign, grid8[i].vthDesign);
    ASSERT_EQ(grid1[i].delayNorm, grid8[i].delayNorm);
    ASSERT_EQ(grid1[i].ptotalNorm, grid8[i].ptotalNorm);
  }
  ASSERT_EQ(fig1a.size(), fig1b.size());
  for (std::size_t i = 0; i < fig1a.size(); ++i) {
    ASSERT_EQ(fig1a[i].ratio70nm09V, fig1b[i].ratio70nm09V);
    ASSERT_EQ(fig1a[i].ratio50nm07V, fig1b[i].ratio50nm07V);
    ASSERT_EQ(fig1a[i].ratio50nm06V, fig1b[i].ratio50nm06V);
  }
  EXPECT_EQ(best1.vdd, best8.vdd);
  EXPECT_EQ(best1.vthDesign, best8.vthDesign);
  EXPECT_EQ(best1.ptotalNorm, best8.ptotalNorm);
}

}  // namespace
}  // namespace nano::exec
