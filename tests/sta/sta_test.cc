#include "sta/sta.h"

#include <gtest/gtest.h>

#include "circuit/generator.h"

namespace nano::sta {
namespace {

using circuit::CellFunction;
using circuit::Library;
using circuit::Netlist;

const Library& lib() {
  static const Library instance(tech::nodeByFeature(100));
  return instance;
}

TEST(Sta, ChainArrivalAccumulates) {
  const Netlist nl = circuit::inverterChain(lib(), 5);
  const TimingResult t = analyze(nl);
  // Arrival at the output equals the sum of the five stage delays.
  double sum = 0.0;
  for (int g : nl.gateIds()) {
    sum += nl.node(g).cell.delay(nl.loadCap(g));
  }
  EXPECT_NEAR(t.criticalPathDelay, sum, 1e-15);
  EXPECT_NEAR(t.worstSlack, 0.0, 1e-18);  // self-timed
}

TEST(Sta, ExplicitClockGivesSlack) {
  const Netlist nl = circuit::inverterChain(lib(), 5);
  const TimingResult self = analyze(nl);
  const TimingResult relaxed = analyze(nl, 2.0 * self.criticalPathDelay);
  EXPECT_NEAR(relaxed.worstSlack, self.criticalPathDelay,
              1e-3 * self.criticalPathDelay);
  EXPECT_TRUE(relaxed.meetsTiming());
}

TEST(Sta, TightClockViolates) {
  const Netlist nl = circuit::inverterChain(lib(), 5);
  const TimingResult self = analyze(nl);
  const TimingResult tight = analyze(nl, 0.5 * self.criticalPathDelay);
  EXPECT_FALSE(tight.meetsTiming());
  EXPECT_LT(tight.worstSlack, 0.0);
}

TEST(Sta, CriticalPathIsContiguous) {
  util::Rng rng(11);
  circuit::GeneratorConfig cfg;
  cfg.gates = 400;
  const Netlist nl = circuit::randomLogic(lib(), cfg, rng);
  const TimingResult t = analyze(nl);
  ASSERT_GE(t.criticalPath.size(), 2u);
  // Path starts at an input, ends at an output, consecutive nodes are
  // connected.
  EXPECT_EQ(nl.node(t.criticalPath.front()).kind,
            Netlist::NodeKind::PrimaryInput);
  EXPECT_TRUE(nl.node(t.criticalPath.back()).isOutput);
  for (std::size_t i = 1; i < t.criticalPath.size(); ++i) {
    const auto& fanins = nl.node(t.criticalPath[i]).fanins;
    EXPECT_NE(std::find(fanins.begin(), fanins.end(), t.criticalPath[i - 1]),
              fanins.end());
  }
}

TEST(Sta, SlackNonNegativeAtSelfClock) {
  util::Rng rng(13);
  circuit::GeneratorConfig cfg;
  cfg.gates = 300;
  const Netlist nl = circuit::randomLogic(lib(), cfg, rng);
  const TimingResult t = analyze(nl);
  for (int i = 0; i < nl.nodeCount(); ++i) {
    EXPECT_GE(t.slack[static_cast<std::size_t>(i)], -1e-15);
  }
}

TEST(Sta, SlackConsistencyAtEndpoints) {
  util::Rng rng(17);
  circuit::GeneratorConfig cfg;
  cfg.gates = 300;
  const Netlist nl = circuit::randomLogic(lib(), cfg, rng);
  const TimingResult t = analyze(nl);
  for (int id : nl.outputs()) {
    const double budget = t.arrival[static_cast<std::size_t>(id)] +
                          t.slack[static_cast<std::size_t>(id)];
    // An endpoint that also feeds downstream logic can have a tighter
    // required time than the clock; never a looser one.
    EXPECT_LE(budget, t.clockPeriod + 1e-15);
    if (nl.node(id).fanouts.empty()) {
      EXPECT_NEAR(budget, t.clockPeriod, 1e-15);
    }
  }
}

TEST(Sta, SlackRichProfileMatchesPaperStatistic) {
  // Paper Section 2.4: "over half of all timing paths commonly use less
  // than half the clock cycle" — our default generator profile reproduces
  // that.
  util::Rng rng(23);
  circuit::GeneratorConfig cfg;
  cfg.gates = 2000;
  cfg.outputs = 128;
  const Netlist nl = circuit::pipelinedLogic(lib(), cfg, rng, 8);
  const TimingResult t = analyze(nl);
  EXPECT_GT(fractionOfPathsFasterThan(t, nl, 0.5), 0.5);
}

TEST(Sta, PathDelayHistogramNormalized) {
  util::Rng rng(29);
  circuit::GeneratorConfig cfg;
  cfg.gates = 500;
  const Netlist nl = circuit::randomLogic(lib(), cfg, rng);
  const TimingResult t = analyze(nl);
  const auto h = pathDelayHistogram(t, nl, 10);
  EXPECT_EQ(h.total(), nl.outputs().size());
  EXPECT_NEAR(h.cumulativeBelow(1.01), 1.0, 1e-12);
}

TEST(Sta, EndpointArrivalsMatchAnalyze) {
  const Netlist nl = circuit::inverterChain(lib(), 3);
  const auto arr = endpointArrivals(nl);
  const TimingResult t = analyze(nl);
  ASSERT_EQ(arr.size(), 1u);
  EXPECT_DOUBLE_EQ(arr[0], t.criticalPathDelay);
}

TEST(Sta, BiggerLoadSlowsPath) {
  // Same chain, heavier per-fanout wire: longer critical path.
  const Netlist light = circuit::inverterChain(lib(), 5);
  Netlist heavy(10.0 * light.wireCapPerFanout(), light.outputLoadCap());
  int prev = heavy.addInput();
  const circuit::Cell inv = lib().pick(CellFunction::Inv, 1.0);
  for (int i = 0; i < 5; ++i) prev = heavy.addGate(inv, {prev});
  heavy.markOutput(prev);
  EXPECT_GT(analyze(heavy).criticalPathDelay,
            analyze(light).criticalPathDelay);
}

}  // namespace
}  // namespace nano::sta
