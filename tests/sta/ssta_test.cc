#include "sta/ssta.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generator.h"
#include "sta/sta.h"

namespace nano::sta {
namespace {

using circuit::Library;
using circuit::Netlist;

const Library& lib() {
  static const Library instance(tech::nodeByFeature(70));
  return instance;
}
const tech::TechNode& node70() { return tech::nodeByFeature(70); }

TEST(Ssta, MeanMatchesDeterministicStaOnChain) {
  // A chain has no MAX operations: the statistical mean equals the
  // deterministic arrival exactly.
  const Netlist nl = circuit::inverterChain(lib(), 10);
  const StatTiming st = analyzeStatistical(nl, node70());
  const TimingResult det = analyze(nl);
  EXPECT_NEAR(st.criticalMean, det.criticalPathDelay,
              1e-9 * det.criticalPathDelay);
}

TEST(Ssta, SigmaGrowsAsSqrtOfDepth) {
  // Independent per-stage variation: path sigma ~ sqrt(stages).
  const Netlist short_ = circuit::inverterChain(lib(), 4);
  const Netlist long_ = circuit::inverterChain(lib(), 16);
  const double s1 = analyzeStatistical(short_, node70()).criticalSigma;
  const double s2 = analyzeStatistical(long_, node70()).criticalSigma;
  EXPECT_NEAR(s2 / s1, 2.0, 0.3);  // boundary stages skew it slightly
}

TEST(Ssta, ClarkMaxRaisesMeanAboveBothInputs) {
  // Two equal-delay parallel branches converging: the statistical arrival
  // mean exceeds the deterministic max (the known MAX-of-Gaussians bias).
  const Library& l = lib();
  Netlist nl(0.0, 0.0);
  const int in = nl.addInput();
  const auto inv = l.pick(circuit::CellFunction::Inv, 1.0);
  const auto nand = l.pick(circuit::CellFunction::Nand2, 1.0);
  int brA = in, brB = in;
  for (int i = 0; i < 6; ++i) brA = nl.addGate(inv, {brA});
  for (int i = 0; i < 6; ++i) brB = nl.addGate(inv, {brB});
  const int join = nl.addGate(nand, {brA, brB});
  nl.markOutput(join);
  const StatTiming st = analyzeStatistical(nl, node70());
  const TimingResult det = analyze(nl);
  EXPECT_GT(st.criticalMean, det.criticalPathDelay * 1.0001);
}

TEST(Ssta, HigherDriveGatesVaryLess) {
  // Bigger devices average mismatch: sigma/mean drops with drive.
  auto chainSigmaOverMean = [&](double drive) {
    const Netlist nl = circuit::inverterChain(lib(), 8, drive);
    const StatTiming st = analyzeStatistical(nl, node70());
    return st.criticalSigma / st.criticalMean;
  };
  EXPECT_GT(chainSigmaOverMean(1.0), 1.5 * chainSigmaOverMean(4.0));
}

TEST(Ssta, SmallerNodesNeedMoreRelativeMargin) {
  // The paper's variability worry, quantified: the same design at a
  // smaller node has a larger sigma/mean at its critical endpoint.
  auto relSigma = [](int feature) {
    const Library l(tech::nodeByFeature(feature));
    util::Rng rng(13);
    circuit::GeneratorConfig cfg;
    cfg.gates = 300;
    const Netlist nl = circuit::randomLogic(l, cfg, rng);
    const StatTiming st = analyzeStatistical(nl, tech::nodeByFeature(feature));
    return st.criticalSigma / st.criticalMean;
  };
  EXPECT_GT(relSigma(35), 1.3 * relSigma(180));
}

TEST(Ssta, YieldAtMeanIsNearHalfForCriticalEndpoint) {
  const Netlist nl = circuit::inverterChain(lib(), 12);
  const StatTiming st = analyzeStatistical(nl, node70());
  const double y = timingYield(nl, st, st.criticalMean);
  EXPECT_GT(y, 0.4);
  EXPECT_LT(y, 0.6);
}

TEST(Ssta, ThreeSigmaMarginYieldsHigh) {
  util::Rng rng(29);
  circuit::GeneratorConfig cfg;
  cfg.gates = 400;
  const Netlist nl = circuit::pipelinedLogic(lib(), cfg, rng, 5);
  const StatTiming st = analyzeStatistical(nl, node70());
  const double clock = st.criticalMean + 3.0 * st.criticalSigma;
  EXPECT_GT(timingYield(nl, st, clock), 0.95);
}

TEST(Ssta, YieldMonotoneInClock) {
  const Netlist nl = circuit::inverterChain(lib(), 12);
  const StatTiming st = analyzeStatistical(nl, node70());
  double prev = 0.0;
  for (double k : {-2.0, 0.0, 2.0, 4.0}) {
    const double y = timingYield(nl, st, st.criticalMean + k * st.criticalSigma);
    EXPECT_GE(y, prev);
    prev = y;
  }
}

TEST(Ssta, MarginSigmasInvertsNormal) {
  EXPECT_NEAR(marginSigmasForYield(0.5), 0.0, 1e-6);
  EXPECT_NEAR(marginSigmasForYield(0.9986501), 3.0, 1e-3);
  EXPECT_THROW(marginSigmasForYield(0.0), std::invalid_argument);
  EXPECT_THROW(marginSigmasForYield(1.0), std::invalid_argument);
}

TEST(Ssta, MarginSigmasCheckedReportsStatus) {
  const YieldMargin ok = marginSigmasForYieldChecked(0.5);
  EXPECT_TRUE(ok.diag.ok());
  EXPECT_NEAR(ok.sigmas, 0.0, 1e-6);
  EXPECT_STREQ(ok.diag.kernel, "sta/yield_margin");

  // A NaN yield slips through `yield <= 0 || yield >= 1` (every comparison
  // with NaN is false); the checked path must classify it explicitly.
  const YieldMargin nan = marginSigmasForYieldChecked(std::nan(""));
  EXPECT_EQ(nan.diag.status, util::SolverStatus::NanDetected);
  EXPECT_THROW(marginSigmasForYield(std::nan("")), std::invalid_argument);

  EXPECT_EQ(marginSigmasForYieldChecked(0.0).diag.status,
            util::SolverStatus::BracketFailure);
  EXPECT_EQ(marginSigmasForYieldChecked(1.0).diag.status,
            util::SolverStatus::BracketFailure);
}

TEST(Ssta, RejectsNanSensitivity) {
  const Netlist nl = circuit::inverterChain(lib(), 2);
  SstaOptions opt;
  opt.delaySensitivity = std::nan("");
  EXPECT_THROW(analyzeStatistical(nl, node70(), opt), std::invalid_argument);
}

TEST(Ssta, RejectsNegativeSensitivity) {
  const Netlist nl = circuit::inverterChain(lib(), 2);
  SstaOptions opt;
  opt.delaySensitivity = -1.0;
  EXPECT_THROW(analyzeStatistical(nl, node70(), opt), std::invalid_argument);
}

}  // namespace
}  // namespace nano::sta
