#include "sta/incremental.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "circuit/generator.h"
#include "util/rng.h"

namespace nano::sta {
namespace {

using circuit::Cell;
using circuit::Library;
using circuit::Netlist;
using circuit::VthClass;

const Library& lib() {
  static const Library instance(tech::nodeByFeature(100));
  return instance;
}

Netlist makeNetlist(int gates, unsigned seed) {
  util::Rng rng(seed);
  circuit::GeneratorConfig cfg;
  cfg.gates = gates;
  cfg.outputs = std::max(1, gates / 16);
  return circuit::pipelinedLogic(lib(), cfg, rng, 6);
}

/// A random alternate cell for the gate: flip the Vth corner or scale the
/// drive, so swaps move timing in both directions.
Cell randomAlternate(util::Rng& rng, const Cell& cell) {
  switch (rng.uniformInt(0, 2)) {
    case 0:
      return lib().recorner(cell,
                            cell.vth == VthClass::Low ? VthClass::High
                                                      : VthClass::Low,
                            cell.vddDomain);
    case 1:
      return lib().generateCustom(cell.function, cell.drive * 1.5, cell.vth,
                                  cell.vddDomain);
    default:
      return lib().generateCustom(cell.function,
                                  std::max(0.5, cell.drive * 0.75), cell.vth,
                                  cell.vddDomain);
  }
}

/// Full-state equality against a fresh sta::analyze of the same netlist.
/// The engine promises bit-identical values (same operations, same
/// summation order), which is well inside the 1e-12 the optimizers need.
void expectMatchesFullAnalysis(const IncrementalSta& inc, const Netlist& nl) {
  const TimingResult full = analyze(nl, inc.clockPeriod());
  ASSERT_EQ(full.arrival.size(), static_cast<std::size_t>(nl.nodeCount()));
  for (int id = 0; id < nl.nodeCount(); ++id) {
    const auto i = static_cast<std::size_t>(id);
    ASSERT_EQ(inc.arrival(id), full.arrival[i]) << "arrival @" << id;
    ASSERT_EQ(inc.required(id), full.required[i]) << "required @" << id;
    ASSERT_EQ(inc.slack(id), full.slack[i]) << "slack @" << id;
  }
  EXPECT_EQ(inc.worstSlack(), full.worstSlack);
  EXPECT_EQ(inc.criticalPath(), full.criticalPath);
}

TEST(IncrementalSta, InitialStateMatchesAnalyze) {
  Netlist nl = makeNetlist(300, 7);
  const IncrementalSta inc(nl);
  const TimingResult full = analyze(nl);
  EXPECT_EQ(inc.clockPeriod(), full.clockPeriod);
  expectMatchesFullAnalysis(inc, nl);
}

TEST(IncrementalSta, RandomSwapsStayEquivalentToFullAnalysis) {
  Netlist nl = makeNetlist(400, 13);
  IncrementalSta inc(nl, /*clockPeriod=*/-1.0);
  util::Rng rng(99);
  const auto gates = nl.gateIds();
  for (int k = 0; k < 60; ++k) {
    const int g =
        gates[static_cast<std::size_t>(rng.uniformInt(0, static_cast<int>(gates.size()) - 1))];
    inc.apply(g, randomAlternate(rng, nl.node(g).cell));
    expectMatchesFullAnalysis(inc, nl);
  }
  // The whole point: far fewer node visits than 60 full reanalyses.
  EXPECT_LT(inc.nodesRepropagated(), 60 * nl.nodeCount());
}

TEST(IncrementalSta, RollbackRestoresEverything) {
  Netlist nl = makeNetlist(300, 21);
  IncrementalSta inc(nl);
  util::Rng rng(5);
  const auto gates = nl.gateIds();
  for (int k = 0; k < 25; ++k) {
    const int g =
        gates[static_cast<std::size_t>(rng.uniformInt(0, static_cast<int>(gates.size()) - 1))];
    const Cell before = nl.node(g).cell;
    const std::vector<double> slackBefore = [&] {
      std::vector<double> s;
      for (int id = 0; id < nl.nodeCount(); ++id) s.push_back(inc.slack(id));
      return s;
    }();

    inc.trial(g, randomAlternate(rng, nl.node(g).cell));
    EXPECT_TRUE(inc.hasPendingTrial());
    inc.rollback();
    EXPECT_FALSE(inc.hasPendingTrial());

    EXPECT_EQ(nl.node(g).cell.drive, before.drive);
    EXPECT_EQ(nl.node(g).cell.vth, before.vth);
    for (int id = 0; id < nl.nodeCount(); ++id) {
      ASSERT_EQ(inc.slack(id), slackBefore[static_cast<std::size_t>(id)]);
    }
    expectMatchesFullAnalysis(inc, nl);
  }
}

TEST(IncrementalSta, CommitKeepsTheTrialState) {
  Netlist nl = makeNetlist(200, 3);
  IncrementalSta inc(nl);
  const int g = nl.gateIds().front();
  const Cell slower = lib().recorner(nl.node(g).cell, VthClass::High,
                                     nl.node(g).cell.vddDomain);
  inc.trial(g, slower);
  inc.commit();
  EXPECT_EQ(nl.node(g).cell.vth, VthClass::High);
  expectMatchesFullAnalysis(inc, nl);
}

TEST(IncrementalSta, ExportResultMatchesAnalyze) {
  Netlist nl = makeNetlist(250, 17);
  IncrementalSta inc(nl);
  util::Rng rng(31);
  const auto gates = nl.gateIds();
  for (int k = 0; k < 10; ++k) {
    const int g =
        gates[static_cast<std::size_t>(rng.uniformInt(0, static_cast<int>(gates.size()) - 1))];
    inc.apply(g, randomAlternate(rng, nl.node(g).cell));
  }
  const TimingResult exported = inc.exportResult();
  const TimingResult full = analyze(nl, inc.clockPeriod());
  EXPECT_EQ(exported.clockPeriod, full.clockPeriod);
  EXPECT_EQ(exported.criticalPathDelay, full.criticalPathDelay);
  EXPECT_EQ(exported.worstSlack, full.worstSlack);
  EXPECT_EQ(exported.arrival, full.arrival);
  EXPECT_EQ(exported.required, full.required);
  EXPECT_EQ(exported.slack, full.slack);
  EXPECT_EQ(exported.criticalPath, full.criticalPath);
}

TEST(IncrementalSta, MisuseThrows) {
  Netlist nl = makeNetlist(100, 1);
  IncrementalSta inc(nl);
  const int g = nl.gateIds().front();
  EXPECT_THROW(inc.commit(), std::logic_error);
  EXPECT_THROW(inc.rollback(), std::logic_error);
  int pi = -1;
  for (int id = 0; id < nl.nodeCount(); ++id) {
    if (nl.node(id).kind == Netlist::NodeKind::PrimaryInput) {
      pi = id;
      break;
    }
  }
  ASSERT_GE(pi, 0);
  EXPECT_THROW(inc.trial(pi, nl.node(g).cell), std::invalid_argument);

  inc.trial(g, lib().recorner(nl.node(g).cell, VthClass::High,
                              nl.node(g).cell.vddDomain));
  EXPECT_THROW(inc.trial(g, nl.node(g).cell), std::logic_error);
  EXPECT_THROW(inc.rebuild(), std::logic_error);
  inc.rollback();

  Netlist other = makeNetlist(100, 2);
  EXPECT_THROW(IncrementalSta(other, -1.0, -0.5), std::invalid_argument);
}

TEST(IncrementalSta, FrozenClockStaysFixedAcrossSwaps) {
  Netlist nl = makeNetlist(200, 41);
  IncrementalSta inc(nl);  // clock frozen at the initial critical delay
  const double clock0 = inc.clockPeriod();
  const int g = inc.criticalPath()[1];
  ASSERT_EQ(nl.node(g).kind, Netlist::NodeKind::Gate);
  inc.apply(g, lib().recorner(nl.node(g).cell, VthClass::High,
                              nl.node(g).cell.vddDomain));
  EXPECT_EQ(inc.clockPeriod(), clock0);
  expectMatchesFullAnalysis(inc, nl);
}

}  // namespace
}  // namespace nano::sta
