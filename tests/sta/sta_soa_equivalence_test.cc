// Equivalence and determinism tests for the flat SoA timing engines.
// `referenceAnalyze` below is a verbatim copy of the historical
// object-walking sta::analyze (sequential forward sweep over node ids,
// scatter-min backward sweep) — the refactor's acceptance bar is that the
// level-parallel SoA engine reproduces it to the last bit, at any exec
// lane count, and that IncrementalSta's state stays bit-identical to a
// fresh full analysis through randomized trial/commit/rollback scripts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "circuit/generator.h"
#include "circuit/library.h"
#include "circuit/netlist.h"
#include "circuit/netlist_soa.h"
#include "exec/exec.h"
#include "sta/incremental.h"
#include "sta/sta.h"
#include "tech/itrs.h"
#include "util/rng.h"

namespace nano::sta {
namespace {

using circuit::Library;
using circuit::Netlist;
using circuit::NetlistSoA;

const Library& lib() {
  static const Library instance(tech::nodeByFeature(35));
  return instance;
}

Netlist makeNetlist(int gates, std::uint64_t seed) {
  util::Rng rng(seed);
  return circuit::pipelinedLogic(lib(), circuit::scaledConfig(gates), rng, 4);
}

/// The pre-SoA analyze, kept verbatim as the bit-identity reference.
TimingResult referenceAnalyze(const Netlist& netlist, double clockPeriod) {
  const int n = netlist.nodeCount();
  TimingResult r;
  r.arrival.assign(static_cast<std::size_t>(n), 0.0);
  r.required.assign(static_cast<std::size_t>(n),
                    std::numeric_limits<double>::infinity());
  r.slack.assign(static_cast<std::size_t>(n), 0.0);

  std::vector<int> worstFanin(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const auto& node = netlist.node(i);
    if (node.kind != Netlist::NodeKind::Gate) continue;
    double worst = 0.0;
    int worstId = -1;
    for (int f : node.fanins) {
      if (r.arrival[static_cast<std::size_t>(f)] >= worst) {
        worst = r.arrival[static_cast<std::size_t>(f)];
        worstId = f;
      }
    }
    const double delay = node.cell.delay(netlist.loadCap(i));
    r.arrival[static_cast<std::size_t>(i)] = worst + delay;
    worstFanin[static_cast<std::size_t>(i)] = worstId;
  }

  double critical = 0.0;
  int criticalEnd = -1;
  for (int id : netlist.outputs()) {
    if (r.arrival[static_cast<std::size_t>(id)] >= critical) {
      critical = r.arrival[static_cast<std::size_t>(id)];
      criticalEnd = id;
    }
  }
  r.criticalPathDelay = critical;
  r.clockPeriod = clockPeriod > 0 ? clockPeriod : critical;

  for (int id : netlist.outputs()) {
    r.required[static_cast<std::size_t>(id)] = r.clockPeriod;
  }
  for (int i = n; i-- > 0;) {
    const auto& node = netlist.node(i);
    for (int f : node.fanins) {
      const double delay = node.kind == Netlist::NodeKind::Gate
                               ? node.cell.delay(netlist.loadCap(i))
                               : 0.0;
      r.required[static_cast<std::size_t>(f)] =
          std::min(r.required[static_cast<std::size_t>(f)],
                   r.required[static_cast<std::size_t>(i)] - delay);
    }
  }
  for (int i = 0; i < n; ++i) {
    const double req = r.required[static_cast<std::size_t>(i)];
    r.slack[static_cast<std::size_t>(i)] =
        (req == std::numeric_limits<double>::infinity())
            ? r.clockPeriod
            : req - r.arrival[static_cast<std::size_t>(i)];
  }

  r.worstSlack = std::numeric_limits<double>::infinity();
  for (int id : netlist.outputs()) {
    r.worstSlack =
        std::min(r.worstSlack, r.slack[static_cast<std::size_t>(id)]);
  }
  if (criticalEnd >= 0) {
    for (int cur = criticalEnd; cur >= 0;
         cur = worstFanin[static_cast<std::size_t>(cur)]) {
      r.criticalPath.push_back(cur);
      if (netlist.node(cur).kind == Netlist::NodeKind::PrimaryInput) break;
    }
    std::reverse(r.criticalPath.begin(), r.criticalPath.end());
  }
  return r;
}

/// Bit-level equality of double vectors (NaN-free by construction; memcmp
/// distinguishes +0.0 from -0.0, which `==` would miss).
void expectBitEqual(const std::vector<double>& a, const std::vector<double>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what << ": payload differs";
  }
}

void expectResultsBitEqual(const TimingResult& a, const TimingResult& b) {
  EXPECT_EQ(a.clockPeriod, b.clockPeriod);
  EXPECT_EQ(a.criticalPathDelay, b.criticalPathDelay);
  EXPECT_EQ(a.worstSlack, b.worstSlack);
  expectBitEqual(a.arrival, b.arrival, "arrival");
  expectBitEqual(a.required, b.required, "required");
  expectBitEqual(a.slack, b.slack, "slack");
  EXPECT_EQ(a.criticalPath, b.criticalPath);
}

class SoaEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SoaEquivalenceTest, FullAnalysisMatchesReferenceBitForBit) {
  const Netlist nl = makeNetlist(GetParam(), 0xABCDu + GetParam());
  const TimingResult ref = referenceAnalyze(nl, -1.0);
  // Object-API wrapper, one-shot SoA overload and the reusable engine all
  // agree with the reference to the last bit.
  expectResultsBitEqual(analyze(nl), ref);
  const NetlistSoA soa(nl, {.keepCells = false});
  expectResultsBitEqual(analyze(soa), ref);
  Sta engine(soa);
  expectResultsBitEqual(engine.analyze(), ref);
  // And with an explicit (tighter) clock.
  const double clock = 0.9 * ref.clockPeriod;
  expectResultsBitEqual(analyze(nl, clock), referenceAnalyze(nl, clock));
}

TEST_P(SoaEquivalenceTest, LaneCountDoesNotChangeAnyBit) {
  const Netlist nl = makeNetlist(GetParam(), 0x51AEu + GetParam());
  const NetlistSoA soa(nl, {.keepCells = false});
  const int before = exec::threadCount();
  exec::setGlobalThreadCount(1);
  const TimingResult lanes1 = analyze(soa);
  exec::setGlobalThreadCount(2);
  const TimingResult lanes2 = analyze(soa);
  exec::setGlobalThreadCount(8);
  const TimingResult lanes8 = analyze(soa);
  exec::setGlobalThreadCount(before);
  expectResultsBitEqual(lanes2, lanes1);
  expectResultsBitEqual(lanes8, lanes1);
  expectResultsBitEqual(lanes1, referenceAnalyze(nl, -1.0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SoaEquivalenceTest,
                         ::testing::Values(1000, 8000));

TEST(SoaEquivalenceTest, SteadyStateReanalysisAllocatesNothing) {
  const Netlist nl = makeNetlist(20000, 77);
  const NetlistSoA soa(nl, {.keepCells = false});
  Sta engine(soa);
  (void)engine.analyze();
  const std::int64_t growth = engine.arenaGrowthCount();
  for (int i = 0; i < 10; ++i) (void)engine.analyze();
  EXPECT_EQ(engine.arenaGrowthCount(), growth);
  EXPECT_GT(engine.arenaBytes(), 0u);
}

// Randomized swap scripts: after every trial/commit/rollback the
// incremental state must match a fresh full analysis (reference AND SoA
// engines) to the last bit.
TEST(IncrementalEquivalenceTest, RandomSwapScriptStaysBitIdentical) {
  Netlist work = makeNetlist(1500, 123);
  const TimingResult initial = analyze(work);
  IncrementalSta inc(work, initial.clockPeriod);
  util::Rng rng(31337);
  const auto gates = work.gateIds();

  for (int trial = 0; trial < 120; ++trial) {
    const int g = gates[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<int>(gates.size()) - 1))];
    const auto& node = work.node(g);
    const circuit::Cell candidate = lib().generateCustom(
        node.cell.function, node.cell.drive * rng.uniform(0.6, 1.8),
        node.cell.vth, node.cell.vddDomain);
    inc.trial(g, candidate);
    if (rng.uniform() < 0.5) {
      inc.commit();
    } else {
      inc.rollback();
    }
    if (trial % 10 == 0 || trial == 119) {
      const TimingResult fresh = referenceAnalyze(work, inc.clockPeriod());
      expectBitEqual(inc.exportResult().arrival, fresh.arrival, "arrival");
      expectBitEqual(inc.exportResult().required, fresh.required, "required");
      expectBitEqual(inc.exportResult().slack, fresh.slack, "slack");
      EXPECT_EQ(inc.worstSlack(), fresh.worstSlack);
      EXPECT_EQ(inc.criticalPath(), fresh.criticalPath);
      expectResultsBitEqual(analyze(work, inc.clockPeriod()), fresh);
    }
  }
}

TEST(IncrementalEquivalenceTest, SeededConstructorMatchesSelfAnalyzed) {
  Netlist a = makeNetlist(1200, 55);
  Netlist b = a;
  const TimingResult seed = analyze(a);
  IncrementalSta fromSeed(a, seed);
  IncrementalSta selfAnalyzed(b, seed.clockPeriod);
  EXPECT_EQ(fromSeed.clockPeriod(), selfAnalyzed.clockPeriod());
  expectBitEqual(fromSeed.exportResult().arrival,
                 selfAnalyzed.exportResult().arrival, "arrival");
  expectBitEqual(fromSeed.exportResult().slack,
                 selfAnalyzed.exportResult().slack, "slack");

  // Identical swap scripts evolve identically.
  util::Rng rngA(9), rngB(9);
  const auto gates = a.gateIds();
  for (int trial = 0; trial < 40; ++trial) {
    const int g = gates[static_cast<std::size_t>(
        rngA.uniformInt(0, static_cast<int>(gates.size()) - 1))];
    (void)rngB.uniformInt(0, static_cast<int>(gates.size()) - 1);
    const auto& node = a.node(g);
    const double scale = rngA.uniform(0.6, 1.8);
    (void)rngB.uniform(0.6, 1.8);
    const circuit::Cell cand = lib().generateCustom(
        node.cell.function, node.cell.drive * scale, node.cell.vth,
        node.cell.vddDomain);
    fromSeed.apply(g, cand);
    selfAnalyzed.apply(g, cand);
  }
  expectBitEqual(fromSeed.exportResult().slack,
                 selfAnalyzed.exportResult().slack, "slack after script");
  expectResultsBitEqual(fromSeed.exportResult(), selfAnalyzed.exportResult());
}

TEST(IncrementalEquivalenceTest, SeededConstructorRejectsBadSeeds) {
  Netlist nl = makeNetlist(300, 2);
  TimingResult seed = analyze(nl);
  TimingResult truncated = seed;
  truncated.arrival.pop_back();
  EXPECT_THROW(IncrementalSta(nl, truncated), std::invalid_argument);
  TimingResult noClock = seed;
  noClock.clockPeriod = 0.0;
  EXPECT_THROW(IncrementalSta(nl, noClock), std::invalid_argument);
}

}  // namespace
}  // namespace nano::sta
