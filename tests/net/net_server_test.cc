// Multi-client behavior of the socket front end, run entirely over the
// in-memory SocketOps mock so it is deterministic and TSan-friendly:
//   - N clients replaying interleaved slices of the committed golden
//     trace each get byte-identical responses at 1/2/8 exec lanes, over
//     TCP and Unix transports;
//   - identical requests from different connections dedup to one compute
//     (svc/cache_misses == 1 for the key, svc/dedup_joins > 0);
//   - past --max-clients a connection gets one structured shed line;
//   - idle connections close gracefully after the timeout;
//   - a client that stops reading is disconnected once its write queue
//     exceeds the bound (memory stays bounded under overload);
//   - a tiny emit-queue limit pauses reads (backpressure) without
//     changing a single output byte.
#include "net/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec.h"
#include "net/mock_socket.h"
#include "obs/obs.h"

namespace nano::net {
namespace {

std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string readFileOrFail(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Spin until `predicate` holds or ~5s pass. Mock-driven servers settle in
/// microseconds; the margin is for sanitizer builds.
template <typename Predicate>
bool waitFor(Predicate predicate, int timeoutMs = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeoutMs);
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

std::int64_t counterValue(const char* name) {
  return obs::MetricsRegistry::instance().counter(name).value();
}

class NetServerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::setEnabled(wasEnabled_);
    obs::MetricsRegistry::instance().reset();
    exec::setGlobalThreadCount(exec::defaultThreadCount());
  }
  void enableMetrics() {
    wasEnabled_ = obs::enabled();
    obs::setEnabled(true);
    obs::MetricsRegistry::instance().reset();
  }
  bool wasEnabled_ = false;
};

// ------------------------------------------------- golden trace slices

/// Replay the committed golden trace through `clients` concurrent
/// connections, dealing lines round-robin, and require every client's
/// response stream to equal its slice of the golden replay byte for byte.
void replayGoldenSlices(int clients, int threads, bool unixTransport) {
  SCOPED_TRACE("clients=" + std::to_string(clients) +
               " threads=" + std::to_string(threads) +
               (unixTransport ? " unix" : " tcp"));
  exec::setGlobalThreadCount(threads);
  const std::vector<std::string> trace = splitLines(
      readFileOrFail(std::string(NANO_GOLDEN_DIR) + "/nanod_trace.jsonl"));
  const std::vector<std::string> golden = splitLines(
      readFileOrFail(std::string(NANO_GOLDEN_DIR) + "/nanod_replay.jsonl"));
  ASSERT_FALSE(trace.empty());
  ASSERT_EQ(trace.size(), golden.size());

  auto mockPtr = std::make_unique<MockSocketOps>();
  MockSocketOps& mock = *mockPtr;
  svc::Service service;  // shed-not-block: the socket default
  NetServerOptions options;
  if (unixTransport) {
    options.unixPath = "/tmp/net-test.sock";
  } else {
    options.tcpPort = 0;
  }
  NetServer server(service, options, std::move(mockPtr));
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  std::vector<int> fds(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    fds[static_cast<std::size_t>(c)] =
        unixTransport ? mock.connectUnix(options.unixPath)
                      : mock.connectTcp(server.tcpPort());
    ASSERT_GE(fds[static_cast<std::size_t>(c)], 0);
  }

  // Deal lines round-robin, splitting every third send mid-line so the
  // framing layer sees partial reads interleaved across connections.
  std::vector<std::string> expected(static_cast<std::size_t>(clients));
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::size_t c = i % static_cast<std::size_t>(clients);
    const std::string line = trace[i] + "\n";
    if (i % 3 == 0 && line.size() > 4) {
      mock.clientSend(fds[c], std::string_view(line).substr(0, 4));
      mock.clientSend(fds[c], std::string_view(line).substr(4));
    } else {
      mock.clientSend(fds[c], line);
    }
    expected[c] += golden[i] + "\n";
  }
  for (const int fd : fds) mock.clientCloseWrite(fd);
  for (int c = 0; c < clients; ++c) {
    const std::size_t idx = static_cast<std::size_t>(c);
    EXPECT_EQ(mock.clientReadAll(fds[idx]), expected[idx])
        << "client " << c << " diverged from its golden slice";
  }

  server.stop();
  EXPECT_EQ(server.stats().accepted, static_cast<std::size_t>(clients));
  EXPECT_EQ(server.stats().closes, static_cast<std::size_t>(clients));
  EXPECT_EQ(server.stats().sessions.lines, trace.size());
  EXPECT_EQ(server.stats().shedConnections, 0u);
}

TEST_F(NetServerTest, FourTcpClientsMatchGoldenSlicesAtEveryLaneCount) {
  for (const int threads : {1, 2, 8}) replayGoldenSlices(4, threads, false);
}

TEST_F(NetServerTest, EightUnixClientsMatchGoldenSlices) {
  replayGoldenSlices(8, 2, true);
}

TEST_F(NetServerTest, TcpAndUnixListenersServeSideBySide) {
  exec::setGlobalThreadCount(2);
  auto mockPtr = std::make_unique<MockSocketOps>();
  MockSocketOps& mock = *mockPtr;
  svc::Service service;
  NetServerOptions options;
  options.tcpPort = 0;
  options.unixPath = "/tmp/net-both.sock";
  NetServer server(service, options, std::move(mockPtr));
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  const int tcpFd = mock.connectTcp(server.tcpPort());
  const int unixFd = mock.connectUnix(options.unixPath);
  ASSERT_GE(tcpFd, 0);
  ASSERT_GE(unixFd, 0);
  const std::string request = R"({"id":"r","kind":"wire"})" "\n";
  mock.clientSend(tcpFd, request);
  mock.clientSend(unixFd, request);
  mock.clientCloseWrite(tcpFd);
  mock.clientCloseWrite(unixFd);
  const std::string a = mock.clientReadAll(tcpFd);
  const std::string b = mock.clientReadAll(unixFd);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "transports must not change response bytes";
  server.stop();
  EXPECT_EQ(server.stats().accepted, 2u);
}

// ------------------------------------------------- cross-client dedup

TEST_F(NetServerTest, IdenticalRequestsAcrossClientsComputeOnceAndJoin) {
  enableMetrics();
  exec::setGlobalThreadCount(2);
  auto mockPtr = std::make_unique<MockSocketOps>();
  MockSocketOps& mock = *mockPtr;
  svc::Service service;
  NetServerOptions options;
  options.tcpPort = 0;
  NetServer server(service, options, std::move(mockPtr));
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  constexpr int kClients = 8;
  std::vector<int> fds(kClients);
  for (int c = 0; c < kClients; ++c) {
    fds[static_cast<std::size_t>(c)] = mock.connectTcp(server.tcpPort());
    ASSERT_GE(fds[static_cast<std::size_t>(c)], 0);
  }

  // An expensive (~40ms) evaluation. The plug occupies the batcher so the
  // identical requests that follow pile into one batch together; within
  // that batch one lane computes while the other joins in flight.
  const std::string plug =
      R"({"id":"plug","kind":"design_grid","params":{"vdd_steps":60,"vth_steps":60}})"
      "\n";
  const std::string dup =
      R"({"id":"dup","kind":"design_grid","params":{"vdd_steps":59,"vth_steps":59}})"
      "\n";
  mock.clientSend(fds[0], plug);
  // Wait until the plug's compute has started (its cache miss is counted
  // at evaluation entry), so the duplicates all queue behind it.
  ASSERT_TRUE(waitFor([] { return counterValue("svc/cache_misses") >= 1; }));
  for (int c = 0; c < kClients; ++c) {
    for (int copy = 0; copy < 4; ++copy) {
      mock.clientSend(fds[static_cast<std::size_t>(c)], dup);
    }
  }
  for (const int fd : fds) mock.clientCloseWrite(fd);

  const std::string first = mock.clientReadAll(fds[0]);
  const std::vector<std::string> firstLines = splitLines(first);
  ASSERT_EQ(firstLines.size(), 5u);  // plug + 4 dups
  const std::string dupResponse = firstLines[1];
  EXPECT_EQ(firstLines[2], dupResponse);
  for (int c = 1; c < kClients; ++c) {
    const std::vector<std::string> lines =
        splitLines(mock.clientReadAll(fds[static_cast<std::size_t>(c)]));
    ASSERT_EQ(lines.size(), 4u);
    for (const std::string& line : lines) {
      EXPECT_EQ(line, dupResponse)
          << "dedup/cache reuse must not change bytes";
    }
  }
  server.stop();

  // 32 copies of the dup across 8 connections: exactly one compute; at
  // least one other copy joined it in flight rather than recomputing.
  EXPECT_EQ(counterValue("svc/cache_misses"), 2);  // plug + one dup
  EXPECT_GT(counterValue("svc/dedup_joins"), 0);
  EXPECT_EQ(server.stats().sessions.ok, 33u);
}

// ------------------------------------------------------ admission limit

TEST_F(NetServerTest, ConnectionsPastMaxClientsGetOneStructuredShedLine) {
  auto mockPtr = std::make_unique<MockSocketOps>();
  MockSocketOps& mock = *mockPtr;
  svc::Service service;
  NetServerOptions options;
  options.tcpPort = 0;
  options.maxClients = 1;
  NetServer server(service, options, std::move(mockPtr));
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  const int kept = mock.connectTcp(server.tcpPort());
  ASSERT_GE(kept, 0);
  ASSERT_TRUE(waitFor([&] { return server.activeConnections() == 1; }));

  const int shed = mock.connectTcp(server.tcpPort());
  ASSERT_GE(shed, 0);
  EXPECT_EQ(mock.clientReadAll(shed),
            "{\"id\":\"\",\"status\":\"shed\","
            "\"error\":\"max clients (1 connections)\"}\n");
  EXPECT_TRUE(mock.serverClosed(shed));

  // The admitted connection is unaffected.
  mock.clientSend(kept, R"({"id":"r","kind":"wire"})" "\n");
  mock.clientCloseWrite(kept);
  EXPECT_NE(mock.clientReadAll(kept).find(R"("status":"ok")"),
            std::string::npos);
  server.stop();
  EXPECT_EQ(server.stats().accepted, 1u);
  EXPECT_EQ(server.stats().shedConnections, 1u);
}

// --------------------------------------------------------- idle timeout

TEST_F(NetServerTest, IdleConnectionsCloseGracefullyAfterTimeout) {
  auto mockPtr = std::make_unique<MockSocketOps>();
  MockSocketOps& mock = *mockPtr;
  svc::Service service;
  NetServerOptions options;
  options.tcpPort = 0;
  options.idleTimeoutMs = 50;
  NetServer server(service, options, std::move(mockPtr));
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  const int fd = mock.connectTcp(server.tcpPort());
  ASSERT_GE(fd, 0);
  // Activity resets the clock: the response still arrives.
  mock.clientSend(fd, R"({"id":"r","kind":"wire"})" "\n");
  std::string got;
  ASSERT_TRUE(mock.clientRead(fd, got, 5000));
  EXPECT_NE(got.find(R"("status":"ok")"), std::string::npos);

  // Then silence: the server closes its side without being asked.
  EXPECT_TRUE(waitFor([&] { return mock.serverClosed(fd); }));
  ASSERT_TRUE(waitFor([&] { return server.activeConnections() == 0; }));
  server.stop();
  EXPECT_EQ(server.stats().idleCloses, 1u);
  EXPECT_EQ(server.stats().closes, 1u);
}

// ------------------------------------------------ slow-client shedding

TEST_F(NetServerTest, NonReadingClientIsDisconnectedAtWriteBufferBound) {
  enableMetrics();
  auto mockPtr = std::make_unique<MockSocketOps>();
  MockSocketOps& mock = *mockPtr;
  svc::Service service;
  NetServerOptions options;
  options.tcpPort = 0;
  // The client's "kernel buffer" holds 64 bytes and it never reads; the
  // server may pin at most ~256 bytes of responses for it.
  options.maxWriteBufferBytes = 256;
  mock.setClientRecvCapacity(64);
  NetServer server(service, options, std::move(mockPtr));
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  const int fd = mock.connectTcp(server.tcpPort());
  ASSERT_GE(fd, 0);
  for (int i = 0; i < 20; ++i) {
    mock.clientSend(fd, R"({"id":"r)" + std::to_string(i) +
                            R"(","kind":"wire"})" "\n");
  }
  // Without ever reading, the connection must be dropped.
  EXPECT_TRUE(waitFor([&] { return mock.serverClosed(fd); }));
  ASSERT_TRUE(waitFor([&] { return server.activeConnections() == 0; }));
  server.stop();
  EXPECT_EQ(server.stats().slowClientCloses, 1u);
  EXPECT_EQ(counterValue("net/slow_client_closes"), 1);
}

// ------------------------------------------- emit-queue backpressure

TEST_F(NetServerTest, TinyEmitQueuePausesReadsWithoutChangingOneByte) {
  enableMetrics();
  exec::setGlobalThreadCount(2);
  auto mockPtr = std::make_unique<MockSocketOps>();
  MockSocketOps& mock = *mockPtr;
  svc::Service service;
  NetServerOptions options;
  options.tcpPort = 0;
  options.session.emitQueueLimit = 2;
  NetServer server(service, options, std::move(mockPtr));
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  std::string burst;
  for (int i = 0; i < 30; ++i) {
    burst += R"({"id":"b)" + std::to_string(i) +
             R"(","kind":"wire","params":{"width_multiple":)" +
             std::to_string(1.0 + 0.1 * i) + "}}\n";
  }
  const int fd = mock.connectTcp(server.tcpPort());
  ASSERT_GE(fd, 0);
  mock.clientSend(fd, burst);
  mock.clientCloseWrite(fd);
  const std::string socketOut = mock.clientReadAll(fd);
  server.stop();

  EXPECT_GT(counterValue("net/read_pauses"), 0)
      << "a 30-line burst against a 2-deep emit queue must pause reads";
  EXPECT_EQ(server.stats().sessions.lines, 30u);
  EXPECT_EQ(server.stats().sessions.ok, 30u);

  // Byte-compare against the stdin pipeline on a fresh service.
  std::istringstream in(burst);
  std::ostringstream stdinOut;
  svc::Service reference;
  svc::runServer(in, stdinOut, reference);
  EXPECT_EQ(socketOut, stdinOut.str());
}

// ----------------------------------------- overload sheds, in order

TEST_F(NetServerTest, QueueOverloadShedsWithStructuredStatusInOrder) {
  enableMetrics();
  auto mockPtr = std::make_unique<MockSocketOps>();
  MockSocketOps& mock = *mockPtr;
  svc::ServiceOptions serviceOptions;
  serviceOptions.scheduler.maxQueue = 2;
  svc::Service service(serviceOptions);
  NetServerOptions options;
  options.tcpPort = 0;
  NetServer server(service, options, std::move(mockPtr));
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  const int fd = mock.connectTcp(server.tcpPort());
  ASSERT_GE(fd, 0);
  // Occupy the batcher (~40ms), then flood a 2-deep queue.
  mock.clientSend(
      fd,
      R"({"id":"plug","kind":"design_grid","params":{"vdd_steps":60,"vth_steps":60}})"
      "\n");
  ASSERT_TRUE(waitFor([] { return counterValue("svc/cache_misses") >= 1; }));
  for (int i = 0; i < 10; ++i) {
    mock.clientSend(fd, R"({"id":"f)" + std::to_string(i) +
                            R"(","kind":"wire","params":{"width_multiple":)" +
                            std::to_string(2.0 + i) + "}}\n");
  }
  mock.clientCloseWrite(fd);
  const std::vector<std::string> lines = splitLines(mock.clientReadAll(fd));
  server.stop();

  ASSERT_EQ(lines.size(), 11u) << "every request gets a response, shed or not";
  // Responses stay in input order even when most of the flood sheds.
  EXPECT_NE(lines[0].find(R"("id":"plug")"), std::string::npos);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(lines[static_cast<std::size_t>(i + 1)].find(
                  R"("id":"f)" + std::to_string(i) + "\""),
              std::string::npos);
  }
  EXPECT_EQ(server.stats().sessions.shed, 8u) << "queue held 2 of the 10";
  const std::string shedLine = lines[4];
  EXPECT_NE(shedLine.find(R"("status":"shed")"), std::string::npos);
  EXPECT_NE(shedLine.find("queue"), std::string::npos);
}

// ------------------------------------------------- lifecycle odds/ends

TEST_F(NetServerTest, StopWithClientsMidStreamDrainsAndAnswersEverything) {
  enableMetrics();
  auto mockPtr = std::make_unique<MockSocketOps>();
  MockSocketOps& mock = *mockPtr;
  svc::Service service;
  NetServerOptions options;
  options.tcpPort = 0;
  NetServer server(service, options, std::move(mockPtr));
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  const int fd = mock.connectTcp(server.tcpPort());
  ASSERT_GE(fd, 0);
  for (int i = 0; i < 5; ++i) {
    mock.clientSend(fd, R"({"id":"s)" + std::to_string(i) +
                            R"(","kind":"wire"})" "\n");
  }
  // No half-close from the client: once the server has consumed the
  // burst, stop() itself must EOF the stream, answer everything already
  // admitted, flush, and close.
  ASSERT_TRUE(waitFor([] { return counterValue("net/lines_in") == 5; }));
  server.stop();
  const std::vector<std::string> lines = splitLines(mock.clientReadAll(fd));
  EXPECT_EQ(server.stats().sessions.lines, 5u);
  ASSERT_EQ(lines.size(), 5u);
  for (const std::string& line : lines) {
    EXPECT_NE(line.find(R"("status":"ok")"), std::string::npos) << line;
  }
  EXPECT_TRUE(mock.serverClosed(fd));
}

TEST_F(NetServerTest, StartWithoutListenersFails) {
  svc::Service service;
  NetServer server(service, NetServerOptions{},
                   std::make_unique<MockSocketOps>());
  std::string error;
  EXPECT_FALSE(server.start(error));
  EXPECT_NE(error.find("listener"), std::string::npos);
  server.stop();  // no-op, must not hang or crash
}

}  // namespace
}  // namespace nano::net
