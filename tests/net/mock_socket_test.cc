// The loopback test double must behave like a non-blocking kernel socket
// layer: FIFO accepts, would-block on empty reads and capped writes, EOF
// after half-close, and a poll() that wakes on traffic and on wake().
// Every NetServer test stands on these semantics.
#include "net/mock_socket.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace nano::net {
namespace {

TEST(MockSocket, ListenConnectAcceptRoundTrip) {
  MockSocketOps mock;
  std::string error;
  const int listenFd = mock.listenTcp("127.0.0.1", 0, error);
  ASSERT_GE(listenFd, 0) << error;
  const int port = mock.localPort(listenFd);
  EXPECT_GT(port, 0);

  EXPECT_EQ(mock.accept(listenFd), -1);  // nothing pending
  const int clientFd = mock.connectTcp(port);
  ASSERT_GE(clientFd, 0);
  const int serverFd = mock.accept(listenFd);
  ASSERT_GE(serverFd, 0);
  EXPECT_EQ(mock.accept(listenFd), -1);

  // Client -> server.
  mock.clientSend(clientFd, "hello\n");
  char buf[64];
  EXPECT_EQ(mock.read(serverFd, buf, sizeof(buf)), 6);
  EXPECT_EQ(std::string(buf, 6), "hello\n");
  EXPECT_EQ(mock.read(serverFd, buf, sizeof(buf)), kIoWouldBlock);

  // Server -> client.
  EXPECT_EQ(mock.write(serverFd, "ok\n", 3), 3);
  std::string got;
  EXPECT_TRUE(mock.clientRead(clientFd, got, 1000));
  EXPECT_EQ(got, "ok\n");

  // Half-close: EOF after the buffered bytes drain.
  mock.clientSend(clientFd, "bye");
  mock.clientCloseWrite(clientFd);
  EXPECT_EQ(mock.read(serverFd, buf, sizeof(buf)), 3);
  EXPECT_EQ(mock.read(serverFd, buf, sizeof(buf)), 0);

  mock.close(serverFd);
  EXPECT_TRUE(mock.serverClosed(clientFd));
}

TEST(MockSocket, ConnectToNowhereFails) {
  MockSocketOps mock;
  EXPECT_EQ(mock.connectTcp(12345), -1);
  EXPECT_EQ(mock.connectUnix("/no/such.sock"), -1);
  std::string error;
  const int listenFd = mock.listenUnix("/tmp/mock.sock", error);
  ASSERT_GE(listenFd, 0) << error;
  EXPECT_GE(mock.connectUnix("/tmp/mock.sock"), 0);
  EXPECT_EQ(mock.localPort(listenFd), -1);  // not a TCP listener
}

TEST(MockSocket, CappedClientBufferGivesShortWritesThenWouldBlock) {
  MockSocketOps mock;
  std::string error;
  const int listenFd = mock.listenTcp("127.0.0.1", 0, error);
  ASSERT_GE(listenFd, 0) << error;
  mock.setClientRecvCapacity(4);
  const int clientFd = mock.connectTcp(mock.localPort(listenFd));
  const int serverFd = mock.accept(listenFd);
  ASSERT_GE(serverFd, 0);

  EXPECT_EQ(mock.write(serverFd, "abcdef", 6), 4);  // short
  EXPECT_EQ(mock.write(serverFd, "ef", 2), kIoWouldBlock);
  std::string got;
  ASSERT_TRUE(mock.clientRead(clientFd, got, 1000));
  EXPECT_EQ(got, "abcd");
  EXPECT_EQ(mock.write(serverFd, "ef", 2), 2);  // space again
}

TEST(MockSocket, WriteToClosedClientIsAnError) {
  MockSocketOps mock;
  std::string error;
  const int listenFd = mock.listenTcp("127.0.0.1", 0, error);
  const int clientFd = mock.connectTcp(mock.localPort(listenFd));
  const int serverFd = mock.accept(listenFd);
  mock.clientClose(clientFd);
  char buf[8];
  EXPECT_EQ(mock.read(serverFd, buf, sizeof(buf)), 0);  // EOF
  EXPECT_EQ(mock.write(serverFd, "x", 1), kIoError);
}

TEST(MockSocket, PollSeesPendingAcceptsBytesAndWake) {
  MockSocketOps mock;
  std::string error;
  const int listenFd = mock.listenTcp("127.0.0.1", 0, error);
  std::vector<PollItem> items(1);
  items[0].fd = listenFd;
  items[0].wantRead = true;
  EXPECT_EQ(mock.poll(items, 0), 0);  // nothing pending, immediate timeout

  const int clientFd = mock.connectTcp(mock.localPort(listenFd));
  EXPECT_EQ(mock.poll(items, 0), 1);
  EXPECT_TRUE(items[0].readable);

  const int serverFd = mock.accept(listenFd);
  items.resize(2);
  items[1].fd = serverFd;
  items[1].wantRead = true;
  EXPECT_EQ(mock.poll(items, 0), 0);  // accepted, no bytes yet

  // A blocked poll() must wake when bytes arrive from another thread.
  std::thread sender([&] { mock.clientSend(clientFd, "x\n"); });
  EXPECT_EQ(mock.poll(items, 5000), 1);
  EXPECT_TRUE(items[1].readable);
  sender.join();

  // And when wake() is called with no traffic at all.
  char buf[8];
  ASSERT_EQ(mock.read(serverFd, buf, sizeof(buf)), 2);
  std::thread waker([&] { mock.wake(); });
  EXPECT_EQ(mock.poll(items, 5000), 0);
  waker.join();

  // An unknown fd reports broken.
  items[1].fd = 999999;
  EXPECT_EQ(mock.poll(items, 0), 1);
  EXPECT_TRUE(items[1].broken);
}

}  // namespace
}  // namespace nano::net
