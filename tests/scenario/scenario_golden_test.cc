// Golden replay of the three canonical closed-loop scenarios: the CSV
// trace of canonicalSpec(name) must reproduce golden/scenario_<name>.csv
// byte for byte — at 1, 2, and 8 exec lanes, since the engine guarantees
// lane-count invariance. Regenerate with scripts/refresh_goldens.sh after
// an intentional model change.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "exec/exec.h"
#include "scenario/scenario.h"

namespace nano::scenario {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (run scripts/refresh_goldens.sh)";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string runCanonical(const std::string& name) {
  ScenarioSetup setup = makeScenario(canonicalSpec(name));
  return scenarioCsv(runScenario(*setup.plant, *setup.policy, setup.config));
}

class ScenarioGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioGolden, ReplaysByteIdenticallyAtAnyLaneCount) {
  const std::string name = GetParam();
  const std::string golden =
      readFile(std::string(NANO_GOLDEN_DIR) + "/scenario_" + name + ".csv");
  ASSERT_FALSE(golden.empty());
  const int before = exec::threadCount();
  for (int lanes : {1, 2, 8}) {
    exec::setGlobalThreadCount(lanes);
    EXPECT_EQ(runCanonical(name), golden) << name << " at " << lanes
                                          << " lanes";
  }
  exec::setGlobalThreadCount(before);
}

INSTANTIATE_TEST_SUITE_P(Canonical, ScenarioGolden,
                         ::testing::Values("dtm", "dvfs", "wakeup"));

}  // namespace
}  // namespace nano::scenario
