#include "scenario/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "scenario/plant.h"
#include "thermal/workload.h"

namespace nano::scenario {
namespace {

ScenarioSpec smallSpec(const std::string& scenario) {
  ScenarioSpec spec;
  spec.scenario = scenario;
  spec.steps = 400;
  spec.traceStride = 50;
  return spec;
}

TEST(Plant, CachesByConfig) {
  Plant::clearCache();
  const PlantConfig config;
  const auto a = Plant::forConfig(config);
  const auto b = Plant::forConfig(config);
  EXPECT_EQ(a.get(), b.get());
  PlantConfig other = config;
  other.seed = 2;
  const auto c = Plant::forConfig(other);
  EXPECT_NE(a.get(), c.get());
}

TEST(Plant, PhysicalResponsesAreSane) {
  const auto plant = Plant::forConfig(PlantConfig{});
  const tech::TechNode& node = plant->node();
  EXPECT_GT(plant->clockPeriod(), 0.0);
  EXPECT_GT(plant->gateCount(), 0);
  EXPECT_GT(plant->endpointCount(), 0);
  EXPECT_GT(plant->fractionFasterThanHalf(), 0.0);

  // delayScale is normalized against the worst case over the operating
  // temperature range at nominal Vdd: never above 1 there.
  for (double t = node.tAmbient; t <= node.tjMax; t += 5.0) {
    EXPECT_LE(plant->delayScale(1.0, t), 1.0 + 1e-12) << t;
  }
  // Lower supply -> slower (the Vdd-delay feedback path).
  EXPECT_GT(plant->delayScale(0.8, node.tjMax),
            plant->delayScale(1.0, node.tjMax));
  EXPECT_GT(plant->delayScale(0.6, node.tjMax),
            plant->delayScale(0.8, node.tjMax));

  // Hotter -> leakier (the leakage-temperature feedback path), and the
  // normalization point is exactly 1.
  EXPECT_DOUBLE_EQ(plant->leakageScale(1.0, node.tjMax), 1.0);
  EXPECT_GT(plant->leakageScale(1.0, node.tjMax),
            plant->leakageScale(1.0, node.tAmbient));

  // IR drop scales linearly with power and inversely with Vdd squared.
  const double p = node.maxPower;
  EXPECT_NEAR(plant->irDropFraction(0.5 * p, 1.0),
              0.5 * plant->irDropFraction(p, 1.0), 1e-15);
  EXPECT_GT(plant->irDropFraction(p, 0.8), plant->irDropFraction(p, 1.0));
  EXPECT_DOUBLE_EQ(plant->irDropFraction(p, 1.0), plant->baseDropFraction());

  // Wake-up rush: proportional to dI/dt through the bump inductance.
  const double rush = plant->rushNoiseFraction(10.0, 5e-9, 1.0);
  EXPECT_GT(rush, 0.0);
  EXPECT_NEAR(plant->rushNoiseFraction(20.0, 5e-9, 1.0), 2.0 * rush,
              1e-12 * rush);
  EXPECT_DOUBLE_EQ(plant->rushNoiseFraction(0.0, 5e-9, 1.0), 0.0);

  // Rails are sized to hold the noise budget at full load, nominal V.
  EXPECT_LT(plant->baseDropFraction(), 0.05);
}

TEST(Scenario, RejectsBadRunConfig) {
  const auto plant = Plant::forConfig(PlantConfig{});
  TableDvfsPolicy policy({.levels = {{1.0, 1.0}}});
  ScenarioConfig config;
  config.workload = thermal::powerVirus(0.01);
  config.dt = 0.0;
  EXPECT_THROW(runScenario(*plant, policy, config), std::invalid_argument);
  config.dt = 50e-6;
  config.traceStride = 0;
  EXPECT_THROW(runScenario(*plant, policy, config), std::invalid_argument);
  config.traceStride = 100;
  config.workload.phases.clear();
  EXPECT_THROW(runScenario(*plant, policy, config), std::invalid_argument);
}

TEST(Scenario, EveryStepEvaluatesAllThreeChecks) {
  ScenarioSetup setup = makeScenario(smallSpec("dtm"));
  const ScenarioResult r =
      runScenario(*setup.plant, *setup.policy, setup.config);
  EXPECT_EQ(r.steps, 400);
  EXPECT_EQ(r.checksEvaluated, 3 * r.steps);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.violationCount, 0);
  EXPECT_GT(r.energyJ, 0.0);
  EXPECT_GT(r.maxTemperatureK, setup.plant->node().tAmbient);
  EXPECT_FALSE(r.trace.empty());
}

TEST(Scenario, RunsAreDeterministic) {
  ScenarioSetup a = makeScenario(smallSpec("dvfs"));
  ScenarioSetup b = makeScenario(smallSpec("dvfs"));
  const ScenarioResult ra = runScenario(*a.plant, *a.policy, a.config);
  const ScenarioResult rb = runScenario(*b.plant, *b.policy, b.config);
  EXPECT_EQ(scenarioCsv(ra), scenarioCsv(rb));
  EXPECT_DOUBLE_EQ(ra.energyJ, rb.energyJ);
}

TEST(Scenario, DvfsScenarioSavesEnergy) {
  ScenarioSetup setup = makeScenario(smallSpec("dvfs"));
  const ScenarioResult r =
      runScenario(*setup.plant, *setup.policy, setup.config);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.energySavings(), 0.05);
  EXPECT_GT(r.vddSteps, 0);
}

TEST(Scenario, WakeupScenarioGatesAndRushes) {
  ScenarioSetup setup = makeScenario(smallSpec("wakeup"));
  const ScenarioResult r =
      runScenario(*setup.plant, *setup.policy, setup.config);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.gateEvents, 0);
  EXPECT_GT(r.peakRushFraction, 0.0);
}

TEST(Scenario, FailFastStopsAtFirstViolation) {
  ScenarioSetup setup = makeScenario(smallSpec("dtm"));
  setup.config.limits.maxTemperatureK =
      setup.plant->node().tAmbient + 0.5;  // unreachable budget
  setup.config.failFast = true;
  const ScenarioResult r =
      runScenario(*setup.plant, *setup.policy, setup.config);
  EXPECT_FALSE(r.ok);
  EXPECT_GE(r.violationCount, 1);
  EXPECT_LT(r.steps, 400);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations.front().kind, CheckKind::Temperature);
}

TEST(Scenario, ViolationRecordingIsCapped) {
  ScenarioSetup setup = makeScenario(smallSpec("dtm"));
  setup.config.limits.maxTemperatureK = setup.plant->node().tAmbient + 0.5;
  const ScenarioResult r =
      runScenario(*setup.plant, *setup.policy, setup.config);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.violationCount, kMaxViolationsRecorded);
  EXPECT_EQ(static_cast<int>(r.violations.size()), kMaxViolationsRecorded);
}

TEST(Scenario, CsvIsHeaderPlusDecimatedRows) {
  ScenarioSetup setup = makeScenario(smallSpec("dtm"));
  const ScenarioResult r =
      runScenario(*setup.plant, *setup.policy, setup.config);
  const std::string csv = scenarioCsv(r);
  EXPECT_EQ(csv.rfind("time_s,demand,freq_fraction,vdd_fraction,gated,"
                      "power_w,temperature_k,slack_ps,ir_drop_fraction,"
                      "rush_fraction,violations\n",
                      0),
            0u);
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(rows, 1 + static_cast<long>(r.trace.size()));
}

TEST(MakeScenario, ValidatesSpec) {
  ScenarioSpec bad = smallSpec("dtm");
  bad.scenario = "unknown";
  EXPECT_THROW(makeScenario(bad), std::invalid_argument);
  bad = smallSpec("dtm");
  bad.steps = 0;
  EXPECT_THROW(makeScenario(bad), std::invalid_argument);
  bad = smallSpec("dtm");
  bad.dtUs = -1.0;
  EXPECT_THROW(makeScenario(bad), std::invalid_argument);
  bad = smallSpec("dtm");
  bad.knobA = 100.0;  // outside the dtm throttle-factor range
  EXPECT_THROW(makeScenario(bad), std::invalid_argument);
}

TEST(MakeScenario, KnobsParameterizeThePolicy) {
  ScenarioSpec spec = smallSpec("dtm");
  spec.knobA = 0.7;  // throttle factor
  ScenarioSetup setup = makeScenario(spec);
  const auto* dtm = dynamic_cast<const ReactiveDtmPolicy*>(setup.policy.get());
  ASSERT_NE(dtm, nullptr);
  EXPECT_DOUBLE_EQ(dtm->config().throttleFactor, 0.7);
}

TEST(MakeScenario, DefaultPoliciesAndRanges) {
  EXPECT_STREQ(defaultPolicyFor("dtm"), "dtm");
  EXPECT_STREQ(defaultPolicyFor("dvfs"), "dvfs");
  EXPECT_STREQ(defaultPolicyFor("wakeup"), "dvfs");
  EXPECT_THROW(defaultPolicyFor("nope"), std::invalid_argument);
  for (const char* policy : {"dtm", "dvfs", "explore"}) {
    const KnobRange r = knobRangeFor(policy);
    EXPECT_LT(r.aLo, r.aHi) << policy;
    EXPECT_LT(r.bLo, r.bHi) << policy;
  }
  EXPECT_THROW(knobRangeFor("nope"), std::invalid_argument);
}

TEST(MakeScenario, CanonicalSpecsResolve) {
  for (const char* name : {"dtm", "dvfs", "wakeup"}) {
    const ScenarioSpec spec = canonicalSpec(name);
    EXPECT_EQ(spec.scenario, name);
    EXPECT_EQ(spec.steps, 4000);
    EXPECT_EQ(spec.traceStride, 50);
  }
  EXPECT_THROW(canonicalSpec("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace nano::scenario
