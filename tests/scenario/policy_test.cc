#include "scenario/policy.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace nano::scenario {
namespace {

PolicyObservation obsAt(double timeS, double temperatureK,
                        double demand = 0.5) {
  PolicyObservation o;
  o.timeS = timeS;
  o.temperatureK = temperatureK;
  o.demandFraction = demand;
  o.clockPeriodS = 250e-12;
  o.slackS = 25e-12;
  return o;
}

TEST(ReactiveDtmPolicy, TripsAboveAndReleasesBelowHysteresis) {
  ReactiveDtmPolicy::Config cfg;
  cfg.tripTemperatureK = 350.0;
  cfg.hysteresisK = 3.0;
  cfg.throttleFactor = 0.5;
  cfg.sensorDelayS = 0.0;  // instant actuation for the state-machine test
  ReactiveDtmPolicy policy(cfg);

  EXPECT_DOUBLE_EQ(policy.decide(obsAt(0.0, 340.0)).freqFraction, 1.0);
  EXPECT_DOUBLE_EQ(policy.decide(obsAt(1e-4, 350.5)).freqFraction, 0.5);
  // Inside the hysteresis band: stays throttled.
  EXPECT_DOUBLE_EQ(policy.decide(obsAt(2e-4, 348.0)).freqFraction, 0.5);
  // Below trip - hysteresis: releases.
  EXPECT_DOUBLE_EQ(policy.decide(obsAt(3e-4, 346.5)).freqFraction, 1.0);
}

TEST(ReactiveDtmPolicy, SensorDelayDefersActuation) {
  ReactiveDtmPolicy::Config cfg;
  cfg.tripTemperatureK = 350.0;
  cfg.sensorDelayS = 100e-6;
  ReactiveDtmPolicy policy(cfg);

  // Trip observed at t=0 but the actuation path is 100 us long.
  EXPECT_DOUBLE_EQ(policy.decide(obsAt(0.0, 351.0)).freqFraction, 1.0);
  EXPECT_DOUBLE_EQ(policy.decide(obsAt(50e-6, 351.0)).freqFraction, 1.0);
  EXPECT_DOUBLE_EQ(policy.decide(obsAt(120e-6, 351.0)).freqFraction, 0.5);
}

TEST(ReactiveDtmPolicy, ScaleVddTracksThrottle) {
  ReactiveDtmPolicy::Config cfg;
  cfg.tripTemperatureK = 350.0;
  cfg.sensorDelayS = 0.0;
  cfg.scaleVdd = true;
  ReactiveDtmPolicy policy(cfg);
  const Actuation a = policy.decide(obsAt(0.0, 351.0));
  EXPECT_DOUBLE_EQ(a.freqFraction, 0.5);
  EXPECT_DOUBLE_EQ(a.vddFraction, 0.5);

  policy.reset();
  const Actuation fresh = policy.decide(obsAt(0.0, 340.0));
  EXPECT_DOUBLE_EQ(fresh.freqFraction, 1.0);
  EXPECT_DOUBLE_EQ(fresh.vddFraction, 1.0);
}

TEST(TableDvfsPolicy, RejectsEmptyTable) {
  EXPECT_THROW(TableDvfsPolicy(TableDvfsPolicy::Config{}),
               std::invalid_argument);
}

TEST(TableDvfsPolicy, PicksLowestPowerAdmissibleLevel) {
  TableDvfsPolicy::Config cfg;
  cfg.levels = {{0.4, 0.7}, {1.0, 1.0}, {0.6, 0.8}, {0.8, 0.9}};
  TableDvfsPolicy policy(cfg);
  const Actuation a = policy.decide(obsAt(0.0, 320.0, 0.55));
  EXPECT_DOUBLE_EQ(a.freqFraction, 0.6);
  EXPECT_DOUBLE_EQ(a.vddFraction, 0.8);
}

TEST(TableDvfsPolicy, DemandAboveAllLevelsUsesFastest) {
  TableDvfsPolicy::Config cfg;
  cfg.levels = {{0.25, 0.6}, {0.5, 0.7}};
  TableDvfsPolicy policy(cfg);
  const Actuation a = policy.decide(obsAt(0.0, 320.0, 0.9));
  EXPECT_DOUBLE_EQ(a.freqFraction, 0.5);
}

TEST(TableDvfsPolicy, GatesBelowThreshold) {
  TableDvfsPolicy::Config cfg;
  cfg.levels = {{1.0, 1.0}, {0.5, 0.7}};
  cfg.gateBelowDemand = 0.1;
  TableDvfsPolicy policy(cfg);
  EXPECT_TRUE(policy.decide(obsAt(0.0, 320.0, 0.05)).clockGate);
  EXPECT_FALSE(policy.decide(obsAt(0.0, 320.0, 0.5)).clockGate);
}

TEST(ExploreDvsPolicy, StepsDownOnlyAfterHoldAndRetreatsImmediately) {
  ExploreDvsPolicy::Config cfg;
  cfg.vddMin = 0.7;
  cfg.vddStep = 0.05;
  cfg.holdSteps = 4;
  cfg.temperatureLimitK = 360.0;
  ExploreDvsPolicy policy(cfg);

  // Comfortable margins: hold for holdSteps - 1 calls, step down on the
  // call that completes the hold window.
  PolicyObservation comfy = obsAt(0.0, 320.0);
  comfy.slackS = 100e-12;  // way above 8 % of 250 ps
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(policy.decide(comfy).vddFraction, 1.0) << i;
  }
  const Actuation down = policy.decide(comfy);
  EXPECT_DOUBLE_EQ(down.vddFraction, 0.95);
  EXPECT_DOUBLE_EQ(down.freqFraction, down.vddFraction);

  // Tight slack: immediate retreat upward.
  PolicyObservation tight = comfy;
  tight.slackS = 1e-12;
  EXPECT_DOUBLE_EQ(policy.decide(tight).vddFraction, 1.0);
}

TEST(ExploreDvsPolicy, NeverExploresBelowFloor) {
  ExploreDvsPolicy::Config cfg;
  cfg.vddMin = 0.9;
  cfg.vddStep = 0.05;
  cfg.holdSteps = 1;
  cfg.temperatureLimitK = 360.0;
  ExploreDvsPolicy policy(cfg);
  PolicyObservation comfy = obsAt(0.0, 320.0);
  comfy.slackS = 100e-12;
  double lowest = 1.0;
  for (int i = 0; i < 50; ++i) {
    lowest = std::min(lowest, policy.decide(comfy).vddFraction);
  }
  EXPECT_GE(lowest, 0.9 - 1e-12);
}

}  // namespace
}  // namespace nano::scenario
