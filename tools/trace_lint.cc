// trace_lint — validate a Chrome trace-event JSON file produced by
// `nanod --trace`: the document must parse, every synchronous begin must
// have its matching end (LIFO per thread), every async begin must pair
// with an end, and each traced request's queue_wait + work + emit phases
// must account for its wall time exactly. Exit 0 when clean, 1 otherwise.
//
//   trace_lint out.json
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "svc/tracecheck.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: trace_lint TRACE.json\n";
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::cerr << "trace_lint: cannot open " << argv[1] << '\n';
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  const nano::svc::TraceCheckResult result =
      nano::svc::validateChromeTrace(json);
  if (!result.ok) {
    std::cerr << "trace_lint: " << argv[1] << ": " << result.error << '\n';
    return 1;
  }

  std::size_t accounted = 0;
  std::size_t unaccounted = 0;
  for (const auto& [traceId, phases] : result.requests) {
    if (phases.accounted()) {
      ++accounted;
    } else {
      ++unaccounted;
      std::cerr << "trace_lint: request trace=" << traceId
                << ": phases do not account for wall time (request="
                << phases.requestNs << "ns queue_wait=" << phases.queueWaitNs
                << "ns work=" << phases.workNs << "ns emit=" << phases.emitNs
                << "ns)\n";
    }
  }
  std::cout << "trace_lint: " << argv[1] << ": " << result.events
            << " events, " << result.syncPairs << " sync pairs, "
            << result.asyncPairs << " async pairs, " << accounted
            << " requests fully accounted\n";
  return unaccounted == 0 ? 0 : 1;
}
