// nanoc — minimal replay client for a socket-mode nanod. Streams stdin to
// the server on a writer thread, half-closes, and copies everything the
// server sends back to stdout until EOF:
//
//   nanoc 127.0.0.1:9201 < requests.jsonl > responses.jsonl
//   nanoc --unix /tmp/nanod.sock < requests.jsonl
//
// Reading and writing run concurrently so a response stream larger than
// the kernel's socket buffers cannot deadlock the replay; CI's loopback
// smoke test byte-diffs the output against the stdin-mode golden.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

namespace {

void usage(std::ostream& os) {
  os << "usage: nanoc HOST:PORT < requests.jsonl > responses.jsonl\n"
        "       nanoc --unix PATH < requests.jsonl > responses.jsonl\n";
}

int connectTcp(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "nanoc: expected HOST:PORT, got '" << spec << "'\n";
    return -1;
  }
  const std::string host = spec.substr(0, colon);
  const int port = std::atoi(spec.c_str() + colon + 1);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("nanoc: socket");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::cerr << "nanoc: invalid host '" << host << "' (IPv4 dotted quad)\n";
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("nanoc: connect");
    ::close(fd);
    return -1;
  }
  return fd;
}

int connectUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "nanoc: unix socket path too long: " << path << '\n';
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("nanoc: socket");
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("nanoc: connect");
    ::close(fd);
    return -1;
  }
  return fd;
}

bool sendAll(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t put = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(put);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int fd = -1;
  if (argc == 2 && std::string(argv[1]) == "--help") {
    usage(std::cout);
    return 0;
  }
  if (argc == 2) {
    fd = connectTcp(argv[1]);
  } else if (argc == 3 && std::string(argv[1]) == "--unix") {
    fd = connectUnix(argv[2]);
  } else {
    usage(std::cerr);
    return 2;
  }
  if (fd < 0) return 1;

  std::thread writer([fd] {
    std::string line;
    bool ok = true;
    while (ok && std::getline(std::cin, line)) {
      line.push_back('\n');
      ok = sendAll(fd, line.data(), line.size());
    }
    // Half-close: the server sees EOF, drains what it has, responds to
    // everything, and closes — which ends the read loop below.
    ::shutdown(fd, SHUT_WR);
  });

  char buf[16384];
  while (true) {
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    std::fwrite(buf, 1, static_cast<std::size_t>(got), stdout);
  }
  std::fflush(stdout);
  writer.join();
  ::close(fd);
  return 0;
}
