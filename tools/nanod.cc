// nanod — the batched, caching evaluation server over the model library.
// Reads one JSON request per line from stdin (or a file via --input) and
// writes one JSON response per line to stdout, in input order. See
// docs/SERVICE.md for the request schema.
//
//   echo '{"id":"p1","kind":"design_point","params":{"vdd":0.5,"vth":0.15}}' |
//     nanod
//
// Diagnostics (--stats, --report) go to stderr so stdout stays a pure
// response stream suitable for golden diffs.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/obs.h"
#include "svc/server.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: nanod [options] < requests.jsonl > responses.jsonl\n"
        "  --input FILE    read requests from FILE instead of stdin\n"
        "  --cache N       result-cache entries (default 4096; 0 disables)\n"
        "  --queue N       scheduler queue bound before shedding (default 4096)\n"
        "  --batch N       max requests per dispatch batch (default 64)\n"
        "  --block         block the reader when the queue is full instead of\n"
        "                  shedding (replay/batch mode)\n"
        "  --stats         print a one-line session summary to stderr\n"
        "  --report        enable observability and print the run report to\n"
        "                  stderr at exit (NANO_OBS=1 also enables metrics)\n"
        "  --help          this text\n";
}

long parseCount(const std::string& flag, const char* value) {
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || n < 0) {
    std::cerr << "nanod: " << flag << " expects a non-negative integer, got '"
              << value << "'\n";
    std::exit(2);
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  nano::svc::ServiceOptions options;
  std::string inputPath;
  bool stats = false;
  bool report = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "nanod: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--input") {
      inputPath = value();
    } else if (arg == "--cache") {
      options.cacheEntries = static_cast<std::size_t>(parseCount(arg, value()));
    } else if (arg == "--queue") {
      options.scheduler.maxQueue =
          static_cast<std::size_t>(parseCount(arg, value()));
    } else if (arg == "--batch") {
      options.scheduler.maxBatch =
          static_cast<std::size_t>(parseCount(arg, value()));
    } else if (arg == "--block") {
      options.blockWhenFull = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--report") {
      report = true;
      nano::obs::setEnabled(true);
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "nanod: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  std::ifstream file;
  if (!inputPath.empty()) {
    file.open(inputPath);
    if (!file) {
      std::cerr << "nanod: cannot open " << inputPath << '\n';
      return 1;
    }
  }
  std::istream& in = inputPath.empty() ? std::cin : file;

  nano::svc::Service service(options);
  const nano::svc::ServerStats s = nano::svc::runServer(in, std::cout, service);

  if (stats) {
    std::cerr << "nanod: " << s.lines << " requests: " << s.ok << " ok, "
              << s.errors << " error, " << s.invalid << " invalid, " << s.shed
              << " shed, " << s.timeouts << " timeout\n";
  }
  if (report) nano::obs::printRunReport(std::cerr);
  return 0;
}
