// nanod — the batched, caching evaluation server over the model library.
// Reads one JSON request per line from stdin (or a file via --input) and
// writes one JSON response per line to stdout, in input order. See
// docs/SERVICE.md for the request schema.
//
//   echo '{"id":"p1","kind":"design_point","params":{"vdd":0.5,"vth":0.15}}' |
//     nanod
//
// With --listen and/or --unix, nanod serves the same line protocol to many
// concurrent socket clients instead (each connection gets its responses in
// its own request order); SIGINT/SIGTERM drains in-flight work and exits.
//
//   nanod --listen 127.0.0.1:0 --port-file /tmp/nanod.port &
//   nanoc 127.0.0.1:$(cat /tmp/nanod.port) < requests.jsonl
//
// Diagnostics (--stats, --report) go to stderr so stdout stays a pure
// response stream suitable for golden diffs. Tracing (--trace) and the
// Prometheus export (--metrics) write to their own files at exit for the
// same reason.
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "net/server.h"
#include "obs/obs.h"
#include "svc/server.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: nanod [options] < requests.jsonl > responses.jsonl\n"
        "  --input FILE    read requests from FILE instead of stdin\n"
        "  --cache N       result-cache entries (default 4096; 0 disables)\n"
        "  --queue N       scheduler queue bound before shedding (default 4096)\n"
        "  --batch N       max requests per dispatch batch (default 64)\n"
        "  --block         block the reader when the queue is full instead of\n"
        "                  shedding (replay/batch mode)\n"
        "  --stats         print a session summary and the per-request phase\n"
        "                  decomposition (queue_wait/dedup_join/eval/emit) to\n"
        "                  stderr (enables observability)\n"
        "  --report        enable observability and print the run report to\n"
        "                  stderr at exit (NANO_OBS=1 also enables metrics)\n"
        "  --metrics FILE  write the Prometheus text exposition to FILE at\n"
        "                  exit (enables observability)\n"
        "  --trace FILE    record request-scoped trace events and write a\n"
        "                  Chrome trace-event JSON timeline to FILE at exit\n"
        "  --slow-log FILE append a JSONL record for every request slower\n"
        "                  than the --slow-ms threshold (enables\n"
        "                  observability)\n"
        "  --slow-ms MS    slow-request threshold in ms (default 50)\n"
        "socket mode (replaces the stdin loop; both listeners may be given):\n"
        "  --listen [HOST:]PORT  serve TCP clients on HOST:PORT (default host\n"
        "                  127.0.0.1; port 0 binds an ephemeral port)\n"
        "  --unix PATH     serve Unix-domain clients at PATH\n"
        "  --port-file FILE  write the bound TCP port to FILE once listening\n"
        "  --max-clients N   admission limit; excess connections get one\n"
        "                  status:\"shed\" line and are closed (default 64)\n"
        "  --idle-ms MS    close connections idle for MS ms (default 0 = never)\n"
        "  --emit-queue N  per-session pending-response bound before the\n"
        "                  pipeline pushes back (default 8192)\n"
        "  --help          this text\n";
}

nano::net::NetServer* gServer = nullptr;

// Async-signal-safe: requestStop() is an atomic store plus one write()
// to the server's self-pipe.
void handleStopSignal(int) {
  if (gServer != nullptr) gServer->requestStop();
}

/// Split "[HOST:]PORT" for --listen.
void parseListen(const char* value, std::string& host, int& port) {
  const std::string spec = value;
  const std::size_t colon = spec.rfind(':');
  std::string portPart = spec;
  if (colon != std::string::npos) {
    host = spec.substr(0, colon);
    portPart = spec.substr(colon + 1);
  }
  char* end = nullptr;
  const long p = std::strtol(portPart.c_str(), &end, 10);
  if (end == portPart.c_str() || *end != '\0' || p < 0 || p > 65535) {
    std::cerr << "nanod: --listen expects [HOST:]PORT, got '" << spec << "'\n";
    std::exit(2);
  }
  port = static_cast<int>(p);
}

long parseCount(const std::string& flag, const char* value) {
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || n < 0) {
    std::cerr << "nanod: " << flag << " expects a non-negative integer, got '"
              << value << "'\n";
    std::exit(2);
  }
  return n;
}

double parseMs(const std::string& flag, const char* value) {
  char* end = nullptr;
  const double ms = std::strtod(value, &end);
  if (end == value || *end != '\0' || !(ms >= 0.0)) {
    std::cerr << "nanod: " << flag << " expects a non-negative number, got '"
              << value << "'\n";
    std::exit(2);
  }
  return ms;
}

std::ofstream openOrDie(const std::string& path, const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "nanod: cannot open " << what << " file " << path << '\n';
    std::exit(1);
  }
  return out;
}

void printPhase(std::ostream& os, const char* label, const char* timerName) {
  const nano::obs::TimerStat::Snapshot s = nano::obs::MetricsRegistry::instance()
                                               .timer(timerName)
                                               .snapshot();
  if (s.count == 0) return;
  os << "nanod:   " << label << ": n=" << s.count << " mean=" << s.mean * 1e3
     << "ms p50=" << s.p50 * 1e3 << "ms p99=" << s.p99 * 1e3 << "ms\n";
}

}  // namespace

int main(int argc, char** argv) {
  nano::svc::ServiceOptions options;
  nano::svc::ServerOptions serverOptions;
  nano::net::NetServerOptions netOptions;
  std::string inputPath;
  std::string tracePath;
  std::string metricsPath;
  std::string slowLogPath;
  std::string portFilePath;
  bool stats = false;
  bool report = false;
  bool block = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "nanod: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--input") {
      inputPath = value();
    } else if (arg == "--cache") {
      options.cacheEntries = static_cast<std::size_t>(parseCount(arg, value()));
    } else if (arg == "--queue") {
      options.scheduler.maxQueue =
          static_cast<std::size_t>(parseCount(arg, value()));
    } else if (arg == "--batch") {
      options.scheduler.maxBatch =
          static_cast<std::size_t>(parseCount(arg, value()));
    } else if (arg == "--block") {
      block = true;
    } else if (arg == "--listen") {
      parseListen(value(), netOptions.tcpHost, netOptions.tcpPort);
    } else if (arg == "--unix") {
      netOptions.unixPath = value();
    } else if (arg == "--port-file") {
      portFilePath = value();
    } else if (arg == "--max-clients") {
      netOptions.maxClients =
          static_cast<std::size_t>(parseCount(arg, value()));
    } else if (arg == "--idle-ms") {
      netOptions.idleTimeoutMs = static_cast<int>(parseCount(arg, value()));
    } else if (arg == "--emit-queue") {
      serverOptions.emitQueueLimit =
          static_cast<std::size_t>(parseCount(arg, value()));
    } else if (arg == "--stats") {
      stats = true;
      nano::obs::setEnabled(true);
    } else if (arg == "--report") {
      report = true;
      nano::obs::setEnabled(true);
    } else if (arg == "--metrics") {
      metricsPath = value();
      nano::obs::setEnabled(true);
    } else if (arg == "--trace") {
      tracePath = value();
      nano::obs::setTracingEnabled(true);
    } else if (arg == "--slow-log") {
      slowLogPath = value();
      nano::obs::setEnabled(true);
    } else if (arg == "--slow-ms") {
      serverOptions.slowThresholdMs = parseMs(arg, value());
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "nanod: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  const bool socketMode = netOptions.tcpPort >= 0 || !netOptions.unixPath.empty();
  if (block) {
    if (socketMode) {
      // Blocking submit on the shared receive thread would stall every
      // connection behind one full queue; sockets get read pauses instead.
      std::cerr << "nanod: --block is ignored in socket mode "
                   "(backpressure pauses reads per connection)\n";
    } else {
      options.blockWhenFull = true;
    }
  }

  std::ifstream file;
  if (!inputPath.empty()) {
    file.open(inputPath);
    if (!file) {
      std::cerr << "nanod: cannot open " << inputPath << '\n';
      return 1;
    }
  }
  std::istream& in = inputPath.empty() ? std::cin : file;

  std::ofstream slowLog;
  if (!slowLogPath.empty()) {
    slowLog = openOrDie(slowLogPath, "slow-log");
    serverOptions.slowLog = &slowLog;
  }

  nano::svc::ServerStats s;
  {
    // Scope the service so the scheduler stops (joining its batcher and
    // finishing any in-flight exec region) before the journal export:
    // otherwise the trace could be snapshotted with the last region's
    // spans still open.
    nano::svc::Service service(options);
    if (socketMode) {
      netOptions.session = serverOptions;
      nano::net::NetServer server(service, netOptions);
      std::string error;
      if (!server.start(error)) {
        std::cerr << "nanod: " << error << '\n';
        return 1;
      }
      if (netOptions.tcpPort >= 0) {
        std::cerr << "nanod: listening on " << netOptions.tcpHost << ':'
                  << server.tcpPort() << '\n';
      }
      if (!netOptions.unixPath.empty()) {
        std::cerr << "nanod: listening on unix:" << netOptions.unixPath << '\n';
      }
      if (!portFilePath.empty()) {
        // Written only once the listener is live, so "the file exists"
        // means "connect will succeed" — no polling races in scripts.
        std::ofstream portFile = openOrDie(portFilePath, "port");
        portFile << server.tcpPort() << '\n';
      }
      gServer = &server;
      std::signal(SIGINT, handleStopSignal);
      std::signal(SIGTERM, handleStopSignal);
      server.wait();
      std::signal(SIGINT, SIG_DFL);
      std::signal(SIGTERM, SIG_DFL);
      gServer = nullptr;
      const nano::net::NetServerStats& ns = server.stats();
      s = ns.sessions;
      if (stats) {
        std::cerr << "nanod: connections: " << ns.accepted << " accepted, "
                  << ns.shedConnections << " shed, " << ns.idleCloses
                  << " idle-closed, " << ns.slowClientCloses
                  << " slow-client-closed, " << ns.closes << " closed\n";
      }
    } else {
      s = nano::svc::runServer(in, std::cout, service, serverOptions);
    }
  }

  if (stats) {
    std::cerr << "nanod: " << s.lines << " requests: " << s.ok << " ok, "
              << s.errors << " error, " << s.invalid << " invalid, " << s.shed
              << " shed, " << s.timeouts << " timeout, " << s.slow
              << " slow\n";
    std::cerr << "nanod: phase latency decomposition:\n";
    printPhase(std::cerr, "queue_wait", "svc/phase/queue_wait");
    printPhase(std::cerr, "dedup_join", "svc/phase/dedup_join");
    printPhase(std::cerr, "eval", "svc/phase/eval");
    printPhase(std::cerr, "emit", "svc/phase/emit");
    printPhase(std::cerr, "total", "svc/latency/total");
  }
  if (report) nano::obs::printRunReport(std::cerr);
  if (!metricsPath.empty()) {
    std::ofstream metrics = openOrDie(metricsPath, "metrics");
    nano::obs::exportPrometheus(metrics);
  }
  if (!tracePath.empty()) {
    std::ofstream trace = openOrDie(tracePath, "trace");
    nano::obs::exportChromeTrace(trace, nano::obs::journalSnapshot());
    if (const auto dropped = nano::obs::journalDropped(); dropped > 0) {
      std::cerr << "nanod: trace journal dropped " << dropped
                << " events (raise the per-thread buffer if this matters)\n";
    }
  }
  return 0;
}
