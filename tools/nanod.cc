// nanod — the batched, caching evaluation server over the model library.
// Reads one JSON request per line from stdin (or a file via --input) and
// writes one JSON response per line to stdout, in input order. See
// docs/SERVICE.md for the request schema.
//
//   echo '{"id":"p1","kind":"design_point","params":{"vdd":0.5,"vth":0.15}}' |
//     nanod
//
// Diagnostics (--stats, --report) go to stderr so stdout stays a pure
// response stream suitable for golden diffs. Tracing (--trace) and the
// Prometheus export (--metrics) write to their own files at exit for the
// same reason.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/obs.h"
#include "svc/server.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: nanod [options] < requests.jsonl > responses.jsonl\n"
        "  --input FILE    read requests from FILE instead of stdin\n"
        "  --cache N       result-cache entries (default 4096; 0 disables)\n"
        "  --queue N       scheduler queue bound before shedding (default 4096)\n"
        "  --batch N       max requests per dispatch batch (default 64)\n"
        "  --block         block the reader when the queue is full instead of\n"
        "                  shedding (replay/batch mode)\n"
        "  --stats         print a session summary and the per-request phase\n"
        "                  decomposition (queue_wait/dedup_join/eval/emit) to\n"
        "                  stderr (enables observability)\n"
        "  --report        enable observability and print the run report to\n"
        "                  stderr at exit (NANO_OBS=1 also enables metrics)\n"
        "  --metrics FILE  write the Prometheus text exposition to FILE at\n"
        "                  exit (enables observability)\n"
        "  --trace FILE    record request-scoped trace events and write a\n"
        "                  Chrome trace-event JSON timeline to FILE at exit\n"
        "  --slow-log FILE append a JSONL record for every request slower\n"
        "                  than the --slow-ms threshold (enables\n"
        "                  observability)\n"
        "  --slow-ms MS    slow-request threshold in ms (default 50)\n"
        "  --help          this text\n";
}

long parseCount(const std::string& flag, const char* value) {
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || n < 0) {
    std::cerr << "nanod: " << flag << " expects a non-negative integer, got '"
              << value << "'\n";
    std::exit(2);
  }
  return n;
}

double parseMs(const std::string& flag, const char* value) {
  char* end = nullptr;
  const double ms = std::strtod(value, &end);
  if (end == value || *end != '\0' || !(ms >= 0.0)) {
    std::cerr << "nanod: " << flag << " expects a non-negative number, got '"
              << value << "'\n";
    std::exit(2);
  }
  return ms;
}

std::ofstream openOrDie(const std::string& path, const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "nanod: cannot open " << what << " file " << path << '\n';
    std::exit(1);
  }
  return out;
}

void printPhase(std::ostream& os, const char* label, const char* timerName) {
  const nano::obs::TimerStat::Snapshot s = nano::obs::MetricsRegistry::instance()
                                               .timer(timerName)
                                               .snapshot();
  if (s.count == 0) return;
  os << "nanod:   " << label << ": n=" << s.count << " mean=" << s.mean * 1e3
     << "ms p50=" << s.p50 * 1e3 << "ms p99=" << s.p99 * 1e3 << "ms\n";
}

}  // namespace

int main(int argc, char** argv) {
  nano::svc::ServiceOptions options;
  nano::svc::ServerOptions serverOptions;
  std::string inputPath;
  std::string tracePath;
  std::string metricsPath;
  std::string slowLogPath;
  bool stats = false;
  bool report = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "nanod: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--input") {
      inputPath = value();
    } else if (arg == "--cache") {
      options.cacheEntries = static_cast<std::size_t>(parseCount(arg, value()));
    } else if (arg == "--queue") {
      options.scheduler.maxQueue =
          static_cast<std::size_t>(parseCount(arg, value()));
    } else if (arg == "--batch") {
      options.scheduler.maxBatch =
          static_cast<std::size_t>(parseCount(arg, value()));
    } else if (arg == "--block") {
      options.blockWhenFull = true;
    } else if (arg == "--stats") {
      stats = true;
      nano::obs::setEnabled(true);
    } else if (arg == "--report") {
      report = true;
      nano::obs::setEnabled(true);
    } else if (arg == "--metrics") {
      metricsPath = value();
      nano::obs::setEnabled(true);
    } else if (arg == "--trace") {
      tracePath = value();
      nano::obs::setTracingEnabled(true);
    } else if (arg == "--slow-log") {
      slowLogPath = value();
      nano::obs::setEnabled(true);
    } else if (arg == "--slow-ms") {
      serverOptions.slowThresholdMs = parseMs(arg, value());
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "nanod: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  std::ifstream file;
  if (!inputPath.empty()) {
    file.open(inputPath);
    if (!file) {
      std::cerr << "nanod: cannot open " << inputPath << '\n';
      return 1;
    }
  }
  std::istream& in = inputPath.empty() ? std::cin : file;

  std::ofstream slowLog;
  if (!slowLogPath.empty()) {
    slowLog = openOrDie(slowLogPath, "slow-log");
    serverOptions.slowLog = &slowLog;
  }

  nano::svc::ServerStats s;
  {
    // Scope the service so the scheduler stops (joining its batcher and
    // finishing any in-flight exec region) before the journal export:
    // otherwise the trace could be snapshotted with the last region's
    // spans still open.
    nano::svc::Service service(options);
    s = nano::svc::runServer(in, std::cout, service, serverOptions);
  }

  if (stats) {
    std::cerr << "nanod: " << s.lines << " requests: " << s.ok << " ok, "
              << s.errors << " error, " << s.invalid << " invalid, " << s.shed
              << " shed, " << s.timeouts << " timeout, " << s.slow
              << " slow\n";
    std::cerr << "nanod: phase latency decomposition:\n";
    printPhase(std::cerr, "queue_wait", "svc/phase/queue_wait");
    printPhase(std::cerr, "dedup_join", "svc/phase/dedup_join");
    printPhase(std::cerr, "eval", "svc/phase/eval");
    printPhase(std::cerr, "emit", "svc/phase/emit");
    printPhase(std::cerr, "total", "svc/latency/total");
  }
  if (report) nano::obs::printRunReport(std::cerr);
  if (!metricsPath.empty()) {
    std::ofstream metrics = openOrDie(metricsPath, "metrics");
    nano::obs::exportPrometheus(metrics);
  }
  if (!tracePath.empty()) {
    std::ofstream trace = openOrDie(tracePath, "trace");
    nano::obs::exportChromeTrace(trace, nano::obs::journalSnapshot());
    if (const auto dropped = nano::obs::journalDropped(); dropped > 0) {
      std::cerr << "nanod: trace journal dropped " << dropped
                << " events (raise the per-thread buffer if this matters)\n";
    }
  }
  return 0;
}
