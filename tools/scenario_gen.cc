// Regenerates the committed golden scenario traces: runs the three
// canonical closed-loop scenarios (DTM packaging-for-effective-worst-case,
// DVFS energy-vs-slack, wake-up rush current) and writes
// scenario_<name>.csv into the given directory (default golden/). With
// --summary, prints each run's summary instead of (or in addition to)
// writing files — the tuning view used when recalibrating policies.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "scenario/scenario.h"

namespace {

int fail(const char* message) {
  std::fprintf(stderr, "scenario_gen: %s\n", message);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string outDir = "golden";
  bool summary = false;
  bool write = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--summary") == 0) {
      summary = true;
    } else if (std::strcmp(argv[i], "--no-write") == 0) {
      write = false;
    } else if (argv[i][0] == '-') {
      return fail("usage: scenario_gen [outdir] [--summary] [--no-write]");
    } else {
      outDir = argv[i];
    }
  }

  for (const char* name : {"dtm", "dvfs", "wakeup"}) {
    const nano::scenario::ScenarioSpec spec =
        nano::scenario::canonicalSpec(name);
    nano::scenario::ScenarioSetup setup = nano::scenario::makeScenario(spec);
    const nano::scenario::ScenarioResult result = nano::scenario::runScenario(
        *setup.plant, *setup.policy, setup.config);
    if (summary) {
      std::printf(
          "%-6s ok=%d violations=%ld checks=%ld energy=%.4f J "
          "savings=%.3f throughput=%.4f maxT=%.2f K peakIR=%.5f "
          "peakRush=%.6f worstSlack=%.2f ps gate=%ld vddSteps=%ld "
          "baseDrop=%.5f clock=%.1f ps\n",
          name, result.ok ? 1 : 0, result.violationCount,
          result.checksEvaluated, result.energyJ, result.energySavings(),
          result.throughputFraction, result.maxTemperatureK,
          result.peakIrDropFraction, result.peakRushFraction,
          result.worstSlackS * 1e12, result.gateEvents, result.vddSteps,
          setup.plant->baseDropFraction(),
          setup.plant->clockPeriod() * 1e12);
    }
    if (!write) continue;
    const std::string path = outDir + "/scenario_" + name + ".csv";
    std::ofstream out(path, std::ios::binary);
    if (!out) return fail(("cannot open " + path).c_str());
    out << nano::scenario::scenarioCsv(result);
  }
  return 0;
}
