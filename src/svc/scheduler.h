// Admission and dispatch for the evaluation service: a bounded three-lane
// priority queue drained by one batcher thread that evaluates each batch
// on the nano::exec pool (requests within a batch run on parallel lanes;
// nested model parallelism runs inline, so there is no pool deadlock).
//
// Overload policy is reject-not-buffer: when the queue is full, submit()
// completes the request immediately with status "shed" instead of growing
// without bound or blocking the acceptor (submitBlocking() opts into
// waiting for space when the caller prefers backpressure to load loss).
// A request whose deadline expires while queued is completed with status
// "timeout" at dispatch time, without evaluation.
//
// Instrumented: svc/queue_depth + svc/queue_peak gauges, svc/batches and
// svc/shed and svc/timeouts counters, svc/batch_size sample distribution,
// and the svc/phase/queue_wait latency histogram. Each dispatched item's
// submit/dispatch/done timestamps are stamped onto its Response so the
// emitter can decompose per-request wall time.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "svc/request.h"

namespace nano::svc {

struct SchedulerOptions {
  /// Total queued requests across the three lanes before shedding.
  std::size_t maxQueue = 4096;
  /// Requests dispatched per exec batch. 1 degenerates to serial dispatch.
  std::size_t maxBatch = 64;
};

class Scheduler {
 public:
  /// `handler` turns one request into its response; it must be safe to
  /// call concurrently from exec lanes and must not throw (the service's
  /// cache+evaluate handler satisfies both).
  Scheduler(std::function<Response(const Request&)> handler,
            SchedulerOptions options = {});
  /// Drains everything still queued, then joins the batcher.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admit one request. Returns a future that completes when the request
  /// is evaluated (or refused). Never blocks: a full queue sheds, a
  /// stopped scheduler sheds with "scheduler stopped".
  std::future<Response> submit(Request request);

  /// Like submit(), but waits for queue space instead of shedding —
  /// client-side backpressure for trusted in-process callers.
  std::future<Response> submitBlocking(Request request);

  /// Block until every admitted request has completed.
  void drain();

  /// Stop accepting and finish queued work. Idempotent and thread-safe:
  /// any number of threads may call stop() concurrently (the socket
  /// server's signal-driven drain races the destructor here); exactly one
  /// joins the batcher and the rest block until the join completes.
  void stop();

  [[nodiscard]] std::size_t queueDepth() const;

 private:
  struct Item {
    Request request;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point deadline;
    bool hasDeadline = false;
    std::int64_t submitNs = 0;  ///< obs::timingNowNs() at admission
  };

  std::future<Response> enqueue(Request request, bool block);
  void batcherLoop();

  std::function<Response(const Request&)> handler_;
  SchedulerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable workCv_;   ///< batcher waits: work or stop
  std::condition_variable spaceCv_;  ///< submitBlocking waits: space
  std::condition_variable idleCv_;   ///< drain waits: empty and not busy
  std::array<std::deque<Item>, 3> lanes_;  ///< indexed by Priority
  std::size_t queued_ = 0;
  std::size_t inBatch_ = 0;  ///< items currently being evaluated
  std::size_t peakDepth_ = 0;
  bool stopping_ = false;
  std::once_flag joinOnce_;  ///< exactly one stop() joins the batcher
  std::thread batcher_;
};

}  // namespace nano::svc
