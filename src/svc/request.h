// Typed request/response layer of the evaluation service. A request names
// one model query — a paper figure/table, a design-space point or grid, a
// repeater/wire characterization, or a power-grid solve — with typed,
// default-filled parameters. Two requests asking the same question produce
// the same canonical key (admission fields like id/priority/deadline are
// excluded), which is what the result cache and in-flight deduplication
// key on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "obs/journal.h"
#include "svc/json.h"

namespace nano::svc {

/// Every query the service answers. Names on the wire are the lowercase
/// strings from kindName().
enum class RequestKind {
  Figure1,        ///< Pstat/Pdyn vs activity series (paper Figure 1)
  Figure2,        ///< dual-Vth scalability per node (Figure 2)
  Figure34,       ///< Vdd sweep under the three Vth policies (Figures 3-4)
  Figure5,        ///< IR-drop linewidth scaling rows (Figure 5)
  Table2,         ///< analytical Ioff-scaling table
  DesignPoint,    ///< one (Vdd, Vth) operating point
  DesignGrid,     ///< the full (Vdd, Vth) exploration grid
  DesignOptimum,  ///< constrained minimum-power point
  Repeater,       ///< optimal repeater insertion for a node's global wire
  Wire,           ///< per-length RC of a node's global wire
  GridSolve,      ///< one power-grid mesh solve
  NodeSummary,    ///< end-to-end roadmap-node characterization
  Sta,            ///< full STA of a generated netlist (flat SoA engine)
  Scenario,       ///< one closed-loop DTM/DVS scenario run
  ScenarioSweep,  ///< policy-knob grid of scenario runs (parallel sweep)
  Stats,          ///< live metrics snapshot of the serving process
};
inline constexpr int kRequestKindCount = 16;

/// Stable wire name ("figure1", "design_point", ...).
const char* kindName(RequestKind kind);
/// Reverse lookup; returns false for unknown names.
bool kindFromName(std::string_view name, RequestKind& out);

/// Largest accepted `deadline_ms` (one hour). Anything bigger is clamped
/// at parse time (and again defensively at enqueue time): an arbitrary
/// client double like 1e300 would otherwise overflow the duration_cast
/// into UB, and no realistic deadline is longer than this anyway.
inline constexpr double kMaxDeadlineMs = 3.6e6;

/// Admission priority: the scheduler drains High before Normal before Low.
enum class Priority { High, Normal, Low };
const char* priorityName(Priority priority);
bool priorityFromName(std::string_view name, Priority& out);

// Per-kind parameters. Fields default to the library's canonical values so
// a request may omit any of them; the canonical key is rendered from the
// filled struct, making {"points":9} and {} the same cache entry.

struct Fig1Params {
  int points = 9;
};
struct Fig2Params {};
struct Fig34Params {
  int nodeNm = 35;
  int points = 9;
  double activity = 0.1;
  double vddMin = 0.2;
};
struct Fig5Params {
  bool meshCheck = false;
};
struct Table2Params {};
struct DesignPointParams {
  int nodeNm = 35;
  double activity = 0.1;
  double vdd = 0.6;
  double vth = 0.2;
};
struct DesignGridParams {
  int nodeNm = 35;
  double activity = 0.1;
  double vddMin = 0.2;
  double vthMin = -0.05;
  double vthMax = 0.30;
  int vddSteps = 15;
  int vthSteps = 15;
};
struct DesignOptimumParams {
  DesignGridParams grid;
  double delayTarget = 1.0;
  double maxStaticFraction = 1.0;
};
struct RepeaterParams {
  int nodeNm = 35;
  double widthMultiple = 1.0;
};
struct WireParams {
  int nodeNm = 35;
  double widthMultiple = 1.0;
  bool matchSpacing = true;
};
struct GridSolveParams {
  int nodeNm = 35;
  double widthMultiple = 4.0;
  /// Bump pitch in um; 0 selects the node's minimum manufacturable pitch.
  double padPitchUm = 0.0;
  int subdivisions = 8;
  bool hotspot = true;
  /// "auto" | "jacobi" | "multigrid".
  std::string preconditioner = "auto";
};
struct NodeSummaryParams {
  int nodeNm = 35;
};
struct StaParams {
  int nodeNm = 35;
  /// Total gate target of the generated design slice (64 .. 2,000,000 —
  /// the service guards the upper end so one request cannot occupy an
  /// evaluation lane for minutes).
  int gates = 20000;
  /// Generator seed; same (node, gates, seed, blocks) => same netlist and
  /// bit-identical timing, so the result caches like any pure kind.
  int seed = 1;
  /// Pipeline blocks of the generated slice (depth spread).
  int blocks = 8;
};
struct ScenarioParams {
  int nodeNm = 35;
  /// Canonical scenario: "dtm" | "dvfs" | "wakeup" (workload + packaging).
  std::string scenario = "dtm";
  /// Policy plug-in: "" picks the scenario's default; else "dtm" | "dvfs"
  /// | "explore".
  std::string policy;
  /// Integration steps (1 .. 200,000 — the guard keeps one request from
  /// occupying an evaluation lane for minutes) of `dt_us` each.
  int steps = 2000;
  double dtUs = 50.0;
  /// Generated design slice sizing the plant's timing substrate.
  int gates = 2000;
  int seed = 1;
  int traceStride = 100;
  /// Include the decimated per-step trace in the payload (summaries only
  /// when false — sweeps always omit it).
  bool includeTrace = false;
  /// Policy tuning knobs (0 = policy default); meaning per policy:
  ///   dtm:     A = throttle factor,       B = trip margin below tjMax, K
  ///   dvfs:    A = level-voltage scale,   B = gate-below-demand threshold
  ///   explore: A = Vdd exploration floor, B = slack guard fraction
  double knobA = 0.0;
  double knobB = 0.0;
};
struct ScenarioSweepParams {
  /// Shared run configuration; knob_a/knob_b/include_trace are ignored
  /// (the sweep sets the knobs per variant and never returns traces).
  ScenarioParams base;
  /// Grid of policy-knob variants spanning the policy's knob ranges:
  /// axis_a x axis_b runs (1 .. 64 each, at most 4096 total).
  int axisA = 8;
  int axisB = 8;
};
struct StatsParams {
  /// Report counter increases since the previous stats snapshot instead of
  /// absolute values.
  bool delta = false;
};

using Params =
    std::variant<Fig1Params, Fig2Params, Fig34Params, Fig5Params, Table2Params,
                 DesignPointParams, DesignGridParams, DesignOptimumParams,
                 RepeaterParams, WireParams, GridSolveParams,
                 NodeSummaryParams, StaParams, ScenarioParams,
                 ScenarioSweepParams, StatsParams>;

/// Default-initialized parameters for a kind (what an empty "params"
/// object parses to).
Params defaultParams(RequestKind kind);

/// The wire-form "params" object of a filled param struct: every field
/// rendered in canonical order. Parsing it back under the same kind
/// reproduces the identical struct and canonical key — the round-trip
/// the request tests pin down for every registered kind.
JsonValue paramsJson(const Params& params);

/// One admitted request. `id` is an opaque client token echoed back on the
/// response; it plays no role in caching.
struct Request {
  std::string id;
  RequestKind kind = RequestKind::Figure1;
  Priority priority = Priority::Normal;
  /// Time budget in ms from admission to evaluation start; < 0 means none.
  /// 0 is deterministically "already expired" (used to test the timeout
  /// path without racing the clock).
  double deadlineMs = -1.0;
  Params params;
  /// Request identity for tracing. Assigned by the front end at parse time
  /// (runServer numbers lines) or by Service::submit for direct callers;
  /// excluded from the canonical key so it never affects caching.
  obs::TraceContext trace;

  /// Canonical content key: kind plus every parameter (defaults filled) in
  /// a fixed order with round-trip double formatting. Equal keys <=> same
  /// evaluation result.
  [[nodiscard]] std::string canonicalKey() const;
  /// FNV-1a 64-bit hash of canonicalKey(); shard selector for the cache.
  [[nodiscard]] std::uint64_t contentHash() const;
};

/// FNV-1a 64-bit (exposed for tests and the cache's shard selection).
std::uint64_t fnv1a64(std::string_view bytes);

/// Parse one JSONL request: {"id":..., "kind":..., "priority":...,
/// "deadline_ms":..., "params":{...}}. Unknown kinds, malformed JSON,
/// wrong-typed or unknown parameter fields all fail with a message (the
/// server turns that into a status:"invalid" response). On failure `out.id`
/// still carries the request id when one could be extracted.
bool parseRequest(const std::string& line, Request& out, std::string& error);

/// How a request left the service.
enum class ResponseStatus {
  Ok,       ///< evaluated (possibly from cache); `data` holds the payload
  Error,    ///< evaluation failed deterministically (bad node, solver, ...)
  Invalid,  ///< the request never parsed; nothing was evaluated
  Shed,     ///< rejected at admission: queue full (backpressure)
  Timeout,  ///< deadline expired before evaluation started
};
const char* statusName(ResponseStatus status);

/// Content-determined result of evaluating a request: what the cache
/// stores. Only Ok and Error outcomes exist here — Shed/Timeout/Invalid
/// are admission outcomes, never cached.
struct Outcome {
  ResponseStatus status = ResponseStatus::Ok;
  std::string data;   ///< serialized JSON object (Ok), empty otherwise
  std::string error;  ///< message (Error), empty otherwise
};

/// One response line. Everything needed to render
/// {"id":...,"kind":...,"status":...,"data":{...}} deterministically.
struct Response {
  std::string id;
  bool hasKind = false;
  RequestKind kind = RequestKind::Figure1;
  ResponseStatus status = ResponseStatus::Ok;
  std::string data;
  std::string error;

  // Observability annotations riding alongside the wire fields. NEVER
  // serialized by toJsonLine(), so replay output stays content-determined
  // whether or not tracing is on. Timestamps are obs::timingNowNs()
  // samples (0 = not captured); the emitter samples the final "emitted"
  // timestamp itself, so queue_wait (submit->dispatch), work
  // (dispatch->done), and emit (done->emitted) partition the request's
  // wall time exactly in integer nanoseconds.
  std::uint64_t traceId = 0;
  std::int64_t submitNs = 0;     ///< admitted into the scheduler queue
  std::int64_t dispatchNs = 0;   ///< picked up by an exec lane
  std::int64_t doneNs = 0;       ///< handler finished, promise fulfilled
  std::int64_t evalNs = 0;       ///< ns spent inside evaluate() (0 on hits)
  std::int64_t dedupJoinNs = 0;  ///< ns blocked joining an in-flight compute

  /// The JSONL wire form (no trailing newline).
  [[nodiscard]] std::string toJsonLine() const;
};

/// Assemble the response for `request` from a cached or fresh outcome.
Response makeResponse(const Request& request, const Outcome& outcome);
/// Response for a request that failed admission (shed/timeout/invalid).
Response makeFailure(const Request& request, ResponseStatus status,
                     std::string message);

}  // namespace nano::svc
