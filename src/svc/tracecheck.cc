#include "svc/tracecheck.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "svc/json.h"

namespace nano::svc {

namespace {

/// Journal timestamps are exported as microseconds with three decimals;
/// recover the integer nanosecond value.
std::int64_t tsToNs(double tsUs) {
  return static_cast<std::int64_t>(std::llround(tsUs * 1000.0));
}

const JsonValue* requireMember(const JsonValue& event, const char* key,
                               std::string& error, std::size_t index) {
  const JsonValue* v = event.find(key);
  if (v == nullptr) {
    error = "event " + std::to_string(index) + ": missing \"" + key + "\"";
  }
  return v;
}

struct OpenSync {
  std::string cat;
  std::string name;
};

struct OpenAsync {
  std::vector<std::int64_t> beginTs;  ///< unmatched 'b' timestamps (FIFO)
};

}  // namespace

TraceCheckResult validateChromeTrace(std::string_view json) {
  TraceCheckResult result;
  JsonValue doc;
  try {
    doc = parseJson(json);
  } catch (const std::exception& e) {
    result.error = std::string("trace is not valid JSON: ") + e.what();
    return result;
  }
  if (!doc.isObject()) {
    result.error = "trace document must be a JSON object";
    return result;
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->isArray()) {
    result.error = "trace document must contain a \"traceEvents\" array";
    return result;
  }

  std::map<std::int64_t, std::vector<OpenSync>> syncStacks;  // by tid
  std::map<std::string, OpenAsync> asyncOpen;  // by cat \0 id \0 name

  const auto& items = events->items();
  for (std::size_t i = 0; i < items.size(); ++i) {
    const JsonValue& event = items[i];
    if (!event.isObject()) {
      result.error = "event " + std::to_string(i) + " is not an object";
      return result;
    }
    const JsonValue* name = requireMember(event, "name", result.error, i);
    const JsonValue* cat = requireMember(event, "cat", result.error, i);
    const JsonValue* ph = requireMember(event, "ph", result.error, i);
    const JsonValue* tid = requireMember(event, "tid", result.error, i);
    const JsonValue* ts = requireMember(event, "ts", result.error, i);
    if (!result.error.empty()) return result;
    if (!name->isString() || !cat->isString() || !ph->isString() ||
        !tid->isNumber() || !ts->isNumber()) {
      result.error = "event " + std::to_string(i) + ": wrong field types";
      return result;
    }
    if (ts->asNumber() < 0.0) {
      result.error = "event " + std::to_string(i) + ": negative timestamp";
      return result;
    }
    const std::string& phase = ph->asString();
    const auto threadId = static_cast<std::int64_t>(tid->asNumber());
    ++result.events;

    if (phase == "B") {
      syncStacks[threadId].push_back({cat->asString(), name->asString()});
    } else if (phase == "E") {
      auto& stack = syncStacks[threadId];
      if (stack.empty()) {
        result.error = "event " + std::to_string(i) + ": 'E' for \"" +
                       name->asString() + "\" with no open 'B' on tid " +
                       std::to_string(threadId);
        return result;
      }
      const OpenSync& top = stack.back();
      if (top.name != name->asString() || top.cat != cat->asString()) {
        result.error = "event " + std::to_string(i) + ": 'E' for \"" +
                       name->asString() + "\" but innermost open span is \"" +
                       top.name + "\" (sync spans must nest LIFO)";
        return result;
      }
      stack.pop_back();
      ++result.syncPairs;
    } else if (phase == "b" || phase == "e") {
      const JsonValue* id = event.find("id");
      if (id == nullptr || !id->isString()) {
        result.error = "event " + std::to_string(i) +
                       ": async event without a string \"id\"";
        return result;
      }
      const std::string key =
          cat->asString() + '\0' + id->asString() + '\0' + name->asString();
      if (phase == "b") {
        asyncOpen[key].beginTs.push_back(tsToNs(ts->asNumber()));
      } else {
        auto open = asyncOpen.find(key);
        if (open == asyncOpen.end() || open->second.beginTs.empty()) {
          result.error = "event " + std::to_string(i) + ": 'e' for \"" +
                         name->asString() + "\" id " + id->asString() +
                         " with no matching 'b'";
          return result;
        }
        const std::int64_t begin = open->second.beginTs.front();
        open->second.beginTs.erase(open->second.beginTs.begin());
        const std::int64_t durNs = tsToNs(ts->asNumber()) - begin;
        if (durNs < 0) {
          result.error = "event " + std::to_string(i) + ": async span \"" +
                         name->asString() + "\" ends before it begins";
          return result;
        }
        ++result.asyncPairs;

        // Collect the svc per-request phase decomposition.
        if (cat->asString() == "svc") {
          const JsonValue* args = event.find("args");
          const JsonValue* trace =
              args != nullptr ? args->find("trace") : nullptr;
          if (trace != nullptr && trace->isNumber()) {
            const auto traceId =
                static_cast<std::uint64_t>(trace->asNumber());
            TracePhases& phases = result.requests[traceId];
            const std::string& spanName = name->asString();
            if (spanName == "request") phases.requestNs = durNs;
            else if (spanName == "queue_wait") phases.queueWaitNs = durNs;
            else if (spanName == "work") phases.workNs = durNs;
            else if (spanName == "emit") phases.emitNs = durNs;
          }
        }
      }
    } else if (phase != "X" && phase != "i") {
      result.error = "event " + std::to_string(i) + ": unknown phase \"" +
                     phase + "\"";
      return result;
    }
  }

  for (const auto& [threadId, stack] : syncStacks) {
    if (!stack.empty()) {
      result.error = "unclosed sync span \"" + stack.back().name +
                     "\" on tid " + std::to_string(threadId);
      return result;
    }
  }
  for (const auto& [key, open] : asyncOpen) {
    if (!open.beginTs.empty()) {
      result.error = "async span never ended (key \"" + key + "\")";
      return result;
    }
  }

  result.ok = true;
  return result;
}

}  // namespace nano::svc
