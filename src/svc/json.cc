#include "svc/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace nano::svc {

std::string formatJsonDouble(double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN literals; responses encode them as null upstream,
    // but a stray non-finite double must not emit invalid JSON.
    return "null";
  }
  // Integral values within the exactly-representable range print without an
  // exponent or decimal point ("9" rather than "9.0"), matching what a
  // client would send back for the same number.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

namespace {
[[noreturn]] void kindMismatch(const char* want) {
  throw std::logic_error(std::string("JsonValue: not a ") + want);
}
}  // namespace

bool JsonValue::asBool() const {
  if (kind_ != Kind::Bool) kindMismatch("bool");
  return bool_;
}

double JsonValue::asNumber() const {
  if (kind_ != Kind::Number) kindMismatch("number");
  return number_;
}

const std::string& JsonValue::asString() const {
  if (kind_ != Kind::String) kindMismatch("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::Array) kindMismatch("array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::Object) kindMismatch("object");
  return members_;
}

void JsonValue::push(JsonValue v) {
  if (kind_ != Kind::Array) kindMismatch("array");
  items_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  if (kind_ != Kind::Object) kindMismatch("object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string quoteJsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void writeValue(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonValue::Kind::Null:
      out += "null";
      break;
    case JsonValue::Kind::Bool:
      out += v.asBool() ? "true" : "false";
      break;
    case JsonValue::Kind::Number:
      out += formatJsonDouble(v.asNumber());
      break;
    case JsonValue::Kind::String:
      out += quoteJsonString(v.asString());
      break;
    case JsonValue::Kind::Array: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out.push_back(',');
        first = false;
        writeValue(item, out);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Kind::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out.push_back(',');
        first = false;
        out += quoteJsonString(key);
        out.push_back(':');
        writeValue(value, out);
      }
      out.push_back('}');
      break;
    }
  }
}

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parseDocument() {
    JsonValue v = parseValue(0);
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("parseJson: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parseValue(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skipWs();
    const char c = peek();
    switch (c) {
      case '{': return parseObject(depth);
      case '[': return parseArray(depth);
      case '"': return JsonValue::string(parseString());
      case 't':
        if (!consumeLiteral("true")) fail("bad literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consumeLiteral("false")) fail("bad literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consumeLiteral("null")) fail("bad literal");
        return JsonValue::null();
      default: return parseNumber();
    }
  }

  JsonValue parseObject(int depth) {
    expect('{');
    JsonValue obj = JsonValue::object();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      if (obj.find(key) != nullptr) fail("duplicate key \"" + key + "\"");
      skipWs();
      expect(':');
      obj.set(std::move(key), parseValue(depth + 1));
      skipWs();
      const char next = peek();
      ++pos_;
      if (next == '}') return obj;
      if (next != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parseArray(int depth) {
    expect('[');
    JsonValue arr = JsonValue::array();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parseValue(depth + 1));
      skipWs();
      const char next = peek();
      ++pos_;
      if (next == ']') return arr;
      if (next != ',') fail("expected ',' or ']'");
    }
  }

  void appendUtf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  unsigned parseHex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return value;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return out;
      if (c < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parseHex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the low half to form one code point.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired surrogate");
            }
            pos_ += 2;
            const unsigned low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          appendUtf8(out, cp);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    // JSON grammar: int part required, no leading zeros before more digits.
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (digits() == 0) {
      fail("bad number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number: missing fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("bad number: missing exponent digits");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    return JsonValue::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::write() const {
  std::string out;
  writeValue(*this, out);
  return out;
}

JsonValue parseJson(std::string_view text) {
  return Parser(text).parseDocument();
}

}  // namespace nano::svc
