#include "svc/eval.h"

#include <sstream>
#include <string>

#include "circuit/generator.h"
#include "circuit/library.h"
#include "circuit/netlist_soa.h"
#include "core/analysis.h"
#include "core/design_space.h"
#include "core/experiments.h"
#include "exec/exec.h"
#include "interconnect/repeater.h"
#include "interconnect/wire.h"
#include "obs/obs.h"
#include "powergrid/grid_model.h"
#include "powergrid/irdrop.h"
#include "scenario/scenario.h"
#include "sta/sta.h"
#include "svc/json.h"
#include "tech/itrs.h"
#include "util/rng.h"
#include "util/units.h"

namespace nano::svc {

namespace {

using namespace nano::units;

JsonValue irDropReportJson(const powergrid::IrDropReport& r) {
  JsonValue o = JsonValue::object();
  o.set("pad_pitch_um", r.padPitch / um);
  o.set("rail_pitch_um", r.railPitch / um);
  o.set("required_width_um", r.requiredWidth / um);
  o.set("width_over_min", r.widthOverMin);
  o.set("routing_fraction", r.routingFraction);
  o.set("bump_current_a", r.bumpCurrent);
  o.set("bump_current_ok", r.bumpCurrentOk);
  o.set("vdd_bump_count", r.vddBumpCount);
  if (r.meshDropFraction >= 0.0) o.set("mesh_drop_fraction", r.meshDropFraction);
  return o;
}

JsonValue operatingPointJson(const core::OperatingPoint& pt) {
  JsonValue o = JsonValue::object();
  o.set("vdd", pt.vdd);
  o.set("vth_design", pt.vthDesign);
  o.set("delay_norm", pt.delayNorm);
  o.set("pdyn_norm", pt.pdynNorm);
  o.set("pstat_norm", pt.pstatNorm);
  o.set("ptotal_norm", pt.ptotalNorm);
  o.set("static_fraction", pt.staticFraction);
  return o;
}

JsonValue table2RowJson(const core::Table2Row& row) {
  JsonValue o = JsonValue::object();
  o.set("node_nm", row.nodeNm);
  o.set("vdd", row.vdd);
  o.set("coxe_norm", row.coxeNorm);
  o.set("cox_phys_norm", row.coxPhysNorm);
  o.set("vth_required", row.vthRequired);
  o.set("ioff_na_um", row.ioffNaUm);
  o.set("vth_metal", row.vthMetal);
  o.set("ioff_metal_na_um", row.ioffMetalNaUm);
  o.set("ioff_itrs_na_um", row.ioffItrsNaUm);
  return o;
}

JsonValue evalFigure1(const Fig1Params& p) {
  JsonValue points = JsonValue::array();
  for (const core::Fig1Point& pt : core::computeFigure1(p.points)) {
    JsonValue o = JsonValue::object();
    o.set("activity", pt.activity);
    o.set("ratio_70nm_09v", pt.ratio70nm09V);
    o.set("ratio_50nm_07v", pt.ratio50nm07V);
    o.set("ratio_50nm_06v", pt.ratio50nm06V);
    points.push(std::move(o));
  }
  JsonValue data = JsonValue::object();
  data.set("points", std::move(points));
  return data;
}

JsonValue evalFigure2(const Fig2Params&) {
  JsonValue points = JsonValue::array();
  for (const core::Fig2Point& pt : core::computeFigure2()) {
    JsonValue o = JsonValue::object();
    o.set("node_nm", pt.nodeNm);
    o.set("ion_gain_percent", pt.ionGainPercent);
    o.set("ioff_penalty_for_20", pt.ioffPenaltyFor20);
    points.push(std::move(o));
  }
  JsonValue data = JsonValue::object();
  data.set("points", std::move(points));
  return data;
}

JsonValue evalFigure34(const Fig34Params& p) {
  JsonValue points = JsonValue::array();
  for (const core::Fig34Point& pt :
       core::computeFigure34(p.nodeNm, p.points, p.activity, p.vddMin)) {
    JsonValue o = JsonValue::object();
    o.set("vdd", pt.vdd);
    for (std::size_t i = 0; i < core::kVthPolicies.size(); ++i) {
      const std::string policy = core::policyName(core::kVthPolicies[i]);
      JsonValue per = JsonValue::object();
      per.set("vth_design", pt.vthDesign[i]);
      per.set("delay_norm", pt.delayNorm[i]);
      per.set("pdyn_over_pstat", pt.pdynOverPstat[i]);
      o.set(policy, std::move(per));
    }
    points.push(std::move(o));
  }
  JsonValue data = JsonValue::object();
  data.set("points", std::move(points));
  return data;
}

JsonValue evalFigure5(const Fig5Params& p) {
  JsonValue rows = JsonValue::array();
  for (const core::Fig5Row& row : core::computeFigure5(p.meshCheck)) {
    JsonValue o = JsonValue::object();
    o.set("node_nm", row.nodeNm);
    o.set("min_pitch", irDropReportJson(row.minPitch));
    o.set("itrs", irDropReportJson(row.itrs));
    rows.push(std::move(o));
  }
  JsonValue data = JsonValue::object();
  data.set("rows", std::move(rows));
  return data;
}

JsonValue evalTable2(const Table2Params&) {
  const core::Table2 t = core::computeTable2();
  JsonValue rows = JsonValue::array();
  for (const core::Table2Row& row : t.rows) rows.push(table2RowJson(row));
  JsonValue data = JsonValue::object();
  data.set("rows", std::move(rows));
  data.set("row_50_at_07", table2RowJson(t.row50At07));
  data.set("model_growth", t.modelGrowth);
  data.set("itrs_growth", t.itrsGrowth);
  return data;
}

core::DesignSpaceOptions gridOptions(const DesignGridParams& p) {
  core::DesignSpaceOptions o;
  o.nodeNm = p.nodeNm;
  o.activity = p.activity;
  o.vddMin = p.vddMin;
  o.vthMin = p.vthMin;
  o.vthMax = p.vthMax;
  o.vddSteps = p.vddSteps;
  o.vthSteps = p.vthSteps;
  return o;
}

JsonValue evalDesignPoint(const DesignPointParams& p) {
  core::DesignSpaceOptions o;
  o.nodeNm = p.nodeNm;
  o.activity = p.activity;
  return operatingPointJson(core::evaluatePoint(o, p.vdd, p.vth));
}

JsonValue evalDesignGrid(const DesignGridParams& p) {
  JsonValue points = JsonValue::array();
  for (const core::OperatingPoint& pt :
       core::exploreDesignSpace(gridOptions(p))) {
    points.push(operatingPointJson(pt));
  }
  JsonValue data = JsonValue::object();
  data.set("vdd_steps", p.vddSteps);
  data.set("vth_steps", p.vthSteps);
  data.set("points", std::move(points));
  return data;
}

JsonValue evalDesignOptimum(const DesignOptimumParams& p) {
  return operatingPointJson(core::optimalPoint(gridOptions(p.grid),
                                               p.delayTarget,
                                               p.maxStaticFraction));
}

JsonValue evalRepeater(const RepeaterParams& p) {
  const tech::TechNode& node = tech::nodeByFeature(p.nodeNm);
  const auto driver = interconnect::RepeaterDriver::fromNode(node);
  const auto rc = interconnect::computeWireRc(
      interconnect::topLevelWire(node, p.widthMultiple));
  const auto closed = interconnect::optimalRepeatersClosedForm(driver, rc);
  const auto numeric = interconnect::optimalRepeatersNumeric(driver, rc);
  auto designJson = [](const interconnect::RepeaterDesign& d) {
    JsonValue o = JsonValue::object();
    o.set("segment_length_um", d.segmentLength / um);
    o.set("size", d.size);
    o.set("delay_ps_per_mm", d.delayPerMeter * 1e12 * 1e-3);
    return o;
  };
  JsonValue data = JsonValue::object();
  data.set("node_nm", p.nodeNm);
  data.set("closed_form", designJson(closed));
  data.set("numeric", designJson(numeric));
  return data;
}

JsonValue evalWire(const WireParams& p) {
  const tech::TechNode& node = tech::nodeByFeature(p.nodeNm);
  const auto rc = interconnect::computeWireRc(
      interconnect::topLevelWire(node, p.widthMultiple, p.matchSpacing));
  JsonValue data = JsonValue::object();
  data.set("node_nm", p.nodeNm);
  data.set("resistance_ohm_per_mm", rc.resistancePerM * 1e-3);
  data.set("ground_cap_ff_per_mm", rc.groundCapPerM / fF * 1e-3);
  data.set("coupling_cap_ff_per_mm", rc.couplingCapPerM / fF * 1e-3);
  data.set("total_cap_ff_per_mm", rc.totalCapPerM() / fF * 1e-3);
  data.set("worst_case_cap_ff_per_mm", rc.worstCaseCapPerM() / fF * 1e-3);
  return data;
}

JsonValue evalGridSolve(const GridSolveParams& p) {
  const tech::TechNode& node = tech::nodeByFeature(p.nodeNm);
  const double padPitch = p.padPitchUm > 0.0 ? p.padPitchUm * um
                                             : node.minBumpPitch;
  powergrid::GridConfig config =
      powergrid::gridConfigForNode(node, p.widthMultiple, padPitch, p.hotspot);
  config.subdivisions = p.subdivisions;
  powergrid::GridSolverOptions options;
  if (p.preconditioner == "jacobi") {
    options.preconditioner = powergrid::PreconditionerKind::Jacobi;
  } else if (p.preconditioner == "multigrid") {
    options.preconditioner = powergrid::PreconditionerKind::Multigrid;
  }
  const powergrid::GridSolution sol = powergrid::solveGrid(config, options);
  JsonValue data = JsonValue::object();
  data.set("node_nm", p.nodeNm);
  data.set("unknowns", static_cast<double>(sol.unknowns));
  data.set("max_drop_v", sol.maxDrop);
  data.set("max_drop_fraction", sol.maxDropFraction);
  data.set("cg_iterations", sol.cgIterations);
  data.set("converged", sol.cgConverged);
  data.set("solver_status",
           util::solverStatusName(sol.cgDiagnostics.status));
  data.set("preconditioner", sol.preconditioner);
  data.set("mg_levels", sol.mgLevels);
  data.set("mg_fell_back", sol.mgFellBack);
  return data;
}

JsonValue evalNodeSummary(const NodeSummaryParams& p) {
  const core::NodeSummary s = core::summarizeNode(p.nodeNm);
  JsonValue data = JsonValue::object();
  data.set("node_nm", p.nodeNm);
  data.set("vth_required", s.vthRequired);
  data.set("ion_ua_um", s.ionUaUm);
  data.set("ioff_na_um", s.ioffNaUm);
  data.set("ioff_hot_na_um", s.ioffHotNaUm);
  data.set("fo4_delay_ps", s.fo4DelayPs);
  data.set("fo4_per_cycle", s.fo4PerCycle);
  data.set("max_power_w", s.maxPowerW);
  data.set("supply_current_a", s.supplyCurrentA);
  data.set("standby_current_budget_a", s.standbyCurrentBudgetA);
  data.set("theta_ja_required", s.thetaJaRequired);
  data.set("packaging",
           s.packaging != nullptr ? s.packaging->name : std::string("none"));
  data.set("cooling_cost_usd", s.coolingCostUsd);
  data.set("die_crossing_cycles", s.wiring.cyclesToCrossDie);
  data.set("repeater_count", s.wiring.repeaterCount);
  data.set("repeater_area_fraction", s.wiring.repeaterAreaFraction);
  data.set("grid_min_pitch", irDropReportJson(s.gridMinPitch));
  data.set("grid_itrs", irDropReportJson(s.gridItrs));
  JsonValue wake = JsonValue::object();
  wake.set("noise_fraction", s.wakeup.noiseFraction);
  wake.set("within_budget", s.wakeup.withinBudget);
  wake.set("decap_needed_f", s.wakeup.decapNeeded);
  data.set("wakeup", std::move(wake));
  return data;
}

JsonValue evalSta(const StaParams& p) {
  const tech::TechNode& node = tech::nodeByFeature(p.nodeNm);
  const circuit::Library library(node);
  util::Rng rng(static_cast<std::uint64_t>(p.seed));
  const circuit::GeneratorConfig cfg = circuit::scaledConfig(p.gates);
  const circuit::Netlist netlist =
      circuit::pipelinedLogic(library, cfg, rng, p.blocks);
  const circuit::NetlistSoA soa(netlist, {.keepCells = false});
  const sta::TimingResult r = sta::analyze(soa);
  JsonValue data = JsonValue::object();
  data.set("node_nm", p.nodeNm);
  data.set("gates", netlist.gateCount());
  data.set("nodes", netlist.nodeCount());
  data.set("endpoints", static_cast<int>(netlist.outputs().size()));
  data.set("levels", static_cast<int>(soa.levelCount()));
  data.set("critical_path_delay_ps", r.criticalPathDelay / ps);
  data.set("critical_path_gates",
           static_cast<int>(r.criticalPath.size()));
  // The paper's slack-profile statistic: share of endpoints using less
  // than half the (critical-path) cycle.
  data.set("fraction_faster_than_half",
           sta::fractionOfPathsFasterThan(r, netlist, 0.5));
  data.set("soa_bytes", static_cast<double>(soa.arenaBytes()));
  return data;
}

scenario::ScenarioSpec scenarioSpec(const ScenarioParams& p) {
  scenario::ScenarioSpec spec;
  spec.nodeNm = p.nodeNm;
  spec.scenario = p.scenario;
  spec.policy = p.policy;
  spec.steps = p.steps;
  spec.dtUs = p.dtUs;
  spec.gates = p.gates;
  spec.seed = p.seed;
  spec.traceStride = p.traceStride;
  spec.knobA = p.knobA;
  spec.knobB = p.knobB;
  return spec;
}

JsonValue scenarioSummaryJson(const scenario::ScenarioResult& r) {
  JsonValue o = JsonValue::object();
  o.set("ok", r.ok);
  o.set("steps", static_cast<double>(r.steps));
  o.set("checks_evaluated", static_cast<double>(r.checksEvaluated));
  o.set("violations", static_cast<double>(r.violationCount));
  o.set("energy_j", r.energyJ);
  o.set("baseline_energy_j", r.baselineEnergyJ);
  o.set("energy_savings", r.energySavings());
  o.set("throughput_fraction", r.throughputFraction);
  o.set("max_temperature_k", r.maxTemperatureK);
  o.set("avg_temperature_k", r.avgTemperatureK);
  o.set("peak_power_w", r.peakPowerW);
  o.set("peak_ir_drop_fraction", r.peakIrDropFraction);
  o.set("peak_rush_fraction", r.peakRushFraction);
  o.set("worst_slack_ps", r.worstSlackS / ps);
  o.set("gate_events", static_cast<double>(r.gateEvents));
  o.set("vdd_steps", static_cast<double>(r.vddSteps));
  return o;
}

JsonValue evalScenario(const ScenarioParams& p) {
  scenario::ScenarioSetup setup = scenario::makeScenario(scenarioSpec(p));
  const scenario::ScenarioResult r =
      scenario::runScenario(*setup.plant, *setup.policy, setup.config);
  JsonValue data = JsonValue::object();
  data.set("node_nm", p.nodeNm);
  data.set("scenario", p.scenario);
  data.set("policy", setup.policy->name());
  data.set("clock_period_ps", setup.plant->clockPeriod() / ps);
  data.set("gate_count", setup.plant->gateCount());
  data.set("base_drop_fraction", setup.plant->baseDropFraction());
  data.set("summary", scenarioSummaryJson(r));
  JsonValue violations = JsonValue::array();
  for (const scenario::Violation& v : r.violations) {
    JsonValue o = JsonValue::object();
    o.set("check", scenario::checkKindName(v.kind));
    o.set("step", static_cast<double>(v.step));
    o.set("time_s", v.timeS);
    o.set("value", v.value);
    o.set("limit", v.limit);
    violations.push(std::move(o));
  }
  data.set("violations", std::move(violations));
  if (p.includeTrace) {
    JsonValue trace = JsonValue::array();
    for (const scenario::StepRecord& s : r.trace) {
      JsonValue o = JsonValue::object();
      o.set("time_s", s.timeS);
      o.set("demand", s.demand);
      o.set("freq_fraction", s.freqFraction);
      o.set("vdd_fraction", s.vddFraction);
      o.set("gated", s.gated);
      o.set("power_w", s.powerW);
      o.set("temperature_k", s.temperatureK);
      o.set("slack_ps", s.slackS / ps);
      o.set("ir_drop_fraction", s.irDropFraction);
      o.set("rush_fraction", s.rushFraction);
      o.set("violations", static_cast<double>(s.violations));
      trace.push(std::move(o));
    }
    data.set("trace", std::move(trace));
  }
  return data;
}

JsonValue evalScenarioSweep(const ScenarioSweepParams& p) {
  const std::string policy = p.base.policy.empty()
                                 ? scenario::defaultPolicyFor(p.base.scenario)
                                 : p.base.policy;
  const scenario::KnobRange range = scenario::knobRangeFor(policy);
  // Interior sampling: (i + 0.5) / axis never lands on a knob value of
  // exactly 0, which would read as "policy default" instead of the
  // sampled point.
  auto knobAt = [](double lo, double hi, int i, int n) {
    return lo + (hi - lo) * (static_cast<double>(i) + 0.5) /
                    static_cast<double>(n);
  };
  scenario::ScenarioSpec base = scenarioSpec(p.base);
  base.policy = policy;
  // Warm the plant cache once so the parallel variants all share one
  // build instead of racing to construct identical plants.
  (void)scenario::makeScenario(base);
  const int variants = p.axisA * p.axisB;
  struct Row {
    double knobA = 0.0, knobB = 0.0;
    scenario::ScenarioResult result;
  };
  const std::vector<Row> rows = exec::parallelMap<Row>(
      static_cast<std::size_t>(variants), [&](std::size_t idx) {
        const int ia = static_cast<int>(idx) / p.axisB;
        const int ib = static_cast<int>(idx) % p.axisB;
        scenario::ScenarioSpec spec = base;
        spec.knobA = knobAt(range.aLo, range.aHi, ia, p.axisA);
        spec.knobB = knobAt(range.bLo, range.bHi, ib, p.axisB);
        scenario::ScenarioSetup setup = scenario::makeScenario(spec);
        Row row;
        row.knobA = spec.knobA;
        row.knobB = spec.knobB;
        row.result =
            scenario::runScenario(*setup.plant, *setup.policy, setup.config);
        return row;
      });
  int okCount = 0;
  int best = -1;  // lowest-energy ok variant; first index wins ties
  for (int i = 0; i < variants; ++i) {
    if (!rows[static_cast<std::size_t>(i)].result.ok) continue;
    ++okCount;
    if (best < 0 || rows[static_cast<std::size_t>(i)].result.energyJ <
                        rows[static_cast<std::size_t>(best)].result.energyJ) {
      best = i;
    }
  }
  JsonValue data = JsonValue::object();
  data.set("node_nm", p.base.nodeNm);
  data.set("scenario", p.base.scenario);
  data.set("policy", policy);
  data.set("axis_a", p.axisA);
  data.set("axis_b", p.axisB);
  data.set("variants", variants);
  data.set("ok_count", okCount);
  data.set("best_index", best);
  JsonValue rowsJson = JsonValue::array();
  for (const Row& row : rows) {
    JsonValue o = JsonValue::object();
    o.set("knob_a", row.knobA);
    o.set("knob_b", row.knobB);
    o.set("summary", scenarioSummaryJson(row.result));
    rowsJson.push(std::move(o));
  }
  data.set("rows", std::move(rowsJson));
  return data;
}

JsonValue dispatch(const Request& request) {
  switch (request.kind) {
    case RequestKind::Figure1:
      return evalFigure1(std::get<Fig1Params>(request.params));
    case RequestKind::Figure2:
      return evalFigure2(std::get<Fig2Params>(request.params));
    case RequestKind::Figure34:
      return evalFigure34(std::get<Fig34Params>(request.params));
    case RequestKind::Figure5:
      return evalFigure5(std::get<Fig5Params>(request.params));
    case RequestKind::Table2:
      return evalTable2(std::get<Table2Params>(request.params));
    case RequestKind::DesignPoint:
      return evalDesignPoint(std::get<DesignPointParams>(request.params));
    case RequestKind::DesignGrid:
      return evalDesignGrid(std::get<DesignGridParams>(request.params));
    case RequestKind::DesignOptimum:
      return evalDesignOptimum(std::get<DesignOptimumParams>(request.params));
    case RequestKind::Repeater:
      return evalRepeater(std::get<RepeaterParams>(request.params));
    case RequestKind::Wire:
      return evalWire(std::get<WireParams>(request.params));
    case RequestKind::GridSolve:
      return evalGridSolve(std::get<GridSolveParams>(request.params));
    case RequestKind::NodeSummary:
      return evalNodeSummary(std::get<NodeSummaryParams>(request.params));
    case RequestKind::Sta:
      return evalSta(std::get<StaParams>(request.params));
    case RequestKind::Scenario:
      return evalScenario(std::get<ScenarioParams>(request.params));
    case RequestKind::ScenarioSweep:
      return evalScenarioSweep(std::get<ScenarioSweepParams>(request.params));
    case RequestKind::Stats:
      break;  // handled before dispatch: live data, not a pure function
  }
  throw std::logic_error("evaluate: unhandled kind");
}

/// The one non-pure kind: a live snapshot of the process's own metrics.
/// The service bypasses the cache for it (identical keys do NOT imply
/// identical payloads here), and golden traces exclude it.
std::string evalStats(const StatsParams& p) {
  std::ostringstream os;
  obs::exportStatsJson(os, p.delta);
  return os.str();
}

}  // namespace

Outcome evaluate(const Request& request) {
  NANO_OBS_TIMER(std::string("svc/latency/") + kindName(request.kind));
  // Synchronous eval span on whatever thread runs the evaluation; the
  // context was installed by the service handler (or is empty for direct
  // callers), so nested exec regions inherit the request's identity.
  const obs::TraceSpan span("svc", kindName(request.kind),
                            obs::currentTraceContext());
  Outcome outcome;
  try {
    outcome.status = ResponseStatus::Ok;
    outcome.data = request.kind == RequestKind::Stats
                       ? evalStats(std::get<StatsParams>(request.params))
                       : dispatch(request).write();
  } catch (const std::exception& e) {
    NANO_OBS_COUNT("svc/errors", 1);
    outcome.status = ResponseStatus::Error;
    outcome.data.clear();
    outcome.error = e.what();
  }
  return outcome;
}

}  // namespace nano::svc
