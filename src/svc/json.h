// Minimal JSON document model for the nano::svc request/response wire
// format: parse (strict, recursive-descent, depth-limited) and compact
// deterministic serialization. Objects preserve insertion order, so a
// response built the same way serializes to the same bytes on every run
// and at every thread count — the property the nanod replay goldens and
// the 1-vs-8-lane determinism tests rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nano::svc {

/// Shortest round-trip decimal form of a double: the first of %.15g /
/// %.16g / %.17g that parses back to the same bits. Deterministic for a
/// given value (locale-independent digits), so cached and recomputed
/// responses are byte-identical.
std::string formatJsonDouble(double v);

/// One JSON value. Objects keep members in insertion order; duplicate keys
/// are rejected by the parser and overwritten by set().
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() : kind_(Kind::Null) {}
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool isBool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool isNumber() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool isString() const { return kind_ == Kind::String; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw std::logic_error on a kind mismatch.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;

  /// Array append (throws unless array).
  void push(JsonValue v);

  /// Object member write: replaces an existing key in place, appends
  /// otherwise (throws unless object).
  void set(std::string key, JsonValue v);
  /// Convenience overloads for the common payload-building cases.
  void set(std::string key, double v) { set(std::move(key), number(v)); }
  void set(std::string key, int v) {
    set(std::move(key), number(static_cast<double>(v)));
  }
  void set(std::string key, bool v) { set(std::move(key), boolean(v)); }
  void set(std::string key, const char* v) {
    set(std::move(key), string(std::string(v)));
  }
  void set(std::string key, std::string v) {
    set(std::move(key), string(std::move(v)));
  }

  /// Object member read: pointer to the value, nullptr when absent (or not
  /// an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Compact serialization (no whitespace), members in insertion order.
  [[nodiscard]] std::string write() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Strict parse of one JSON document (trailing garbage rejected). Throws
/// std::invalid_argument with a position-annotated message on malformed
/// input; nesting deeper than 64 levels is rejected.
JsonValue parseJson(std::string_view text);

/// JSON string escaping (quotes included): ", \ and control characters are
/// escaped; everything else passes through byte-for-byte.
std::string quoteJsonString(std::string_view s);

}  // namespace nano::svc
