// The long-running evaluation service (`nanod`): wires the result cache,
// the scheduler, and the evaluator into one object, plus the per-session
// request pipeline shared by every front end — the stdin/stdout JSONL
// loop and each socket connection run the same Session: lines in, one
// response line out per request, in input order (so a replayed trace is
// byte-stable no matter which transport carried it).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

#include "svc/cache.h"
#include "svc/eval.h"
#include "svc/scheduler.h"

namespace nano::svc {

struct ServiceOptions {
  /// Result-cache entries across all shards (0 disables caching+dedup).
  std::size_t cacheEntries = 4096;
  int cacheShards = 8;
  SchedulerOptions scheduler;
  /// Overload policy for submit(): false (default) sheds with a structured
  /// status when the queue is full; true blocks the submitter instead —
  /// use for replay/batch clients where losing requests is worse than
  /// slowing the reader. Socket front ends must keep this false: blocking
  /// the shared receive thread would stall every other connection.
  bool blockWhenFull = false;
};

// ------------------------------------------------------------ trace ids
//
// Trace ids must be unique across every concurrent submitter of one
// process — multiple socket connections, the stdin loop, and direct
// Service::submit callers all feed the same journal, and trace_lint's
// per-request accounting breaks on collisions. The layout:
//
//   bit 63          : set for ids assigned by Service::submit directly
//   bits 32..62     : session ordinal (from Service::newSessionId(), >= 1)
//   bits 0..31      : 1-based request sequence within the session
inline constexpr std::uint64_t kTraceSeqBits = 32;
inline constexpr std::uint64_t kTraceSeqMask = (1ull << kTraceSeqBits) - 1;
inline constexpr std::uint64_t kDirectTraceBit = 1ull << 63;

/// Trace id of request `seq` (1-based) on session `sessionId` (>= 1).
constexpr std::uint64_t makeSessionTraceId(std::uint64_t sessionId,
                                           std::uint64_t seq) {
  return (sessionId << kTraceSeqBits) | (seq & kTraceSeqMask);
}
constexpr std::uint64_t traceSessionOf(std::uint64_t traceId) {
  return (traceId & ~kDirectTraceBit) >> kTraceSeqBits;
}
constexpr std::uint64_t traceSeqOf(std::uint64_t traceId) {
  return traceId & kTraceSeqMask;
}

/// A running service instance: thread-safe, many concurrent submitters.
class Service {
 public:
  explicit Service(ServiceOptions options = {});

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admit one request (already parsed). Counts svc/requests. While
  /// tracing is enabled, a request arriving without a trace id is
  /// assigned one from a per-service counter (kDirectTraceBit set, so it
  /// can never collide with a session-assigned id).
  std::future<Response> submit(Request request);

  /// Synchronous convenience: submit and wait.
  Response call(Request request);

  /// Wait until everything admitted so far has completed.
  void drain();

  /// Allocate a session ordinal (1, 2, ...) for a front-end pipeline;
  /// every Session feeding this service must hold a distinct one so the
  /// trace ids it assigns stay process-unique.
  std::uint64_t newSessionId() {
    return nextSessionId_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  [[nodiscard]] ResultCache& cache() { return cache_; }
  [[nodiscard]] std::size_t queueDepth() const { return scheduler_.queueDepth(); }

 private:
  Response handle(const Request& request);

  ServiceOptions options_;
  ResultCache cache_;
  std::atomic<std::uint64_t> nextTraceId_{1};
  std::atomic<std::uint64_t> nextSessionId_{1};
  Scheduler scheduler_;  ///< last member: stops before cache destructs
};

/// Tally of one session (or one runServer() call), by response status.
struct ServerStats {
  std::size_t lines = 0;     ///< non-blank input lines consumed
  std::size_t ok = 0;
  std::size_t errors = 0;
  std::size_t invalid = 0;
  std::size_t shed = 0;
  std::size_t timeouts = 0;
  std::size_t slow = 0;      ///< responses over ServerOptions::slowThresholdMs

  ServerStats& operator+=(const ServerStats& other);
};

/// Front-end knobs shared by runServer() and every socket session.
/// Defaults preserve the bare three-argument runServer behavior exactly.
struct ServerOptions {
  /// When non-null, every response slower (submit -> emitted) than
  /// slowThresholdMs appends one structured JSONL record here with the
  /// full phase decomposition. Requires obs or tracing to be enabled
  /// (timestamps are not captured otherwise). Writes are serialized
  /// internally, so many sessions may share one stream.
  std::ostream* slowLog = nullptr;
  double slowThresholdMs = 50.0;
  /// Pending responses buffered between submission and emission before
  /// the pipeline pushes back (stdin: the reader blocks; sockets: the
  /// receive loop stops reading that connection). Bounds memory when
  /// evaluation or the client is slower than the request stream.
  std::size_t emitQueueLimit = 8192;
};

/// One front-end pipeline: lines in (any thread, one at a time), ordered
/// response lines out through `sink` on a dedicated emitter thread. The
/// stdin server wraps exactly one Session around cin/cout; the socket
/// server runs one per connection — same parse/submit/emit path, same
/// stats, same tracing, so transports cannot diverge behaviorally.
///
/// Every consumed line gets the session-unique trace id
/// makeSessionTraceId(sessionId, lineNo) — including lines that fail to
/// parse, so invalid responses are attributable in the slow log and
/// journal instead of all colliding on id 0.
class Session {
 public:
  /// `sink` receives each serialized response line (newline included) in
  /// input order, called from the emitter thread. It must not call back
  /// into this Session.
  Session(Service& service, ServerOptions options,
          std::function<void(std::string&&)> sink, std::uint64_t sessionId);
  /// Joins the emitter (closing input first if the caller did not).
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parse and submit one input line (CR/LF already stripped; blank lines
  /// are the caller's to skip). Blocks while pendingResponses() is at the
  /// emit-queue limit — callers that must not block (the socket receive
  /// loop) gate on pendingResponses() before calling.
  void consumeLine(const std::string& line);

  /// Responses submitted but not yet handed to the sink. Monotonic
  /// observations: grows only in consumeLine's thread, shrinks only in
  /// the emitter's.
  [[nodiscard]] std::size_t pendingResponses() const {
    return pending_.load(std::memory_order_acquire);
  }

  /// No more consumeLine calls will come; the emitter finishes what is
  /// queued and exits. Safe to call from any thread, idempotent, never
  /// blocks.
  void closeInput();

  /// True once the emitter has emitted everything and exited.
  [[nodiscard]] bool finished() const {
    return finished_.load(std::memory_order_acquire);
  }

  /// Invoked (once, from the emitter thread) after the final response has
  /// been handed to the sink. Set before the first consumeLine.
  void setDrainedCallback(std::function<void()> callback);

  /// closeInput() + join the emitter. The session tally is valid after
  /// this returns.
  ServerStats finish();

  [[nodiscard]] std::uint64_t sessionId() const { return sessionId_; }

 private:
  /// Bounded hand-off of pending responses from the consumer to the
  /// emitter, preserving submission order. Ready failure responses count
  /// too, so a flood of sheds cannot grow memory without bound.
  class EmitQueue {
   public:
    explicit EmitQueue(std::size_t limit) : limit_(limit == 0 ? 1 : limit) {}
    void push(std::future<Response> f);
    void close();
    bool pop(std::future<Response>& out);

   private:
    std::mutex mutex_;
    std::condition_variable itemCv_, spaceCv_;
    std::deque<std::future<Response>> pending_;
    std::size_t limit_;
    bool closed_ = false;
  };

  void emitterLoop();

  Service& service_;
  ServerOptions options_;
  std::function<void(std::string&&)> sink_;
  std::uint64_t sessionId_;
  std::uint64_t consumedLines_ = 0;  ///< consumeLine's thread only
  EmitQueue queue_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> finished_{false};
  std::atomic<bool> inputClosed_{false};
  std::function<void()> drained_;
  ServerStats stats_;             ///< emitter thread only, until finish()
  std::int64_t slowThresholdNs_;
  bool joined_ = false;
  std::thread emitter_;
};

/// Serve JSONL requests from `in` until EOF: one response line per request
/// line, in input order (responses to later requests never overtake
/// earlier ones even when evaluation reorders). Blank lines are skipped;
/// unparseable lines produce status:"invalid" responses and keep serving.
///
/// Runs one Session (with a fresh session id from the service) whose sink
/// appends to `out`. While obs or tracing is on, the emitter records the
/// svc/phase/emit and svc/latency/total histograms and per-request
/// "request"/"work"/"emit" async trace spans (queue_wait comes from the
/// scheduler, dedup_join and eval from the cache and handler), so
/// queue_wait + work + emit partitions each request's wall time exactly.
ServerStats runServer(std::istream& in, std::ostream& out, Service& service,
                      const ServerOptions& options);
ServerStats runServer(std::istream& in, std::ostream& out, Service& service);

}  // namespace nano::svc
