// The long-running evaluation service (`nanod`): wires the result cache,
// the scheduler, and the evaluator into one object, plus a JSON-lines
// front end that reads one request per line from a stream and emits one
// response per line in input order (so a replayed trace is byte-stable).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <string>

#include "svc/cache.h"
#include "svc/eval.h"
#include "svc/scheduler.h"

namespace nano::svc {

struct ServiceOptions {
  /// Result-cache entries across all shards (0 disables caching+dedup).
  std::size_t cacheEntries = 4096;
  int cacheShards = 8;
  SchedulerOptions scheduler;
  /// Overload policy for submit(): false (default) sheds with a structured
  /// status when the queue is full; true blocks the submitter instead —
  /// use for replay/batch clients where losing requests is worse than
  /// slowing the reader.
  bool blockWhenFull = false;
};

/// A running service instance: thread-safe, many concurrent submitters.
class Service {
 public:
  explicit Service(ServiceOptions options = {});

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admit one request (already parsed). Counts svc/requests. While
  /// tracing is enabled, a request arriving without a trace id is
  /// assigned one from a per-service counter.
  std::future<Response> submit(Request request);

  /// Synchronous convenience: submit and wait.
  Response call(Request request);

  /// Wait until everything admitted so far has completed.
  void drain();

  [[nodiscard]] ResultCache& cache() { return cache_; }
  [[nodiscard]] std::size_t queueDepth() const { return scheduler_.queueDepth(); }

 private:
  Response handle(const Request& request);

  ServiceOptions options_;
  ResultCache cache_;
  std::atomic<std::uint64_t> nextTraceId_{1};
  Scheduler scheduler_;  ///< last member: stops before cache destructs
};

/// Tally of one runServer() session, by response status.
struct ServerStats {
  std::size_t lines = 0;     ///< non-blank input lines consumed
  std::size_t ok = 0;
  std::size_t errors = 0;
  std::size_t invalid = 0;
  std::size_t shed = 0;
  std::size_t timeouts = 0;
  std::size_t slow = 0;      ///< responses over ServerOptions::slowThresholdMs
};

/// Front-end knobs for runServer(). Defaults preserve the bare three-
/// argument behavior exactly.
struct ServerOptions {
  /// When non-null, every response slower (submit -> emitted) than
  /// slowThresholdMs appends one structured JSONL record here with the
  /// full phase decomposition. Requires obs or tracing to be enabled
  /// (timestamps are not captured otherwise).
  std::ostream* slowLog = nullptr;
  double slowThresholdMs = 50.0;
};

/// Serve JSONL requests from `in` until EOF: one response line per request
/// line, in input order (responses to later requests never overtake
/// earlier ones even when evaluation reorders). Blank lines are skipped;
/// unparseable lines produce status:"invalid" responses and keep serving.
///
/// Each parsed request is assigned its 1-based line number as trace id.
/// While obs or tracing is on, the emitter records the svc/phase/emit and
/// svc/latency/total histograms and per-request "request"/"work"/"emit"
/// async trace spans (queue_wait comes from the scheduler, dedup_join and
/// eval from the cache and handler), so queue_wait + work + emit
/// partitions each request's wall time exactly.
ServerStats runServer(std::istream& in, std::ostream& out, Service& service,
                      const ServerOptions& options);
ServerStats runServer(std::istream& in, std::ostream& out, Service& service);

}  // namespace nano::svc
