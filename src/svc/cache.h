// Sharded LRU result cache with in-flight deduplication. Keys are the
// canonical request strings from svc/request.h (the content hash picks the
// shard and the bucket; the full key string guards against hash
// collisions). When several callers ask for the same key concurrently,
// exactly one computes and the rest block on its shared future — the
// "thundering herd" of identical sweep queries costs one evaluation.
//
// Instrumented: svc/cache_hits, svc/cache_misses, svc/cache_evictions,
// svc/dedup_joins counters and the svc/cache_size gauge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/journal.h"
#include "svc/request.h"

namespace nano::svc {

class ResultCache {
 public:
  /// `capacity` is the total cached entries across all shards (0 disables
  /// caching AND deduplication: every call computes). Shard count is
  /// rounded up to a power of two; per-shard capacity is capacity/shards,
  /// at least 1.
  explicit ResultCache(std::size_t capacity, int shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Return the outcome for `key`, computing it with `compute` on a miss.
  /// Concurrent callers with an equal key share one computation; callers
  /// joining an in-flight computation block until it finishes. `compute`
  /// must be a pure function of the key (the service's evaluate() is) and
  /// must not throw — a throwing compute poisons the waiters with the
  /// same exception and caches nothing.
  ///
  /// `trace` attributes the hit/miss/dedup-join journal events to the
  /// calling request; `dedupJoinNs` (when non-null) receives the
  /// nanoseconds this caller spent blocked on another caller's in-flight
  /// computation (0 on hits and misses).
  Outcome getOrCompute(const std::string& key,
                       const std::function<Outcome()>& compute,
                       const obs::TraceContext& trace = {},
                       std::int64_t* dedupJoinNs = nullptr);

  /// Entries currently cached (sums the shards; racy but monotonic
  /// per-shard — for tests and gauges).
  [[nodiscard]] std::size_t size() const;

  /// Drop every cached entry (in-flight computations are unaffected).
  void clear();

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] int shardCount() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const Outcome> outcome;
  };
  using LruList = std::list<Entry>;

  struct Shard {
    std::mutex mutex;
    LruList lru;  ///< front = most recently used
    std::unordered_map<std::string, LruList::iterator> index;
    std::unordered_map<std::string,
                       std::shared_future<std::shared_ptr<const Outcome>>>
        inflight;
  };

  Shard& shardFor(std::uint64_t hash) {
    return *shards_[hash & (shards_.size() - 1)];
  }

  std::size_t capacity_;
  std::size_t perShardCapacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace nano::svc
