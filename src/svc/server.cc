#include "svc/server.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <utility>

#include "obs/obs.h"
#include "svc/json.h"

namespace nano::svc {

Service::Service(ServiceOptions options)
    : options_(options),
      cache_(options.cacheEntries, options.cacheShards),
      scheduler_([this](const Request& request) { return handle(request); },
                 options.scheduler) {}

Response Service::handle(const Request& request) {
  std::int64_t evalNs = 0;
  std::int64_t dedupJoinNs = 0;
  auto compute = [&] {
    // Install the request's identity for the duration of the evaluation
    // so the eval span and any exec regions it forks attribute to it.
    const obs::TraceContextScope scope(request.trace);
    const std::int64_t begin = obs::timingNowNs();
    Outcome outcome = evaluate(request);
    const std::int64_t end = obs::timingNowNs();
    if (begin > 0) {
      evalNs = end - begin;
      if (obs::enabled()) {
        obs::MetricsRegistry::instance()
            .timer("svc/phase/eval")
            .record(static_cast<double>(evalNs) * 1e-9);
      }
    }
    return outcome;
  };
  // Stats snapshots live process state: identical keys do not imply
  // identical payloads, so they bypass the cache and dedup entirely.
  const Outcome outcome =
      request.kind == RequestKind::Stats
          ? compute()
          : cache_.getOrCompute(request.canonicalKey(), compute, request.trace,
                                &dedupJoinNs);
  Response response = makeResponse(request, outcome);
  response.evalNs = evalNs;
  response.dedupJoinNs = dedupJoinNs;
  return response;
}

std::future<Response> Service::submit(Request request) {
  NANO_OBS_COUNT("svc/requests", 1);
  if (request.trace.id == 0 && obs::tracingEnabled()) {
    // The direct bit keeps these from ever colliding with the
    // session-assigned ids front ends hand out (satellite of the
    // multi-connection work: mixed direct-submit + server use must keep
    // per-request trace accounting intact).
    request.trace.id =
        kDirectTraceBit | nextTraceId_.fetch_add(1, std::memory_order_relaxed);
  }
  return options_.blockWhenFull ? scheduler_.submitBlocking(std::move(request))
                                : scheduler_.submit(std::move(request));
}

Response Service::call(Request request) {
  return submit(std::move(request)).get();
}

void Service::drain() { scheduler_.drain(); }

ServerStats& ServerStats::operator+=(const ServerStats& other) {
  lines += other.lines;
  ok += other.ok;
  errors += other.errors;
  invalid += other.invalid;
  shed += other.shed;
  timeouts += other.timeouts;
  slow += other.slow;
  return *this;
}

namespace {

std::future<Response> readyResponse(Response response) {
  std::promise<Response> p;
  p.set_value(std::move(response));
  return p.get_future();
}

std::string fmtMs(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", static_cast<double>(ns) * 1e-6);
  return buf;
}

/// Sessions may share one slow-log stream (every socket connection logs
/// into the same file), so record writes are serialized process-wide.
std::mutex& slowLogMutex() {
  static std::mutex mutex;
  return mutex;
}

/// One structured slow-request JSONL record with the phase decomposition.
void writeSlowRecord(std::ostream& os, const Response& response,
                     std::int64_t emitNs) {
  std::lock_guard<std::mutex> lock(slowLogMutex());
  os << "{\"id\":" << quoteJsonString(response.id) << ",\"kind\":\""
     << (response.hasKind ? kindName(response.kind) : "") << "\",\"status\":\""
     << statusName(response.status) << "\",\"trace\":" << response.traceId
     << ",\"wall_ms\":" << fmtMs(emitNs - response.submitNs)
     << ",\"queue_wait_ms\":" << fmtMs(response.dispatchNs - response.submitNs)
     << ",\"dedup_join_ms\":" << fmtMs(response.dedupJoinNs)
     << ",\"eval_ms\":" << fmtMs(response.evalNs)
     << ",\"emit_ms\":" << fmtMs(emitNs - response.doneNs) << "}\n";
}

}  // namespace

// ----------------------------------------------------------- EmitQueue

void Session::EmitQueue::push(std::future<Response> f) {
  std::unique_lock<std::mutex> lock(mutex_);
  spaceCv_.wait(lock, [this] { return pending_.size() < limit_; });
  pending_.push_back(std::move(f));
  lock.unlock();
  itemCv_.notify_one();
}

void Session::EmitQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  itemCv_.notify_all();
}

bool Session::EmitQueue::pop(std::future<Response>& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  itemCv_.wait(lock, [this] { return !pending_.empty() || closed_; });
  if (pending_.empty()) return false;
  out = std::move(pending_.front());
  pending_.pop_front();
  lock.unlock();
  spaceCv_.notify_one();
  return true;
}

// ------------------------------------------------------------- Session

Session::Session(Service& service, ServerOptions options,
                 std::function<void(std::string&&)> sink,
                 std::uint64_t sessionId)
    : service_(service),
      options_(options),
      sink_(std::move(sink)),
      sessionId_(sessionId),
      queue_(options.emitQueueLimit),
      slowThresholdNs_(
          static_cast<std::int64_t>(options.slowThresholdMs * 1e6)) {
  emitter_ = std::thread([this] { emitterLoop(); });
}

Session::~Session() { finish(); }

void Session::consumeLine(const std::string& line) {
  ++consumedLines_;
  const std::uint64_t traceId = makeSessionTraceId(sessionId_, consumedLines_);
  Request request;
  std::string error;
  if (!parseRequest(line, request, error)) {
    NANO_OBS_COUNT("svc/invalid", 1);
    // Even a line that never parsed gets its real trace id: the journal
    // and slow log would otherwise pile every invalid line onto id 0.
    request.trace.id = traceId;
    pending_.fetch_add(1, std::memory_order_acq_rel);
    queue_.push(readyResponse(
        makeFailure(request, ResponseStatus::Invalid, std::move(error))));
    return;
  }
  request.trace.id = traceId;
  pending_.fetch_add(1, std::memory_order_acq_rel);
  queue_.push(service_.submit(std::move(request)));
}

void Session::closeInput() {
  if (!inputClosed_.exchange(true, std::memory_order_acq_rel)) {
    queue_.close();
  }
}

void Session::setDrainedCallback(std::function<void()> callback) {
  drained_ = std::move(callback);
}

ServerStats Session::finish() {
  closeInput();
  if (!joined_) {
    emitter_.join();
    joined_ = true;
    stats_.lines = consumedLines_;
  }
  return stats_;
}

void Session::emitterLoop() {
  std::future<Response> next;
  while (queue_.pop(next)) {
    const Response response = next.get();
    sink_(response.toJsonLine() + '\n');
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    const std::int64_t emitNs = obs::timingNowNs();
    const bool timed = response.submitNs > 0 && response.dispatchNs > 0 &&
                       response.doneNs > 0 && emitNs > 0;
    if (timed) {
      const obs::TraceContext trace{response.traceId};
      obs::traceAsyncSpan("svc", "request", trace, response.submitNs, emitNs);
      obs::traceAsyncSpan("svc", "work", trace, response.dispatchNs,
                          response.doneNs);
      obs::traceAsyncSpan("svc", "emit", trace, response.doneNs, emitNs);
      if (obs::enabled()) {
        auto& registry = obs::MetricsRegistry::instance();
        registry.timer("svc/phase/emit")
            .record(static_cast<double>(emitNs - response.doneNs) * 1e-9);
        registry.timer("svc/latency/total")
            .record(static_cast<double>(emitNs - response.submitNs) * 1e-9);
      }
    }
    if (timed && emitNs - response.submitNs >= slowThresholdNs_) {
      ++stats_.slow;
      NANO_OBS_COUNT("svc/slow_requests", 1);
      if (options_.slowLog != nullptr) {
        writeSlowRecord(*options_.slowLog, response, emitNs);
      }
    }
    switch (response.status) {
      case ResponseStatus::Ok: ++stats_.ok; break;
      case ResponseStatus::Error: ++stats_.errors; break;
      case ResponseStatus::Invalid: ++stats_.invalid; break;
      case ResponseStatus::Shed: ++stats_.shed; break;
      case ResponseStatus::Timeout: ++stats_.timeouts; break;
    }
  }
  if (options_.slowLog != nullptr) {
    std::lock_guard<std::mutex> lock(slowLogMutex());
    options_.slowLog->flush();
  }
  finished_.store(true, std::memory_order_release);
  if (drained_) drained_();
}

// ----------------------------------------------------------- runServer

ServerStats runServer(std::istream& in, std::ostream& out, Service& service,
                      const ServerOptions& options) {
  Session session(
      service, options, [&out](std::string&& line) { out << line; },
      service.newSessionId());
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    if (line.empty()) continue;
    session.consumeLine(line);
  }
  const ServerStats stats = session.finish();
  out.flush();
  return stats;
}

ServerStats runServer(std::istream& in, std::ostream& out, Service& service) {
  return runServer(in, out, service, ServerOptions{});
}

}  // namespace nano::svc
