#include "svc/server.h"

#include <condition_variable>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#include "obs/obs.h"

namespace nano::svc {

Service::Service(ServiceOptions options)
    : options_(options),
      cache_(options.cacheEntries, options.cacheShards),
      scheduler_(
          [this](const Request& request) {
            return makeResponse(
                request, cache_.getOrCompute(request.canonicalKey(),
                                             [&] { return evaluate(request); }));
          },
          options.scheduler) {}

std::future<Response> Service::submit(Request request) {
  NANO_OBS_COUNT("svc/requests", 1);
  return options_.blockWhenFull ? scheduler_.submitBlocking(std::move(request))
                                : scheduler_.submit(std::move(request));
}

Response Service::call(Request request) {
  return submit(std::move(request)).get();
}

void Service::drain() { scheduler_.drain(); }

namespace {

/// Bounded hand-off of pending responses from the reader to the emitter,
/// preserving submission order. Ready failure responses count too, so a
/// flood of sheds cannot grow memory without bound: the reader waits once
/// `limit` responses are pending emission.
class EmitQueue {
 public:
  explicit EmitQueue(std::size_t limit) : limit_(limit) {}

  void push(std::future<Response> f) {
    std::unique_lock<std::mutex> lock(mutex_);
    spaceCv_.wait(lock, [this] { return pending_.size() < limit_; });
    pending_.push_back(std::move(f));
    lock.unlock();
    itemCv_.notify_one();
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    itemCv_.notify_all();
  }

  /// Next future in submission order; false at end of stream.
  bool pop(std::future<Response>& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    itemCv_.wait(lock, [this] { return !pending_.empty() || closed_; });
    if (pending_.empty()) return false;
    out = std::move(pending_.front());
    pending_.pop_front();
    lock.unlock();
    spaceCv_.notify_one();
    return true;
  }

 private:
  std::mutex mutex_;
  std::condition_variable itemCv_, spaceCv_;
  std::deque<std::future<Response>> pending_;
  std::size_t limit_;
  bool closed_ = false;
};

std::future<Response> readyResponse(Response response) {
  std::promise<Response> p;
  p.set_value(std::move(response));
  return p.get_future();
}

}  // namespace

ServerStats runServer(std::istream& in, std::ostream& out, Service& service) {
  ServerStats stats;
  EmitQueue queue(8192);
  std::mutex statsMutex;

  std::thread emitter([&] {
    std::future<Response> next;
    while (queue.pop(next)) {
      const Response response = next.get();
      out << response.toJsonLine() << '\n';
      std::lock_guard<std::mutex> lock(statsMutex);
      switch (response.status) {
        case ResponseStatus::Ok: ++stats.ok; break;
        case ResponseStatus::Error: ++stats.errors; break;
        case ResponseStatus::Invalid: ++stats.invalid; break;
        case ResponseStatus::Shed: ++stats.shed; break;
        case ResponseStatus::Timeout: ++stats.timeouts; break;
      }
    }
    out.flush();
  });

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    if (line.empty()) continue;
    ++stats.lines;
    Request request;
    std::string error;
    if (!parseRequest(line, request, error)) {
      NANO_OBS_COUNT("svc/invalid", 1);
      queue.push(readyResponse(
          makeFailure(request, ResponseStatus::Invalid, error)));
      continue;
    }
    queue.push(service.submit(std::move(request)));
  }
  queue.close();
  emitter.join();
  return stats;
}

}  // namespace nano::svc
