#include "svc/server.h"

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#include "obs/obs.h"
#include "svc/json.h"

namespace nano::svc {

Service::Service(ServiceOptions options)
    : options_(options),
      cache_(options.cacheEntries, options.cacheShards),
      scheduler_([this](const Request& request) { return handle(request); },
                 options.scheduler) {}

Response Service::handle(const Request& request) {
  std::int64_t evalNs = 0;
  std::int64_t dedupJoinNs = 0;
  auto compute = [&] {
    // Install the request's identity for the duration of the evaluation
    // so the eval span and any exec regions it forks attribute to it.
    const obs::TraceContextScope scope(request.trace);
    const std::int64_t begin = obs::timingNowNs();
    Outcome outcome = evaluate(request);
    const std::int64_t end = obs::timingNowNs();
    if (begin > 0) {
      evalNs = end - begin;
      if (obs::enabled()) {
        obs::MetricsRegistry::instance()
            .timer("svc/phase/eval")
            .record(static_cast<double>(evalNs) * 1e-9);
      }
    }
    return outcome;
  };
  // Stats snapshots live process state: identical keys do not imply
  // identical payloads, so they bypass the cache and dedup entirely.
  const Outcome outcome =
      request.kind == RequestKind::Stats
          ? compute()
          : cache_.getOrCompute(request.canonicalKey(), compute, request.trace,
                                &dedupJoinNs);
  Response response = makeResponse(request, outcome);
  response.evalNs = evalNs;
  response.dedupJoinNs = dedupJoinNs;
  return response;
}

std::future<Response> Service::submit(Request request) {
  NANO_OBS_COUNT("svc/requests", 1);
  if (request.trace.id == 0 && obs::tracingEnabled()) {
    request.trace.id = nextTraceId_.fetch_add(1, std::memory_order_relaxed);
  }
  return options_.blockWhenFull ? scheduler_.submitBlocking(std::move(request))
                                : scheduler_.submit(std::move(request));
}

Response Service::call(Request request) {
  return submit(std::move(request)).get();
}

void Service::drain() { scheduler_.drain(); }

namespace {

/// Bounded hand-off of pending responses from the reader to the emitter,
/// preserving submission order. Ready failure responses count too, so a
/// flood of sheds cannot grow memory without bound: the reader waits once
/// `limit` responses are pending emission.
class EmitQueue {
 public:
  explicit EmitQueue(std::size_t limit) : limit_(limit) {}

  void push(std::future<Response> f) {
    std::unique_lock<std::mutex> lock(mutex_);
    spaceCv_.wait(lock, [this] { return pending_.size() < limit_; });
    pending_.push_back(std::move(f));
    lock.unlock();
    itemCv_.notify_one();
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    itemCv_.notify_all();
  }

  /// Next future in submission order; false at end of stream.
  bool pop(std::future<Response>& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    itemCv_.wait(lock, [this] { return !pending_.empty() || closed_; });
    if (pending_.empty()) return false;
    out = std::move(pending_.front());
    pending_.pop_front();
    lock.unlock();
    spaceCv_.notify_one();
    return true;
  }

 private:
  std::mutex mutex_;
  std::condition_variable itemCv_, spaceCv_;
  std::deque<std::future<Response>> pending_;
  std::size_t limit_;
  bool closed_ = false;
};

std::future<Response> readyResponse(Response response) {
  std::promise<Response> p;
  p.set_value(std::move(response));
  return p.get_future();
}

std::string fmtMs(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", static_cast<double>(ns) * 1e-6);
  return buf;
}

/// One structured slow-request JSONL record with the phase decomposition.
void writeSlowRecord(std::ostream& os, const Response& response,
                     std::int64_t emitNs) {
  os << "{\"id\":" << quoteJsonString(response.id) << ",\"kind\":\""
     << (response.hasKind ? kindName(response.kind) : "") << "\",\"status\":\""
     << statusName(response.status) << "\",\"trace\":" << response.traceId
     << ",\"wall_ms\":" << fmtMs(emitNs - response.submitNs)
     << ",\"queue_wait_ms\":" << fmtMs(response.dispatchNs - response.submitNs)
     << ",\"dedup_join_ms\":" << fmtMs(response.dedupJoinNs)
     << ",\"eval_ms\":" << fmtMs(response.evalNs)
     << ",\"emit_ms\":" << fmtMs(emitNs - response.doneNs) << "}\n";
}

}  // namespace

ServerStats runServer(std::istream& in, std::ostream& out, Service& service,
                      const ServerOptions& options) {
  ServerStats stats;
  EmitQueue queue(8192);
  std::mutex statsMutex;
  const std::int64_t slowThresholdNs =
      static_cast<std::int64_t>(options.slowThresholdMs * 1e6);

  std::thread emitter([&] {
    std::future<Response> next;
    while (queue.pop(next)) {
      const Response response = next.get();
      out << response.toJsonLine() << '\n';
      const std::int64_t emitNs = obs::timingNowNs();
      const bool timed = response.submitNs > 0 && response.dispatchNs > 0 &&
                         response.doneNs > 0 && emitNs > 0;
      if (timed) {
        const obs::TraceContext trace{response.traceId};
        obs::traceAsyncSpan("svc", "request", trace, response.submitNs, emitNs);
        obs::traceAsyncSpan("svc", "work", trace, response.dispatchNs,
                            response.doneNs);
        obs::traceAsyncSpan("svc", "emit", trace, response.doneNs, emitNs);
        if (obs::enabled()) {
          auto& registry = obs::MetricsRegistry::instance();
          registry.timer("svc/phase/emit")
              .record(static_cast<double>(emitNs - response.doneNs) * 1e-9);
          registry.timer("svc/latency/total")
              .record(static_cast<double>(emitNs - response.submitNs) * 1e-9);
        }
      }
      std::lock_guard<std::mutex> lock(statsMutex);
      if (timed && emitNs - response.submitNs >= slowThresholdNs) {
        ++stats.slow;
        NANO_OBS_COUNT("svc/slow_requests", 1);
        if (options.slowLog != nullptr) {
          writeSlowRecord(*options.slowLog, response, emitNs);
        }
      }
      switch (response.status) {
        case ResponseStatus::Ok: ++stats.ok; break;
        case ResponseStatus::Error: ++stats.errors; break;
        case ResponseStatus::Invalid: ++stats.invalid; break;
        case ResponseStatus::Shed: ++stats.shed; break;
        case ResponseStatus::Timeout: ++stats.timeouts; break;
      }
    }
    out.flush();
    if (options.slowLog != nullptr) options.slowLog->flush();
  });

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    if (line.empty()) continue;
    ++stats.lines;
    Request request;
    std::string error;
    if (!parseRequest(line, request, error)) {
      NANO_OBS_COUNT("svc/invalid", 1);
      queue.push(readyResponse(
          makeFailure(request, ResponseStatus::Invalid, error)));
      continue;
    }
    // The 1-based input line number is the request's trace id: stable
    // across replays, unique within a session, zero-cost to assign.
    request.trace.id = stats.lines;
    queue.push(service.submit(std::move(request)));
  }
  queue.close();
  emitter.join();
  return stats;
}

ServerStats runServer(std::istream& in, std::ostream& out, Service& service) {
  return runServer(in, out, service, ServerOptions{});
}

}  // namespace nano::svc
