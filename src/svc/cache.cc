#include "svc/cache.h"

#include "obs/obs.h"

namespace nano::svc {

namespace {

std::size_t roundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, int shards)
    : capacity_(capacity) {
  const std::size_t shardCount = roundUpPow2(
      static_cast<std::size_t>(shards < 1 ? 1 : shards));
  perShardCapacity_ = capacity_ / shardCount;
  if (capacity_ > 0 && perShardCapacity_ == 0) perShardCapacity_ = 1;
  shards_.reserve(shardCount);
  for (std::size_t i = 0; i < shardCount; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Outcome ResultCache::getOrCompute(const std::string& key,
                                  const std::function<Outcome()>& compute,
                                  const obs::TraceContext& trace,
                                  std::int64_t* dedupJoinNs) {
  if (capacity_ == 0) return compute();

  Shard& shard = shardFor(fnv1a64(key));
  std::promise<std::shared_ptr<const Outcome>> promise;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (auto hit = shard.index.find(key); hit != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, hit->second);
      NANO_OBS_COUNT("svc/cache_hits", 1);
      obs::traceInstant("svc", "cache.hit", trace);
      return *hit->second->outcome;
    }
    if (auto flight = shard.inflight.find(key);
        flight != shard.inflight.end()) {
      // Someone else is computing this key: wait outside the shard lock.
      auto future = flight->second;
      lock.unlock();
      NANO_OBS_COUNT("svc/dedup_joins", 1);
      const std::int64_t joinBegin = obs::timingNowNs();
      const Outcome result = *future.get();
      const std::int64_t joinEnd = obs::timingNowNs();
      if (joinBegin > 0) {
        if (dedupJoinNs != nullptr) *dedupJoinNs = joinEnd - joinBegin;
        obs::traceComplete("svc", "cache.dedup_join", trace, joinBegin,
                           joinEnd - joinBegin);
        if (obs::enabled()) {
          obs::MetricsRegistry::instance()
              .timer("svc/phase/dedup_join")
              .record(static_cast<double>(joinEnd - joinBegin) * 1e-9);
        }
      }
      return result;
    }
    shard.inflight.emplace(key, promise.get_future().share());
  }

  NANO_OBS_COUNT("svc/cache_misses", 1);
  obs::traceInstant("svc", "cache.miss", trace);
  std::shared_ptr<const Outcome> result;
  try {
    result = std::make_shared<const Outcome>(compute());
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.inflight.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.inflight.erase(key);
    // Double-check: a clear() between unlock and here leaves no entry; a
    // racing insert of the same key is impossible (we owned the in-flight
    // slot), so a plain insert is safe.
    shard.lru.push_front(Entry{key, result});
    shard.index.emplace(key, shard.lru.begin());
    while (shard.lru.size() > perShardCapacity_) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      NANO_OBS_COUNT("svc/cache_evictions", 1);
    }
  }
  promise.set_value(result);
  if (obs::enabled()) {
    NANO_OBS_GAUGE("svc/cache_size", static_cast<double>(size()));
  }
  return *result;
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

void ResultCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace nano::svc
