// Validator for the Chrome trace-event JSON that obs::exportChromeTrace
// emits: parses the document with the svc JSON parser and checks the
// event stream is well formed — every synchronous 'B' has a matching 'E'
// in strict LIFO order on its thread, every async 'b' pairs with exactly
// one 'e' (by category + id + name), phases are known, timestamps are
// sane. Also extracts the per-request phase decomposition so tests (and
// the trace_lint tool) can assert queue_wait + work + emit partitions
// each request's wall time. Lives in svc because it reuses svc/json.h.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace nano::svc {

/// Durations (ns) of one traced request's async phase spans; -1 marks a
/// phase that never appeared in the trace.
struct TracePhases {
  std::int64_t requestNs = -1;    ///< submit -> emitted (wall)
  std::int64_t queueWaitNs = -1;  ///< submit -> dispatch
  std::int64_t workNs = -1;       ///< dispatch -> done
  std::int64_t emitNs = -1;       ///< done -> emitted

  /// True when all four phases are present and queue_wait + work + emit
  /// equals the request span exactly (integer ns — the spans share their
  /// boundary timestamps by construction).
  [[nodiscard]] bool accounted() const {
    return requestNs >= 0 && queueWaitNs >= 0 && workNs >= 0 && emitNs >= 0 &&
           queueWaitNs + workNs + emitNs == requestNs;
  }
};

struct TraceCheckResult {
  bool ok = false;
  std::string error;         ///< first violation found (empty when ok)
  std::size_t events = 0;    ///< total events examined
  std::size_t syncPairs = 0;   ///< matched B/E pairs
  std::size_t asyncPairs = 0;  ///< matched b/e pairs
  /// Phase decomposition per trace id, from the svc "request"/
  /// "queue_wait"/"work"/"emit" async spans.
  std::map<std::uint64_t, TracePhases> requests;
};

/// Validate a Chrome trace-event JSON document (the whole file contents).
/// Never throws; malformed JSON comes back as ok=false with the parser's
/// message in `error`.
TraceCheckResult validateChromeTrace(std::string_view json);

}  // namespace nano::svc
