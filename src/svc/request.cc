#include "svc/request.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "svc/json.h"

namespace nano::svc {

namespace {

constexpr const char* kKindNames[kRequestKindCount] = {
    "figure1",      "figure2",     "figure34",       "figure5",
    "table2",       "design_point", "design_grid",   "design_optimum",
    "repeater",     "wire",        "grid_solve",     "node_summary",
    "sta",          "stats",
};

constexpr const char* kPriorityNames[3] = {"high", "normal", "low"};

constexpr const char* kStatusNames[5] = {"ok", "error", "invalid", "shed",
                                         "timeout"};

}  // namespace

const char* kindName(RequestKind kind) {
  return kKindNames[static_cast<int>(kind)];
}

bool kindFromName(std::string_view name, RequestKind& out) {
  for (int i = 0; i < kRequestKindCount; ++i) {
    if (name == kKindNames[i]) {
      out = static_cast<RequestKind>(i);
      return true;
    }
  }
  return false;
}

const char* priorityName(Priority priority) {
  return kPriorityNames[static_cast<int>(priority)];
}

bool priorityFromName(std::string_view name, Priority& out) {
  for (int i = 0; i < 3; ++i) {
    if (name == kPriorityNames[i]) {
      out = static_cast<Priority>(i);
      return true;
    }
  }
  return false;
}

const char* statusName(ResponseStatus status) {
  return kStatusNames[static_cast<int>(status)];
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

// ------------------------------------------------------- canonical key

namespace {

/// Renders `name=value` pairs in declaration order with round-trip double
/// formatting, so the key is a pure function of the filled param struct.
class KeyBuilder {
 public:
  explicit KeyBuilder(RequestKind kind) : out_(kindName(kind)) {
    out_.push_back('(');
  }

  void field(const char* name, double v) { raw(name, formatJsonDouble(v)); }
  void field(const char* name, int v) { raw(name, std::to_string(v)); }
  void field(const char* name, bool v) { raw(name, v ? "true" : "false"); }
  void field(const char* name, const std::string& v) { raw(name, v); }

  std::string finish() {
    out_.push_back(')');
    return std::move(out_);
  }

 private:
  void raw(const char* name, const std::string& value) {
    if (!first_) out_.push_back(',');
    first_ = false;
    out_ += name;
    out_.push_back('=');
    out_ += value;
  }

  std::string out_;
  bool first_ = true;
};

void keyFields(KeyBuilder& k, const Fig1Params& p) {
  k.field("points", p.points);
}
void keyFields(KeyBuilder&, const Fig2Params&) {}
void keyFields(KeyBuilder& k, const Fig34Params& p) {
  k.field("node_nm", p.nodeNm);
  k.field("points", p.points);
  k.field("activity", p.activity);
  k.field("vdd_min", p.vddMin);
}
void keyFields(KeyBuilder& k, const Fig5Params& p) {
  k.field("mesh_check", p.meshCheck);
}
void keyFields(KeyBuilder&, const Table2Params&) {}
void keyFields(KeyBuilder& k, const DesignPointParams& p) {
  k.field("node_nm", p.nodeNm);
  k.field("activity", p.activity);
  k.field("vdd", p.vdd);
  k.field("vth", p.vth);
}
void keyFields(KeyBuilder& k, const DesignGridParams& p) {
  k.field("node_nm", p.nodeNm);
  k.field("activity", p.activity);
  k.field("vdd_min", p.vddMin);
  k.field("vth_min", p.vthMin);
  k.field("vth_max", p.vthMax);
  k.field("vdd_steps", p.vddSteps);
  k.field("vth_steps", p.vthSteps);
}
void keyFields(KeyBuilder& k, const DesignOptimumParams& p) {
  keyFields(k, p.grid);
  k.field("delay_target", p.delayTarget);
  k.field("max_static_fraction", p.maxStaticFraction);
}
void keyFields(KeyBuilder& k, const RepeaterParams& p) {
  k.field("node_nm", p.nodeNm);
  k.field("width_multiple", p.widthMultiple);
}
void keyFields(KeyBuilder& k, const WireParams& p) {
  k.field("node_nm", p.nodeNm);
  k.field("width_multiple", p.widthMultiple);
  k.field("match_spacing", p.matchSpacing);
}
void keyFields(KeyBuilder& k, const GridSolveParams& p) {
  k.field("node_nm", p.nodeNm);
  k.field("width_multiple", p.widthMultiple);
  k.field("pad_pitch_um", p.padPitchUm);
  k.field("subdivisions", p.subdivisions);
  k.field("hotspot", p.hotspot);
  k.field("preconditioner", p.preconditioner);
}
void keyFields(KeyBuilder& k, const NodeSummaryParams& p) {
  k.field("node_nm", p.nodeNm);
}
void keyFields(KeyBuilder& k, const StaParams& p) {
  k.field("node_nm", p.nodeNm);
  k.field("gates", p.gates);
  k.field("seed", p.seed);
  k.field("blocks", p.blocks);
}
void keyFields(KeyBuilder& k, const StatsParams& p) {
  k.field("delta", p.delta);
}

}  // namespace

std::string Request::canonicalKey() const {
  KeyBuilder k(kind);
  std::visit([&k](const auto& p) { keyFields(k, p); }, params);
  return k.finish();
}

std::uint64_t Request::contentHash() const { return fnv1a64(canonicalKey()); }

// ------------------------------------------------------------- parsing

namespace {

/// Typed, consumption-tracked reads from the "params" object: every field
/// is optional (defaults hold), wrong types fail, and leftover keys fail
/// so a misspelled parameter cannot silently fall back to a default.
class ParamReader {
 public:
  explicit ParamReader(const JsonValue* obj) : obj_(obj) {
    if (obj_ != nullptr) consumed_.assign(obj_->members().size(), false);
  }

  void number(const char* name, double& out) {
    const JsonValue* v = take(name);
    if (v == nullptr) return;
    if (!v->isNumber()) fail(name, "a number");
    out = v->asNumber();
  }

  void integer(const char* name, int& out) {
    const JsonValue* v = take(name);
    if (v == nullptr) return;
    if (!v->isNumber()) fail(name, "a number");
    const double d = v->asNumber();
    if (d != std::floor(d) || std::fabs(d) > 1e9) fail(name, "an integer");
    out = static_cast<int>(d);
  }

  void boolean(const char* name, bool& out) {
    const JsonValue* v = take(name);
    if (v == nullptr) return;
    if (!v->isBool()) fail(name, "a boolean");
    out = v->asBool();
  }

  void string(const char* name, std::string& out) {
    const JsonValue* v = take(name);
    if (v == nullptr) return;
    if (!v->isString()) fail(name, "a string");
    out = v->asString();
  }

  /// Rejects any member no reader consumed.
  void finish() {
    if (obj_ == nullptr) return;
    const auto& members = obj_->members();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!consumed_[i]) {
        throw std::invalid_argument("unknown parameter \"" + members[i].first +
                                    "\"");
      }
    }
  }

 private:
  const JsonValue* take(const char* name) {
    if (obj_ == nullptr) return nullptr;
    const auto& members = obj_->members();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i].first == name) {
        consumed_[i] = true;
        return &members[i].second;
      }
    }
    return nullptr;
  }

  [[noreturn]] static void fail(const char* name, const char* want) {
    throw std::invalid_argument(std::string("parameter \"") + name +
                                "\" must be " + want);
  }

  const JsonValue* obj_;
  std::vector<bool> consumed_;
};

void readParams(ParamReader& r, Fig1Params& p) { r.integer("points", p.points); }
void readParams(ParamReader&, Fig2Params&) {}
void readParams(ParamReader& r, Fig34Params& p) {
  r.integer("node_nm", p.nodeNm);
  r.integer("points", p.points);
  r.number("activity", p.activity);
  r.number("vdd_min", p.vddMin);
}
void readParams(ParamReader& r, Fig5Params& p) {
  r.boolean("mesh_check", p.meshCheck);
}
void readParams(ParamReader&, Table2Params&) {}
void readParams(ParamReader& r, DesignPointParams& p) {
  r.integer("node_nm", p.nodeNm);
  r.number("activity", p.activity);
  r.number("vdd", p.vdd);
  r.number("vth", p.vth);
}
void readParams(ParamReader& r, DesignGridParams& p) {
  r.integer("node_nm", p.nodeNm);
  r.number("activity", p.activity);
  r.number("vdd_min", p.vddMin);
  r.number("vth_min", p.vthMin);
  r.number("vth_max", p.vthMax);
  r.integer("vdd_steps", p.vddSteps);
  r.integer("vth_steps", p.vthSteps);
}
void readParams(ParamReader& r, DesignOptimumParams& p) {
  readParams(r, p.grid);
  r.number("delay_target", p.delayTarget);
  r.number("max_static_fraction", p.maxStaticFraction);
}
void readParams(ParamReader& r, RepeaterParams& p) {
  r.integer("node_nm", p.nodeNm);
  r.number("width_multiple", p.widthMultiple);
}
void readParams(ParamReader& r, WireParams& p) {
  r.integer("node_nm", p.nodeNm);
  r.number("width_multiple", p.widthMultiple);
  r.boolean("match_spacing", p.matchSpacing);
}
void readParams(ParamReader& r, GridSolveParams& p) {
  r.integer("node_nm", p.nodeNm);
  r.number("width_multiple", p.widthMultiple);
  r.number("pad_pitch_um", p.padPitchUm);
  r.integer("subdivisions", p.subdivisions);
  r.boolean("hotspot", p.hotspot);
  r.string("preconditioner", p.preconditioner);
  if (p.preconditioner != "auto" && p.preconditioner != "jacobi" &&
      p.preconditioner != "multigrid") {
    throw std::invalid_argument("parameter \"preconditioner\" must be one of "
                                "auto/jacobi/multigrid");
  }
}
void readParams(ParamReader& r, NodeSummaryParams& p) {
  r.integer("node_nm", p.nodeNm);
}
void readParams(ParamReader& r, StaParams& p) {
  r.integer("node_nm", p.nodeNm);
  r.integer("gates", p.gates);
  r.integer("seed", p.seed);
  r.integer("blocks", p.blocks);
  if (p.gates < 64 || p.gates > 2000000) {
    throw std::invalid_argument(
        "parameter \"gates\" must be in [64, 2000000]");
  }
  if (p.blocks < 1 || p.blocks > 64) {
    throw std::invalid_argument("parameter \"blocks\" must be in [1, 64]");
  }
}
void readParams(ParamReader& r, StatsParams& p) {
  r.boolean("delta", p.delta);
}

Params defaultParams(RequestKind kind) {
  switch (kind) {
    case RequestKind::Figure1: return Fig1Params{};
    case RequestKind::Figure2: return Fig2Params{};
    case RequestKind::Figure34: return Fig34Params{};
    case RequestKind::Figure5: return Fig5Params{};
    case RequestKind::Table2: return Table2Params{};
    case RequestKind::DesignPoint: return DesignPointParams{};
    case RequestKind::DesignGrid: return DesignGridParams{};
    case RequestKind::DesignOptimum: return DesignOptimumParams{};
    case RequestKind::Repeater: return RepeaterParams{};
    case RequestKind::Wire: return WireParams{};
    case RequestKind::GridSolve: return GridSolveParams{};
    case RequestKind::NodeSummary: return NodeSummaryParams{};
    case RequestKind::Sta: return StaParams{};
    case RequestKind::Stats: return StatsParams{};
  }
  return Fig1Params{};
}

}  // namespace

bool parseRequest(const std::string& line, Request& out, std::string& error) {
  out = Request{};
  JsonValue doc;
  try {
    doc = parseJson(line);
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  if (!doc.isObject()) {
    error = "request must be a JSON object";
    return false;
  }
  if (const JsonValue* id = doc.find("id"); id != nullptr && id->isString()) {
    out.id = id->asString();  // best-effort echo even when the rest fails
  }
  try {
    for (const auto& [key, value] : doc.members()) {
      if (key == "id") {
        if (!value.isString()) throw std::invalid_argument("\"id\" must be a string");
      } else if (key == "kind") {
        if (!value.isString() || !kindFromName(value.asString(), out.kind)) {
          throw std::invalid_argument(
              "unknown kind" +
              (value.isString() ? " \"" + value.asString() + "\"" : ""));
        }
      } else if (key == "priority") {
        if (!value.isString() ||
            !priorityFromName(value.asString(), out.priority)) {
          throw std::invalid_argument("\"priority\" must be high/normal/low");
        }
      } else if (key == "deadline_ms") {
        if (!value.isNumber() || !(value.asNumber() >= 0.0)) {
          throw std::invalid_argument("\"deadline_ms\" must be a number >= 0");
        }
        // Clamp, don't reject: a huge deadline means "effectively none",
        // and letting it through raw would overflow the scheduler's
        // duration conversion.
        out.deadlineMs = std::min(value.asNumber(), kMaxDeadlineMs);
      } else if (key != "params") {
        throw std::invalid_argument("unknown request field \"" + key + "\"");
      }
    }
    const JsonValue* kindField = doc.find("kind");
    if (kindField == nullptr) throw std::invalid_argument("missing \"kind\"");
    const JsonValue* paramsField = doc.find("params");
    if (paramsField != nullptr && !paramsField->isObject()) {
      throw std::invalid_argument("\"params\" must be an object");
    }
    out.params = defaultParams(out.kind);
    ParamReader reader(paramsField);
    std::visit([&reader](auto& p) { readParams(reader, p); }, out.params);
    reader.finish();
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  return true;
}

// ----------------------------------------------------------- responses

std::string Response::toJsonLine() const {
  std::string out = "{\"id\":" + quoteJsonString(id);
  if (hasKind) {
    out += ",\"kind\":\"";
    out += kindName(kind);
    out += '"';
  }
  out += ",\"status\":\"";
  out += statusName(status);
  out += '"';
  if (status == ResponseStatus::Ok) {
    out += ",\"data\":";
    out += data.empty() ? "{}" : data;
  } else {
    out += ",\"error\":" + quoteJsonString(error);
  }
  out.push_back('}');
  return out;
}

Response makeResponse(const Request& request, const Outcome& outcome) {
  Response r;
  r.id = request.id;
  r.hasKind = true;
  r.kind = request.kind;
  r.status = outcome.status;
  r.data = outcome.data;
  r.error = outcome.error;
  r.traceId = request.trace.id;
  return r;
}

Response makeFailure(const Request& request, ResponseStatus status,
                     std::string message) {
  Response r;
  r.id = request.id;
  r.hasKind = status != ResponseStatus::Invalid;
  r.kind = request.kind;
  r.status = status;
  r.error = std::move(message);
  r.traceId = request.trace.id;
  return r;
}

}  // namespace nano::svc
