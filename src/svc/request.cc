#include "svc/request.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "svc/json.h"

namespace nano::svc {

namespace {

constexpr const char* kKindNames[kRequestKindCount] = {
    "figure1",      "figure2",     "figure34",       "figure5",
    "table2",       "design_point", "design_grid",   "design_optimum",
    "repeater",     "wire",        "grid_solve",     "node_summary",
    "sta",          "scenario",    "scenario_sweep", "stats",
};

constexpr const char* kPriorityNames[3] = {"high", "normal", "low"};

constexpr const char* kStatusNames[5] = {"ok", "error", "invalid", "shed",
                                         "timeout"};

}  // namespace

const char* kindName(RequestKind kind) {
  return kKindNames[static_cast<int>(kind)];
}

bool kindFromName(std::string_view name, RequestKind& out) {
  for (int i = 0; i < kRequestKindCount; ++i) {
    if (name == kKindNames[i]) {
      out = static_cast<RequestKind>(i);
      return true;
    }
  }
  return false;
}

const char* priorityName(Priority priority) {
  return kPriorityNames[static_cast<int>(priority)];
}

bool priorityFromName(std::string_view name, Priority& out) {
  for (int i = 0; i < 3; ++i) {
    if (name == kPriorityNames[i]) {
      out = static_cast<Priority>(i);
      return true;
    }
  }
  return false;
}

const char* statusName(ResponseStatus status) {
  return kStatusNames[static_cast<int>(status)];
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

// ------------------------------------------------------- canonical key

namespace {

/// Renders `name=value` pairs in declaration order with round-trip double
/// formatting, so the key is a pure function of the filled param struct.
class KeyBuilder {
 public:
  explicit KeyBuilder(RequestKind kind) : out_(kindName(kind)) {
    out_.push_back('(');
  }

  void field(const char* name, double v) { raw(name, formatJsonDouble(v)); }
  void field(const char* name, int v) { raw(name, std::to_string(v)); }
  void field(const char* name, bool v) { raw(name, v ? "true" : "false"); }
  void field(const char* name, const std::string& v) { raw(name, v); }

  std::string finish() {
    out_.push_back(')');
    return std::move(out_);
  }

 private:
  void raw(const char* name, const std::string& value) {
    if (!first_) out_.push_back(',');
    first_ = false;
    out_ += name;
    out_.push_back('=');
    out_ += value;
  }

  std::string out_;
  bool first_ = true;
};

// Single source of truth for every kind's wire fields: one fields()
// declaration per param struct, walked by three visitors — the canonical-
// key renderer, the JSONL parameter reader, and the params->JSON writer.
// A field added here is automatically keyed, parsed, rendered, and
// covered by the every-kind round-trip test; the three surfaces cannot
// drift apart. Validation that goes beyond types lives in
// validateParams() below, not here.

template <class V> void fields(V& v, Fig1Params& p) {
  v.integer("points", p.points);
}
template <class V> void fields(V&, Fig2Params&) {}
template <class V> void fields(V& v, Fig34Params& p) {
  v.integer("node_nm", p.nodeNm);
  v.integer("points", p.points);
  v.number("activity", p.activity);
  v.number("vdd_min", p.vddMin);
}
template <class V> void fields(V& v, Fig5Params& p) {
  v.boolean("mesh_check", p.meshCheck);
}
template <class V> void fields(V&, Table2Params&) {}
template <class V> void fields(V& v, DesignPointParams& p) {
  v.integer("node_nm", p.nodeNm);
  v.number("activity", p.activity);
  v.number("vdd", p.vdd);
  v.number("vth", p.vth);
}
template <class V> void fields(V& v, DesignGridParams& p) {
  v.integer("node_nm", p.nodeNm);
  v.number("activity", p.activity);
  v.number("vdd_min", p.vddMin);
  v.number("vth_min", p.vthMin);
  v.number("vth_max", p.vthMax);
  v.integer("vdd_steps", p.vddSteps);
  v.integer("vth_steps", p.vthSteps);
}
template <class V> void fields(V& v, DesignOptimumParams& p) {
  fields(v, p.grid);
  v.number("delay_target", p.delayTarget);
  v.number("max_static_fraction", p.maxStaticFraction);
}
template <class V> void fields(V& v, RepeaterParams& p) {
  v.integer("node_nm", p.nodeNm);
  v.number("width_multiple", p.widthMultiple);
}
template <class V> void fields(V& v, WireParams& p) {
  v.integer("node_nm", p.nodeNm);
  v.number("width_multiple", p.widthMultiple);
  v.boolean("match_spacing", p.matchSpacing);
}
template <class V> void fields(V& v, GridSolveParams& p) {
  v.integer("node_nm", p.nodeNm);
  v.number("width_multiple", p.widthMultiple);
  v.number("pad_pitch_um", p.padPitchUm);
  v.integer("subdivisions", p.subdivisions);
  v.boolean("hotspot", p.hotspot);
  v.text("preconditioner", p.preconditioner);
}
template <class V> void fields(V& v, NodeSummaryParams& p) {
  v.integer("node_nm", p.nodeNm);
}
template <class V> void fields(V& v, StaParams& p) {
  v.integer("node_nm", p.nodeNm);
  v.integer("gates", p.gates);
  v.integer("seed", p.seed);
  v.integer("blocks", p.blocks);
}
template <class V> void fields(V& v, ScenarioParams& p) {
  v.integer("node_nm", p.nodeNm);
  v.text("scenario", p.scenario);
  v.text("policy", p.policy);
  v.integer("steps", p.steps);
  v.number("dt_us", p.dtUs);
  v.integer("gates", p.gates);
  v.integer("seed", p.seed);
  v.integer("trace_stride", p.traceStride);
  v.boolean("include_trace", p.includeTrace);
  v.number("knob_a", p.knobA);
  v.number("knob_b", p.knobB);
}
template <class V> void fields(V& v, ScenarioSweepParams& p) {
  fields(v, p.base);
  v.integer("axis_a", p.axisA);
  v.integer("axis_b", p.axisB);
}
template <class V> void fields(V& v, StatsParams& p) {
  v.boolean("delta", p.delta);
}

/// fields() adapter rendering into a KeyBuilder.
struct KeyVisitor {
  KeyBuilder& k;
  void integer(const char* name, int& v) { k.field(name, v); }
  void number(const char* name, double& v) { k.field(name, v); }
  void boolean(const char* name, bool& v) { k.field(name, v); }
  void text(const char* name, std::string& v) { k.field(name, v); }
};

}  // namespace

std::string Request::canonicalKey() const {
  KeyBuilder k(kind);
  KeyVisitor visitor{k};
  Params copy = params;  // fields() binds mutably; rendering never writes
  std::visit([&visitor](auto& p) { fields(visitor, p); }, copy);
  return k.finish();
}

std::uint64_t Request::contentHash() const { return fnv1a64(canonicalKey()); }

// ------------------------------------------------------------- parsing

namespace {

/// Typed, consumption-tracked reads from the "params" object: every field
/// is optional (defaults hold), wrong types fail, and leftover keys fail
/// so a misspelled parameter cannot silently fall back to a default.
class ParamReader {
 public:
  explicit ParamReader(const JsonValue* obj) : obj_(obj) {
    if (obj_ != nullptr) consumed_.assign(obj_->members().size(), false);
  }

  void number(const char* name, double& out) {
    const JsonValue* v = take(name);
    if (v == nullptr) return;
    if (!v->isNumber()) fail(name, "a number");
    out = v->asNumber();
  }

  void integer(const char* name, int& out) {
    const JsonValue* v = take(name);
    if (v == nullptr) return;
    if (!v->isNumber()) fail(name, "a number");
    const double d = v->asNumber();
    if (d != std::floor(d) || std::fabs(d) > 1e9) fail(name, "an integer");
    out = static_cast<int>(d);
  }

  void boolean(const char* name, bool& out) {
    const JsonValue* v = take(name);
    if (v == nullptr) return;
    if (!v->isBool()) fail(name, "a boolean");
    out = v->asBool();
  }

  void string(const char* name, std::string& out) {
    const JsonValue* v = take(name);
    if (v == nullptr) return;
    if (!v->isString()) fail(name, "a string");
    out = v->asString();
  }

  /// Rejects any member no reader consumed.
  void finish() {
    if (obj_ == nullptr) return;
    const auto& members = obj_->members();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!consumed_[i]) {
        throw std::invalid_argument("unknown parameter \"" + members[i].first +
                                    "\"");
      }
    }
  }

 private:
  const JsonValue* take(const char* name) {
    if (obj_ == nullptr) return nullptr;
    const auto& members = obj_->members();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i].first == name) {
        consumed_[i] = true;
        return &members[i].second;
      }
    }
    return nullptr;
  }

  [[noreturn]] static void fail(const char* name, const char* want) {
    throw std::invalid_argument(std::string("parameter \"") + name +
                                "\" must be " + want);
  }

  const JsonValue* obj_;
  std::vector<bool> consumed_;
};

/// fields() adapter pulling each declared field out of a ParamReader.
struct ReadVisitor {
  ParamReader& r;
  void integer(const char* name, int& v) { r.integer(name, v); }
  void number(const char* name, double& v) { r.number(name, v); }
  void boolean(const char* name, bool& v) { r.boolean(name, v); }
  void text(const char* name, std::string& v) { r.string(name, v); }
};

/// fields() adapter rendering each declared field into a JSON object.
struct JsonVisitor {
  JsonValue& obj;
  void integer(const char* name, int& v) { obj.set(name, v); }
  void number(const char* name, double& v) { obj.set(name, v); }
  void boolean(const char* name, bool& v) { obj.set(name, v); }
  void text(const char* name, std::string& v) { obj.set(name, v); }
};

// Cross-field and range validation, applied after a parse fills the struct
// (so the checks see the final values whether they came from the wire or
// from defaults). Throws std::invalid_argument like the readers do.

[[noreturn]] void rejectParam(const std::string& message) {
  throw std::invalid_argument("parameter " + message);
}

template <class P> void validateParams(const P&) {}

void validateParams(const GridSolveParams& p) {
  if (p.preconditioner != "auto" && p.preconditioner != "jacobi" &&
      p.preconditioner != "multigrid") {
    rejectParam("\"preconditioner\" must be one of auto/jacobi/multigrid");
  }
}

void validateParams(const StaParams& p) {
  if (p.gates < 64 || p.gates > 2000000) {
    rejectParam("\"gates\" must be in [64, 2000000]");
  }
  if (p.blocks < 1 || p.blocks > 64) {
    rejectParam("\"blocks\" must be in [1, 64]");
  }
}

void validateParams(const ScenarioParams& p) {
  if (p.scenario != "dtm" && p.scenario != "dvfs" && p.scenario != "wakeup") {
    rejectParam("\"scenario\" must be one of dtm/dvfs/wakeup");
  }
  if (!p.policy.empty() && p.policy != "dtm" && p.policy != "dvfs" &&
      p.policy != "explore") {
    rejectParam("\"policy\" must be one of dtm/dvfs/explore (or omitted)");
  }
  if (p.steps < 1 || p.steps > 200000) {
    rejectParam("\"steps\" must be in [1, 200000]");
  }
  if (!(p.dtUs > 0.0) || !std::isfinite(p.dtUs)) {
    rejectParam("\"dt_us\" must be a positive finite number");
  }
  if (p.gates < 64 || p.gates > 200000) {
    rejectParam("\"gates\" must be in [64, 200000]");
  }
  if (p.traceStride < 1) rejectParam("\"trace_stride\" must be >= 1");
}

void validateParams(const ScenarioSweepParams& p) {
  validateParams(p.base);
  if (p.axisA < 1 || p.axisA > 64) {
    rejectParam("\"axis_a\" must be in [1, 64]");
  }
  if (p.axisB < 1 || p.axisB > 64) {
    rejectParam("\"axis_b\" must be in [1, 64]");
  }
}

}  // namespace

Params defaultParams(RequestKind kind) {
  switch (kind) {
    case RequestKind::Figure1: return Fig1Params{};
    case RequestKind::Figure2: return Fig2Params{};
    case RequestKind::Figure34: return Fig34Params{};
    case RequestKind::Figure5: return Fig5Params{};
    case RequestKind::Table2: return Table2Params{};
    case RequestKind::DesignPoint: return DesignPointParams{};
    case RequestKind::DesignGrid: return DesignGridParams{};
    case RequestKind::DesignOptimum: return DesignOptimumParams{};
    case RequestKind::Repeater: return RepeaterParams{};
    case RequestKind::Wire: return WireParams{};
    case RequestKind::GridSolve: return GridSolveParams{};
    case RequestKind::NodeSummary: return NodeSummaryParams{};
    case RequestKind::Sta: return StaParams{};
    case RequestKind::Scenario: return ScenarioParams{};
    case RequestKind::ScenarioSweep: return ScenarioSweepParams{};
    case RequestKind::Stats: return StatsParams{};
  }
  return Fig1Params{};
}

JsonValue paramsJson(const Params& params) {
  JsonValue obj = JsonValue::object();
  JsonVisitor visitor{obj};
  Params copy = params;  // fields() binds mutably; rendering never writes
  std::visit([&visitor](auto& p) { fields(visitor, p); }, copy);
  return obj;
}

bool parseRequest(const std::string& line, Request& out, std::string& error) {
  out = Request{};
  JsonValue doc;
  try {
    doc = parseJson(line);
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  if (!doc.isObject()) {
    error = "request must be a JSON object";
    return false;
  }
  if (const JsonValue* id = doc.find("id"); id != nullptr && id->isString()) {
    out.id = id->asString();  // best-effort echo even when the rest fails
  }
  try {
    for (const auto& [key, value] : doc.members()) {
      if (key == "id") {
        if (!value.isString()) throw std::invalid_argument("\"id\" must be a string");
      } else if (key == "kind") {
        if (!value.isString() || !kindFromName(value.asString(), out.kind)) {
          throw std::invalid_argument(
              "unknown kind" +
              (value.isString() ? " \"" + value.asString() + "\"" : ""));
        }
      } else if (key == "priority") {
        if (!value.isString() ||
            !priorityFromName(value.asString(), out.priority)) {
          throw std::invalid_argument("\"priority\" must be high/normal/low");
        }
      } else if (key == "deadline_ms") {
        if (!value.isNumber() || !(value.asNumber() >= 0.0)) {
          throw std::invalid_argument("\"deadline_ms\" must be a number >= 0");
        }
        // Clamp, don't reject: a huge deadline means "effectively none",
        // and letting it through raw would overflow the scheduler's
        // duration conversion.
        out.deadlineMs = std::min(value.asNumber(), kMaxDeadlineMs);
      } else if (key != "params") {
        throw std::invalid_argument("unknown request field \"" + key + "\"");
      }
    }
    const JsonValue* kindField = doc.find("kind");
    if (kindField == nullptr) throw std::invalid_argument("missing \"kind\"");
    const JsonValue* paramsField = doc.find("params");
    if (paramsField != nullptr && !paramsField->isObject()) {
      throw std::invalid_argument("\"params\" must be an object");
    }
    out.params = defaultParams(out.kind);
    ParamReader reader(paramsField);
    ReadVisitor visitor{reader};
    std::visit([&visitor](auto& p) { fields(visitor, p); }, out.params);
    reader.finish();
    std::visit([](const auto& p) { validateParams(p); }, out.params);
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  return true;
}

// ----------------------------------------------------------- responses

std::string Response::toJsonLine() const {
  std::string out = "{\"id\":" + quoteJsonString(id);
  if (hasKind) {
    out += ",\"kind\":\"";
    out += kindName(kind);
    out += '"';
  }
  out += ",\"status\":\"";
  out += statusName(status);
  out += '"';
  if (status == ResponseStatus::Ok) {
    out += ",\"data\":";
    out += data.empty() ? "{}" : data;
  } else {
    out += ",\"error\":" + quoteJsonString(error);
  }
  out.push_back('}');
  return out;
}

Response makeResponse(const Request& request, const Outcome& outcome) {
  Response r;
  r.id = request.id;
  r.hasKind = true;
  r.kind = request.kind;
  r.status = outcome.status;
  r.data = outcome.data;
  r.error = outcome.error;
  r.traceId = request.trace.id;
  return r;
}

Response makeFailure(const Request& request, ResponseStatus status,
                     std::string message) {
  Response r;
  r.id = request.id;
  r.hasKind = status != ResponseStatus::Invalid;
  r.kind = request.kind;
  r.status = status;
  r.error = std::move(message);
  r.traceId = request.trace.id;
  return r;
}

}  // namespace nano::svc
