#include "svc/scheduler.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "exec/exec.h"
#include "obs/obs.h"

namespace nano::svc {

Scheduler::Scheduler(std::function<Response(const Request&)> handler,
                     SchedulerOptions options)
    : handler_(std::move(handler)), options_(options) {
  if (options_.maxQueue == 0) options_.maxQueue = 1;
  if (options_.maxBatch == 0) options_.maxBatch = 1;
  batcher_ = std::thread([this] { batcherLoop(); });
}

Scheduler::~Scheduler() { stop(); }

std::future<Response> Scheduler::submit(Request request) {
  return enqueue(std::move(request), /*block=*/false);
}

std::future<Response> Scheduler::submitBlocking(Request request) {
  return enqueue(std::move(request), /*block=*/true);
}

std::future<Response> Scheduler::enqueue(Request request, bool block) {
  Item item;
  item.promise = std::promise<Response>();
  item.submitNs = obs::timingNowNs();
  std::future<Response> future = item.promise.get_future();
  if (request.deadlineMs >= 0.0) {
    item.hasDeadline = true;
    // Client-supplied: an unclamped 1e300 ms overflows the duration_cast
    // into UB. parseRequest already clamps wire input; clamp again here so
    // direct in-process submitters get the same guarantee.
    const double ms = std::min(request.deadlineMs, kMaxDeadlineMs);
    item.deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(ms));
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (block) {
      spaceCv_.wait(lock, [this] {
        return stopping_ || queued_ < options_.maxQueue;
      });
    }
    if (stopping_) {
      lock.unlock();
      NANO_OBS_COUNT("svc/shed", 1);
      Response shed =
          makeFailure(request, ResponseStatus::Shed, "scheduler stopped");
      shed.submitNs = shed.dispatchNs = shed.doneNs = item.submitNs;
      item.promise.set_value(std::move(shed));
      return future;
    }
    if (queued_ >= options_.maxQueue) {
      lock.unlock();
      NANO_OBS_COUNT("svc/shed", 1);
      Response shed = makeFailure(
          request, ResponseStatus::Shed,
          "queue full (" + std::to_string(options_.maxQueue) + " requests)");
      shed.submitNs = shed.dispatchNs = shed.doneNs = item.submitNs;
      item.promise.set_value(std::move(shed));
      return future;
    }
    item.request = std::move(request);
    lanes_[static_cast<int>(item.request.priority)].push_back(std::move(item));
    ++queued_;
    if (queued_ + inBatch_ > peakDepth_) {
      peakDepth_ = queued_ + inBatch_;
      NANO_OBS_GAUGE("svc/queue_peak", static_cast<double>(peakDepth_));
    }
    NANO_OBS_GAUGE("svc/queue_depth", static_cast<double>(queued_));
  }
  workCv_.notify_one();
  return future;
}

void Scheduler::batcherLoop() {
  std::vector<Item> batch;
  batch.reserve(options_.maxBatch);
  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      workCv_.wait(lock, [this] { return queued_ > 0 || stopping_; });
      if (queued_ == 0 && stopping_) return;
      // Priority order: drain High entirely before Normal before Low.
      for (auto& lane : lanes_) {
        while (!lane.empty() && batch.size() < options_.maxBatch) {
          batch.push_back(std::move(lane.front()));
          lane.pop_front();
        }
        if (batch.size() >= options_.maxBatch) break;
      }
      queued_ -= batch.size();
      inBatch_ = batch.size();
      NANO_OBS_GAUGE("svc/queue_depth", static_cast<double>(queued_));
    }
    spaceCv_.notify_all();

    NANO_OBS_COUNT("svc/batches", 1);
    if (obs::enabled()) {
      obs::MetricsRegistry::instance()
          .timer("svc/batch_size")
          .record(static_cast<double>(batch.size()));
    }
    const auto now = std::chrono::steady_clock::now();
    exec::parallelFor(batch.size(), [&](std::size_t i) {
      Item& item = batch[i];
      const std::int64_t dispatchNs = obs::timingNowNs();
      Response response;
      if (item.hasDeadline && item.deadline <= now) {
        NANO_OBS_COUNT("svc/timeouts", 1);
        response = makeFailure(item.request, ResponseStatus::Timeout,
                               "deadline expired before evaluation");
      } else {
        response = handler_(item.request);
      }
      response.submitNs = item.submitNs;
      response.dispatchNs = dispatchNs;
      response.doneNs = obs::timingNowNs();
      if (item.submitNs > 0 && dispatchNs > 0) {
        const std::int64_t queueWaitNs = dispatchNs - item.submitNs;
        obs::traceAsyncSpan("svc", "queue_wait", item.request.trace,
                            item.submitNs, dispatchNs);
        if (obs::enabled()) {
          obs::MetricsRegistry::instance()
              .timer("svc/phase/queue_wait")
              .record(static_cast<double>(queueWaitNs) * 1e-9);
        }
      }
      item.promise.set_value(std::move(response));
    });

    {
      std::lock_guard<std::mutex> lock(mutex_);
      inBatch_ = 0;
    }
    idleCv_.notify_all();
  }
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [this] { return queued_ == 0 && inBatch_ == 0; });
}

void Scheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  workCv_.notify_all();
  spaceCv_.notify_all();
  // Concurrent stop() calls both used to pass a joinable() check and both
  // reach join() — UB. call_once serializes them: one thread joins, every
  // other caller blocks here until the batcher has actually exited, so
  // stop() returning always means "the batcher is gone".
  std::call_once(joinOnce_, [this] { batcher_.join(); });
}

std::size_t Scheduler::queueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_ + inBatch_;
}

}  // namespace nano::svc
