// The service's pure evaluation core: one request in, one content-
// determined Outcome out. No caching, no queueing — those live in
// svc/cache.h and svc/scheduler.h; this layer only dispatches onto the
// model library and renders deterministic JSON payloads.
#pragma once

#include "svc/request.h"

namespace nano::svc {

/// Evaluate one request. Never throws: model/solver failures (off-roadmap
/// node, invalid operating point, non-converged solve) come back as an
/// Error outcome with the exception message, so one bad point cannot kill
/// a serving session. Ok payloads are byte-identical for identical
/// canonical keys at any thread count — except RequestKind::Stats, which
/// snapshots the process's live metrics and must never be cached (the
/// service bypasses the result cache for it).
///
/// Instrumented: "svc/latency/<kind>" timers, the "svc/errors" counter,
/// and a per-kind synchronous trace span under the current TraceContext.
Outcome evaluate(const Request& request);

}  // namespace nano::svc
