#include "thermal/thermal_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

// Shared sparse SPD kernel (conjugate gradients); the thermal mesh is the
// same Laplacian-plus-diagonal structure as the power grid.
#include "powergrid/solver.h"

namespace nano::thermal {

ThermalMap solveThermalGrid(const ThermalGridConfig& cfg) {
  if (cfg.cells < 2 || cfg.thetaJa <= 0 || cfg.totalPower < 0 ||
      cfg.lateralConductance <= 0) {
    throw std::invalid_argument("solveThermalGrid: bad config");
  }
  const int n = cfg.cells;
  const auto idx = [n](int x, int y) {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(x);
  };
  const std::size_t cells = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);

  // Vertical conductance: the package removes heat uniformly per area.
  const double gVertTotal = 1.0 / cfg.thetaJa;
  const double gVert = gVertTotal / static_cast<double>(cells);
  // Lateral conductance between adjacent cells: per square of die sheet.
  const double gLat = cfg.lateralConductance;

  powergrid::SparseSpd a(cells);
  std::vector<double> rhs(cells, 0.0);

  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      a.addDiagonal(idx(x, y), gVert);
      if (x + 1 < n) {
        a.addDiagonal(idx(x, y), gLat);
        a.addDiagonal(idx(x + 1, y), gLat);
        a.addOffDiagonal(idx(x, y), idx(x + 1, y), -gLat);
      }
      if (y + 1 < n) {
        a.addDiagonal(idx(x, y), gLat);
        a.addDiagonal(idx(x, y + 1), gLat);
        a.addOffDiagonal(idx(x, y), idx(x, y + 1), -gLat);
      }
    }
  }

  // Power map: hot-spot block at hotspotFactor x the background density,
  // background scaled so the total stays cfg.totalPower.
  const int hsSpan = std::max(
      0, static_cast<int>(std::round(cfg.hotspotFraction * n)));
  const int hsLo = (n - hsSpan) / 2;
  const double hsCells = static_cast<double>(hsSpan) * hsSpan;
  const double factor = cfg.hotspotFactor;
  // background * (cells - hsCells) + background * factor * hsCells = total
  const double background =
      cfg.totalPower /
      (static_cast<double>(cells) - hsCells + factor * hsCells);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const bool inHs = hsSpan > 0 && x >= hsLo && x < hsLo + hsSpan &&
                        y >= hsLo && y < hsLo + hsSpan;
      rhs[idx(x, y)] = background * (inHs ? factor : 1.0);
    }
  }

  a.finalize();
  const powergrid::CgResult cg = powergrid::solveCg(a, rhs, 1e-10);

  ThermalMap map;
  map.nx = map.ny = n;
  map.temperature.resize(cells);
  double sum = 0.0;
  double peak = 0.0;
  for (std::size_t i = 0; i < cells; ++i) {
    map.temperature[i] = cfg.ambient + cg.x[i];
    sum += cg.x[i];
    peak = std::max(peak, cg.x[i]);
  }
  map.maxT = cfg.ambient + peak;
  map.avgT = cfg.ambient + sum / static_cast<double>(cells);
  const double avgRise = sum / static_cast<double>(cells);
  map.hotspotContrast = avgRise > 0 ? peak / avgRise : 1.0;
  return map;
}

ThermalGridConfig thermalGridForNode(const tech::TechNode& node) {
  ThermalGridConfig cfg;
  const double edge = std::sqrt(node.dieArea);
  cfg.dieWidth = cfg.dieHeight = edge;
  cfg.thetaJa = node.requiredThetaJa();
  cfg.ambient = node.tAmbient;
  cfg.totalPower = node.maxPower;
  return cfg;
}

}  // namespace nano::thermal
