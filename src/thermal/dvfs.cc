#include "thermal/dvfs.h"

#include <algorithm>
#include <stdexcept>

#include "thermal/validate.h"

namespace nano::thermal {

DvfsResult simulateDvfs(const ThermalPackage& package, const PowerTrace& demand,
                        double worstCasePower, double tAmbient,
                        const DvfsPolicy& policy) {
  const ThermalInputCheck check =
      validateDvfsInputs(package, demand, worstCasePower, tAmbient, policy);
  if (!check.ok()) {
    throw std::invalid_argument("simulateDvfs: " + check.describe());
  }

  // The governor's choice per demand value: the admissible level with the
  // lowest power factor; the fastest level if demand exceeds them all.
  auto pickLevel = [&](double d) {
    const DvfsLevel* fastest = &policy.levels.front();
    const DvfsLevel* best = nullptr;
    for (const auto& level : policy.levels) {
      if (level.freqFraction > fastest->freqFraction) fastest = &level;
      if (level.freqFraction + 1e-12 >= d &&
          (best == nullptr || level.powerFactor() < best->powerFactor())) {
        best = &level;
      }
    }
    return best != nullptr ? best : fastest;
  };

  DvfsResult res;
  double temperature = tAmbient;
  double demandedWork = 0.0;
  double deliveredWork = 0.0;

  for (const auto& phase : demand.phases) {
    const double d = std::clamp(phase.powerFraction, 0.0, 1.0);
    const DvfsLevel& level = *pickLevel(d);

    // Work: the core can deliver at most level.freqFraction of peak.
    const double delivered = std::min(d, level.freqFraction);
    demandedWork += d * phase.duration;
    deliveredWork += delivered * phase.duration;

    // Busy fraction at this level, the rest idles at the level's voltage.
    const double busy =
        level.freqFraction > 0 ? delivered / level.freqFraction : 0.0;
    const double active = busy * worstCasePower * level.powerFactor();
    const double idle = (1.0 - busy) * policy.idleFraction * worstCasePower *
                        level.vddFraction * level.vddFraction;
    const double power = active + idle;
    res.energy += power * phase.duration;

    // Race-to-idle baseline: sprint at full speed, then idle at full V.
    const double fullSpeed =
        d * worstCasePower +
        (1.0 - d) * policy.idleFraction * worstCasePower;
    res.energyFullSpeed += fullSpeed * phase.duration;

    temperature = package.step(temperature, power, tAmbient, phase.duration);
    res.maxTemperature = std::max(res.maxTemperature, temperature);
  }

  res.avgPower = res.energy / demand.totalDuration();
  res.throughputDelivered =
      demandedWork > 0 ? deliveredWork / demandedWork : 1.0;
  return res;
}

}  // namespace nano::thermal
