#include "thermal/dtm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "thermal/validate.h"

namespace nano::thermal {

DtmResult simulateDtm(const ThermalPackage& package, const PowerTrace& trace,
                      double worstCasePower, double tAmbient,
                      const DtmPolicy& policy, double dt, int traceStride) {
  const ThermalInputCheck check = validateDtmInputs(
      package, trace, worstCasePower, tAmbient, policy, dt, traceStride);
  if (!check.ok()) {
    throw std::invalid_argument("simulateDtm: " + check.describe());
  }
  const double duration = trace.totalDuration();

  // Power multiplier while throttled. Vdd scaling assumes V tracks f
  // linearly in the scaled region (power ~ f * V^2 => factor^3).
  const double throttledPowerFactor =
      policy.kind == ThrottleKind::ClockOnly
          ? policy.throttleFactor
          : std::pow(policy.throttleFactor, 3.0);

  DtmResult result;
  double temperature = tAmbient;
  bool throttled = false;
  double pendingChangeAt = -1.0;  // sensor delay modeling
  bool pendingState = false;

  double tempSum = 0.0;
  double cycleSum = 0.0;
  double throttledTime = 0.0;
  long steps = 0;

  for (double t = 0.0; t < duration; t += dt, ++steps) {
    // Sensor comparison (with hysteresis); actuation after sensorDelay.
    const bool sensorWantsThrottle =
        throttled ? (temperature > policy.tripTemperature - policy.hysteresis)
                  : (temperature > policy.tripTemperature);
    if (policy.enabled && sensorWantsThrottle != throttled) {
      if (pendingChangeAt < 0 || pendingState != sensorWantsThrottle) {
        pendingChangeAt = t + policy.sensorDelay;
        pendingState = sensorWantsThrottle;
      }
      if (t >= pendingChangeAt) {
        throttled = pendingState;
        pendingChangeAt = -1.0;
      }
    } else {
      pendingChangeAt = -1.0;
    }

    const double demandFraction = trace.at(t);
    const double powerFactor = throttled ? throttledPowerFactor : 1.0;
    const double power = demandFraction * worstCasePower * powerFactor;

    temperature = package.step(temperature, power, tAmbient, dt);

    tempSum += temperature;
    cycleSum += throttled ? policy.throttleFactor : 1.0;
    if (throttled) throttledTime += dt;
    result.maxTemperature = std::max(result.maxTemperature, temperature);
    result.maxPower = std::max(result.maxPower, power);

    if (steps % traceStride == 0) {
      result.timeS.push_back(t);
      result.temperatureK.push_back(temperature);
      result.powerW.push_back(power);
    }
  }

  result.avgTemperature = tempSum / static_cast<double>(steps);
  result.throughputFraction = cycleSum / static_cast<double>(steps);
  result.throttledFraction = throttledTime / duration;
  return result;
}

DtmPolicy defaultPolicyFor(const tech::TechNode& node) {
  DtmPolicy policy;
  policy.tripTemperature = node.tjMax - 2.0;  // trip 2 K under the limit
  policy.hysteresis = 3.0;
  policy.throttleFactor = 0.5;  // Pentium 4-style clock duty modulation
  policy.kind = ThrottleKind::ClockOnly;
  return policy;
}

}  // namespace nano::thermal
