// Dynamic voltage/frequency scaling (paper Section 2.1: "Transmeta's
// approach dynamically varies the supply voltage when the CPU is not
// heavily loaded"). A workload demands a fraction of peak throughput per
// phase; the governor picks the lowest (f, V) level that still delivers
// it, so the active energy scales by V^2 instead of just idling at full
// voltage. Closed around the same lumped thermal model as the DTM
// throttle, for temperature comparisons.
#pragma once

#include <vector>

#include "thermal/package.h"
#include "thermal/workload.h"

namespace nano::thermal {

/// One operating level: frequency and supply as fractions of nominal.
struct DvfsLevel {
  double freqFraction = 1.0;
  double vddFraction = 1.0;
  /// Dynamic power multiplier at full utilization: f * V^2.
  [[nodiscard]] double powerFactor() const {
    return freqFraction * vddFraction * vddFraction;
  }
};

struct DvfsPolicy {
  /// Levels in any order; the governor picks the lowest-power level whose
  /// frequency covers the demand (or the fastest level if none does).
  /// Defaults follow typical V-f pairs (V roughly tracks f).
  std::vector<DvfsLevel> levels = {
      {1.00, 1.00}, {0.80, 0.90}, {0.60, 0.80}, {0.40, 0.70}, {0.20, 0.60}};
  /// Idle power as a fraction of peak, burned whenever the core is not
  /// executing (leakage + clocking at the current voltage, ~ V^2).
  double idleFraction = 0.10;
};

struct DvfsResult {
  double energy = 0.0;              ///< J over the trace
  double energyFullSpeed = 0.0;     ///< J for run-at-max + idle ("race to idle")
  double avgPower = 0.0;            ///< W
  double throughputDelivered = 0.0; ///< fraction of demanded work completed
  double maxTemperature = 0.0;      ///< K (closed over the package)
  [[nodiscard]] double energySavings() const {
    return 1.0 - energy / energyFullSpeed;
  }
};

/// Simulate the governor over `demand` (phases of utilization demand in
/// [0,1] of peak throughput). `worstCasePower` is the full-speed active
/// power; thermal closure uses `package`/`tAmbient`.
DvfsResult simulateDvfs(const ThermalPackage& package, const PowerTrace& demand,
                        double worstCasePower, double tAmbient,
                        const DvfsPolicy& policy = {});

}  // namespace nano::thermal
