#include "thermal/cooling_cost.h"

#include <stdexcept>

namespace nano::thermal {

double thetaJaRelief(double fraction) {
  if (fraction <= 0 || fraction > 1.0) {
    throw std::invalid_argument("thetaJaRelief: fraction out of (0, 1]");
  }
  // theta_ja = (Tj - Ta) / P: cutting P by `fraction` raises the allowable
  // theta_ja by 1/fraction.
  return 1.0 / fraction;
}

double coolingCostUsd(double power, double tjMax, double tAmbient) {
  return cheapestSolutionFor(power, tjMax, tAmbient).cost(power);
}

DtmCostSavings dtmCostSavings(double theoreticalPower, double tjMax,
                              double tAmbient, double fraction) {
  DtmCostSavings s;
  s.theoreticalPower = theoreticalPower;
  s.effectivePower = fraction * theoreticalPower;
  s.thetaJaTheoretical = requiredThetaJa(theoreticalPower, tjMax, tAmbient);
  s.thetaJaEffective = requiredThetaJa(s.effectivePower, tjMax, tAmbient);
  s.costTheoreticalUsd = coolingCostUsd(theoreticalPower, tjMax, tAmbient);
  s.costEffectiveUsd = coolingCostUsd(s.effectivePower, tjMax, tAmbient);
  return s;
}

}  // namespace nano::thermal
