// 2-D die temperature solver: lateral heat spreading in the silicon plus
// per-area vertical conduction through the package (theta_ja distributed
// over the die). Connects the paper's Section 2.1 junction-temperature
// model with Section 4's hot-spot assumption: a block at 4x the average
// power density does NOT run 4x hotter — silicon spreading flattens the
// map, and this solver quantifies by how much.
#pragma once

#include <vector>

#include "tech/itrs.h"

namespace nano::thermal {

/// Configuration of the die thermal mesh.
struct ThermalGridConfig {
  double dieWidth = 20e-3;     ///< m
  double dieHeight = 20e-3;    ///< m
  double thetaJa = 0.25;       ///< K/W, package junction-to-ambient
  double ambient = 318.15;     ///< K
  double totalPower = 150.0;   ///< W
  /// Hot-spot block: power density multiplier and size as a fraction of
  /// the die edge (0 disables).
  double hotspotFactor = 4.0;
  double hotspotFraction = 0.15;
  /// Effective lateral spreading conductance per square of die, W/K:
  /// k_si * t_si ~ 120 W/mK * 400 um ~= 0.05 W/K for bare silicon. Raise
  /// it to model an attached copper spreader.
  double lateralConductance = 0.05;
  int cells = 24;              ///< mesh resolution per edge
};

/// Solved temperature map.
struct ThermalMap {
  int nx = 0;
  int ny = 0;
  std::vector<double> temperature;  ///< K, per cell
  double maxT = 0.0;                ///< K
  double avgT = 0.0;                ///< K
  /// (Tmax - Tambient) / (Tavg - Tambient): how much of the 4x hot-spot
  /// density survives spreading.
  double hotspotContrast = 0.0;
};

/// Solve the steady-state map.
ThermalMap solveThermalGrid(const ThermalGridConfig& config);

/// Configuration for a roadmap node (die size, power, required theta_ja).
ThermalGridConfig thermalGridForNode(const tech::TechNode& node);

}  // namespace nano::thermal
