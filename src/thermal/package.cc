#include "thermal/package.h"

#include <cmath>
#include <stdexcept>

namespace nano::thermal {

ThermalPackage::ThermalPackage(double thetaJa, double heatCapacity)
    : thetaJa_(thetaJa), heatCapacity_(heatCapacity) {
  if (thetaJa <= 0 || heatCapacity <= 0) {
    throw std::invalid_argument("ThermalPackage: non-positive parameter");
  }
}

double ThermalPackage::junctionTemperature(double power, double tAmbient) const {
  return tAmbient + thetaJa_ * power;
}

double ThermalPackage::maxPower(double tjMax, double tAmbient) const {
  return (tjMax - tAmbient) / thetaJa_;
}

double ThermalPackage::step(double tJunction, double power, double tAmbient,
                            double dt) const {
  // Exact solution of the linear first-order ODE over dt (unconditionally
  // stable for any step size).
  const double tFinal = junctionTemperature(power, tAmbient);
  const double alpha = std::exp(-dt / timeConstant());
  return tFinal + (tJunction - tFinal) * alpha;
}

double requiredThetaJa(double power, double tjMax, double tAmbient) {
  if (power <= 0) throw std::invalid_argument("requiredThetaJa: power <= 0");
  return (tjMax - tAmbient) / power;
}

const std::vector<PackagingSolution>& packagingCatalog() {
  static const std::vector<PackagingSolution> kCatalog = {
      {"passive heatsink", 1.00, 5.0, 0.0},
      {"forced-air heatsink + fan", 0.60, 15.0, 0.0},
      {"heat pipe + fan", 0.52, 45.0, 0.0},
      {"high-performance air (large fin stack)", 0.40, 90.0, 0.0},
      {"liquid cooling loop", 0.25, 200.0, 0.0},
      // Vapor-compression refrigeration: ~ $1 per watt cooled (paper 2.1).
      {"vapor-compression refrigeration", 0.12, 300.0, 1.0},
  };
  return kCatalog;
}

const PackagingSolution& cheapestSolutionFor(double power, double tjMax,
                                             double tAmbient) {
  const double need = requiredThetaJa(power, tjMax, tAmbient);
  for (const auto& sol : packagingCatalog()) {
    if (sol.thetaJa <= need) return sol;
  }
  throw std::runtime_error("cheapestSolutionFor: no packaging solution holds " +
                           std::to_string(power) + " W");
}

}  // namespace nano::thermal
