#include "thermal/workload.h"

#include <algorithm>
#include <stdexcept>

namespace nano::thermal {

double PowerTrace::totalDuration() const {
  double sum = 0.0;
  for (const auto& p : phases) sum += p.duration;
  return sum;
}

double PowerTrace::at(double t) const {
  if (phases.empty()) throw std::logic_error("PowerTrace::at: empty trace");
  double acc = 0.0;
  for (const auto& p : phases) {
    acc += p.duration;
    if (t < acc) return p.powerFraction;
  }
  return phases.back().powerFraction;
}

double PowerTrace::average() const {
  const double total = totalDuration();
  if (total <= 0) return 0.0;
  double sum = 0.0;
  for (const auto& p : phases) sum += p.duration * p.powerFraction;
  return sum / total;
}

double PowerTrace::peak() const {
  double peak = 0.0;
  for (const auto& p : phases) peak = std::max(peak, p.powerFraction);
  return peak;
}

PowerTrace typicalApplication(util::Rng& rng, double duration,
                              double burstFraction, double phaseMean) {
  if (duration <= 0 || phaseMean <= 0) {
    throw std::invalid_argument("typicalApplication: non-positive duration");
  }
  PowerTrace trace;
  double t = 0.0;
  while (t < duration) {
    PowerTrace::Phase phase;
    phase.duration = std::min(rng.exponential(phaseMean), duration - t);
    if (phase.duration <= 0) break;
    // One phase in ~6 is a hot burst at the effective worst case; the rest
    // sit well below it.
    phase.powerFraction =
        rng.bernoulli(1.0 / 6.0)
            ? burstFraction
            : rng.uniform(0.45 * burstFraction, 0.93 * burstFraction);
    trace.phases.push_back(phase);
    t += phase.duration;
  }
  return trace;
}

PowerTrace powerVirus(double duration) {
  PowerTrace trace;
  trace.phases.push_back({duration, 1.0});
  return trace;
}

PowerTrace idleBurst(double duration, double period, double dutyActive,
                     double idleFraction) {
  if (period <= 0 || dutyActive < 0 || dutyActive > 1) {
    throw std::invalid_argument("idleBurst: bad period/duty");
  }
  PowerTrace trace;
  double t = 0.0;
  while (t < duration) {
    const double active = std::min(dutyActive * period, duration - t);
    if (active > 0) trace.phases.push_back({active, 1.0});
    t += active;
    const double idle = std::min((1.0 - dutyActive) * period, duration - t);
    if (idle > 0) trace.phases.push_back({idle, idleFraction});
    t += idle;
    if (active <= 0 && idle <= 0) break;
  }
  return trace;
}

}  // namespace nano::thermal
