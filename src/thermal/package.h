// Package thermal model (paper Section 2.1): the junction-to-ambient
// thermal resistance equation (1), Tchip = Tambient + theta_ja * Pchip,
// plus a lumped thermal RC for transient simulation and a catalog of
// packaging/cooling solutions.
#pragma once

#include <string>
#include <vector>

#include "tech/itrs.h"

namespace nano::thermal {

/// Steady-state and first-order transient thermal model of die + package.
class ThermalPackage {
 public:
  /// `thetaJa` in K/W; `heatCapacity` is the lumped die+spreader thermal
  /// capacitance in J/K (sets the transient time constant tau = R*C).
  ThermalPackage(double thetaJa, double heatCapacity = 20.0);

  [[nodiscard]] double thetaJa() const { return thetaJa_; }
  [[nodiscard]] double heatCapacity() const { return heatCapacity_; }
  [[nodiscard]] double timeConstant() const { return thetaJa_ * heatCapacity_; }

  /// Eq. (1) solved for Tchip: steady-state junction temperature, K.
  [[nodiscard]] double junctionTemperature(double power, double tAmbient) const;

  /// Eq. (1) solved for Pchip: maximum power for a junction limit, W.
  [[nodiscard]] double maxPower(double tjMax, double tAmbient) const;

  /// Advance the junction temperature by `dt` under dissipation `power`:
  /// dT/dt = (P - (T - Ta)/theta) / C. Returns the new temperature, K.
  [[nodiscard]] double step(double tJunction, double power, double tAmbient,
                            double dt) const;

 private:
  double thetaJa_;
  double heatCapacity_;
};

/// Eq. (1) solved for theta_ja: the packaging requirement of a design.
double requiredThetaJa(double power, double tjMax, double tAmbient);

/// One packaging/cooling option with its cost.
struct PackagingSolution {
  std::string name;
  double thetaJa = 0.0;    ///< K/W
  double baseCostUsd = 0.0;
  double costPerWattUsd = 0.0;  ///< e.g. vapor-compression refrigeration ~$1/W
  [[nodiscard]] double cost(double power) const {
    return baseCostUsd + costPerWattUsd * power;
  }
};

/// Catalog ordered from cheapest/weakest to most exotic. Calibrated so the
/// paper's Intel anecdote holds: going from 65 W to 75 W (Tj 85 C, Ta 45 C)
/// crosses the forced-air -> heat-pipe boundary and roughly triples cost.
const std::vector<PackagingSolution>& packagingCatalog();

/// Cheapest catalog solution that holds `tjMax`; throws std::runtime_error
/// if even the most exotic option cannot.
const PackagingSolution& cheapestSolutionFor(double power, double tjMax,
                                             double tAmbient);

}  // namespace nano::thermal
