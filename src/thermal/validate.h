// Structured input validation for the thermal closed-loop simulators,
// following the PR 3 SolverStatus convention: a status enum with a stable
// short name, a cheap-to-copy check record, non-throwing try* simulation
// variants that report through the record, and the classic names kept as
// throwing wrappers. Bad policies (trip below ambient, empty level tables,
// non-positive time steps) are rejected up front instead of silently
// producing garbage traces.
#pragma once

#include <string>

#include "thermal/dtm.h"
#include "thermal/dvfs.h"

namespace nano::thermal {

/// Why a thermal simulation input was rejected (or Ok).
enum class ThermalInputStatus {
  Ok,           ///< inputs admissible
  BadTimeStep,  ///< dt <= 0 or not finite
  EmptyTrace,   ///< power/demand trace has no duration
  BadPolicy,    ///< policy parameters out of range (see message)
  BadPackage,   ///< non-physical package or ambient inputs
};

/// Short stable name for a status ("ok", "bad-time-step", ...).
const char* thermalInputStatusName(ThermalInputStatus status);

/// Structured outcome of an input check. `message` names the offending
/// field and value when the check fails; empty on Ok.
struct ThermalInputCheck {
  ThermalInputStatus status = ThermalInputStatus::Ok;
  std::string message;
  [[nodiscard]] bool ok() const { return status == ThermalInputStatus::Ok; }
  /// "ok" or "<status-name>: <message>".
  [[nodiscard]] std::string describe() const;
};

/// Validate the full simulateDtm input tuple. Rejects non-positive or
/// non-finite dt, empty traces, non-positive worst-case power or ambient,
/// and policies whose trip temperature sits at or below ambient (an
/// enabled sensor would latch throttled forever), negative hysteresis or
/// sensor delay, or a throttle factor outside (0, 1].
ThermalInputCheck validateDtmInputs(const ThermalPackage& package,
                                    const PowerTrace& trace,
                                    double worstCasePower, double tAmbient,
                                    const DtmPolicy& policy, double dt,
                                    int traceStride);

/// Validate the simulateDvfs input tuple. Rejects empty level tables,
/// levels with freq/vdd fractions outside (0, 1.5], idle fractions outside
/// [0, 1], empty demand traces, and non-physical power/ambient values.
ThermalInputCheck validateDvfsInputs(const ThermalPackage& package,
                                     const PowerTrace& demand,
                                     double worstCasePower, double tAmbient,
                                     const DvfsPolicy& policy);

/// Non-throwing simulateDtm: on rejected inputs returns a failed check and
/// leaves `result` default-constructed; never throws for bad inputs.
ThermalInputCheck trySimulateDtm(const ThermalPackage& package,
                                 const PowerTrace& trace,
                                 double worstCasePower, double tAmbient,
                                 const DtmPolicy& policy, DtmResult& result,
                                 double dt = 20e-6, int traceStride = 50);

/// Non-throwing simulateDvfs: same contract as trySimulateDtm.
ThermalInputCheck trySimulateDvfs(const ThermalPackage& package,
                                  const PowerTrace& demand,
                                  double worstCasePower, double tAmbient,
                                  const DvfsPolicy& policy,
                                  DvfsResult& result);

}  // namespace nano::thermal
