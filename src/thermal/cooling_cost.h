// Cooling-cost analysis (paper Section 2.1): what packaging costs as a
// function of the power a design must be rated for, and how much dynamic
// thermal management saves by rating for the *effective* rather than the
// theoretical worst case.
#pragma once

#include "thermal/package.h"

namespace nano::thermal {

/// The paper's quoted ratio of effective worst-case power (power-hungry
/// real applications) to theoretical worst-case power (synthetic virus
/// code): about 75 % [7,8].
inline constexpr double kEffectiveWorstCaseFraction = 0.75;

/// Relief in the allowable theta_ja when rating for a `fraction` of the
/// theoretical worst-case power (paper: 25 % power cut => theta_ja may be
/// 33 % higher). Returns the multiplicative relief (e.g. 1.333).
double thetaJaRelief(double fraction = kEffectiveWorstCaseFraction);

/// Cooling cost (cheapest catalog solution) for a design rated at `power`.
double coolingCostUsd(double power, double tjMax, double tAmbient);

/// Cost comparison of rating for theoretical vs effective worst case.
struct DtmCostSavings {
  double theoreticalPower = 0.0;
  double effectivePower = 0.0;
  double thetaJaTheoretical = 0.0;  ///< required K/W without DTM
  double thetaJaEffective = 0.0;    ///< required K/W with DTM
  double costTheoreticalUsd = 0.0;
  double costEffectiveUsd = 0.0;
  [[nodiscard]] double costRatio() const {
    return costTheoreticalUsd / costEffectiveUsd;
  }
};
DtmCostSavings dtmCostSavings(double theoreticalPower, double tjMax,
                              double tAmbient,
                              double fraction = kEffectiveWorstCaseFraction);

}  // namespace nano::thermal
