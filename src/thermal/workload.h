// Synthetic workload power traces: stand-ins for the "power-hungry
// applications" vs "synthetic input code sequences" (power virus) the
// paper distinguishes when defining effective vs theoretical worst-case
// power.
#pragma once

#include <vector>

#include "util/rng.h"

namespace nano::thermal {

/// Piecewise-constant power trace, as fractions of the theoretical
/// worst-case power.
struct PowerTrace {
  struct Phase {
    double duration = 0.0;       ///< s
    double powerFraction = 0.0;  ///< of theoretical worst case
  };
  std::vector<Phase> phases;

  [[nodiscard]] double totalDuration() const;
  /// Power fraction at time t (clamps to last phase).
  [[nodiscard]] double at(double t) const;
  /// Time-averaged power fraction.
  [[nodiscard]] double average() const;
  /// Maximum phase power fraction.
  [[nodiscard]] double peak() const;
};

/// A demanding but realistic application: phases drawn in [0.35, 0.80] of
/// theoretical worst case with occasional bursts to `burstFraction`
/// (default ~0.75, the paper's effective worst case).
PowerTrace typicalApplication(util::Rng& rng, double duration,
                              double burstFraction = 0.75,
                              double phaseMean = 2e-3);

/// The power virus: sustained theoretical worst case.
PowerTrace powerVirus(double duration);

/// Idle-burst pattern with standby intervals at `idleFraction` power,
/// used by the wake-up transient study (Section 4).
PowerTrace idleBurst(double duration, double period, double dutyActive,
                     double idleFraction = 0.05);

}  // namespace nano::thermal
