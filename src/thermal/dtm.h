// Dynamic thermal management simulation (paper Section 2.1): an on-die
// temperature sensor (the Pentium 4-style diode + comparator) feeding a
// throttling controller, closed around the lumped thermal model. Shows how
// DTM lets a design be packaged for the effective rather than the
// theoretical worst case.
#pragma once

#include <vector>

#include "thermal/package.h"
#include "thermal/workload.h"

namespace nano::thermal {

/// What the controller does when the sensor trips.
enum class ThrottleKind {
  ClockOnly,     ///< reduce frequency: power scales ~ f
  ClockAndVdd,   ///< reduce f and Vdd together: power scales ~ f * V^2
};

/// DTM controller policy.
struct DtmPolicy {
  double tripTemperature = 0.0;   ///< K; sensor asserts above this
  double hysteresis = 2.0;        ///< K; deasserts below trip - hysteresis
  double throttleFactor = 0.5;    ///< frequency multiplier while throttled
  ThrottleKind kind = ThrottleKind::ClockOnly;
  double sensorDelay = 100e-6;    ///< s between sensor and actuation
  bool enabled = true;
};

/// Result of a closed-loop simulation.
struct DtmResult {
  double maxTemperature = 0.0;       ///< K
  double avgTemperature = 0.0;       ///< K
  double throughputFraction = 0.0;   ///< delivered cycles / nominal cycles
  double throttledFraction = 0.0;    ///< fraction of time spent throttled
  double maxPower = 0.0;             ///< W, peak dissipated (post-throttle)
  std::vector<double> timeS;         ///< sampled trace (decimated)
  std::vector<double> temperatureK;
  std::vector<double> powerW;
};

/// Simulate `trace` (fractions of `worstCasePower`) on `package` with the
/// given policy. `tAmbient` in K; `dt` integration step.
DtmResult simulateDtm(const ThermalPackage& package, const PowerTrace& trace,
                      double worstCasePower, double tAmbient,
                      const DtmPolicy& policy, double dt = 20e-6,
                      int traceStride = 50);

/// Convenience: the policy the paper describes — trip just below the
/// node's junction limit, halve the clock.
DtmPolicy defaultPolicyFor(const tech::TechNode& node);

}  // namespace nano::thermal
