#include "thermal/validate.h"

#include <cmath>
#include <sstream>

namespace nano::thermal {
namespace {

bool finitePositive(double x) { return std::isfinite(x) && x > 0.0; }

ThermalInputCheck fail(ThermalInputStatus status, const std::string& message) {
  return {status, message};
}

std::string num(double x) {
  std::ostringstream out;
  out << x;
  return out.str();
}

ThermalInputCheck checkCommon(const ThermalPackage& package,
                              const PowerTrace& trace, double worstCasePower,
                              double tAmbient, const char* traceName) {
  if (!finitePositive(package.thetaJa()) ||
      !finitePositive(package.heatCapacity())) {
    return fail(ThermalInputStatus::BadPackage,
                "package thetaJa/heatCapacity must be positive and finite");
  }
  if (!finitePositive(worstCasePower)) {
    return fail(ThermalInputStatus::BadPackage,
                "worstCasePower must be positive and finite, got " +
                    num(worstCasePower));
  }
  if (!finitePositive(tAmbient)) {
    return fail(ThermalInputStatus::BadPackage,
                "tAmbient must be positive and finite (K), got " +
                    num(tAmbient));
  }
  if (!(trace.totalDuration() > 0.0)) {
    return fail(ThermalInputStatus::EmptyTrace,
                std::string(traceName) + " trace has no duration");
  }
  return {};
}

}  // namespace

const char* thermalInputStatusName(ThermalInputStatus status) {
  switch (status) {
    case ThermalInputStatus::Ok: return "ok";
    case ThermalInputStatus::BadTimeStep: return "bad-time-step";
    case ThermalInputStatus::EmptyTrace: return "empty-trace";
    case ThermalInputStatus::BadPolicy: return "bad-policy";
    case ThermalInputStatus::BadPackage: return "bad-package";
  }
  return "unknown";
}

std::string ThermalInputCheck::describe() const {
  if (ok()) return "ok";
  return std::string(thermalInputStatusName(status)) + ": " + message;
}

ThermalInputCheck validateDtmInputs(const ThermalPackage& package,
                                    const PowerTrace& trace,
                                    double worstCasePower, double tAmbient,
                                    const DtmPolicy& policy, double dt,
                                    int traceStride) {
  if (!finitePositive(dt)) {
    return fail(ThermalInputStatus::BadTimeStep,
                "dt must be positive and finite, got " + num(dt));
  }
  if (traceStride < 1) {
    return fail(ThermalInputStatus::BadTimeStep,
                "traceStride must be >= 1, got " + num(traceStride));
  }
  ThermalInputCheck common =
      checkCommon(package, trace, worstCasePower, tAmbient, "power");
  if (!common.ok()) return common;
  if (policy.enabled) {
    if (!std::isfinite(policy.tripTemperature) ||
        policy.tripTemperature <= tAmbient) {
      return fail(ThermalInputStatus::BadPolicy,
                  "tripTemperature " + num(policy.tripTemperature) +
                      " K must exceed ambient " + num(tAmbient) +
                      " K (an enabled sensor would latch throttled)");
    }
    if (!std::isfinite(policy.hysteresis) || policy.hysteresis < 0.0) {
      return fail(ThermalInputStatus::BadPolicy,
                  "hysteresis must be >= 0 K, got " + num(policy.hysteresis));
    }
    if (!std::isfinite(policy.throttleFactor) || policy.throttleFactor <= 0.0 ||
        policy.throttleFactor > 1.0) {
      return fail(ThermalInputStatus::BadPolicy,
                  "throttleFactor must be in (0, 1], got " +
                      num(policy.throttleFactor));
    }
    if (!std::isfinite(policy.sensorDelay) || policy.sensorDelay < 0.0) {
      return fail(ThermalInputStatus::BadPolicy,
                  "sensorDelay must be >= 0 s, got " + num(policy.sensorDelay));
    }
  }
  return {};
}

ThermalInputCheck validateDvfsInputs(const ThermalPackage& package,
                                     const PowerTrace& demand,
                                     double worstCasePower, double tAmbient,
                                     const DvfsPolicy& policy) {
  if (policy.levels.empty()) {
    return fail(ThermalInputStatus::BadPolicy, "DvfsPolicy::levels is empty");
  }
  for (const DvfsLevel& level : policy.levels) {
    if (!std::isfinite(level.freqFraction) || level.freqFraction <= 0.0 ||
        level.freqFraction > 1.5 || !std::isfinite(level.vddFraction) ||
        level.vddFraction <= 0.0 || level.vddFraction > 1.5) {
      return fail(ThermalInputStatus::BadPolicy,
                  "level (f=" + num(level.freqFraction) +
                      ", v=" + num(level.vddFraction) +
                      ") outside (0, 1.5]");
    }
  }
  if (!std::isfinite(policy.idleFraction) || policy.idleFraction < 0.0 ||
      policy.idleFraction > 1.0) {
    return fail(ThermalInputStatus::BadPolicy,
                "idleFraction must be in [0, 1], got " +
                    num(policy.idleFraction));
  }
  return checkCommon(package, demand, worstCasePower, tAmbient, "demand");
}

ThermalInputCheck trySimulateDtm(const ThermalPackage& package,
                                 const PowerTrace& trace,
                                 double worstCasePower, double tAmbient,
                                 const DtmPolicy& policy, DtmResult& result,
                                 double dt, int traceStride) {
  ThermalInputCheck check = validateDtmInputs(package, trace, worstCasePower,
                                              tAmbient, policy, dt,
                                              traceStride);
  if (!check.ok()) {
    result = DtmResult{};
    return check;
  }
  result = simulateDtm(package, trace, worstCasePower, tAmbient, policy, dt,
                       traceStride);
  return check;
}

ThermalInputCheck trySimulateDvfs(const ThermalPackage& package,
                                  const PowerTrace& demand,
                                  double worstCasePower, double tAmbient,
                                  const DvfsPolicy& policy,
                                  DvfsResult& result) {
  ThermalInputCheck check =
      validateDvfsInputs(package, demand, worstCasePower, tAmbient, policy);
  if (!check.ok()) {
    result = DvfsResult{};
    return check;
  }
  result = simulateDvfs(package, demand, worstCasePower, tAmbient, policy);
  return check;
}

}  // namespace nano::thermal
