// Geometric multigrid for the waffle power-grid mesh: a level hierarchy
// coarsening the rail lattice (halving the rail subdivision first, then the
// rail count), linear prolongation along rails / bilinear prolongation on
// the full lattice, full-weighting restriction R = c * P^T, and Galerkin
// coarse operators A_c = R A P. The V-cycle is symmetric (forward pre-
// smoothing, reversed post-smoothing), so it is a valid SPD preconditioner
// for the CG solver in powergrid/solver.h.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "powergrid/solver.h"

namespace nano::powergrid {

/// Structure of the waffle mesh, independent of conductance values: a
/// `tilesX x tilesY` window of bump cells, `railsPerBump` rail spans per
/// bump span, `subdivisions` fine steps per rail span. Horizontal rails
/// run along rows y % subdivisions == 0, vertical rails along columns
/// x % subdivisions == 0; bumps (Dirichlet nodes) sit at rail crossings
/// on the bump step.
struct GridTopology {
  int tilesX = 0;
  int tilesY = 0;
  int subdivisions = 0;
  int railsPerBump = 0;

  friend bool operator==(const GridTopology&, const GridTopology&) = default;

  [[nodiscard]] int bumpStep() const { return railsPerBump * subdivisions; }
  [[nodiscard]] int nx() const { return tilesX * bumpStep() + 1; }
  [[nodiscard]] int ny() const { return tilesY * bumpStep() + 1; }

  /// True when one more coarsening step yields a valid mesh: halve the
  /// subdivision while it is even, then halve the rail count while the
  /// mesh is a full lattice (subdivisions == 1). The coarse bump step
  /// must stay >= 2 or every node would be a Dirichlet bump.
  [[nodiscard]] bool canCoarsen() const;
  /// The next-coarser topology (throws std::logic_error if !canCoarsen()).
  [[nodiscard]] GridTopology coarsened() const;
};

/// Row-major enumeration of the mesh unknowns (rail nodes that are not
/// bumps) in O(nx + ny) memory — the full-lattice lookup table the seed
/// solver used is ~nx*ny entries, which at subdivision 128 would be tens
/// of millions of slots.
class MeshIndex {
 public:
  explicit MeshIndex(const GridTopology& topology);

  [[nodiscard]] const GridTopology& topology() const { return topo_; }
  [[nodiscard]] std::size_t unknownCount() const { return count_; }

  /// Unknown index of mesh node (x, y), or -1 when the node is off-rail
  /// or a bump. Matches the historical row-major scan order exactly.
  [[nodiscard]] long unknownAt(int x, int y) const;

 private:
  GridTopology topo_;
  std::size_t count_ = 0;
  std::vector<std::size_t> rowStart_;  // first unknown of each row
  std::vector<long> bumpRowCol_;       // column offsets in a bump row (-1: bump)
};

enum class SmootherKind { WeightedJacobi, RedBlackGaussSeidel };

struct MultigridOptions {
  SmootherKind smoother = SmootherKind::RedBlackGaussSeidel;
  int preSmooth = 1;
  int postSmooth = 1;
  /// Damping for the WeightedJacobi smoother (2/3..0.9 is the usual band).
  double jacobiWeight = 0.8;
  /// Stop coarsening once a level has at most this many unknowns.
  std::size_t coarseTarget = 512;
  /// Coarsest-level systems up to this size are solved by a dense Cholesky
  /// factorization built at setup; larger ones fall back to an inner CG.
  std::size_t denseDirectLimit = 1024;
  int maxLevels = 16;

  friend bool operator==(const MultigridOptions&,
                         const MultigridOptions&) = default;
};

/// Level hierarchy + V-cycle. Holds a reference to the fine matrix (the
/// hierarchy must not outlive it). apply() keeps all scratch state on the
/// stack of the call, so concurrent applies from parallel sweeps are safe
/// and deterministic.
class MultigridHierarchy final : public Preconditioner {
 public:
  /// Build from the finalized fine-level matrix and its topology. The
  /// matrix must be the one assembled by GridModel for `topology` (same
  /// unknown enumeration); any uniform conductance scale is fine.
  MultigridHierarchy(const SparseSpd& fineMatrix, const GridTopology& topology,
                     const MultigridOptions& options = {});
  ~MultigridHierarchy() override;

  MultigridHierarchy(const MultigridHierarchy&) = delete;
  MultigridHierarchy& operator=(const MultigridHierarchy&) = delete;

  /// One symmetric V-cycle on M z = r from a zero initial guess.
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override;
  [[nodiscard]] const char* name() const override { return "multigrid"; }

  [[nodiscard]] int levelCount() const;
  [[nodiscard]] std::size_t levelUnknowns(int level) const;
  [[nodiscard]] const GridTopology& levelTopology(int level) const;
  /// Smoother actually used at `level` (red-black requests degrade to
  /// weighted Jacobi when the level operator defeats the mesh coloring).
  [[nodiscard]] SmootherKind levelSmoother(int level) const;

  /// The constant c in R = c * P^T between `level` (fine) and `level + 1`
  /// (coarse): 0.5 for rail-subdivision coarsening, 0.25 for bilinear.
  [[nodiscard]] double restrictionScale(int level) const;
  /// coarse = R * fine (full weighting, includes the scale).
  void applyRestriction(int level, const std::vector<double>& fine,
                        std::vector<double>& coarse) const;
  /// fine = P * coarse.
  void applyProlongation(int level, const std::vector<double>& coarse,
                         std::vector<double>& fine) const;

 private:
  struct Level;
  struct DenseCholesky;

  void smooth(const Level& level, const std::vector<double>& b,
              std::vector<double>& x, int sweeps, bool reversed) const;
  void coarseSolve(const std::vector<double>& b, std::vector<double>& x) const;

  MultigridOptions opt_;
  std::vector<Level> levels_;
  std::unique_ptr<DenseCholesky> coarseFactor_;  // null: inner-CG fallback
};

}  // namespace nano::powergrid
