// Resistive power-grid mesh builder: a "waffle" of top-level Vdd rails in
// both routing directions at the same-polarity rail pitch, ideal bumps
// (Dirichlet nodes) at rail crossings on the bump pitch, distributed
// current loads along the rails with a hot-spot region at a multiple of
// the average power density. Solved with preconditioned CG for IR drop.
//
// The conductance matrix depends on the configuration only through the
// mesh structure and one uniform scalar g = railWidth / (sheetR * h): the
// matrix is g times the unit Laplacian of the topology. GridModel caches
// that unit Laplacian (and its multigrid hierarchy) per topology, so
// sweeps that vary only electrical parameters — the Figure 5 linewidth
// sweep, wake-up load ramps — assemble once and reuse it, folding g into
// the right-hand side.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "powergrid/multigrid.h"
#include "powergrid/solver.h"
#include "tech/itrs.h"

namespace nano::powergrid {

/// Mesh configuration. The modeled window is `tilesX x tilesY` bump cells
/// with natural (Neumann) boundaries — a periodic patch of a large die.
struct GridConfig {
  double railPitch = 160e-6;  ///< m, spacing of same-polarity (Vdd) rails
  double bumpPitch = 160e-6;  ///< m, Vdd bump spacing (multiple of railPitch)
  double railWidth = 1e-6;    ///< m
  double railSheetResistance = 0.055;  ///< ohm/sq of the top metal
  double supplyVoltage = 1.0; ///< V
  double powerDensity = 5e5;  ///< W/m^2, average (this polarity carries all)
  double hotspotFactor = 4.0; ///< density multiplier inside the hot-spot
  int hotspotCellsRail = 0;   ///< hot-spot square size in rail pitches (0: none)
  int tilesX = 2;             ///< window size, bump pitches
  int tilesY = 2;
  int subdivisions = 8;       ///< mesh nodes per rail span (resolution)
};

enum class PreconditionerKind {
  Auto,       ///< Multigrid above ~32k unknowns, Jacobi below
  Jacobi,
  Multigrid,
};

/// Solver selection for solveGrid (and everything layered on it).
struct GridSolverOptions {
  PreconditionerKind preconditioner = PreconditionerKind::Auto;
  double relTolerance = 1e-10;
  int maxIterations = 20000;
  MultigridOptions multigrid;

  friend bool operator==(const GridSolverOptions&,
                         const GridSolverOptions&) = default;
};

/// Solved grid.
struct GridSolution {
  int nx = 0;                   ///< fine-mesh points per row (incl. off-rail)
  int ny = 0;
  std::vector<double> dropV;    ///< IR drop per fine node (0 off-rail)
  double maxDrop = 0.0;         ///< V
  double maxDropFraction = 0.0; ///< of supplyVoltage
  int cgIterations = 0;
  double cgResidualNorm = 0.0;  ///< 2-norm of the CG residual at exit
  bool cgConverged = false;
  /// Structured solver outcome (kernel "powergrid/cg"); distinguishes a
  /// stalled solve from a poisoned one where dropV is untrustworthy.
  util::Diagnostics cgDiagnostics;
  std::size_t unknowns = 0;
  /// Preconditioner that produced dropV ("jacobi" or "multigrid").
  std::string preconditioner = "jacobi";
  int mgLevels = 0;             ///< hierarchy depth (0: Jacobi path)
  /// True when a stalled/diverged V-cycle forced a Jacobi-CG re-solve.
  bool mgFellBack = false;
};

/// Cached per-topology mesh state: unknown enumeration, the unit-
/// conductance Laplacian, and a lazily-built multigrid hierarchy. Shared
/// between concurrent solves; everything here is immutable after build
/// (the hierarchy builds under std::call_once).
class GridModel {
 public:
  explicit GridModel(const GridTopology& topology);

  /// Shared model for the topology implied by `config`, from a process-
  /// wide cache. Counts obs "powergrid/grid_assemblies" on a build and
  /// "powergrid/grid_assembly_reuses" on a hit.
  static std::shared_ptr<const GridModel> forConfig(const GridConfig& config);
  /// Drop every cached model (tests that assert assembly counts).
  static void clearCache();

  [[nodiscard]] const GridTopology& topology() const { return topo_; }
  [[nodiscard]] const MeshIndex& index() const { return index_; }
  /// Laplacian with unit edge conductance; scale the rhs by 1/g instead.
  [[nodiscard]] const SparseSpd& unitLaplacian() const { return laplacian_; }
  /// Default-options hierarchy over unitLaplacian(), built on first use.
  [[nodiscard]] const MultigridHierarchy& hierarchy() const;

 private:
  GridTopology topo_;
  MeshIndex index_;
  SparseSpd laplacian_;
  mutable std::once_flag hierarchyOnce_;
  mutable std::unique_ptr<MultigridHierarchy> hierarchy_;
};

/// Topology implied by a configuration (railsPerBump is rounded from the
/// pitch ratio). Throws on an invalid configuration.
GridTopology gridTopology(const GridConfig& config);

/// Build (or fetch from cache) and solve the mesh for `config`.
GridSolution solveGrid(const GridConfig& config,
                       const GridSolverOptions& options = {});

/// Grid configuration for a roadmap node with rails `widthMultiple` times
/// the minimum top-level width. `padPitch` is the pitch of the full bump
/// array; Vdd rails/bumps interleave with GND, so same-polarity pitches
/// are 2x padPitch.
GridConfig gridConfigForNode(const tech::TechNode& node, double widthMultiple,
                             double padPitch, bool withHotspot = true);

}  // namespace nano::powergrid
