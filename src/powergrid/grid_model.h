// Resistive power-grid mesh builder: a "waffle" of top-level Vdd rails in
// both routing directions at the same-polarity rail pitch, ideal bumps
// (Dirichlet nodes) at rail crossings on the bump pitch, distributed
// current loads along the rails with a hot-spot region at a multiple of
// the average power density. Solved with the CG solver for IR drop.
#pragma once

#include <vector>

#include "powergrid/solver.h"
#include "tech/itrs.h"

namespace nano::powergrid {

/// Mesh configuration. The modeled window is `tilesX x tilesY` bump cells
/// with natural (Neumann) boundaries — a periodic patch of a large die.
struct GridConfig {
  double railPitch = 160e-6;  ///< m, spacing of same-polarity (Vdd) rails
  double bumpPitch = 160e-6;  ///< m, Vdd bump spacing (multiple of railPitch)
  double railWidth = 1e-6;    ///< m
  double railSheetResistance = 0.055;  ///< ohm/sq of the top metal
  double supplyVoltage = 1.0; ///< V
  double powerDensity = 5e5;  ///< W/m^2, average (this polarity carries all)
  double hotspotFactor = 4.0; ///< density multiplier inside the hot-spot
  int hotspotCellsRail = 0;   ///< hot-spot square size in rail pitches (0: none)
  int tilesX = 2;             ///< window size, bump pitches
  int tilesY = 2;
  int subdivisions = 8;       ///< mesh nodes per rail span (resolution)
};

/// Solved grid.
struct GridSolution {
  int nx = 0;                   ///< fine-mesh points per row (incl. off-rail)
  int ny = 0;
  std::vector<double> dropV;    ///< IR drop per fine node (0 off-rail)
  double maxDrop = 0.0;         ///< V
  double maxDropFraction = 0.0; ///< of supplyVoltage
  int cgIterations = 0;
  double cgResidualNorm = 0.0;  ///< 2-norm of the CG residual at exit
  bool cgConverged = false;
  /// Structured solver outcome (kernel "powergrid/cg"); distinguishes a
  /// stalled solve from a poisoned one where dropV is untrustworthy.
  util::Diagnostics cgDiagnostics;
  std::size_t unknowns = 0;
};

/// Build and solve the mesh for `config`.
GridSolution solveGrid(const GridConfig& config);

/// Grid configuration for a roadmap node with rails `widthMultiple` times
/// the minimum top-level width. `padPitch` is the pitch of the full bump
/// array; Vdd rails/bumps interleave with GND, so same-polarity pitches
/// are 2x padPitch.
GridConfig gridConfigForNode(const tech::TechNode& node, double widthMultiple,
                             double padPitch, bool withHotspot = true);

}  // namespace nano::powergrid
