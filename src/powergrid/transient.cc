#include "powergrid/transient.h"

#include <cmath>
#include <stdexcept>

namespace nano::powergrid {

TransientReport wakeupTransient(const tech::TechNode& node, int vddBumps,
                                const TransientConfig& cfg) {
  if (vddBumps < 1) throw std::invalid_argument("wakeupTransient: bumps < 1");
  if (cfg.wakeTime <= 0) throw std::invalid_argument("wakeupTransient: time");
  TransientReport rep;
  rep.vddBumps = vddBumps;
  const double fullCurrent = node.supplyCurrent();
  rep.deltaCurrent = (1.0 - cfg.idleFraction) * fullCurrent;
  rep.dIdt = rep.deltaCurrent / cfg.wakeTime;
  rep.effectiveInductance =
      cfg.planeInductance + cfg.bumpInductance / static_cast<double>(vddBumps);
  rep.noiseVoltage = rep.effectiveInductance * rep.dIdt;
  rep.noiseFraction = rep.noiseVoltage / node.vdd;
  const double budgetV = cfg.noiseBudgetFraction * node.vdd;
  rep.decapNeeded = rep.deltaCurrent * cfg.wakeTime / (2.0 * budgetV);
  rep.withinBudget = rep.noiseVoltage <= budgetV;
  return rep;
}

int minPitchVddBumps(const tech::TechNode& node) {
  const double cells =
      node.dieArea / (node.minBumpPitch * node.minBumpPitch);
  return static_cast<int>(std::round(cells / 4.0));
}

}  // namespace nano::powergrid
