#include "powergrid/transient.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "powergrid/irdrop.h"

namespace nano::powergrid {

TransientReport wakeupTransient(const tech::TechNode& node, int vddBumps,
                                const TransientConfig& cfg) {
  if (vddBumps < 1) throw std::invalid_argument("wakeupTransient: bumps < 1");
  if (cfg.wakeTime <= 0) throw std::invalid_argument("wakeupTransient: time");
  TransientReport rep;
  rep.vddBumps = vddBumps;
  const double fullCurrent = node.supplyCurrent();
  rep.deltaCurrent = (1.0 - cfg.idleFraction) * fullCurrent;
  rep.dIdt = rep.deltaCurrent / cfg.wakeTime;
  rep.effectiveInductance =
      cfg.planeInductance + cfg.bumpInductance / static_cast<double>(vddBumps);
  rep.noiseVoltage = rep.effectiveInductance * rep.dIdt;
  rep.noiseFraction = rep.noiseVoltage / node.vdd;
  const double budgetV = cfg.noiseBudgetFraction * node.vdd;
  rep.decapNeeded = rep.deltaCurrent * cfg.wakeTime / (2.0 * budgetV);
  rep.withinBudget = rep.noiseVoltage <= budgetV;
  return rep;
}

int minPitchVddBumps(const tech::TechNode& node) {
  const double cells =
      node.dieArea / (node.minBumpPitch * node.minBumpPitch);
  return static_cast<int>(std::round(cells / 4.0));
}

MeshTransientReport wakeupMeshTransient(const tech::TechNode& node,
                                        const TransientConfig& config,
                                        int steps,
                                        const GridSolverOptions& solver) {
  if (steps < 1) throw std::invalid_argument("wakeupMeshTransient: steps < 1");
  if (config.wakeTime <= 0) {
    throw std::invalid_argument("wakeupMeshTransient: time");
  }
  // Rails sized to the IR budget at full draw, as in the Figure 5 flow.
  const IrDropReport sizing = minPitchReport(node);
  GridConfig cfg =
      gridConfigForNode(node, sizing.widthOverMin, node.minBumpPitch, true);

  MeshTransientReport rep;
  rep.times.reserve(static_cast<std::size_t>(steps) + 1);
  rep.dropFraction.reserve(static_cast<std::size_t>(steps) + 1);
  const double fullDensity = cfg.powerDensity;
  for (int k = 0; k <= steps; ++k) {
    const double t =
        config.wakeTime * static_cast<double>(k) / static_cast<double>(steps);
    const double ramp =
        config.idleFraction + (1.0 - config.idleFraction) *
                                  static_cast<double>(k) /
                                  static_cast<double>(steps);
    // Only the load vector changes between samples: the topology (and so
    // the cached conductance matrix) is identical for every k.
    cfg.powerDensity = fullDensity * ramp;
    const GridSolution sol = solveGrid(cfg, solver);
    rep.times.push_back(t);
    rep.dropFraction.push_back(sol.maxDropFraction);
    rep.converged = rep.converged && sol.cgConverged;
    rep.unknowns = sol.unknowns;
    rep.mgLevels = sol.mgLevels;
  }
  rep.peakDropFraction =
      *std::max_element(rep.dropFraction.begin(), rep.dropFraction.end());
  return rep;
}

}  // namespace nano::powergrid
