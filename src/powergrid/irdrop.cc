#include "powergrid/irdrop.h"

#include <cmath>
#include <stdexcept>

namespace nano::powergrid {

double railMaxDrop(double railWidth, double railPitch, double bumpPitch,
                   double sheetResistance, double powerDensity,
                   double hotspotFactor, double supplyVoltage) {
  if (railWidth <= 0) throw std::invalid_argument("railMaxDrop: width <= 0");
  // Current collected per metre of rail from its tributary strip.
  const double lambda =
      hotspotFactor * powerDensity * railPitch / supplyVoltage;
  // Uniformly loaded span between two ideal sources: worst drop at the
  // midpoint, lambda * r * p^2 / 8 with r the rail resistance per metre.
  const double rPerM = sheetResistance / railWidth;
  return lambda * rPerM * bumpPitch * bumpPitch / 8.0;
}

IrDropReport requiredLinewidth(const tech::TechNode& node, double padPitch,
                               const IrDropOptions& options) {
  if (padPitch <= 0) throw std::invalid_argument("requiredLinewidth: pitch");
  IrDropReport rep;
  rep.padPitch = padPitch;
  rep.railPitch = 2.0 * padPitch;  // Vdd interleaved with GND

  const double sheet = node.metalResistivity / node.globalWireThickness();
  const double budget = options.budgetFraction * node.vdd;
  // Drop ~ 1/W: solve directly.
  const double dropAtUnitWidth =
      railMaxDrop(1.0, rep.railPitch, rep.railPitch, sheet,
                  node.powerDensity(), options.hotspotFactor, node.vdd);
  rep.requiredWidth = dropAtUnitWidth / budget;
  rep.widthOverMin = rep.requiredWidth / node.minGlobalWireWidth();

  // Each railPitch period of each polarity carries one rail; per pad pitch
  // of routing there is one rail (Vdd or GND) of requiredWidth.
  rep.routingFraction = rep.requiredWidth / padPitch;

  rep.bumpCurrent = options.hotspotFactor * node.powerDensity() *
                    rep.railPitch * rep.railPitch / node.vdd;
  rep.bumpCurrentOk = rep.bumpCurrent <= node.bumpCurrentLimit;
  rep.vddBumpCount = static_cast<int>(
      std::round(node.dieArea / (rep.railPitch * rep.railPitch)));

  if (options.runMesh) {
    GridConfig cfg = gridConfigForNode(
        node, rep.widthOverMin, padPitch, options.hotspotFactor > 1.0);
    cfg.hotspotFactor = options.hotspotFactor;
    cfg.subdivisions = options.meshSubdivisions;
    const GridSolution sol = solveGrid(cfg, options.solver);
    rep.meshDropFraction = sol.maxDropFraction;
  }
  return rep;
}

IrDropReport minPitchReport(const tech::TechNode& node,
                            const IrDropOptions& options) {
  return requiredLinewidth(node, node.minBumpPitch, options);
}

IrDropReport itrsPitchReport(const tech::TechNode& node,
                             const IrDropOptions& options) {
  return requiredLinewidth(node, node.itrsEffectiveBumpPitch(), options);
}

}  // namespace nano::powergrid
