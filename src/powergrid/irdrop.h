// IR-drop scaling analysis (paper Section 4 / Figure 5): the closed-form
// BACPAC-style rail model, the required-linewidth solve, routing-resource
// accounting, and bump-current checks — for both the minimum manufacturable
// bump pitch and the ITRS-projected pad counts.
#pragma once

#include "powergrid/grid_model.h"
#include "tech/itrs.h"

namespace nano::powergrid {

/// Closed-form worst IR drop of a Vdd rail of width `railWidth` serving a
/// strip `railPitch` wide with bumps every `bumpPitch` along it, at
/// hot-spot power density `q * density`: lambda * Rsheet * p^2 / (8 * W).
double railMaxDrop(double railWidth, double railPitch, double bumpPitch,
                   double sheetResistance, double powerDensity,
                   double hotspotFactor, double supplyVoltage);

/// Analysis options.
struct IrDropOptions {
  /// IR budget per polarity as a fraction of Vdd (paper: <10 % for the
  /// full Vdd-GND loop => 5 % per rail polarity).
  double budgetFraction = 0.05;
  double hotspotFactor = 4.0;
  /// Cross-check the closed form against the mesh solver.
  bool runMesh = false;
  /// Mesh resolution for the cross-check (nodes per rail span).
  int meshSubdivisions = 8;
  /// Solver selection for the mesh cross-check (Jacobi vs multigrid CG).
  GridSolverOptions solver;
};

/// Result of a required-linewidth solve at one node / bump pitch.
struct IrDropReport {
  double padPitch = 0.0;         ///< m, full-array bump pitch
  double railPitch = 0.0;        ///< m, same-polarity rail/bump pitch (2x pad)
  double requiredWidth = 0.0;    ///< m
  double widthOverMin = 0.0;     ///< requiredWidth / min top-level width
  /// Fraction of top-level routing taken by Vdd+GND rails.
  double routingFraction = 0.0;
  double bumpCurrent = 0.0;      ///< A per Vdd bump at hot-spot density
  bool bumpCurrentOk = false;    ///< within the node's per-bump limit
  double meshDropFraction = -1.0;  ///< mesh cross-check at requiredWidth (<0:
                                   ///< not run)
  int vddBumpCount = 0;          ///< Vdd bumps implied by this pitch
};

/// Required linewidth at `padPitch` for a node.
IrDropReport requiredLinewidth(const tech::TechNode& node, double padPitch,
                               const IrDropOptions& options = {});

/// Figure 5 cases: the minimum manufacturable bump pitch, and the pitch
/// implied by the ITRS pad-count projection.
IrDropReport minPitchReport(const tech::TechNode& node,
                            const IrDropOptions& options = {});
IrDropReport itrsPitchReport(const tech::TechNode& node,
                             const IrDropOptions& options = {});

/// Landing-pad overhead the paper adds on top of rail routing (constant
/// 16 % of top-level resources).
inline constexpr double kLandingPadFraction = 0.16;

}  // namespace nano::powergrid
