// Sparse symmetric-positive-definite linear solver (preconditioned
// conjugate gradients) for power-grid nodal analysis. Preconditioners are
// pluggable: the classic Jacobi diagonal scaling, or the geometric
// multigrid V-cycle from powergrid/multigrid.h.
#pragma once

#include <cstddef>
#include <vector>

#include "kernel/sell.h"
#include "util/numeric.h"

namespace nano::powergrid {

/// Symmetric sparse matrix assembled by stamps (duplicate entries add).
/// Only build via addEntry/addDiagonal; finalize() compresses to CSR.
class SparseSpd {
 public:
  explicit SparseSpd(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Stamp value at (i, j) and (j, i); i != j.
  void addOffDiagonal(std::size_t i, std::size_t j, double value);
  void addDiagonal(std::size_t i, double value);

  /// Compress triplets to CSR; further stamping is rejected.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  /// y = A x.
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;

  [[nodiscard]] double diagonal(std::size_t i) const;

  /// Read-only CSR views of the finalized matrix (throws before
  /// finalize()). Row r owns entries [rowPtr()[r], rowPtr()[r+1]); columns
  /// within a row are sorted and duplicate-free. Used by the multigrid
  /// smoothers, the Galerkin coarse-operator product, and structure tests.
  [[nodiscard]] const std::vector<std::size_t>& rowPtr() const;
  [[nodiscard]] const std::vector<std::size_t>& cols() const;
  [[nodiscard]] const std::vector<double>& values() const;
  /// Stored entries of the finalized matrix (both triangles).
  [[nodiscard]] std::size_t nonZeros() const;

  /// Borrowed CSR view of the finalized matrix (throws before finalize()).
  [[nodiscard]] kernel::CsrView csrView() const;

 private:
  std::size_t n_;
  bool finalized_ = false;
  // Triplet storage during assembly (upper triangle + diagonal).
  std::vector<std::size_t> ti_, tj_;
  std::vector<double> tv_;
  // CSR after finalize (full matrix), plus the sliced-ELL repack the
  // dispatching multiply() hands to vector SpMV variants.
  std::vector<std::size_t> rowPtr_, col_;
  std::vector<double> val_;
  std::vector<double> diag_;
  kernel::SellMatrix sell_;
};

/// Fixed SPD linear operator z = M^{-1} r applied once per CG iteration.
/// Implementations must be deterministic and safe to apply concurrently
/// from multiple solves (no mutable per-apply state).
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  /// z = M^{-1} r. `z` is resized to match `r`; every element is written.
  virtual void apply(const std::vector<double>& r,
                     std::vector<double>& z) const = 0;
  /// Short static label for diagnostics ("jacobi", "multigrid").
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Diagonal (Jacobi) scaling: z_i = r_i / A_ii. The historical default.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const SparseSpd& a) : a_(a) {}
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override;
  [[nodiscard]] const char* name() const override { return "jacobi"; }

 private:
  const SparseSpd& a_;
};

/// CG result. `status` distinguishes tolerance met, iteration budget
/// exhausted, and a non-finite right-hand side / residual (NanDetected);
/// on NanDetected `x` is the last finite iterate (all zeros when the
/// inputs themselves were poisoned).
struct CgResult {
  std::vector<double> x;
  int iterations = 0;
  double residualNorm = 0.0;
  bool converged = false;
  util::SolverStatus status = util::SolverStatus::MaxIterations;
  /// Structured view of the outcome (kernel "powergrid/cg").
  [[nodiscard]] util::Diagnostics diagnostics() const {
    util::Diagnostics d;
    d.status = status;
    d.iterations = iterations;
    d.residual = residualNorm;
    d.kernel = "powergrid/cg";
    return d;
  }
};

/// Solve A x = b with Jacobi-preconditioned CG. Never throws on numerical
/// failure (structural misuse — unfinalized matrix, size mismatch — still
/// throws); inspect `status` instead.
CgResult solveCg(const SparseSpd& a, const std::vector<double>& b,
                 double relTolerance = 1e-9, int maxIterations = 20000);

/// Solve A x = b with CG under an explicit preconditioner. The Jacobi
/// path of the default overload is bit-identical to passing a
/// JacobiPreconditioner here. A preconditioner breakdown (non-finite or
/// non-positive <r, M^{-1} r>) stops at the last finite iterate with
/// NanDetected instead of poisoning x.
CgResult solveCg(const SparseSpd& a, const std::vector<double>& b,
                 const Preconditioner& preconditioner,
                 double relTolerance = 1e-9, int maxIterations = 20000);

}  // namespace nano::powergrid
