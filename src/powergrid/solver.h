// Sparse symmetric-positive-definite linear solver (Jacobi-preconditioned
// conjugate gradients) for power-grid nodal analysis.
#pragma once

#include <cstddef>
#include <vector>

#include "util/numeric.h"

namespace nano::powergrid {

/// Symmetric sparse matrix assembled by stamps (duplicate entries add).
/// Only build via addEntry/addDiagonal; finalize() compresses to CSR.
class SparseSpd {
 public:
  explicit SparseSpd(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Stamp value at (i, j) and (j, i); i != j.
  void addOffDiagonal(std::size_t i, std::size_t j, double value);
  void addDiagonal(std::size_t i, double value);

  /// Compress triplets to CSR; further stamping is rejected.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  /// y = A x.
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;

  [[nodiscard]] double diagonal(std::size_t i) const;

 private:
  std::size_t n_;
  bool finalized_ = false;
  // Triplet storage during assembly (upper triangle + diagonal).
  std::vector<std::size_t> ti_, tj_;
  std::vector<double> tv_;
  // CSR after finalize (full matrix).
  std::vector<std::size_t> rowPtr_, col_;
  std::vector<double> val_;
  std::vector<double> diag_;
};

/// CG result. `status` distinguishes tolerance met, iteration budget
/// exhausted, and a non-finite right-hand side / residual (NanDetected);
/// on NanDetected `x` is the last finite iterate (all zeros when the
/// inputs themselves were poisoned).
struct CgResult {
  std::vector<double> x;
  int iterations = 0;
  double residualNorm = 0.0;
  bool converged = false;
  util::SolverStatus status = util::SolverStatus::MaxIterations;
  /// Structured view of the outcome (kernel "powergrid/cg").
  [[nodiscard]] util::Diagnostics diagnostics() const {
    util::Diagnostics d;
    d.status = status;
    d.iterations = iterations;
    d.residual = residualNorm;
    d.kernel = "powergrid/cg";
    return d;
  }
};

/// Solve A x = b with Jacobi-preconditioned CG. Never throws on numerical
/// failure (structural misuse — unfinalized matrix, size mismatch — still
/// throws); inspect `status` instead.
CgResult solveCg(const SparseSpd& a, const std::vector<double>& b,
                 double relTolerance = 1e-9, int maxIterations = 20000);

}  // namespace nano::powergrid
