// Wake-up current transients (paper Section 4): leaving a sleep/standby
// state ramps the supply current from the idle level to full draw; the
// inductance of the bump array turns dI/dt into supply noise. More bumps
// (the minimum pitch) mean a lower-inductance path; on-die decoupling
// absorbs the front of the ramp.
#pragma once

#include <vector>

#include "powergrid/grid_model.h"
#include "tech/itrs.h"

namespace nano::powergrid {

struct TransientConfig {
  double wakeTime = 5e-9;          ///< s, standby-exit current ramp
  double idleFraction = 0.05;      ///< standby current / full current
  double bumpInductance = 100e-12; ///< H per bump (bump + via stack)
  double planeInductance = 0.02e-12;  ///< H, package plane spreading floor
  /// Supply-noise budget as a fraction of Vdd (for the decap sizing).
  double noiseBudgetFraction = 0.05;
};

struct TransientReport {
  int vddBumps = 0;
  double deltaCurrent = 0.0;         ///< A, idle -> active step
  double dIdt = 0.0;                 ///< A/s
  double effectiveInductance = 0.0;  ///< H
  double noiseVoltage = 0.0;         ///< V = L * dI/dt
  double noiseFraction = 0.0;        ///< of Vdd
  /// On-die decap needed to carry the ramp within the noise budget:
  /// C >= dI * t_wake / (2 * V_budget).
  double decapNeeded = 0.0;          ///< F
  bool withinBudget = false;
};

/// Analyze the wake-up transient with `vddBumps` Vdd connections.
TransientReport wakeupTransient(const tech::TechNode& node, int vddBumps,
                                const TransientConfig& config = {});

/// Vdd bump count at the minimum manufacturable pitch (one Vdd bump per
/// 2x2 pad cell: Vdd/GND/2 signals).
int minPitchVddBumps(const tech::TechNode& node);

/// Quasi-static mesh view of the wake-up ramp: the supply current (and
/// hence power density) rises linearly from the idle fraction to full
/// draw over `wakeTime`; each sampled instant is an IR-drop mesh solve
/// with only the load vector rescaled. All samples share one cached
/// GridModel, so the conductance matrix is assembled at most once.
struct MeshTransientReport {
  std::vector<double> times;         ///< s, sample instants (0..wakeTime)
  std::vector<double> dropFraction;  ///< worst IR drop / Vdd per sample
  double peakDropFraction = 0.0;     ///< max over the ramp
  bool converged = true;             ///< every sample's CG converged
  std::size_t unknowns = 0;          ///< mesh unknowns per solve
  int mgLevels = 0;                  ///< hierarchy depth of the last solve
};

/// Sample the wake-up ramp at `steps + 1` instants on the mesh implied by
/// the node's minimum bump pitch (rails sized to the IR budget).
MeshTransientReport wakeupMeshTransient(const tech::TechNode& node,
                                        const TransientConfig& config = {},
                                        int steps = 8,
                                        const GridSolverOptions& solver = {});

}  // namespace nano::powergrid
