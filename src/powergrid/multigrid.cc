#include "powergrid/multigrid.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "exec/exec.h"
#include "kernel/sell.h"
#include "obs/obs.h"

namespace nano::powergrid {

namespace {
// Same gating philosophy as SparseSpd::multiply: below this many items a
// parallel region costs more than it saves.
constexpr std::size_t kParallelSmoothRows = 8192;

// Coarsest-level fallback when no dense factorization is available. Plain
// Jacobi-PCG, deliberately free of obs counters so inner solves cannot
// pollute the outer powergrid/cg_* metrics that tests assert on.
void fallbackCoarseCg(const SparseSpd& a, const std::vector<double>& b,
                      std::vector<double>& x) {
  const std::size_t n = a.size();
  x.assign(n, 0.0);
  std::vector<double> r = b, z(n), p(n), ap(n);
  auto dot = [](const std::vector<double>& u, const std::vector<double>& v) {
    double s = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i) s += u[i] * v[i];
    return s;
  };
  const double bNorm = std::sqrt(dot(b, b));
  if (bNorm == 0.0 || !std::isfinite(bNorm)) return;
  for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / a.diagonal(i);
  p = z;
  double rz = dot(r, z);
  const double threshold = 1e-10 * bNorm;
  const int maxIterations = static_cast<int>(4 * n) + 100;
  for (int it = 0; it < maxIterations; ++it) {
    a.multiply(p, ap);
    const double alpha = rz / dot(p, ap);
    if (!std::isfinite(alpha)) break;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    if (std::sqrt(dot(r, r)) <= threshold) break;
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / a.diagonal(i);
    const double rzNew = dot(r, z);
    const double beta = rzNew / rz;
    rz = rzNew;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
}
}  // namespace

bool GridTopology::canCoarsen() const {
  if (subdivisions >= 2 && subdivisions % 2 == 0) {
    return railsPerBump * (subdivisions / 2) >= 2;
  }
  if (subdivisions == 1 && railsPerBump % 2 == 0) return railsPerBump / 2 >= 2;
  return false;
}

GridTopology GridTopology::coarsened() const {
  if (!canCoarsen()) throw std::logic_error("GridTopology: cannot coarsen");
  if (subdivisions % 2 == 0) {
    return {tilesX, tilesY, subdivisions / 2, railsPerBump};
  }
  return {tilesX, tilesY, 1, railsPerBump / 2};
}

MeshIndex::MeshIndex(const GridTopology& topology) : topo_(topology) {
  if (topo_.tilesX < 1 || topo_.tilesY < 1 || topo_.subdivisions < 1 ||
      topo_.railsPerBump < 1 || topo_.bumpStep() < 2) {
    throw std::invalid_argument("MeshIndex: bad topology");
  }
  const int nx = topo_.nx();
  const int ny = topo_.ny();
  const int sub = topo_.subdivisions;
  const int bs = topo_.bumpStep();

  bumpRowCol_.assign(static_cast<std::size_t>(nx), -1);
  long offset = 0;
  for (int x = 0; x < nx; ++x) {
    bumpRowCol_[static_cast<std::size_t>(x)] = (x % bs == 0) ? -1 : offset++;
  }
  const std::size_t bumpRowUnknowns = static_cast<std::size_t>(offset);
  const std::size_t railRowUnknowns = static_cast<std::size_t>(nx);
  const std::size_t sparseRowUnknowns =
      static_cast<std::size_t>(topo_.tilesX * topo_.railsPerBump + 1);

  rowStart_.assign(static_cast<std::size_t>(ny), 0);
  std::size_t acc = 0;
  for (int y = 0; y < ny; ++y) {
    rowStart_[static_cast<std::size_t>(y)] = acc;
    if (y % sub != 0) {
      acc += sparseRowUnknowns;  // only vertical-rail crossings
    } else if (y % bs == 0) {
      acc += bumpRowUnknowns;  // full rail row minus the bumps
    } else {
      acc += railRowUnknowns;  // full rail row
    }
  }
  count_ = acc;
}

long MeshIndex::unknownAt(int x, int y) const {
  if (x < 0 || y < 0 || x >= topo_.nx() || y >= topo_.ny()) return -1;
  const int sub = topo_.subdivisions;
  if (y % sub != 0) {
    if (x % sub != 0) return -1;  // off-rail interior node
    return static_cast<long>(rowStart_[static_cast<std::size_t>(y)]) + x / sub;
  }
  if (y % topo_.bumpStep() == 0) {
    const long c = bumpRowCol_[static_cast<std::size_t>(x)];
    if (c < 0) return -1;  // bump: Dirichlet, not an unknown
    return static_cast<long>(rowStart_[static_cast<std::size_t>(y)]) + c;
  }
  return static_cast<long>(rowStart_[static_cast<std::size_t>(y)]) + x;
}

struct MultigridHierarchy::Level {
  Level(const GridTopology& t, MeshIndex i) : topo(t), index(std::move(i)) {}

  GridTopology topo;
  MeshIndex index;
  std::unique_ptr<SparseSpd> owned;  // null at level 0 (caller's matrix)
  const SparseSpd* a = nullptr;
  std::vector<double> invDiag;
  SmootherKind smoother = SmootherKind::WeightedJacobi;
  // Color buckets of unknown indices (ascending); disjoint within a color
  // by the setup-time verification, so each bucket sweeps in parallel.
  std::vector<std::vector<std::size_t>> colors;
  // One SELL-packed sweep structure per color bucket (off-diagonals plus
  // per-slot target/invDiag), built at setup so smooth() only dispatches.
  std::vector<kernel::GsColorPack> colorPacks;
  // Transfer to the next-coarser level (unused on the coarsest). P is
  // stored fine-row CSR, R = scale * P^T coarse-row CSR so restriction is
  // a deterministic gather.
  bool hasDown = false;
  double scale = 0.0;
  std::vector<std::size_t> pRowPtr, pCol;
  std::vector<double> pVal;
  std::vector<std::size_t> rRowPtr, rCol;
  std::vector<double> rVal;
  std::string residualGauge;
};

struct MultigridHierarchy::DenseCholesky {
  std::size_t n = 0;
  std::vector<double> f;  // row-major; lower triangle holds L after factor()

  bool factor(const SparseSpd& a) {
    n = a.size();
    f.assign(n * n, 0.0);
    const auto& rp = a.rowPtr();
    const auto& cs = a.cols();
    const auto& vs = a.values();
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t m = rp[u]; m < rp[u + 1]; ++m) f[u * n + cs[m]] = vs[m];
    }
    for (std::size_t j = 0; j < n; ++j) {
      double d = f[j * n + j];
      for (std::size_t k = 0; k < j; ++k) d -= f[j * n + k] * f[j * n + k];
      if (!(d > 0.0) || !std::isfinite(d)) return false;
      const double lj = std::sqrt(d);
      f[j * n + j] = lj;
      for (std::size_t i = j + 1; i < n; ++i) {
        double s = f[i * n + j];
        for (std::size_t k = 0; k < j; ++k) s -= f[i * n + k] * f[j * n + k];
        f[i * n + j] = s / lj;
      }
    }
    return true;
  }

  void solve(const std::vector<double>& b, std::vector<double>& x) const {
    x.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      double s = b[i];
      for (std::size_t k = 0; k < i; ++k) s -= f[i * n + k] * x[k];
      x[i] = s / f[i * n + i];
    }
    for (std::size_t i = n; i-- > 0;) {
      double s = x[i];
      for (std::size_t k = i + 1; k < n; ++k) s -= f[k * n + i] * x[k];
      x[i] = s / f[i * n + i];
    }
  }
};

namespace {

// Linear interpolation on the waffle lattice from coarse (half-resolution)
// to fine coordinates: coarse node c lives at fine (2cx, 2cy); fine nodes
// at one even and one odd coordinate average their two flanking coarse
// nodes (along the rail for subdivision coarsening); odd-odd fine nodes
// (full-lattice coarsening only) average the four corners. Parents that
// land on a bump carry their weight to the Dirichlet zero and are dropped.
int parentsOf(const MeshIndex& coarse, int x, int y,
              std::array<std::pair<long, double>, 4>& out) {
  int cnt = 0;
  auto add = [&](int cx, int cy, double w) {
    const long cu = coarse.unknownAt(cx, cy);
    if (cu >= 0) out[static_cast<std::size_t>(cnt++)] = {cu, w};
  };
  const bool evenX = (x % 2) == 0;
  const bool evenY = (y % 2) == 0;
  if (evenX && evenY) {
    add(x / 2, y / 2, 1.0);
  } else if (!evenX && evenY) {
    add((x - 1) / 2, y / 2, 0.5);
    add((x + 1) / 2, y / 2, 0.5);
  } else if (evenX) {
    add(x / 2, (y - 1) / 2, 0.5);
    add(x / 2, (y + 1) / 2, 0.5);
  } else {
    add((x - 1) / 2, (y - 1) / 2, 0.25);
    add((x + 1) / 2, (y - 1) / 2, 0.25);
    add((x - 1) / 2, (y + 1) / 2, 0.25);
    add((x + 1) / 2, (y + 1) / 2, 0.25);
  }
  // Parents are appended in row-major (y, x) order, which is exactly
  // ascending unknown-index order, so the CSR rows built from this list
  // need no sort.
  return cnt;
}

}  // namespace

MultigridHierarchy::MultigridHierarchy(const SparseSpd& fineMatrix,
                                       const GridTopology& topology,
                                       const MultigridOptions& options)
    : opt_(options) {
  if (!fineMatrix.finalized()) {
    throw std::invalid_argument("MultigridHierarchy: matrix not finalized");
  }
  if (opt_.preSmooth < 0 || opt_.postSmooth < 0 || opt_.maxLevels < 1 ||
      !(opt_.jacobiWeight > 0.0) || opt_.jacobiWeight > 1.0) {
    throw std::invalid_argument("MultigridHierarchy: bad options");
  }

  auto setupSmoother = [&](Level& lvl) {
    const SparseSpd& a = *lvl.a;
    const std::size_t n = a.size();
    lvl.invDiag.resize(n);
    for (std::size_t i = 0; i < n; ++i) lvl.invDiag[i] = 1.0 / a.diagonal(i);
    lvl.smoother = SmootherKind::WeightedJacobi;
    lvl.colors.clear();
    if (opt_.smoother != SmootherKind::RedBlackGaussSeidel) return;
    // Rail-stencil levels are bipartite under node parity; the bilinear
    // (full-lattice) levels get 9-point Galerkin stencils and need the
    // four-coloring. Verify the chosen coloring against the actual level
    // operator and fall back to weighted Jacobi if neither decouples it.
    const auto& rp = a.rowPtr();
    const auto& cs = a.cols();
    for (const int nColors : {2, 4}) {
      std::vector<std::uint8_t> color(n, 0);
      const int sub = lvl.topo.subdivisions;
      for (int y = 0; y < lvl.topo.ny(); ++y) {
        const int step = (y % sub != 0) ? sub : 1;
        for (int x = 0; x < lvl.topo.nx(); x += step) {
          const long u = lvl.index.unknownAt(x, y);
          if (u < 0) continue;
          color[static_cast<std::size_t>(u)] = static_cast<std::uint8_t>(
              nColors == 2 ? ((x + y) & 1) : ((x & 1) | ((y & 1) << 1)));
        }
      }
      bool ok = true;
      for (std::size_t u = 0; u < n && ok; ++u) {
        for (std::size_t m = rp[u]; m < rp[u + 1]; ++m) {
          if (cs[m] != u && color[cs[m]] == color[u]) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) continue;
      lvl.colors.assign(static_cast<std::size_t>(nColors), {});
      for (std::size_t u = 0; u < n; ++u) lvl.colors[color[u]].push_back(u);
      lvl.smoother = SmootherKind::RedBlackGaussSeidel;
      break;
    }
    if (lvl.smoother == SmootherKind::RedBlackGaussSeidel) {
      const kernel::CsrView view = a.csrView();
      lvl.colorPacks.clear();
      lvl.colorPacks.reserve(lvl.colors.size());
      for (const auto& bucket : lvl.colors) {
        lvl.colorPacks.push_back(
            kernel::GsColorPack::fromBucket(view, bucket, lvl.invDiag));
      }
    }
  };

  {
    Level fine(topology, MeshIndex(topology));
    fine.a = &fineMatrix;
    if (fine.index.unknownCount() != fineMatrix.size()) {
      throw std::invalid_argument(
          "MultigridHierarchy: matrix size does not match topology");
    }
    levels_.push_back(std::move(fine));
  }

  while (static_cast<int>(levels_.size()) < opt_.maxLevels &&
         levels_.back().topo.canCoarsen() &&
         levels_.back().index.unknownCount() > opt_.coarseTarget) {
    const GridTopology coarseTopo = levels_.back().topo.coarsened();
    MeshIndex coarseIndex(coarseTopo);
    const std::size_t nc = coarseIndex.unknownCount();
    if (nc == 0) break;

    // Build P (fine-row CSR) and R = scale * P^T (coarse-row CSR).
    {
      Level& f = levels_.back();
      const std::size_t nf = f.index.unknownCount();
      f.scale = f.topo.subdivisions > 1 ? 0.5 : 0.25;
      f.pRowPtr.assign(nf + 1, 0);
      f.pCol.clear();
      f.pVal.clear();
      std::array<std::pair<long, double>, 4> parents{};
      const int sub = f.topo.subdivisions;
      for (int y = 0; y < f.topo.ny(); ++y) {
        const int step = (y % sub != 0) ? sub : 1;
        for (int x = 0; x < f.topo.nx(); x += step) {
          const long u = f.index.unknownAt(x, y);
          if (u < 0) continue;
          const int cnt = parentsOf(coarseIndex, x, y, parents);
          for (int k = 0; k < cnt; ++k) {
            f.pCol.push_back(
                static_cast<std::size_t>(parents[static_cast<std::size_t>(k)].first));
            f.pVal.push_back(parents[static_cast<std::size_t>(k)].second);
          }
          f.pRowPtr[static_cast<std::size_t>(u) + 1] = f.pCol.size();
        }
      }
      f.rRowPtr.assign(nc + 1, 0);
      for (const std::size_t c : f.pCol) ++f.rRowPtr[c + 1];
      for (std::size_t c = 0; c < nc; ++c) f.rRowPtr[c + 1] += f.rRowPtr[c];
      f.rCol.assign(f.pCol.size(), 0);
      f.rVal.assign(f.pCol.size(), 0.0);
      std::vector<std::size_t> cursor(f.rRowPtr.begin(), f.rRowPtr.end() - 1);
      for (std::size_t u = 0; u < nf; ++u) {
        for (std::size_t k = f.pRowPtr[u]; k < f.pRowPtr[u + 1]; ++k) {
          const std::size_t c = f.pCol[k];
          f.rCol[cursor[c]] = u;
          f.rVal[cursor[c]] = f.scale * f.pVal[k];
          ++cursor[c];
        }
      }
      f.hasDown = true;
    }

    // Galerkin coarse operator A_c = R A P, stamped from the upper
    // triangle of each coarse row in a fixed order (deterministic and
    // exactly symmetric because SparseSpd mirrors each off-diagonal).
    auto ac = std::make_unique<SparseSpd>(nc);
    {
      const Level& f = levels_.back();
      const SparseSpd& a = *f.a;
      const auto& arp = a.rowPtr();
      const auto& acs = a.cols();
      const auto& avs = a.values();
      std::vector<double> scratch(nc, 0.0);
      std::vector<char> seen(nc, 0);
      std::vector<std::size_t> touched;
      for (std::size_t ci = 0; ci < nc; ++ci) {
        touched.clear();
        for (std::size_t k = f.rRowPtr[ci]; k < f.rRowPtr[ci + 1]; ++k) {
          const std::size_t fi = f.rCol[k];
          const double wf = f.rVal[k];
          for (std::size_t m = arp[fi]; m < arp[fi + 1]; ++m) {
            const std::size_t g = acs[m];
            const double ag = wf * avs[m];
            for (std::size_t q = f.pRowPtr[g]; q < f.pRowPtr[g + 1]; ++q) {
              const std::size_t cj = f.pCol[q];
              if (!seen[cj]) {
                seen[cj] = 1;
                touched.push_back(cj);
              }
              scratch[cj] += ag * f.pVal[q];
            }
          }
        }
        std::sort(touched.begin(), touched.end());
        for (const std::size_t cj : touched) {
          if (cj == ci) {
            ac->addDiagonal(ci, scratch[cj]);
          } else if (cj > ci) {
            ac->addOffDiagonal(ci, cj, scratch[cj]);
          }
          scratch[cj] = 0.0;
          seen[cj] = 0;
        }
      }
      ac->finalize();
    }

    Level coarse(coarseTopo, std::move(coarseIndex));
    coarse.owned = std::move(ac);
    coarse.a = coarse.owned.get();
    levels_.push_back(std::move(coarse));
  }

  for (std::size_t l = 0; l < levels_.size(); ++l) {
    setupSmoother(levels_[l]);
    levels_[l].residualGauge =
        "powergrid/mg_l" + std::to_string(l) + "_residual";
  }

  const std::size_t coarsest = levels_.back().index.unknownCount();
  if (coarsest <= opt_.denseDirectLimit) {
    auto factor = std::make_unique<DenseCholesky>();
    if (factor->factor(*levels_.back().a)) coarseFactor_ = std::move(factor);
  }
  NANO_OBS_GAUGE("powergrid/mg_levels", static_cast<double>(levels_.size()));
}

MultigridHierarchy::~MultigridHierarchy() = default;

int MultigridHierarchy::levelCount() const {
  return static_cast<int>(levels_.size());
}

std::size_t MultigridHierarchy::levelUnknowns(int level) const {
  return levels_.at(static_cast<std::size_t>(level)).index.unknownCount();
}

const GridTopology& MultigridHierarchy::levelTopology(int level) const {
  return levels_.at(static_cast<std::size_t>(level)).topo;
}

SmootherKind MultigridHierarchy::levelSmoother(int level) const {
  return levels_.at(static_cast<std::size_t>(level)).smoother;
}

double MultigridHierarchy::restrictionScale(int level) const {
  const Level& lvl = levels_.at(static_cast<std::size_t>(level));
  if (!lvl.hasDown) {
    throw std::out_of_range("MultigridHierarchy: no transfer at level");
  }
  return lvl.scale;
}

namespace {

void restrictInto(const std::vector<std::size_t>& rRowPtr,
                  const std::vector<std::size_t>& rCol,
                  const std::vector<double>& rVal,
                  const std::vector<double>& fine,
                  std::vector<double>& coarse) {
  const std::size_t nc = rRowPtr.size() - 1;
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t ci = lo; ci < hi; ++ci) {
      double s = 0.0;
      for (std::size_t k = rRowPtr[ci]; k < rRowPtr[ci + 1]; ++k) {
        s += rVal[k] * fine[rCol[k]];
      }
      coarse[ci] = s;
    }
  };
  if (nc >= kParallelSmoothRows && exec::threadCount() > 1) {
    exec::parallelForBlocked(nc, body, 2048);
  } else {
    body(0, nc);
  }
}

void prolongAddInto(const std::vector<std::size_t>& pRowPtr,
                    const std::vector<std::size_t>& pCol,
                    const std::vector<double>& pVal,
                    const std::vector<double>& coarse,
                    std::vector<double>& fine) {
  const std::size_t nf = pRowPtr.size() - 1;
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      double s = 0.0;
      for (std::size_t k = pRowPtr[u]; k < pRowPtr[u + 1]; ++k) {
        s += pVal[k] * coarse[pCol[k]];
      }
      fine[u] += s;
    }
  };
  if (nf >= kParallelSmoothRows && exec::threadCount() > 1) {
    exec::parallelForBlocked(nf, body, 2048);
  } else {
    body(0, nf);
  }
}

}  // namespace

void MultigridHierarchy::applyRestriction(int level,
                                          const std::vector<double>& fine,
                                          std::vector<double>& coarse) const {
  const Level& lvl = levels_.at(static_cast<std::size_t>(level));
  if (!lvl.hasDown) {
    throw std::out_of_range("MultigridHierarchy: no transfer at level");
  }
  if (fine.size() != lvl.index.unknownCount()) {
    throw std::invalid_argument("applyRestriction: size mismatch");
  }
  coarse.assign(lvl.rRowPtr.size() - 1, 0.0);
  restrictInto(lvl.rRowPtr, lvl.rCol, lvl.rVal, fine, coarse);
}

void MultigridHierarchy::applyProlongation(int level,
                                           const std::vector<double>& coarse,
                                           std::vector<double>& fine) const {
  const Level& lvl = levels_.at(static_cast<std::size_t>(level));
  if (!lvl.hasDown) {
    throw std::out_of_range("MultigridHierarchy: no transfer at level");
  }
  if (coarse.size() != lvl.rRowPtr.size() - 1) {
    throw std::invalid_argument("applyProlongation: size mismatch");
  }
  fine.assign(lvl.index.unknownCount(), 0.0);
  prolongAddInto(lvl.pRowPtr, lvl.pCol, lvl.pVal, coarse, fine);
}

void MultigridHierarchy::smooth(const Level& lvl, const std::vector<double>& b,
                                std::vector<double>& x, int sweeps,
                                bool reversed) const {
  NANO_OBS_TIMER("powergrid/mg_smooth");
  const SparseSpd& a = *lvl.a;
  const std::size_t n = a.size();
  if (lvl.smoother == SmootherKind::RedBlackGaussSeidel) {
    const int colorCount = static_cast<int>(lvl.colors.size());
    auto sweepBucket = [&](const kernel::GsColorPack& pack) {
      const kernel::BatchShape shape{pack.count, true, colorCount, 0};
      const kernel::GsFn fn = kernel::gsFamily().pick(shape);
      auto body = [&](std::size_t lo, std::size_t hi) {
        fn(pack, b.data(), x.data(), lo, hi);
      };
      // Safe and deterministic: no two nodes of one color couple (checked
      // at setup), so the bucket's writes touch values no other lane
      // reads, and every variant computes each slot's update whole.
      if (pack.count >= kParallelSmoothRows && exec::threadCount() > 1) {
        exec::parallelForBlocked(pack.count, body, 2048);
      } else {
        body(0, pack.count);
      }
    };
    for (int s = 0; s < sweeps; ++s) {
      if (!reversed) {
        for (const auto& pack : lvl.colorPacks) sweepBucket(pack);
      } else {
        // The reversed color order makes pre+post smoothing adjoint pairs,
        // keeping the V-cycle symmetric (required for CG).
        for (auto it = lvl.colorPacks.rbegin(); it != lvl.colorPacks.rend();
             ++it) {
          sweepBucket(*it);
        }
      }
    }
  } else {
    const kernel::BatchShape shape{n, true, 0, 0};
    std::vector<double> t(n);
    for (int s = 0; s < sweeps; ++s) {
      a.multiply(x, t);
      const kernel::JacobiFn fn = kernel::jacobiFamily().pick(shape);
      auto body = [&](std::size_t lo, std::size_t hi) {
        fn(opt_.jacobiWeight, lvl.invDiag.data(), b.data(), t.data(),
           x.data(), lo, hi);
      };
      if (n >= kParallelSmoothRows && exec::threadCount() > 1) {
        exec::parallelForBlocked(n, body, 2048);
      } else {
        body(0, n);
      }
    }
  }
}

void MultigridHierarchy::coarseSolve(const std::vector<double>& b,
                                     std::vector<double>& x) const {
  NANO_OBS_TIMER("powergrid/mg_coarse_solve");
  if (coarseFactor_) {
    coarseFactor_->solve(b, x);
  } else {
    fallbackCoarseCg(*levels_.back().a, b, x);
  }
}

void MultigridHierarchy::apply(const std::vector<double>& r,
                               std::vector<double>& z) const {
  const std::size_t levelN = levels_.size();
  if (r.size() != levels_[0].index.unknownCount()) {
    throw std::invalid_argument("MultigridHierarchy::apply: size mismatch");
  }
  if (levelN == 1) {
    coarseSolve(r, z);
    NANO_OBS_COUNT("powergrid/mg_vcycles", 1);
    return;
  }
  // All scratch is per-call so concurrent applies (the parallel figure
  // sweeps solve many grids at once against one shared hierarchy) are safe.
  std::vector<std::vector<double>> b(levelN), x(levelN);
  std::vector<double> t;
  b[0] = r;
  for (std::size_t l = 0; l + 1 < levelN; ++l) {
    const Level& lvl = levels_[l];
    const std::size_t n = lvl.index.unknownCount();
    x[l].assign(n, 0.0);
    smooth(lvl, b[l], x[l], opt_.preSmooth, false);
    t.resize(n);
    lvl.a->multiply(x[l], t);
    for (std::size_t i = 0; i < n; ++i) t[i] = b[l][i] - t[i];
    if (obs::enabled()) {
      double s = 0.0;
      for (const double v : t) s += v * v;
      NANO_OBS_GAUGE(lvl.residualGauge, std::sqrt(s));
    }
    b[l + 1].assign(levels_[l + 1].index.unknownCount(), 0.0);
    restrictInto(lvl.rRowPtr, lvl.rCol, lvl.rVal, t, b[l + 1]);
  }
  x[levelN - 1].assign(levels_[levelN - 1].index.unknownCount(), 0.0);
  coarseSolve(b[levelN - 1], x[levelN - 1]);
  for (std::size_t l = levelN - 1; l-- > 0;) {
    const Level& lvl = levels_[l];
    prolongAddInto(lvl.pRowPtr, lvl.pCol, lvl.pVal, x[l + 1], x[l]);
    smooth(lvl, b[l], x[l], opt_.postSmooth, true);
  }
  z = std::move(x[0]);
  NANO_OBS_COUNT("powergrid/mg_vcycles", 1);
}

}  // namespace nano::powergrid
