#include "powergrid/grid_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <tuple>

#include "obs/obs.h"

namespace nano::powergrid {

namespace {
// Below this many unknowns Jacobi-CG wins outright (no setup cost, and the
// small meshes converge in a few hundred iterations anyway); above it the
// V-cycle's mesh-independent convergence pays for itself.
constexpr std::size_t kAutoMultigridThreshold = 32768;

void validateConfig(const GridConfig& cfg) {
  if (cfg.railPitch <= 0 || cfg.bumpPitch < cfg.railPitch ||
      cfg.railWidth <= 0 || cfg.tilesX < 1 || cfg.tilesY < 1 ||
      cfg.subdivisions < 2) {
    throw std::invalid_argument("solveGrid: bad config");
  }
}
}  // namespace

GridTopology gridTopology(const GridConfig& cfg) {
  validateConfig(cfg);
  const int railsPerBump =
      std::max(1, static_cast<int>(std::round(cfg.bumpPitch / cfg.railPitch)));
  return GridTopology{cfg.tilesX, cfg.tilesY, cfg.subdivisions, railsPerBump};
}

namespace {

SparseSpd buildUnitLaplacian(const GridTopology& topo, const MeshIndex& index) {
  const std::size_t n = index.unknownCount();
  if (n == 0) throw std::invalid_argument("solveGrid: no unknowns");
  SparseSpd a(n);
  const int nx = topo.nx();
  const int ny = topo.ny();
  const int sub = topo.subdivisions;

  auto stampEdge = [&](long u, long v) {
    if (u < 0 && v < 0) return;  // bump-to-bump: no unknown on either end
    if (u >= 0) a.addDiagonal(static_cast<std::size_t>(u), 1.0);
    if (v >= 0) a.addDiagonal(static_cast<std::size_t>(v), 1.0);
    if (u >= 0 && v >= 0) {
      a.addOffDiagonal(static_cast<std::size_t>(u), static_cast<std::size_t>(v),
                       -1.0);
    }
  };

  for (int y = 0; y < ny; ++y) {
    const bool xRail = y % sub == 0;
    for (int x = 0; x < nx; ++x) {
      const bool yRail = x % sub == 0;
      if (!xRail && !yRail) continue;
      if (xRail && x + 1 < nx) {
        stampEdge(index.unknownAt(x, y), index.unknownAt(x + 1, y));
      }
      if (yRail && y + 1 < ny) {
        stampEdge(index.unknownAt(x, y), index.unknownAt(x, y + 1));
      }
    }
  }
  a.finalize();
  return a;
}

}  // namespace

GridModel::GridModel(const GridTopology& topology)
    : topo_(topology),
      index_(topology),
      laplacian_(buildUnitLaplacian(topology, index_)) {}

const MultigridHierarchy& GridModel::hierarchy() const {
  std::call_once(hierarchyOnce_, [this] {
    hierarchy_ = std::make_unique<MultigridHierarchy>(laplacian_, topo_);
  });
  return *hierarchy_;
}

namespace {
using TopologyKey = std::tuple<int, int, int, int>;

std::mutex& cacheMutex() {
  static std::mutex m;
  return m;
}

std::map<TopologyKey, std::shared_ptr<const GridModel>>& cacheMap() {
  static std::map<TopologyKey, std::shared_ptr<const GridModel>> cache;
  return cache;
}

// A sweep touches a handful of topologies; anything past this is churn
// from pathological test configs, so start over rather than grow forever.
constexpr std::size_t kCacheCapacity = 16;
}  // namespace

std::shared_ptr<const GridModel> GridModel::forConfig(const GridConfig& cfg) {
  const GridTopology topo = gridTopology(cfg);
  const TopologyKey key{topo.tilesX, topo.tilesY, topo.subdivisions,
                        topo.railsPerBump};
  // Build under the lock: concurrent first requests for one topology (the
  // parallel Figure 5 sweep) must produce exactly one assembly.
  std::lock_guard<std::mutex> lock(cacheMutex());
  auto& cache = cacheMap();
  if (const auto it = cache.find(key); it != cache.end()) {
    NANO_OBS_COUNT("powergrid/grid_assembly_reuses", 1);
    return it->second;
  }
  if (cache.size() >= kCacheCapacity) cache.clear();
  NANO_OBS_COUNT("powergrid/grid_assemblies", 1);
  auto model = std::make_shared<const GridModel>(topo);
  cache.emplace(key, model);
  return model;
}

void GridModel::clearCache() {
  std::lock_guard<std::mutex> lock(cacheMutex());
  cacheMap().clear();
}

GridSolution solveGrid(const GridConfig& cfg, const GridSolverOptions& opt) {
  NANO_OBS_SPAN("powergrid/grid_solve");
  const std::shared_ptr<const GridModel> model = GridModel::forConfig(cfg);
  const GridTopology& topo = model->topology();
  const MeshIndex& index = model->index();
  const int nx = topo.nx();
  const int ny = topo.ny();
  const int sub = topo.subdivisions;
  const std::size_t nUnknown = index.unknownCount();
  const double h = cfg.railPitch / sub;  // fine mesh pitch

  // Edge conductance; the cached matrix is the unit Laplacian, so fold g
  // into the load vector: (g L) x = b  <=>  L x = b / g.
  const double g = cfg.railWidth / (cfg.railSheetResistance * h);

  // Distributed loads: each rail node sinks the current of its tributary
  // strip (h along the rail, half a rail pitch to each side, split between
  // the two rail directions so the total equals density * area).
  std::vector<double> rhs(nUnknown, 0.0);
  const int hsSpan = cfg.hotspotCellsRail * sub;  // fine steps
  const int hsLoX = (nx - hsSpan) / 2;
  const int hsLoY = (ny - hsSpan) / 2;
  auto densityAt = [&](int x, int y) {
    const bool inHotspot = hsSpan > 0 && x >= hsLoX && x < hsLoX + hsSpan &&
                           y >= hsLoY && y < hsLoY + hsSpan;
    return cfg.powerDensity * (inHotspot ? cfg.hotspotFactor : 1.0);
  };
  const double tributary = 0.5 * h * cfg.railPitch;
  for (int y = 0; y < ny; ++y) {
    const bool xRail = y % sub == 0;
    const int step = xRail ? 1 : sub;
    for (int x = 0; x < nx; x += step) {
      const long u = index.unknownAt(x, y);
      if (u < 0) continue;
      double weight = xRail ? 1.0 : 0.0;
      if (x % sub == 0) weight += 1.0;
      rhs[static_cast<std::size_t>(u)] =
          densityAt(x, y) * tributary * weight / (cfg.supplyVoltage * g);
    }
  }

  PreconditionerKind kind = opt.preconditioner;
  if (kind == PreconditionerKind::Auto) {
    kind = nUnknown >= kAutoMultigridThreshold ? PreconditionerKind::Multigrid
                                               : PreconditionerKind::Jacobi;
  }

  GridSolution sol;
  CgResult cg;
  if (kind == PreconditionerKind::Multigrid) {
    // Non-default multigrid options bypass the cached hierarchy.
    std::unique_ptr<MultigridHierarchy> custom;
    const MultigridHierarchy* mg;
    if (opt.multigrid == MultigridOptions{}) {
      mg = &model->hierarchy();
    } else {
      custom = std::make_unique<MultigridHierarchy>(model->unitLaplacian(),
                                                    topo, opt.multigrid);
      mg = custom.get();
    }
    sol.mgLevels = mg->levelCount();
    sol.preconditioner = mg->name();
    cg = solveCg(model->unitLaplacian(), rhs, *mg, opt.relTolerance,
                 opt.maxIterations);
    if (!cg.converged) {
      // Stalled or diverged V-cycle: a wrong-but-finite preconditioner can
      // make CG wander forever. Re-solve with plain Jacobi-CG, which is
      // slow but dependable, rather than returning garbage.
      NANO_OBS_COUNT("powergrid/mg_fallback", 1);
      sol.mgFellBack = true;
      sol.preconditioner = "jacobi";
      cg = solveCg(model->unitLaplacian(), rhs, opt.relTolerance,
                   opt.maxIterations);
    }
  } else {
    cg = solveCg(model->unitLaplacian(), rhs, opt.relTolerance,
                 opt.maxIterations);
  }

  sol.nx = nx;
  sol.ny = ny;
  sol.cgIterations = cg.iterations;
  sol.cgResidualNorm = cg.residualNorm;
  sol.cgConverged = cg.converged;
  sol.cgDiagnostics = cg.diagnostics();
  sol.unknowns = nUnknown;
  sol.dropV.assign(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny),
                   0.0);
  for (int y = 0; y < ny; ++y) {
    const int step = (y % sub != 0) ? sub : 1;
    for (int x = 0; x < nx; x += step) {
      const long u = index.unknownAt(x, y);
      if (u < 0) continue;
      sol.dropV[static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) +
                static_cast<std::size_t>(x)] =
          cg.x[static_cast<std::size_t>(u)];
    }
  }
  sol.maxDrop = *std::max_element(sol.dropV.begin(), sol.dropV.end());
  sol.maxDropFraction = sol.maxDrop / cfg.supplyVoltage;
  return sol;
}

GridConfig gridConfigForNode(const tech::TechNode& node, double widthMultiple,
                             double padPitch, bool withHotspot) {
  GridConfig cfg;
  // Vdd rails and bumps interleave with GND: same-polarity pitch is twice
  // the pad pitch.
  cfg.railPitch = 2.0 * padPitch;
  cfg.bumpPitch = 2.0 * padPitch;
  cfg.railWidth = widthMultiple * node.minGlobalWireWidth();
  cfg.railSheetResistance = node.metalResistivity / node.globalWireThickness();
  cfg.supplyVoltage = node.vdd;
  cfg.powerDensity = node.powerDensity();
  cfg.hotspotFactor = withHotspot ? 4.0 : 1.0;
  cfg.hotspotCellsRail = withHotspot ? 1 : 0;
  cfg.tilesX = 3;
  cfg.tilesY = 3;
  cfg.subdivisions = 8;
  return cfg;
}

}  // namespace nano::powergrid
