#include "powergrid/grid_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

namespace nano::powergrid {

GridSolution solveGrid(const GridConfig& cfg) {
  NANO_OBS_SPAN("powergrid/grid_solve");
  if (cfg.railPitch <= 0 || cfg.bumpPitch < cfg.railPitch ||
      cfg.railWidth <= 0 || cfg.tilesX < 1 || cfg.tilesY < 1 ||
      cfg.subdivisions < 2) {
    throw std::invalid_argument("solveGrid: bad config");
  }
  const int sub = cfg.subdivisions;
  const int railsPerBump =
      std::max(1, static_cast<int>(std::round(cfg.bumpPitch / cfg.railPitch)));
  const int bumpStep = railsPerBump * sub;  // fine steps between bumps
  const int nx = cfg.tilesX * bumpStep + 1;
  const int ny = cfg.tilesY * bumpStep + 1;
  const double h = cfg.railPitch / sub;  // fine mesh pitch

  const auto idx = [nx](int x, int y) {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) +
           static_cast<std::size_t>(x);
  };
  const std::size_t n = static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);

  auto onXRail = [&](int y) { return y % sub == 0; };   // horizontal rail rows
  auto onYRail = [&](int x) { return x % sub == 0; };   // vertical rail cols
  auto onRail = [&](int x, int y) { return onXRail(y) || onYRail(x); };
  auto isBump = [&](int x, int y) {
    return (x % bumpStep == 0) && (y % bumpStep == 0);
  };

  // Unknowns: drop below the supply at rail nodes that are not bumps.
  std::vector<long> unknownOf(n, -1);
  std::size_t nUnknown = 0;
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      if (onRail(x, y) && !isBump(x, y)) {
        unknownOf[idx(x, y)] = static_cast<long>(nUnknown++);
      }
    }
  }
  if (nUnknown == 0) throw std::invalid_argument("solveGrid: no unknowns");

  const double g = cfg.railWidth / (cfg.railSheetResistance * h);

  SparseSpd a(nUnknown);
  std::vector<double> rhs(nUnknown, 0.0);

  auto stampEdge = [&](int x0, int y0, int x1, int y1) {
    const long u = unknownOf[idx(x0, y0)];
    const long v = unknownOf[idx(x1, y1)];
    if (u < 0 && v < 0) return;  // bump-to-bump (or off-rail): no unknown
    if (u >= 0) a.addDiagonal(static_cast<std::size_t>(u), g);
    if (v >= 0) a.addDiagonal(static_cast<std::size_t>(v), g);
    if (u >= 0 && v >= 0) {
      a.addOffDiagonal(static_cast<std::size_t>(u), static_cast<std::size_t>(v),
                       -g);
    }
  };

  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      if (onXRail(y) && x + 1 < nx) stampEdge(x, y, x + 1, y);
      if (onYRail(x) && y + 1 < ny) stampEdge(x, y, x, y + 1);
    }
  }

  // Distributed loads: each rail node sinks the current of its tributary
  // strip (h along the rail, half a rail pitch to each side, split between
  // the two rail directions so the total equals density * area).
  const int hsSpan = cfg.hotspotCellsRail * sub;  // fine steps
  const int hsLoX = (nx - hsSpan) / 2;
  const int hsLoY = (ny - hsSpan) / 2;
  auto densityAt = [&](int x, int y) {
    const bool inHotspot = hsSpan > 0 && x >= hsLoX && x < hsLoX + hsSpan &&
                           y >= hsLoY && y < hsLoY + hsSpan;
    return cfg.powerDensity * (inHotspot ? cfg.hotspotFactor : 1.0);
  };
  const double tributary = 0.5 * h * cfg.railPitch;
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const long u = unknownOf[idx(x, y)];
      if (u < 0) continue;
      double weight = 0.0;
      if (onXRail(y)) weight += 1.0;
      if (onYRail(x)) weight += 1.0;
      rhs[static_cast<std::size_t>(u)] =
          densityAt(x, y) * tributary * weight / cfg.supplyVoltage;
    }
  }

  a.finalize();
  const CgResult cg = solveCg(a, rhs, 1e-10);

  GridSolution sol;
  sol.nx = nx;
  sol.ny = ny;
  sol.cgIterations = cg.iterations;
  sol.cgResidualNorm = cg.residualNorm;
  sol.cgConverged = cg.converged;
  sol.cgDiagnostics = cg.diagnostics();
  sol.unknowns = nUnknown;
  sol.dropV.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (unknownOf[i] >= 0) {
      sol.dropV[i] = cg.x[static_cast<std::size_t>(unknownOf[i])];
    }
  }
  sol.maxDrop = *std::max_element(sol.dropV.begin(), sol.dropV.end());
  sol.maxDropFraction = sol.maxDrop / cfg.supplyVoltage;
  return sol;
}

GridConfig gridConfigForNode(const tech::TechNode& node, double widthMultiple,
                             double padPitch, bool withHotspot) {
  GridConfig cfg;
  // Vdd rails and bumps interleave with GND: same-polarity pitch is twice
  // the pad pitch.
  cfg.railPitch = 2.0 * padPitch;
  cfg.bumpPitch = 2.0 * padPitch;
  cfg.railWidth = widthMultiple * node.minGlobalWireWidth();
  cfg.railSheetResistance = node.metalResistivity / node.globalWireThickness();
  cfg.supplyVoltage = node.vdd;
  cfg.powerDensity = node.powerDensity();
  cfg.hotspotFactor = withHotspot ? 4.0 : 1.0;
  cfg.hotspotCellsRail = withHotspot ? 1 : 0;
  cfg.tilesX = 3;
  cfg.tilesY = 3;
  cfg.subdivisions = 8;
  return cfg;
}

}  // namespace nano::powergrid
