#include "powergrid/solver.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "exec/exec.h"
#include "obs/obs.h"

namespace nano::powergrid {

namespace {
// Below this row count the launch overhead of a parallel region beats any
// gain from splitting the matrix-vector product.
constexpr std::size_t kParallelRows = 8192;
}  // namespace

SparseSpd::SparseSpd(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("SparseSpd: empty");
}

void SparseSpd::addOffDiagonal(std::size_t i, std::size_t j, double value) {
  if (finalized_) throw std::logic_error("SparseSpd: already finalized");
  if (i >= n_ || j >= n_ || i == j) throw std::out_of_range("SparseSpd: bad index");
  ti_.push_back(i);
  tj_.push_back(j);
  tv_.push_back(value);
}

void SparseSpd::addDiagonal(std::size_t i, double value) {
  if (finalized_) throw std::logic_error("SparseSpd: already finalized");
  if (i >= n_) throw std::out_of_range("SparseSpd: bad index");
  ti_.push_back(i);
  tj_.push_back(i);
  tv_.push_back(value);
}

void SparseSpd::finalize() {
  if (finalized_) return;
  // Count entries per row (off-diagonals stamped once become two entries).
  std::vector<std::size_t> counts(n_ + 1, 0);
  for (std::size_t k = 0; k < ti_.size(); ++k) {
    ++counts[ti_[k] + 1];
    if (ti_[k] != tj_[k]) ++counts[tj_[k] + 1];
  }
  rowPtr_.assign(n_ + 1, 0);
  for (std::size_t i = 0; i < n_; ++i) rowPtr_[i + 1] = rowPtr_[i] + counts[i + 1];
  col_.assign(rowPtr_[n_], 0);
  val_.assign(rowPtr_[n_], 0.0);
  std::vector<std::size_t> cursor(rowPtr_.begin(), rowPtr_.end() - 1);
  auto place = [&](std::size_t r, std::size_t c, double v) {
    col_[cursor[r]] = c;
    val_[cursor[r]] = v;
    ++cursor[r];
  };
  for (std::size_t k = 0; k < ti_.size(); ++k) {
    place(ti_[k], tj_[k], tv_[k]);
    if (ti_[k] != tj_[k]) place(tj_[k], ti_[k], tv_[k]);
  }
  ti_.clear();
  tj_.clear();
  tv_.clear();
  ti_.shrink_to_fit();
  tj_.shrink_to_fit();
  tv_.shrink_to_fit();

  // Merge duplicates within each row (sort by column, accumulate).
  std::vector<std::size_t> newRowPtr(n_ + 1, 0);
  std::size_t write = 0;
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t lo = rowPtr_[r], hi = rowPtr_[r + 1];
    std::vector<std::pair<std::size_t, double>> row;
    row.reserve(hi - lo);
    for (std::size_t k = lo; k < hi; ++k) row.emplace_back(col_[k], val_[k]);
    std::sort(row.begin(), row.end());
    std::size_t rowStart = write;
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (write > rowStart && col_[write - 1] == row[k].first) {
        val_[write - 1] += row[k].second;
      } else {
        col_[write] = row[k].first;
        val_[write] = row[k].second;
        ++write;
      }
    }
    newRowPtr[r + 1] = write;
  }
  rowPtr_ = std::move(newRowPtr);
  col_.resize(write);
  val_.resize(write);

  diag_.assign(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      if (col_[k] == r) diag_[r] = val_[k];
    }
  }
  finalized_ = true;
  sell_ = kernel::SellMatrix::fromCsr(csrView());
}

void SparseSpd::multiply(const std::vector<double>& x,
                         std::vector<double>& y) const {
  if (!finalized_) throw std::logic_error("SparseSpd: not finalized");
  // Reuse the caller's storage: every element is overwritten below, so a
  // zero-fill per call (the old y.assign) is pure waste inside CG loops.
  if (y.size() != n_) y.resize(n_);
  // Dispatch through the SpMV kernel family: scalar CSR reference, or the
  // sliced-ELL AVX2 variant when the CPU has it. Every variant computes
  // each row's sum whole with the CSR accumulation order, so the result is
  // bit-identical across variants and at any thread count or blocking.
  const kernel::CsrView view = csrView();
  const kernel::BatchShape shape{n_, true, 0, kernel::SellMatrix::kSlice};
  const kernel::SpmvFn fn = kernel::spmvFamily().pick(shape);
  auto rows = [&](std::size_t begin, std::size_t end) {
    fn(view, &sell_, x.data(), y.data(), begin, end);
  };
  if (n_ >= kParallelRows && exec::threadCount() > 1) {
    exec::parallelForBlocked(n_, rows, 2048);
  } else {
    rows(0, n_);
  }
}

double SparseSpd::diagonal(std::size_t i) const { return diag_.at(i); }

const std::vector<std::size_t>& SparseSpd::rowPtr() const {
  if (!finalized_) throw std::logic_error("SparseSpd: not finalized");
  return rowPtr_;
}

const std::vector<std::size_t>& SparseSpd::cols() const {
  if (!finalized_) throw std::logic_error("SparseSpd: not finalized");
  return col_;
}

const std::vector<double>& SparseSpd::values() const {
  if (!finalized_) throw std::logic_error("SparseSpd: not finalized");
  return val_;
}

std::size_t SparseSpd::nonZeros() const {
  if (!finalized_) throw std::logic_error("SparseSpd: not finalized");
  return val_.size();
}

kernel::CsrView SparseSpd::csrView() const {
  if (!finalized_) throw std::logic_error("SparseSpd: not finalized");
  return kernel::CsrView{n_, rowPtr_.data(), col_.data(), val_.data()};
}

void JacobiPreconditioner::apply(const std::vector<double>& r,
                                 std::vector<double>& z) const {
  if (z.size() != r.size()) z.resize(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] / a_.diagonal(i);
}

CgResult solveCg(const SparseSpd& a, const std::vector<double>& b,
                 double relTolerance, int maxIterations) {
  return solveCg(a, b, JacobiPreconditioner(a), relTolerance, maxIterations);
}

CgResult solveCg(const SparseSpd& a, const std::vector<double>& b,
                 const Preconditioner& preconditioner, double relTolerance,
                 int maxIterations) {
  if (!a.finalized()) throw std::logic_error("solveCg: matrix not finalized");
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("solveCg: size mismatch");
  NANO_OBS_SPAN("powergrid/cg_solve");

  CgResult res;
  res.x.assign(n, 0.0);
  std::vector<double> r = b;
  std::vector<double> z(n), p(n), ap(n);

  auto dot = [](const std::vector<double>& u, const std::vector<double>& v) {
    double s = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i) s += u[i] * v[i];
    return s;
  };
  const double bNorm = std::sqrt(dot(b, b));

  // Every exit path below reports the same bookkeeping: iterations
  // consumed, the residual norm at exit, the convergence flag, and the
  // structured status.
  res.residualNorm = bNorm;
  res.converged = bNorm == 0.0;  // x = 0 is exact for b = 0
  res.status = res.converged ? util::SolverStatus::Converged
                             : util::SolverStatus::MaxIterations;

  // NaN/Inf guard on the model inputs: a poisoned rhs would otherwise
  // propagate through every inner product and come back as a "converged"
  // NaN <= threshold comparison being false forever.
  if (!std::isfinite(bNorm)) {
    res.converged = false;
    res.status = util::SolverStatus::NanDetected;
  } else if (!res.converged) {
    preconditioner.apply(r, z);
    p = z;
    double rz = dot(r, z);
    const double threshold = relTolerance * bNorm;

    for (int it = 0; it < maxIterations; ++it) {
      a.multiply(p, ap);
      const double alpha = rz / dot(p, ap);
      if (!std::isfinite(alpha)) {
        // Preconditioner breakdown (zero diagonal, a V-cycle returning
        // non-finite values) or a non-finite matrix entry: stop at the
        // last finite iterate instead of poisoning x.
        res.status = util::SolverStatus::NanDetected;
        break;
      }
      for (std::size_t i = 0; i < n; ++i) {
        res.x[i] += alpha * p[i];
        r[i] -= alpha * ap[i];
      }
      res.iterations = it + 1;
      res.residualNorm = std::sqrt(dot(r, r));
      if (!std::isfinite(res.residualNorm)) {
        res.status = util::SolverStatus::NanDetected;
        break;
      }
      if (res.residualNorm <= threshold) {
        res.converged = true;
        res.status = util::SolverStatus::Converged;
        break;
      }
      preconditioner.apply(r, z);
      const double rzNew = dot(r, z);
      const double beta = rzNew / rz;
      rz = rzNew;
      for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    }
  }

  NANO_OBS_COUNT("powergrid/cg_solves", 1);
  NANO_OBS_COUNT("powergrid/cg_iterations", res.iterations);
  NANO_OBS_GAUGE("powergrid/cg_residual", res.residualNorm);
  if (!res.converged) NANO_OBS_COUNT("powergrid/cg_nonconverged", 1);
  if (res.status == util::SolverStatus::NanDetected) {
    NANO_OBS_COUNT("powergrid/cg_nan_detected", 1);
  }
  return res;
}

}  // namespace nano::powergrid
