// Netlist power analysis: per-gate dynamic (a*C*V^2*f) and leakage rollups
// with a separate bucket for level-converter overhead, so the multi-Vdd
// results can report the "8-10 % additional level conversion power" the
// paper quotes.
#pragma once

#include "circuit/netlist.h"
#include "power/activity.h"

namespace nano::power {

/// Power rollup of a netlist.
struct PowerBreakdown {
  double dynamic = 0.0;          ///< W, logic switching (excl. converters)
  double leakage = 0.0;          ///< W, logic leakage (excl. converters)
  double levelConverter = 0.0;   ///< W, level-converter dynamic + leakage
  [[nodiscard]] double total() const {
    return dynamic + leakage + levelConverter;
  }
};

/// Compute power at clock `freq` with the given activity annotation.
PowerBreakdown computePower(const circuit::Netlist& netlist,
                            const ActivityResult& activity, double freq);

/// Convenience: propagate default activity and compute power.
PowerBreakdown computePower(const circuit::Netlist& netlist, double freq,
                            double piActivity = 0.2);

/// Per-gate dynamic power (same model as computePower), W; used for
/// sensitivity-driven optimizers.
double gateDynamicPower(const circuit::Netlist& netlist,
                        const ActivityResult& activity, int gateId,
                        double freq);

}  // namespace nano::power
