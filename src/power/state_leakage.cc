#include "power/state_leakage.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "power/standby.h"
#include "util/units.h"

namespace nano::power {

using circuit::Cell;
using circuit::CellFunction;
using circuit::Netlist;
using circuit::VthClass;

namespace {

using namespace nano::units;

/// Per-node, per-Vth-flavor leakage context: off-currents and stack
/// factors, computed once and reused for every gate.
struct LeakContext {
  const tech::TechNode* node = nullptr;
  double vthLow = 0.0;
  // Indexed by VthClass (0 = low, 1 = high).
  double ioffPerWidth[2] = {0.0, 0.0};   // A/m at full vds
  double stackFactor2[2] = {1.0, 1.0};
  double stackFactor3[2] = {1.0, 1.0};

  explicit LeakContext(const tech::TechNode& n) : node(&n) {
    vthLow = device::solveVthForIon(n, n.ionTarget);
    for (int k = 0; k < 2; ++k) {
      const double vth = vthLow + (k ? circuit::kDualVthOffset : 0.0);
      const device::Mosfet dev = device::Mosfet::fromNode(n, vth);
      ioffPerWidth[k] = dev.ioff();
      stackFactor2[k] = stackLeakageFactor(dev, 2);
      stackFactor3[k] = stackLeakageFactor(dev, 3);
    }
  }

  double stackFactor(int flavor, int offDevices) const {
    switch (offDevices) {
      case 0: return 0.0;
      case 1: return 1.0;
      case 2: return stackFactor2[flavor];
      default: return stackFactor3[flavor];
    }
  }
};

const LeakContext& contextFor(const tech::TechNode& node) {
  // One cached context per node (the roadmap is a static table, so the
  // pointer is a stable key).
  static std::vector<std::pair<const tech::TechNode*, LeakContext>> cache;
  for (const auto& [key, ctx] : cache) {
    if (key == &node) return ctx;
  }
  cache.emplace_back(&node, LeakContext(node));
  return cache.back().second;
}

int popcount(unsigned x) {
  int n = 0;
  for (; x; x >>= 1) n += static_cast<int>(x & 1u);
  return n;
}

}  // namespace

double cellStateLeakage(const Cell& cell, const tech::TechNode& node,
                        unsigned inputsHigh) {
  const LeakContext& ctx = contextFor(node);
  const int flavor = cell.vth == VthClass::High ? 1 : 0;
  const double ioffN = ctx.ioffPerWidth[flavor];
  const double ioffP = device::kPmosCurrentFactor * ioffN;
  // Device widths mirror the characterizer's unit inverter scaled by drive.
  const double drawnL = node.featureNm * nm;
  const double wn = 2.0 * drawnL * cell.drive;
  const double wp = 4.0 * drawnL * cell.drive;

  const int fanin = cell.fanin();
  const unsigned mask = (1u << fanin) - 1u;
  const int high = popcount(inputsHigh & mask);
  const int low = fanin - high;

  switch (cell.function) {
    case CellFunction::Inv:
      // Input high: NMOS on, PMOS leaks; input low: NMOS leaks.
      return cell.vdd * (high ? ioffP * wp : ioffN * wn);
    case CellFunction::Buf:
    case CellFunction::LevelConverter: {
      // Two back-to-back stages: one leaks through N, the other through P.
      return cell.vdd * 0.5 * (ioffN * wn + ioffP * wp) * 2.0;
    }
    case CellFunction::Nand2:
    case CellFunction::Nand3: {
      if (low == 0) {
        // Output low: all parallel PMOS off at full vds.
        return cell.vdd * fanin * ioffP * wp;
      }
      // Output high: `low` NMOS devices off in the series stack.
      return cell.vdd * ioffN * wn * ctx.stackFactor(flavor, low);
    }
    case CellFunction::Nor2:
    case CellFunction::Nor3: {
      if (high == 0) {
        // Output high: all parallel NMOS off at full vds.
        return cell.vdd * fanin * ioffN * wn;
      }
      // Output low: `high` PMOS devices off in the series pull-up.
      return cell.vdd * ioffP * wp * ctx.stackFactor(flavor, high);
    }
    case CellFunction::Xor2:
      // Pass-gate style: no strong state dependence; use the averaged
      // characterized value.
      return cell.leakage;
  }
  throw std::logic_error("cellStateLeakage: bad function");
}

double stateAwareLeakage(const Netlist& netlist, const tech::TechNode& node,
                         const ActivityResult& activity) {
  double total = 0.0;
  for (int g : netlist.gateIds()) {
    const auto& nd = netlist.node(g);
    const int fanin = nd.cell.fanin();
    const unsigned states = 1u << fanin;
    for (unsigned s = 0; s < states; ++s) {
      double p = 1.0;
      for (int k = 0; k < fanin; ++k) {
        const double pk =
            activity.probability[static_cast<std::size_t>(nd.fanins
                [static_cast<std::size_t>(k)])];
        p *= (s >> k) & 1u ? pk : 1.0 - pk;
      }
      if (p > 0.0) total += p * cellStateLeakage(nd.cell, node, s);
    }
  }
  return total;
}

LeakageBounds leakageStateBounds(const Netlist& netlist,
                                 const tech::TechNode& node) {
  LeakageBounds b;
  for (int g : netlist.gateIds()) {
    const auto& nd = netlist.node(g);
    const unsigned states = 1u << nd.cell.fanin();
    double lo = cellStateLeakage(nd.cell, node, 0);
    double hi = lo;
    for (unsigned s = 1; s < states; ++s) {
      const double leak = cellStateLeakage(nd.cell, node, s);
      lo = std::min(lo, leak);
      hi = std::max(hi, leak);
    }
    b.minimum += lo;
    b.maximum += hi;
  }
  return b;
}

}  // namespace nano::power
