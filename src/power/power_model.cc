#include "power/power_model.h"

namespace nano::power {

using circuit::CellFunction;
using circuit::Netlist;

double gateDynamicPower(const Netlist& netlist, const ActivityResult& activity,
                        int gateId, double freq) {
  const auto& node = netlist.node(gateId);
  const double a = activity.activity[static_cast<std::size_t>(gateId)];
  return a * node.cell.switchingEnergy(netlist.loadCap(gateId)) * freq;
}

PowerBreakdown computePower(const Netlist& netlist,
                            const ActivityResult& activity, double freq) {
  PowerBreakdown p;
  for (int i = 0; i < netlist.nodeCount(); ++i) {
    const auto& node = netlist.node(i);
    if (node.kind != Netlist::NodeKind::Gate) continue;
    const double dyn = gateDynamicPower(netlist, activity, i, freq);
    const double leak = node.cell.leakage;
    if (node.cell.function == CellFunction::LevelConverter) {
      p.levelConverter += dyn + leak;
    } else {
      p.dynamic += dyn;
      p.leakage += leak;
    }
  }
  return p;
}

PowerBreakdown computePower(const Netlist& netlist, double freq,
                            double piActivity) {
  return computePower(netlist, propagateActivity(netlist, 0.5, piActivity),
                      freq);
}

}  // namespace nano::power
