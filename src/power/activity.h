// Signal-probability and switching-activity propagation through a netlist
// (zero-delay model with spatial independence): the activity numbers that
// feed dynamic-power analysis.
#pragma once

#include <vector>

#include "circuit/netlist.h"

namespace nano::power {

/// Per-node signal statistics.
struct ActivityResult {
  std::vector<double> probability;  ///< P(node == 1)
  std::vector<double> activity;     ///< transitions per clock cycle
};

/// Propagate from primary inputs with probability `piProbability` and
/// activity `piActivity`. Internal node activity uses the temporal-
/// independence estimate 2*p*(1-p), scaled by the same temporal correlation
/// factor the inputs carry (piActivity / (2*piP*(1-piP))).
ActivityResult propagateActivity(const circuit::Netlist& netlist,
                                 double piProbability = 0.5,
                                 double piActivity = 0.2);

/// Output probability of a cell function given input probabilities
/// (spatial independence).
double outputProbability(circuit::CellFunction function,
                         const std::vector<double>& inputProbs);

}  // namespace nano::power
