// State-dependent leakage analysis (paper Section 3.3: "the state
// dependence of leakage can be leveraged"): a gate's leakage depends on
// which inputs are low — series stacks with more than one off device leak
// far less (the [38] stack effect). This module weights each input state
// by its probability (from activity propagation) and the stack factor
// (from power/standby) to produce a sharper leakage estimate than the
// state-averaged cell number, plus the standby-state optimization: the
// minimum-leakage input vector a sleep controller would apply.
#pragma once

#include "circuit/netlist.h"
#include "power/activity.h"

namespace nano::power {

/// Leakage of one cell in a specific input state, W. `inputsHigh` is a
/// bitmask over the cell's fanins (bit k set = input k high). Uses the
/// device-level stack solve for series networks.
double cellStateLeakage(const circuit::Cell& cell, const tech::TechNode& node,
                        unsigned inputsHigh);

/// Probability-weighted leakage of the whole netlist, W: for each gate,
/// sum over input states of P(state) * leakage(state), with input
/// probabilities from `activity` (spatial independence).
double stateAwareLeakage(const circuit::Netlist& netlist,
                         const tech::TechNode& node,
                         const ActivityResult& activity);

/// Leakage if every primary input is parked at its per-gate best state
/// greedily (input-vector control for standby, the cheap alternative to
/// MTCMOS): lower bound obtained by giving each gate its minimum-leakage
/// state independently. Returns (bestCase, worstCase), W.
struct LeakageBounds {
  double minimum = 0.0;
  double maximum = 0.0;
};
LeakageBounds leakageStateBounds(const circuit::Netlist& netlist,
                                 const tech::TechNode& node);

}  // namespace nano::power
