// Standby-power reduction techniques from paper Section 3.2.1:
//
//  * MTCMOS — a high-Vth sleep transistor gates the virtual ground of a
//    low-Vth block: near-zero standby leakage, at the price of an active
//    delay penalty (virtual-ground bounce), sleep-device area, and no
//    active-mode leakage reduction.
//  * Transistor stacks [38] — two series off-devices leak far less than
//    one because the internal node self-biases (source degeneration +
//    DIBL relief + body effect); computed self-consistently from the
//    device model.
//  * Reverse body bias [36] — raises Vth in standby; its lever shrinks
//    with scaling (the paper's scalability objection).
#pragma once

#include "device/mosfet.h"
#include "tech/itrs.h"
#include "util/numeric.h"

namespace nano::power {

/// Sizing result for an MTCMOS sleep transistor serving a logic block.
struct SleepTransistorDesign {
  double width = 0.0;            ///< m, total sleep-device width
  double virtualRailDrop = 0.0;  ///< V, worst bounce at peak block current
  double delayPenalty = 0.0;     ///< fractional gate-delay increase
  double standbyLeakage = 0.0;   ///< A, through the high-Vth sleep device
  double activeLeakage = 0.0;    ///< A, the (ungated) low-Vth block leakage
  double areaOverhead = 0.0;     ///< sleep-device area / block device area
  [[nodiscard]] double standbyReduction() const {
    return 1.0 - standbyLeakage / activeLeakage;
  }
};

/// MTCMOS block description.
struct MtcmosBlock {
  double totalDeviceWidth = 1e-3;  ///< m, sum of block NMOS widths
  double peakCurrent = 0.1;        ///< A, simultaneous switching current
  double vthLow = 0.1;             ///< block (fast) threshold, V
  double vthSleepOffset = 0.2;     ///< sleep device Vth above the block's, V
};

/// Size the sleep transistor for at most `maxDelayPenalty` (fractional)
/// active slowdown. The virtual-ground drop steals gate overdrive, so the
/// penalty ~ drop / (Vdd - VthLow).
SleepTransistorDesign sizeSleepTransistor(const tech::TechNode& node,
                                          const MtcmosBlock& block,
                                          double maxDelayPenalty = 0.05);

/// Leakage of a stack of `depth` identical off NMOS devices relative to a
/// single off device, solved self-consistently from the compact model
/// (Eq. 4 generalized to Ioff(vgs, vds) with DIBL). Returns a factor in
/// (0, 1]; depth 1 returns 1.
double stackLeakageFactor(const device::Mosfet& device, int depth);

/// Intermediate-node voltage of a 2-stack of off devices (exposed for
/// tests; the self-bias that creates the stack effect), V.
double stackIntermediateVoltage(const device::Mosfet& device);

/// Intra-cell mixed-Vth stack (paper Section 3.3: "the use of different
/// threshold transistors in a stacked arrangement can give fairly
/// substantial leakage savings with minimal delay penalties"): a 2-stack
/// pull-down with a high-Vth bottom device and a low-Vth top device,
/// compared against the all-low-Vth stack.
struct MixedStackReport {
  double leakageVsAllLow = 0.0;  ///< off-state leakage factor (< 1)
  double delayVsAllLow = 0.0;    ///< pull-down delay factor (>= 1)
  double intermediateVoltage = 0.0;  ///< self-bias node, V
};
MixedStackReport mixedVthStack(const tech::TechNode& node, double vthLow,
                               double vthHigh);

/// Intermediate node of a 2-stack with distinct top/bottom devices, V.
double stackIntermediateVoltage(const device::Mosfet& top,
                                const device::Mosfet& bottom);

/// Structured outcome of a stack solve (kernel "power/stack_vx").
struct StackSolveResult {
  double vx = 0.0;           ///< intermediate-node voltage, V
  util::Diagnostics diag;
};

/// Checked 2-stack intermediate-node solve: never throws on numerical
/// failure. Recovery ladder: bracket solve on [1e-6, Vdd/2], one
/// re-expansion retry spanning nearly the full rail, then report with the
/// best iterate.
StackSolveResult stackIntermediateVoltageChecked(const device::Mosfet& top,
                                                 const device::Mosfet& bottom);

/// Standby-leakage reduction from `reverseBias` volts of reverse body bias
/// (paper [36]): factor = 10^(bodyEffect * Vbs / swing). Shrinks with
/// scaling via the node's bodyEffect.
double bodyBiasLeakageReduction(const tech::TechNode& node,
                                double reverseBias);

/// Off-current of a device at explicit gate/drain bias: Eq. (4) with the
/// gate term, Ioff * 10^(vgs/S), and DIBL at `vds`. Building block of the
/// stack solve; also useful for state-dependent leakage analysis. A/m.
double subthresholdCurrent(const device::Mosfet& device, double vgs,
                           double vds);

}  // namespace nano::power
