#include "power/standby.h"

#include <cmath>
#include <stdexcept>

#include "obs/obs.h"
#include "util/numeric.h"
#include "util/units.h"

namespace nano::power {

using namespace nano::units;

double subthresholdCurrent(const device::Mosfet& device, double vgs,
                           double vds) {
  const double swing = device.subthresholdSwing();
  const double vth = device.vthEffective(vds);
  // Ioff at vgs = 0 is Eq. (4); the gate bias moves it one decade per
  // swing. The (1 - exp(-vds/vt)) drain-saturation factor matters when
  // the stack squeezes vds down to a few thermal voltages.
  const double vt = thermalVoltage(device.params().temperature);
  const double drainFactor = 1.0 - std::exp(-std::max(vds, 0.0) / vt);
  return device.params().ioffPrefactor *
         std::pow(10.0, (vgs - vth) / swing) * drainFactor;
}

StackSolveResult stackIntermediateVoltageChecked(const device::Mosfet& top,
                                                 const device::Mosfet& bottom) {
  const double vdd = top.params().vddReference;
  // Top device: gate 0, source at Vx => vgs = -Vx, vds = Vdd - Vx.
  // Bottom device: gate 0, source gnd => vgs = 0, vds = Vx.
  auto mismatch = [&](double vx) {
    return subthresholdCurrent(top, -vx, vdd - vx) -
           subthresholdCurrent(bottom, 0.0, vx);
  };
  // At vx~0 the top conducts more (full vds, vgs=0 vs bottom vds=0);
  // as vx grows the top's source degeneration chokes it. Bracketed root.
  util::SolveResult r =
      util::tryBracketAndSolve(mismatch, 1e-6, 0.5 * vdd, 30, 1e-12);
  if (r.status == util::SolverStatus::BracketFailure) {
    // Strongly mismatched Vth pairs can push the self-bias point above
    // Vdd/2; retry across (almost) the whole rail before reporting.
    r = util::tryBracketAndSolve(mismatch, 1e-9, 0.999 * vdd, 40, 1e-12);
    if (r.status != util::SolverStatus::BracketFailure) {
      NANO_OBS_COUNT("power/stack_vx_rebracketed", 1);
    }
  }
  StackSolveResult out;
  out.vx = r.x;
  out.diag = r.diagnostics();
  out.diag.kernel = "power/stack_vx";
  if (!r.converged) NANO_OBS_COUNT("power/stack_vx_nonconverged", 1);
  return out;
}

double stackIntermediateVoltage(const device::Mosfet& top,
                                const device::Mosfet& bottom) {
  const StackSolveResult r = stackIntermediateVoltageChecked(top, bottom);
  if (r.diag.status == util::SolverStatus::BracketFailure ||
      r.diag.status == util::SolverStatus::NanDetected) {
    throw std::invalid_argument("stackIntermediateVoltage: " +
                                r.diag.describe());
  }
  return r.vx;
}

double stackIntermediateVoltage(const device::Mosfet& device) {
  return stackIntermediateVoltage(device, device);
}

MixedStackReport mixedVthStack(const tech::TechNode& node, double vthLow,
                               double vthHigh) {
  MixedStackReport rep;
  const device::Mosfet low = device::Mosfet::fromNode(node, vthLow);
  const device::Mosfet high = device::Mosfet::fromNode(node, vthHigh);
  const double vdd = node.vdd;

  // Off-state leakage: all-low stack vs low-top/high-bottom stack.
  const double vxAllLow = stackIntermediateVoltage(low, low);
  const double allLow = subthresholdCurrent(low, 0.0, vxAllLow);
  rep.intermediateVoltage = stackIntermediateVoltage(low, high);
  const double mixed = subthresholdCurrent(high, 0.0, rep.intermediateVoltage);
  rep.leakageVsAllLow = mixed / allLow;

  // Pull-down delay: series switching resistance of the stack. Both
  // devices see full gate drive when on; R ~ Vdd/Ion per device.
  const double rLow = vdd / low.ionSelfConsistent(vdd);
  const double rHigh = vdd / high.ionSelfConsistent(vdd);
  rep.delayVsAllLow = (rLow + rHigh) / (2.0 * rLow);
  return rep;
}

double stackLeakageFactor(const device::Mosfet& device, int depth) {
  if (depth < 1) throw std::invalid_argument("stackLeakageFactor: depth < 1");
  const double vdd = device.params().vddReference;
  const double single = subthresholdCurrent(device, 0.0, vdd);
  if (depth == 1) return 1.0;
  if (depth == 2) {
    const double vx = stackIntermediateVoltage(device);
    return subthresholdCurrent(device, 0.0, vx) / single;
  }
  // Deeper stacks: solve the chain numerically. Current through every
  // device equal; parameterize by the bottom device's vds and march up.
  auto currentMismatch = [&](double vBottom) {
    const double i = subthresholdCurrent(device, 0.0, vBottom);
    double vLow = vBottom;  // source potential of the device above
    for (int k = 1; k < depth; ++k) {
      // Device k: source at vLow, gate 0. Find its drain potential vHigh
      // such that it carries i: monotone in vHigh.
      auto f = [&](double vHigh) {
        return subthresholdCurrent(device, -vLow, vHigh - vLow) - i;
      };
      const double top = vdd + 0.5;
      if (f(top) < 0.0) {
        // Even at the rail this device cannot carry i: i too large.
        return 1.0;
      }
      const util::SolveResult inner =
          util::tryBracketAndSolve(f, vLow + 1e-9, top, 0, 1e-12);
      if (inner.status == util::SolverStatus::BracketFailure ||
          inner.status == util::SolverStatus::NanDetected) {
        // Same meaning as the rail check above: this rung cannot carry i.
        return 1.0;
      }
      vLow = inner.x;
    }
    return vLow - vdd;  // want the top drain to land exactly on Vdd
  };
  const util::SolveResult outer =
      util::tryBracketAndSolve(currentMismatch, 1e-7, 0.5 * vdd, 0, 1e-12);
  if (outer.status == util::SolverStatus::BracketFailure ||
      outer.status == util::SolverStatus::NanDetected) {
    throw std::invalid_argument("stackLeakageFactor: " +
                                outer.diagnostics().describe());
  }
  if (!outer.converged) NANO_OBS_COUNT("power/stack_chain_nonconverged", 1);
  return subthresholdCurrent(device, 0.0, outer.x) / single;
}

SleepTransistorDesign sizeSleepTransistor(const tech::TechNode& node,
                                          const MtcmosBlock& block,
                                          double maxDelayPenalty) {
  if (maxDelayPenalty <= 0 || maxDelayPenalty >= 1) {
    throw std::invalid_argument("sizeSleepTransistor: penalty in (0,1)");
  }
  SleepTransistorDesign d;
  const double vdd = node.vdd;
  // Delay penalty ~ drop / (Vdd - VthLow): the bounce steals overdrive.
  const double maxDrop = maxDelayPenalty * (vdd - block.vthLow);
  d.virtualRailDrop = maxDrop;

  // The sleep device sits in deep triode with full gate drive; its
  // per-width conductance is the compact model's linear-region slope.
  const double vthSleep = block.vthLow + block.vthSleepOffset;
  const device::Mosfet sleepDev = device::Mosfet::fromNode(node, vthSleep);
  const double gPerWidth = sleepDev.linearConductance(vdd);
  // Need drop = I_peak / (g_per_width * W) <= maxDrop.
  d.width = block.peakCurrent / (gPerWidth * maxDrop);
  d.delayPenalty = maxDelayPenalty;

  d.standbyLeakage = sleepDev.ioff(vdd) * d.width;
  const device::Mosfet blockDev = device::Mosfet::fromNode(node, block.vthLow);
  d.activeLeakage = blockDev.ioff(vdd) * block.totalDeviceWidth;
  d.areaOverhead = d.width / block.totalDeviceWidth;
  return d;
}

double bodyBiasLeakageReduction(const tech::TechNode& node,
                                double reverseBias) {
  if (reverseBias < 0) {
    throw std::invalid_argument("bodyBiasLeakageReduction: negative bias");
  }
  const double dVth = node.bodyEffect * reverseBias;
  return std::pow(10.0, dVth / node.subthresholdSwing);
}

}  // namespace nano::power
