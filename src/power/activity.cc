#include "power/activity.h"

#include <stdexcept>

namespace nano::power {

using circuit::CellFunction;
using circuit::Netlist;

double outputProbability(CellFunction function,
                         const std::vector<double>& p) {
  auto need = [&](std::size_t n) {
    if (p.size() != n) {
      throw std::invalid_argument("outputProbability: arity mismatch");
    }
  };
  switch (function) {
    case CellFunction::Inv:
      need(1);
      return 1.0 - p[0];
    case CellFunction::Buf:
    case CellFunction::LevelConverter:
      need(1);
      return p[0];
    case CellFunction::Nand2:
      need(2);
      return 1.0 - p[0] * p[1];
    case CellFunction::Nand3:
      need(3);
      return 1.0 - p[0] * p[1] * p[2];
    case CellFunction::Nor2:
      need(2);
      return (1.0 - p[0]) * (1.0 - p[1]);
    case CellFunction::Nor3:
      need(3);
      return (1.0 - p[0]) * (1.0 - p[1]) * (1.0 - p[2]);
    case CellFunction::Xor2:
      need(2);
      return p[0] * (1.0 - p[1]) + (1.0 - p[0]) * p[1];
  }
  throw std::logic_error("outputProbability: bad function");
}

ActivityResult propagateActivity(const Netlist& netlist, double piProbability,
                                 double piActivity) {
  if (piProbability <= 0.0 || piProbability >= 1.0) {
    throw std::invalid_argument("propagateActivity: piProbability in (0,1)");
  }
  const int n = netlist.nodeCount();
  ActivityResult r;
  r.probability.assign(static_cast<std::size_t>(n), 0.0);
  r.activity.assign(static_cast<std::size_t>(n), 0.0);

  // Temporal correlation: how much less the inputs toggle than a random
  // sequence with the same probability would; applied to internal nodes too.
  const double temporalFactor =
      piActivity / (2.0 * piProbability * (1.0 - piProbability));

  std::vector<double> inProbs;
  for (int i = 0; i < n; ++i) {
    const auto& node = netlist.node(i);
    if (node.kind == Netlist::NodeKind::PrimaryInput) {
      r.probability[static_cast<std::size_t>(i)] = piProbability;
      r.activity[static_cast<std::size_t>(i)] = piActivity;
      continue;
    }
    inProbs.clear();
    for (int f : node.fanins) {
      inProbs.push_back(r.probability[static_cast<std::size_t>(f)]);
    }
    const double p = outputProbability(node.cell.function, inProbs);
    r.probability[static_cast<std::size_t>(i)] = p;
    r.activity[static_cast<std::size_t>(i)] =
        2.0 * p * (1.0 - p) * temporalFactor;
  }
  return r;
}

}  // namespace nano::power
