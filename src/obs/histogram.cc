#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace nano::obs {

namespace {

/// Round-robin shard assignment: spreads recording threads evenly without
/// hashing thread ids (which cluster on some platforms).
unsigned threadShardSlot() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void atomicMin(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value < cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void atomicMax(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

Log2Histogram::~Log2Histogram() {
  for (auto& slot : shards_) delete slot.load(std::memory_order_relaxed);
}

int Log2Histogram::bucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // zero, negatives, and NaN
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp
  if (exp > kMaxExponent) return kBucketCount - 1;  // overflow bucket
  if (exp < kMinExponent) exp = kMinExponent;       // clamp into smallest octave
  int sub = static_cast<int>((mantissa - 0.5) * (2 * kSubBuckets));
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return 1 + (exp - kMinExponent) * kSubBuckets + sub;
}

double Log2Histogram::bucketLowerBound(int index) {
  if (index <= 0) return 0.0;
  if (index >= kBucketCount - 1) return std::ldexp(1.0, kMaxExponent);
  const int exp = kMinExponent + (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, exp - 1);
}

double Log2Histogram::bucketUpperBound(int index) {
  if (index < 0) return 0.0;
  if (index >= kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return bucketLowerBound(index + 1);
}

Log2Histogram::Shard& Log2Histogram::shard() {
  auto& slot = shards_[threadShardSlot() % kShards];
  Shard* existing = slot.load(std::memory_order_acquire);
  if (existing != nullptr) return *existing;
  Shard* fresh = new Shard();
  if (slot.compare_exchange_strong(existing, fresh,
                                   std::memory_order_acq_rel)) {
    return *fresh;
  }
  delete fresh;  // another thread won the install race
  return *existing;
}

void Log2Histogram::record(double value) {
  Shard& s = shard();
  s.buckets[static_cast<std::size_t>(bucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.total.fetch_add(value, std::memory_order_relaxed);
  atomicMin(s.min, value);
  atomicMax(s.max, value);
}

Log2Histogram::Snapshot Log2Histogram::snapshot() const {
  Snapshot out;
  out.buckets.assign(kBucketCount, 0);
  double minSeen = std::numeric_limits<double>::infinity();
  double maxSeen = -std::numeric_limits<double>::infinity();
  for (const auto& slot : shards_) {
    const Shard* s = slot.load(std::memory_order_acquire);
    if (s == nullptr) continue;
    for (int i = 0; i < kBucketCount; ++i) {
      out.buckets[static_cast<std::size_t>(i)] +=
          s->buckets[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
    }
    out.count += s->count.load(std::memory_order_relaxed);
    out.total += s->total.load(std::memory_order_relaxed);
    minSeen = std::min(minSeen, s->min.load(std::memory_order_relaxed));
    maxSeen = std::max(maxSeen, s->max.load(std::memory_order_relaxed));
  }
  if (out.count > 0) {
    out.min = minSeen;
    out.max = maxSeen;
  }
  return out;
}

double Log2Histogram::Snapshot::percentile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return bucketLowerBound(static_cast<int>(i));
  }
  return bucketLowerBound(kBucketCount - 1);
}

void Log2Histogram::Snapshot::merge(const Snapshot& other) {
  if (buckets.empty()) buckets.assign(kBucketCount, 0);
  for (std::size_t i = 0; i < buckets.size() && i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  if (other.count > 0) {
    min = count > 0 ? std::min(min, other.min) : other.min;
    max = count > 0 ? std::max(max, other.max) : other.max;
  }
  count += other.count;
  total += other.total;
}

}  // namespace nano::obs
