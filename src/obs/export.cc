#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/table.h"

namespace nano::obs {

namespace {

/// Shortest decimal form that round-trips a double (see util::CsvWriter).
std::string fmtRoundTrip(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void writeTimerObject(std::ostream& os, const TimerStat::Snapshot& s) {
  os << "{\"count\":" << s.count << ",\"total_s\":" << fmtRoundTrip(s.total)
     << ",\"min_s\":" << fmtRoundTrip(s.min)
     << ",\"max_s\":" << fmtRoundTrip(s.max)
     << ",\"mean_s\":" << fmtRoundTrip(s.mean)
     << ",\"p50_s\":" << fmtRoundTrip(s.p50)
     << ",\"p90_s\":" << fmtRoundTrip(s.p90)
     << ",\"p99_s\":" << fmtRoundTrip(s.p99)
     << ",\"p999_s\":" << fmtRoundTrip(s.p999) << "}";
}

void writeTimerMap(std::ostream& os,
                   const std::vector<MetricsRegistry::TimerRow>& rows) {
  os << "{";
  bool first = true;
  for (const auto& row : rows) {
    if (!first) os << ",";
    first = false;
    os << "\"" << jsonEscape(row.name) << "\":";
    writeTimerObject(os, row.stat);
  }
  os << "}";
}

/// Seconds with an SI prefix ("3.2 ms"); "-" for an empty stat.
std::string fmtSeconds(double s, std::int64_t count) {
  if (count == 0) return "-";
  return util::fmtEng(s, "s", 3);
}

}  // namespace

void exportJson(std::ostream& os) {
  exportJson(os, MetricsRegistry::instance());
}

void exportJson(std::ostream& os, const MetricsRegistry& registry) {
  os << "{\"enabled\":" << (enabled() ? "true" : "false");
  os << ",\"spans\":";
  writeTimerMap(os, registry.spans());
  os << ",\"timers\":";
  writeTimerMap(os, registry.timers());
  os << ",\"counters\":{";
  bool first = true;
  for (const auto& row : registry.counters()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << jsonEscape(row.name) << "\":" << row.value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& row : registry.gauges()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << jsonEscape(row.name) << "\":" << fmtRoundTrip(row.value);
  }
  os << "}}\n";
}

void exportCsv(std::ostream& os) { exportCsv(os, MetricsRegistry::instance()); }

void exportCsv(std::ostream& os, const MetricsRegistry& registry) {
  os << "kind,name,count,total_s,min_s,max_s,mean_s,p50_s,p90_s,p99_s,"
        "p999_s,value\n";
  auto timerRow = [&os](const char* kind,
                        const MetricsRegistry::TimerRow& row) {
    const auto& s = row.stat;
    os << kind << ',' << row.name << ',' << s.count << ','
       << fmtRoundTrip(s.total) << ',' << fmtRoundTrip(s.min) << ','
       << fmtRoundTrip(s.max) << ',' << fmtRoundTrip(s.mean) << ','
       << fmtRoundTrip(s.p50) << ',' << fmtRoundTrip(s.p90) << ','
       << fmtRoundTrip(s.p99) << ',' << fmtRoundTrip(s.p999) << ",\n";
  };
  for (const auto& row : registry.spans()) timerRow("span", row);
  for (const auto& row : registry.timers()) timerRow("timer", row);
  for (const auto& row : registry.counters()) {
    os << "counter," << row.name << ",,,,,,,,,," << row.value << '\n';
  }
  for (const auto& row : registry.gauges()) {
    os << "gauge," << row.name << ",,,,,,,,,," << fmtRoundTrip(row.value)
       << '\n';
  }
}

void printRunReport(std::ostream& os) {
  printRunReport(os, MetricsRegistry::instance());
}

void printRunReport(std::ostream& os, const MetricsRegistry& registry) {
  const auto spans = registry.spans();
  const auto timers = registry.timers();
  const auto counters = registry.counters();
  const auto gauges = registry.gauges();

  os << "== nanodesign run report ==\n";
  if (spans.empty() && timers.empty() && counters.empty() && gauges.empty()) {
    os << "(no metrics recorded";
    if (!enabled()) os << "; enable with obs::setEnabled(true) or NANO_OBS=1";
    os << ")\n";
    return;
  }

  if (!spans.empty()) {
    os << "\nPhase breakdown (wall clock, nested):\n";
    util::TextTable t({"phase", "calls", "total", "mean", "p50", "p99"});
    // Depth-first tree order: compare paths component-wise so a child
    // always follows its parent even when a sibling shares the prefix.
    std::vector<std::pair<std::vector<std::string>,
                          const MetricsRegistry::TimerRow*>> ordered;
    ordered.reserve(spans.size());
    for (const auto& row : spans) ordered.emplace_back(splitSpanPath(row.name), &row);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [parts, rowPtr] : ordered) {
      const auto& row = *rowPtr;
      std::string label(2 * (parts.size() - 1), ' ');
      label += parts.back();
      const auto& s = row.stat;
      t.addRow({label, std::to_string(s.count), fmtSeconds(s.total, s.count),
                fmtSeconds(s.mean, s.count), fmtSeconds(s.p50, s.count),
                fmtSeconds(s.p99, s.count)});
    }
    t.print(os);
  }

  if (!timers.empty()) {
    os << "\nTimers:\n";
    util::TextTable t({"timer", "calls", "total", "mean", "min", "max"});
    for (const auto& row : timers) {
      const auto& s = row.stat;
      t.addRow({row.name, std::to_string(s.count), fmtSeconds(s.total, s.count),
                fmtSeconds(s.mean, s.count), fmtSeconds(s.min, s.count),
                fmtSeconds(s.max, s.count)});
    }
    t.print(os);
  }

  if (!counters.empty()) {
    os << "\nCounters:\n";
    util::TextTable t({"counter", "value"});
    for (const auto& row : counters) {
      t.addRow({row.name, std::to_string(row.value)});
    }
    t.print(os);
  }

  if (!gauges.empty()) {
    os << "\nGauges:\n";
    util::TextTable t({"gauge", "value"});
    for (const auto& row : gauges) {
      t.addRow({row.name, util::fmtSci(row.value, 6)});
    }
    t.print(os);
  }
}

}  // namespace nano::obs
