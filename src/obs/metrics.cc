#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace nano::obs {

namespace {

bool envEnabled() {
  const char* v = std::getenv("NANO_OBS");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "on") == 0;
}

std::atomic<bool>& enabledFlag() {
  static std::atomic<bool> flag{envEnabled()};
  return flag;
}

}  // namespace

bool enabled() { return enabledFlag().load(std::memory_order_relaxed); }

void setEnabled(bool on) { enabledFlag().store(on, std::memory_order_relaxed); }

TimerStat::Snapshot TimerStat::snapshot() const {
  const Log2Histogram::Snapshot h = histogram_.snapshot();
  Snapshot s;
  s.count = h.count;
  s.total = h.total;
  s.min = h.min;
  s.max = h.max;
  s.mean = h.mean();
  if (h.count > 0) {
    s.p50 = h.percentile(0.50);
    s.p90 = h.percentile(0.90);
    s.p99 = h.percentile(0.99);
    s.p999 = h.percentile(0.999);
  }
  return s;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

TimerStat& MetricsRegistry::timer(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

TimerStat& MetricsRegistry::spanTimer(std::string_view path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = spans_.find(path);
  if (it == spans_.end()) {
    it = spans_.try_emplace(std::string(path)).first;
  }
  return it->second;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  spans_.clear();
}

std::vector<MetricsRegistry::CounterRow> MetricsRegistry::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterRow> rows;
  rows.reserve(counters_.size());
  for (const auto& [name, c] : counters_) rows.push_back({name, c.value()});
  return rows;
}

std::vector<MetricsRegistry::GaugeRow> MetricsRegistry::gauges() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GaugeRow> rows;
  rows.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) rows.push_back({name, g.value()});
  return rows;
}

std::vector<MetricsRegistry::TimerRow> MetricsRegistry::timers() const {
  // Lock order is registry -> stat; record() only ever takes the stat
  // mutex, so snapshotting under the registry lock cannot deadlock.
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TimerRow> rows;
  rows.reserve(timers_.size());
  for (const auto& [name, t] : timers_) rows.push_back({name, t.snapshot()});
  return rows;
}

std::vector<MetricsRegistry::TimerRow> MetricsRegistry::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TimerRow> rows;
  rows.reserve(spans_.size());
  for (const auto& [name, t] : spans_) rows.push_back({name, t.snapshot()});
  return rows;
}

}  // namespace nano::obs
