// Exporters for the MetricsRegistry: machine-readable JSON and CSV dumps
// plus a human-readable run report (ASCII tables in the style of
// core/report.h) with the hierarchical span breakdown, counters, gauges,
// and timer statistics of everything instrumented during the run.
#pragma once

#include <ostream>

namespace nano::obs {

class MetricsRegistry;

/// One JSON object: {"enabled":…, "spans":{…}, "timers":{…},
/// "counters":{…}, "gauges":{…}}. Doubles are emitted with round-trip
/// (%.17g) precision so a reader recovers the exact values.
void exportJson(std::ostream& os);
void exportJson(std::ostream& os, const MetricsRegistry& registry);

/// Flat CSV: kind,name,count,total_s,min_s,max_s,mean_s,p50_s,p99_s,value.
/// Counter/gauge rows fill `value` and leave the timing columns empty.
void exportCsv(std::ostream& os);
void exportCsv(std::ostream& os, const MetricsRegistry& registry);

/// Human-readable run report: span tree (indented by nesting), timers,
/// counters, gauges. Prints a hint instead when observability is disabled
/// and nothing was recorded.
void printRunReport(std::ostream& os);
void printRunReport(std::ostream& os, const MetricsRegistry& registry);

}  // namespace nano::obs
