#include "obs/journal.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <ostream>

#include "obs/metrics.h"

namespace nano::obs {

namespace {

std::atomic<bool>& tracingFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}

std::chrono::steady_clock::time_point traceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

constexpr std::size_t kDefaultCapacity = 1 << 16;  // 64k events/thread, ~3 MiB

std::atomic<std::size_t>& capacityFlag() {
  static std::atomic<std::size_t> capacity{kDefaultCapacity};
  return capacity;
}

/// One thread's bounded event log. `events` is sized once (at registration
/// or under journalReset's quiescence guarantee) and slots are written
/// exactly once per reset cycle before the release store of `size`
/// publishes them, so concurrent snapshots read only completed records.
struct Buffer {
  explicit Buffer(std::size_t capacity, std::uint32_t tidIn)
      : events(capacity), tid(tidIn) {}

  std::vector<TraceEvent> events;
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint32_t tid = 0;
  Buffer* next = nullptr;  ///< intrusive registry list, set once
};

/// Registry of every buffer ever created. Buffers are never freed — a
/// thread may exit while its events still await draining — so the list
/// only grows, by one node per recording thread per process lifetime.
std::atomic<Buffer*>& bufferListHead() {
  static std::atomic<Buffer*> head{nullptr};
  return head;
}

Buffer* registerBuffer() {
  static std::atomic<std::uint32_t> nextTid{1};
  auto* buffer = new Buffer(capacityFlag().load(std::memory_order_relaxed),
                            nextTid.fetch_add(1, std::memory_order_relaxed));
  Buffer* head = bufferListHead().load(std::memory_order_acquire);
  do {
    buffer->next = head;
  } while (!bufferListHead().compare_exchange_weak(
      head, buffer, std::memory_order_acq_rel));
  return buffer;
}

Buffer& threadBuffer() {
  thread_local Buffer* buffer = registerBuffer();
  return *buffer;
}

void append(const TraceEvent& event) {
  Buffer& buffer = threadBuffer();
  const std::size_t at = buffer.size.load(std::memory_order_relaxed);
  if (at >= buffer.events.size()) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent stamped = event;
  stamped.tid = buffer.tid;
  buffer.events[at] = stamped;
  buffer.size.store(at + 1, std::memory_order_release);
}

thread_local TraceContext tlsContext;

}  // namespace

bool tracingEnabled() {
  return tracingFlag().load(std::memory_order_relaxed);
}

void setTracingEnabled(bool on) {
  if (on) traceEpoch();  // pin the epoch before the first event
  tracingFlag().store(on, std::memory_order_relaxed);
}

std::int64_t traceNowNs() {
  // +1 ms so 0 stays free as the "not captured" sentinel even for a
  // timestamp taken in the same tick as the epoch.
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - traceEpoch())
             .count() +
         1'000'000;
}

std::int64_t timingNowNs() {
  if (!enabled() && !tracingEnabled()) return 0;
  return traceNowNs();
}

void traceBegin(const char* cat, const char* name, const TraceContext& ctx) {
  if (!tracingEnabled()) return;
  append({name, cat, ctx.id, traceNowNs(), 0, 0, 'B'});
}

void traceEnd(const char* cat, const char* name, const TraceContext& ctx) {
  if (!tracingEnabled()) return;
  append({name, cat, ctx.id, traceNowNs(), 0, 0, 'E'});
}

void traceInstant(const char* cat, const char* name, const TraceContext& ctx) {
  if (!tracingEnabled()) return;
  append({name, cat, ctx.id, traceNowNs(), 0, 0, 'i'});
}

void traceComplete(const char* cat, const char* name, const TraceContext& ctx,
                   std::int64_t tsNs, std::int64_t durNs) {
  if (!tracingEnabled()) return;
  append({name, cat, ctx.id, tsNs, durNs, 0, 'X'});
}

void traceAsyncSpan(const char* cat, const char* name, const TraceContext& ctx,
                    std::int64_t beginNs, std::int64_t endNs) {
  if (!tracingEnabled()) return;
  append({name, cat, ctx.id, beginNs, 0, 0, 'b'});
  append({name, cat, ctx.id, endNs, 0, 0, 'e'});
}

const TraceContext& currentTraceContext() { return tlsContext; }

TraceContextScope::TraceContextScope(const TraceContext& ctx)
    : previous_(tlsContext) {
  tlsContext = ctx;
}

TraceContextScope::~TraceContextScope() { tlsContext = previous_; }

std::vector<TraceEvent> journalSnapshot() {
  std::vector<TraceEvent> out;
  for (Buffer* b = bufferListHead().load(std::memory_order_acquire);
       b != nullptr; b = b->next) {
    const std::size_t size = b->size.load(std::memory_order_acquire);
    out.insert(out.end(), b->events.begin(),
               b->events.begin() + static_cast<std::ptrdiff_t>(size));
  }
  return out;
}

std::uint64_t journalDropped() {
  std::uint64_t total = 0;
  for (Buffer* b = bufferListHead().load(std::memory_order_acquire);
       b != nullptr; b = b->next) {
    total += b->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void journalReset() {
  const std::size_t capacity = capacityFlag().load(std::memory_order_relaxed);
  for (Buffer* b = bufferListHead().load(std::memory_order_acquire);
       b != nullptr; b = b->next) {
    if (b->events.size() != capacity) b->events.assign(capacity, TraceEvent{});
    b->dropped.store(0, std::memory_order_relaxed);
    b->size.store(0, std::memory_order_release);
  }
}

void setJournalCapacity(std::size_t events) {
  capacityFlag().store(events, std::memory_order_relaxed);
}

std::size_t journalCapacity() {
  return capacityFlag().load(std::memory_order_relaxed);
}

void exportChromeTrace(std::ostream& os,
                       const std::vector<TraceEvent>& events) {
  os << "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << (e.name != nullptr ? e.name : "")
       << "\",\"cat\":\"" << (e.cat != nullptr ? e.cat : "")
       << "\",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.tid;
    // Chrome wants microseconds; keep ns precision with three decimals.
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(e.tsNs / 1000),
                  static_cast<long long>(e.tsNs % 1000));
    os << ",\"ts\":" << buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                    static_cast<long long>(e.durNs / 1000),
                    static_cast<long long>(e.durNs % 1000));
      os << ",\"dur\":" << buf;
    }
    if (e.phase == 'b' || e.phase == 'e') {
      std::snprintf(buf, sizeof(buf), "0x%llx",
                    static_cast<unsigned long long>(e.id));
      os << ",\"id\":\"" << buf << "\"";
    }
    if (e.id != 0) {
      os << ",\"args\":{\"trace\":" << e.id << "}";
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace nano::obs
