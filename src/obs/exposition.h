// Exposition surface for the MetricsRegistry: Prometheus text format for
// scrapers and dashboards, and a JSON stats snapshot with optional
// delta-since-last-snapshot counters for live introspection (the `stats`
// svc request kind and `nanod --stats`).
#pragma once

#include <ostream>
#include <string>
#include <string_view>

namespace nano::obs {

class MetricsRegistry;

/// Registry name -> Prometheus metric name: prefixed with "nano_", every
/// character outside [a-zA-Z0-9_] replaced by '_' (so "svc/phase/eval"
/// becomes "nano_svc_phase_eval").
[[nodiscard]] std::string prometheusName(std::string_view name);

/// Prometheus text exposition format 0.0.4. Counters gain the "_total"
/// suffix; timers and spans are rendered as summaries with
/// quantile 0.5/0.9/0.99/0.999 plus _sum and _count series.
void exportPrometheus(std::ostream& os);
void exportPrometheus(std::ostream& os, const MetricsRegistry& registry);

/// One-line JSON stats snapshot:
/// {"delta":…,"counters":{…},"gauges":{…},"timers":{…},"spans":{…}}.
/// With delta=true, counters report the increase since the previous
/// baseline and the baseline advances to the current values.
void exportStatsJson(std::ostream& os, bool delta);
void exportStatsJson(std::ostream& os, const MetricsRegistry& registry,
                     bool delta);

/// Reset the delta baseline to the registry's current counter values.
void resetStatsBaseline();
void resetStatsBaseline(const MetricsRegistry& registry);

}  // namespace nano::obs
