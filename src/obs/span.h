// Lightweight span/trace API: NANO_OBS_SPAN("sta/analyze") opens an RAII
// span whose wall-clock duration is accumulated under its hierarchical
// path in the MetricsRegistry. Nesting is tracked per thread, so a span
// opened inside another span records under "parent;child" and the run
// report can render a phase breakdown tree.
#pragma once

#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace nano::obs {

/// Separator between nesting levels in a span path. Distinct from '/',
/// which spans use freely inside a single level ("sta/analyze").
inline constexpr char kSpanPathSeparator = ';';

class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Full hierarchical path of this span; empty when obs is disabled.
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Path of the innermost open span on this thread ("" at top level).
  static std::string currentPath();

 private:
  bool active_ = false;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

/// Split a span path into its nesting components.
std::vector<std::string> splitSpanPath(std::string_view path);

}  // namespace nano::obs

/// Opens a scoped span named `name` (evaluated once). The span is a no-op
/// while observability is disabled.
#define NANO_OBS_SPAN(name) \
  ::nano::obs::Span NANO_OBS_CONCAT(_nanoObsSpan, __LINE__)(name)
