#include "obs/exposition.h"

#include <cstdio>
#include <map>
#include <mutex>

#include "obs/metrics.h"

namespace nano::obs {

namespace {

std::string fmtRoundTrip(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool validNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

void writeSummary(std::ostream& os, const std::string& base,
                  const TimerStat::Snapshot& s) {
  os << "# TYPE " << base << " summary\n";
  os << base << "{quantile=\"0.5\"} " << fmtRoundTrip(s.p50) << "\n";
  os << base << "{quantile=\"0.9\"} " << fmtRoundTrip(s.p90) << "\n";
  os << base << "{quantile=\"0.99\"} " << fmtRoundTrip(s.p99) << "\n";
  os << base << "{quantile=\"0.999\"} " << fmtRoundTrip(s.p999) << "\n";
  os << base << "_sum " << fmtRoundTrip(s.total) << "\n";
  os << base << "_count " << s.count << "\n";
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Counter values at the last baseline reset, for delta snapshots.
std::mutex baselineMutex;
std::map<std::string, std::int64_t, std::less<>>& baselineCounters() {
  static auto* baseline = new std::map<std::string, std::int64_t, std::less<>>();
  return *baseline;
}

}  // namespace

std::string prometheusName(std::string_view name) {
  std::string out = "nano_";
  out.reserve(out.size() + name.size());
  for (char c : name) out += validNameChar(c) ? c : '_';
  return out;
}

void exportPrometheus(std::ostream& os) {
  exportPrometheus(os, MetricsRegistry::instance());
}

void exportPrometheus(std::ostream& os, const MetricsRegistry& registry) {
  for (const auto& row : registry.counters()) {
    const std::string base = prometheusName(row.name) + "_total";
    os << "# TYPE " << base << " counter\n";
    os << base << " " << row.value << "\n";
  }
  for (const auto& row : registry.gauges()) {
    const std::string base = prometheusName(row.name);
    os << "# TYPE " << base << " gauge\n";
    os << base << " " << fmtRoundTrip(row.value) << "\n";
  }
  for (const auto& row : registry.timers()) {
    writeSummary(os, prometheusName(row.name), row.stat);
  }
  for (const auto& row : registry.spans()) {
    writeSummary(os, prometheusName(row.name), row.stat);
  }
}

void exportStatsJson(std::ostream& os, bool delta) {
  exportStatsJson(os, MetricsRegistry::instance(), delta);
}

void exportStatsJson(std::ostream& os, const MetricsRegistry& registry,
                     bool delta) {
  os << "{\"delta\":" << (delta ? "true" : "false") << ",\"counters\":{";
  {
    const std::lock_guard<std::mutex> lock(baselineMutex);
    auto& baseline = baselineCounters();
    bool first = true;
    for (const auto& row : registry.counters()) {
      if (!first) os << ",";
      first = false;
      std::int64_t value = row.value;
      if (delta) {
        const auto it = baseline.find(row.name);
        if (it != baseline.end()) value -= it->second;
        baseline[row.name] = row.value;  // advance the baseline
      }
      os << "\"" << jsonEscape(row.name) << "\":" << value;
    }
  }
  os << "},\"gauges\":{";
  bool first = true;
  for (const auto& row : registry.gauges()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << jsonEscape(row.name) << "\":" << fmtRoundTrip(row.value);
  }
  auto timerMap = [&os](const std::vector<MetricsRegistry::TimerRow>& rows) {
    bool firstRow = true;
    for (const auto& row : rows) {
      if (!firstRow) os << ",";
      firstRow = false;
      const auto& s = row.stat;
      os << "\"" << jsonEscape(row.name) << "\":{\"count\":" << s.count
         << ",\"total_s\":" << fmtRoundTrip(s.total)
         << ",\"mean_s\":" << fmtRoundTrip(s.mean)
         << ",\"p50_s\":" << fmtRoundTrip(s.p50)
         << ",\"p90_s\":" << fmtRoundTrip(s.p90)
         << ",\"p99_s\":" << fmtRoundTrip(s.p99)
         << ",\"p999_s\":" << fmtRoundTrip(s.p999) << "}";
    }
  };
  os << "},\"timers\":{";
  timerMap(registry.timers());
  os << "},\"spans\":{";
  timerMap(registry.spans());
  os << "}}";
}

void resetStatsBaseline() { resetStatsBaseline(MetricsRegistry::instance()); }

void resetStatsBaseline(const MetricsRegistry& registry) {
  const std::lock_guard<std::mutex> lock(baselineMutex);
  auto& baseline = baselineCounters();
  baseline.clear();
  for (const auto& row : registry.counters()) baseline[row.name] = row.value;
}

}  // namespace nano::obs
