#include "obs/span.h"

namespace nano::obs {

namespace {

std::vector<std::string>& spanStack() {
  thread_local std::vector<std::string> stack;
  return stack;
}

}  // namespace

Span::Span(std::string_view name) {
  if (!enabled()) return;
  active_ = true;
  auto& stack = spanStack();
  if (stack.empty()) {
    path_.assign(name);
  } else {
    path_.reserve(stack.back().size() + 1 + name.size());
    path_ = stack.back();
    path_ += kSpanPathSeparator;
    path_ += name;
  }
  stack.push_back(path_);
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  MetricsRegistry::instance().spanTimer(path_).record(
      std::chrono::duration<double>(elapsed).count());
  auto& stack = spanStack();
  // Pop our own frame. Disabling obs mid-span can leave the stack shallow;
  // guard instead of assuming strict pairing.
  if (!stack.empty() && stack.back() == path_) stack.pop_back();
}

std::string Span::currentPath() {
  const auto& stack = spanStack();
  return stack.empty() ? std::string() : stack.back();
}

std::vector<std::string> splitSpanPath(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t pos = path.find(kSpanPathSeparator, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(path.substr(start));
      break;
    }
    parts.emplace_back(path.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

}  // namespace nano::obs
