// Deterministic fixed-log2-bucket histogram for latency-style samples.
//
// Values are binned into base-2 octaves split into 32 linear sub-buckets
// (~3.1% worst-case relative bucket width). Bucket counts are exact
// integers, so any percentile is a pure function of the recorded sample
// multiset: identical samples give bit-identical p50/p90/p99/p999 no
// matter the insertion order, the thread interleaving, or the
// NANO_EXEC_THREADS setting — unlike a sampling reservoir.
//
// Recording is lock-free: each thread is assigned (round-robin) one of a
// small fixed set of shards and updates it with relaxed atomic adds;
// snapshot() merges the shards by summing bucket counts, which is
// order-independent. Shards are allocated lazily, so a histogram touched
// by one thread pays one shard of memory.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

namespace nano::obs {

class Log2Histogram {
 public:
  Log2Histogram() = default;
  ~Log2Histogram();

  Log2Histogram(const Log2Histogram&) = delete;
  Log2Histogram& operator=(const Log2Histogram&) = delete;

  /// Record one sample. Thread-safe, lock-free, relaxed ordering.
  void record(double value);

  // Bucket layout: index 0 holds zero/negative/NaN samples; the last
  // index collects overflow (>= 2^kMaxExponent). In between, a value
  // v = m * 2^e (frexp form, m in [0.5, 1)) lands in octave e with linear
  // sub-bucket floor((m - 0.5) * 2 * kSubBuckets).
  static constexpr int kSubBuckets = 32;
  static constexpr int kMinExponent = -30;  ///< 2^-31 s ~ 0.47 ns resolution
  static constexpr int kMaxExponent = 14;   ///< covers values up to 16384
  static constexpr int kBucketCount =
      (kMaxExponent - kMinExponent + 1) * kSubBuckets + 2;

  /// Bucket a value falls into; total function (NaN and negatives -> 0).
  static int bucketIndex(double value);
  /// Inclusive lower bound of a bucket — the deterministic representative
  /// value percentiles report. bucket 0 -> 0.0.
  static double bucketLowerBound(int index);
  /// Exclusive upper bound (lower bound of the next bucket).
  static double bucketUpperBound(int index);

  /// Merged, immutable view of the histogram. Mergeable: aggregate shards
  /// or whole histograms by summing counts bucket-wise.
  struct Snapshot {
    std::int64_t count = 0;
    double total = 0.0;  ///< exact per-shard sums; merge order is fixed
    double min = 0.0;
    double max = 0.0;
    std::vector<std::uint64_t> buckets;  ///< dense, kBucketCount entries

    /// Deterministic quantile: the lower bound of the bucket holding the
    /// ceil(q * count)-th smallest sample. 0 when empty.
    [[nodiscard]] double percentile(double q) const;
    [[nodiscard]] double mean() const {
      return count > 0 ? total / static_cast<double>(count) : 0.0;
    }
    /// Accumulate another snapshot into this one (bucket-wise sums).
    void merge(const Snapshot& other);
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  static constexpr int kShards = 8;

  struct Shard {
    std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
    std::atomic<std::int64_t> count{0};
    std::atomic<double> total{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };

  Shard& shard();

  std::array<std::atomic<Shard*>, kShards> shards_{};
};

}  // namespace nano::obs
