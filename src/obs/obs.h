// Umbrella header for the observability layer: metrics registry +
// counters/gauges/timers (obs/metrics.h) backed by deterministic
// log2-bucket histograms (obs/histogram.h), hierarchical spans
// (obs/span.h), request-scoped tracing (obs/journal.h), JSON/CSV/report
// exporters (obs/export.h), and the Prometheus / stats-snapshot
// exposition surface (obs/exposition.h).
//
//   NANO_OBS_SPAN("sta/analyze");            // scoped phase timer
//   NANO_OBS_COUNT("powergrid/cg_iterations", it);
//   NANO_OBS_GAUGE("powergrid/cg_residual", r);
//   nano::obs::printRunReport(std::cout);    // where did the time go?
#pragma once

#include "obs/export.h"
#include "obs/exposition.h"
#include "obs/histogram.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/span.h"
