// Umbrella header for the observability layer: metrics registry +
// counters/gauges/timers (obs/metrics.h), hierarchical spans
// (obs/span.h), and JSON/CSV/report exporters (obs/export.h).
//
//   NANO_OBS_SPAN("sta/analyze");            // scoped phase timer
//   NANO_OBS_COUNT("powergrid/cg_iterations", it);
//   NANO_OBS_GAUGE("powergrid/cg_residual", r);
//   nano::obs::printRunReport(std::cout);    // where did the time go?
#pragma once

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
