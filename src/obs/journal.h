// Request-scoped tracing substrate: an explicit TraceContext propagated
// through the svc pipeline plus per-thread bounded trace-event buffers
// that drain into a Chrome trace-event / Perfetto-compatible JSON file.
//
// Writers append events to a thread-local buffer with a single release
// store per event and never block; readers (journalSnapshot) observe a
// consistent prefix of every buffer with acquire loads, so a live export
// races with nothing. Buffers are bounded: when full, new events are
// dropped (and counted) rather than wrapping, which keeps concurrent
// export race-free. Event name/category strings must be string literals
// (or otherwise immortal) — the journal stores the pointers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace nano::obs {

/// Identity of one request as it flows across threads. Passed explicitly
/// (function parameter / captured struct member), not via ambient state;
/// TraceContextScope exists only to bridge into exec worker threads.
struct TraceContext {
  std::uint64_t id = 0;  ///< 0 = no trace (events still record, id-less)

  [[nodiscard]] bool valid() const { return id != 0; }
};

/// Global tracing switch, independent of obs::enabled(). Off by default;
/// nanod --trace flips it on. One relaxed load per instrumentation site.
bool tracingEnabled();
void setTracingEnabled(bool on);

/// Nanoseconds on the steady clock since the process trace epoch, offset
/// by +1 ms so a legitimate timestamp is never 0 (0 means "not captured").
std::int64_t traceNowNs();

/// traceNowNs() when obs or tracing is enabled, 0 otherwise. Hot paths
/// use this so the disabled configuration pays no clock read.
std::int64_t timingNowNs();

/// One journal record, mapping 1:1 onto a Chrome trace-event.
/// Phases: 'B'/'E' synchronous begin/end (strictly LIFO per thread),
/// 'b'/'e' async begin/end (paired across threads by cat+id+name),
/// 'X' complete event with explicit duration, 'i' instant.
struct TraceEvent {
  const char* name = nullptr;  ///< string literal
  const char* cat = nullptr;   ///< string literal
  std::uint64_t id = 0;        ///< trace id (0 = none)
  std::int64_t tsNs = 0;       ///< traceNowNs timestamp
  std::int64_t durNs = 0;      ///< 'X' only
  std::uint32_t tid = 0;       ///< journal-assigned compact thread id
  char phase = 'i';
};

/// Append one event stamped "now" on the calling thread. No-ops (beyond
/// one relaxed load) while tracing is disabled.
void traceBegin(const char* cat, const char* name, const TraceContext& ctx);
void traceEnd(const char* cat, const char* name, const TraceContext& ctx);
void traceInstant(const char* cat, const char* name, const TraceContext& ctx);

/// Append a complete ('X') event with explicit timestamps — used when the
/// caller already sampled the clock (phase decomposition).
void traceComplete(const char* cat, const char* name, const TraceContext& ctx,
                   std::int64_t tsNs, std::int64_t durNs);

/// Append an async 'b'/'e' pair with explicit timestamps. Async events
/// pair by (cat, id, name), so they may begin and end on any thread —
/// this is how cross-thread request phases (queue_wait, work, emit) are
/// recorded by the emitter after the fact.
void traceAsyncSpan(const char* cat, const char* name, const TraceContext& ctx,
                    std::int64_t beginNs, std::int64_t endNs);

/// RAII synchronous span: 'B' at construction, 'E' at destruction, on the
/// current thread. Strictly LIFO, like a call stack.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name, const TraceContext& ctx)
      : cat_(cat), name_(name), ctx_(ctx) {
    traceBegin(cat_, name_, ctx_);
  }
  ~TraceSpan() { traceEnd(cat_, name_, ctx_); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* cat_;
  const char* name_;
  TraceContext ctx_;
};

/// The context ambiently visible on this thread — only used to carry a
/// request's identity across the exec::parallelFor boundary, where jobs
/// capture it and workers reinstall it.
const TraceContext& currentTraceContext();

/// Installs `ctx` as the current thread's context for its lifetime and
/// restores the previous one on destruction.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext previous_;
};

/// Copy out every recorded event: per-thread program order, threads
/// concatenated. Safe to call while writers are active (sees a prefix).
[[nodiscard]] std::vector<TraceEvent> journalSnapshot();

/// Total events discarded because a thread buffer was full.
[[nodiscard]] std::uint64_t journalDropped();

/// Clear all buffers and re-apply the current capacity. Callers must
/// guarantee no writer is active (tests; nanod between runs).
void journalReset();

/// Per-thread buffer capacity for buffers created or reset afterwards.
void setJournalCapacity(std::size_t events);
[[nodiscard]] std::size_t journalCapacity();

/// Serialize events as a Chrome trace-event JSON document
/// ({"traceEvents":[...]}), loadable by chrome://tracing and Perfetto.
void exportChromeTrace(std::ostream& os, const std::vector<TraceEvent>& events);

}  // namespace nano::obs
