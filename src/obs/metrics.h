// Instrumentation substrate: a process-wide MetricsRegistry of named
// counters, gauges, and timing accumulators, plus RAII scoped timers.
// Everything is thread-safe and near-zero-cost while observability is
// disabled (one relaxed atomic load per macro site). Enable with
// obs::setEnabled(true) or by exporting NANO_OBS=1 before launch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"

namespace nano::obs {

/// Global on/off switch. Initialized once from the NANO_OBS environment
/// variable ("1", "true", "on" enable); flips at runtime via setEnabled.
bool enabled();
void setEnabled(bool on);

/// Monotonically increasing integer metric (events, iterations, ...).
class Counter {
 public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written double metric (residual at exit, fraction converted, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulator of durations (or any double samples) backed by a
/// deterministic log2-bucket histogram: count/total/min/max exactly,
/// p50/p90/p99/p999 as pure functions of the sample multiset, so
/// percentiles are bit-identical run to run and thread-count to
/// thread-count. Recording is lock-free (see obs/histogram.h).
class TimerStat {
 public:
  void record(double seconds) { histogram_.record(seconds); }

  struct Snapshot {
    std::int64_t count = 0;
    double total = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// The underlying mergeable histogram (exposition, bucket dumps).
  [[nodiscard]] Log2Histogram::Snapshot histogramSnapshot() const {
    return histogram_.snapshot();
  }

 private:
  Log2Histogram histogram_;
};

/// RAII monotonic-clock timer; records into `stat` on destruction.
/// A null stat (observability disabled) makes every member a no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat* stat)
      : stat_(stat),
        start_(stat ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (stat_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    stat_->record(std::chrono::duration<double>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerStat* stat_;
  std::chrono::steady_clock::time_point start_;
};

/// Process-wide registry. Metric objects live for the process lifetime, so
/// hot paths may cache the returned references across calls.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  TimerStat& timer(std::string_view name);
  /// Timer keyed by a hierarchical span path (see obs/span.h). Kept in a
  /// separate namespace so exporters can render the phase tree.
  TimerStat& spanTimer(std::string_view path);

  /// Zero every metric and forget every name (tests, between runs).
  void reset();

  struct CounterRow { std::string name; std::int64_t value; };
  struct GaugeRow { std::string name; double value; };
  struct TimerRow { std::string name; TimerStat::Snapshot stat; };

  [[nodiscard]] std::vector<CounterRow> counters() const;
  [[nodiscard]] std::vector<GaugeRow> gauges() const;
  [[nodiscard]] std::vector<TimerRow> timers() const;
  [[nodiscard]] std::vector<TimerRow> spans() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  // std::map: pointer stability on insert and sorted export for free.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, TimerStat, std::less<>> timers_;
  std::map<std::string, TimerStat, std::less<>> spans_;
};

}  // namespace nano::obs

// Convenience macros: each site pays one relaxed atomic load when
// observability is disabled, and a registry lookup + atomic op when on.
#define NANO_OBS_COUNT(name, n)                                   \
  do {                                                            \
    if (::nano::obs::enabled()) {                                 \
      ::nano::obs::MetricsRegistry::instance().counter(name).add(n); \
    }                                                             \
  } while (0)

#define NANO_OBS_GAUGE(name, v)                                   \
  do {                                                            \
    if (::nano::obs::enabled()) {                                 \
      ::nano::obs::MetricsRegistry::instance().gauge(name).set(v);   \
    }                                                             \
  } while (0)

#define NANO_OBS_CONCAT_INNER(a, b) a##b
#define NANO_OBS_CONCAT(a, b) NANO_OBS_CONCAT_INNER(a, b)

/// Scoped wall-clock timer recording into MetricsRegistry timer `name`.
#define NANO_OBS_TIMER(name)                                        \
  ::nano::obs::ScopedTimer NANO_OBS_CONCAT(_nanoObsTimer, __LINE__)( \
      ::nano::obs::enabled()                                        \
          ? &::nano::obs::MetricsRegistry::instance().timer(name)   \
          : nullptr)
