// Dense modified-nodal-analysis matrix and linear solve (partial-pivot
// Gaussian elimination). Circuits in this library are small (tens to a few
// hundred nodes), so a dense solver is simpler and fast enough.
#pragma once

#include <vector>

namespace nano::sim {

/// Dense square matrix with an RHS, sized once.
class MnaSystem {
 public:
  explicit MnaSystem(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  void clear();
  void addA(std::size_t i, std::size_t j, double value);
  void addB(std::size_t i, double value);

  /// Stamp a conductance between nodes a and b (0 == ground is skipped).
  /// Node k maps to unknown k-1.
  void stampConductance(int a, int b, double g);
  /// Stamp a current source pushing `i` from node `from` into node `to`.
  void stampCurrent(int from, int to, double i);

  /// Solve A x = b in place; returns the solution. Throws on singular A.
  [[nodiscard]] std::vector<double> solve() const;

 private:
  std::size_t n_;
  std::vector<double> a_;  // row-major n x n
  std::vector<double> b_;
};

}  // namespace nano::sim
