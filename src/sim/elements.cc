#include "sim/elements.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nano::sim {

Waveform Waveform::dc(double value) {
  return Waveform([value](double) { return value; });
}

Waveform Waveform::pulse(double v0, double v1, double delay, double rise,
                         double width, double fall, double period) {
  return Waveform([=](double t) {
    if (t < delay) return v0;
    double tl = t - delay;
    if (period > 0.0) tl = std::fmod(tl, period);
    if (tl < rise) return v0 + (v1 - v0) * tl / rise;
    tl -= rise;
    if (tl < width) return v1;
    tl -= width;
    if (tl < fall) return v1 + (v0 - v1) * tl / fall;
    return v0;
  });
}

Waveform Waveform::pwl(std::vector<std::pair<double, double>> points) {
  if (points.empty()) throw std::invalid_argument("Waveform::pwl: empty");
  return Waveform([pts = std::move(points)](double t) {
    if (t <= pts.front().first) return pts.front().second;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      if (t <= pts[i].first) {
        const double frac =
            (t - pts[i - 1].first) / (pts[i].first - pts[i - 1].first);
        return pts[i - 1].second + frac * (pts[i].second - pts[i - 1].second);
      }
    }
    return pts.back().second;
  });
}

double mosfetCurrent(const MosfetElement& m, double vd, double vg, double vs) {
  if (!m.model) throw std::invalid_argument("mosfetCurrent: no model");
  // Returned value is the current flowing from the drain node to the
  // source node through the channel. PMOS maps onto the NMOS equations
  // with inverted polarities; devices are treated as symmetric (terminals
  // swap when reverse-biased).
  double vgs, vds;
  double sign;
  if (m.type == MosType::Nmos) {
    if (vd >= vs) {
      vgs = vg - vs;
      vds = vd - vs;
      sign = 1.0;
    } else {
      vgs = vg - vd;
      vds = vs - vd;
      sign = -1.0;
    }
  } else {
    if (vs >= vd) {
      // Conducting PMOS pulls the drain up: drain->source current < 0.
      vgs = vs - vg;
      vds = vs - vd;
      sign = -1.0;
    } else {
      vgs = vd - vg;
      vds = vd - vs;
      sign = 1.0;
    }
  }
  const auto& dev = *m.model;
  // Saturation current (per width), smoothed through subthreshold; the
  // PMOS shares the NMOS model derated by the mobility ratio.
  double isat = dev.idsat0(vgs, std::max(vds, 1e-6));
  if (m.type == MosType::Pmos) isat *= device::kPmosCurrentFactor;

  // Smooth linear/saturation blend: tanh(vds / vdsat).
  const double vth = dev.vthEffective(std::max(vds, 1e-6));
  const double vgt = dev.smoothedOverdrive(vgs, vth);
  const double esatL = dev.esat(vgs) * dev.params().leff;
  const double vdsat = std::max(vgt * esatL / (vgt + esatL), 10e-3);
  const double shape = std::tanh(vds / vdsat);
  return sign * m.width * isat * shape;
}

}  // namespace nano::sim
