// Circuit elements for the spice-lite transient simulator. Nodes are
// integers with ground == 0. Sources take Waveform descriptions; MOSFETs
// wrap the compact device model with a smooth linear/saturation blend so
// Newton iteration converges.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "device/mosfet.h"

namespace nano::sim {

/// Time-dependent source value.
class Waveform {
 public:
  /// Constant value.
  static Waveform dc(double value);
  /// Pulse: v0 -> v1 at `delay`, linear `rise`, hold `width`, linear fall.
  static Waveform pulse(double v0, double v1, double delay, double rise,
                        double width, double fall, double period = 0.0);
  /// Piecewise linear through (t, v) points (t increasing).
  static Waveform pwl(std::vector<std::pair<double, double>> points);

  [[nodiscard]] double at(double t) const { return fn_(t); }

 private:
  explicit Waveform(std::function<double(double)> fn) : fn_(std::move(fn)) {}
  std::function<double(double)> fn_;
};

struct Resistor {
  int a = 0, b = 0;
  double resistance = 1.0;
};

struct Capacitor {
  int a = 0, b = 0;
  double capacitance = 1e-15;
  double initialVoltage = 0.0;  ///< used when uic is requested
};

struct Inductor {
  int a = 0, b = 0;
  double inductance = 1e-9;
};

struct VoltageSource {
  int pos = 0, neg = 0;
  Waveform waveform = Waveform::dc(0.0);
};

struct CurrentSource {
  int from = 0, to = 0;  ///< current flows from `from` to `to` (through src)
  Waveform waveform = Waveform::dc(0.0);
};

enum class MosType { Nmos, Pmos };

/// MOSFET instance: wraps a characterized device, scaled by width.
struct MosfetElement {
  int drain = 0, gate = 0, source = 0;
  double width = 1e-6;  ///< m
  MosType type = MosType::Nmos;
  std::shared_ptr<const device::Mosfet> model;
};

/// Smooth large-signal drain current of a MOSFET element (A), positive
/// into the drain for NMOS conduction. Handles both polarities.
double mosfetCurrent(const MosfetElement& m, double vd, double vg, double vs);

}  // namespace nano::sim
