// Spice-lite circuit simulator: MNA with voltage-source branch currents,
// Newton iteration for the MOSFETs, trapezoidal integration for the
// capacitors. Used to validate the analytic gate/wire delay models at the
// waveform level (inverter chains, low-swing lines, RC steps).
#pragma once

#include <vector>

#include "sim/elements.h"
#include "sim/mna.h"
#include "util/numeric.h"

namespace nano::sim {

/// Element container. Node 0 is ground; allocate others with node().
class Circuit {
 public:
  static constexpr int kGround = 0;

  /// Allocate a new node id.
  int node() { return ++maxNode_; }
  /// Declare an externally chosen node id as in use.
  void reserveNode(int id);

  void add(const Resistor& r);
  void add(const Capacitor& c);
  void add(const Inductor& l);
  void add(const VoltageSource& v);
  void add(const CurrentSource& i);
  void add(const MosfetElement& m);

  /// Convenience: a static CMOS inverter between `vddNode` and ground.
  void addInverter(int in, int out, int vddNode,
                   const std::shared_ptr<const device::Mosfet>& model,
                   double widthN, double widthP);

  [[nodiscard]] int nodeCount() const { return maxNode_ + 1; }
  [[nodiscard]] const std::vector<Resistor>& resistors() const { return resistors_; }
  [[nodiscard]] const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  [[nodiscard]] const std::vector<Inductor>& inductors() const { return inductors_; }
  [[nodiscard]] const std::vector<VoltageSource>& vsources() const { return vsources_; }
  [[nodiscard]] const std::vector<CurrentSource>& isources() const { return isources_; }
  [[nodiscard]] const std::vector<MosfetElement>& mosfets() const { return mosfets_; }

 private:
  int maxNode_ = 0;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<VoltageSource> vsources_;
  std::vector<CurrentSource> isources_;
  std::vector<MosfetElement> mosfets_;
};

/// Waveform record of a transient run.
struct TransientResult {
  std::vector<double> time;
  std::vector<std::vector<double>> voltages;  ///< [step][node]
  /// Branch currents per step: first the voltage sources (current flowing
  /// pos -> neg through the source), then the inductors (a -> b).
  std::vector<std::vector<double>> branchCurrents;
  /// Timesteps whose Newton solve did not reach vTolerance (the step is
  /// still recorded with its best iterate).
  int nonconvergedSteps = 0;
  /// Diagnostics of the worst solve in the run: the first NanDetected step
  /// if any, else the non-converged step with the largest exit residual,
  /// else the converged step with the largest exit residual.
  util::Diagnostics worstStep;

  /// Voltage of `node` at time t (linear interpolation).
  [[nodiscard]] double at(int node, double t) const;
  /// First time after `after` where `node` crosses `level` in the given
  /// direction; -1 if never.
  [[nodiscard]] double crossingTime(int node, double level, bool rising,
                                    double after = 0.0) const;
};

/// Simulator options.
struct SimOptions {
  double gmin = 1e-12;        ///< S to ground at every node
  int maxNewton = 200;
  double vTolerance = 1e-7;   ///< V convergence criterion
  double maxUpdate = 0.3;     ///< V, Newton step damping limit
};

class Simulator {
 public:
  /// Builds the solver over `circuit`. Each MOSFET automatically
  /// contributes its intrinsic parasitics (gate capacitance with overlap,
  /// drain junction capacitance) so waveform-level delays include the
  /// loading the analytic gate model accounts for.
  explicit Simulator(const Circuit& circuit, SimOptions options = {});

  /// DC operating point with sources evaluated at `t`. Returns node
  /// voltages indexed by node id (0 == ground).
  std::vector<double> dcOperatingPoint(double t = 0.0);

  /// Fixed-step trapezoidal transient from the DC point at t = 0.
  TransientResult transient(double tStop, double dt);

  /// Diagnostics of the most recent Newton solve (kernel "sim/newton"):
  /// status Converged / MaxIterations / NanDetected, Newton iterations
  /// consumed, and the worst node-voltage update at exit as the residual.
  [[nodiscard]] const util::Diagnostics& lastSolveDiagnostics() const {
    return lastSolve_;
  }

 private:
  struct SolveState {
    std::vector<double> v;             ///< node voltages
    std::vector<double> branch;        ///< V-source then inductor currents
    std::vector<double> capCurrent;    ///< per capacitor (incl. intrinsic)
  };

  /// One Newton solve; `dt <= 0` means DC (capacitors open, inductors
  /// short). `prev` supplies the previous timestep's state.
  SolveState newtonSolve(double t, double dt, const SolveState& prev);

  const Circuit* circuit_;
  SimOptions options_;
  /// Explicit capacitors plus per-MOSFET intrinsic parasitics.
  std::vector<Capacitor> caps_;
  /// Outcome of the most recent newtonSolve().
  util::Diagnostics lastSolve_;
};

}  // namespace nano::sim
