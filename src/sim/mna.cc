#include "sim/mna.h"

#include <cmath>
#include <stdexcept>

namespace nano::sim {

MnaSystem::MnaSystem(std::size_t n) : n_(n), a_(n * n, 0.0), b_(n, 0.0) {
  if (n == 0) throw std::invalid_argument("MnaSystem: empty");
}

void MnaSystem::clear() {
  std::fill(a_.begin(), a_.end(), 0.0);
  std::fill(b_.begin(), b_.end(), 0.0);
}

void MnaSystem::addA(std::size_t i, std::size_t j, double value) {
  a_.at(i * n_ + j) += value;
}

void MnaSystem::addB(std::size_t i, double value) { b_.at(i) += value; }

void MnaSystem::stampConductance(int a, int b, double g) {
  if (a > 0) addA(static_cast<std::size_t>(a - 1), static_cast<std::size_t>(a - 1), g);
  if (b > 0) addA(static_cast<std::size_t>(b - 1), static_cast<std::size_t>(b - 1), g);
  if (a > 0 && b > 0) {
    addA(static_cast<std::size_t>(a - 1), static_cast<std::size_t>(b - 1), -g);
    addA(static_cast<std::size_t>(b - 1), static_cast<std::size_t>(a - 1), -g);
  }
}

void MnaSystem::stampCurrent(int from, int to, double i) {
  if (from > 0) addB(static_cast<std::size_t>(from - 1), -i);
  if (to > 0) addB(static_cast<std::size_t>(to - 1), i);
}

std::vector<double> MnaSystem::solve() const {
  std::vector<double> a = a_;
  std::vector<double> b = b_;
  const std::size_t n = n_;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a[perm[col] * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a[perm[r] * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) throw std::runtime_error("MnaSystem::solve: singular");
    std::swap(perm[col], perm[pivot]);
    const std::size_t p = perm[col];
    const double diag = a[p * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const std::size_t rr = perm[r];
      const double factor = a[rr * n + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[rr * n + c] -= factor * a[p * n + c];
      b[rr] -= factor * b[p];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    const std::size_t p = perm[i];
    double sum = b[p];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a[p * n + c] * x[c];
    x[i] = sum / a[p * n + i];
  }
  return x;
}

}  // namespace nano::sim
