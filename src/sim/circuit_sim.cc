#include "sim/circuit_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

namespace nano::sim {

void Circuit::reserveNode(int id) {
  if (id < 0) throw std::invalid_argument("reserveNode: negative id");
  maxNode_ = std::max(maxNode_, id);
}

void Circuit::add(const Resistor& r) {
  reserveNode(r.a);
  reserveNode(r.b);
  resistors_.push_back(r);
}
void Circuit::add(const Capacitor& c) {
  reserveNode(c.a);
  reserveNode(c.b);
  capacitors_.push_back(c);
}
void Circuit::add(const Inductor& l) {
  if (l.inductance <= 0) throw std::invalid_argument("Circuit::add: L <= 0");
  reserveNode(l.a);
  reserveNode(l.b);
  inductors_.push_back(l);
}
void Circuit::add(const VoltageSource& v) {
  reserveNode(v.pos);
  reserveNode(v.neg);
  vsources_.push_back(v);
}
void Circuit::add(const CurrentSource& i) {
  reserveNode(i.from);
  reserveNode(i.to);
  isources_.push_back(i);
}
void Circuit::add(const MosfetElement& m) {
  if (!m.model) throw std::invalid_argument("Circuit::add: MOSFET without model");
  reserveNode(m.drain);
  reserveNode(m.gate);
  reserveNode(m.source);
  mosfets_.push_back(m);
}

void Circuit::addInverter(int in, int out, int vddNode,
                          const std::shared_ptr<const device::Mosfet>& model,
                          double widthN, double widthP) {
  MosfetElement n;
  n.drain = out;
  n.gate = in;
  n.source = kGround;
  n.width = widthN;
  n.type = MosType::Nmos;
  n.model = model;
  add(n);
  MosfetElement p;
  p.drain = out;
  p.gate = in;
  p.source = vddNode;
  p.width = widthP;
  p.type = MosType::Pmos;
  p.model = model;
  add(p);
}

double TransientResult::at(int node, double t) const {
  if (time.empty()) throw std::logic_error("TransientResult::at: empty");
  if (t <= time.front()) return voltages.front()[static_cast<std::size_t>(node)];
  for (std::size_t i = 1; i < time.size(); ++i) {
    if (t <= time[i]) {
      const double frac = (t - time[i - 1]) / (time[i] - time[i - 1]);
      const double v0 = voltages[i - 1][static_cast<std::size_t>(node)];
      const double v1 = voltages[i][static_cast<std::size_t>(node)];
      return v0 + frac * (v1 - v0);
    }
  }
  return voltages.back()[static_cast<std::size_t>(node)];
}

double TransientResult::crossingTime(int node, double level, bool rising,
                                     double after) const {
  for (std::size_t i = 1; i < time.size(); ++i) {
    if (time[i] < after) continue;
    const double v0 = voltages[i - 1][static_cast<std::size_t>(node)];
    const double v1 = voltages[i][static_cast<std::size_t>(node)];
    const bool crossed = rising ? (v0 < level && v1 >= level)
                                : (v0 > level && v1 <= level);
    if (crossed) {
      const double frac = (level - v0) / (v1 - v0);
      return time[i - 1] + frac * (time[i] - time[i - 1]);
    }
  }
  return -1.0;
}

Simulator::Simulator(const Circuit& circuit, SimOptions options)
    : circuit_(&circuit), options_(options), caps_(circuit.capacitors()) {
  // Intrinsic device parasitics, matching the analytic gate model's
  // accounting: gate cap = Coxe*W*Leff*(1 + overlap 0.4), drain junction
  // cap = 0.6x the gate cap.
  for (const auto& m : circuit.mosfets()) {
    const double cg = m.model->coxElectrical() * m.width *
                      m.model->params().leff * 1.4;
    caps_.push_back(Capacitor{m.gate, Circuit::kGround, cg, 0.0});
    caps_.push_back(Capacitor{m.drain, Circuit::kGround, 0.6 * cg, 0.0});
  }
}

Simulator::SolveState Simulator::newtonSolve(double t, double dt,
                                             const SolveState& prev) {
  const Circuit& ckt = *circuit_;
  const std::size_t nNodes = static_cast<std::size_t>(ckt.nodeCount());
  const std::size_t nV = ckt.vsources().size();
  const std::size_t nL = ckt.inductors().size();
  const std::size_t unknowns = (nNodes - 1) + nV + nL;
  MnaSystem sys(unknowns);

  SolveState state;
  state.v = prev.v;
  state.v.resize(nNodes, 0.0);
  state.branch.assign(nV + nL, 0.0);

  const bool transientMode = dt > 0;

  int newtonIterations = 0;
  bool newtonConverged = false;
  bool nanDetected = false;
  double lastWorst = 0.0;
  for (int iter = 0; iter < options_.maxNewton; ++iter) {
    sys.clear();
    // gmin to ground for numerical robustness.
    for (std::size_t n = 1; n < nNodes; ++n) {
      sys.stampConductance(static_cast<int>(n), 0, options_.gmin);
    }
    for (const auto& r : ckt.resistors()) {
      sys.stampConductance(r.a, r.b, 1.0 / r.resistance);
    }
    if (transientMode) {
      // Trapezoidal capacitor companion: geq = 2C/dt with a history source.
      for (std::size_t k = 0; k < caps_.size(); ++k) {
        const auto& c = caps_[k];
        const double geq = 2.0 * c.capacitance / dt;
        const double vab = prev.v[static_cast<std::size_t>(c.a)] -
                           prev.v[static_cast<std::size_t>(c.b)];
        const double ieq = geq * vab + prev.capCurrent[k];
        sys.stampConductance(c.a, c.b, geq);
        sys.stampCurrent(c.b, c.a, ieq);
      }
    }
    for (const auto& i : ckt.isources()) {
      sys.stampCurrent(i.from, i.to, i.waveform.at(t));
    }
    // MOSFETs: linearize around the current iterate.
    constexpr double kDeltaV = 1e-3;
    for (const auto& m : ckt.mosfets()) {
      const double vd = state.v[static_cast<std::size_t>(m.drain)];
      const double vg = state.v[static_cast<std::size_t>(m.gate)];
      const double vs = state.v[static_cast<std::size_t>(m.source)];
      const double i0 = mosfetCurrent(m, vd, vg, vs);
      const double gd = (mosfetCurrent(m, vd + kDeltaV, vg, vs) - i0) / kDeltaV;
      const double gg = (mosfetCurrent(m, vd, vg + kDeltaV, vs) - i0) / kDeltaV;
      const double gs = (mosfetCurrent(m, vd, vg, vs + kDeltaV) - i0) / kDeltaV;
      const double ieq = i0 - gd * vd - gg * vg - gs * vs;
      auto stampRow = [&](int node, double sign) {
        if (node <= 0) return;
        const std::size_t row = static_cast<std::size_t>(node - 1);
        if (m.drain > 0) sys.addA(row, static_cast<std::size_t>(m.drain - 1), sign * gd);
        if (m.gate > 0) sys.addA(row, static_cast<std::size_t>(m.gate - 1), sign * gg);
        if (m.source > 0) sys.addA(row, static_cast<std::size_t>(m.source - 1), sign * gs);
        sys.addB(row, -sign * ieq);
      };
      stampRow(m.drain, 1.0);
      stampRow(m.source, -1.0);
    }
    // Voltage sources: branch-current unknowns.
    for (std::size_t k = 0; k < nV; ++k) {
      const auto& src = ckt.vsources()[k];
      const std::size_t branch = (nNodes - 1) + k;
      if (src.pos > 0) {
        sys.addA(static_cast<std::size_t>(src.pos - 1), branch, 1.0);
        sys.addA(branch, static_cast<std::size_t>(src.pos - 1), 1.0);
      }
      if (src.neg > 0) {
        sys.addA(static_cast<std::size_t>(src.neg - 1), branch, -1.0);
        sys.addA(branch, static_cast<std::size_t>(src.neg - 1), -1.0);
      }
      sys.addB(branch, src.waveform.at(t));
    }
    // Inductors: branch-current unknowns. Transient (trapezoidal):
    //   i - (dt/2L)*(va - vb) = i_prev + (dt/2L)*(va_prev - vb_prev)
    // DC: short circuit, va - vb = 0.
    for (std::size_t k = 0; k < nL; ++k) {
      const auto& ind = ckt.inductors()[k];
      const std::size_t branch = (nNodes - 1) + nV + k;
      // KCL: current i flows out of node a into node b.
      if (ind.a > 0) sys.addA(static_cast<std::size_t>(ind.a - 1), branch, 1.0);
      if (ind.b > 0) sys.addA(static_cast<std::size_t>(ind.b - 1), branch, -1.0);
      if (transientMode) {
        const double coef = dt / (2.0 * ind.inductance);
        sys.addA(branch, branch, 1.0);
        if (ind.a > 0) sys.addA(branch, static_cast<std::size_t>(ind.a - 1), -coef);
        if (ind.b > 0) sys.addA(branch, static_cast<std::size_t>(ind.b - 1), coef);
        const double vabPrev = prev.v[static_cast<std::size_t>(ind.a)] -
                               prev.v[static_cast<std::size_t>(ind.b)];
        sys.addB(branch, prev.branch[nV + k] + coef * vabPrev);
      } else {
        if (ind.a > 0) sys.addA(branch, static_cast<std::size_t>(ind.a - 1), 1.0);
        if (ind.b > 0) sys.addA(branch, static_cast<std::size_t>(ind.b - 1), -1.0);
        // Degenerate when both terminals are grounded; keep it regular.
        if (ind.a <= 0 && ind.b <= 0) sys.addA(branch, branch, 1.0);
      }
    }

    const std::vector<double> x = sys.solve();
    // NaN/Inf guard on the linear-solve output: a singular or poisoned
    // Jacobian must not overwrite the last finite iterate (per-point
    // recovery: the caller keeps the previous timestep's voltages).
    bool solveFinite = true;
    for (std::size_t k = 0; k < unknowns; ++k) {
      if (!std::isfinite(x[k])) {
        solveFinite = false;
        break;
      }
    }
    newtonIterations = iter + 1;
    if (!solveFinite) {
      nanDetected = true;
      state.v = prev.v;
      state.branch = prev.branch;
      break;
    }
    double worst = 0.0;
    for (std::size_t n = 1; n < nNodes; ++n) {
      double update = x[n - 1] - state.v[n];
      update = std::clamp(update, -options_.maxUpdate, options_.maxUpdate);
      worst = std::max(worst, std::abs(update));
      state.v[n] += update;
    }
    for (std::size_t k = 0; k < nV + nL; ++k) {
      state.branch[k] = x[(nNodes - 1) + k];
    }
    lastWorst = worst;
    if (worst < options_.vTolerance) {
      newtonConverged = true;
      break;
    }
  }
  lastSolve_ = util::Diagnostics{};
  lastSolve_.kernel = "sim/newton";
  lastSolve_.iterations = newtonIterations;
  lastSolve_.residual = lastWorst;
  lastSolve_.status = nanDetected ? util::SolverStatus::NanDetected
                     : newtonConverged ? util::SolverStatus::Converged
                                       : util::SolverStatus::MaxIterations;
  NANO_OBS_COUNT("sim/newton_iterations", newtonIterations);
  NANO_OBS_COUNT("sim/newton_solves", 1);
  if (!newtonConverged) NANO_OBS_COUNT("sim/newton_nonconverged", 1);
  if (nanDetected) NANO_OBS_COUNT("sim/newton_nan_detected", 1);

  state.capCurrent.assign(caps_.size(), 0.0);
  if (transientMode) {
    for (std::size_t k = 0; k < caps_.size(); ++k) {
      const auto& c = caps_[k];
      const double geq = 2.0 * c.capacitance / dt;
      const double vab = state.v[static_cast<std::size_t>(c.a)] -
                         state.v[static_cast<std::size_t>(c.b)];
      const double vabPrev = prev.v[static_cast<std::size_t>(c.a)] -
                             prev.v[static_cast<std::size_t>(c.b)];
      state.capCurrent[k] = geq * (vab - vabPrev) - prev.capCurrent[k];
    }
  }
  return state;
}

std::vector<double> Simulator::dcOperatingPoint(double t) {
  NANO_OBS_SPAN("sim/dc_operating_point");
  SolveState zero;
  zero.v.assign(static_cast<std::size_t>(circuit_->nodeCount()), 0.0);
  zero.branch.assign(circuit_->vsources().size() + circuit_->inductors().size(),
                     0.0);
  zero.capCurrent.assign(caps_.size(), 0.0);
  return newtonSolve(t, -1.0, zero).v;
}

TransientResult Simulator::transient(double tStop, double dt) {
  NANO_OBS_SPAN("sim/transient");
  if (tStop <= 0 || dt <= 0) throw std::invalid_argument("transient: bad times");
  TransientResult res;
  SolveState zero;
  zero.v.assign(static_cast<std::size_t>(circuit_->nodeCount()), 0.0);
  zero.branch.assign(circuit_->vsources().size() + circuit_->inductors().size(),
                     0.0);
  zero.capCurrent.assign(caps_.size(), 0.0);
  SolveState state = newtonSolve(0.0, -1.0, zero);
  state.capCurrent.assign(caps_.size(), 0.0);

  // Rank solves: NanDetected outranks everything, then the non-converged
  // step with the largest exit residual, then the largest converged one.
  auto severity = [](const util::Diagnostics& d) {
    return d.status == util::SolverStatus::NanDetected ? 2
           : d.ok()                                    ? 0
                                                       : 1;
  };
  auto fold = [&](TransientResult& out) {
    if (!lastSolve_.ok()) ++out.nonconvergedSteps;
    const int sNew = severity(lastSolve_);
    const int sOld = severity(out.worstStep);
    if (sNew > sOld ||
        (sNew == sOld && lastSolve_.residual > out.worstStep.residual)) {
      out.worstStep = lastSolve_;
    }
  };
  res.worstStep = lastSolve_;
  if (!lastSolve_.ok()) res.nonconvergedSteps = 1;

  res.time.push_back(0.0);
  res.voltages.push_back(state.v);
  res.branchCurrents.push_back(state.branch);
  for (double t = dt; t <= tStop + 0.5 * dt; t += dt) {
    state = newtonSolve(t, dt, state);
    fold(res);
    res.time.push_back(t);
    res.voltages.push_back(state.v);
    res.branchCurrents.push_back(state.branch);
  }
  NANO_OBS_COUNT("sim/timesteps", static_cast<std::int64_t>(res.time.size()) - 1);
  if (res.nonconvergedSteps > 0) {
    NANO_OBS_COUNT("sim/transient_nonconverged_steps", res.nonconvergedSteps);
  }
  return res;
}

}  // namespace nano::sim
